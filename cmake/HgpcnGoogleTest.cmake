# Locate a usable GoogleTest, preferring sources already on the
# machine so a clean checkout builds without network access.
#
# Resolution order:
#   1. system find_package(GTest)   -- Debian libgtest-dev ships static libs
#   2. vendored /usr/src/googletest -- Debian source package fallback
#   3. FetchContent from GitHub     -- opt-in (HGPCN_FETCH_GTEST=ON),
#      because a failed download aborts the whole configure; offline
#      machines should degrade to a warning instead.
#
# Sets HGPCN_HAVE_GTEST and guarantees the GTest::gtest_main target
# exists when it is ON.

option(HGPCN_FETCH_GTEST
    "Download GoogleTest with FetchContent when not found locally" OFF)

set(HGPCN_HAVE_GTEST OFF)

find_package(GTest QUIET)
if(GTest_FOUND OR GTEST_FOUND)
    set(HGPCN_HAVE_GTEST ON)
    message(STATUS "hgpcn: using system GoogleTest")
elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
    add_subdirectory(/usr/src/googletest
        ${CMAKE_BINARY_DIR}/googletest EXCLUDE_FROM_ALL)
    if(NOT TARGET GTest::gtest_main)
        add_library(GTest::gtest_main ALIAS gtest_main)
        add_library(GTest::gtest ALIAS gtest)
    endif()
    set(HGPCN_HAVE_GTEST ON)
    message(STATUS "hgpcn: using vendored GoogleTest from /usr/src/googletest")
elseif(HGPCN_FETCH_GTEST)
    include(FetchContent)
    FetchContent_Declare(googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    if(TARGET gtest_main)
        set(HGPCN_HAVE_GTEST ON)
        message(STATUS "hgpcn: using FetchContent GoogleTest")
    endif()
endif()

if(HGPCN_HAVE_GTEST AND NOT TARGET GTest::gtest_main AND TARGET GTest::Main)
    # CMake < 3.20 module-mode spelling.
    add_library(GTest::gtest_main ALIAS GTest::Main)
endif()
