/**
 * @file
 * Heterogeneous serving fleet: HgPCN and Mesorasi shards behind one
 * dispatcher.
 *
 * A deployment rarely swaps its whole accelerator pool at once —
 * capacity grows by adding whatever hardware is available next.
 * This example serves a multi-LiDAR rig with a mixed fleet: half
 * the shards run the HgPCN DSU/FCU engine, half the Mesorasi-style
 * GPU baseline, all behind least-loaded placement that retires each
 * shard's modeled backlog at that shard's own backend cost-model
 * estimate (so the dispatcher knows a Mesorasi shard drains slower
 * than an HgPCN one). The merged ServingReport attributes frames,
 * sustained FPS, tail latency and Section VII-E verdicts per
 * backend — the streaming counterpart of the paper's Fig. 14
 * comparison.
 *
 *   ./build/examples/heterogeneous_fleet [sensors] [shards]
 *
 * (shards is the total; the first half runs hgpcn, the rest
 * mesorasi.)
 */

#include <cstdio>
#include <vector>

#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "example_util.h"
#include "serving/sharded_runner.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    const std::size_t n_sensors = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/4, "sensors");
    const std::size_t n_shards = examples::parsePositiveArg(
        argc, argv, 2, /*fallback=*/4, "shards");

    MultiSensorConfig stream_cfg;
    stream_cfg.sensors = n_sensors;
    stream_cfg.framesPerSensor = 4;
    stream_cfg.lidar.azimuthSteps = 500; // small frames, quick run
    // Solid-state-class 120 Hz scanners: at 4 sensors the rig
    // offers a frame every ~2 ms — past even the HgPCN half of the
    // fleet's modeled capacity (~1/5 ms per shard), so the
    // dispatcher has to spill onto the slower Mesorasi shards
    // instead of parking them.
    stream_cfg.lidar.frameRateHz = 120.0;
    const SensorStream stream = makeLidarSensorStream(stream_cfg);
    std::printf("rig: %zu sensors x %zu frames @ %.0f Hz each "
                "(%zu tagged frames, interleaved)\n",
                n_sensors, stream_cfg.framesPerSensor,
                stream_cfg.lidar.frameRateHz, stream.size());

    // First half of the fleet on HgPCN, the rest on Mesorasi.
    std::vector<std::string> backends(n_shards, "mesorasi");
    for (std::size_t s = 0; s < (n_shards + 1) / 2; ++s)
        backends[s] = "hgpcn";

    HgPcnSystem::Config system_cfg;
    ShardedRunner::Config serving_cfg;
    serving_cfg.shards = n_shards;
    serving_cfg.placement = PlacementPolicy::LeastLoaded;
    serving_cfg.backends = backends;
    serving_cfg.runner.buildWorkers = 2;
    ShardedRunner fleet(system_cfg,
                        PointNet2Spec::semanticSegmentation(),
                        serving_cfg);

    std::printf("\nfleet:");
    for (std::size_t s = 0; s < fleet.shardCount(); ++s) {
        std::printf(" shard %zu = %s (est. %.2f ms/frame)%s", s,
                    fleet.shardBackend(s).name().c_str(),
                    fleet.shardBackend(s).estimateServiceSec() * 1e3,
                    s + 1 < fleet.shardCount() ? "," : "\n");
    }

    std::printf("\n-- sensor-paced serve, least-loaded on "
                "cost-model estimates --\n");
    const ServingResult served = fleet.serve(stream);
    std::printf("%s", served.report.toString().c_str());

    std::printf("\nper-backend view: the dispatcher routed more "
                "traffic to the backend whose modeled service time "
                "is shorter, and each backend's real-time verdict "
                "is judged against the traffic it actually "
                "received.\n");
    return 0;
}
