/**
 * @file
 * Quickstart: the complete HgPCN flow on one synthetic frame.
 *
 * Demonstrates the public API end to end:
 *   1. generate a raw point cloud frame (a ModelNet-like object),
 *   2. pre-process it with the Pre-processing Engine (octree build
 *      on the CPU model + OIS down-sampling on the FPGA model),
 *   3. classify the down-sampled cloud on the Inference Engine
 *      (VEG data structuring + systolic feature computation),
 *   4. print the latency breakdown of both phases.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [points]
 */

#include <cstdio>

#include "core/hgpcn_system.h"
#include "datasets/modelnet_like.h"
#include "example_util.h"
#include "nn/trace_report.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    // 1. A raw sensor frame: ~100k surface points of one object.
    ModelNetLike::Config frame_cfg;
    frame_cfg.points = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/100000, "points");
    const Frame frame = ModelNetLike::generate("MN.chair", frame_cfg);
    std::printf("raw frame '%s': %zu points\n", frame.name.c_str(),
                frame.cloud.size());

    // 2+3. The full system: Pointnet++(c) classification with a
    // 1024-point input layer.
    HgPcnSystem::Config system_cfg;
    const HgPcnSystem system(system_cfg,
                             PointNet2Spec::classification());
    const E2eResult result = system.processFrame(frame.cloud);

    // 4. Report.
    std::printf("\n-- pre-processing (Pre-processing Engine) --\n");
    std::printf("octree build (CPU):        %8.3f ms\n",
                result.preprocess.octreeBuildSec * 1e3);
    std::printf("octree-table MMIO:         %8.3f ms\n",
                result.preprocess.dsu.mmioSec * 1e3);
    std::printf("OIS descent (FPGA):        %8.3f ms\n",
                result.preprocess.dsu.descentSec * 1e3);
    std::printf("host reads of K points:    %8.3f ms\n",
                result.preprocess.dsu.hostReadSec * 1e3);
    std::printf("total:                     %8.3f ms\n",
                result.preprocess.totalSec() * 1e3);

    std::printf("\n-- inference (backend '%s') --\n",
                result.inference.backend.c_str());
    std::printf("DSU (VEG data structuring):%8.3f ms\n",
                result.inference.dsSec * 1e3);
    std::printf("FCU (feature computation): %8.3f ms\n",
                result.inference.fcSec * 1e3);
    std::printf("total (overlapped):        %8.3f ms\n",
                result.inference.totalSec() * 1e3);

    std::printf("\npredicted class: %zu\n",
                result.inference.output.labels[0]);
    std::printf("end-to-end: %.3f ms  (%.1f frames/s)\n",
                result.totalSec() * 1e3, result.fps());

    std::printf("\n-- network workload (execution trace) --\n%s\n",
                renderTraceTotals(result.inference.output.trace)
                    .c_str());
    return 0;
}
