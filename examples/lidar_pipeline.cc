/**
 * @file
 * LiDAR pipeline: real-time E2E processing of a spinning-LiDAR
 * stream — the paper's headline deployment scenario (Section VII-E).
 *
 * A KITTI-like sensor produces ~1.2e5-point frames at 10 Hz; every
 * frame is octree-indexed, down-sampled to 16384 points and
 * semantically segmented. The stream runs on the concurrent
 * stage-pipeline runtime (docs/RUNTIME.md) three ways:
 *
 *   serial     - one frame at a time (processStream mean rate)
 *   pipelined  - 1 CPU build worker overlapping the shared FPGA
 *   2-worker   - 2 CPU build workers feeding the same FPGA
 *
 * and once sensor-paced, for the real-time verdict plus latency
 * percentiles and per-stage utilization.
 *
 *   ./build/examples/lidar_pipeline [frames]
 */

#include <cstdio>

#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "example_util.h"
#include "sampling/fps_sampler.h"
#include "sim/device_model.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    const std::size_t n_frames = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/4, "frames");

    KittiLike::Config lidar_cfg;
    const KittiLike lidar(lidar_cfg);
    std::printf("sensor: %zu beams x %zu azimuth steps @ %.0f Hz\n",
                lidar_cfg.beams, lidar_cfg.azimuthSteps,
                lidar_cfg.frameRateHz);

    HgPcnSystem::Config system_cfg;
    const HgPcnSystem system(system_cfg,
                             PointNet2Spec::outdoorSegmentation());
    const DeviceModel cpu(DeviceModel::xeonW2255());

    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n_frames; ++f)
        frames.push_back(lidar.generate(f));

    std::printf("\n%-10s %10s %12s %12s %12s %14s\n", "frame",
                "points", "preproc", "inference", "E2E",
                "CPU-FPS preproc");
    for (const Frame &frame : frames) {
        const E2eResult r = system.processFrame(frame.cloud);
        const double cpu_fps_sec = cpu.samplingSec(
            FpsSampler::predictStats(frame.cloud.size(), 16384),
            16384);
        std::printf("%-10s %10zu %9.2f ms %9.2f ms %9.2f ms %11.2f ms\n",
                    frame.name.c_str(), frame.cloud.size(),
                    r.preprocess.totalSec() * 1e3,
                    r.inference.totalSec() * 1e3, r.totalSec() * 1e3,
                    cpu_fps_sec * 1e3);
    }

    // Throughput ladder (batch admission: throughput limited by the
    // machine, not the 10 Hz sensor). processStream's pipelinedFps
    // IS the 1-worker compat runner's sustained rate, so only the
    // 2-worker configuration needs a separate run.
    const StreamReport serial = system.processStream(frames);

    StreamRunner::Config pipelined =
        StreamRunner::compat(frames.size(), 0);
    pipelined.buildWorkers = 2;
    const RuntimeResult two_workers =
        system.runStream(frames, pipelined);

    std::printf("\n-- throughput (batch admission) --\n");
    std::printf("serial (1 frame in flight):      %6.1f FPS\n",
                serial.meanFps);
    std::printf("pipelined (1 CPU build worker):  %6.1f FPS\n",
                serial.pipelinedFps);
    std::printf("pipelined (2 CPU build workers): %6.1f FPS\n",
                two_workers.report.sustainedFps);

    // Sensor-paced run: the deployment view — frames admitted at
    // their 10 Hz stamps, 4 frames in flight.
    StreamRunner::Config paced;
    paced.buildWorkers = 2;
    paced.queueCapacity = 4;
    paced.maxInFlight = 4;
    const RuntimeResult deployed = system.runStream(frames, paced);
    std::printf("\n-- sensor-paced runtime --\n%s",
                deployed.report.toString().c_str());
    std::printf("\nworst-case frame latency: %.2f ms\n",
                deployed.report.maxLatencySec * 1e3);
    return 0;
}
