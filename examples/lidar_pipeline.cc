/**
 * @file
 * LiDAR pipeline: real-time E2E processing of a spinning-LiDAR
 * stream — the paper's headline deployment scenario (Section VII-E).
 *
 * A KITTI-like sensor produces ~1.2e5-point frames at 10 Hz; every
 * frame is octree-indexed, down-sampled to 16384 points and
 * semantically segmented. The example reports per-frame latency,
 * the sustained frame rate and whether the real-time criterion
 * (processing rate >= generation rate) holds, plus what the same
 * stream would cost with FPS pre-processing on a CPU.
 *
 *   ./build/examples/lidar_pipeline [frames]
 */

#include <cstdio>
#include <cstdlib>

#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "sampling/fps_sampler.h"
#include "sim/device_model.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    const std::size_t n_frames =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;

    KittiLike::Config lidar_cfg;
    const KittiLike lidar(lidar_cfg);
    std::printf("sensor: %zu beams x %zu azimuth steps @ %.0f Hz\n",
                lidar_cfg.beams, lidar_cfg.azimuthSteps,
                lidar_cfg.frameRateHz);

    HgPcnSystem::Config system_cfg;
    const HgPcnSystem system(system_cfg,
                             PointNet2Spec::outdoorSegmentation());
    const DeviceModel cpu(DeviceModel::xeonW2255());

    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n_frames; ++f)
        frames.push_back(lidar.generate(f));

    std::printf("\n%-10s %10s %12s %12s %12s %14s\n", "frame",
                "points", "preproc", "inference", "E2E",
                "CPU-FPS preproc");
    for (const Frame &frame : frames) {
        const E2eResult r = system.processFrame(frame.cloud);
        const double cpu_fps_sec = cpu.samplingSec(
            FpsSampler::predictStats(frame.cloud.size(), 16384),
            16384);
        std::printf("%-10s %10zu %9.2f ms %9.2f ms %9.2f ms %11.2f ms\n",
                    frame.name.c_str(), frame.cloud.size(),
                    r.preprocess.totalSec() * 1e3,
                    r.inference.totalSec() * 1e3, r.totalSec() * 1e3,
                    cpu_fps_sec * 1e3);
    }

    const StreamReport report = system.processStream(frames);
    std::printf("\nsustained rate: %.1f FPS | sensor rate: %.1f FPS "
                "| real-time: %s\n",
                report.meanFps, report.generationFps,
                report.realTime ? "YES" : "NO");
    std::printf("pipelined rate (CPU builds frame i+1 while FPGA "
                "runs frame i): %.1f FPS\n",
                report.pipelinedFps);
    std::printf("worst-case frame latency: %.2f ms\n",
                report.maxLatencySec * 1e3);
    return 0;
}
