/**
 * @file
 * City-scale elastic serving: a seeded traffic generator (diurnal
 * swell, per-sensor bursts, hot-plug/drop churn, priority tiers)
 * feeding the ElasticRunner control loop — autoscaler + admission
 * control over a ShardedRunner fleet.
 *
 * The trace is calibrated to the backend's own modeled per-frame
 * service time, so the morning-rush overload and the quiet trough
 * land the same way on every machine, and the whole run — scale
 * events, shed sets, merged report — is bit-for-bit reproducible
 * from the seed (run it twice and diff the output).
 *
 *   ./build/examples/city_scale_serving [sensors] [epochs]
 */

#include <cstdio>

#include "core/hgpcn_system.h"
#include "datasets/traffic_gen.h"
#include "example_util.h"
#include "serving/autoscaler.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    const std::size_t sensors = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/16, "sensors");
    const std::size_t epochs = examples::parsePositiveArg(
        argc, argv, 2, /*fallback=*/10, "epochs");

    // A small per-frame network: city scale means many sensors,
    // not heavy frames.
    PointNet2Spec spec = PointNet2Spec::classification(8);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    HgPcnSystem::Config system;

    // Elastic layer: scale 1..6 shards at epoch boundaries, shed
    // the lowest-priority sensors when even the grown fleet would
    // be oversubscribed.
    ElasticRunner::Config cfg;
    cfg.fleet.shards = 2;
    cfg.fleet.placement = PlacementPolicy::HashBySensor;
    cfg.autoscaler.minShards = 1;
    cfg.autoscaler.maxShards = 6;
    cfg.autoscaler.upStep = 2;
    cfg.autoscaler.downHoldEpochs = 1;
    cfg.admission.enabled = true;
    cfg.admission.headroom = 0.95;
    cfg.epochSec = 1.0; // placeholder until calibrated below

    ElasticRunner probe(system, spec, cfg);
    const double svc =
        probe.fleet().shardBackend(0).estimateServiceSec();
    cfg.epochSec = 40.0 * svc;

    // Seeded city traffic: a diurnal swell peaking mid-trace at
    // ~4.5x one shard's capacity, per-sensor bursts, 20% of the
    // sensors hot-plugging mid-trace and 15% dropping out.
    TrafficGen::Config traffic;
    traffic.sensors = sensors;
    traffic.durationSec =
        static_cast<double>(epochs) * cfg.epochSec;
    traffic.diurnalAmplitude = 0.75;
    traffic.diurnalPeriodSec = traffic.durationSec;
    traffic.burstFactor = 1.5;
    traffic.burstDuty = 0.25;
    traffic.burstPeriodSec = 2.0 * cfg.epochSec;
    traffic.rateJitter = 0.2;
    traffic.hotPlugFraction = 0.20;
    traffic.dropFraction = 0.15;
    traffic.priorityTiers = 3;
    traffic.cloudPoints = 300;
    traffic.seed = 99;
    traffic.baseRateHz =
        2.6 / svc / (static_cast<double>(sensors) * 1.125);
    const TrafficTrace trace = TrafficGen(traffic).generate();

    std::printf("city: %zu sensors, %zu frames over %.3f modeled "
                "seconds (service %.4g s/frame)\n",
                sensors, trace.stream.size(), traffic.durationSec,
                svc);

    ElasticRunner elastic(system, spec, cfg);
    const ElasticResult result =
        elastic.serve(trace.stream, trace.priority);

    std::printf("\n-- control-loop decisions (one line per "
                "epoch) --\n%s",
                result.decisionLog().c_str());

    std::printf("\n-- scale events --\n");
    if (result.events.empty())
        std::printf("(none)\n");
    for (const ScaleEvent &event : result.events) {
        std::printf("epoch %zu: %zu -> %zu shards (%s)\n",
                    event.epoch, event.fromShards, event.toShards,
                    event.reason.c_str());
    }
    std::printf("provisioning: %.3f shard-seconds vs %.3f for a "
                "fixed max-width fleet\n",
                result.shardSeconds,
                static_cast<double>(cfg.autoscaler.maxShards) *
                    traffic.durationSec);

    std::printf("\n-- merged serving report --\n%s",
                result.serving.report.toString().c_str());
    return 0;
}
