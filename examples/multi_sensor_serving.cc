/**
 * @file
 * Multi-sensor serving: a rig of spinning LiDARs served by a shard
 * fleet — the serving layer on top of the paper's Section VII-E
 * deployment scenario.
 *
 * N KITTI-like 10 Hz sensors (phase-offset so their frames
 * interleave) stream into a ShardedRunner: a front-end dispatcher
 * places every tagged frame on one of S shards — each a full
 * replica of the HgPCN engines with its own concurrent pipeline —
 * under hash-by-sensor affinity, so every sensor's frames stay in
 * order. The merged ServingReport gives the aggregate sustained
 * rate, per-shard utilization and a per-sensor real-time verdict
 * (tri-state: a sensor the fleet cannot keep up with reports NO,
 * and an unpaced run reports n/a, never a vacuous YES).
 *
 *   ./build/examples/multi_sensor_serving [sensors] [shards]
 */

#include <cstdio>

#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "example_util.h"
#include "serving/sharded_runner.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    const std::size_t n_sensors = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/3, "sensors");
    const std::size_t n_shards = examples::parsePositiveArg(
        argc, argv, 2, /*fallback=*/2, "shards");

    MultiSensorConfig stream_cfg;
    stream_cfg.sensors = n_sensors;
    stream_cfg.framesPerSensor = 4;
    const SensorStream stream = makeLidarSensorStream(stream_cfg);
    std::printf("rig: %zu sensors x %zu frames @ %.0f Hz each "
                "(%zu tagged frames, interleaved)\n",
                n_sensors, stream_cfg.framesPerSensor,
                stream_cfg.lidar.frameRateHz, stream.size());

    HgPcnSystem::Config system_cfg;
    ShardedRunner::Config serving_cfg;
    serving_cfg.shards = n_shards;
    serving_cfg.placement = PlacementPolicy::HashBySensor;
    serving_cfg.runner.buildWorkers = 2;
    serving_cfg.runner.queueCapacity = 4;
    serving_cfg.runner.maxInFlight = 4;
    ShardedRunner runner(system_cfg,
                         PointNet2Spec::outdoorSegmentation(),
                         serving_cfg);

    std::printf("\n-- sensor-paced serve, %zu shard%s, "
                "hash-by-sensor --\n",
                n_shards, n_shards == 1 ? "" : "s");
    const ServingResult served = runner.serve(stream);
    std::printf("%s", served.report.toString().c_str());

    // Completion order across the fleet: affinity keeps each
    // sensor's frames in capture order even though shards complete
    // independently.
    std::printf("\ncompletion order (sensor.frame): ");
    for (const ServedFrame &sf : served.frames)
        std::printf("s%zu.%zu ", sf.sensor, sf.sensorIndex);
    std::printf("\n");
    return 0;
}
