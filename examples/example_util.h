/**
 * @file
 * Shared helpers for the example programs.
 */

#ifndef HGPCN_EXAMPLES_EXAMPLE_UTIL_H
#define HGPCN_EXAMPLES_EXAMPLE_UTIL_H

#include "common/arg_parse.h"

namespace hgpcn
{
namespace examples
{

// Argument parsing lives in common/arg_parse.h so the bench drivers
// (bench/bench_util.h) share one implementation.
using hgpcn::parsePositiveArg;

} // namespace examples
} // namespace hgpcn

#endif // HGPCN_EXAMPLES_EXAMPLE_UTIL_H
