/**
 * @file
 * The Pre-processing Engine as a plug-in for other accelerators.
 *
 * Section VIII: "the HgPCN Pre-processing Engine can be a plug-in to
 * other PCN inference accelerators (not using the VEG method) to
 * perform the end-to-end PCN inference." This example front-ends the
 * PointACC model with HgPCN's OIS pre-processing and compares the
 * resulting E2E latency against (a) PointACC with CPU FPS
 * pre-processing and (b) the full HgPCN system.
 *
 *   ./build/examples/preprocessing_plugin [input_points]
 */

#include <cstdio>

#include "baselines/point_acc.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "example_util.h"
#include "sampling/fps_sampler.h"
#include "sim/device_model.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    KittiLike::Config lidar_cfg;
    const KittiLike lidar(lidar_cfg);
    const Frame frame = lidar.generate(0);
    const std::size_t k = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/16384, "input_points");
    std::printf("frame: %zu raw points -> %zu input points\n",
                frame.cloud.size(), k);

    // OIS pre-processing (shared by both accelerator back ends).
    const PreprocessingEngine preproc;
    const PreprocessResult pre = preproc.process(frame.cloud, k);

    // Back end A: PointACC fed by the OIS plug-in.
    const PointNet2 net(PointNet2Spec::outdoorSegmentation());
    PointCloud input = pre.sampled;
    input.normalizeToUnitCube();
    RunOptions brute_opts;
    brute_opts.ds = DsMethod::BruteKnn;
    const RunOutput brute = net.run(input, brute_opts);
    const PointAccSim point_acc(SimConfig::defaults());
    const double pacc_sec = point_acc.run(brute.trace).totalSec();

    // Back end B: the full HgPCN Inference Engine.
    const InferenceEngine engine;
    const double hgpcn_sec = engine.run(net, input).totalSec();

    // Baseline pre-processing: FPS on the host CPU.
    const DeviceModel cpu(DeviceModel::xeonW2255());
    const double fps_sec = cpu.samplingSec(
        FpsSampler::predictStats(frame.cloud.size(), k), k);

    std::printf("\npre-processing options:\n");
    std::printf("  OIS plug-in (CPU+FPGA): %9.3f ms\n",
                pre.totalSec() * 1e3);
    std::printf("  FPS on Xeon W-2255:     %9.3f ms\n",
                fps_sec * 1e3);

    std::printf("\nE2E combinations:\n");
    std::printf("  CPU FPS + PointACC:     %9.3f ms\n",
                (fps_sec + pacc_sec) * 1e3);
    std::printf("  OIS plug-in + PointACC: %9.3f ms  (%.1fx faster)\n",
                (pre.totalSec() + pacc_sec) * 1e3,
                (fps_sec + pacc_sec) /
                    (pre.totalSec() + pacc_sec));
    std::printf("  full HgPCN:             %9.3f ms  (%.1fx faster)\n",
                (pre.totalSec() + hgpcn_sec) * 1e3,
                (fps_sec + pacc_sec) /
                    (pre.totalSec() + hgpcn_sec));
    return 0;
}
