/**
 * @file
 * Indoor semantic segmentation: an S3DIS-style room scanned,
 * down-sampled and labelled per point.
 *
 * Shows the segmentation path of the API: the per-point logits of
 * Pointnet++(s) come back from the Inference Engine along with the
 * hardware latency split, and the predicted labels are compared
 * against the generator's ground truth for the sampled points.
 *
 *   ./build/examples/indoor_segmentation [points]
 */

#include <cstdio>
#include <map>

#include "core/hgpcn_system.h"
#include "datasets/s3dis_like.h"
#include "example_util.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    S3disLike::Config room_cfg;
    room_cfg.points = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/120000, "points");
    const Frame room = S3disLike::generate("conference_room", room_cfg);
    std::printf("room '%s': %zu raw points, %d classes\n",
                room.name.c_str(), room.cloud.size(),
                S3disLike::kClasses);

    HgPcnSystem::Config system_cfg;
    const HgPcnSystem system(
        system_cfg, PointNet2Spec::semanticSegmentation());

    const E2eResult result = system.processFrame(room.cloud);
    const auto &labels = result.inference.output.labels;
    std::printf("segmented %zu points in %.3f ms E2E "
                "(preproc %.3f ms, inference %.3f ms)\n",
                labels.size(), result.totalSec() * 1e3,
                result.preprocess.totalSec() * 1e3,
                result.inference.totalSec() * 1e3);

    // Distribution of predicted labels (random weights -> the
    // *shape* of the output is what matters here).
    std::map<std::size_t, std::size_t> histogram;
    for (std::size_t l : labels)
        ++histogram[l];
    std::printf("\npredicted label histogram (%zu classes hit):\n",
                histogram.size());
    for (const auto &[label, count] : histogram)
        std::printf("  class %2zu: %6zu points\n", label, count);

    // Ground-truth distribution of the raw frame for comparison.
    std::map<int, std::size_t> truth;
    for (int l : room.labels)
        ++truth[l];
    std::printf("\nground-truth label histogram (raw frame):\n");
    for (const auto &[label, count] : truth)
        std::printf("  class %2d: %6zu points\n", label, count);
    return 0;
}
