/**
 * @file
 * Sampling-quality study: how much spatial information does each
 * down-sampling method preserve?
 *
 * The paper orders methods FPS > OIS ~ FPS >> RS on information
 * retention (Section VII-C). This example quantifies that with
 * geometric metrics across the Table I datasets: coverage radius
 * (directed Hausdorff cloud->sample) and minimum sample spacing,
 * plus each method's memory-access bill — the quality/cost frontier
 * a deployment has to choose from.
 *
 *   ./build/examples/sampling_quality_study [sample_cap]
 */

#include <cstdio>

#include "common/table_printer.h"
#include "datasets/dataset_suite.h"
#include "example_util.h"
#include "sampling/approx_ois_sampler.h"
#include "sampling/fps_sampler.h"
#include "sampling/metrics.h"
#include "sampling/ois_fps_sampler.h"
#include "sampling/random_sampler.h"

int
main(int argc, char **argv)
{
    using namespace hgpcn;

    // Cap on K for the O(N*K) metric computation.
    const std::size_t k_cap = examples::parsePositiveArg(
        argc, argv, 1, /*fallback=*/1024, "sample_cap");

    TablePrinter table({"dataset", "method", "coverage",
                        "min spacing", "memory accesses"});

    for (const auto &task : DatasetSuite::tableOneSmall()) {
        const Frame frame = task.rawFrame(0);
        const std::size_t k = std::min(task.inputSize, k_cap);

        auto add = [&](const std::string &method,
                       const SampleResult &result) {
            std::uint64_t accesses = 0;
            for (const auto &[name, value] : result.stats.all()) {
                if (name.find("host") != std::string::npos ||
                    name.find("intermediate") != std::string::npos) {
                    accesses += value;
                }
            }
            table.addRow(
                {task.dataset, method,
                 TablePrinter::fmt(
                     coverageRadius(frame.cloud, result.indices), 3),
                 TablePrinter::fmt(
                     minSampleSpacing(frame.cloud, result.indices), 4),
                 TablePrinter::fmtCount(accesses)});
        };

        FpsSampler fps;
        add("FPS", fps.sample(frame.cloud, k));
        OisFpsSampler ois;
        add("OIS", ois.sample(frame.cloud, k));
        ApproxOisSampler approx;
        add("OIS-approx", approx.sample(frame.cloud, k));
        RandomSampler rs;
        add("RS", rs.sample(frame.cloud, k));
    }
    table.print();
    std::printf("\nlower coverage = better worst-case retention; "
                "higher spacing = more\nFPS-like spread. OIS pays "
                "orders of magnitude fewer memory accesses\nfor "
                "FPS-class quality.\n");
    return 0;
}
