#!/usr/bin/env python3
"""Cross-PR wall-clock trend gate over the BENCH_*.json records.

Compares a freshly generated bench record against the committed copy
at the repo root (the machine-readable perf trajectory,
docs/PERFORMANCE.md). Two kinds of keys are held to two kinds of
bars:

- machine-independent keys (modeled seconds, workload counters,
  schema fields, closed-form trace parameters) must match the
  committed record exactly -- any drift is a fidelity regression,
  caught no matter which machine generated either file;
- wall-clock keys (FPS, ns/op) only have to stay within a loose
  ratio band of the committed value, because the committed numbers
  come from a dev container and CI runs on shared runners. The
  bands are deliberately coarse (0.25-0.4x) so runner noise cannot
  flake the job while a genuine order-of-magnitude regression still
  fails it.

A record (or an individual key) present only in the fresh file is a
new baseline, not a violation: the first PR that adds a bench (or
grows its record) must be able to commit the record it just
generated. Both cases print a NOTE so the reviewer sees the baseline
grow; removing a committed key still fails.

Usage:
    tools/check_bench_trend.py <committed.json> <fresh.json>
    tools/check_bench_trend.py --self-test

The rule set is selected by the record's "bench" field. Exit status
is nonzero on any violation; every violation is printed. Stdlib
only (runs on a bare CI python3).
"""

import json
import math
import re
import sys

# Rule vocabulary, first matching pattern wins:
#   ("higher", r)  wall-clock, higher is better: fresh >= r * committed
#   ("lower", r)   wall-clock, lower is better:  fresh <= committed / r
#   ("ignore",)    content not compared (presence/shape still is)
# Keys matching no pattern are machine-independent: exact for ints,
# bools and strings; relative 1e-9 for floats (formatting headroom).
RULES = {
    "runtime_throughput": [
        (r"^wallClockFps$", ("higher", 0.25)),
        (r"^wallClockFpsTraced$", ("higher", 0.25)),
        # Difference of two same-machine wall clocks; tiny and noise-
        # dominated (can go negative). The hard bound is the bench's
        # own --assert-tracer-overhead gate, not the trend.
        (r"^tracerOverheadPct$", ("ignore",)),
    ],
    "microbench_kernels": [
        (r"\.ns_per_op$", ("lower", 0.25)),
        (r"\.items_per_sec$", ("higher", 0.25)),
        # Ratio of two wall-clocks on one machine: tighter than the
        # absolute rates, and already floored at 1.5x absolute by
        # --assert-knn-speedup in the same CI job.
        (r"^knn_speedup_kitti$", ("higher", 0.4)),
    ],
    "serving_elastic": [
        # Human-readable autoscaler narration: float formatting, not
        # trajectory. The decisions themselves are pinned by
        # widthTrajectory/scaleEvents, which stay exact.
        (r"^elastic\.decisionLog\[", ("ignore",)),
    ],
    # preprocess_coherence stores deterministic fields only -- the
    # default exact rules double as its determinism check.
    "preprocess_coherence": [],
    # batching_throughput reports the virtual-time schedule only
    # (wall-clock is stdout-only by design): exact rules are the
    # determinism check, like preprocess_coherence.
    "batching_throughput": [],
    # serving_faults records the faulted virtual schedule: the
    # completion ratio, fault/retry/failover counters and modeled
    # FPS are all deterministic arithmetic (wall-clock stays on
    # stdout), so the exact rules pin the whole faulted schedule —
    # completionRatio drift is a fault-machinery regression.
    "serving_faults": [],
}


def flatten(value, path, out):
    if isinstance(value, dict):
        for k, v in value.items():
            flatten(v, f"{path}.{k}" if path else k, out)
    elif isinstance(value, list):
        out[f"{path}#len"] = len(value)
        for i, v in enumerate(value):
            flatten(v, f"{path}[{i}]", out)
    else:
        out[path] = value


def rule_for(bench, path):
    for pattern, rule in RULES[bench]:
        if re.search(pattern, path):
            return rule
    return ("exact",)


def check(committed, fresh):
    bench = committed.get("bench")
    if bench not in RULES:
        return [f"unknown bench '{bench}' (committed record)"], []
    if fresh.get("bench") != bench:
        return [
            f"bench mismatch: committed '{bench}' "
            f"vs fresh '{fresh.get('bench')}'"
        ], []

    a, b = {}, {}
    flatten(committed, "", a)
    flatten(fresh, "", b)

    problems = []
    notices = []
    for path in sorted(set(a) | set(b)):
        rule = rule_for(bench, path)
        if path not in a:
            if rule[0] != "ignore":
                notices.append(
                    f"{path}: only in fresh record (new baseline)"
                )
            continue
        if path not in b:
            if rule[0] != "ignore":
                problems.append(f"{path}: missing from fresh record")
            continue
        old, new = a[path], b[path]
        if rule[0] == "ignore":
            continue
        if rule[0] in ("higher", "lower"):
            ratio = rule[1]
            if not (
                isinstance(old, (int, float))
                and isinstance(new, (int, float))
            ):
                problems.append(f"{path}: expected numbers, got "
                                f"{old!r} vs {new!r}")
            elif rule[0] == "higher" and new < ratio * old:
                problems.append(
                    f"{path}: {new:g} fell below {ratio:g}x "
                    f"committed {old:g}"
                )
            elif rule[0] == "lower" and new * ratio > old:
                problems.append(
                    f"{path}: {new:g} exceeds committed {old:g} "
                    f"by more than {1 / ratio:g}x"
                )
            continue
        # Machine-independent: exact, with float formatting headroom.
        if isinstance(old, float) or isinstance(new, float):
            if not math.isclose(old, new, rel_tol=1e-9, abs_tol=0.0):
                problems.append(f"{path}: {old!r} -> {new!r} "
                                "(machine-independent key moved)")
        elif old != new:
            problems.append(f"{path}: {old!r} -> {new!r} "
                            "(machine-independent key moved)")
    return problems, notices


def self_test():
    """Verify the checker's verdicts on synthetic perturbations.

    Guards the gate itself: a rules edit that silently stops
    failing on drift (or starts flaking on noise) is caught here,
    without needing a real bench run. Run by CI before the real
    comparisons.
    """
    base = {
        "bench": "runtime_throughput",
        "schema": "hgpcn-bench-runtime/2",
        "frames": 8,
        "serialModeledFps": 123.13,
        "wallClockFps": 2.2,
        "wallClockFpsTraced": 2.1,
        "tracerOverheadPct": 1.2,
        "pacedModeledFps": 11.297,
        "traceVirtualEvents": 24,
    }
    cases = []

    def case(name, mutate, expect_problems, expect_notices=0):
        fresh = dict(base)
        mutate(fresh)
        problems, notices = check(base, fresh)
        ok = (bool(problems) == expect_problems
              and len(notices) == expect_notices)
        cases.append((name, ok, problems, notices))

    case("identical record passes", lambda f: None, False)
    case("fresh-only key is a NOTE, not a failure",
         lambda f: f.update(newOverheadKey=1.0), False, 1)
    case("machine-independent drift fails",
         lambda f: f.update(pacedModeledFps=11.298), True)
    case("wall-clock collapse fails",
         lambda f: f.update(wallClockFpsTraced=0.1), True)
    case("wall-clock noise within band passes",
         lambda f: f.update(wallClockFps=1.9,
                            wallClockFpsTraced=2.6), False)
    case("ignored key may move freely",
         lambda f: f.update(tracerOverheadPct=-3.0), False)
    case("dropped committed key fails",
         lambda f: f.pop("traceVirtualEvents"), True)

    # serving_faults is all-exact: the faulted schedule is
    # deterministic, so any numeric drift is a regression.
    faults_base = {
        "bench": "serving_faults",
        "schema": "hgpcn-bench-faults/1",
        "frames": 756,
        "completionRatio": 0.994708,
        "framesFailed": 4,
        "framesRetried": 48,
        "failovers": 146,
        "faultedSustainedFps": 3744.8,
        "zeroPlanIdentical": True,
        "replayIdentical": True,
    }

    def faults_case(name, mutate, expect_problems):
        fresh = dict(faults_base)
        mutate(fresh)
        problems, notices = check(faults_base, fresh)
        ok = bool(problems) == expect_problems and not notices
        cases.append((name, ok, problems, notices))

    faults_case("identical faults record passes", lambda f: None,
                False)
    faults_case("completion-ratio drift fails",
                lambda f: f.update(completionRatio=0.92), True)
    faults_case("fault-counter drift fails",
                lambda f: f.update(framesRetried=47), True)
    faults_case("modeled-FPS drift fails (deterministic schedule)",
                lambda f: f.update(faultedSustainedFps=3744.9),
                True)
    faults_case("lost replay identity fails",
                lambda f: f.update(replayIdentical=False), True)

    failed = [c for c in cases if not c[1]]
    for name, ok, problems, notices in cases:
        print(f"{'ok' if ok else 'FAIL'}  {name}")
        if not ok:
            for p in problems:
                print(f"      problem: {p}")
            for n in notices:
                print(f"      notice: {n}")
    if failed:
        print(f"SELF-TEST FAIL: {len(failed)}/{len(cases)} cases")
        return 1
    print(f"SELF-TEST OK: {len(cases)} cases")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1]) as f:
            committed = json.load(f)
    except FileNotFoundError:
        with open(argv[2]) as f:
            fresh = json.load(f)
        bench = fresh.get("bench")
        if bench not in RULES:
            print(f"FAIL: unknown bench '{bench}' (fresh record)")
            return 1
        print(f"NOTE {bench}: no committed record at {argv[1]}; "
              "fresh record is the new baseline")
        return 0
    with open(argv[2]) as f:
        fresh = json.load(f)
    problems, notices = check(committed, fresh)
    name = committed.get("bench", argv[1])
    for n in notices:
        print(f"NOTE {name}: {n}")
    if problems:
        print(f"FAIL {name}: {len(problems)} violation(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"OK {name}: fresh record within trend bounds "
          f"({len(fresh)} top-level keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
