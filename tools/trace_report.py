#!/usr/bin/env python3
"""Stall-attribution report over a Chrome trace_event export.

Reads a trace written by the obs layer (src/obs/trace_export.cc —
`runtime_throughput --trace`, `serving_scaling --trace`, or a
test's writeChromeTrace call) and breaks each pipeline stage's
virtual time down by where frames spent it:

- exec      the stage was executing the frame;
- wait      the frame sat in the stage's input queue (upstream
            finished, stage busy or unit taken);
- batchwait the frame was held back by batch formation (coalescing
            stages only);
- blocked   the frame finished the stage but could not enqueue
            downstream (bounded queue full — backpressure);
- pend      the frame waited at the source for admission credit.

Rows are (shard, stage); a standalone runner reports as shard "-".
The decomposition is exact by construction: the runtime emits these
spans as a partition of every frame's [arrival, completion] interval
(docs/OBSERVABILITY.md), which `--check` verifies.

Usage:
    tools/trace_report.py <trace.json>           # print the table
    tools/trace_report.py --check <trace.json>   # validate, exit 1
                                                 # on any violation

`--check` validates structure (phases, pids, required fields),
non-negative durations, known span categories, and per-frame
conservation: each frame's virtual spans must tile its arrival-to-
completion interval with no gaps or overlaps beyond float-formatting
noise. Fault-tolerant serves keep this invariant: retry/backoff and
slowdown time is charged *inside* the frame's exec span (the fault
layer stretches the stage occupancy, it does not add spans), so a
retried or failed frame tiles exactly like a clean one. Fault
events themselves are instants — retry:<stage>, fail:<stage>,
degrade:<stage>, failover:shard<N> — summarized in their own table.
Stdlib only (runs on a bare CI python3).
"""

import json
import sys
from collections import defaultdict

# Span-name prefixes the runtime emits on the virtual clock
# (src/runtime/stream_runner.cc emitVirtualTrace).
STALL_PREFIXES = ("exec", "wait", "batchwait", "blocked", "pend")
# Spans excluded from per-frame conservation: batch spans aggregate
# several frames, epoch spans are control-loop time.
NON_FRAME_SPAN_PREFIXES = ("batch", "epoch")
KNOWN_INSTANT_PREFIXES = ("place", "drop", "shed", "scale", "octree",
                          "retry", "fail", "degrade", "failover")
# Fault-layer instants (src/runtime/stream_runner.cc,
# src/serving/sharded_runner.cc): reported in their own table.
FAULT_INSTANT_PREFIXES = ("retry", "fail", "degrade", "failover")
VIRTUAL_PID = 1
WALL_PID = 2
# %.9g formatting keeps ~9 significant digits; at megasecond-scale
# microsecond timestamps that leaves ~1e-3 us of rounding. Spans
# under the runtime's 1e-12 s emission floor are suppressed, so a
# tiling gap is either formatting noise or a real hole.
TILE_EPS_US = 0.5


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise SystemExit(f"{path}: not a trace_event document")
    return doc


def span_prefix(name):
    return name.split(":", 1)[0]


def iter_spans(events):
    for ev in events:
        if ev.get("ph") == "X" and ev.get("pid") == VIRTUAL_PID:
            yield ev


def shard_of(ev):
    shard = ev.get("args", {}).get("shard", -1)
    return "-" if shard < 0 else str(shard)


def stage_of(name):
    parts = name.split(":", 1)
    return parts[1] if len(parts) == 2 else name


def report(doc):
    """Per-(shard, stage) stall table from the virtual spans."""
    # (shard, stage) -> prefix -> seconds; frame counts per key.
    table = defaultdict(lambda: defaultdict(float))
    frames = defaultdict(set)
    for ev in iter_spans(doc["traceEvents"]):
        prefix = span_prefix(ev["name"])
        if prefix not in STALL_PREFIXES:
            continue
        if prefix == "pend":
            key = (shard_of(ev), "source")
        else:
            key = (shard_of(ev), stage_of(ev["name"]))
        table[key][prefix] += ev.get("dur", 0.0) / 1e6
        frame = ev.get("args", {}).get("frame")
        if frame is not None:
            frames[key].add(frame)

    if not table:
        print("no virtual-time stall spans in trace")
        return

    cols = ["shard", "stage", "frames", "exec s", "wait s",
            "batchwait s", "blocked s", "pend s", "stalled %"]
    rows = []
    for key in sorted(table):
        shard, stage = key
        t = table[key]
        stalled = t["wait"] + t["batchwait"] + t["blocked"] + t["pend"]
        total = stalled + t["exec"]
        rows.append([
            shard, stage, str(len(frames[key])),
            f"{t['exec']:.4f}", f"{t['wait']:.4f}",
            f"{t['batchwait']:.4f}", f"{t['blocked']:.4f}",
            f"{t['pend']:.4f}",
            f"{100.0 * stalled / total:.1f}" if total > 0 else "-",
        ])
    widths = [max(len(c), *(len(r[i]) for r in rows))
              for i, c in enumerate(cols)]
    line = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(v.ljust(widths[i]) for i, v in enumerate(r)))

    fault_report(doc)


def fault_report(doc):
    """Per-shard fault-event table (retry/fail/degrade/failover
    instants on the virtual clock); silent when the trace carries
    none, so non-faulted reports are unchanged."""
    counts = defaultdict(lambda: defaultdict(int))
    for ev in doc["traceEvents"]:
        if ev.get("ph") != "i" or ev.get("pid") != VIRTUAL_PID:
            continue
        prefix = span_prefix(ev["name"])
        if prefix not in FAULT_INSTANT_PREFIXES:
            continue
        counts[shard_of(ev)][prefix] += 1
    if not counts:
        return

    print()
    cols = ["shard", "retries", "failures", "degraded", "failovers"]
    rows = []
    for shard in sorted(counts):
        c = counts[shard]
        rows.append([shard, str(c["retry"]), str(c["fail"]),
                     str(c["degrade"]), str(c["failover"])])
    widths = [max(len(col), *(len(r[i]) for r in rows))
              for i, col in enumerate(cols)]
    line = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(v.ljust(widths[i]) for i, v in enumerate(r)))


def check(doc, path):
    """Validate the export contract; return a list of violations."""
    bad = []
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents empty or not a list"]
    if doc.get("displayTimeUnit") != "ms":
        bad.append("displayTimeUnit is not 'ms'")

    # Per-frame virtual spans for the conservation check.
    per_frame = defaultdict(list)
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        where = f"event {i} ({ev.get('name', '?')})"
        if ph not in ("M", "X", "i", "C"):
            bad.append(f"{where}: unknown phase {ph!r}")
            continue
        if ev.get("pid") not in (VIRTUAL_PID, WALL_PID):
            bad.append(f"{where}: pid not in (1, 2)")
        if ph == "M":
            continue
        if "tid" not in ev or "ts" not in ev or "name" not in ev:
            bad.append(f"{where}: missing tid/ts/name")
            continue
        if ph == "X":
            if ev.get("dur", -1.0) < 0.0:
                bad.append(f"{where}: negative/missing dur")
            prefix = span_prefix(ev["name"])
            if (prefix not in STALL_PREFIXES and
                    prefix not in NON_FRAME_SPAN_PREFIXES):
                bad.append(f"{where}: unknown span prefix "
                           f"{prefix!r}")
            elif (prefix in STALL_PREFIXES and
                  ev.get("pid") == VIRTUAL_PID):
                frame = ev.get("args", {}).get("frame")
                if frame is None:
                    bad.append(f"{where}: stall span without a "
                               "frame id")
                else:
                    shard = ev.get("args", {}).get("shard", -1)
                    per_frame[(shard, frame)].append(ev)
        elif ph == "i":
            if span_prefix(ev["name"]) not in KNOWN_INSTANT_PREFIXES:
                bad.append(f"{where}: unknown instant prefix")
        elif ph == "C":
            if "value" not in ev.get("args", {}):
                bad.append(f"{where}: counter without args.value")

    # Conservation: a frame's stall+exec spans tile one contiguous
    # interval — no gaps (unattributed time) and no overlaps
    # (double-charged time) beyond formatting noise.
    for (shard, frame), spans in sorted(per_frame.items()):
        spans.sort(key=lambda ev: (ev["ts"], ev["ts"] + ev["dur"]))
        for a, b in zip(spans, spans[1:]):
            gap = b["ts"] - (a["ts"] + a["dur"])
            if abs(gap) > TILE_EPS_US:
                kind = "gap" if gap > 0 else "overlap"
                bad.append(
                    f"shard {shard} frame {frame}: {abs(gap):.3f} us "
                    f"{kind} between {a['name']} and {b['name']}")
    if not per_frame:
        bad.append("no per-frame stall spans on the virtual clock")
    return bad


def main(argv):
    checking = "--check" in argv
    paths = [a for a in argv[1:] if a != "--check"]
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    doc = load(paths[0])
    if checking:
        bad = check(doc, paths[0])
        for b in bad:
            print(f"FAIL: {b}")
        if bad:
            return 1
        n = sum(1 for _ in iter_spans(doc["traceEvents"]))
        print(f"OK: {paths[0]} ({len(doc['traceEvents'])} events, "
              f"{n} virtual spans, conservation holds)")
        return 0
    report(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
