/**
 * @file
 * Figure 15: VEG benefit — sorter-workload reduction vs PointACC.
 *
 * Both HgPCN's DSU and PointACC's Mapping Unit rank candidates with
 * a bitonic sorter; PointACC feeds it the entire input cloud per
 * centroid while VEG feeds only the last expansion ring Nn. This
 * bench reports the candidates entering the sorter under both
 * schemes per Table I task. Paper: larger inputs see larger
 * reductions.
 */

#include "bench/bench_util.h"
#include "datasets/dataset_suite.h"

namespace hgpcn
{
namespace
{

PointCloud
sampledInput(const Frame &frame, std::size_t k)
{
    PointCloud input;
    const std::size_t stride = frame.cloud.size() / k;
    for (std::size_t i = 0; i < k; ++i) {
        input.add(
            frame.cloud.position(static_cast<PointIndex>(i * stride)));
    }
    input.normalizeToUnitCube();
    return input;
}

void
run()
{
    bench::banner("Figure 15: VEG SORT-WORKLOAD REDUCTION",
                  "Candidates entering the top-K sorter: PointACC "
                  "(entire cloud) vs HgPCN DSU (last ring Nn)");

    TablePrinter table({"task", "K", "PointACC sort cand.",
                        "VEG sort cand.", "avg Nn", "reduction"});

    for (const auto &task : DatasetSuite::tableOne()) {
        const Frame frame = task.rawFrame(0);
        const PointCloud input = sampledInput(frame, task.inputSize);
        const PointNet2 net(task.spec);

        RunOptions veg_opts;
        veg_opts.ds = DsMethod::Veg;
        const RunOutput veg = net.run(input, veg_opts);

        RunOptions brute_opts;
        brute_opts.ds = DsMethod::BruteKnn;
        const RunOutput brute = net.run(input, brute_opts);

        const std::uint64_t veg_cand =
            veg.trace.totalSortCandidates();
        const std::uint64_t brute_cand =
            brute.trace.totalSortCandidates();

        // Average last-ring size over all VEG gathers.
        std::uint64_t nn_total = 0, nn_count = 0;
        for (const auto &op : veg.trace.gathers) {
            for (const auto &trace : op.traces) {
                nn_total += trace.lastRingPoints;
                ++nn_count;
            }
        }
        const double avg_nn =
            nn_count ? static_cast<double>(nn_total) /
                           static_cast<double>(nn_count)
                     : 0.0;

        table.addRow(
            {task.dataset, std::to_string(task.inputSize),
             TablePrinter::fmtCount(brute_cand),
             TablePrinter::fmtCount(veg_cand),
             TablePrinter::fmt(avg_nn, 1),
             TablePrinter::fmtRatio(static_cast<double>(brute_cand) /
                                        static_cast<double>(
                                            veg_cand ? veg_cand : 1),
                                    0)});
    }
    table.print();
    std::printf("\npaper: reduction grows with the task's input "
                "size.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
