/**
 * @file
 * Ablation: voxel-level parallelism in the Down-sampling Unit.
 *
 * Fig. 7(b) deploys eight Sampling Modules, one per child octant.
 * This bench sweeps the module count (1..16) and reports the
 * resulting descent latency and the engine total, isolating the
 * design choice's contribution.
 */

#include "bench/bench_util.h"
#include "core/preprocessing_engine.h"
#include "datasets/modelnet_like.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("ABLATION: SAMPLING-MODULE PARALLELISM",
                  "Down-sampling Unit descent latency vs number of "
                  "parallel Sampling Modules (paper design: 8)");

    ModelNetLike::Config mn_cfg;
    mn_cfg.points = 100000;
    const Frame frame = ModelNetLike::generate("MN.chair", mn_cfg);
    const std::size_t k = 4096;

    TablePrinter table({"modules", "descent", "leaf scan",
                        "unit total", "engine total", "vs 1 module"});

    double base_descent = 0.0;
    for (const std::size_t modules : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8},
                                      std::size_t{16}}) {
        PreprocessingEngine::Config cfg;
        cfg.sim.fpga.samplingModules = modules;
        const PreprocessingEngine engine(cfg);
        const auto result = engine.process(frame.cloud, k);
        if (modules == 1)
            base_descent = result.dsu.descentSec;
        table.addRow(
            {std::to_string(modules),
             TablePrinter::fmtTime(result.dsu.descentSec),
             TablePrinter::fmtTime(result.dsu.leafScanSec),
             TablePrinter::fmtTime(result.dsu.totalSec()),
             TablePrinter::fmtTime(result.totalSec()),
             TablePrinter::fmtRatio(
                 base_descent / result.dsu.descentSec, 1)});
    }
    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
