/**
 * @file
 * google-benchmark microbenchmarks of the core kernels: Morton
 * encoding, octree construction, OIS sampling, VEG gathering, the
 * brute-force baselines, the spatial-hash KNN index (src/knn) and
 * the blocked GEMM. These are the software costs behind Figs. 9-12
 * and the host hot path (docs/PERFORMANCE.md); wall-clock per-kernel
 * numbers on the build machine.
 *
 * `--json <path>` additionally writes a BENCH_kernels.json record
 * (kernel, ns/op, items/s) for the machine-readable perf trajectory,
 * including the spatial-hash-vs-brute KNN speedup on the KITTI-scale
 * case; `--assert-knn-speedup <x>` exits nonzero when that speedup
 * falls below x (the CI perf-smoke guard — coarse on purpose).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/frame_workspace.h"
#include "gather/brute_gatherers.h"
#include "gather/veg_gatherer.h"
#include "knn/spatial_hash_knn.h"
#include "nn/mlp.h"
#include "sampling/fps_sampler.h"
#include "sampling/ois_fps_sampler.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed = 1)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

std::vector<PointIndex>
randomCentrals(std::size_t count, std::size_t n, std::uint64_t seed)
{
    std::vector<PointIndex> centrals(count);
    Rng rng(seed);
    for (auto &c : centrals)
        c = static_cast<PointIndex>(rng.below(n));
    return centrals;
}

void
BM_MortonEncode3(benchmark::State &state)
{
    Rng rng(2);
    std::vector<std::uint32_t> coords(3 * 1024);
    for (auto &c : coords)
        c = static_cast<std::uint32_t>(rng.below(1u << 21));
    for (auto _ : state) {
        for (std::size_t i = 0; i + 2 < coords.size(); i += 3) {
            benchmark::DoNotOptimize(morton::encode3(
                coords[i], coords[i + 1], coords[i + 2], 21));
        }
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonEncode3);

void
BM_OctreeBuild(benchmark::State &state)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(state.range(0)));
    Octree::Config cfg;
    cfg.maxDepth = 12;
    cfg.leafCapacity = 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(Octree::build(cloud, cfg));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(10000)->Arg(100000);

void
BM_OisSample(benchmark::State &state)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(state.range(0)));
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 12;
    tree_cfg.leafCapacity = 64;
    Octree tree = Octree::build(cloud, tree_cfg);
    const OisFpsSampler sampler;
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sampleWithTree(tree, 4096));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_OisSample)->Arg(100000);

void
BM_FpsSample(benchmark::State &state)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(state.range(0)));
    FpsSampler sampler;
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(cloud, 512));
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FpsSample)->Arg(20000);

void
BM_VegGather(benchmark::State &state)
{
    const PointCloud cloud = randomCloud(4096);
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 9;
    const Octree tree = Octree::build(cloud, tree_cfg);
    VegKnn veg(tree);
    const std::vector<PointIndex> centrals = randomCentrals(512, 4096, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(veg.gather(centrals, 32));
    state.SetItemsProcessed(state.iterations() * centrals.size());
}
BENCHMARK(BM_VegGather);

/** Brute KNN at SA-layer scale: args are (n, centrals). The 16384
 * case is the KITTI-scale SA0 workload — the denominator of the
 * spatial-hash speedup guard. */
void
BM_BruteKnnGather(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t m = static_cast<std::size_t>(state.range(1));
    const PointCloud cloud = randomCloud(n);
    BruteKnn knn(cloud);
    const std::vector<PointIndex> centrals = randomCentrals(m, n, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(knn.gather(centrals, 32));
    state.SetItemsProcessed(state.iterations() * centrals.size());
}
BENCHMARK(BM_BruteKnnGather)
    ->Args({4096, 512})
    ->Args({16384, 4096});

/** The exact spatial-hash index on the same workloads (same
 * neighbor sets bit for bit — tests/test_knn_index.cc). */
void
BM_SpatialHashKnnGather(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const std::size_t m = static_cast<std::size_t>(state.range(1));
    const PointCloud cloud = randomCloud(n);
    const std::vector<PointIndex> centrals = randomCentrals(m, n, 4);
    FrameWorkspace ws;
    for (auto _ : state) {
        ws.beginFrame();
        SpatialHashKnn index(cloud.positions(), &ws);
        benchmark::DoNotOptimize(index.gather(
            centrals, 32, SpatialHashKnn::Accounting::ModeledBrute));
    }
    state.SetItemsProcessed(state.iterations() * centrals.size());
}
BENCHMARK(BM_SpatialHashKnnGather)
    ->Args({4096, 512})
    ->Args({16384, 4096});

/** Blocked GEMM at the Pointnet++(s) SA0 shape (nn/tensor.cc). */
void
BM_BlockedMatmul(benchmark::State &state)
{
    Rng rng(5);
    Tensor a(32768, 32), b(32, 64);
    a.randomize(rng, 0.5f);
    a.reluInPlace(); // post-ReLU sparsity, like layer 2+ inputs
    b.randomize(rng, 0.5f);
    Tensor out;
    for (auto _ : state) {
        Tensor::matmulInto(a, b, out);
        benchmark::DoNotOptimize(out.row(0));
    }
    state.SetItemsProcessed(state.iterations() * a.rows() * a.cols() *
                            b.cols());
}
BENCHMARK(BM_BlockedMatmul);

/** Intra-op row parallelism at the Pointnet++(s) SA0 MLP shape:
 * arg is the worker-thread count splitting GEMM rows within one
 * frame (StreamRunner::Config::intraOpThreads). Outputs are
 * bit-identical at any count; this measures the wall-clock lever
 * (docs/PERFORMANCE.md "intra-op threads"). */
void
BM_MlpIntraOpThreads(benchmark::State &state)
{
    const int threads = static_cast<int>(state.range(0));
    Rng rng(6);
    const Mlp mlp(3 + 32, {64, 64, 128}, rng);
    Tensor x(32768, 3 + 32);
    x.randomize(rng, 0.5f);
    FrameWorkspace ws;
    ExecutionTrace trace;
    for (auto _ : state) {
        ws.beginFrame();
        trace.gemms.clear();
        benchmark::DoNotOptimize(
            mlp.forwardArena(x, "sa0", trace, ws, threads).row(0));
    }
    state.SetItemsProcessed(state.iterations() * x.rows());
}
BENCHMARK(BM_MlpIntraOpThreads)->Arg(1)->Arg(2)->Arg(4);

/** Capture every finished run so --json can replay it. */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Entry
    {
        double nsPerOp = 0;
        double itemsPerSec = 0;
    };

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            Entry e;
            e.nsPerOp = run.GetAdjustedRealTime();
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                e.itemsPerSec = it->second;
            results[run.benchmark_name()] = e;
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    std::map<std::string, Entry> results;
};

int
runBenchmarks(int argc, char **argv)
{
    std::string json_path = bench::extractJsonPath(argc, argv);
    double assert_speedup = 0.0;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--assert-knn-speedup") == 0) {
            HGPCN_ASSERT(i + 1 < argc,
                         "--assert-knn-speedup needs a value");
            assert_speedup = std::atof(argv[++i]);
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    const std::string brute = "BM_BruteKnnGather/16384/4096";
    const std::string hashed = "BM_SpatialHashKnnGather/16384/4096";
    double speedup = 0.0;
    if (reporter.results.count(brute) &&
        reporter.results.count(hashed) &&
        reporter.results[hashed].nsPerOp > 0.0) {
        speedup = reporter.results[brute].nsPerOp /
                  reporter.results[hashed].nsPerOp;
        std::printf("\nspatial-hash KNN speedup vs brute "
                    "(KITTI-scale, n=16384, q=4096, k=32): %.1fx\n",
                    speedup);
    }

    if (!json_path.empty()) {
        bench::JsonWriter json;
        json.obj()
            .field("bench", "microbench_kernels")
            .field("schema", "hgpcn-bench-kernels/1")
            .key("records")
            .arr();
        for (const auto &[name, e] : reporter.results) {
            json.obj()
                .field("kernel", name)
                .field("ns_per_op", e.nsPerOp)
                .field("items_per_sec", e.itemsPerSec)
                .close();
        }
        json.close(); // records
        json.field("knn_speedup_kitti", speedup);
        json.close(); // root
        json.writeTo(json_path);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (assert_speedup > 0.0 && speedup < assert_speedup) {
        std::fprintf(stderr,
                     "FAIL: spatial-hash KNN speedup %.2fx below the "
                     "%.2fx guard\n",
                     speedup, assert_speedup);
        return 1;
    }
    benchmark::Shutdown();
    return 0;
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    return hgpcn::runBenchmarks(argc, argv);
}
