/**
 * @file
 * google-benchmark microbenchmarks of the core kernels: Morton
 * encoding, octree construction, OIS sampling, VEG gathering and
 * the brute-force baselines. These are the software costs behind
 * Figs. 9-12; wall-clock per-kernel numbers on the build machine.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gather/brute_gatherers.h"
#include "gather/veg_gatherer.h"
#include "sampling/fps_sampler.h"
#include "sampling/ois_fps_sampler.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed = 1)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

void
BM_MortonEncode3(benchmark::State &state)
{
    Rng rng(2);
    std::vector<std::uint32_t> coords(3 * 1024);
    for (auto &c : coords)
        c = static_cast<std::uint32_t>(rng.below(1u << 21));
    for (auto _ : state) {
        for (std::size_t i = 0; i + 2 < coords.size(); i += 3) {
            benchmark::DoNotOptimize(morton::encode3(
                coords[i], coords[i + 1], coords[i + 2], 21));
        }
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonEncode3);

void
BM_OctreeBuild(benchmark::State &state)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(state.range(0)));
    Octree::Config cfg;
    cfg.maxDepth = 12;
    cfg.leafCapacity = 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(Octree::build(cloud, cfg));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(10000)->Arg(100000);

void
BM_OisSample(benchmark::State &state)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(state.range(0)));
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 12;
    tree_cfg.leafCapacity = 64;
    Octree tree = Octree::build(cloud, tree_cfg);
    const OisFpsSampler sampler;
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sampleWithTree(tree, 4096));
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_OisSample)->Arg(100000);

void
BM_FpsSample(benchmark::State &state)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(state.range(0)));
    FpsSampler sampler;
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.sample(cloud, 512));
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FpsSample)->Arg(20000);

void
BM_VegGather(benchmark::State &state)
{
    const PointCloud cloud = randomCloud(4096);
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 9;
    const Octree tree = Octree::build(cloud, tree_cfg);
    VegKnn veg(tree);
    std::vector<PointIndex> centrals(512);
    Rng rng(3);
    for (auto &c : centrals)
        c = static_cast<PointIndex>(rng.below(4096));
    for (auto _ : state)
        benchmark::DoNotOptimize(veg.gather(centrals, 32));
    state.SetItemsProcessed(state.iterations() * centrals.size());
}
BENCHMARK(BM_VegGather);

void
BM_BruteKnnGather(benchmark::State &state)
{
    const PointCloud cloud = randomCloud(4096);
    BruteKnn knn(cloud);
    std::vector<PointIndex> centrals(512);
    Rng rng(4);
    for (auto &c : centrals)
        c = static_cast<PointIndex>(rng.below(4096));
    for (auto _ : state)
        benchmark::DoNotOptimize(knn.gather(centrals, 32));
    state.SetItemsProcessed(state.iterations() * centrals.size());
}
BENCHMARK(BM_BruteKnnGather);

} // namespace
} // namespace hgpcn

BENCHMARK_MAIN();
