/**
 * @file
 * Temporal-coherence preprocessing: incremental vs from-scratch
 * index construction on a drive trace (docs/PERFORMANCE.md).
 *
 * Consecutive LiDAR frames share most of their points, and the
 * cross-frame cache (core/temporal_preprocess.h) exploits that:
 * the Morton octree is diffed and re-erected only where dirty, the
 * spatial-hash KNN buckets and the VoxelGrid occupancy list are
 * patched instead of rebuilt. This bench drives both arms over the
 * same seeded CoherentDrive trace (closed-form ~99% frame overlap):
 *
 *   scratch      TemporalPreprocessState{temporalCache=false} —
 *                every frame builds octree + KNN + occupancy from
 *                scratch (pooled storage, the pre-cache behavior);
 *   incremental  TemporalPreprocessState{temporalCache=true} —
 *                frames update against the carried previous frame.
 *
 * Every frame's outputs are compared bitwise (sampled points, SPT,
 * Octree-Table bytes, modeled build and DSU seconds): the scratch
 * arm is the oracle and any divergence fails the bench. The
 * steady-state wall-clock ratio of the two build stages is the
 * number this bench exists to report; modeled seconds are charged
 * by closed-form workload formulas and cannot move by construction.
 *
 * `--json <path>` writes BENCH_preprocess.json — deterministic
 * fields only (config, closed-form overlap, cache telemetry,
 * modeled seconds), so the record is byte-identical across runs and
 * machines; wall-clock numbers are printed, not stored.
 * `--assert-coherence-speedup <x>` exits nonzero unless the
 * steady-state build-stage speedup reaches `x` (CI holds 2.0x
 * against a measured ~2.5-3x) and every frame matched the oracle.
 * Positionals: [frames] [points].
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "core/preprocessing_engine.h"
#include "core/temporal_preprocess.h"
#include "datasets/coherent_drive.h"

namespace hgpcn
{
namespace
{

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/** Bitwise PreprocessResult equality (scratch arm = oracle). */
bool
resultsIdentical(const PreprocessResult &oracle,
                 const PreprocessResult &cached)
{
    if (oracle.sampled.size() != cached.sampled.size() ||
        oracle.spt != cached.spt ||
        oracle.octreeTableBytes != cached.octreeTableBytes ||
        !bitEqual(oracle.octreeBuildSec, cached.octreeBuildSec) ||
        !bitEqual(oracle.dsu.totalSec(), cached.dsu.totalSec()))
        return false;
    const auto a = oracle.sampled.positions();
    const auto b = cached.sampled.positions();
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(Vec3)) != 0)
            return false;
    return true;
}

int
run(std::size_t frames, std::size_t points,
    const std::string &json_path, double assert_speedup)
{
    bench::banner(
        "PREPROCESSING: TEMPORAL COHERENCE",
        "incremental octree + cached KNN/occupancy vs from-scratch "
        "on a ~99%-overlap drive trace (docs/PERFORMANCE.md)");

    const std::size_t warmup = std::min<std::size_t>(8, frames / 2);
    const std::size_t k = std::min<std::size_t>(1024, points / 2);

    CoherentDrive::Config dcfg;
    dcfg.points = points;
    dcfg.churnFraction = 0.01;
    const CoherentDrive drive(dcfg);

    const PreprocessingEngine engine;

    TemporalPreprocessState::Config scratch_cfg;
    scratch_cfg.octree = engine.config().octree;
    scratch_cfg.temporalCache = false;
    TemporalPreprocessState scratch_state(scratch_cfg);

    TemporalPreprocessState::Config inc_cfg = scratch_cfg;
    inc_cfg.temporalCache = true;
    TemporalPreprocessState inc_state(inc_cfg);

    bench::section("trace");
    std::printf("frames %zu (warmup %zu)  points/frame %zu  "
                "sample K %zu\n",
                frames, warmup, points, k);
    std::printf("churn %zu slots/frame  overlap(next frame) %.4f  "
                "overlap(5 frames) %.4f\n",
                drive.churnPerFrame(), drive.overlapFraction(1),
                drive.overlapFraction(5));

    // Each repetition replays the whole trace (the carry persists
    // — frame 0 of the next pass diffs against frame F-1, still a
    // hit); per-arm steady-state times take the minimum across
    // repetitions, the standard estimator robust to transient
    // machine load. All JSON-bound fields are load-independent.
    constexpr int kReps = 3;
    double scratch_build = 0.0, inc_build = 0.0;
    double scratch_sample = 0.0, inc_sample = 0.0;
    double modeled_build = 0.0, modeled_dsu_sum = 0.0;
    std::size_t table_bytes = 0;
    bool identical = true;

    for (int rep = 0; rep < kReps; ++rep) {
        double rep_sb = 0.0, rep_ib = 0.0;
        double rep_ss = 0.0, rep_is = 0.0;
        for (std::size_t f = 0; f < frames; ++f) {
            const Frame frame = drive.generate(f);

            const double t0 = nowSec();
            PreprocessResult oracle =
                engine.buildStage(frame.cloud, &scratch_state);
            const double t1 = nowSec();
            PreprocessResult cached =
                engine.buildStage(frame.cloud, &inc_state);
            const double t2 = nowSec();
            engine.sampleStage(oracle, k);
            const double t3 = nowSec();
            engine.sampleStage(cached, k);
            const double t4 = nowSec();

            if (!resultsIdentical(oracle, cached)) {
                std::printf("FAIL: frame %zu diverged from the "
                            "from-scratch oracle\n",
                            f);
                identical = false;
            }
            if (rep == 0) {
                modeled_build = oracle.octreeBuildSec;
                modeled_dsu_sum += oracle.dsu.totalSec();
                table_bytes = oracle.octreeTableBytes;
            }

            if (f < warmup)
                continue;
            rep_sb += t1 - t0;
            rep_ib += t2 - t1;
            rep_ss += t3 - t2;
            rep_is += t4 - t3;
        }
        if (rep == 0 || rep_sb < scratch_build)
            scratch_build = rep_sb;
        if (rep == 0 || rep_ib < inc_build)
            inc_build = rep_ib;
        if (rep == 0 || rep_ss < scratch_sample)
            scratch_sample = rep_ss;
        if (rep == 0 || rep_is < inc_sample)
            inc_sample = rep_is;
    }

    const std::size_t steady = frames - warmup;
    const double build_speedup = scratch_build / inc_build;
    const double e2e_speedup = (scratch_build + scratch_sample) /
                               (inc_build + inc_sample);

    bench::section("steady-state wall-clock (per frame)");
    std::printf("%-28s %12s %12s %9s\n", "stage", "scratch",
                "incremental", "speedup");
    std::printf("%-28s %10.3f ms %10.3f ms %8.2fx\n",
                "index build (octree+KNN+occ)",
                1e3 * scratch_build / steady,
                1e3 * inc_build / steady, build_speedup);
    std::printf("%-28s %10.3f ms %10.3f ms %8.2fx\n",
                "OIS-FPS sampling",
                1e3 * scratch_sample / steady,
                1e3 * inc_sample / steady,
                scratch_sample / inc_sample);
    std::printf("%-28s %10.3f ms %10.3f ms %8.2fx\n",
                "preprocess total",
                1e3 * (scratch_build + scratch_sample) / steady,
                1e3 * (inc_build + inc_sample) / steady,
                e2e_speedup);

    const TemporalPreprocessState::Stats st = inc_state.stats();
    bench::section("cache telemetry (incremental arm)");
    std::printf("octree  %llu hits / %llu misses;  per hit: "
                "retained %.0f  inserted %.0f  evicted %.0f\n",
                static_cast<unsigned long long>(st.octreeHits),
                static_cast<unsigned long long>(st.octreeMisses),
                st.octreeHits
                    ? static_cast<double>(st.retainedPoints) /
                          st.octreeHits
                    : 0.0,
                st.octreeHits
                    ? static_cast<double>(st.insertedPoints) /
                          st.octreeHits
                    : 0.0,
                st.octreeHits
                    ? static_cast<double>(st.evictedPoints) /
                          st.octreeHits
                    : 0.0);
    std::printf("nodes   %llu reused / %llu erected (%.1f%% "
                "reused)\n",
                static_cast<unsigned long long>(st.nodesReused),
                static_cast<unsigned long long>(st.nodesErected),
                100.0 * static_cast<double>(st.nodesReused) /
                    static_cast<double>(st.nodesReused +
                                        st.nodesErected));
    std::printf("KNN     %llu incremental / %llu scratch;  "
                "occupancy %llu incremental / %llu scratch\n",
                static_cast<unsigned long long>(st.knnIncremental),
                static_cast<unsigned long long>(st.knnScratch),
                static_cast<unsigned long long>(st.occIncremental),
                static_cast<unsigned long long>(st.occScratch));

    bench::section("fidelity");
    std::printf("sampled outputs, SPT, Octree-Table bytes: %s\n",
                identical ? "bit-identical to from-scratch oracle"
                          : "DIVERGED");
    std::printf("modeled octreeBuildSec %.6g  (identical both arms "
                "by construction)\n",
                modeled_build);

    if (!json_path.empty()) {
        bench::JsonWriter json;
        json.obj()
            .field("bench", "preprocess_coherence")
            .field("schema", "hgpcn-bench-preprocess/1")
            .field("frames", static_cast<std::uint64_t>(frames))
            .field("warmupFrames",
                   static_cast<std::uint64_t>(warmup))
            .field("points", static_cast<std::uint64_t>(points))
            .field("sampleK", static_cast<std::uint64_t>(k))
            .field("churnFraction", dcfg.churnFraction)
            .field("churnPerFrame",
                   static_cast<std::uint64_t>(drive.churnPerFrame()))
            .field("overlapNextFrame", drive.overlapFraction(1))
            .field("bitIdentical", identical)
            .field("modeledOctreeBuildSec", modeled_build)
            .field("modeledDsuSecSum", modeled_dsu_sum)
            .field("octreeTableBytes",
                   static_cast<std::uint64_t>(table_bytes));
        json.key("cache")
            .obj()
            .field("octreeHits", st.octreeHits)
            .field("octreeMisses", st.octreeMisses)
            .field("retainedPoints", st.retainedPoints)
            .field("insertedPoints", st.insertedPoints)
            .field("evictedPoints", st.evictedPoints)
            .field("nodesReused", st.nodesReused)
            .field("nodesErected", st.nodesErected)
            .field("knnIncremental", st.knnIncremental)
            .field("knnScratch", st.knnScratch)
            .field("occIncremental", st.occIncremental)
            .field("occScratch", st.occScratch)
            .close();
        json.close();
        json.writeTo(json_path);
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    if (!identical) {
        std::printf("\nFAIL: cached outputs diverged from the "
                    "from-scratch oracle\n");
        return 1;
    }
    if (assert_speedup > 0.0) {
        bench::section("acceptance (--assert-coherence-speedup)");
        if (build_speedup < assert_speedup) {
            std::printf("FAIL: steady-state build speedup %.2fx < "
                        "required %.2fx\n",
                        build_speedup, assert_speedup);
            return 1;
        }
        std::printf("PASS: steady-state build speedup %.2fx >= "
                    "%.2fx, outputs bit-identical\n",
                    build_speedup, assert_speedup);
    }
    return 0;
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string json_path =
        hgpcn::bench::extractJsonPath(argc, argv);
    double assert_speedup = 0.0;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--assert-coherence-speedup") ==
            0) {
            HGPCN_ASSERT(i + 1 < argc,
                         "--assert-coherence-speedup needs a value");
            assert_speedup = std::atof(argv[++i]);
            HGPCN_ASSERT(assert_speedup > 0.0,
                         "--assert-coherence-speedup must be > 0");
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    const std::size_t frames =
        hgpcn::bench::parsePositiveArg(argc, argv, 1, 40, "frames");
    const std::size_t points = hgpcn::bench::parsePositiveArg(
        argc, argv, 2, 20000, "points");
    return hgpcn::run(frames, points, json_path, assert_speedup);
}
