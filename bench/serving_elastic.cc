/**
 * @file
 * Elastic serving under a city-scale traffic generator: autoscaler
 * + admission control vs a statically provisioned fleet
 * (docs/RUNTIME.md §elastic-serving).
 *
 * A seeded TrafficGen trace — diurnal swell, per-sensor bursts,
 * hot-plug/drop churn — is served twice: by a static 4-shard fleet
 * in one continuous serve, and by the ElasticRunner control loop
 * (scale between minShards and maxShards at epoch boundaries). The
 * trace is calibrated against the backend's own modeled service
 * time, so the load pattern — and therefore every number printed —
 * is machine-independent: the diurnal peak lands at the end of the
 * trace at ~4.6x one shard's capacity, above the static fleet's
 * headroom, while the trough dips to ~0.7x.
 *
 * Everything reported is virtual-timeline arithmetic: two runs of
 * the same seed produce byte-identical output (CI diffs the JSON
 * records of a double run).
 *
 *   ./build/bench/serving_elastic [duration_scale] [sensors]
 *                                 [--json path] [--assert-elastic]
 *
 * `--json <path>` writes a BENCH_serving.json record including the
 * full per-epoch decision log. `--assert-elastic` exits nonzero
 * unless the elastic fleet sustains at least the static fleet's
 * FPS on fewer shard-seconds (the PR acceptance gate; CI runs it).
 *
 * CI smoke-runs `serving_elastic 2 64` (.github/workflows/ci.yml).
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/traffic_gen.h"
#include "serving/autoscaler.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

constexpr std::size_t kStaticShards = 4;

PointNet2Spec
cityClassifier()
{
    // Small per-frame network: city scale means many sensors, not
    // heavy frames.
    PointNet2Spec spec = PointNet2Spec::classification(8);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

ElasticRunner::Config
elasticConfig(double epoch_sec)
{
    ElasticRunner::Config cfg;
    cfg.epochSec = epoch_sec;
    cfg.fleet.shards = 2;
    cfg.fleet.placement = PlacementPolicy::HashBySensor;
    cfg.autoscaler.minShards = 1;
    cfg.autoscaler.maxShards = 8;
    // Grow fast (the final peak is what bounds the makespan),
    // shrink promptly (idle width in the trough is what costs
    // shard-seconds).
    cfg.autoscaler.upStep = 2;
    cfg.autoscaler.downStep = 2;
    cfg.autoscaler.upHoldEpochs = 1;
    cfg.autoscaler.downHoldEpochs = 1;
    cfg.autoscaler.cooldownEpochs = 1;
    // Tight occupancy band: the fleet settles near 70% busy, so
    // its width tracks the diurnal swell instead of ratcheting up
    // to the peak and staying there.
    cfg.autoscaler.upUtilization = 0.80;
    cfg.autoscaler.downUtilization = 0.60;
    // Headline comparison sheds nothing: both fleets must process
    // every frame for sustained-FPS parity to be meaningful.
    cfg.admission.enabled = false;
    return cfg;
}

int
run(std::size_t duration_scale, std::size_t sensors,
    const std::string &json_path, bool assert_elastic)
{
    bench::banner(
        "SERVING: ELASTIC AUTOSCALER VS STATIC FLEET",
        "city-scale seeded traffic (diurnal + bursts + churn) "
        "through the epoch control loop");

    HgPcnSystem::Config system;
    const PointNet2Spec spec = cityClassifier();

    // Calibrate the trace to the modeled per-frame service time,
    // so the offered-load pattern is the same on every machine.
    ElasticRunner probe(system, spec, elasticConfig(1.0));
    const double svc =
        probe.fleet().shardBackend(0).estimateServiceSec();
    const double cap1 = 1.0 / svc; // one shard's modeled FPS

    const double epoch_sec = 40.0 * svc;
    const double duration =
        static_cast<double>(duration_scale) * 8.0 * epoch_sec;

    TrafficGen::Config traffic;
    traffic.sensors = sensors;
    traffic.durationSec = duration;
    // Fleet-wide diurnal swell, ending ON the peak: period 4/5 of
    // the trace puts sin at +1 exactly at the end, so the static
    // fleet finishes the trace under-provisioned and drains late,
    // while the autoscaler rides the swell up.
    traffic.diurnalAmplitude = 0.75;
    traffic.diurnalPeriodSec = duration * 0.8;
    // Per-sensor burst texture (phases independent per sensor).
    traffic.burstFactor = 1.6;
    traffic.burstDuty = 0.25;
    traffic.burstPeriodSec = 2.0 * epoch_sec;
    traffic.rateJitter = 0.2;
    traffic.hotPlugFraction = 0.15;
    traffic.dropFraction = 0.10;
    traffic.priorityTiers = 3;
    traffic.cloudPoints = 300;
    traffic.seed = 1234;
    // Average offered load ~2.6x one shard (mean burst multiplier
    // 1.15, mean diurnal 1 over the windowed trace): the static
    // fleet is sized for the ~4.6x peak, so it idles through the
    // trough the autoscaler shrinks into.
    traffic.baseRateHz =
        2.6 * cap1 /
        (static_cast<double>(sensors) * 1.15);
    const TrafficGen gen(traffic);
    const TrafficTrace trace = gen.generate();

    std::printf("trace: %zu frames from %zu sensors over %.3f s "
                "(modeled), service %.4g s/frame, epoch %.3f s\n",
                trace.stream.size(), trace.stream.sensorCount,
                duration, svc, epoch_sec);
    std::printf("load: avg ~2.6x / peak ~4.6x / trough ~0.7x one "
                "shard's capacity (%.1f FPS); the peak lands at "
                "the end of the trace\n\n",
                cap1);

    // --- Static baseline: 4 shards, one continuous serve. -------
    bench::section("static fleet (4 shards, hash affinity)");
    ShardedRunner::Config static_cfg;
    static_cfg.shards = kStaticShards;
    static_cfg.placement = PlacementPolicy::HashBySensor;
    ShardedRunner static_fleet(system, spec, static_cfg);
    const ServingResult static_result =
        static_fleet.serve(trace.stream);
    const double static_fps = static_result.report.sustainedFps;
    const double static_shard_sec =
        static_cast<double>(kStaticShards) *
        static_result.report.makespanSec;
    std::printf("sustained %.1f FPS | makespan %.3f s | p99 %.2f "
                "ms | %zu/%zu processed | %.2f shard-seconds\n",
                static_fps, static_result.report.makespanSec,
                static_result.report.p99LatencySec * 1e3,
                static_result.report.framesProcessed,
                static_result.report.framesIn, static_shard_sec);

    // --- Elastic fleet: the epoch control loop. ------------------
    bench::section("elastic fleet (autoscaler 1..8 shards)");
    ElasticRunner elastic(system, spec, elasticConfig(epoch_sec));
    const ElasticResult er = elastic.serve(trace.stream);
    const double elastic_fps = er.serving.report.sustainedFps;
    std::printf("sustained %.1f FPS | makespan %.3f s | p99 %.2f "
                "ms | %zu/%zu processed | %.2f shard-seconds\n",
                elastic_fps, er.serving.report.makespanSec,
                er.serving.report.p99LatencySec * 1e3,
                er.serving.report.framesProcessed,
                er.serving.report.framesIn, er.shardSeconds);
    std::printf("%zu scale events over %zu epochs:\n",
                er.events.size(), er.epochs.size());
    for (const ScaleEvent &event : er.events) {
        std::printf("  epoch %zu: %zu -> %zu shards (%s)\n",
                    event.epoch, event.fromShards, event.toShards,
                    event.reason.c_str());
    }

    bench::section("verdict");
    TablePrinter table({"fleet", "sustained FPS", "shard-seconds",
                        "p99 latency"});
    table.addRow({"static 4", TablePrinter::fmt(static_fps, 1),
                  TablePrinter::fmt(static_shard_sec, 2),
                  TablePrinter::fmtTime(
                      static_result.report.p99LatencySec)});
    table.addRow({"elastic 1..8",
                  TablePrinter::fmt(elastic_fps, 1),
                  TablePrinter::fmt(er.shardSeconds, 2),
                  TablePrinter::fmtTime(
                      er.serving.report.p99LatencySec)});
    table.print();
    std::printf("elastic/static: %.3fx FPS on %.3fx the "
                "shard-seconds\n",
                elastic_fps / static_fps,
                er.shardSeconds / static_shard_sec);

    // --- Graceful degradation: admission on a frozen fleet. ------
    bench::section("admission control (frozen 1-shard fleet, "
                   "priority tiers)");
    ElasticRunner::Config frozen_cfg = elasticConfig(epoch_sec);
    frozen_cfg.fleet.shards = 1;
    frozen_cfg.autoscaler.minShards = 1;
    frozen_cfg.autoscaler.maxShards = 1;
    frozen_cfg.admission.enabled = true;
    frozen_cfg.admission.headroom = 0.9;
    ElasticRunner frozen(system, spec, frozen_cfg);
    const ElasticResult shed =
        frozen.serve(trace.stream, trace.priority);
    std::vector<std::size_t> shed_by_tier(traffic.priorityTiers,
                                          0);
    std::vector<std::size_t> in_by_tier(traffic.priorityTiers, 0);
    for (const SensorServingReport &sr :
         shed.serving.report.sensors) {
        const int tier = trace.priority[sr.sensor];
        shed_by_tier[static_cast<std::size_t>(tier)] +=
            sr.framesShed;
        in_by_tier[static_cast<std::size_t>(tier)] += sr.framesIn;
    }
    std::printf("offered %zu frames at ~2.6x a single shard: shed "
                "%zu, processed %zu (conservation holds)\n",
                shed.serving.report.framesIn,
                shed.serving.report.framesShed,
                shed.serving.report.framesProcessed);
    for (std::size_t t = 0; t < shed_by_tier.size(); ++t) {
        std::printf("  priority %zu: shed %zu/%zu frames%s\n", t,
                    shed_by_tier[t], in_by_tier[t],
                    t == 0 ? "  (lowest tier sheds first)" : "");
    }

    // --- Machine-readable record. --------------------------------
    if (!json_path.empty()) {
        bench::JsonWriter json;
        json.obj()
            .field("bench", "serving_elastic")
            .field("schema", "hgpcn-bench-serving/1")
            .field("durationScale",
                   static_cast<std::uint64_t>(duration_scale))
            .field("sensors", static_cast<std::uint64_t>(sensors))
            .field("seed",
                   static_cast<std::uint64_t>(traffic.seed))
            .field("serviceSec", svc)
            .field("epochSec", epoch_sec)
            .field("frames",
                   static_cast<std::uint64_t>(trace.stream.size()));
        json.key("static")
            .obj()
            .field("shards",
                   static_cast<std::uint64_t>(kStaticShards))
            .field("sustainedFps", static_fps)
            .field("shardSeconds", static_shard_sec)
            .field("p99LatencySec",
                   static_result.report.p99LatencySec)
            .field("processed",
                   static_cast<std::uint64_t>(
                       static_result.report.framesProcessed))
            .close();
        json.key("elastic")
            .obj()
            .field("sustainedFps", elastic_fps)
            .field("shardSeconds", er.shardSeconds)
            .field("p99LatencySec",
                   er.serving.report.p99LatencySec)
            .field("processed",
                   static_cast<std::uint64_t>(
                       er.serving.report.framesProcessed))
            .field("epochs",
                   static_cast<std::uint64_t>(er.epochs.size()))
            .field("scaleEvents",
                   static_cast<std::uint64_t>(er.events.size()));
        json.key("widthTrajectory").arr();
        for (const EpochLog &ep : er.epochs)
            json.value(
                static_cast<std::uint64_t>(ep.activeShards));
        json.close();
        json.key("decisionLog").arr();
        {
            const std::string log = er.decisionLog();
            std::size_t pos = 0;
            while (pos < log.size()) {
                const std::size_t nl = log.find('\n', pos);
                json.value(log.substr(pos, nl - pos));
                if (nl == std::string::npos)
                    break;
                pos = nl + 1;
            }
        }
        json.close().close();
        json.key("admission")
            .obj()
            .field("shed",
                   static_cast<std::uint64_t>(
                       shed.serving.report.framesShed))
            .field("processed",
                   static_cast<std::uint64_t>(
                       shed.serving.report.framesProcessed));
        json.key("shedByTier").arr();
        for (const std::size_t count : shed_by_tier)
            json.value(static_cast<std::uint64_t>(count));
        json.close().close().close();
        json.writeTo(json_path);
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    if (assert_elastic) {
        bench::section("acceptance (--assert-elastic)");
        bool ok = true;
        if (elastic_fps < static_fps) {
            std::printf("FAIL: elastic sustained %.3f FPS < "
                        "static %.3f FPS\n",
                        elastic_fps, static_fps);
            ok = false;
        }
        if (er.shardSeconds >= static_shard_sec) {
            std::printf("FAIL: elastic %.3f shard-seconds >= "
                        "static %.3f\n",
                        er.shardSeconds, static_shard_sec);
            ok = false;
        }
        if (er.serving.report.framesProcessed +
                er.serving.report.framesShed !=
            er.serving.report.framesIn) {
            std::printf("FAIL: conservation violated\n");
            ok = false;
        }
        std::printf("%s\n", ok ? "PASS: elastic sustains >= "
                                 "static FPS on fewer "
                                 "shard-seconds"
                               : "acceptance failed");
        return ok ? 0 : 1;
    }
    return 0;
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string json_path =
        hgpcn::bench::extractJsonPath(argc, argv);
    bool assert_elastic = false;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--assert-elastic") == 0) {
            assert_elastic = true;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    const std::size_t duration_scale =
        hgpcn::bench::parsePositiveArg(argc, argv, 1,
                                       /*fallback=*/2,
                                       "duration_scale");
    const std::size_t sensors = hgpcn::bench::parsePositiveArg(
        argc, argv, 2, /*fallback=*/64, "sensors");
    return hgpcn::run(duration_scale, sensors, json_path,
                      assert_elastic);
}
