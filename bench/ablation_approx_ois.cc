/**
 * @file
 * Ablation: approximate OIS-based FPS (paper Section VIII).
 *
 * Sweeps the descent early-stop population: larger stop counts save
 * octree levels (speed) at the cost of picking a random point that
 * is merely *near* the true farthest one. Reports levels visited
 * and sampling quality (coverage radius) against exact OIS and RS.
 */

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datasets/modelnet_like.h"
#include "sampling/approx_ois_sampler.h"
#include "sampling/metrics.h"
#include "sampling/ois_fps_sampler.h"
#include "sampling/random_sampler.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("ABLATION: APPROXIMATE OIS (SECTION VIII)",
                  "Early-stop population vs descent work and "
                  "sampling quality");

    ModelNetLike::Config mn_cfg;
    mn_cfg.points = 20000;
    const Frame frame = ModelNetLike::generate("MN.chair", mn_cfg);
    const std::size_t k = 1024;

    TablePrinter table({"variant", "levels visited", "coverage",
                        "mean NN dist"});

    {
        const auto exact = OisFpsSampler().sample(frame.cloud, k);
        table.addRow(
            {"OIS exact",
             TablePrinter::fmtCount(
                 exact.stats.get("sample.levels_visited")),
             TablePrinter::fmt(
                 coverageRadius(frame.cloud, exact.indices), 3),
             TablePrinter::fmt(meanNearestSampleDistance(
                                   frame.cloud, exact.indices),
                               3)});
    }
    for (const std::uint32_t stop : {8u, 32u, 128u, 512u}) {
        ApproxOisSampler::Config cfg;
        cfg.stopCount = stop;
        const auto approx =
            ApproxOisSampler(cfg).sample(frame.cloud, k);
        table.addRow(
            {"OIS approx stop=" + std::to_string(stop),
             TablePrinter::fmtCount(
                 approx.stats.get("sample.levels_visited")),
             TablePrinter::fmt(
                 coverageRadius(frame.cloud, approx.indices), 3),
             TablePrinter::fmt(meanNearestSampleDistance(
                                   frame.cloud, approx.indices),
                               3)});
    }
    {
        const auto rs = RandomSampler().sample(frame.cloud, k);
        table.addRow(
            {"RS", "0",
             TablePrinter::fmt(coverageRadius(frame.cloud, rs.indices),
                               3),
             TablePrinter::fmt(
                 meanNearestSampleDistance(frame.cloud, rs.indices),
                 3)});
    }
    table.print();
    std::printf("\nexpected: levels visited fall with larger stop "
                "counts while coverage stays\nnear the exact value "
                "until the stop population gets large — the paper's "
                "\"only\nmarginal information loss\" hypothesis.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
