/**
 * @file
 * Figure 10: measured latency speedup of OIS over common FPS, both
 * running as software on the build machine's CPU.
 *
 * Unlike the other figures this one is *wall-clock measured*: both
 * algorithms execute functionally. Paper band: 800x - 7500x on a
 * Xeon W-2255 (absolute ratios depend on the host; the shape — OIS
 * orders of magnitude faster, growing with frame size — is the
 * reproduced claim).
 */

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datasets/kitti_like.h"
#include "datasets/modelnet_like.h"
#include "sampling/fps_sampler.h"
#include "sampling/ois_fps_sampler.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("Figure 10: LATENCY SPEEDUP FROM OIS ON CPU",
                  "Wall-clock FPS vs OIS (build+sample), measured on "
                  "this machine (paper: 800x-7500x)");

    TablePrinter table({"frame", "raw pts", "K", "FPS time",
                        "OIS time", "speedup"});

    auto add_frame = [&](const Frame &frame, std::size_t k) {
        if (frame.cloud.size() < 2 * k)
            return;
        WallTimer fps_timer;
        FpsSampler fps;
        fps.sample(frame.cloud, k);
        const double fps_sec = fps_timer.seconds();

        WallTimer ois_timer;
        OisFpsSampler ois;
        ois.sample(frame.cloud, k);
        const double ois_sec = ois_timer.seconds();

        table.addRow({frame.name,
                      TablePrinter::fmtCount(frame.cloud.size()),
                      std::to_string(k),
                      TablePrinter::fmtTime(fps_sec),
                      TablePrinter::fmtTime(ois_sec),
                      TablePrinter::fmtRatio(fps_sec / ois_sec, 0)});
    };

    ModelNetLike::Config mn_cfg;
    mn_cfg.points = 100000;
    for (const auto &name :
         {std::string("MN.piano"), std::string("MN.plant"),
          std::string("MN.chair"), std::string("MN.lamp")}) {
        const Frame frame = ModelNetLike::generate(name, mn_cfg);
        add_frame(frame, 1024);
        add_frame(frame, 4096);
    }

    KittiLike::Config kitti_cfg;
    const KittiLike lidar(kitti_cfg);
    Frame kitti = lidar.generate(0);
    kitti.name = "kitti.avg";
    add_frame(kitti, 1024);
    add_frame(kitti, 4096);

    table.print();

    // Part B: the paper's measured 800x-7500x corresponds to the
    // literal Algorithm 1, which rewrites and re-reads the whole
    // distance array every iteration (O(N*K^2)). That baseline is
    // measured here at reduced scale (it would take minutes at 1e5
    // points).
    bench::section("paper-literal Algorithm 1 baseline "
                   "(reduced scale)");
    TablePrinter naive_table({"frame", "raw pts", "K",
                              "FPS-naive time", "OIS time",
                              "speedup"});
    ModelNetLike::Config small_cfg;
    small_cfg.points = 20000;
    const Frame small = ModelNetLike::generate("MN.chair", small_cfg);
    for (const std::size_t k : {std::size_t{256}, std::size_t{512}}) {
        WallTimer naive_timer;
        NaiveFpsSampler naive;
        naive.sample(small.cloud, k);
        const double naive_sec = naive_timer.seconds();

        WallTimer ois_timer;
        OisFpsSampler ois;
        ois.sample(small.cloud, k);
        const double ois_sec = ois_timer.seconds();
        naive_table.addRow(
            {small.name, TablePrinter::fmtCount(small.cloud.size()),
             std::to_string(k), TablePrinter::fmtTime(naive_sec),
             TablePrinter::fmtTime(ois_sec),
             TablePrinter::fmtRatio(naive_sec / ois_sec, 0)});
    }
    naive_table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
