/**
 * @file
 * Section VII-E: system-level real-time evaluation on KITTI.
 *
 * Streams KITTI-like frames (10 Hz generation timestamps) through
 * the complete HgPCN system — Pre-processing Engine + Inference
 * Engine — and checks the real-time criterion: the achieved frame
 * rate must be at least the sensor's generation rate. Paper: HgPCN
 * processes 16 average FPS > KITTI's <16 FPS generation rate.
 */

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("Section VII-E: SYSTEM-LEVEL REAL-TIME CHECK",
                  "E2E HgPCN on a KITTI-like 10 Hz stream (paper: "
                  "16 FPS processed >= generation rate)");

    KittiLike::Config lidar_cfg;
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < 4; ++f)
        frames.push_back(lidar.generate(f));

    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg,
                             PointNet2Spec::outdoorSegmentation());

    TablePrinter table({"frame", "raw pts", "pre-proc", "inference",
                        "E2E", "frame FPS"});
    double total = 0.0;
    for (const Frame &frame : frames) {
        const E2eResult r = system.processFrame(frame.cloud);
        total += r.totalSec();
        table.addRow({frame.name,
                      TablePrinter::fmtCount(frame.cloud.size()),
                      TablePrinter::fmtTime(r.preprocess.totalSec()),
                      TablePrinter::fmtTime(r.inference.totalSec()),
                      TablePrinter::fmtTime(r.totalSec()),
                      TablePrinter::fmt(r.fps(), 1)});
    }
    table.print();

    const double mean_fps =
        static_cast<double>(frames.size()) / total;
    // The shared derivation from timestamps must agree with the
    // sensor's nominal rate. These are batch (unpaced) capability
    // estimates — no sensor is raced, so they state a throughput
    // margin, not a real-time verdict (common/real_time.h): the
    // verdict proper comes from the sensor-paced run below.
    const double gen_fps = streamGenerationFps(frames);
    std::printf("\nmean processed FPS: %.1f | generation rate: %.1f "
                "(nominal %.1f) | %.2fx sensor rate (offline "
                "estimate)\n",
                mean_fps, gen_fps, lidar.generationRateFps(),
                mean_fps / gen_fps);

    // Extension: with the CPU building frame i+1's octree while the
    // FPGA processes frame i, throughput rises further.
    const StreamReport report = system.processStream(frames);
    std::printf("pipelined (CPU/FPGA overlap): %.1f FPS = %.2fx "
                "sensor rate (offline estimate)\n",
                report.pipelinedFps,
                report.pipelinedFps / gen_fps);

    // The same stream on the concurrent runtime, sensor-paced: the
    // Section VII-E verdict proper, frames admitted at their 10 Hz
    // stamps.
    StreamRunner::Config rc;
    rc.buildWorkers = 2;
    rc.queueCapacity = 4;
    rc.maxInFlight = 4;
    const RuntimeResult rt = system.runStream(frames, rc);
    std::printf("\nstreaming runtime (2 build workers, 4 in "
                "flight, sensor-paced):\n%s",
                rt.report.toString().c_str());
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
