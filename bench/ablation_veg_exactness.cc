/**
 * @file
 * Ablation: exactness of paper-mode VEG vs the strict mode.
 *
 * The paper calls VEG "accurate"; strictly, a far-corner inner-ring
 * point can lose to a near-face last-ring point. This bench
 * measures that gap: recall of paper-mode VEG against brute-force
 * KNN across gathering sizes, plus the extra workload strict mode
 * pays for provable exactness.
 */

#include <set>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "gather/brute_gatherers.h"
#include "gather/veg_gatherer.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("ABLATION: VEG EXACTNESS",
                  "Recall of paper-mode VEG vs brute KNN, and the "
                  "cost of the provably exact strict mode");

    PointCloud cloud;
    Rng rng(7);
    for (int i = 0; i < 4096; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 9;
    const Octree tree = Octree::build(cloud, tree_cfg);

    std::vector<PointIndex> centrals(512);
    for (auto &c : centrals)
        c = static_cast<PointIndex>(rng.below(cloud.size()));

    BruteKnn brute(tree.reorderedCloud());

    TablePrinter table({"K", "paper recall", "paper dist comp",
                        "strict dist comp", "brute dist comp"});

    for (const std::size_t k :
         {std::size_t{8}, std::size_t{16}, std::size_t{32},
          std::size_t{64}}) {
        const auto truth = brute.gather(centrals, k);

        VegKnn::Config paper_cfg;
        VegKnn paper(tree, paper_cfg);
        const auto paper_result = paper.gather(centrals, k);

        VegKnn::Config strict_cfg;
        strict_cfg.mode = VegMode::Strict;
        VegKnn strict(tree, strict_cfg);
        const auto strict_result = strict.gather(centrals, k);

        std::size_t hits = 0;
        for (std::size_t c = 0; c < centrals.size(); ++c) {
            const auto t = truth.of(c);
            const std::set<PointIndex> t_set(t.begin(), t.end());
            for (PointIndex i : paper_result.of(c))
                hits += t_set.count(i);
        }
        const double recall = static_cast<double>(hits) /
                              static_cast<double>(centrals.size() * k);

        table.addRow(
            {std::to_string(k), TablePrinter::fmt(recall, 4),
             TablePrinter::fmtCount(paper_result.stats.get(
                 "gather.distance_computations")),
             TablePrinter::fmtCount(strict_result.stats.get(
                 "gather.distance_computations")),
             TablePrinter::fmtCount(
                 truth.stats.get("gather.distance_computations"))});
    }
    table.print();
    std::printf("\nexpected: paper-mode recall ~0.85-0.95 (rising "
                "with K); strict mode is exact\nat a small multiple "
                "of paper-mode work, still far below brute force.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
