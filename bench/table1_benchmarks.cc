/**
 * @file
 * Table I: the evaluation benchmark suite.
 *
 * Regenerates the paper's benchmark table — application, dataset,
 * PCN input size and model — from the live DatasetSuite, and adds
 * the measured raw-frame sizes plus network workload (MACs) our
 * generators and models actually produce.
 */

#include "bench/bench_util.h"
#include "datasets/dataset_suite.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("Table I: EVALUATION BENCHMARKS",
                  "Four point-cloud applications with their datasets, "
                  "PCN input sizes and models");

    TablePrinter table({"Application", "Dataset", "Input Size",
                        "PCN Model", "raw pts (measured)",
                        "network MACs"});
    for (const auto &task : DatasetSuite::tableOne()) {
        const Frame frame = task.rawFrame(0);
        const PointNet2 net(task.spec);
        // Trace the network on its nominal input size (sampled from
        // the raw frame by index stride for speed; workload depends
        // only on shape).
        PointCloud input;
        const std::size_t stride =
            frame.cloud.size() / task.inputSize;
        for (std::size_t i = 0; i < task.inputSize; ++i) {
            input.add(frame.cloud.position(
                static_cast<PointIndex>(i * stride)));
        }
        input.normalizeToUnitCube();
        RunOptions opts;
        opts.ds = DsMethod::Veg;
        const RunOutput out = net.run(input, opts);
        table.addRow({task.application, task.dataset,
                      std::to_string(task.inputSize), task.modelName,
                      TablePrinter::fmtCount(frame.cloud.size()),
                      TablePrinter::fmtCount(out.trace.totalMacs())});
    }
    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
