/**
 * @file
 * Figure 3: end-to-end execution time breakdown on general-purpose
 * hardware.
 *
 * For each Table I dataset, the E2E service is FPS down-sampling
 * followed by PointNet++ inference (brute-force data structuring).
 * The paper's observation: pre-processing dominates the E2E latency
 * on CPU/GPU platforms, and the share grows with raw frame size.
 */

#include "bench/bench_util.h"
#include "datasets/dataset_suite.h"
#include "sampling/fps_sampler.h"
#include "sim/device_model.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("Figure 3: E2E EXECUTION TIME BREAKDOWN",
                  "Pre-processing (FPS) vs inference share per "
                  "dataset on general-purpose devices");

    const DeviceModel cpu(DeviceModel::xeonW2255());
    const DeviceModel gpu(DeviceModel::rtx4060Ti());

    TablePrinter table({"Dataset", "raw pts", "K", "device",
                        "pre-proc", "inference", "pre-proc %"});
    for (const auto &task : DatasetSuite::tableOne()) {
        const Frame frame = task.rawFrame(0);
        const std::size_t n = frame.cloud.size();
        const std::size_t k = task.inputSize;

        // Inference trace (brute-force DS, as general-purpose
        // platforms run it).
        const PointNet2 net(task.spec);
        PointCloud input;
        const std::size_t stride = n / k;
        for (std::size_t i = 0; i < k; ++i) {
            input.add(frame.cloud.position(
                static_cast<PointIndex>(i * stride)));
        }
        input.normalizeToUnitCube();
        RunOptions opts;
        opts.ds = DsMethod::BruteKnn;
        const RunOutput out = net.run(input, opts);

        const StatSet fps = FpsSampler::predictStats(n, k);
        struct DeviceRow
        {
            const char *name;
            const DeviceModel &dev;
        };
        const DeviceRow devices[] = {{"Xeon W-2255", cpu},
                                     {"RTX 4060Ti", gpu}};
        for (const auto &row : devices) {
            const double pre = row.dev.samplingSec(fps, k);
            const double inf = row.dev.inferenceSec(out.trace);
            const double share = 100.0 * pre / (pre + inf);
            table.addRow({task.dataset, TablePrinter::fmtCount(n),
                          std::to_string(k), row.name,
                          TablePrinter::fmtTime(pre),
                          TablePrinter::fmtTime(inf),
                          TablePrinter::fmt(share, 1) + "%"});
        }
    }
    table.print();
    std::printf("\npaper: pre-processing dominates E2E latency on all "
                "four datasets,\nwith larger raw frames spending a "
                "larger share in pre-processing.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
