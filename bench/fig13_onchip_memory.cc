/**
 * @file
 * Figure 13: on-chip memory saving from the OIS method.
 *
 * For raw frame sizes from 1e5 to 1e6 points, compares the FPGA
 * on-chip footprint of an FPS engine (points + distance array kept
 * on chip) against OIS (Octree-Table only). Paper: 12x-22x saving;
 * FPS overflows the Arria 10's 65 Mb above ~5e5 points while OIS
 * stays around 10 Mb even at 1e6.
 */

#include "bench/bench_util.h"
#include "datasets/modelnet_like.h"
#include "octree/octree_table.h"
#include "sim/on_chip_memory.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("Figure 13: ON-CHIP MEMORY SAVING FROM OIS",
                  "FPS vs OIS FPGA footprint per raw frame size "
                  "(paper: 12x-22x saving, 65 Mb device)");

    const OnChipMemoryModel model(SimConfig::defaults());
    const std::size_t k = 4096;

    TablePrinter table({"raw pts", "FPS on-chip", "fits?",
                        "OIS on-chip", "fits?", "saving"});

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 12;
    tree_cfg.leafCapacity = 64;

    for (const std::size_t n :
         {std::size_t{100000}, std::size_t{200000},
          std::size_t{400000}, std::size_t{600000},
          std::size_t{1000000}}) {
        ModelNetLike::Config cfg;
        cfg.points = n;
        const Frame frame = ModelNetLike::generate("MN.chair", cfg);
        const Octree tree = Octree::build(frame.cloud, tree_cfg);
        const OctreeTable octree_table = OctreeTable::fromOctree(tree);

        const double fps_bits = model.fpsFootprintBits(n, k);
        const double ois_bits =
            model.oisFootprintBits(octree_table.sizeBytes(), k);
        table.addRow(
            {TablePrinter::fmtCount(n),
             TablePrinter::fmtBytes(fps_bits / 8.0),
             model.fits(fps_bits) ? "yes" : "NO (>65Mb)",
             TablePrinter::fmtBytes(ois_bits / 8.0),
             model.fits(ois_bits) ? "yes" : "NO (>65Mb)",
             TablePrinter::fmtRatio(fps_bits / ois_bits, 1)});
    }
    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
