/**
 * @file
 * Figure 11: octree-build overhead of OIS-based sampling (on CPU).
 *
 * Measures, per frame, the wall-clock share of the octree build
 * (single pass + SFC sort + reorganization) within the total OIS
 * latency, and the resulting octree depth. Paper: build takes
 * 0.25-0.8 of the total, and more non-uniform frames (MN.piano)
 * build deeper octrees than uniform ones (MN.plant).
 */

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datasets/kitti_like.h"
#include "datasets/modelnet_like.h"
#include "sampling/ois_fps_sampler.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("Figure 11: OCTREE-BUILD OVERHEAD OF OIS SAMPLING",
                  "Build share of total OIS latency per frame "
                  "(paper: 0.25-0.8), octree depth vs non-uniformity");

    TablePrinter table({"frame", "raw pts", "K", "build", "sampling",
                        "build share", "octree depth"});

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 12;
    tree_cfg.leafCapacity = 8;

    auto add_frame = [&](const Frame &frame, std::size_t k) {
        WallTimer build_timer;
        Octree tree = Octree::build(frame.cloud, tree_cfg);
        const double build_sec = build_timer.seconds();

        OisFpsSampler::Config cfg;
        cfg.octree = tree_cfg;
        const OisFpsSampler sampler(cfg);
        WallTimer sample_timer;
        sampler.sampleWithTree(tree, k);
        const double sample_sec = sample_timer.seconds();

        const double share = build_sec / (build_sec + sample_sec);
        table.addRow({frame.name,
                      TablePrinter::fmtCount(frame.cloud.size()),
                      std::to_string(k),
                      TablePrinter::fmtTime(build_sec),
                      TablePrinter::fmtTime(sample_sec),
                      TablePrinter::fmt(share, 2),
                      std::to_string(tree.depth())});
    };

    ModelNetLike::Config mn_cfg;
    mn_cfg.points = 100000;
    for (const auto &name : ModelNetLike::objectNames()) {
        const Frame frame = ModelNetLike::generate(name, mn_cfg);
        add_frame(frame, 1024);
        add_frame(frame, 4096);
        add_frame(frame, 16384);
    }

    KittiLike::Config kitti_cfg;
    const KittiLike lidar(kitti_cfg);
    Frame kitti = lidar.generate(0);
    kitti.name = "kitti.avg";
    add_frame(kitti, 4096);
    add_frame(kitti, 16384);

    table.print();
    std::printf("\npaper: MN.piano (non-uniform) builds a deeper "
                "octree than MN.plant (uniform)\nat nearly the same "
                "point count.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
