/**
 * @file
 * Ablation: FCU systolic-array geometry.
 *
 * The paper fixes 16x16 to match PointACC/Mesorasi. This bench
 * sweeps the array size on the four Table I networks and reports
 * FCU latency and utilization — showing where the DSU (not the FCU)
 * becomes the bottleneck.
 */

#include "bench/bench_util.h"
#include "core/inference_engine.h"
#include "datasets/dataset_suite.h"
#include "sim/fcu_dla.h"

namespace hgpcn
{
namespace
{

PointCloud
sampledInput(const Frame &frame, std::size_t k)
{
    PointCloud input;
    const std::size_t stride = frame.cloud.size() / k;
    for (std::size_t i = 0; i < k; ++i) {
        input.add(
            frame.cloud.position(static_cast<PointIndex>(i * stride)));
    }
    input.normalizeToUnitCube();
    return input;
}

void
run()
{
    bench::banner("ABLATION: SYSTOLIC ARRAY SIZE",
                  "FCU latency/utilization vs array geometry, per "
                  "Table I network (paper setup: 16x16)");

    TablePrinter table({"task", "array", "FCU time", "utilization",
                        "DSU time", "bottleneck"});

    for (const auto &task : DatasetSuite::tableOneSmall()) {
        const Frame frame = task.rawFrame(0);
        const PointCloud input = sampledInput(frame, task.inputSize);
        const PointNet2 net(task.spec);

        // One functional run; retime the same trace per geometry.
        const InferenceEngine engine;
        const InferenceResult reference = engine.run(net, input);

        for (const std::size_t dim :
             {std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
            SimConfig sim = SimConfig::defaults();
            sim.fpga.systolicRows = dim;
            sim.fpga.systolicCols = dim;
            const FcuSim fcu(sim);
            const FcuResult result =
                fcu.run(reference.output.trace);
            const double dsu_sec = reference.dsu.pipelinedSec;
            table.addRow(
                {task.dataset,
                 std::to_string(dim) + "x" + std::to_string(dim),
                 TablePrinter::fmtTime(result.totalSec()),
                 TablePrinter::fmt(result.utilization * 100.0, 1) +
                     "%",
                 TablePrinter::fmtTime(dsu_sec),
                 result.totalSec() > dsu_sec ? "FCU" : "DSU"});
        }
    }
    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
