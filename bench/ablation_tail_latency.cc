/**
 * @file
 * Ablation: pre-processing tail latency across frame sizes.
 *
 * Section VII-C: "compared to the FPS method, HgPCN offers a more
 * consistent latency for different sizes of point cloud frames,
 * providing better tail latency for edge computing." This bench
 * sweeps raw frame sizes from 2e4 to 5e5 points and reports the
 * latency of each method plus its max/min spread — the tail-latency
 * figure of merit for a real-time pipeline provisioned for the
 * worst case.
 */

#include <algorithm>

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "core/preprocessing_engine.h"
#include "datasets/modelnet_like.h"
#include "sampling/fps_sampler.h"
#include "sim/device_model.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("ABLATION: PRE-PROCESSING TAIL LATENCY",
                  "Latency spread across raw frame sizes, K = 4096 "
                  "(paper: OIS latency is far more consistent than "
                  "FPS)");

    const PreprocessingEngine engine;
    const DeviceModel cpu(DeviceModel::xeonW2255());
    const std::size_t k = 4096;

    TablePrinter table({"raw pts", "OIS-on-HgPCN", "FPS on CPU",
                        "FPS/OIS"});
    double ois_min = 1e30, ois_max = 0.0;
    double fps_min = 1e30, fps_max = 0.0;

    for (const std::size_t n :
         {std::size_t{20000}, std::size_t{50000}, std::size_t{100000},
          std::size_t{200000}, std::size_t{500000}}) {
        ModelNetLike::Config cfg;
        cfg.points = n;
        const Frame frame = ModelNetLike::generate("MN.desk", cfg);

        const auto pre = engine.process(frame.cloud, k);
        const double ois_sec = pre.totalSec();
        const double fps_sec =
            cpu.samplingSec(FpsSampler::predictStats(n, k), k);

        ois_min = std::min(ois_min, ois_sec);
        ois_max = std::max(ois_max, ois_sec);
        fps_min = std::min(fps_min, fps_sec);
        fps_max = std::max(fps_max, fps_sec);

        table.addRow({TablePrinter::fmtCount(n),
                      TablePrinter::fmtTime(ois_sec),
                      TablePrinter::fmtTime(fps_sec),
                      TablePrinter::fmtRatio(fps_sec / ois_sec, 1)});
    }
    table.print();
    std::printf("\nlatency spread (max/min) over the 25x frame-size "
                "range:\n  OIS-on-HgPCN: %.1fx    FPS on CPU: %.1fx\n",
                ois_max / ois_min, fps_max / fps_min);
    std::printf("a real-time pipeline provisions for the worst "
                "case; the smaller the spread,\nthe less headroom is "
                "wasted.\n");

    // E2E percentiles on the streaming runtime: the same
    // irregular frame sizes, now as a 10 Hz sensor-paced stream
    // through the full stage pipeline — the p99 a deployment
    // actually provisions for (docs/RUNTIME.md).
    bench::section("E2E tail latency on the streaming runtime "
                   "(10 Hz, 2 build workers)");
    std::vector<Frame> frames;
    const std::vector<std::size_t> sizes = {20000, 50000, 100000,
                                            50000, 200000, 20000,
                                            100000, 200000};
    for (std::size_t f = 0; f < sizes.size(); ++f) {
        ModelNetLike::Config cfg;
        cfg.points = sizes[f];
        cfg.seed = 17 + f;
        Frame frame = ModelNetLike::generate("MN.stream", cfg);
        frame.timestamp = static_cast<double>(f) * 0.1;
        frames.push_back(std::move(frame));
    }
    HgPcnSystem::Config sys_cfg;
    PointNet2Spec spec = PointNet2Spec::semanticSegmentation();
    const HgPcnSystem system(sys_cfg, spec);
    StreamRunner::Config rc;
    rc.buildWorkers = 2;
    rc.queueCapacity = 4;
    rc.maxInFlight = 4;
    const RuntimeResult rt = system.runStream(frames, rc);
    std::printf("%s", rt.report.toString().c_str());
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
