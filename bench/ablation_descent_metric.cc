/**
 * @file
 * Ablation: farthest-voxel descent metric (docs/DESIGN.md §5).
 *
 * The paper scores voxels by m-code Hamming distance; that
 * degenerates for interior (centroid) seeds because cells adjacent
 * across a mid-plane differ in every bit. This bench quantifies all
 * three implemented metrics against FPS and RS, justifying the
 * library's Balanced default.
 */

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datasets/modelnet_like.h"
#include "sampling/fps_sampler.h"
#include "sampling/metrics.h"
#include "sampling/ois_fps_sampler.h"
#include "sampling/random_sampler.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("ABLATION: DESCENT METRIC",
                  "Sampling quality of Hamming (paper-literal), "
                  "Euclid and Balanced descents vs FPS and RS");

    TablePrinter table(
        {"frame", "method", "coverage", "min spacing"});

    auto add_cloud = [&](const std::string &name,
                         const PointCloud &cloud, std::size_t k) {
        {
            const auto fps = FpsSampler(1).sample(cloud, k);
            table.addRow(
                {name, "FPS (reference)",
                 TablePrinter::fmt(coverageRadius(cloud, fps.indices),
                                   3),
                 TablePrinter::fmt(
                     minSampleSpacing(cloud, fps.indices), 4)});
        }
        struct MetricRow
        {
            DescentMetric metric;
            const char *label;
        };
        const MetricRow metrics[] = {
            {DescentMetric::Balanced, "OIS balanced (default)"},
            {DescentMetric::Euclid, "OIS euclid"},
            {DescentMetric::Hamming, "OIS hamming (paper-literal)"},
        };
        for (const auto &m : metrics) {
            OisFpsSampler::Config cfg;
            cfg.metric = m.metric;
            const auto r = OisFpsSampler(cfg).sample(cloud, k);
            table.addRow(
                {name, m.label,
                 TablePrinter::fmt(coverageRadius(cloud, r.indices),
                                   3),
                 TablePrinter::fmt(minSampleSpacing(cloud, r.indices),
                                   4)});
        }
        {
            const auto rs = RandomSampler(1).sample(cloud, k);
            table.addRow(
                {name, "RS",
                 TablePrinter::fmt(coverageRadius(cloud, rs.indices),
                                   3),
                 TablePrinter::fmt(
                     minSampleSpacing(cloud, rs.indices), 4)});
        }
    };

    {
        PointCloud uniform;
        Rng rng(16);
        for (int i = 0; i < 3000; ++i) {
            uniform.add({rng.uniform(0.0f, 1.0f),
                         rng.uniform(0.0f, 1.0f),
                         rng.uniform(0.0f, 1.0f)});
        }
        add_cloud("uniform cube", uniform, 96);
    }
    {
        ModelNetLike::Config cfg;
        cfg.points = 8000;
        add_cloud("MN.piano",
                  ModelNetLike::generate("MN.piano", cfg).cloud, 256);
    }
    table.print();
    std::printf("\nlower coverage and higher spacing = closer to "
                "FPS. The Hamming descent's\ncollapse on interior "
                "seeds is why Balanced is the default "
                "(docs/DESIGN.md §5).\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
