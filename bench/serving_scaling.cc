/**
 * @file
 * Serving-layer scaling: aggregate sustained FPS vs shard count on
 * a tagged multi-sensor stream (docs/RUNTIME.md §serving).
 *
 * The ROADMAP north star is serving heavy multi-sensor traffic; the
 * ShardedRunner scales the PR 2 streaming runtime horizontally —
 * N independent engine replicas behind a placement dispatcher. This
 * bench sweeps the shard count under batch admission (machine
 * capacity, where aggregate FPS must scale with shards), compares
 * the placement policies, and ends with the sensor-paced deployment
 * view whose per-sensor Section VII-E verdicts use the fixed
 * tri-state semantics.
 *
 *   ./build/bench/serving_scaling [frames_per_sensor] [sensors]
 *
 * CI smoke-runs it with tiny counts (.github/workflows/ci.yml).
 */

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

SensorStream
makeStream(std::size_t sensors, std::size_t frames_per_sensor)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 500; // small frames: sweep-friendly
    return makeLidarSensorStream(cfg);
}

void
run(std::size_t frames_per_sensor, std::size_t sensors,
    const std::string &trace_path)
{
    bench::banner("SERVING: SHARD-COUNT SCALING",
                  "ShardedRunner aggregate FPS vs shards on a "
                  "multi-sensor KITTI-like stream (Pointnet++(s), "
                  "K = 4096)");

    const SensorStream stream =
        makeStream(sensors, frames_per_sensor);
    std::printf("stream: %zu frames from %zu sensors @ 10 Hz "
                "each\n\n",
                stream.size(), stream.sensorCount);
    HgPcnSystem::Config cfg;
    const PointNet2Spec spec =
        PointNet2Spec::semanticSegmentation();

    bench::section("shard count (batch admission, round-robin)");
    TablePrinter shards_table({"shards", "aggregate FPS",
                               "vs 1 shard", "p99 latency",
                               "mean shard util"});
    double base_fps = 0.0;
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        ShardedRunner::Config sc;
        sc.shards = n;
        sc.placement = PlacementPolicy::RoundRobin;
        sc.runner.paceBySensor = false;
        ShardedRunner runner(cfg, spec, sc);
        const ServingResult r = runner.serve(stream);
        if (n == 1)
            base_fps = r.report.sustainedFps;
        // FPGA utilization per shard: down-sample + inference share
        // the device, so the busy fraction is the two stages' sum.
        double util = 0.0;
        for (const RuntimeReport &sr : r.report.shardReports)
            util += sr.stages[1].utilization +
                    sr.stages[2].utilization;
        util /= static_cast<double>(n);
        shards_table.addRow(
            {TablePrinter::fmtCount(n),
             TablePrinter::fmt(r.report.sustainedFps, 1),
             TablePrinter::fmtRatio(
                 r.report.sustainedFps / base_fps, 2),
             TablePrinter::fmtTime(r.report.p99LatencySec),
             TablePrinter::fmt(util * 100.0, 0)});
    }
    shards_table.print();

    bench::section("placement policy (sensor-paced, 2 shards)");
    TablePrinter policy_table({"policy", "processed", "p99 latency",
                               "max sensor spread"});
    for (const PlacementPolicy policy :
         {PlacementPolicy::RoundRobin, PlacementPolicy::HashBySensor,
          PlacementPolicy::LeastLoaded}) {
        ShardedRunner::Config sc;
        sc.shards = 2;
        sc.placement = policy;
        ShardedRunner runner(cfg, spec, sc);
        const ServingResult r = runner.serve(stream);
        std::size_t spread = 0;
        for (const SensorServingReport &sr : r.report.sensors)
            spread = std::max(spread, sr.shardSpread);
        policy_table.addRow(
            {placementPolicyName(policy),
             TablePrinter::fmtCount(r.report.framesProcessed),
             TablePrinter::fmtTime(r.report.p99LatencySec),
             TablePrinter::fmtCount(spread)});
    }
    policy_table.print();
    std::printf("hash-by-sensor keeps every sensor on one shard "
                "(spread 1): per-sensor order is preserved end to "
                "end.\n");

    bench::section("deployment view (sensor-paced, 2 shards, "
                   "hash affinity)");
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::HashBySensor;
    ShardedRunner runner(cfg, spec, sc);
    // `--trace`: record the deployment serve and export its
    // virtual-time events (per-shard stage spans, placement
    // decisions) for tools/trace_report.py. Virtual-only, so the
    // file is byte-identical across runs.
    if (!trace_path.empty()) {
        Tracer::global().clear();
        Tracer::global().setEnabled(true);
    }
    const ServingResult deployed = runner.serve(stream);
    if (!trace_path.empty()) {
        Tracer::global().setEnabled(false);
        TraceExportOptions opts;
        opts.includeWall = false;
        writeChromeTrace(trace_path, Tracer::global().snapshot(),
                         opts);
        Tracer::global().clear();
        std::printf("wrote %s\n", trace_path.c_str());
    }
    std::printf("%s", deployed.report.toString().c_str());
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string trace_path =
        hgpcn::bench::extractOption(argc, argv, "--trace");
    const std::size_t frames = hgpcn::bench::parsePositiveArg(
        argc, argv, 1, /*fallback=*/6, "frames_per_sensor");
    const std::size_t sensors = hgpcn::bench::parsePositiveArg(
        argc, argv, 2, /*fallback=*/4, "sensors");
    hgpcn::run(frames, sensors, trace_path);
    return 0;
}
