/**
 * @file
 * Streaming-runtime throughput: worker-count and frames-in-flight
 * sweeps over the concurrent stage pipeline (docs/RUNTIME.md).
 *
 * The paper's real-time claim (Section VII-E) rests on overlapping
 * the CPU octree build of frame i+1 with the FPGA work of frame i.
 * This bench quantifies the schedule headroom: batch-admission
 * throughput versus CPU build workers and FPGA devices, then
 * versus the in-flight credit (maxInFlight = 1 reproduces the
 * serial system, larger credits approach the pipelined bound), and
 * finally a sensor-paced run with the full report.
 *
 * Two clocks are reported (docs/PERFORMANCE.md):
 *  - the *virtual* timeline's sustained FPS — the paper-fidelity
 *    number from the cycle models, invariant across host kernels;
 *  - the *wall-clock* host execution rate of the default config —
 *    the perf-trajectory number the optimized kernels move.
 *
 * `--json <path>` writes both to a BENCH_runtime.json record.
 *
 * Observability hooks (docs/OBSERVABILITY.md):
 *  - `--trace <path>` exports the sensor-paced run's virtual-time
 *    trace as Chrome trace_event JSON (virtual clock only, so the
 *    file is byte-identical across runs — CI byte-compares two).
 *  - the wall section interleaves tracer-off and tracer-on+recording
 *    runs (best of N each) and reports the sustained-FPS delta as
 *    tracerOverheadPct; `--assert-tracer-overhead <pct>` turns the
 *    delta into a hard gate. Recording is strictly more work than
 *    the default-off path (one relaxed load per site), so the gate
 *    bounds the disabled overhead a fortiori.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace hgpcn
{
namespace
{

std::vector<Frame>
makeStream(std::size_t n)
{
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 500; // small frames: sweep-friendly
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n; ++f)
        frames.push_back(lidar.generate(f));
    return frames;
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
run(const std::string &json_path, const std::string &trace_path,
    double assert_overhead_pct)
{
    bench::banner("RUNTIME: STAGE-PIPELINE THROUGHPUT",
                  "StreamRunner sustained FPS vs workers and "
                  "frames in flight (KITTI-like stream, "
                  "Pointnet++(s), K = 4096)");

    const std::vector<Frame> frames = makeStream(8);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg,
                             PointNet2Spec::semanticSegmentation());

    const StreamReport serial = system.processStream(frames);
    std::printf("serial baseline (one frame at a time): %.1f FPS\n\n",
                serial.meanFps);

    bench::JsonWriter json;
    json.obj()
        .field("bench", "runtime_throughput")
        .field("schema", "hgpcn-bench-runtime/2")
        .field("frames", frames.size())
        .field("model", "Pointnet++(s)")
        .field("inputPoints", std::uint64_t{4096})
        .field("serialModeledFps", serial.meanFps);

    bench::section("build workers x FPGA devices (batch admission)");
    json.key("workerSweep").arr();
    TablePrinter workers({"CPU build workers", "FPGA devices",
                          "sustained FPS", "vs serial", "cpu util",
                          "fpga util"});
    for (const std::size_t fpga : {std::size_t{1}, std::size_t{2}}) {
        for (const std::size_t cpu :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            StreamRunner::Config rc =
                StreamRunner::compat(frames.size(), 0);
            rc.buildWorkers = cpu;
            rc.fpgaUnits = fpga;
            const RuntimeResult r = system.runStream(frames, rc);
            // down-sample + inference share the FPGA: utilization
            // of the device is the sum of the two stages'.
            const double fpga_util = r.report.stages[1].utilization +
                                     r.report.stages[2].utilization;
            workers.addRow(
                {TablePrinter::fmtCount(cpu),
                 TablePrinter::fmtCount(fpga),
                 TablePrinter::fmt(r.report.sustainedFps, 1),
                 TablePrinter::fmtRatio(
                     r.report.sustainedFps / serial.meanFps, 2),
                 TablePrinter::fmt(
                     r.report.stages[0].utilization * 100.0, 0),
                 TablePrinter::fmt(fpga_util * 100.0, 0)});
            json.obj()
                .field("buildWorkers", cpu)
                .field("fpgaUnits", fpga)
                .field("modeledFps", r.report.sustainedFps)
                .close();
        }
    }
    json.close(); // workerSweep
    workers.print();

    bench::section("frames in flight (batch admission, 2 build "
                   "workers)");
    TablePrinter credit({"max in flight", "sustained FPS",
                         "mean latency", "p99 latency"});
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{8}}) {
        StreamRunner::Config rc =
            StreamRunner::compat(frames.size(), 0);
        rc.buildWorkers = 2;
        rc.maxInFlight = n;
        rc.queueCapacity = n;
        const RuntimeResult r = system.runStream(frames, rc);
        credit.addRow(
            {TablePrinter::fmtCount(n),
             TablePrinter::fmt(r.report.sustainedFps, 1),
             TablePrinter::fmtTime(r.report.meanLatencySec),
             TablePrinter::fmtTime(r.report.p99LatencySec)});
    }
    credit.print();

    // --- Wall-clock host execution rate (the perf trajectory). ----
    // Default config, batch admission: how fast the host actually
    // pushes frames through octree build + OIS + inference. The
    // second run is the steady-state number (workspaces warm).
    bench::section("host wall-clock execution (default config)");
    const StreamRunner::Config wall_cfg =
        StreamRunner::compat(frames.size(), 0);
    double wall_fps = 0.0;
    double wall_fps_traced = 0.0;
    double wall_p95_modeled = 0.0;
    {
        StreamRunner::Config rc = wall_cfg;
        rc.inputPoints = 4096;
        StreamRunner runner(system.preprocessor(), system.backend(),
                            rc);
        runner.run(frames); // warm-up: arenas grow once
        // Interleaved A/B, best of N each: tracer off vs tracer on
        // *and recording*. Interleaving shares thermal/cache drift
        // between the arms, and the arm order alternates every rep
        // so position-correlated drift (turbo decay, a neighbor
        // stealing the core mid-pair) cannot masquerade as
        // overhead. Run-to-run pipeline variance (~±5% on shared
        // runners) dwarfs the true recording cost, so while the
        // overhead gate is breached the loop keeps adding reps (up
        // to kMaxReps): best-of converges both arms to their
        // throughput ceilings, whose gap is the real overhead — a
        // genuine regression stays visible at any rep count, a
        // noisy rep does not flake the job.
        Tracer &tracer = Tracer::global();
        std::string report_plain;
        std::string report_traced;
        constexpr int kMinReps = 3;
        constexpr int kMaxReps = 9;
        const auto runPlain = [&] {
            tracer.setEnabled(false);
            const double t0 = nowSec();
            const RuntimeResult plain = runner.run(frames);
            const double sec = nowSec() - t0;
            if (sec > 0.0) {
                wall_fps = std::max(
                    wall_fps,
                    static_cast<double>(plain.frames.size()) / sec);
            }
            wall_p95_modeled = plain.report.p95LatencySec;
            report_plain = plain.report.toString();
        };
        const auto runTraced = [&] {
            tracer.clear();
            tracer.setEnabled(true);
            const double t0 = nowSec();
            const RuntimeResult traced = runner.run(frames);
            const double sec = nowSec() - t0;
            tracer.setEnabled(false);
            if (sec > 0.0) {
                wall_fps_traced = std::max(
                    wall_fps_traced,
                    static_cast<double>(traced.frames.size()) / sec);
            }
            report_traced = traced.report.toString();
        };
        const auto overheadNow = [&] {
            return wall_fps > 0.0
                       ? (wall_fps - wall_fps_traced) / wall_fps
                             * 100.0
                       : 0.0;
        };
        int reps = 0;
        while (reps < kMinReps
               || (assert_overhead_pct > 0.0 && reps < kMaxReps
                   && overheadNow() > assert_overhead_pct)) {
            ++reps;
            if (reps % 2 != 0) {
                runPlain();
                runTraced();
            } else {
                runTraced();
                runPlain();
            }
        }
        tracer.clear();
        // The schedule and every modeled number must not move when
        // tracing is on — it is observability, not behavior.
        HGPCN_ASSERT(report_plain == report_traced,
                     "tracing changed the modeled report");
        std::printf("host throughput: %.2f frames/s wall-clock "
                    "(best of %d, steady state)\n",
                    wall_fps, reps);
        std::printf("modeled p95 latency (unchanged by host "
                    "kernels): %.2f ms\n",
                    wall_p95_modeled * 1e3);
    }
    const double overhead_pct =
        wall_fps > 0.0
            ? (wall_fps - wall_fps_traced) / wall_fps * 100.0
            : 0.0;
    std::printf("tracer on+recording: %.2f frames/s (overhead "
                "%.2f%%)\n",
                wall_fps_traced, overhead_pct);
    json.field("wallClockFps", wall_fps)
        .field("wallClockFpsTraced", wall_fps_traced)
        .field("tracerOverheadPct", overhead_pct)
        .field("modeledP95LatencySec", wall_p95_modeled);
    if (assert_overhead_pct > 0.0 &&
        overhead_pct > assert_overhead_pct) {
        std::fprintf(stderr,
                     "FAIL: tracer overhead %.2f%% exceeds the "
                     "--assert-tracer-overhead limit %.2f%%\n",
                     overhead_pct, assert_overhead_pct);
        std::exit(1);
    }

    bench::section("sensor-paced deployment view (10 Hz stream)");
    StreamRunner::Config paced;
    paced.buildWorkers = 2;
    paced.queueCapacity = 4;
    paced.maxInFlight = 4;
    // Trace the deployment-view run: its virtual-time events are
    // deterministic, so the count is a machine-independent record
    // field and the --trace export is byte-stable.
    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    const RuntimeResult deployed = system.runStream(frames, paced);
    Tracer::global().setEnabled(false);
    const std::vector<TraceEvent> events =
        Tracer::global().snapshot();
    std::uint64_t virtual_events = 0;
    for (const TraceEvent &ev : events) {
        if (ev.clock == TraceClock::Virtual)
            ++virtual_events;
    }
    Tracer::global().clear();
    std::printf("%s", deployed.report.toString().c_str());
    json.field("pacedModeledFps", deployed.report.sustainedFps)
        .field("pacedSensorFps", deployed.report.generationFps)
        .field("traceVirtualEvents", virtual_events);

    json.close(); // root
    if (!json_path.empty()) {
        json.writeTo(json_path);
        std::printf("\nwrote %s\n", json_path.c_str());
    }
    if (!trace_path.empty()) {
        TraceExportOptions opts;
        opts.includeWall = false; // byte-identical across runs
        writeChromeTrace(trace_path, events, opts);
        std::printf("wrote %s (%llu virtual-time events)\n",
                    trace_path.c_str(),
                    static_cast<unsigned long long>(virtual_events));
    }
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string json_path =
        hgpcn::bench::extractJsonPath(argc, argv);
    const std::string trace_path =
        hgpcn::bench::extractOption(argc, argv, "--trace");
    const std::string overhead_arg = hgpcn::bench::extractOption(
        argc, argv, "--assert-tracer-overhead");
    const double assert_overhead_pct =
        overhead_arg.empty() ? 0.0 : std::atof(overhead_arg.c_str());
    hgpcn::run(json_path, trace_path, assert_overhead_pct);
    return 0;
}
