/**
 * @file
 * Streaming-runtime throughput: worker-count and frames-in-flight
 * sweeps over the concurrent stage pipeline (docs/RUNTIME.md).
 *
 * The paper's real-time claim (Section VII-E) rests on overlapping
 * the CPU octree build of frame i+1 with the FPGA work of frame i.
 * This bench quantifies the schedule headroom: batch-admission
 * throughput versus CPU build workers and FPGA devices, then
 * versus the in-flight credit (maxInFlight = 1 reproduces the
 * serial system, larger credits approach the pipelined bound), and
 * finally a sensor-paced run with the full report.
 */

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"

namespace hgpcn
{
namespace
{

std::vector<Frame>
makeStream(std::size_t n)
{
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 500; // small frames: sweep-friendly
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n; ++f)
        frames.push_back(lidar.generate(f));
    return frames;
}

void
run()
{
    bench::banner("RUNTIME: STAGE-PIPELINE THROUGHPUT",
                  "StreamRunner sustained FPS vs workers and "
                  "frames in flight (KITTI-like stream, "
                  "Pointnet++(s), K = 4096)");

    const std::vector<Frame> frames = makeStream(8);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg,
                             PointNet2Spec::semanticSegmentation());

    const StreamReport serial = system.processStream(frames);
    std::printf("serial baseline (one frame at a time): %.1f FPS\n\n",
                serial.meanFps);

    bench::section("build workers x FPGA devices (batch admission)");
    TablePrinter workers({"CPU build workers", "FPGA devices",
                          "sustained FPS", "vs serial", "cpu util",
                          "fpga util"});
    for (const std::size_t fpga : {std::size_t{1}, std::size_t{2}}) {
        for (const std::size_t cpu :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            StreamRunner::Config rc =
                StreamRunner::compat(frames.size(), 0);
            rc.buildWorkers = cpu;
            rc.fpgaUnits = fpga;
            const RuntimeResult r = system.runStream(frames, rc);
            // down-sample + inference share the FPGA: utilization
            // of the device is the sum of the two stages'.
            const double fpga_util = r.report.stages[1].utilization +
                                     r.report.stages[2].utilization;
            workers.addRow(
                {TablePrinter::fmtCount(cpu),
                 TablePrinter::fmtCount(fpga),
                 TablePrinter::fmt(r.report.sustainedFps, 1),
                 TablePrinter::fmtRatio(
                     r.report.sustainedFps / serial.meanFps, 2),
                 TablePrinter::fmt(
                     r.report.stages[0].utilization * 100.0, 0),
                 TablePrinter::fmt(fpga_util * 100.0, 0)});
        }
    }
    workers.print();

    bench::section("frames in flight (batch admission, 2 build "
                   "workers)");
    TablePrinter credit({"max in flight", "sustained FPS",
                         "mean latency", "p99 latency"});
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{8}}) {
        StreamRunner::Config rc =
            StreamRunner::compat(frames.size(), 0);
        rc.buildWorkers = 2;
        rc.maxInFlight = n;
        rc.queueCapacity = n;
        const RuntimeResult r = system.runStream(frames, rc);
        credit.addRow(
            {TablePrinter::fmtCount(n),
             TablePrinter::fmt(r.report.sustainedFps, 1),
             TablePrinter::fmtTime(r.report.meanLatencySec),
             TablePrinter::fmtTime(r.report.p99LatencySec)});
    }
    credit.print();

    bench::section("sensor-paced deployment view (10 Hz stream)");
    StreamRunner::Config paced;
    paced.buildWorkers = 2;
    paced.queueCapacity = 4;
    paced.maxInFlight = 4;
    const RuntimeResult deployed = system.runStream(frames, paced);
    std::printf("%s", deployed.report.toString().c_str());
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
