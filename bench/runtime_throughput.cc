/**
 * @file
 * Streaming-runtime throughput: worker-count and frames-in-flight
 * sweeps over the concurrent stage pipeline (docs/RUNTIME.md).
 *
 * The paper's real-time claim (Section VII-E) rests on overlapping
 * the CPU octree build of frame i+1 with the FPGA work of frame i.
 * This bench quantifies the schedule headroom: batch-admission
 * throughput versus CPU build workers and FPGA devices, then
 * versus the in-flight credit (maxInFlight = 1 reproduces the
 * serial system, larger credits approach the pipelined bound), and
 * finally a sensor-paced run with the full report.
 *
 * Two clocks are reported (docs/PERFORMANCE.md):
 *  - the *virtual* timeline's sustained FPS — the paper-fidelity
 *    number from the cycle models, invariant across host kernels;
 *  - the *wall-clock* host execution rate of the default config —
 *    the perf-trajectory number the optimized kernels move.
 *
 * `--json <path>` writes both to a BENCH_runtime.json record.
 */

#include <chrono>

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"

namespace hgpcn
{
namespace
{

std::vector<Frame>
makeStream(std::size_t n)
{
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 500; // small frames: sweep-friendly
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n; ++f)
        frames.push_back(lidar.generate(f));
    return frames;
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
run(const std::string &json_path)
{
    bench::banner("RUNTIME: STAGE-PIPELINE THROUGHPUT",
                  "StreamRunner sustained FPS vs workers and "
                  "frames in flight (KITTI-like stream, "
                  "Pointnet++(s), K = 4096)");

    const std::vector<Frame> frames = makeStream(8);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg,
                             PointNet2Spec::semanticSegmentation());

    const StreamReport serial = system.processStream(frames);
    std::printf("serial baseline (one frame at a time): %.1f FPS\n\n",
                serial.meanFps);

    bench::JsonWriter json;
    json.obj()
        .field("bench", "runtime_throughput")
        .field("schema", "hgpcn-bench-runtime/1")
        .field("frames", frames.size())
        .field("model", "Pointnet++(s)")
        .field("inputPoints", std::uint64_t{4096})
        .field("serialModeledFps", serial.meanFps);

    bench::section("build workers x FPGA devices (batch admission)");
    json.key("workerSweep").arr();
    TablePrinter workers({"CPU build workers", "FPGA devices",
                          "sustained FPS", "vs serial", "cpu util",
                          "fpga util"});
    for (const std::size_t fpga : {std::size_t{1}, std::size_t{2}}) {
        for (const std::size_t cpu :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            StreamRunner::Config rc =
                StreamRunner::compat(frames.size(), 0);
            rc.buildWorkers = cpu;
            rc.fpgaUnits = fpga;
            const RuntimeResult r = system.runStream(frames, rc);
            // down-sample + inference share the FPGA: utilization
            // of the device is the sum of the two stages'.
            const double fpga_util = r.report.stages[1].utilization +
                                     r.report.stages[2].utilization;
            workers.addRow(
                {TablePrinter::fmtCount(cpu),
                 TablePrinter::fmtCount(fpga),
                 TablePrinter::fmt(r.report.sustainedFps, 1),
                 TablePrinter::fmtRatio(
                     r.report.sustainedFps / serial.meanFps, 2),
                 TablePrinter::fmt(
                     r.report.stages[0].utilization * 100.0, 0),
                 TablePrinter::fmt(fpga_util * 100.0, 0)});
            json.obj()
                .field("buildWorkers", cpu)
                .field("fpgaUnits", fpga)
                .field("modeledFps", r.report.sustainedFps)
                .close();
        }
    }
    json.close(); // workerSweep
    workers.print();

    bench::section("frames in flight (batch admission, 2 build "
                   "workers)");
    TablePrinter credit({"max in flight", "sustained FPS",
                         "mean latency", "p99 latency"});
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{8}}) {
        StreamRunner::Config rc =
            StreamRunner::compat(frames.size(), 0);
        rc.buildWorkers = 2;
        rc.maxInFlight = n;
        rc.queueCapacity = n;
        const RuntimeResult r = system.runStream(frames, rc);
        credit.addRow(
            {TablePrinter::fmtCount(n),
             TablePrinter::fmt(r.report.sustainedFps, 1),
             TablePrinter::fmtTime(r.report.meanLatencySec),
             TablePrinter::fmtTime(r.report.p99LatencySec)});
    }
    credit.print();

    // --- Wall-clock host execution rate (the perf trajectory). ----
    // Default config, batch admission: how fast the host actually
    // pushes frames through octree build + OIS + inference. The
    // second run is the steady-state number (workspaces warm).
    bench::section("host wall-clock execution (default config)");
    const StreamRunner::Config wall_cfg =
        StreamRunner::compat(frames.size(), 0);
    double wall_fps = 0.0;
    double wall_p95_modeled = 0.0;
    {
        StreamRunner::Config rc = wall_cfg;
        rc.inputPoints = 4096;
        StreamRunner runner(system.preprocessor(), system.backend(),
                            rc);
        runner.run(frames); // warm-up: arenas grow once
        const double t0 = nowSec();
        const RuntimeResult r = runner.run(frames);
        const double sec = nowSec() - t0;
        wall_fps = sec > 0.0
                       ? static_cast<double>(r.frames.size()) / sec
                       : 0.0;
        wall_p95_modeled = r.report.p95LatencySec;
        std::printf("host throughput: %.2f frames/s wall-clock "
                    "(%zu frames in %.2f s, steady state)\n",
                    wall_fps, r.frames.size(), sec);
        std::printf("modeled p95 latency (unchanged by host "
                    "kernels): %.2f ms\n",
                    wall_p95_modeled * 1e3);
    }
    json.field("wallClockFps", wall_fps)
        .field("modeledP95LatencySec", wall_p95_modeled);

    bench::section("sensor-paced deployment view (10 Hz stream)");
    StreamRunner::Config paced;
    paced.buildWorkers = 2;
    paced.queueCapacity = 4;
    paced.maxInFlight = 4;
    const RuntimeResult deployed = system.runStream(frames, paced);
    std::printf("%s", deployed.report.toString().c_str());
    json.field("pacedModeledFps", deployed.report.sustainedFps)
        .field("pacedSensorFps", deployed.report.generationFps);

    json.close(); // root
    if (!json_path.empty()) {
        json.writeTo(json_path);
        std::printf("\nwrote %s\n", json_path.c_str());
    }
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string json_path =
        hgpcn::bench::extractJsonPath(argc, argv);
    hgpcn::run(json_path);
    return 0;
}
