/**
 * @file
 * Figure 9: memory-access saving from the OIS method.
 *
 * For ModelNet-like frames and an average KITTI frame, down-sampled
 * to 1024 and 4096 points, compares total memory accesses of common
 * FPS (Algorithm 1: K scans over points + distance array) against
 * OIS (Algorithm 2: one build pass + one read per picked point).
 * Paper band: 1700x - 7900x.
 */

#include "bench/bench_util.h"
#include "datasets/kitti_like.h"
#include "datasets/modelnet_like.h"
#include "sampling/fps_sampler.h"
#include "sampling/ois_fps_sampler.h"

namespace hgpcn
{
namespace
{

std::uint64_t
oisAccesses(const SampleResult &result)
{
    return result.stats.get("sample.host_reads") +
           result.stats.get("sample.host_writes") +
           result.stats.get("octree.host_reads") +
           result.stats.get("octree.host_writes");
}

std::uint64_t
fpsAccesses(const StatSet &stats)
{
    return stats.get("sample.host_reads") +
           stats.get("sample.intermediate_reads") +
           stats.get("sample.intermediate_writes");
}

void
run()
{
    bench::banner("Figure 9: MEMORY-ACCESS SAVING FROM OIS",
                  "FPS accesses / OIS accesses per frame, K = 1024 "
                  "and 4096 (paper: 1700x-7900x)");

    TablePrinter table({"frame", "raw pts", "K", "FPS accesses",
                        "OIS accesses", "saving"});

    auto add_frame = [&](const Frame &frame) {
        for (const std::size_t k : {std::size_t{1024},
                                    std::size_t{4096}}) {
            if (frame.cloud.size() < 2 * k)
                continue;
            const StatSet fps =
                FpsSampler::predictStats(frame.cloud.size(), k);
            OisFpsSampler sampler;
            const SampleResult ois = sampler.sample(frame.cloud, k);
            const std::uint64_t fps_acc = fpsAccesses(fps);
            const std::uint64_t ois_acc = oisAccesses(ois);
            table.addRow(
                {frame.name, TablePrinter::fmtCount(frame.cloud.size()),
                 std::to_string(k), TablePrinter::fmtCount(fps_acc),
                 TablePrinter::fmtCount(ois_acc),
                 TablePrinter::fmtRatio(
                     static_cast<double>(fps_acc) /
                         static_cast<double>(ois_acc),
                     0)});
        }
    };

    // Object scans differ in size; vary raw counts like real frames.
    const std::size_t sizes[] = {60000,  80000,  100000, 130000,
                                 160000, 200000, 90000,  70000};
    const auto &names = ModelNetLike::objectNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        ModelNetLike::Config mn_cfg;
        mn_cfg.points = sizes[i % (sizeof(sizes) / sizeof(sizes[0]))];
        add_frame(ModelNetLike::generate(names[i], mn_cfg));
    }

    KittiLike::Config kitti_cfg;
    const KittiLike lidar(kitti_cfg);
    Frame kitti = lidar.generate(0);
    kitti.name = "kitti.avg";
    add_frame(kitti);

    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
