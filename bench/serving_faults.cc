/**
 * @file
 * Fault-tolerant serving under a scripted fault schedule: shard
 * crash + slowdown + transient error storm against the failover /
 * retry / degradation machinery (docs/RUNTIME.md §fault-tolerance).
 *
 * A seeded 64-sensor TrafficGen trace is served three ways by the
 * same 4-shard fleet:
 *
 *   1. clean — no fault plan at all (the baseline schedule);
 *   2. zero-fault plan — a FaultPlan with no windows, which must be
 *      completely inert: the serve is checked frame-for-frame
 *      identical to the clean run (the no-regression oracle);
 *   3. faulted — shard 1 crashes for 30% of the trace, shard 2 runs
 *      1.5x slow, and a fleet-wide transient error storm (35%
 *      failure probability per attempt) covers the last fifth. The
 *      fleet fails over, retries with exponential backoff, degrades
 *      on half-open breakers — and must still complete >= 99% of
 *      offered frames.
 *
 * Every fault decision is virtual-timeline arithmetic: the faulted
 * serve is run twice and checked byte-identical (CI additionally
 * diffs the JSON of a double run of this binary).
 *
 *   ./build/bench/serving_faults [--small] [--json path]
 *                                [--assert-faults]
 *
 * `--small` shrinks to 16 sensors / half the trace (the CI smoke
 * configuration). `--json <path>` writes a BENCH_faults.json
 * record. `--assert-faults` exits nonzero unless the faulted serve
 * completes >= 99% with retries and failovers actually exercised
 * (the PR acceptance gate; CI runs it). The determinism checks
 * (zero-fault inertness, double-run identity) always gate.
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/traffic_gen.h"
#include "serving/sharded_runner.h"
#include "sim/fault_plan.h"

namespace hgpcn
{
namespace
{

constexpr std::size_t kShards = 4;

PointNet2Spec
cityClassifier()
{
    // Small per-frame network: the fault machinery is exercised by
    // many frames, not heavy ones.
    PointNet2Spec spec = PointNet2Spec::classification(8);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

/** True when two serves produced the same schedule, frame for
 * frame (completion times, latencies, report rendering). */
bool
identicalServes(const ServingResult &a, const ServingResult &b)
{
    if (a.report.toString() != b.report.toString())
        return false;
    if (a.frames.size() != b.frames.size())
        return false;
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        if (a.frames[i].globalIndex != b.frames[i].globalIndex ||
            a.frames[i].shard != b.frames[i].shard ||
            a.frames[i].doneSec != b.frames[i].doneSec ||
            a.frames[i].latencySec != b.frames[i].latencySec)
            return false;
    }
    return true;
}

int
run(bool small, const std::string &json_path, bool assert_faults)
{
    bench::banner(
        "SERVING: FAULT TOLERANCE UNDER A SCRIPTED FAULT SCHEDULE",
        "shard crash + slowdown + transient error storm vs "
        "failover, retry/backoff and graceful degradation");

    HgPcnSystem::Config system;
    const PointNet2Spec spec = cityClassifier();

    ShardedRunner::Config base_cfg;
    base_cfg.shards = kShards;
    base_cfg.placement = PlacementPolicy::HashBySensor;

    // Calibrate trace length and fault windows to the modeled
    // per-frame service time, so the schedule — and every number
    // printed — is machine-independent.
    ShardedRunner probe(system, spec, base_cfg);
    const double svc = probe.shardBackend(0).estimateServiceSec();
    const double cap1 = 1.0 / svc; // one shard's modeled FPS

    const std::size_t sensors = small ? 16 : 64;
    const double duration =
        (small ? 200.0 : 400.0) * svc;

    TrafficGen::Config traffic;
    traffic.sensors = sensors;
    traffic.durationSec = duration;
    // Steady ~1.8x one shard across the 4-shard fleet: enough
    // headroom that a crashed shard's sensors fit on the three
    // survivors, so completion losses are *faults*, not overload.
    traffic.baseRateHz =
        1.8 * cap1 / static_cast<double>(sensors);
    traffic.rateJitter = 0.15;
    traffic.burstFactor = 1.3;
    traffic.burstDuty = 0.25;
    traffic.burstPeriodSec = duration / 5.0;
    traffic.cloudPoints = 300;
    traffic.seed = 4242;
    const TrafficGen gen(traffic);
    const TrafficTrace trace = gen.generate();

    // The scripted schedule, phased so each mechanism is visible
    // on its own: failover first, then failover under slowdown,
    // then the retry storm on a healed fleet.
    FaultPlan::Config fault_cfg;
    fault_cfg.seed = 99;
    fault_cfg.crashes.push_back(
        {/*shard=*/1, 0.25 * duration, 0.55 * duration});
    fault_cfg.slowdowns.push_back(
        {/*shard=*/2, 0.30 * duration, 0.50 * duration,
         /*multiplier=*/1.5});
    fault_cfg.errors.push_back(
        {/*backend=*/"", /*rate=*/0.35, 0.60 * duration,
         0.80 * duration});
    const FaultPlan plan(fault_cfg);

    FaultToleranceConfig ft;
    ft.maxAttempts = 4;
    ft.backoffBaseSec = svc;
    ft.backoffMultiplier = 2.0;
    ft.deadlineSec = 50.0 * svc; // generous: rarely binds
    ft.breaker.failureThreshold = 4;
    ft.breaker.openSec = 25.0 * svc;
    ft.breaker.halfOpenSuccesses = 2;
    ft.degradeOnHalfOpen = true;
    ft.degradedSampleFraction = 0.5;

    std::printf("trace: %zu frames from %zu sensors over %.3f s "
                "(modeled), service %.4g s/frame\n",
                trace.stream.size(), trace.stream.sensorCount,
                duration, svc);
    std::printf("faults: shard 1 down [%.3f,%.3f)s, shard 2 at "
                "1.5x [%.3f,%.3f)s, error storm p=0.35 "
                "[%.3f,%.3f)s\n\n",
                0.25 * duration, 0.55 * duration, 0.30 * duration,
                0.50 * duration, 0.60 * duration, 0.80 * duration);

    // --- Clean baseline. -----------------------------------------
    bench::section("clean serve (no fault plan)");
    ShardedRunner clean_fleet(system, spec, base_cfg);
    const ServingResult clean = clean_fleet.serve(trace.stream);
    std::printf("sustained %.1f FPS | p99 %.2f ms | %zu/%zu "
                "processed\n",
                clean.report.sustainedFps,
                clean.report.p99LatencySec * 1e3,
                clean.report.framesProcessed,
                clean.report.framesIn);

    // --- Zero-fault plan must be inert. --------------------------
    bench::section("zero-fault plan (must be inert)");
    const FaultPlan zero(FaultPlan::Config{});
    ShardedRunner::Config zero_cfg = base_cfg;
    zero_cfg.faultPlan = &zero;
    zero_cfg.faultTolerance = ft;
    ShardedRunner zero_fleet(system, spec, zero_cfg);
    const ServingResult zeroed = zero_fleet.serve(trace.stream);
    const bool zero_identical = identicalServes(clean, zeroed);
    std::printf("zero-fault schedule %s the clean schedule\n",
                zero_identical ? "matches" : "DIVERGES FROM");

    // --- The faulted serve, twice. -------------------------------
    bench::section("faulted serve (crash + slowdown + storm)");
    ShardedRunner::Config fault_run_cfg = base_cfg;
    fault_run_cfg.faultPlan = &plan;
    fault_run_cfg.faultTolerance = ft;
    ShardedRunner faulted_fleet(system, spec, fault_run_cfg);
    const ServingResult faulted = faulted_fleet.serve(trace.stream);
    const ServingResult replay = faulted_fleet.serve(trace.stream);
    const bool replay_identical = identicalServes(faulted, replay);

    const ServingReport &fr = faulted.report;
    const double completion =
        fr.framesIn == 0
            ? 1.0
            : static_cast<double>(fr.framesProcessed) /
                  static_cast<double>(fr.framesIn);
    const std::uint64_t failovers =
        faulted.metrics.countOf("fault.failovers");
    const std::uint64_t redirected =
        faulted.metrics.countOf("fault.frames_redirected");
    const std::uint64_t trips =
        faulted.metrics.countOf("fault.breaker_trips");
    std::printf("sustained %.1f FPS | p99 %.2f ms | %zu/%zu "
                "processed (%.2f%%)\n",
                fr.sustainedFps, fr.p99LatencySec * 1e3,
                fr.framesProcessed, fr.framesIn,
                100.0 * completion);
    std::printf("faults: %zu failed | %zu retried | %zu degraded "
                "| %zu dropped\n",
                fr.framesFailed, fr.framesRetried,
                fr.framesDegraded, fr.framesDropped);
    std::printf("failover: %llu events, %llu frames redirected, "
                "%llu breaker trips\n",
                static_cast<unsigned long long>(failovers),
                static_cast<unsigned long long>(redirected),
                static_cast<unsigned long long>(trips));
    std::printf("replay %s\n", replay_identical
                                   ? "byte-identical"
                                   : "DIVERGED");

    bench::section("verdict");
    TablePrinter table({"serve", "sustained FPS", "p99 latency",
                        "completion", "failed", "retried",
                        "degraded"});
    table.addRow({"clean",
                  TablePrinter::fmt(clean.report.sustainedFps, 1),
                  TablePrinter::fmtTime(
                      clean.report.p99LatencySec),
                  "100.00%", "0", "0", "0"});
    char pct[16];
    std::snprintf(pct, sizeof pct, "%.2f%%", 100.0 * completion);
    table.addRow({"faulted", TablePrinter::fmt(fr.sustainedFps, 1),
                  TablePrinter::fmtTime(fr.p99LatencySec), pct,
                  std::to_string(fr.framesFailed),
                  std::to_string(fr.framesRetried),
                  std::to_string(fr.framesDegraded)});
    table.print();

    const bool conservation =
        fr.framesIn == fr.framesProcessed + fr.framesDropped +
                           fr.framesAbandoned + fr.framesShed +
                           fr.framesFailed;

    // --- Machine-readable record (no wall-clock numbers: the
    // record must be byte-identical across runs and machines). ----
    if (!json_path.empty()) {
        bench::JsonWriter json;
        json.obj()
            .field("bench", "serving_faults")
            .field("schema", "hgpcn-bench-faults/1")
            .field("small", small)
            .field("sensors",
                   static_cast<std::uint64_t>(sensors))
            .field("frames", static_cast<std::uint64_t>(
                                 trace.stream.size()))
            .field("trafficSeed",
                   static_cast<std::uint64_t>(traffic.seed))
            .field("faultSeed",
                   static_cast<std::uint64_t>(fault_cfg.seed))
            .field("serviceSec", svc)
            .field("completionRatio", completion)
            .field("framesIn",
                   static_cast<std::uint64_t>(fr.framesIn))
            .field("framesProcessed",
                   static_cast<std::uint64_t>(fr.framesProcessed))
            .field("framesFailed",
                   static_cast<std::uint64_t>(fr.framesFailed))
            .field("framesRetried",
                   static_cast<std::uint64_t>(fr.framesRetried))
            .field("framesDegraded",
                   static_cast<std::uint64_t>(fr.framesDegraded))
            .field("framesDropped",
                   static_cast<std::uint64_t>(fr.framesDropped))
            .field("failovers", failovers)
            .field("framesRedirected", redirected)
            .field("breakerTrips", trips)
            .field("cleanSustainedFps",
                   clean.report.sustainedFps)
            .field("faultedSustainedFps", fr.sustainedFps)
            .field("cleanP99LatencySec",
                   clean.report.p99LatencySec)
            .field("faultedP99LatencySec", fr.p99LatencySec)
            .field("zeroPlanIdentical", zero_identical)
            .field("replayIdentical", replay_identical)
            .field("conservation", conservation)
            .close();
        json.writeTo(json_path);
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    // Determinism is non-negotiable: these gate every run.
    if (!zero_identical || !replay_identical || !conservation) {
        std::printf("FAIL: %s\n",
                    !zero_identical ? "zero-fault plan is not inert"
                    : !replay_identical
                        ? "faulted replay diverged"
                        : "conservation violated");
        return 1;
    }

    if (assert_faults) {
        bench::section("acceptance (--assert-faults)");
        bool ok = true;
        if (completion < 0.99) {
            std::printf("FAIL: completion %.4f < 0.99\n",
                        completion);
            ok = false;
        }
        if (fr.framesRetried == 0) {
            std::printf("FAIL: no frame was retried — the storm "
                        "never bit\n");
            ok = false;
        }
        if (failovers == 0) {
            std::printf("FAIL: no failover event — the crash "
                        "never bit\n");
            ok = false;
        }
        std::printf("%s\n",
                    ok ? "PASS: >= 99% completion through crash, "
                         "slowdown and error storm"
                       : "acceptance failed");
        return ok ? 0 : 1;
    }
    return 0;
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string json_path =
        hgpcn::bench::extractJsonPath(argc, argv);
    bool small = false;
    bool assert_faults = false;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
            continue;
        }
        if (std::strcmp(argv[i], "--assert-faults") == 0) {
            assert_faults = true;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return hgpcn::run(small, json_path, assert_faults);
}
