/**
 * @file
 * Cross-sensor micro-batching throughput: sustained modeled FPS of
 * the StreamRunner as maxBatch and the sensor count grow
 * (docs/RUNTIME.md section "Cross-sensor micro-batching").
 *
 * The batching win is architectural, not host-side: stacking small
 * per-frame GEMMs into one device pass amortizes the systolic
 * fill/drain and the per-layer weight fetch that dominate narrow
 * workloads (sim/fcu_dla.h). The bench drives a rig of KittiLike
 * sensors through a narrow edge classifier — Pointnet++(e),
 * npoint * k <= 64 rows per GEMM — in batch-admission mode, so
 * backlog forms and batches actually fill.
 *
 * Two clocks, as everywhere (docs/PERFORMANCE.md):
 *  - every number in the table and in BENCH_batching.json comes
 *    from the virtual timeline (deterministic, byte-identical
 *    across runs — CI double-runs and cmp's the record);
 *  - the host wall-clock rate is printed to stdout only. On a
 *    host CPU the stacked pass shares no weight-fetch hardware, so
 *    wall-clock moves little; the honesty section quantifies it.
 *
 * `--json <path>` writes the BENCH_batching.json record;
 * `--assert-batching-speedup <x>` exits nonzero when the modeled
 * sustained-FPS ratio of maxBatch=4 over maxBatch=1 on the
 * 16-sensor rig falls below x (the CI perf-smoke gate).
 */

#include <chrono>
#include <cstring>

#include "backends/execution_backend.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "nn/pointnet2.h"
#include "sim/fcu_dla.h"

namespace hgpcn
{
namespace
{

SensorStream
makeRig(std::size_t sensors, std::size_t frames_per_sensor)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 60; // small frames: sweep-friendly
    return makeLidarSensorStream(cfg);
}

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

int
run(const std::string &json_path, double assert_speedup, bool small)
{
    bench::banner("RUNTIME: CROSS-SENSOR MICRO-BATCHING",
                  "StreamRunner sustained FPS vs maxBatch and "
                  "sensor count (KittiLike rig, Pointnet++(e), "
                  "K = 256, batch admission)");

    const std::size_t frames_per_sensor = 4;
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg,
                             PointNet2Spec::edgeClassification(8));

    bench::JsonWriter json;
    json.obj()
        .field("bench", "batching_throughput")
        .field("schema", "hgpcn-bench-batching/1")
        .field("model", "Pointnet++(e)")
        .field("inputPoints", std::uint64_t{256})
        .field("framesPerSensor",
               static_cast<std::uint64_t>(frames_per_sensor));

    bench::section("maxBatch x sensors (batch admission, modeled)");
    TablePrinter table({"sensors", "maxBatch", "sustained FPS",
                        "vs maxBatch=1", "batches", "mean size",
                        "p99 latency", "infer util"});
    json.key("sweep").arr();
    double gate_speedup = 0.0;
    // --small (CI build-and-test smoke): one rig, two batch sizes —
    // drives the whole batched path without the full sweep.
    const std::vector<std::size_t> sensor_counts =
        small ? std::vector<std::size_t>{4}
              : std::vector<std::size_t>{4, 16};
    const std::vector<std::size_t> batch_sizes =
        small ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t sensors : sensor_counts) {
        const SensorStream rig = makeRig(sensors, frames_per_sensor);
        double solo_fps = 0.0;
        for (const std::size_t max_batch : batch_sizes) {
            StreamRunner::Config rc;
            rc.paceBySensor = false; // backlog -> batches fill
            rc.shareFpga = false;
            rc.buildWorkers = 4;
            rc.queueCapacity = 32;
            rc.maxBatch = max_batch;
            const RuntimeResult r = system.runStream(rig.frames, rc);
            if (max_batch == 1)
                solo_fps = r.report.sustainedFps;
            const double speedup =
                solo_fps > 0.0 ? r.report.sustainedFps / solo_fps
                               : 0.0;
            if (sensors == 16 && max_batch == 4)
                gate_speedup = speedup;
            table.addRow(
                {TablePrinter::fmtCount(sensors),
                 TablePrinter::fmtCount(max_batch),
                 TablePrinter::fmt(r.report.sustainedFps, 1),
                 TablePrinter::fmtRatio(speedup, 2),
                 TablePrinter::fmtCount(r.report.batchCount),
                 TablePrinter::fmt(r.report.meanBatchSize, 2),
                 TablePrinter::fmtTime(r.report.p99LatencySec),
                 TablePrinter::fmt(
                     r.report.stages[2].utilization * 100.0, 0)});
            json.obj()
                .field("sensors", sensors)
                .field("maxBatch", max_batch)
                .field("modeledFps", r.report.sustainedFps)
                .field("speedupVsSolo", speedup)
                .field("batchCount", r.report.batchCount)
                .field("meanBatchSize", r.report.meanBatchSize)
                .field("p99LatencySec", r.report.p99LatencySec)
                .close();
        }
    }
    json.close(); // sweep
    table.print();
    std::printf("\nmodeled speedup at maxBatch=4, 16 sensors: "
                "%.2fx\n",
                gate_speedup);
    json.field("gateSpeedup", gate_speedup);

    // --- Where the win comes from (and where it doesn't). ---------
    // Stacking amortizes per-tile fill/drain + per-layer weight
    // fetch. Wide-m workloads are already fill/drain-amortized, so
    // the same stacking buys Pointnet++(s) almost nothing: the
    // honesty row pins that, from the same FcuSim the timeline
    // charges.
    bench::section("FCU amortization by model (batch of 4, modeled)");
    TablePrinter amort({"model", "solo cycles/frame",
                        "batch-4 cycles/frame", "gain"});
    json.key("fcuAmortization").arr();
    for (const char *model_name :
         {"Pointnet++(e)", "Pointnet++(s)"}) {
        const bool edge = std::strcmp(model_name, "Pointnet++(e)") == 0;
        const PointNet2 net(edge ? PointNet2Spec::edgeClassification(8)
                                 : PointNet2Spec::semanticSegmentation(),
                            7);
        PointCloud cloud;
        Rng rng(11);
        const std::size_t n = edge ? 256 : 4096;
        cloud.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            cloud.add({rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f)});
        const RunOutput out = net.run(cloud);
        const FcuSim fcu(cfg.inference.sim);
        const double solo =
            static_cast<double>(fcu.run(out.trace).computeCycles);
        const std::vector<const ExecutionTrace *> four(4, &out.trace);
        const double batched =
            static_cast<double>(
                fcu.runStacked(four).computeCycles) /
            4.0;
        const double gain = batched > 0.0 ? solo / batched : 0.0;
        amort.addRow({model_name, TablePrinter::fmt(solo, 0),
                      TablePrinter::fmt(batched, 0),
                      TablePrinter::fmtRatio(gain, 2)});
        json.obj()
            .field("model", model_name)
            .field("soloCyclesPerFrame", solo)
            .field("batch4CyclesPerFrame", batched)
            .field("gain", gain)
            .close();
    }
    json.close(); // fcuAmortization
    amort.print();

    // --- Host wall-clock (stdout only: the record stays
    // deterministic for the CI double-run byte-identity check). ----
    if (!small) {
        bench::section("host wall-clock execution (16 sensors)");
        const SensorStream rig = makeRig(16, frames_per_sensor);
        for (const std::size_t max_batch :
             {std::size_t{1}, std::size_t{4}}) {
            StreamRunner::Config rc;
            rc.paceBySensor = false;
            rc.shareFpga = false;
            rc.buildWorkers = 4;
            rc.queueCapacity = 32;
            rc.maxBatch = max_batch;
            rc.inputPoints = 256;
            StreamRunner runner(system.preprocessor(),
                                system.backend(), rc);
            runner.run(rig.frames); // warm-up: arenas grow once
            const double t0 = nowSec();
            const RuntimeResult r = runner.run(rig.frames);
            const double sec = nowSec() - t0;
            std::printf("maxBatch=%zu: %.2f frames/s wall-clock "
                        "(%zu frames in %.2f s, steady state)\n",
                        max_batch,
                        sec > 0.0 ? static_cast<double>(
                                        r.frames.size()) /
                                        sec
                                  : 0.0,
                        r.frames.size(), sec);
        }
        std::printf("host GEMMs share no weight-fetch hardware: "
                    "wall-clock moves little by design; the modeled "
                    "schedule above is the paper-fidelity number "
                    "(docs/PERFORMANCE.md).\n");
    }

    json.close(); // root
    if (!json_path.empty()) {
        json.writeTo(json_path);
        std::printf("\nwrote %s\n", json_path.c_str());
    }

    if (assert_speedup > 0.0 && gate_speedup < assert_speedup) {
        std::fprintf(stderr,
                     "FAIL: modeled batching speedup %.2fx below "
                     "required %.2fx\n",
                     gate_speedup, assert_speedup);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::string json_path =
        hgpcn::bench::extractJsonPath(argc, argv);
    double assert_speedup = 0.0;
    bool small = false;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--assert-batching-speedup") == 0) {
            HGPCN_ASSERT(i + 1 < argc,
                         "--assert-batching-speedup needs a value");
            assert_speedup = std::atof(argv[++i]);
            continue;
        }
        if (std::strcmp(argv[i], "--small") == 0) {
            small = true;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return hgpcn::run(json_path, assert_speedup, small);
}
