/**
 * @file
 * Ablation: semi-approximate VEG (paper Section VIII).
 *
 * The last expansion ring's sort dominates VEG's workload (Fig. 16);
 * the semi-approximate variant replaces it with random picks. This
 * bench compares paper-exact VEG, strict VEG and semi-approximate
 * VEG on sorter workload, distance computations and recall against
 * brute-force KNN ground truth.
 */

#include <set>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datasets/s3dis_like.h"
#include "gather/brute_gatherers.h"
#include "gather/veg_gatherer.h"
#include "sampling/random_sampler.h"

namespace hgpcn
{
namespace
{

double
recallAgainst(const GatherResult &truth, const GatherResult &probe)
{
    std::size_t hits = 0;
    const std::size_t centroids = truth.centroids();
    for (std::size_t c = 0; c < centroids; ++c) {
        const auto t = truth.of(c);
        const std::set<PointIndex> t_set(t.begin(), t.end());
        for (PointIndex i : probe.of(c))
            hits += t_set.count(i);
    }
    return static_cast<double>(hits) /
           static_cast<double>(centroids * truth.k);
}

void
run()
{
    bench::banner("ABLATION: SEMI-APPROXIMATE VEG (SECTION VIII)",
                  "Sorter workload vs neighbor recall for the three "
                  "VEG flavors, K = 32");

    // A down-sampled S3DIS-style input of 4096 points.
    S3disLike::Config room_cfg;
    room_cfg.points = 40000;
    const Frame room = S3disLike::generate("room0", room_cfg);
    const auto sample =
        RandomSampler(3).sample(room.cloud, 4096);
    const PointCloud input = room.cloud.gather(sample.indices);

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 9;
    const Octree tree = Octree::build(input, tree_cfg);

    Rng rng(5);
    std::vector<PointIndex> centrals(1024);
    for (auto &c : centrals)
        c = static_cast<PointIndex>(rng.below(input.size()));
    const std::size_t k = 32;

    BruteKnn brute(tree.reorderedCloud());
    const auto truth = brute.gather(centrals, k);

    TablePrinter table({"variant", "dist computes", "sort candidates",
                        "recall vs brute"});
    table.addRow({"KNN-brute",
                  TablePrinter::fmtCount(truth.stats.get(
                      "gather.distance_computations")),
                  TablePrinter::fmtCount(
                      truth.stats.get("gather.sort_candidates")),
                  "1.000"});

    for (const VegMode mode : {VegMode::Strict, VegMode::Paper,
                               VegMode::SemiApprox}) {
        VegKnn::Config cfg;
        cfg.mode = mode;
        VegKnn veg(tree, cfg);
        const auto result = veg.gather(centrals, k);
        table.addRow(
            {toString(mode),
             TablePrinter::fmtCount(result.stats.get(
                 "gather.distance_computations")),
             TablePrinter::fmtCount(
                 result.stats.get("gather.sort_candidates")),
             TablePrinter::fmt(recallAgainst(truth, result), 3)});
    }
    table.print();
    std::printf("\nexpected: strict = exact; paper trades a little "
                "recall for a big sort cut;\nsemi-approx removes the "
                "sort entirely at a further recall cost.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
