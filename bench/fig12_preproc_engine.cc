/**
 * @file
 * Figure 12: Pre-processing Engine latency vs baseline sampling
 * methods.
 *
 * Per Table I dataset, compares:
 *   - OIS on HgPCN (CPU octree build + FPGA Down-sampling Unit)
 *   - OIS on CPU only (build + software descent)
 *   - FPS on the best general-purpose device
 *   - RS and RS+reinforce on the best device
 * plus the inset comparison: the hardware Down-sampling Unit vs a
 * CPU running the same unit (paper: 5.95x-6.24x), and the engine
 * speedup over OIS-on-CPU (paper: 1.2x-4.1x).
 */

#include <algorithm>

#include "bench/bench_util.h"
#include "core/preprocessing_engine.h"
#include "datasets/dataset_suite.h"
#include "sampling/fps_sampler.h"
#include "sampling/random_sampler.h"
#include "sim/device_model.h"

namespace hgpcn
{
namespace
{

double
bestDevice(const StatSet &stats, std::uint64_t iterations)
{
    const DeviceModel devices[] = {
        DeviceModel(DeviceModel::xeonW2255()),
        DeviceModel(DeviceModel::jetsonXavierNx()),
        DeviceModel(DeviceModel::rtx4060Ti())};
    double best = devices[0].samplingSec(stats, iterations);
    for (const auto &dev : devices)
        best = std::min(best, dev.samplingSec(stats, iterations));
    return best;
}

void
run()
{
    bench::banner("Figure 12: PRE-PROCESSING ENGINE VS BASELINES",
                  "Down-sampling latency per dataset and method "
                  "(paper: engine 1.2x-4.1x over OIS-on-CPU; "
                  "HW unit 5.95x-6.24x over CPU unit)");

    TablePrinter table({"dataset", "raw pts", "K", "OIS-on-HgPCN",
                        "OIS-on-CPU", "FPS(best)", "RS(best)",
                        "RS+reinf", "engine/CPU", "HWunit/CPUunit"});

    const PreprocessingEngine engine;
    const DeviceModel host(DeviceModel::xeonW2255());
    const DownsamplingUnitSim dsu_sim(SimConfig::defaults());

    for (const auto &task : DatasetSuite::tableOne()) {
        const Frame frame = task.rawFrame(0);
        const std::size_t n = frame.cloud.size();
        const std::size_t k = task.inputSize;

        // HgPCN engine (modeled CPU build + simulated FPGA unit).
        const auto result = engine.process(frame.cloud, k);
        const double hgpcn_sec = result.totalSec();

        // OIS fully on CPU: same build plus the software descent.
        const double cpu_unit_sec =
            dsu_sim.cpuUnitSec(result.stats, k);
        const double ois_cpu_sec =
            result.octreeBuildSec + cpu_unit_sec;

        // Hardware unit vs CPU unit (build excluded on both sides).
        const double hw_unit_sec = result.dsu.descentSec +
                                   result.dsu.leafScanSec +
                                   result.dsu.sptWriteSec;

        // Baseline sampling methods on their best device.
        const double fps_sec =
            bestDevice(FpsSampler::predictStats(n, k), k);
        StatSet rs_stats;
        rs_stats.set("sample.host_reads", k);
        rs_stats.set("sample.host_writes", k);
        const double rs_sec = bestDevice(rs_stats, 1);
        StatSet reinf_stats = rs_stats;
        reinf_stats.set(
            "sample.encoder_macs",
            n * ReinforcedRandomSampler::kEncoderMacsPerPoint);
        reinf_stats.add("sample.host_reads", n);
        const double reinf_sec = bestDevice(reinf_stats, 1);

        table.addRow(
            {task.dataset, TablePrinter::fmtCount(n),
             std::to_string(k), TablePrinter::fmtTime(hgpcn_sec),
             TablePrinter::fmtTime(ois_cpu_sec),
             TablePrinter::fmtTime(fps_sec),
             TablePrinter::fmtTime(rs_sec),
             TablePrinter::fmtTime(reinf_sec),
             TablePrinter::fmtRatio(ois_cpu_sec / hgpcn_sec),
             TablePrinter::fmtRatio(cpu_unit_sec / hw_unit_sec)});
    }
    table.print();
    std::printf(
        "\npaper shape: OIS-on-HgPCN beats every method except raw "
        "RS, with FPS slowest;\nOIS latency is far more consistent "
        "across frame sizes than FPS (tail latency).\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
