/**
 * @file
 * Figure 16: VEG latency breakdown across the DSU pipeline stages.
 *
 * Per Table I task, shows how the Data Structuring Unit's cycles
 * split across its six stages (FP fetch, LV locate, VE expand,
 * GP gather, ST sort, BF buffer). The sort of the last ring
 * dominates, which is what the semi-approximate VEG future-work
 * variant attacks.
 */

#include "bench/bench_util.h"
#include "core/inference_engine.h"
#include "datasets/dataset_suite.h"

namespace hgpcn
{
namespace
{

PointCloud
sampledInput(const Frame &frame, std::size_t k)
{
    PointCloud input;
    const std::size_t stride = frame.cloud.size() / k;
    for (std::size_t i = 0; i < k; ++i) {
        input.add(
            frame.cloud.position(static_cast<PointIndex>(i * stride)));
    }
    input.normalizeToUnitCube();
    return input;
}

void
run()
{
    bench::banner("Figure 16: VEG LATENCY BREAKDOWN (DSU STAGES)",
                  "Share of DSU cycles per pipeline stage and task");

    const InferenceEngine engine;

    std::vector<std::string> headers = {"task", "K"};
    for (std::size_t s = 0; s < kStageCount; ++s)
        headers.push_back(dsuStageName(s));
    TablePrinter table(std::move(headers));

    for (const auto &task : DatasetSuite::tableOne()) {
        const Frame frame = task.rawFrame(0);
        const PointCloud input = sampledInput(frame, task.inputSize);
        const PointNet2 net(task.spec);
        const InferenceResult result = engine.run(net, input);

        std::uint64_t total = 0;
        for (std::size_t s = 0; s < kStageCount; ++s)
            total += result.dsu.stageCycles[s];

        std::vector<std::string> row = {task.dataset,
                                        std::to_string(task.inputSize)};
        for (std::size_t s = 0; s < kStageCount; ++s) {
            const double share =
                total ? 100.0 *
                            static_cast<double>(
                                result.dsu.stageCycles[s]) /
                            static_cast<double>(total)
                      : 0.0;
            row.push_back(TablePrinter::fmt(share, 1) + "%");
        }
        table.addRow(std::move(row));
    }
    table.print();
    std::printf("\npaper: the sort stage (ST) contributes most of "
                "the VEG workload.\n");
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
