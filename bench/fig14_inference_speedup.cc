/**
 * @file
 * Figure 14: inference-phase speedup of HgPCN over baseline
 * hardware.
 *
 * Per Table I task (random central points, matching the paper's
 * Mesorasi-compatible protocol): HgPCN's Inference Engine
 * (DSU + FCU) against the Jetson Xavier NX GPU model, Mesorasi and
 * PointACC. Paper bands: 6.4x-21x vs Jetson, 2.2x-16.5x vs
 * Mesorasi, 1.3x-10.2x vs PointACC — growing with input size.
 */

#include "baselines/mesorasi.h"
#include "baselines/point_acc.h"
#include "bench/bench_util.h"
#include "core/inference_engine.h"
#include "datasets/dataset_suite.h"
#include "sim/device_model.h"

namespace hgpcn
{
namespace
{

PointCloud
sampledInput(const Frame &frame, std::size_t k)
{
    PointCloud input;
    const std::size_t stride = frame.cloud.size() / k;
    for (std::size_t i = 0; i < k; ++i) {
        input.add(
            frame.cloud.position(static_cast<PointIndex>(i * stride)));
    }
    input.normalizeToUnitCube();
    return input;
}

void
run()
{
    bench::banner(
        "Figure 14: INFERENCE SPEEDUP OF HGPCN OVER BASELINES",
        "paper: 6.4x-21x vs Jetson NX, 2.2x-16.5x vs Mesorasi, "
        "1.3x-10.2x vs PointACC");

    const SimConfig sim = SimConfig::defaults();
    const InferenceEngine engine;
    const PointAccSim point_acc(sim);
    const MesorasiSim mesorasi(sim);
    const DeviceModel jetson(DeviceModel::jetsonXavierNx());

    TablePrinter table({"task", "K", "HgPCN", "Jetson NX", "Mesorasi",
                        "PointACC", "vs Jetson", "vs Mesorasi",
                        "vs PointACC"});

    for (const auto &task : DatasetSuite::tableOne()) {
        const Frame frame = task.rawFrame(0);
        const PointCloud input = sampledInput(frame, task.inputSize);
        const PointNet2 net(task.spec);

        // HgPCN path: VEG data structuring on the DSU, FCU GEMMs.
        const InferenceResult hgpcn = engine.run(net, input);
        const double hgpcn_sec = hgpcn.totalSec();

        // Baseline path: brute-force DS workload trace.
        RunOptions brute_opts;
        brute_opts.ds = DsMethod::BruteKnn;
        const RunOutput brute = net.run(input, brute_opts);

        const double jetson_sec = jetson.inferenceSec(brute.trace);
        const double mesorasi_sec =
            mesorasi.run(brute.trace).totalSec();
        const double pacc_sec = point_acc.run(brute.trace).totalSec();

        table.addRow({task.dataset, std::to_string(task.inputSize),
                      TablePrinter::fmtTime(hgpcn_sec),
                      TablePrinter::fmtTime(jetson_sec),
                      TablePrinter::fmtTime(mesorasi_sec),
                      TablePrinter::fmtTime(pacc_sec),
                      TablePrinter::fmtRatio(jetson_sec / hgpcn_sec, 1),
                      TablePrinter::fmtRatio(mesorasi_sec / hgpcn_sec,
                                             1),
                      TablePrinter::fmtRatio(pacc_sec / hgpcn_sec,
                                             1)});
    }
    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
