/**
 * @file
 * Shared helpers for the paper-reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it prints a header naming the target, the simulated-platform
 * parameters (so results are auditable) and then the rows/series the
 * paper reports. docs/EXPERIMENTS.md records paper-vs-measured for each.
 */

#ifndef HGPCN_BENCH_BENCH_UTIL_H
#define HGPCN_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/arg_parse.h"
#include "common/logging.h"
#include "common/table_printer.h"
#include "sim/sim_config.h"

namespace hgpcn
{
namespace bench
{

// Mirror of examples/example_util.h: both re-export the shared
// common/arg_parse.h implementation, so bench drivers that take
// frame/sensor counts (backend_shootout, serving_scaling) validate
// their arguments the same way the examples do.
using hgpcn::parsePositiveArg;

/** Print the bench banner with the simulated platform description. */
inline void
banner(const std::string &target, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", target.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("platform: %s\n",
                SimConfig::defaults().describe().c_str());
    std::printf("==============================================================\n");
}

/** Print a named sub-section line. */
inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

/**
 * Minimal JSON emitter for the machine-readable perf trajectory
 * (BENCH_kernels.json / BENCH_runtime.json, docs/PERFORMANCE.md).
 *
 * Usage: obj() / arr() open containers, key()+value or field()
 * write members, close() pops one level, writeTo() flushes. No
 * escaping beyond quotes/backslashes — keys and values are bench-
 * controlled identifiers.
 */
class JsonWriter
{
  public:
    /** Version of the shared record conventions every BENCH_*.json
     * carries (`schemaVersion`, stamped automatically as the first
     * member of the root object). Bump when a cross-record
     * convention changes — per-bench layouts keep their own
     * `schema` string. */
    static constexpr int kSchemaVersion = 2;

    JsonWriter() = default;

    JsonWriter &
    obj()
    {
        const bool root = stack.empty();
        open('{');
        if (root && !stamped) {
            stamped = true;
            field("schemaVersion", kSchemaVersion);
        }
        return *this;
    }

    JsonWriter &arr() { open('['); return *this; }

    JsonWriter &
    close()
    {
        HGPCN_ASSERT(!stack.empty(), "json: close without open");
        out << (stack.back() == '{' ? '}' : ']');
        stack.pop_back();
        fresh = false;
        return *this;
    }

    JsonWriter &
    key(const std::string &k)
    {
        comma();
        out << '"' << escaped(k) << "\":";
        fresh = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        comma();
        out << '"' << escaped(v) << '"';
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    JsonWriter &
    value(double v)
    {
        comma();
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        out << buf;
        return *this;
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        comma();
        out << v;
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        comma();
        out << v;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        comma();
        out << (v ? "true" : "false");
        return *this;
    }

    template <class V>
    JsonWriter &
    field(const std::string &k, V v)
    {
        return key(k).value(v);
    }

    /** Write the document to @p path (fatal on failure). */
    void
    writeTo(const std::string &path) const
    {
        HGPCN_ASSERT(stack.empty(), "json: unclosed containers");
        std::ofstream f(path);
        HGPCN_ASSERT(f.good(), "cannot write ", path);
        f << out.str() << "\n";
    }

    /** @return the document as a string. */
    std::string str() const { return out.str(); }

  private:
    void
    open(char c)
    {
        comma();
        out << c;
        stack.push_back(c);
        fresh = true;
    }

    void
    comma()
    {
        if (!fresh && !stack.empty())
            out << ',';
        fresh = false;
    }

    static std::string
    escaped(const std::string &s)
    {
        std::string r;
        r.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                r.push_back('\\');
            r.push_back(c);
        }
        return r;
    }

    std::ostringstream out;
    std::vector<char> stack;
    bool fresh = true;
    bool stamped = false;
};

/**
 * Parse an optional `<flag> <value>` pair out of (argc, argv),
 * compacting the remaining positional arguments in place.
 * @return the value, or "" when the flag is absent.
 */
inline std::string
extractOption(int &argc, char **argv, const std::string &flag)
{
    std::string value;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i]) {
            HGPCN_ASSERT(i + 1 < argc, flag, " needs a value");
            value = argv[++i];
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return value;
}

/**
 * Parse an optional `--json <path>` flag out of (argc, argv),
 * compacting the remaining positional arguments in place.
 * @return the path, or "" when the flag is absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    return extractOption(argc, argv, "--json");
}

} // namespace bench
} // namespace hgpcn

#endif // HGPCN_BENCH_BENCH_UTIL_H
