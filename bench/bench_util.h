/**
 * @file
 * Shared helpers for the paper-reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it prints a header naming the target, the simulated-platform
 * parameters (so results are auditable) and then the rows/series the
 * paper reports. docs/EXPERIMENTS.md records paper-vs-measured for each.
 */

#ifndef HGPCN_BENCH_BENCH_UTIL_H
#define HGPCN_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "common/arg_parse.h"
#include "common/table_printer.h"
#include "sim/sim_config.h"

namespace hgpcn
{
namespace bench
{

// Mirror of examples/example_util.h: both re-export the shared
// common/arg_parse.h implementation, so bench drivers that take
// frame/sensor counts (backend_shootout, serving_scaling) validate
// their arguments the same way the examples do.
using hgpcn::parsePositiveArg;

/** Print the bench banner with the simulated platform description. */
inline void
banner(const std::string &target, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", target.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("platform: %s\n",
                SimConfig::defaults().describe().c_str());
    std::printf("==============================================================\n");
}

/** Print a named sub-section line. */
inline void
section(const std::string &name)
{
    std::printf("\n--- %s ---\n", name.c_str());
}

} // namespace bench
} // namespace hgpcn

#endif // HGPCN_BENCH_BENCH_UTIL_H
