/**
 * @file
 * Streaming Fig. 14: every execution backend on the same paced
 * multi-sensor stream.
 *
 * The paper's Fig. 14 compares per-inference latency in batch mode;
 * real-time viability (Section VII-E) is decided under load, where
 * a backend's latency *shape* — not just its mean — sets the margin
 * to the sensor rate. This bench serves one identical paced
 * KITTI-like stream through a single-shard fleet of each registered
 * comparison backend (HgPCN DSU/FCU, Mesorasi, PointACC, CPU
 * reference) and reports sustained FPS, tail latency and the
 * margin-to-sensor-rate per backend, then closes with a
 * heterogeneous fleet (HgPCN + Mesorasi shards) under cost-model-
 * aware least-loaded placement.
 *
 *   ./build/bench/backend_shootout [frames_per_sensor] [sensors]
 *
 * CI smoke-runs it with tiny counts (.github/workflows/ci.yml).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

SensorStream
makeStream(std::size_t sensors, std::size_t frames_per_sensor)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 500; // small frames: sweep-friendly
    return makeLidarSensorStream(cfg);
}

void
run(std::size_t frames_per_sensor, std::size_t sensors)
{
    bench::banner(
        "STREAMING SHOOTOUT: EXECUTION BACKENDS UNDER SENSOR PACING",
        "streaming Fig. 14 — per-backend sustained FPS, p99 and "
        "margin to the sensor rate on one identical paced stream");

    const SensorStream stream =
        makeStream(sensors, frames_per_sensor);
    std::printf("stream: %zu frames from %zu sensors @ %.0f Hz "
                "each (Pointnet++(s), K = 4096)\n\n",
                stream.size(), stream.sensorCount, 10.0);
    HgPcnSystem::Config cfg;
    const PointNet2Spec spec =
        PointNet2Spec::semanticSegmentation();

    bench::section("per-backend serve (sensor-paced, 1 shard each)");
    TablePrinter table({"backend", "device", "sustained FPS",
                        "offered FPS", "margin", "p50 latency",
                        "p99 latency", "real-time"});
    for (const char *name :
         {"hgpcn", "pointacc", "mesorasi", "cpu-brute"}) {
        ShardedRunner::Config sc;
        sc.shards = 1;
        sc.placement = PlacementPolicy::RoundRobin;
        sc.backends = {name};
        // Overload is part of the comparison: drop when behind
        // rather than letting the source block, as a sensor would.
        sc.runner.policy = OverloadPolicy::DropOldest;
        sc.runner.queueCapacity = 4;
        ShardedRunner runner(cfg, spec, sc);
        const ServingResult served = runner.serve(stream);
        const BackendServingReport &br = served.report.backends[0];
        const double margin =
            br.offeredFps > 0.0 ? br.sustainedFps / br.offeredFps
                                : 0.0;
        table.addRow(
            {name, runner.shardBackend(0).resource(),
             TablePrinter::fmt(br.sustainedFps, 1),
             TablePrinter::fmt(br.offeredFps, 1),
             TablePrinter::fmtRatio(margin, 2),
             TablePrinter::fmtTime(br.p50LatencySec),
             TablePrinter::fmtTime(br.p99LatencySec),
             realTimeVerdictName(br.realTime)});
    }
    table.print();
    std::printf("margin = sustained / offered: >= 1.00x keeps up "
                "with the rig (Section VII-E), < 1.00x falls "
                "behind and sheds frames.\n");

    bench::section("heterogeneous fleet (hgpcn + mesorasi, "
                   "least-loaded on cost-model estimates)");
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::LeastLoaded;
    sc.backends = {"hgpcn", "mesorasi"};
    sc.runner.policy = OverloadPolicy::DropOldest;
    sc.runner.queueCapacity = 4;
    ShardedRunner fleet(cfg, spec, sc);
    std::printf("cost-model service estimates: hgpcn %.2f ms, "
                "mesorasi %.2f ms\n",
                fleet.shardBackend(0).estimateServiceSec() * 1e3,
                fleet.shardBackend(1).estimateServiceSec() * 1e3);
    const ServingResult mixed = fleet.serve(stream);
    std::printf("%s", mixed.report.toString().c_str());
}

} // namespace
} // namespace hgpcn

int
main(int argc, char **argv)
{
    const std::size_t frames = hgpcn::bench::parsePositiveArg(
        argc, argv, 1, /*fallback=*/6, "frames_per_sensor");
    const std::size_t sensors = hgpcn::bench::parsePositiveArg(
        argc, argv, 2, /*fallback=*/4, "sensors");
    hgpcn::run(frames, sensors);
    return 0;
}
