/**
 * @file
 * Ablation: octree depth / leaf-capacity policy.
 *
 * Sweeps maxDepth and leafCapacity and reports the quantities they
 * trade against each other: build time, Octree-Table size (the
 * on-chip budget of Fig. 13), descent levels per pick (the lookup
 * cost of Fig. 12) and sampling quality.
 */

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datasets/modelnet_like.h"
#include "octree/octree_table.h"
#include "sampling/metrics.h"
#include "sampling/ois_fps_sampler.h"

namespace hgpcn
{
namespace
{

void
run()
{
    bench::banner("ABLATION: OCTREE DEPTH AND LEAF CAPACITY",
                  "Build cost vs table size vs descent work vs "
                  "sampling quality");

    ModelNetLike::Config mn_cfg;
    mn_cfg.points = 100000;
    const Frame frame = ModelNetLike::generate("MN.chair", mn_cfg);
    const std::size_t k = 4096;

    TablePrinter table({"maxDepth", "leafCap", "build time", "depth",
                        "table size", "levels/pick", "coverage"});

    for (const int max_depth : {8, 10, 12}) {
        for (const std::uint32_t leaf_cap : {8u, 64u, 256u}) {
            Octree::Config tree_cfg;
            tree_cfg.maxDepth = max_depth;
            tree_cfg.leafCapacity = leaf_cap;

            WallTimer build_timer;
            Octree tree = Octree::build(frame.cloud, tree_cfg);
            const double build_sec = build_timer.seconds();
            const OctreeTable octree_table =
                OctreeTable::fromOctree(tree);

            OisFpsSampler::Config cfg;
            cfg.octree = tree_cfg;
            const auto result =
                OisFpsSampler(cfg).sampleWithTree(tree, k);
            const double levels_per_pick =
                static_cast<double>(
                    result.stats.get("sample.levels_visited")) /
                static_cast<double>(k - 1);

            // Map reordered picks to original indices for metrics.
            std::vector<PointIndex> orig;
            orig.reserve(result.spt.size());
            for (PointIndex i : result.spt)
                orig.push_back(tree.permutation()[i]);

            table.addRow(
                {std::to_string(max_depth), std::to_string(leaf_cap),
                 TablePrinter::fmtTime(build_sec),
                 std::to_string(tree.depth()),
                 TablePrinter::fmtBytes(
                     static_cast<double>(octree_table.sizeBytes())),
                 TablePrinter::fmt(levels_per_pick, 1),
                 TablePrinter::fmt(
                     coverageRadius(frame.cloud, orig), 3)});
        }
    }
    table.print();
}

} // namespace
} // namespace hgpcn

int
main()
{
    hgpcn::run();
    return 0;
}
