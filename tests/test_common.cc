/**
 * @file
 * Unit tests for the common substrate: RNG, stats, table printer,
 * BoundedQueue counter invariants.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/bounded_queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table_printer.h"

namespace hgpcn
{
namespace
{

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a();
    a.reseed(7);
    EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.uniform(-2.5f, 4.0f);
        EXPECT_GE(v, -2.5f);
        EXPECT_LT(v, 4.0f);
    }
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(13);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalHasZeroishMeanUnitishVariance)
{
    Rng rng(17);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

// ------------------------------------------------------------- StatSet

TEST(StatSet, MissingKeyReadsZero)
{
    StatSet s;
    EXPECT_EQ(s.get("nope"), 0u);
    EXPECT_FALSE(s.has("nope"));
}

TEST(StatSet, AddAccumulates)
{
    StatSet s;
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
    EXPECT_TRUE(s.has("x"));
}

TEST(StatSet, SetOverwrites)
{
    StatSet s;
    s.add("x", 10);
    s.set("x", 3);
    EXPECT_EQ(s.get("x"), 3u);
}

TEST(StatSet, MergeSumsCounterwise)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("y", 3);
    b.add("z", 4);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 1u);
    EXPECT_EQ(a.get("y"), 5u);
    EXPECT_EQ(a.get("z"), 4u);
}

TEST(StatSet, ClearDropsEverything)
{
    StatSet s;
    s.add("x", 2);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.get("x"), 0u);
}

TEST(StatSet, ToStringListsSortedCounters)
{
    StatSet s;
    s.add("b", 2);
    s.add("a", 1);
    EXPECT_EQ(s.toString(), "a=1\nb=2\n");
}

// ---------------------------------------------- ConcurrentStatSet

TEST(ConcurrentStatSet, ParallelMergesSum)
{
    // The streaming runtime's down-sample workers merge per-frame
    // StatSets concurrently; counter-wise sums must survive the
    // contention (also exercised under TSan in CI).
    ConcurrentStatSet shared;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&shared] {
            for (int i = 0; i < 100; ++i) {
                StatSet local;
                local.add("work", 2);
                shared.merge(local);
                shared.add("frames");
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(shared.snapshot().get("work"), 800u);
    EXPECT_EQ(shared.snapshot().get("frames"), 400u);
    shared.clear();
    EXPECT_EQ(shared.snapshot().size(), 0u);
}

// -------------------------------------------------------- TablePrinter

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(TablePrinter, AlignsColumnsToWidestCell)
{
    TablePrinter t({"a"});
    t.addRow({"wide-cell"});
    t.addRow({"x"});
    const std::string out = t.render();
    // Every line has identical length.
    std::size_t prev = std::string::npos;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const auto eol = out.find('\n', pos);
        if (eol == std::string::npos)
            break;
        const std::size_t len = eol - pos;
        if (prev != std::string::npos) {
            EXPECT_EQ(len, prev);
        }
        prev = len;
        pos = eol + 1;
    }
}

TEST(TablePrinter, FmtRatioAppendsX)
{
    EXPECT_EQ(TablePrinter::fmtRatio(2.5), "2.50x");
    EXPECT_EQ(TablePrinter::fmtRatio(2.5, 1), "2.5x");
}

TEST(TablePrinter, FmtCountInsertsSeparators)
{
    EXPECT_EQ(TablePrinter::fmtCount(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::fmtCount(999), "999");
    EXPECT_EQ(TablePrinter::fmtCount(0), "0");
}

TEST(TablePrinter, FmtTimePicksUnits)
{
    EXPECT_EQ(TablePrinter::fmtTime(2.0e-9), "2.0 ns");
    EXPECT_EQ(TablePrinter::fmtTime(3.5e-6), "3.50 us");
    EXPECT_EQ(TablePrinter::fmtTime(4.2e-3), "4.200 ms");
    EXPECT_EQ(TablePrinter::fmtTime(1.5), "1.500 s");
}

TEST(TablePrinter, FmtBytesPicksUnits)
{
    EXPECT_EQ(TablePrinter::fmtBytes(512), "512 B");
    EXPECT_EQ(TablePrinter::fmtBytes(2048), "2.0 KiB");
    EXPECT_EQ(TablePrinter::fmtBytes(3.0 * 1024 * 1024), "3.0 MiB");
}

// ------------------------------------- BoundedQueue counter invariants

/** Every-state invariants of BoundedQueue::Counters. */
void
expectCounterInvariants(const BoundedQueue<int>::Counters &c,
                        std::size_t size)
{
    // Every admitted element is consumed or still queued.
    EXPECT_EQ(c.pushed, c.popped + size);
    // Only admitted pushes count as blocked.
    EXPECT_LE(c.blockedPushes, c.pushed);
    EXPECT_LE(c.peakSize, c.pushed);
}

TEST(BoundedQueueCounters, CloseWhileBlockedCountsClosedNotBlocked)
{
    // Regression: a push woken by close() destroys its value
    // without enqueueing it — shutdown, not back-pressure. The seed
    // counted it in blockedPushes, so every pipeline shutdown read
    // as queue congestion.
    BoundedQueue<int> q(1, OverloadPolicy::Block);
    ASSERT_EQ(q.push(1), PushOutcome::Pushed);

    std::atomic<bool> refused{false};
    std::thread producer([&] {
        refused.store(q.push(2) == PushOutcome::Closed);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    producer.join();
    EXPECT_TRUE(refused.load());

    const auto c = q.counters();
    EXPECT_EQ(c.pushed, 1u);
    EXPECT_EQ(c.blockedPushes, 0u);
    EXPECT_EQ(c.closedPushes, 1u);
    EXPECT_EQ(c.droppedOldest, 0u);
    EXPECT_EQ(c.droppedNewest, 0u);
    expectCounterInvariants(c, q.size());
}

TEST(BoundedQueueCounters, BlockedThenAdmittedCountsBlockedPush)
{
    // Whether the producer actually reaches the full-queue wait
    // before the consumer frees space is a scheduling race, so
    // retry the scenario until the blocked path is observed
    // (attempt 1 in practice) instead of trusting a fixed sleep.
    for (int attempt = 0; attempt < 50; ++attempt) {
        BoundedQueue<int> q(1, OverloadPolicy::Block);
        ASSERT_EQ(q.push(1), PushOutcome::Pushed);
        std::atomic<bool> started{false};
        std::thread producer([&] {
            started.store(true);
            EXPECT_EQ(q.push(2), PushOutcome::Pushed);
        });
        while (!started.load())
            std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        EXPECT_EQ(q.pop().value(), 1);
        producer.join();

        const auto c = q.counters();
        EXPECT_EQ(c.pushed, 2u);
        EXPECT_EQ(c.closedPushes, 0u);
        expectCounterInvariants(c, q.size());
        if (c.blockedPushes == 1u)
            return; // blocked-then-admitted path observed
    }
    FAIL() << "producer never blocked in 50 attempts";
}

TEST(BoundedQueueCounters, EveryPushAfterCloseCountsClosed)
{
    BoundedQueue<int> q(2, OverloadPolicy::Block);
    q.push(1);
    q.close();
    EXPECT_EQ(q.push(2), PushOutcome::Closed);
    EXPECT_EQ(q.push(3), PushOutcome::Closed);

    const auto c = q.counters();
    EXPECT_EQ(c.pushed, 1u);
    EXPECT_EQ(c.closedPushes, 2u);
    EXPECT_EQ(c.blockedPushes, 0u);
    expectCounterInvariants(c, q.size());
}

} // namespace
} // namespace hgpcn
