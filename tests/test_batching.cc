/**
 * @file
 * Tests for cross-sensor micro-batching: the wall-clock assembler
 * (runtime/batching_stage.h), the virtual timeline's batched
 * dispatch and charging, the backend batch contract
 * (inferBatch/batchServiceSec), the NN-level stacked execution
 * (PointNet2::runBatch) and the end-to-end StreamRunner /
 * ShardedRunner invariants: per-frame outputs bit-identical at any
 * maxBatch, maxBatch=1 indistinguishable from a build without the
 * feature, in-order per-sensor emission, timeline conservation and
 * zero steady-state arena growth. CI runs this suite under
 * ThreadSanitizer and AddressSanitizer (.github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "backends/cpu_brute_backend.h"
#include "backends/hgpcn_backend.h"
#include "core/frame_workspace.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "datasets/sensor_stream.h"
#include "runtime/batching_stage.h"
#include "runtime/stream_runner.h"
#include "runtime/virtual_timeline.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

/** Tiny segmentation net: exercises the FP (feature-propagation)
 * half of the stacked batch path. */
PointNet2Spec
tinySegmenter()
{
    PointNet2Spec spec = PointNet2Spec::partSegmentation(4);
    spec.inputPoints = 128;
    spec.sa[0] = {32, 8, 0.25f, {16, 32}};
    spec.sa[1] = {8, 4, 0.5f, {32, 64}};
    spec.sa[2] = {0, 0, 0.0f, {64, 64}};
    spec.fp = {{{32, 16}}, {{32}}, {{64}}};
    spec.head = {32};
    return spec;
}

std::vector<Frame>
smallKittiStream(std::size_t n)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 250; // small frames for test speed
    const KittiLike lidar(cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n; ++f)
        frames.push_back(lidar.generate(f));
    return frames;
}

SensorStream
tinyLidarStream(std::size_t sensors, std::size_t frames_per_sensor,
                double rate_hz = 10.0)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 250;
    cfg.lidar.frameRateHz = rate_hz;
    return makeLidarSensorStream(cfg);
}

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

std::unique_ptr<FrameTask>
taskWithIndex(std::size_t index)
{
    auto task = std::make_unique<FrameTask>();
    task->index = index;
    return task;
}

// ------------------------------------------------- BatchingStage

TEST(BatchingStage, InOrderArrivalReleasesFullGroups)
{
    BatchingStage assembler(2);
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < 6; ++i) {
        for (auto &g : assembler.add(taskWithIndex(i))) {
            std::vector<std::size_t> idx;
            for (const auto &t : g)
                idx.push_back(t->index);
            groups.push_back(idx);
        }
    }
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(groups[1], (std::vector<std::size_t>{2, 3}));
    EXPECT_EQ(groups[2], (std::vector<std::size_t>{4, 5}));
    EXPECT_EQ(assembler.pendingCount(), 0u);
}

TEST(BatchingStage, OutOfOrderArrivalHoldsUntilGroupComplete)
{
    // Upstream pools emit in any order; composition must not care.
    BatchingStage assembler(4);
    for (const std::size_t i : {4, 5, 6, 7, 1, 2, 3})
        EXPECT_TRUE(assembler.add(taskWithIndex(i)).empty());
    EXPECT_EQ(assembler.pendingCount(), 7u);
    // Index 0 plugs the gap and releases BOTH groups, in order.
    const auto groups = assembler.add(taskWithIndex(0));
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].front()->index, 0u);
    EXPECT_EQ(groups[0].back()->index, 3u);
    EXPECT_EQ(groups[1].front()->index, 4u);
    EXPECT_EQ(groups[1].back()->index, 7u);
}

TEST(BatchingStage, FlushEmitsPartialTailInIndexOrder)
{
    BatchingStage assembler(4);
    std::size_t released = 0;
    for (std::size_t i = 0; i < 6; ++i)
        released += assembler.add(taskWithIndex(i)).size();
    EXPECT_EQ(released, 1u); // [0..3]
    const auto tail = assembler.flush();
    ASSERT_EQ(tail.size(), 1u);
    ASSERT_EQ(tail[0].size(), 2u);
    EXPECT_EQ(tail[0][0]->index, 4u);
    EXPECT_EQ(tail[0][1]->index, 5u);
    EXPECT_EQ(assembler.pendingCount(), 0u);
}

// -------------------------------------- VirtualTimeline batching

TimelineConfig
oneStageMachine(std::size_t max_batch, double timeout_sec)
{
    TimelineConfig cfg;
    cfg.stages = {{"infer", "dev"}};
    cfg.batch.maxBatch = max_batch;
    cfg.batch.timeoutSec = timeout_sec;
    return cfg;
}

TEST(TimelineBatching, GreedyDispatchBatchesBacklogOnly)
{
    // Four frames at t=0, solo cost 1.0. Work-conserving timeout=0:
    // the first frame dispatches alone (nothing else queued yet);
    // the backlog of three coalesces when the unit frees.
    const TimelineConfig cfg = oneStageMachine(4, 0.0);
    const std::vector<double> arrivals{0, 0, 0, 0};
    const std::vector<std::vector<double>> costs(
        4, std::vector<double>{1.0});
    const TimelineResult r = simulateTimeline(
        cfg, arrivals, costs,
        [](const std::vector<std::size_t> &members) {
            return 0.4 * static_cast<double>(members.size());
        });
    EXPECT_EQ(r.processed, 4u);
    EXPECT_EQ(r.batchCount, 2u);
    EXPECT_EQ(r.soloFrames, 1u);
    EXPECT_EQ(r.batchedFrames, 3u);
    EXPECT_EQ(r.maxBatchSize, 3u);
    EXPECT_DOUBLE_EQ(r.meanBatchSize, 2.0);
    EXPECT_EQ(r.frames[0].batchSize, 1u);
    for (std::size_t f = 1; f < 4; ++f)
        EXPECT_EQ(r.frames[f].batchSize, 3u);
    // Solo at [0,1], batch of three at [1, 1+1.2].
    EXPECT_DOUBLE_EQ(r.frames[0].doneSec, 1.0);
    for (std::size_t f = 1; f < 4; ++f) {
        EXPECT_DOUBLE_EQ(r.frames[f].startSec[0], 1.0);
        EXPECT_DOUBLE_EQ(r.frames[f].doneSec, 2.2);
    }
    // Occupancy charged ONCE per dispatch: 1.0 + 1.2, not 1.0 + 3.
    EXPECT_DOUBLE_EQ(r.stages[0].busySec, 2.2);
    EXPECT_DOUBLE_EQ(r.makespanSec, 2.2);
}

TEST(TimelineBatching, TimeoutHoldsPartialBatchThenDispatches)
{
    // Two frames at t=0 on an idle unit, maxBatch 4, timeout 0.5:
    // the batch never fills, so it dispatches at the deadline.
    const TimelineConfig cfg = oneStageMachine(4, 0.5);
    const std::vector<std::vector<double>> costs(
        2, std::vector<double>{1.0});
    const TimelineResult r = simulateTimeline(
        cfg, {0, 0}, costs,
        [](const std::vector<std::size_t> &members) {
            return 0.7 * static_cast<double>(members.size());
        });
    EXPECT_EQ(r.processed, 2u);
    EXPECT_EQ(r.batchCount, 1u);
    EXPECT_EQ(r.batchedFrames, 2u);
    for (std::size_t f = 0; f < 2; ++f) {
        EXPECT_EQ(r.frames[f].batchSize, 2u);
        EXPECT_DOUBLE_EQ(r.frames[f].startSec[0], 0.5);
        EXPECT_DOUBLE_EQ(r.frames[f].doneSec, 0.5 + 1.4);
    }
    EXPECT_DOUBLE_EQ(r.stages[0].busySec, 1.4);
}

TEST(TimelineBatching, FullBatchDispatchesBeforeTimeout)
{
    const TimelineConfig cfg = oneStageMachine(2, 10.0);
    const std::vector<std::vector<double>> costs(
        2, std::vector<double>{1.0});
    const TimelineResult r = simulateTimeline(
        cfg, {0, 0}, costs,
        [](const std::vector<std::size_t> &members) {
            return 0.6 * static_cast<double>(members.size());
        });
    ASSERT_EQ(r.processed, 2u);
    // Fill beats deadline: dispatch at t=0, not t=10.
    EXPECT_DOUBLE_EQ(r.frames[0].startSec[0], 0.0);
    EXPECT_DOUBLE_EQ(r.makespanSec, 1.2);
}

TEST(TimelineBatching, SingletonBatchChargesSoloCostExactly)
{
    // A batch of one is solo service by definition: the callback is
    // never consulted for it.
    const TimelineConfig cfg = oneStageMachine(8, 0.0);
    const TimelineResult r = simulateTimeline(
        cfg, {0}, {{1.25}},
        [](const std::vector<std::size_t> &) { return 999.0; });
    ASSERT_EQ(r.processed, 1u);
    EXPECT_DOUBLE_EQ(r.frames[0].doneSec, 1.25);
    EXPECT_EQ(r.soloFrames, 1u);
    EXPECT_EQ(r.batchedFrames, 0u);
}

TEST(TimelineBatching, MaxBatchOneMatchesLegacySchedule)
{
    // maxBatch=1 must take the classic per-frame path: identical
    // schedule to a config that never mentions batching, callback
    // never consulted.
    TimelineConfig legacy;
    legacy.stages = {{"a", "cpu"}, {"b", "dev"}};
    TimelineConfig batched = legacy;
    batched.batch.maxBatch = 1;
    batched.batch.timeoutSec = 0.0;
    const std::vector<double> arrivals{0.0, 0.1, 0.2, 0.3};
    const std::vector<std::vector<double>> costs(
        4, std::vector<double>{0.05, 0.2});
    const TimelineResult a = simulateTimeline(legacy, arrivals, costs);
    const TimelineResult b = simulateTimeline(
        batched, arrivals, costs,
        [](const std::vector<std::size_t> &) -> double {
            ADD_FAILURE() << "batch cost consulted at maxBatch=1";
            return 0.0;
        });
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (std::size_t f = 0; f < a.frames.size(); ++f) {
        EXPECT_DOUBLE_EQ(a.frames[f].doneSec, b.frames[f].doneSec);
        EXPECT_EQ(b.frames[f].batchSize, 1u);
    }
    EXPECT_DOUBLE_EQ(a.makespanSec, b.makespanSec);
    EXPECT_EQ(b.batchCount, 0u);
}

// ------------------------------------------- Backend batch contract

TEST(BackendBatching, BatchServiceSecOfOneFrameEqualsSolo)
{
    const PointNet2 net(tinyClassifier(), 42);
    const InferenceEngine::Config ecfg;
    const InferenceEngine engine(ecfg);
    const HgpcnBackend hg(engine, net);
    const CpuBruteBackend cpu(ecfg, net);
    const PointCloud cloud = randomCloud(256, 7);
    for (const ExecutionBackend *be :
         {static_cast<const ExecutionBackend *>(&hg),
          static_cast<const ExecutionBackend *>(&cpu)}) {
        const BackendInference solo = be->infer(cloud);
        const BackendInference *ptr = &solo;
        EXPECT_DOUBLE_EQ(be->batchServiceSec({&ptr, 1}),
                         solo.totalSec())
            << be->name();
    }
}

TEST(BackendBatching, InferBatchFramesBitIdenticalToSolo)
{
    const PointNet2 net(tinyClassifier(), 42);
    const InferenceEngine::Config ecfg;
    const InferenceEngine engine(ecfg);
    const HgpcnBackend hg(engine, net);
    const CpuBruteBackend cpu(ecfg, net);
    std::vector<PointCloud> clouds;
    for (std::uint64_t s = 0; s < 3; ++s)
        clouds.push_back(randomCloud(256, 20 + s));
    std::vector<const PointCloud *> ptrs;
    for (const PointCloud &c : clouds)
        ptrs.push_back(&c);

    for (const ExecutionBackend *be :
         {static_cast<const ExecutionBackend *>(&hg),
          static_cast<const ExecutionBackend *>(&cpu)}) {
        const BatchInference batch = be->inferBatch(ptrs);
        ASSERT_EQ(batch.frames.size(), clouds.size());
        double solo_sum = 0.0;
        for (std::size_t i = 0; i < clouds.size(); ++i) {
            const BackendInference solo = be->infer(clouds[i]);
            const BackendInference &b = batch.frames[i];
            EXPECT_EQ(b.output.labels, solo.output.labels);
            ASSERT_EQ(b.output.logits.rows(),
                      solo.output.logits.rows());
            ASSERT_EQ(b.output.logits.cols(),
                      solo.output.logits.cols());
            for (std::size_t r = 0; r < solo.output.logits.rows();
                 ++r) {
                for (std::size_t c = 0;
                     c < solo.output.logits.cols(); ++c) {
                    EXPECT_EQ(b.output.logits.row(r)[c],
                              solo.output.logits.row(r)[c])
                        << be->name() << " frame " << i;
                }
            }
            // Per-frame modeled numbers are batch-independent.
            EXPECT_DOUBLE_EQ(b.dsSec, solo.dsSec);
            EXPECT_DOUBLE_EQ(b.fcSec, solo.fcSec);
            solo_sum += solo.totalSec();
        }
        // Shared weight pass: batched occupancy never exceeds the
        // serial sum (and is positive).
        EXPECT_GT(batch.batchSec, 0.0) << be->name();
        EXPECT_LE(batch.batchSec, solo_sum + 1e-12) << be->name();
    }
}

// -------------------------------------------- PointNet2::runBatch

TEST(RunBatch, MatchesSoloRunBitwise)
{
    for (const PointNet2Spec &spec :
         {tinyClassifier(), tinySegmenter(),
          PointNet2Spec::edgeClassification(8)}) {
        const PointNet2 net(spec, 42);
        std::vector<PointCloud> clouds;
        for (std::uint64_t s = 0; s < 4; ++s)
            clouds.push_back(
                randomCloud(spec.inputPoints, 100 + s));
        std::vector<const PointCloud *> ptrs;
        for (const PointCloud &c : clouds)
            ptrs.push_back(&c);
        const std::vector<RunOutput> batch = net.runBatch(ptrs);
        ASSERT_EQ(batch.size(), clouds.size()) << spec.name;
        for (std::size_t i = 0; i < clouds.size(); ++i) {
            const RunOutput solo = net.run(clouds[i]);
            EXPECT_EQ(batch[i].labels, solo.labels) << spec.name;
            ASSERT_EQ(batch[i].logits.rows(), solo.logits.rows());
            ASSERT_EQ(batch[i].logits.cols(), solo.logits.cols());
            for (std::size_t r = 0; r < solo.logits.rows(); ++r) {
                for (std::size_t c = 0; c < solo.logits.cols();
                     ++c) {
                    EXPECT_EQ(batch[i].logits.row(r)[c],
                              solo.logits.row(r)[c])
                        << spec.name << " frame " << i;
                }
            }
            // The stacked pass records the same per-frame trace.
            ASSERT_EQ(batch[i].trace.gemms.size(),
                      solo.trace.gemms.size());
            for (std::size_t g = 0; g < solo.trace.gemms.size();
                 ++g) {
                EXPECT_EQ(batch[i].trace.gemms[g].layer,
                          solo.trace.gemms[g].layer);
                EXPECT_EQ(batch[i].trace.gemms[g].m,
                          solo.trace.gemms[g].m);
                EXPECT_EQ(batch[i].trace.gemms[g].k,
                          solo.trace.gemms[g].k);
                EXPECT_EQ(batch[i].trace.gemms[g].n,
                          solo.trace.gemms[g].n);
            }
        }
    }
}

// ------------------------------------------- StreamRunner E2E

TEST(StreamBatching, OutputsBitIdenticalAcrossMaxBatch)
{
    const std::vector<Frame> frames = smallKittiStream(5);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());

    StreamRunner::Config base;
    base.paceBySensor = false; // backlog -> batches actually form
    const RuntimeResult reference = system.runStream(frames, base);
    ASSERT_EQ(reference.frames.size(), frames.size());

    for (const std::size_t max_batch : {std::size_t{2},
                                        std::size_t{4},
                                        std::size_t{8}}) {
        for (const bool temporal : {true, false}) {
            StreamRunner::Config rc = base;
            rc.maxBatch = max_batch;
            rc.temporalCache = temporal;
            const RuntimeResult rt = system.runStream(frames, rc);
            ASSERT_EQ(rt.frames.size(), frames.size())
                << "maxBatch " << max_batch;
            for (std::size_t i = 0; i < frames.size(); ++i) {
                const E2eResult &a = reference.frames[i].result;
                const E2eResult &b = rt.frames[i].result;
                EXPECT_EQ(rt.frames[i].index, i);
                EXPECT_EQ(b.inference.output.labels,
                          a.inference.output.labels)
                    << "maxBatch " << max_batch << " temporal "
                    << temporal << " frame " << i;
                // Modeled per-frame numbers unchanged by batching.
                EXPECT_DOUBLE_EQ(b.totalSec(), a.totalSec());
            }
        }
    }
}

TEST(StreamBatching, MaxBatchOneReportByteIdentical)
{
    // The default config IS maxBatch=1; an explicit 1 must change
    // nothing, report text included (the pre-PR pin).
    const std::vector<Frame> frames = smallKittiStream(4);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.buildWorkers = 2;
    const RuntimeResult a = system.runStream(frames, rc);
    rc.maxBatch = 1;
    rc.batchTimeoutVirtualSec = 0.0;
    const RuntimeResult b = system.runStream(frames, rc);
    EXPECT_EQ(a.report.toString(), b.report.toString());
    EXPECT_EQ(b.report.batchCount, 0u);
    EXPECT_EQ(a.report.toString().find("batching:"),
              std::string::npos);
}

TEST(StreamBatching, BatchedReportAttributesOccupancy)
{
    const std::vector<Frame> frames = smallKittiStream(8);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.paceBySensor = false; // full backlog -> full batches
    rc.maxBatch = 4;
    // Upstream stages hand frames to inference one at a time; a
    // fill timeout far above any modeled stage time makes the
    // dispatcher wait for full batches instead of draining greedily.
    rc.batchTimeoutVirtualSec = 10.0;
    const RuntimeResult rt = system.runStream(frames, rc);
    const RuntimeReport &rep = rt.report;
    EXPECT_EQ(rep.framesProcessed, frames.size());
    EXPECT_EQ(rep.configuredMaxBatch, 4u);
    EXPECT_GT(rep.batchCount, 0u);
    EXPECT_EQ(rep.batchedFrames + rep.soloFrames,
              rep.framesProcessed);
    EXPECT_GT(rep.meanBatchSize, 1.0);
    EXPECT_LE(rep.maxBatchSize, 4u);
    EXPECT_NE(rep.toString().find("batching: max 4"),
              std::string::npos);
    // Determinism: the full report reproduces run over run.
    const RuntimeResult again = system.runStream(frames, rc);
    EXPECT_EQ(rt.report.toString(), again.report.toString());
}

TEST(StreamBatching, ConservationHoldsUnderDropsAndBatching)
{
    const std::vector<Frame> frames = smallKittiStream(8);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.maxBatch = 4;
    rc.queueCapacity = 1;
    rc.maxInFlight = 2;
    rc.policy = OverloadPolicy::DropNewest;
    const RuntimeResult rt = system.runStream(frames, rc);
    EXPECT_EQ(rt.report.framesIn,
              rt.report.framesProcessed + rt.report.framesDropped +
                  rt.report.framesAbandoned);
}

TEST(StreamBatching, SteadyStateArenaStopsGrowing)
{
    // Warm-up sees every batch-sized (slot, size) maximum; after it,
    // serving the same stream again allocates nothing new. The warm
    // contract is per runner (the pool is a StreamRunner member), so
    // reuse one runner rather than going through runStream, which
    // constructs a fresh runner -- and fresh, cold arenas -- per call.
    const std::vector<Frame> frames = smallKittiStream(6);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.inputPoints = 256;
    rc.paceBySensor = false;
    rc.maxBatch = 2;
    StreamRunner runner(system.preprocessor(), system.backend(), rc);
    (void)runner.run(frames); // warm-up
    const std::uint64_t warmed = FrameWorkspace::backingGrowths();
    (void)runner.run(frames);
    EXPECT_EQ(FrameWorkspace::backingGrowths(), warmed);
}

// ------------------------------------------- ShardedRunner E2E

TEST(ServingBatching, PerSensorOrderAndShardAttribution)
{
    const SensorStream stream = tinyLidarStream(4, 4);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::HashBySensor;
    sc.runner.paceBySensor = false;
    sc.runner.maxBatch = 2;
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    const ServingResult served = runner.serve(stream);
    EXPECT_EQ(served.report.framesProcessed, stream.size());

    // In-order per-sensor emission across batch boundaries.
    std::vector<std::size_t> next(stream.sensorCount, 0);
    for (const ServedFrame &sf : served.frames) {
        EXPECT_EQ(sf.sensorIndex, next[sf.sensor]++)
            << "sensor " << sf.sensor;
    }

    // Per-shard batch-occupancy attribution made it to the report.
    for (const RuntimeReport &shard : served.report.shardReports) {
        EXPECT_EQ(shard.configuredMaxBatch, 2u);
        EXPECT_EQ(shard.batchedFrames + shard.soloFrames,
                  shard.framesProcessed);
    }
    EXPECT_NE(served.report.toString().find("batch mean"),
              std::string::npos);
}

} // namespace
} // namespace hgpcn
