/**
 * @file
 * Unit and property tests for the geometry substrate: Vec3, Aabb,
 * Morton m-codes and PointCloud.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/aabb.h"
#include "geometry/morton.h"
#include "geometry/point_cloud.h"
#include "geometry/vec3.h"

namespace hgpcn
{
namespace
{

// ----------------------------------------------------------------- Vec3

TEST(Vec3, ArithmeticComponents)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
    EXPECT_EQ(b / 2.0f, Vec3(2, 2.5f, 3));
}

TEST(Vec3, DotAndNorm)
{
    const Vec3 a{3, 4, 0};
    EXPECT_FLOAT_EQ(a.dot(a), 25.0f);
    EXPECT_FLOAT_EQ(a.norm(), 5.0f);
    EXPECT_FLOAT_EQ(a.normSq(), 25.0f);
}

TEST(Vec3, DistanceIsSymmetric)
{
    const Vec3 a{1, 1, 1}, b{4, 5, 1};
    EXPECT_FLOAT_EQ(a.dist(b), 5.0f);
    EXPECT_FLOAT_EQ(b.dist(a), a.dist(b));
}

TEST(Vec3, MinMaxAreComponentwise)
{
    const Vec3 a{1, 5, 2}, b{3, 2, 4};
    EXPECT_EQ(Vec3::min(a, b), Vec3(1, 2, 2));
    EXPECT_EQ(Vec3::max(a, b), Vec3(3, 5, 4));
}

// ----------------------------------------------------------------- Aabb

TEST(Aabb, StartsEmpty)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
}

TEST(Aabb, ExpandContainsPoints)
{
    Aabb box;
    box.expand({1, 2, 3});
    box.expand({-1, 0, 5});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({0, 1, 4}));
    EXPECT_FALSE(box.contains({2, 2, 3}));
    EXPECT_EQ(box.lo, Vec3(-1, 0, 3));
    EXPECT_EQ(box.hi, Vec3(1, 2, 5));
}

TEST(Aabb, CubifiedIsCubeContainingBox)
{
    Aabb box({0, 0, 0}, {4, 2, 1});
    const Aabb cube = box.cubified();
    const Vec3 e = cube.extent();
    EXPECT_NEAR(e.x, e.y, 1e-4f);
    EXPECT_NEAR(e.y, e.z, 1e-4f);
    EXPECT_GE(e.x, 4.0f);
    EXPECT_TRUE(cube.contains(box.lo));
    EXPECT_TRUE(cube.contains(box.hi));
}

TEST(Aabb, CubifiedOfPointIsNonDegenerate)
{
    Aabb box({1, 1, 1}, {1, 1, 1});
    const Aabb cube = box.cubified();
    EXPECT_GT(cube.extent().x, 0.0f);
}

// ----------------------------------------------------- Morton bit ops

TEST(Morton, ExpandCompact3RoundTrip)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const auto v =
            static_cast<std::uint32_t>(rng.below(1u << 21));
        EXPECT_EQ(morton::compactBits3(morton::expandBits3(v)), v);
    }
}

TEST(Morton, ExpandCompact2RoundTrip)
{
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const auto v =
            static_cast<std::uint32_t>(rng.below(1u << 31));
        EXPECT_EQ(morton::compactBits2(morton::expandBits2(v)), v);
    }
}

TEST(Morton, Encode3KnownValues)
{
    // Depth 1: code groups are (x,y,z).
    EXPECT_EQ(morton::encode3(0, 0, 0, 1), 0u);
    EXPECT_EQ(morton::encode3(1, 0, 0, 1), 4u); // X is the high bit
    EXPECT_EQ(morton::encode3(0, 1, 0, 1), 2u);
    EXPECT_EQ(morton::encode3(0, 0, 1, 1), 1u);
    EXPECT_EQ(morton::encode3(1, 1, 1, 1), 7u);
}

TEST(Morton, Encode2MatchesPaperConvention)
{
    // Fig. 5: bottom-left 00, top-left 01, bottom-right 10,
    // top-right 11 (first bit X, second Y).
    EXPECT_EQ(morton::encode2(0, 0, 1), 0b00u);
    EXPECT_EQ(morton::encode2(0, 1, 1), 0b01u);
    EXPECT_EQ(morton::encode2(1, 0, 1), 0b10u);
    EXPECT_EQ(morton::encode2(1, 1, 1), 0b11u);
}

class MortonDepthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MortonDepthTest, Encode3Decode3RoundTrip)
{
    const int depth = GetParam();
    Rng rng(100 + depth);
    const std::uint32_t cells = 1u << depth;
    for (int i = 0; i < 100; ++i) {
        const auto x = static_cast<std::uint32_t>(rng.below(cells));
        const auto y = static_cast<std::uint32_t>(rng.below(cells));
        const auto z = static_cast<std::uint32_t>(rng.below(cells));
        const morton::Code code = morton::encode3(x, y, z, depth);
        std::uint32_t rx, ry, rz;
        morton::decode3(code, depth, rx, ry, rz);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
        EXPECT_EQ(rz, z);
    }
}

TEST_P(MortonDepthTest, CodeFitsBitBudget)
{
    const int depth = GetParam();
    const std::uint32_t max_cell = (1u << depth) - 1;
    const morton::Code code =
        morton::encode3(max_cell, max_cell, max_cell, depth);
    EXPECT_LT(code, 1ull << (3 * depth));
    EXPECT_EQ(code, (1ull << (3 * depth)) - 1);
}

TEST_P(MortonDepthTest, ParentChildInverse)
{
    const int depth = GetParam();
    Rng rng(200 + depth);
    const std::uint32_t cells = 1u << depth;
    for (int i = 0; i < 50; ++i) {
        const morton::Code code = morton::encode3(
            static_cast<std::uint32_t>(rng.below(cells)),
            static_cast<std::uint32_t>(rng.below(cells)),
            static_cast<std::uint32_t>(rng.below(cells)), depth);
        const unsigned oct = morton::octant3(code);
        EXPECT_EQ(morton::child3(morton::parent3(code), oct), code);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, MortonDepthTest,
                         ::testing::Values(1, 2, 4, 8, 16, 21));

TEST(Morton, AncestorAtTruncatesGroups)
{
    const morton::Code code = morton::encode3(5, 3, 6, 3);
    EXPECT_EQ(morton::ancestorAt(code, 3, 3), code);
    EXPECT_EQ(morton::ancestorAt(code, 3, 2), code >> 3);
    EXPECT_EQ(morton::ancestorAt(code, 3, 1), code >> 6);
    EXPECT_EQ(morton::ancestorAt(code, 3, 0), 0u);
}

TEST(Morton, HammingDistanceViaXorPopcount)
{
    EXPECT_EQ(morton::hamming(0b000, 0b111), 3);
    EXPECT_EQ(morton::hamming(0b101, 0b101), 0);
    EXPECT_EQ(morton::hamming(0b100, 0b001), 2);
}

TEST(Morton, SfcOrderPreservesLocality)
{
    // Points in the same octant share the leading 3-bit group, so
    // their codes are closer than codes across octants.
    const morton::Code a = morton::encode3(0, 0, 0, 4);
    const morton::Code b = morton::encode3(1, 1, 1, 4);
    const morton::Code c = morton::encode3(15, 15, 15, 4);
    EXPECT_LT(a ^ b, a ^ c);
}

// ---------------------------------------------------- cell/voxel maps

TEST(Morton, CellOfClampsToGrid)
{
    const Aabb root({0, 0, 0}, {1, 1, 1});
    std::uint32_t x, y, z;
    morton::cellOf({1.0f, 1.0f, 1.0f}, root, 3, x, y, z);
    EXPECT_EQ(x, 7u);
    EXPECT_EQ(y, 7u);
    EXPECT_EQ(z, 7u);
    morton::cellOf({0.0f, 0.0f, 0.0f}, root, 3, x, y, z);
    EXPECT_EQ(x, 0u);
}

TEST(Morton, PointCodeConsistentWithCellOf)
{
    const Aabb root({0, 0, 0}, {2, 2, 2});
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        const Vec3 p{rng.uniform(0.0f, 2.0f), rng.uniform(0.0f, 2.0f),
                     rng.uniform(0.0f, 2.0f)};
        std::uint32_t x, y, z;
        morton::cellOf(p, root, 5, x, y, z);
        EXPECT_EQ(morton::pointCode3(p, root, 5),
                  morton::encode3(x, y, z, 5));
    }
}

TEST(Morton, VoxelCenterInsideVoxelBounds)
{
    const Aabb root({-1, -1, -1}, {1, 1, 1});
    Rng rng(37);
    for (int i = 0; i < 50; ++i) {
        const int level = 1 + static_cast<int>(rng.below(6));
        const std::uint32_t cells = 1u << level;
        const morton::Code code = morton::encode3(
            static_cast<std::uint32_t>(rng.below(cells)),
            static_cast<std::uint32_t>(rng.below(cells)),
            static_cast<std::uint32_t>(rng.below(cells)), level);
        const Aabb bounds = morton::voxelBounds(code, level, root);
        EXPECT_TRUE(bounds.contains(
            morton::voxelCenter(code, level, root)));
    }
}

TEST(Morton, VoxelSizeHalvesPerLevel)
{
    const Aabb root({0, 0, 0}, {8, 8, 8});
    EXPECT_FLOAT_EQ(morton::voxelSize(0, root), 8.0f);
    EXPECT_FLOAT_EQ(morton::voxelSize(1, root), 4.0f);
    EXPECT_FLOAT_EQ(morton::voxelSize(3, root), 1.0f);
}

TEST(Morton, PointRoundTripsThroughVoxelBounds)
{
    const Aabb root = Aabb({0, 0, 0}, {1, 1, 1}).cubified();
    Rng rng(41);
    const int depth = 6;
    for (int i = 0; i < 100; ++i) {
        const Vec3 p{rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                     rng.uniform(0.0f, 1.0f)};
        const morton::Code code = morton::pointCode3(p, root, depth);
        EXPECT_TRUE(morton::voxelBounds(code, depth, root).contains(p))
            << "point escaped its voxel";
    }
}

TEST(Morton, CodeBitsRendersBinaryDigits)
{
    EXPECT_EQ(morton::codeBits(0b1101, 2, 2), 1101u);
    EXPECT_EQ(morton::codeBits(0b000111, 2, 3), 111u);
}

// ------------------------------------------------------- PointCloud

TEST(PointCloud, AddAndQueryPoints)
{
    PointCloud cloud;
    cloud.add({1, 2, 3});
    cloud.add({4, 5, 6});
    EXPECT_EQ(cloud.size(), 2u);
    EXPECT_EQ(cloud.position(1), Vec3(4, 5, 6));
}

TEST(PointCloud, FeaturesStoredPerPoint)
{
    PointCloud cloud(2);
    const float f0[] = {0.5f, -1.0f};
    const float f1[] = {2.0f, 3.0f};
    cloud.add({0, 0, 0}, f0);
    cloud.add({1, 1, 1}, f1);
    EXPECT_EQ(cloud.featureDim(), 2u);
    EXPECT_FLOAT_EQ(cloud.feature(0)[1], -1.0f);
    EXPECT_FLOAT_EQ(cloud.feature(1)[0], 2.0f);
}

TEST(PointCloud, AddWithoutFeaturesZeroFills)
{
    PointCloud cloud(3);
    cloud.add({0, 0, 0});
    for (float v : cloud.feature(0))
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(PointCloud, BoundsCoverAllPoints)
{
    PointCloud cloud;
    Rng rng(51);
    for (int i = 0; i < 100; ++i) {
        cloud.add({rng.uniform(-5.0f, 5.0f), rng.uniform(-5.0f, 5.0f),
                   rng.uniform(-5.0f, 5.0f)});
    }
    const Aabb box = cloud.bounds();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        EXPECT_TRUE(
            box.contains(cloud.position(static_cast<PointIndex>(i))));
    }
}

TEST(PointCloud, NormalizeToUnitCube)
{
    PointCloud cloud;
    cloud.add({10, 20, 30});
    cloud.add({14, 26, 30});
    cloud.add({12, 23, 33});
    cloud.normalizeToUnitCube();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3 &p = cloud.position(static_cast<PointIndex>(i));
        EXPECT_GE(p.x, 0.0f);
        EXPECT_LE(p.x, 1.0f);
        EXPECT_GE(p.y, 0.0f);
        EXPECT_LE(p.y, 1.0f);
        EXPECT_GE(p.z, 0.0f);
        EXPECT_LE(p.z, 1.0f);
    }
}

TEST(PointCloud, NormalizePreservesRelativeDistances)
{
    PointCloud cloud;
    cloud.add({0, 0, 0});
    cloud.add({2, 0, 0});
    cloud.add({4, 0, 0});
    cloud.normalizeToUnitCube();
    const float d01 = cloud.position(0).dist(cloud.position(1));
    const float d12 = cloud.position(1).dist(cloud.position(2));
    EXPECT_NEAR(d01, d12, 1e-5f);
}

TEST(PointCloud, GatherSelectsInOrder)
{
    PointCloud cloud(1);
    for (int i = 0; i < 5; ++i) {
        const float f = static_cast<float>(i);
        const float feat[] = {f * 10};
        cloud.add({f, 0, 0}, feat);
    }
    const PointIndex idx[] = {3, 1, 4};
    const PointCloud sub = cloud.gather(idx);
    EXPECT_EQ(sub.size(), 3u);
    EXPECT_FLOAT_EQ(sub.position(0).x, 3.0f);
    EXPECT_FLOAT_EQ(sub.position(1).x, 1.0f);
    EXPECT_FLOAT_EQ(sub.feature(2)[0], 40.0f);
}

TEST(PointCloud, ReorderedIsPermutation)
{
    PointCloud cloud;
    for (int i = 0; i < 8; ++i)
        cloud.add({static_cast<float>(i), 0, 0});
    const PointIndex perm[] = {7, 6, 5, 4, 3, 2, 1, 0};
    const PointCloud rev = cloud.reordered(perm);
    EXPECT_EQ(rev.size(), cloud.size());
    for (int i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(rev.position(i).x, 7.0f - i);
}

} // namespace
} // namespace hgpcn
