/**
 * @file
 * Tests for the PointACC and Mesorasi baseline accelerator models.
 */

#include <gtest/gtest.h>

#include "baselines/mesorasi.h"
#include "baselines/point_acc.h"
#include "sim/fcu_dla.h"

namespace hgpcn
{
namespace
{

ExecutionTrace
bruteTrace(std::uint64_t centroids, std::uint64_t k,
           std::uint64_t input_points)
{
    ExecutionTrace trace;
    GatherOp op;
    op.layer = "sa0";
    op.method = "KNN-brute";
    op.centroids = centroids;
    op.k = k;
    op.inputPoints = input_points;
    op.stats.set("gather.distance_computations",
                 centroids * input_points);
    op.stats.set("gather.sort_candidates", centroids * input_points);
    trace.gathers.push_back(op);
    trace.gemms.push_back(
        {"sa0.fc0", centroids * k, 3 + 64, 64});
    return trace;
}

// -------------------------------------------------------- PointACC

TEST(PointAcc, MappingScalesWithInputSize)
{
    const PointAccSim sim(SimConfig::defaults());
    const auto small = sim.run(bruteTrace(512, 32, 1024));
    const auto large = sim.run(bruteTrace(512, 32, 16384));
    EXPECT_GT(large.mappingSec, small.mappingSec);
}

TEST(PointAcc, SortCandidatesAreFullRange)
{
    const PointAccSim sim(SimConfig::defaults());
    const auto result = sim.run(bruteTrace(512, 32, 4096));
    EXPECT_EQ(result.sortCandidates, 512u * 4096u);
}

TEST(PointAcc, TotalIsOverlapMax)
{
    const PointAccSim sim(SimConfig::defaults());
    const auto result = sim.run(bruteTrace(512, 32, 4096));
    EXPECT_DOUBLE_EQ(result.totalSec(),
                     std::max(result.mappingSec, result.fcSec));
}

TEST(PointAcc, FcMatchesSharedFcuModel)
{
    const SimConfig cfg = SimConfig::defaults();
    const PointAccSim sim(cfg);
    const auto trace = bruteTrace(256, 16, 2048);
    const auto result = sim.run(trace);
    EXPECT_DOUBLE_EQ(result.fcSec, FcuSim(cfg).run(trace).totalSec());
}

// -------------------------------------------------------- Mesorasi

TEST(Mesorasi, DsRunsOnGpuModel)
{
    const MesorasiSim sim(SimConfig::defaults());
    const auto trace = bruteTrace(512, 32, 4096);
    const auto result = sim.run(trace);
    const DeviceModel gpu(DeviceModel::tx2MobileGpu());
    EXPECT_DOUBLE_EQ(result.dsSec, gpu.dsSec(trace));
}

TEST(Mesorasi, DelayedAggregationShrinksFc)
{
    const SimConfig cfg = SimConfig::defaults();
    const MesorasiSim sim(cfg);
    const auto trace = bruteTrace(512, 32, 1024);
    const auto result = sim.run(trace);
    // Grouped rows = 512*32 = 16k but unique inputs = 1024: the
    // delayed-aggregation FC must be far below the grouped FC.
    const double grouped_fc = FcuSim(cfg).run(trace).totalSec();
    EXPECT_LT(result.fcSec, grouped_fc);
}

TEST(Mesorasi, DsDominatesTotal)
{
    // Paper Section VII-D: "the inference speed is still largely
    // limited by the latency of the data structuring step".
    const MesorasiSim sim(SimConfig::defaults());
    const auto result = sim.run(bruteTrace(1024, 32, 4096));
    EXPECT_DOUBLE_EQ(result.totalSec(), result.dsSec);
    EXPECT_GT(result.dsSec, result.fcSec);
}

TEST(Mesorasi, NonSaLayersNotScaled)
{
    const SimConfig cfg = SimConfig::defaults();
    const MesorasiSim sim(cfg);
    ExecutionTrace trace;
    trace.gemms.push_back({"head.fc0", 1024, 128, 64});
    const auto result = sim.run(trace);
    EXPECT_DOUBLE_EQ(result.fcSec, FcuSim(cfg).run(trace).totalSec());
}

} // namespace
} // namespace hgpcn
