/**
 * @file
 * Temporal-coherence preprocessing tests: the bottom-up Morton
 * octree builder against the recursive oracle, the incremental
 * cross-frame builder against from-scratch builds, the cached KNN /
 * occupancy indices against fresh oracles, and the pooled
 * TemporalPreprocessState against the carry-less engine path. Every
 * comparison is bit-identical full-state equality — the caches are
 * wall-clock optimizations and must never move an output bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "core/frame_workspace.h"
#include "core/preprocessing_engine.h"
#include "core/temporal_preprocess.h"
#include "datasets/coherent_drive.h"
#include "geometry/point_delta.h"
#include "knn/spatial_hash_knn.h"
#include "octree/incremental_octree.h"
#include "octree/octree.h"
#include "octree/voxel_grid.h"

namespace hgpcn
{
namespace
{

Octree::Config
octreeConfig(int depth, std::uint32_t leaf_capacity)
{
    Octree::Config cfg;
    cfg.maxDepth = depth;
    cfg.leafCapacity = leaf_capacity;
    return cfg;
}

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

bool
sameVec3(const Vec3 &a, const Vec3 &b)
{
    return std::memcmp(&a.x, &b.x, sizeof(float)) == 0 &&
           std::memcmp(&a.y, &b.y, sizeof(float)) == 0 &&
           std::memcmp(&a.z, &b.z, sizeof(float)) == 0;
}

/** Full-state bitwise equality of two octrees over the same frame. */
void
expectTreesIdentical(const Octree &a, const Octree &b)
{
    a.validate();
    b.validate();
    ASSERT_EQ(a.nodes().size(), b.nodes().size());
    ASSERT_EQ(a.pointCodes().size(), b.pointCodes().size());
    EXPECT_EQ(a.depth(), b.depth());
    EXPECT_EQ(a.leafCount(), b.leafCount());
    EXPECT_TRUE(sameVec3(a.rootBounds().lo, b.rootBounds().lo));
    EXPECT_TRUE(sameVec3(a.rootBounds().hi, b.rootBounds().hi));
    for (std::size_t i = 0; i < a.nodes().size(); ++i) {
        const OctreeNode &na = a.nodes()[i];
        const OctreeNode &nb = b.nodes()[i];
        ASSERT_EQ(na.code, nb.code) << "node " << i;
        ASSERT_EQ(na.level, nb.level) << "node " << i;
        ASSERT_EQ(na.childMask, nb.childMask) << "node " << i;
        ASSERT_EQ(na.firstChild, nb.firstChild) << "node " << i;
        ASSERT_EQ(na.parent, nb.parent) << "node " << i;
        ASSERT_EQ(na.pointBegin, nb.pointBegin) << "node " << i;
        ASSERT_EQ(na.pointEnd, nb.pointEnd) << "node " << i;
    }
    for (std::size_t i = 0; i < a.pointCodes().size(); ++i) {
        ASSERT_EQ(a.pointCodes()[i], b.pointCodes()[i]) << "point " << i;
        ASSERT_EQ(a.permutation()[i], b.permutation()[i])
            << "point " << i;
        ASSERT_EQ(a.leafOf(static_cast<PointIndex>(i)),
                  b.leafOf(static_cast<PointIndex>(i)))
            << "point " << i;
        ASSERT_TRUE(sameVec3(
            a.reorderedCloud().position(static_cast<PointIndex>(i)),
            b.reorderedCloud().position(static_cast<PointIndex>(i))))
            << "point " << i;
    }
    // The modeled paper numbers come from these counters — the
    // incremental path must charge the from-scratch workload.
    EXPECT_EQ(a.buildStats().get("octree.host_reads"),
              b.buildStats().get("octree.host_reads"));
    EXPECT_EQ(a.buildStats().get("octree.code_computations"),
              b.buildStats().get("octree.code_computations"));
    EXPECT_EQ(a.buildStats().get("octree.sort_ops"),
              b.buildStats().get("octree.sort_ops"));
    EXPECT_EQ(a.buildStats().get("octree.host_writes"),
              b.buildStats().get("octree.host_writes"));
}

// ----------------------------------------- bottom-up builder oracle

TEST(BottomUpBuild, MatchesRecursiveBuilderAcrossShapes)
{
    const std::size_t sizes[] = {1, 2, 7, 64, 500, 3000};
    for (std::size_t n : sizes) {
        for (int depth : {2, 6, 12}) {
            const PointCloud cloud = randomCloud(n, 17 * n + depth);
            Octree::Config up = octreeConfig(depth, 8);
            Octree::Config down = up;
            up.bottomUpBuild = true;
            down.bottomUpBuild = false;
            expectTreesIdentical(Octree::build(cloud, up),
                                 Octree::build(cloud, down));
        }
    }
}

TEST(BottomUpBuild, MatchesRecursiveOnCoincidentPoints)
{
    // All duplicates collapse to one full-depth code: the deepest
    // run is a leaf regardless of leafCapacity.
    PointCloud cloud;
    for (int i = 0; i < 100; ++i)
        cloud.add({0.25f, 0.5f, 0.75f});
    // A second pile plus singles: runs of every shape.
    for (int i = 0; i < 40; ++i)
        cloud.add({0.8f, 0.8f, 0.8f});
    Rng rng(3);
    for (int i = 0; i < 30; ++i)
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    Octree::Config up = octreeConfig(6, 4);
    Octree::Config down = up;
    up.bottomUpBuild = true;
    down.bottomUpBuild = false;
    expectTreesIdentical(Octree::build(cloud, up),
                         Octree::build(cloud, down));
}

TEST(BottomUpBuild, RebuildReusesStorageWithIdenticalOutput)
{
    const PointCloud big = randomCloud(2000, 5);
    const PointCloud small = randomCloud(300, 6);
    Octree pooled;
    pooled.rebuild(big, octreeConfig(8, 8));
    pooled.rebuild(small, octreeConfig(8, 8));
    expectTreesIdentical(pooled,
                         Octree::build(small, octreeConfig(8, 8)));
}

// ------------------------------------------- incremental vs scratch

/** Overlap sweep: 100% / ~90% / 50% / 25% / 0% retained points. */
class IncrementalOverlapSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(IncrementalOverlapSweep, BitIdenticalToScratchAlongDrive)
{
    CoherentDrive::Config dc;
    dc.points = 1500;
    dc.churnFraction = GetParam();
    dc.seed = 11;
    const CoherentDrive drive(dc);
    const Octree::Config ocfg = octreeConfig(10, 8);

    Octree carried;
    carried.rebuild(drive.generate(0).cloud, ocfg);
    IncrementalOctreeBuilder builder;
    for (std::size_t t = 1; t <= 5; ++t) {
        const Frame frame = drive.generate(t);
        Octree next;
        const bool incremental =
            builder.update(frame.cloud, &carried, ocfg, next);
        // The drive pins the frame AABB, so the alignment guard
        // always passes and the incremental path engages.
        EXPECT_TRUE(incremental) << "frame " << t;
        expectTreesIdentical(next, Octree::build(frame.cloud, ocfg));
        if (incremental) {
            const PointDelta &delta = builder.delta();
            const double expected =
                drive.overlapFraction(1) *
                static_cast<double>(dc.points);
            EXPECT_EQ(delta.retained(),
                      static_cast<std::size_t>(expected + 0.5))
                << "frame " << t;
        }
        carried = std::move(next);
    }
}

INSTANTIATE_TEST_SUITE_P(Churn, IncrementalOverlapSweep,
                         ::testing::Values(0.0, 0.1, 0.5, 0.75, 1.0));

TEST(IncrementalOctree, HandlesCoincidentPointsAcrossFrames)
{
    // Duplicate positions stress the bit-pattern matcher: equal
    // codes, equal bytes, ambiguous pairings. Any pairing is
    // acceptable as long as the output is bit-identical to scratch.
    PointCloud a;
    for (int i = 0; i < 50; ++i)
        a.add({0.3f, 0.3f, 0.3f});
    a.add({0.0f, 0.0f, 0.0f});
    a.add({1.0f, 1.0f, 1.0f});
    PointCloud b = a; // 100% overlap, duplicates intact
    const Octree::Config ocfg = octreeConfig(6, 4);
    Octree prev;
    prev.rebuild(a, ocfg);
    IncrementalOctreeBuilder builder;
    Octree next;
    builder.update(b, &prev, ocfg, next);
    expectTreesIdentical(next, Octree::build(b, ocfg));
}

TEST(IncrementalOctree, ReorderedRetainedPointsStayCorrect)
{
    // Retained points arriving in a different input order violate
    // the builder's order precondition; it must fall back to a
    // scratch rebuild (not produce a wrong tree).
    PointCloud a = randomCloud(400, 21);
    PointCloud b;
    b.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        b.add(a.position(
            static_cast<PointIndex>(a.size() - 1 - i)));
    }
    const Octree::Config ocfg = octreeConfig(8, 8);
    Octree prev;
    prev.rebuild(a, ocfg);
    IncrementalOctreeBuilder builder;
    Octree next;
    builder.update(b, &prev, ocfg, next);
    expectTreesIdentical(next, Octree::build(b, ocfg));
}

TEST(IncrementalOctree, ConfigChangeFallsBackToScratch)
{
    const PointCloud cloud = randomCloud(600, 8);
    Octree prev;
    prev.rebuild(cloud, octreeConfig(8, 8));
    IncrementalOctreeBuilder builder;
    Octree next;
    const bool incremental =
        builder.update(cloud, &prev, octreeConfig(6, 8), next);
    EXPECT_FALSE(incremental);
    expectTreesIdentical(next,
                         Octree::build(cloud, octreeConfig(6, 8)));
}

// ----------------------------------------- cached KNN / occupancy

void
expectGatherIdentical(const GatherResult &a, const GatherResult &b)
{
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    EXPECT_EQ(a.neighbors, b.neighbors);
}

TEST(CachedIndices, IncrementalKnnMatchesFreshOracle)
{
    CoherentDrive::Config dc;
    dc.points = 2000;
    dc.churnFraction = 0.05;
    dc.seed = 31;
    const CoherentDrive drive(dc);
    const Octree::Config ocfg = octreeConfig(10, 8);
    const SpatialHashKnn::Config kcfg;

    Octree prev;
    prev.rebuild(drive.generate(0).cloud, ocfg);
    SpatialHashKnn prev_knn;
    prev_knn.rebuild(prev.reorderedCloud().positions(), kcfg);

    IncrementalOctreeBuilder builder;
    const Frame f1 = drive.generate(1);
    Octree next;
    ASSERT_TRUE(builder.update(f1.cloud, &prev, ocfg, next));

    SpatialHashKnn inc;
    ASSERT_TRUE(inc.rebuildFrom(prev_knn,
                                next.reorderedCloud().positions(),
                                builder.delta()));
    SpatialHashKnn fresh;
    fresh.rebuild(next.reorderedCloud().positions(), kcfg);

    std::vector<PointIndex> centrals;
    for (PointIndex i = 0; i < dc.points;
         i += static_cast<PointIndex>(37))
        centrals.push_back(i);
    for (std::size_t k : {1u, 8u, 33u}) {
        expectGatherIdentical(inc.gather(centrals, k),
                              fresh.gather(centrals, k));
    }
    const PointCloud queries = randomCloud(64, 77);
    expectGatherIdentical(inc.gatherAt(queries.positions(), 16),
                          fresh.gatherAt(queries.positions(), 16));
}

TEST(CachedIndices, PatchedOccupancyMatchesFreshOracle)
{
    CoherentDrive::Config dc;
    dc.points = 1800;
    dc.churnFraction = 0.08;
    dc.seed = 41;
    const CoherentDrive drive(dc);
    const Octree::Config ocfg = octreeConfig(10, 8);

    Octree prev;
    prev.rebuild(drive.generate(0).cloud, ocfg);
    IncrementalOctreeBuilder builder;
    const Frame f1 = drive.generate(1);
    Octree next;
    ASSERT_TRUE(builder.update(f1.cloud, &prev, ocfg, next));

    for (int level = 1; level <= std::min(4, next.depth()); ++level) {
        std::vector<OccupiedCell> prev_occ;
        buildOccupiedCells(prev, level, prev_occ);
        std::vector<OccupiedCell> patched;
        ASSERT_TRUE(patchOccupiedCells(next, level, prev, prev_occ,
                                       builder.delta(), patched))
            << "level " << level;
        std::vector<OccupiedCell> fresh;
        buildOccupiedCells(next, level, fresh);
        ASSERT_EQ(patched.size(), fresh.size()) << "level " << level;
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            EXPECT_EQ(patched[i].cell, fresh[i].cell)
                << "level " << level << " cell " << i;
            EXPECT_EQ(patched[i].first, fresh[i].first)
                << "level " << level << " cell " << i;
            EXPECT_EQ(patched[i].last, fresh[i].last)
                << "level " << level << " cell " << i;
        }
    }
}

// ------------------------------------------- carried state / pool

TEST(TemporalState, CarriedFramesMatchCarrylessEngine)
{
    CoherentDrive::Config dc;
    dc.points = 1200;
    dc.churnFraction = 0.1;
    dc.seed = 51;
    const CoherentDrive drive(dc);

    PreprocessingEngine::Config ec;
    ec.octree = octreeConfig(10, 16);
    const PreprocessingEngine engine(ec);

    TemporalPreprocessState::Config tc;
    tc.octree = ec.octree;
    TemporalPreprocessState carry(tc);

    const std::size_t k = 256;
    for (std::size_t t = 0; t < 4; ++t) {
        const Frame frame = drive.generate(t);
        PreprocessResult cached = engine.buildStage(frame.cloud, &carry);
        PreprocessResult scratch = engine.buildStage(frame.cloud);
        expectTreesIdentical(*cached.tree, *scratch.tree);
        EXPECT_EQ(cached.octreeTableBytes, scratch.octreeTableBytes);
        EXPECT_EQ(cached.octreeBuildSec, scratch.octreeBuildSec);

        engine.sampleStage(cached, k);
        engine.sampleStage(scratch, k);
        EXPECT_EQ(cached.spt, scratch.spt);
        ASSERT_EQ(cached.sampled.size(), scratch.sampled.size());
        for (PointIndex i = 0; i < cached.sampled.size(); ++i) {
            EXPECT_TRUE(sameVec3(cached.sampled.position(i),
                                 scratch.sampled.position(i)));
        }
        EXPECT_EQ(cached.dsu.totalSec(), scratch.dsu.totalSec());
    }
    const TemporalPreprocessState::Stats st = carry.stats();
    EXPECT_EQ(st.frames, 4u);
    EXPECT_EQ(st.octreeMisses, 1u); // only the cold first frame
    EXPECT_EQ(st.octreeHits, 3u);
    EXPECT_EQ(st.knnIncremental + st.knnScratch, 4u);
    EXPECT_EQ(st.occIncremental + st.occScratch, 4u);
}

TEST(TemporalState, CachedIndicesExposedAndCorrect)
{
    CoherentDrive::Config dc;
    dc.points = 1500;
    dc.churnFraction = 0.05;
    dc.seed = 61;
    const CoherentDrive drive(dc);

    PreprocessingEngine::Config ec;
    ec.octree = octreeConfig(10, 16);
    const PreprocessingEngine engine(ec);
    TemporalPreprocessState::Config tc;
    tc.octree = ec.octree;
    TemporalPreprocessState carry(tc);

    engine.buildStage(drive.generate(0).cloud, &carry);
    const PreprocessResult r1 =
        engine.buildStage(drive.generate(1).cloud, &carry);
    ASSERT_NE(r1.rawKnn, nullptr);
    ASSERT_NE(r1.rawOcc, nullptr);
    ASSERT_GE(r1.rawOccLevel, 0);

    SpatialHashKnn oracle;
    oracle.rebuild(r1.tree->reorderedCloud().positions(),
                   SpatialHashKnn::Config{});
    const PointCloud queries = randomCloud(32, 9);
    expectGatherIdentical(r1.rawKnn->gatherAt(queries.positions(), 8),
                          oracle.gatherAt(queries.positions(), 8));

    std::vector<OccupiedCell> fresh;
    buildOccupiedCells(*r1.tree, r1.rawOccLevel, fresh);
    ASSERT_EQ(r1.rawOcc->size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ((*r1.rawOcc)[i].cell, fresh[i].cell);
        EXPECT_EQ((*r1.rawOcc)[i].first, fresh[i].first);
        EXPECT_EQ((*r1.rawOcc)[i].last, fresh[i].last);
    }

    // The VoxelGrid borrowed-list constructor serves the cached
    // list through the normal accessor.
    const VoxelGrid grid(*r1.tree, r1.rawOccLevel, r1.rawOcc.get());
    EXPECT_EQ(grid.occupiedCells().size(), fresh.size());
}

TEST(TemporalState, SteadyStateLeasesDoNotGrowArenas)
{
    CoherentDrive::Config dc;
    dc.points = 1000;
    dc.churnFraction = 0.1;
    dc.seed = 71;
    const CoherentDrive drive(dc);
    TemporalPreprocessState::Config tc;
    tc.octree = octreeConfig(10, 16);
    TemporalPreprocessState carry(tc);

    // Warm-up: two bundles (current + carried prev) plus the
    // builder scratch size themselves. Node counts fluctuate with
    // churn, so give each pooled bundle a few frames to reach its
    // high-water capacity (vector doubling converges fast).
    for (std::size_t t = 0; t < 6; ++t)
        carry.processFrame(drive.generate(t).cloud);
    const std::uint64_t warm = FrameWorkspace::backingGrowths();
    for (std::size_t t = 6; t < 14; ++t)
        carry.processFrame(drive.generate(t).cloud);
    EXPECT_EQ(FrameWorkspace::backingGrowths(), warm)
        << "steady-state temporal frames grew an arena";
}

TEST(TemporalState, BundlesOutliveTheState)
{
    CoherentDrive::Config dc;
    dc.points = 900;
    dc.churnFraction = 0.1;
    dc.seed = 81;
    const CoherentDrive drive(dc);
    std::shared_ptr<PreprocessBundle> bundle;
    {
        TemporalPreprocessState::Config tc;
        tc.octree = octreeConfig(8, 16);
        TemporalPreprocessState carry(tc);
        bundle = carry.processFrame(drive.generate(0).cloud);
    }
    // The pool is kept alive by the lease's deleter; the tree is
    // still a valid octree over the frame.
    bundle->tree.validate();
    EXPECT_EQ(bundle->tree.pointCodes().size(), dc.points);
}

TEST(TemporalState, ResetForcesScratchRebuild)
{
    CoherentDrive::Config dc;
    dc.points = 800;
    dc.churnFraction = 0.05;
    dc.seed = 91;
    const CoherentDrive drive(dc);
    TemporalPreprocessState::Config tc;
    tc.octree = octreeConfig(8, 16);
    TemporalPreprocessState carry(tc);
    carry.processFrame(drive.generate(0).cloud);
    carry.processFrame(drive.generate(1).cloud);
    carry.reset();
    carry.processFrame(drive.generate(2).cloud);
    const TemporalPreprocessState::Stats st = carry.stats();
    EXPECT_EQ(st.octreeMisses, 2u); // frame 0 and the post-reset frame
    EXPECT_EQ(st.octreeHits, 1u);
}

// -------------------------------------------------- edge conditions

TEST(IncrementalOctree, TinyFramesStillBitIdentical)
{
    // Below every brute threshold: 9 points (8 anchors + 1).
    CoherentDrive::Config dc;
    dc.points = 9;
    dc.churnFraction = 1.0;
    dc.seed = 13;
    const CoherentDrive drive(dc);
    const Octree::Config ocfg = octreeConfig(4, 2);
    Octree prev;
    prev.rebuild(drive.generate(0).cloud, ocfg);
    IncrementalOctreeBuilder builder;
    for (std::size_t t = 1; t <= 3; ++t) {
        const Frame frame = drive.generate(t);
        Octree next;
        builder.update(frame.cloud, &prev, ocfg, next);
        expectTreesIdentical(next, Octree::build(frame.cloud, ocfg));
        prev = std::move(next);
    }
}

} // namespace
} // namespace hgpcn
