/**
 * @file
 * Tests for the execution-backend subsystem (src/backends): the
 * registry, the four built-in backends against the engines/batch
 * models they lift, the cost-model service estimate, the
 * backend-parameterized StreamRunner and heterogeneous ShardedRunner
 * fleets with per-backend report attribution. The fleet cases run
 * under ThreadSanitizer and AddressSanitizer in CI
 * (.github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "backends/backend_registry.h"
#include "backends/cpu_brute_backend.h"
#include "backends/hgpcn_backend.h"
#include "backends/mesorasi_backend.h"
#include "backends/point_acc_backend.h"
#include "baselines/mesorasi.h"
#include "baselines/point_acc.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "serving/placement.h"
#include "serving/sharded_runner.h"
#include "sim/device_model.h"

namespace hgpcn
{
namespace
{

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

/** Small multi-LiDAR stream (tiny frames for test speed). */
SensorStream
tinyLidarStream(std::size_t sensors, std::size_t frames_per_sensor,
                double rate_hz = 10.0)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 250;
    cfg.lidar.frameRateHz = rate_hz;
    return makeLidarSensorStream(cfg);
}

/** The brute-force functional run the baseline models time. */
RunOutput
bruteRun(const PointNet2 &net, const PointCloud &input,
         const InferenceEngine::Config &cfg)
{
    RunOptions opts;
    opts.ds = DsMethod::BruteKnn;
    opts.centroid = cfg.centroid;
    opts.seed = cfg.seed;
    return net.run(input, opts);
}

// ---------------------------------------------------------- Registry

TEST(BackendRegistry, ListsTheFourBuiltins)
{
    const std::vector<std::string> names =
        BackendRegistry::instance().names();
    for (const char *builtin :
         {"cpu-brute", "hgpcn", "mesorasi", "pointacc"}) {
        EXPECT_TRUE(BackendRegistry::instance().contains(builtin))
            << builtin;
        EXPECT_NE(std::find(names.begin(), names.end(), builtin),
                  names.end())
            << builtin;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, CreateBindsTheNamedBackend)
{
    const PointNet2 net(tinyClassifier());
    const InferenceEngine::Config cfg;
    for (const char *name :
         {"hgpcn", "mesorasi", "pointacc", "cpu-brute"}) {
        const auto backend = makeBackend(name, cfg, net);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), name);
        EXPECT_EQ(&backend->model(), &net);
    }
}

TEST(BackendRegistry, UnknownBackendIsFatalAndListsKnown)
{
    const PointNet2 net(tinyClassifier());
    EXPECT_EXIT(makeBackend("tpu", InferenceEngine::Config{}, net),
                ::testing::ExitedWithCode(1),
                "unknown execution backend 'tpu'.*hgpcn");
}

TEST(BackendRegistry, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(BackendRegistry::instance().registerFactory(
                    "hgpcn",
                    [](const InferenceEngine::Config &,
                       const PointNet2 &)
                        -> std::unique_ptr<ExecutionBackend> {
                        return nullptr;
                    }),
                ::testing::ExitedWithCode(1),
                "already registered");
}

TEST(BackendRegistry, CustomBackendRoundTrips)
{
    /** Fixed-latency stub: custom accelerator models plug in
     * without touching the library. */
    class StubBackend : public ExecutionBackend
    {
      public:
        explicit StubBackend(const PointNet2 &net) : net_(net) {}
        const std::string &name() const override { return nm; }
        const std::string &resource() const override { return res; }
        BackendInference
        infer(const PointCloud &, FrameWorkspace *) const override
        {
            BackendInference out;
            out.backend = nm;
            out.dsSec = 1e-3;
            out.fcSec = 2e-3;
            out.dsFcOverlap = false;
            return out;
        }
        const PointNet2 &model() const override { return net_; }

      private:
        const PointNet2 &net_;
        std::string nm = "stub-test";
        std::string res = "stub";
    };

    BackendRegistry::instance().registerFactory(
        "stub-test",
        [](const InferenceEngine::Config &, const PointNet2 &net) {
            return std::make_unique<StubBackend>(net);
        });
    const PointNet2 net(tinyClassifier());
    const auto backend =
        makeBackend("stub-test", InferenceEngine::Config{}, net);
    EXPECT_EQ(backend->name(), "stub-test");
    const BackendInference run = backend->infer(PointCloud{});
    EXPECT_DOUBLE_EQ(run.totalSec(), 3e-3); // serial: ds + fc
    EXPECT_DOUBLE_EQ(backend->estimateServiceSec(), 3e-3);
}

// ---------------------------------------------- Backends vs models

TEST(HgpcnBackend, MatchesInferenceEngineBitForBit)
{
    const PointNet2 net(tinyClassifier());
    const InferenceEngine engine;
    const HgpcnBackend backend(engine, net);
    const PointCloud input = backendProbeCloud(256);

    const InferenceResult serial = engine.run(net, input, nullptr);
    const BackendInference lifted = backend.infer(input);

    EXPECT_EQ(lifted.backend, "hgpcn");
    EXPECT_EQ(lifted.output.labels, serial.output.labels);
    EXPECT_DOUBLE_EQ(lifted.dsSec, serial.dsu.pipelinedSec);
    EXPECT_DOUBLE_EQ(lifted.fcSec, serial.fcu.totalSec());
    EXPECT_DOUBLE_EQ(lifted.totalSec(), serial.totalSec());
}

TEST(MesorasiBackend, MatchesBatchTimingModelPerFrame)
{
    const PointNet2 net(tinyClassifier());
    const InferenceEngine::Config cfg;
    const MesorasiBackend backend(cfg, net);
    const PointCloud input = backendProbeCloud(256);

    const RunOutput brute = bruteRun(net, input, cfg);
    const MesorasiResult batch =
        MesorasiSim(cfg.sim).run(brute.trace);

    const BackendInference lifted = backend.infer(input);
    EXPECT_EQ(lifted.backend, "mesorasi");
    EXPECT_EQ(lifted.output.labels, brute.labels);
    EXPECT_DOUBLE_EQ(lifted.dsSec, batch.dsSec);
    EXPECT_DOUBLE_EQ(lifted.fcSec, batch.fcSec);
    EXPECT_DOUBLE_EQ(lifted.totalSec(), batch.totalSec());
}

TEST(PointAccBackend, MatchesBatchTimingModelPerFrame)
{
    const PointNet2 net(tinyClassifier());
    const InferenceEngine::Config cfg;
    const PointAccBackend backend(cfg, net);
    const PointCloud input = backendProbeCloud(256);

    const RunOutput brute = bruteRun(net, input, cfg);
    const PointAccResult batch =
        PointAccSim(cfg.sim).run(brute.trace);

    const BackendInference lifted = backend.infer(input);
    EXPECT_EQ(lifted.backend, "pointacc");
    EXPECT_EQ(lifted.output.labels, brute.labels);
    EXPECT_DOUBLE_EQ(lifted.dsSec, batch.mappingSec);
    EXPECT_DOUBLE_EQ(lifted.fcSec, batch.fcSec);
    EXPECT_DOUBLE_EQ(lifted.totalSec(), batch.totalSec());
}

TEST(CpuBruteBackend, SerialSumMatchesDeviceModel)
{
    const PointNet2 net(tinyClassifier());
    const InferenceEngine::Config cfg;
    const CpuBruteBackend backend(cfg, net);
    const PointCloud input = backendProbeCloud(256);

    const RunOutput brute = bruteRun(net, input, cfg);
    const DeviceModel cpu(DeviceModel::xeonW2255());

    const BackendInference lifted = backend.infer(input);
    EXPECT_EQ(lifted.backend, "cpu-brute");
    EXPECT_EQ(lifted.output.labels, brute.labels);
    EXPECT_FALSE(lifted.dsFcOverlap);
    EXPECT_DOUBLE_EQ(lifted.totalSec(),
                     lifted.dsSec + lifted.fcSec);
    EXPECT_DOUBLE_EQ(lifted.totalSec(),
                     cpu.inferenceSec(brute.trace));
}

TEST(ExecutionBackend, ServiceEstimateIsDeterministicAndCached)
{
    const PointNet2 net(tinyClassifier());
    const InferenceEngine engine;
    const HgpcnBackend a(engine, net);
    const HgpcnBackend b(engine, net);
    const double first = a.estimateServiceSec();
    EXPECT_GT(first, 0.0);
    EXPECT_DOUBLE_EQ(a.estimateServiceSec(), first); // cached
    EXPECT_DOUBLE_EQ(b.estimateServiceSec(), first); // reproducible
    // The probe is the backend's own cycle model on a K-point frame.
    EXPECT_DOUBLE_EQ(first,
                     a.infer(backendProbeCloud(256)).totalSec());
}

// -------------------------------------- Backend-parameterized runner

TEST(StreamRunner, HgpcnBackendReproducesEngineRunnerBitForBit)
{
    // Acceptance: a StreamRunner handed an HgpcnBackend must be
    // indistinguishable from the legacy engine-owning runner —
    // same schedule, same latencies, same labels.
    const SensorStream stream = tinyLidarStream(1, 4);
    const std::vector<Frame> frames = stream.framesOfSensor(0);

    const PreprocessingEngine pre;
    const InferenceEngine engine;
    const PointNet2 net(tinyClassifier());

    StreamRunner::Config rc;
    rc.inputPoints = 256;
    rc.buildWorkers = 2;

    StreamRunner legacy(pre, engine, net, rc); // compat ctor
    const HgpcnBackend backend(engine, net);
    StreamRunner lifted(pre, backend, rc);

    const RuntimeResult a = legacy.run(frames);
    const RuntimeResult b = lifted.run(frames);

    ASSERT_EQ(a.frames.size(), b.frames.size());
    EXPECT_DOUBLE_EQ(a.report.sustainedFps, b.report.sustainedFps);
    EXPECT_DOUBLE_EQ(a.report.makespanSec, b.report.makespanSec);
    EXPECT_DOUBLE_EQ(a.report.p99LatencySec, b.report.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.report.meanLatencySec,
                     b.report.meanLatencySec);
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.frames[i].latencySec,
                         b.frames[i].latencySec);
        EXPECT_EQ(a.frames[i].result.inference.output.labels,
                  b.frames[i].result.inference.output.labels);
        EXPECT_DOUBLE_EQ(a.frames[i].result.totalSec(),
                         b.frames[i].result.totalSec());
    }
}

TEST(StreamRunner, NonFpgaBackendFreesTheFpgaForDownSampling)
{
    // A GPU backend occupies its own device, so the "fpga" resource
    // carries only the down-sampler and the inference stage reports
    // the backend's resource.
    const SensorStream stream = tinyLidarStream(1, 3);
    const std::vector<Frame> frames = stream.framesOfSensor(0);

    const PreprocessingEngine pre;
    const PointNet2 net(tinyClassifier());
    const MesorasiBackend backend(InferenceEngine::Config{}, net);

    StreamRunner::Config rc;
    rc.inputPoints = 256;
    StreamRunner runner(pre, backend, rc);
    const RuntimeResult rt = runner.run(frames);

    ASSERT_EQ(rt.report.stages.size(), 3u);
    EXPECT_EQ(rt.report.stages[1].resource, "fpga");
    EXPECT_EQ(rt.report.stages[2].resource, "gpu");
    EXPECT_EQ(rt.report.framesProcessed, frames.size());
}

// ------------------------------------------- Heterogeneous serving

TEST(ShardedRunner, MixedFleetAttributesPerBackend)
{
    // Acceptance: a 2-backend fleet yields a ServingReport whose
    // per-backend slices carry the right counts and verdicts.
    const SensorStream stream = tinyLidarStream(2, 3);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::RoundRobin;
    sc.backends = {"hgpcn", "mesorasi"};
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    EXPECT_EQ(runner.shardBackend(0).name(), "hgpcn");
    EXPECT_EQ(runner.shardBackend(1).name(), "mesorasi");

    const ServingResult served = runner.serve(stream);
    const ServingReport &rep = served.report;

    ASSERT_EQ(rep.shardBackends.size(), 2u);
    EXPECT_EQ(rep.shardBackends[0], "hgpcn");
    EXPECT_EQ(rep.shardBackends[1], "mesorasi");

    ASSERT_EQ(rep.backends.size(), 2u);
    const BackendServingReport &hg = rep.backends[0];
    const BackendServingReport &me = rep.backends[1];
    EXPECT_EQ(hg.backend, "hgpcn");
    EXPECT_EQ(me.backend, "mesorasi");
    EXPECT_EQ(hg.shards, 1u);
    EXPECT_EQ(me.shards, 1u);
    // Round-robin over 6 frames: 3 each, all completed.
    EXPECT_EQ(hg.framesIn, 3u);
    EXPECT_EQ(me.framesIn, 3u);
    EXPECT_EQ(hg.framesDone + me.framesDone,
              rep.framesProcessed);
    EXPECT_EQ(hg.framesMissed, 0u);
    EXPECT_EQ(me.framesMissed, 0u);
    // Paced serve: both backends race the traffic routed to them.
    EXPECT_GT(hg.offeredFps, 0.0);
    EXPECT_GT(me.offeredFps, 0.0);
    EXPECT_NE(hg.realTime, RealTimeVerdict::NotApplicable);
    EXPECT_NE(me.realTime, RealTimeVerdict::NotApplicable);
    EXPECT_GT(hg.sustainedFps, 0.0);
    EXPECT_GT(me.sustainedFps, 0.0);
    EXPECT_GE(hg.maxLatencySec, hg.p99LatencySec);
    EXPECT_GE(me.maxLatencySec, me.p99LatencySec);

    // Frames completed on the shard of their attributed backend.
    for (const ServedFrame &sf : served.frames)
        EXPECT_EQ(sf.shard, sf.globalIndex % 2);

    // Per-sensor Section VII-E verdicts stay present and tri-state.
    ASSERT_EQ(rep.sensors.size(), 2u);
    for (const SensorServingReport &sr : rep.sensors)
        EXPECT_NE(sr.realTime, RealTimeVerdict::NotApplicable);
}

TEST(ShardedRunner, HomogeneousShorthandAndUnknownBackend)
{
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.backends = {"pointacc"}; // one name -> whole fleet
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    EXPECT_EQ(runner.shardBackend(0).name(), "pointacc");
    EXPECT_EQ(runner.shardBackend(1).name(), "pointacc");

    sc.backends = {"hgpcn", "warp-drive"};
    EXPECT_EXIT(ShardedRunner(cfg, tinyClassifier(), sc),
                ::testing::ExitedWithCode(1),
                "unknown execution backend 'warp-drive'");
}

TEST(Placement, LeastLoadedHonorsPerShardServiceTimes)
{
    // Two shards, one 10x slower: the fast shard drains between
    // arrivals more often and must absorb strictly more frames.
    SensorStream stream;
    stream.sensorCount = 1;
    for (std::size_t i = 0; i < 6; ++i) {
        Frame frame;
        frame.name = "f" + std::to_string(i);
        frame.timestamp = 0.05 * static_cast<double>(i);
        stream.frames.push_back(std::move(frame));
        stream.sensors.push_back(0);
    }
    const auto assignment =
        assignShards(stream, 2, PlacementPolicy::LeastLoaded,
                     std::vector<double>{0.1, 1.0});
    // Hand-simulated join-shortest-queue with retirement:
    const std::vector<std::size_t> expect = {0, 1, 0, 0, 0, 1};
    EXPECT_EQ(assignment, expect);

    // Broadcast overload keeps the homogeneous behavior.
    EXPECT_EQ(assignShards(stream, 2, PlacementPolicy::LeastLoaded,
                           1.0),
              assignShards(stream, 2, PlacementPolicy::LeastLoaded,
                           std::vector<double>{1.0, 1.0}));
}

TEST(ShardedRunner, LeastLoadedDerivesServiceFromBackendEstimates)
{
    // Satellite fix: with assumedServiceSec unset, join-shortest-
    // queue retires each shard's backlog at its own backend's
    // cost-model estimate. Pace the sensors between the two
    // estimates so the faster backend keeps draining while the
    // slower one queues — the faster backend must then be handed
    // more frames than a homogeneity-assuming dispatcher would
    // give the slow one.
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::LeastLoaded;
    sc.backends = {"hgpcn", "cpu-brute"};
    ShardedRunner runner(cfg, tinyClassifier(), sc);

    const double fast = runner.shardBackend(0).estimateServiceSec();
    const double slow = runner.shardBackend(1).estimateServiceSec();
    ASSERT_GT(slow, fast) << "cpu-brute should be the slow backend";

    const double period = std::sqrt(fast * slow); // between the two
    const SensorStream stream =
        tinyLidarStream(2, 6, /*rate_hz=*/1.0 / (2.0 * period));

    const ServingResult served = runner.serve(stream);
    ASSERT_EQ(served.report.backends.size(), 2u);
    const BackendServingReport &hg = served.report.backends[0];
    const BackendServingReport &cpu = served.report.backends[1];
    EXPECT_EQ(hg.backend, "hgpcn");
    EXPECT_EQ(cpu.backend, "cpu-brute");
    EXPECT_EQ(hg.framesIn + cpu.framesIn, stream.size());
    EXPECT_GT(hg.framesIn, cpu.framesIn)
        << "service-aware JSQ must favor the faster backend";
}

} // namespace
} // namespace hgpcn
