/**
 * @file
 * Tests for the VoxelGrid level view and its Chebyshev-shell (ring)
 * enumeration — the geometric machinery of VEG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "octree/voxel_grid.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

Octree
makeTree(std::size_t n, std::uint64_t seed, int depth = 8)
{
    Octree::Config cfg;
    cfg.maxDepth = depth;
    cfg.leafCapacity = 8;
    return Octree::build(randomCloud(n, seed), cfg);
}

TEST(VoxelGrid, CellsPerAxisIsPowerOfTwo)
{
    const Octree tree = makeTree(200, 1);
    EXPECT_EQ(VoxelGrid(tree, 0).cellsPerAxis(), 1);
    EXPECT_EQ(VoxelGrid(tree, 3).cellsPerAxis(), 8);
    EXPECT_EQ(VoxelGrid(tree, 5).cellsPerAxis(), 32);
}

TEST(VoxelGrid, CellOfMatchesMortonCell)
{
    const Octree tree = makeTree(300, 2);
    const VoxelGrid grid(tree, 4);
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const Vec3 p{rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                     rng.uniform(0.0f, 1.0f)};
        const GridCell c = grid.cellOf(p);
        std::uint32_t x, y, z;
        morton::cellOf(p, tree.rootBounds(), 4, x, y, z);
        EXPECT_EQ(c.x, static_cast<std::int32_t>(x));
        EXPECT_EQ(c.y, static_cast<std::int32_t>(y));
        EXPECT_EQ(c.z, static_cast<std::int32_t>(z));
    }
}

TEST(VoxelGrid, InGridRejectsOutside)
{
    const Octree tree = makeTree(100, 4);
    const VoxelGrid grid(tree, 3);
    EXPECT_TRUE(grid.inGrid({0, 0, 0}));
    EXPECT_TRUE(grid.inGrid({7, 7, 7}));
    EXPECT_FALSE(grid.inGrid({-1, 0, 0}));
    EXPECT_FALSE(grid.inGrid({8, 0, 0}));
}

TEST(VoxelGrid, CellRangesPartitionTheCloud)
{
    const Octree tree = makeTree(1000, 5);
    const VoxelGrid grid(tree, 3);
    std::size_t total = 0;
    for (std::int32_t x = 0; x < 8; ++x)
        for (std::int32_t y = 0; y < 8; ++y)
            for (std::int32_t z = 0; z < 8; ++z)
                total += grid.cellCount({x, y, z});
    EXPECT_EQ(total, 1000u);
}

TEST(VoxelGrid, CellPointsActuallyLieInCell)
{
    const Octree tree = makeTree(800, 6);
    const VoxelGrid grid(tree, 3);
    for (std::int32_t x = 0; x < 8; ++x) {
        for (std::int32_t y = 0; y < 8; ++y) {
            for (std::int32_t z = 0; z < 8; ++z) {
                const auto [first, last] = grid.cellRange({x, y, z});
                for (PointIndex i = first; i < last; ++i) {
                    const GridCell c = grid.cellOf(
                        tree.reorderedCloud().position(i));
                    EXPECT_EQ(c.x, x);
                    EXPECT_EQ(c.y, y);
                    EXPECT_EQ(c.z, z);
                }
            }
        }
    }
}

TEST(VoxelGrid, Ring0IsTheCenterCell)
{
    const Octree tree = makeTree(100, 7);
    const VoxelGrid grid(tree, 3);
    std::vector<GridCell> cells;
    grid.forEachRingCell({3, 3, 3}, 0, [&](const GridCell &c) {
        cells.push_back(c);
    });
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0], (GridCell{3, 3, 3}));
}

TEST(VoxelGrid, Ring1Has26CellsInInterior)
{
    const Octree tree = makeTree(100, 8);
    const VoxelGrid grid(tree, 3);
    const std::size_t visited =
        grid.forEachRingCell({3, 3, 3}, 1, [](const GridCell &) {});
    EXPECT_EQ(visited, 26u);
}

TEST(VoxelGrid, RingCellCountMatchesShellFormula)
{
    // |shell(r)| = (2r+1)^3 - (2r-1)^3 for interior cells.
    const Octree tree = makeTree(100, 9, 6);
    const VoxelGrid grid(tree, 5); // 32 cells/axis: interior fits r<=3
    const GridCell center{16, 16, 16};
    for (int r = 1; r <= 3; ++r) {
        const std::size_t expected =
            static_cast<std::size_t>((2 * r + 1) * (2 * r + 1) *
                                     (2 * r + 1)) -
            static_cast<std::size_t>((2 * r - 1) * (2 * r - 1) *
                                     (2 * r - 1));
        EXPECT_EQ(grid.forEachRingCell(center, r,
                                       [](const GridCell &) {}),
                  expected);
    }
}

TEST(VoxelGrid, RingCellsHaveExactChebyshevDistance)
{
    const Octree tree = makeTree(100, 10, 6);
    const VoxelGrid grid(tree, 5);
    const GridCell center{10, 12, 14};
    for (int r = 0; r <= 3; ++r) {
        grid.forEachRingCell(center, r, [&](const GridCell &c) {
            const int dx = std::abs(c.x - center.x);
            const int dy = std::abs(c.y - center.y);
            const int dz = std::abs(c.z - center.z);
            EXPECT_EQ(std::max(dx, std::max(dy, dz)), r);
        });
    }
}

TEST(VoxelGrid, RingsClippedAtBorders)
{
    const Octree tree = makeTree(100, 11);
    const VoxelGrid grid(tree, 3); // 8 cells/axis
    // Corner cell: ring 1 has only 7 in-grid cells.
    EXPECT_EQ(grid.forEachRingCell({0, 0, 0}, 1, [](const GridCell &) {}),
              7u);
}

TEST(VoxelGrid, RingsNeverOverlap)
{
    const Octree tree = makeTree(100, 12, 6);
    const VoxelGrid grid(tree, 4);
    const GridCell center{7, 7, 7};
    std::set<std::tuple<int, int, int>> seen;
    for (int r = 0; r <= 4; ++r) {
        grid.forEachRingCell(center, r, [&](const GridCell &c) {
            const auto key = std::make_tuple(c.x, c.y, c.z);
            EXPECT_EQ(seen.count(key), 0u)
                << "cell visited by two rings";
            seen.insert(key);
        });
    }
}

TEST(VoxelGrid, UnionOfAllRingsCoversGrid)
{
    const Octree tree = makeTree(500, 13);
    const VoxelGrid grid(tree, 3);
    const GridCell center{0, 0, 0};
    std::uint64_t total = 0;
    for (int r = 0; r <= grid.cellsPerAxis(); ++r)
        total += grid.ringPointCount(center, r);
    EXPECT_EQ(total, 500u);
}

TEST(VoxelGrid, GatherRingPointsMatchesRingCount)
{
    const Octree tree = makeTree(600, 14);
    const VoxelGrid grid(tree, 3);
    const GridCell center{4, 4, 4};
    for (int r = 0; r <= 3; ++r) {
        std::vector<PointIndex> pts;
        grid.gatherRingPoints(center, r, pts);
        EXPECT_EQ(pts.size(), grid.ringPointCount(center, r));
    }
}

TEST(VoxelGrid, AutoLevelTargetsSmallOccupancy)
{
    // ~1-2 points per voxel on average.
    const int level = VoxelGrid::autoLevel(4096, 10);
    const double cells = std::pow(8.0, level);
    const double occupancy = 4096.0 / cells;
    EXPECT_LE(occupancy, 1.6);
    EXPECT_GE(occupancy, 0.1);
}

TEST(VoxelGrid, AutoLevelClampedByMaxLevel)
{
    EXPECT_LE(VoxelGrid::autoLevel(1u << 30, 5), 5);
    EXPECT_GE(VoxelGrid::autoLevel(2, 5), 1);
}

TEST(VoxelGrid, LevelZeroSingleCellHoldsAll)
{
    const Octree tree = makeTree(250, 15);
    const VoxelGrid grid(tree, 0);
    EXPECT_EQ(grid.cellCount({0, 0, 0}), 250u);
}

// ------------------------------------- fast ring serving (src/knn PR)

TEST(VoxelGrid, ShellCellCountMatchesEnumeration)
{
    // shellCellCount is the O(1) closed form of forEachRingCell's
    // visit count — the DSU's modeled table-lookup cost. Pin them
    // equal across interior, edge and corner centers, clipped and
    // unclipped rings.
    const Octree tree = makeTree(500, 21);
    for (const int level : {1, 2, 4}) {
        const VoxelGrid grid(tree, level);
        const std::int32_t n = grid.cellsPerAxis();
        const GridCell centers[] = {
            {0, 0, 0},
            {n - 1, n - 1, n - 1},
            {n / 2, n / 2, n / 2},
            {0, n / 2, n - 1},
        };
        for (const GridCell &c : centers) {
            for (int r = 0; r <= n + 1; ++r) {
                EXPECT_EQ(grid.shellCellCount(c, r),
                          grid.forEachRingCell(
                              c, r, [](const GridCell &) {}))
                    << "level " << level << " ring " << r;
            }
        }
    }
}

TEST(VoxelGrid, OccupiedScanMatchesPerCellWalk)
{
    // ringPointCount / gatherRingPoints switch between walking the
    // shell's cells and scanning the occupied-cell list. Both paths
    // must yield identical points in identical order and identical
    // lookup counts; compare against the raw enumeration at deep
    // levels where the fast path engages.
    const Octree tree = makeTree(400, 33, /*depth=*/10);
    const VoxelGrid grid(tree, 7); // deep: shells >> occupied cells
    const GridCell center = grid.cellOf({0.4f, 0.6f, 0.5f});
    for (int r = 0; r < 24; ++r) {
        std::vector<PointIndex> naive;
        const std::size_t visited =
            grid.forEachRingCell(center, r, [&](const GridCell &c) {
                const auto [first, last] = grid.cellRange(c);
                for (PointIndex i = first; i < last; ++i)
                    naive.push_back(i);
            });
        std::vector<PointIndex> fast;
        const std::size_t lookups =
            grid.gatherRingPoints(center, r, fast);
        EXPECT_EQ(fast, naive) << "ring " << r;
        EXPECT_EQ(lookups, visited) << "ring " << r;
        EXPECT_EQ(grid.ringPointCount(center, r), naive.size());
    }
}

TEST(VoxelGrid, OccupiedCellsCoverEveryPoint)
{
    const Octree tree = makeTree(600, 41);
    const VoxelGrid grid(tree, 3);
    const auto &occ = grid.occupiedCells();
    std::size_t covered = 0;
    for (std::size_t i = 0; i < occ.size(); ++i) {
        EXPECT_LT(occ[i].first, occ[i].last);
        EXPECT_EQ(grid.cellCount(occ[i].cell),
                  occ[i].last - occ[i].first);
        covered += occ[i].last - occ[i].first;
        if (i > 0) {
            const GridCell &a = occ[i - 1].cell;
            const GridCell &b = occ[i].cell;
            const bool lex_ordered =
                a.x != b.x ? a.x < b.x
                           : (a.y != b.y ? a.y < b.y : a.z < b.z);
            EXPECT_TRUE(lex_ordered) << "occupied list unsorted";
        }
    }
    EXPECT_EQ(covered, 600u);
}

} // namespace
} // namespace hgpcn
