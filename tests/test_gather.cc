/**
 * @file
 * Tests for data structuring: brute-force KNN/Ball-Query and all
 * three VEG modes. Key properties: VEG-strict equals brute KNN
 * exactly; paper-mode VEG has near-perfect recall with a fraction of
 * the sort workload (the Fig. 15 claim).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "gather/brute_gatherers.h"
#include "gather/veg_gatherer.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

Octree
makeTree(const PointCloud &cloud, int depth = 9)
{
    Octree::Config cfg;
    cfg.maxDepth = depth;
    cfg.leafCapacity = 8;
    return Octree::build(cloud, cfg);
}

std::vector<PointIndex>
someCentrals(std::size_t n, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<PointIndex> centrals;
    std::set<PointIndex> used;
    while (centrals.size() < count) {
        const auto c = static_cast<PointIndex>(rng.below(n));
        if (used.insert(c).second)
            centrals.push_back(c);
    }
    return centrals;
}

/** Sorted squared distances of a neighbor set to a query. */
std::vector<float>
distancesTo(const PointCloud &cloud, const Vec3 &anchor,
            std::span<const PointIndex> neighbors)
{
    std::vector<float> out;
    out.reserve(neighbors.size());
    for (PointIndex i : neighbors)
        out.push_back(cloud.position(i).distSq(anchor));
    std::sort(out.begin(), out.end());
    return out;
}

// ------------------------------------------------------- brute KNN

TEST(BruteKnn, ReturnsKNeighborsIncludingSelf)
{
    const PointCloud cloud = randomCloud(200, 1);
    BruteKnn knn(cloud);
    const auto centrals = someCentrals(200, 5, 2);
    const auto result = knn.gather(centrals, 8);
    EXPECT_EQ(result.centroids(), 5u);
    for (std::size_t c = 0; c < 5; ++c) {
        const auto neigh = result.of(c);
        EXPECT_EQ(neigh.size(), 8u);
        // The centroid itself is its own nearest neighbor.
        EXPECT_NE(std::find(neigh.begin(), neigh.end(), centrals[c]),
                  neigh.end());
    }
}

TEST(BruteKnn, NeighborsSortedByDistance)
{
    const PointCloud cloud = randomCloud(300, 3);
    BruteKnn knn(cloud);
    const auto centrals = someCentrals(300, 4, 4);
    const auto result = knn.gather(centrals, 16);
    for (std::size_t c = 0; c < 4; ++c) {
        const Vec3 anchor = cloud.position(centrals[c]);
        const auto neigh = result.of(c);
        for (std::size_t j = 1; j < neigh.size(); ++j) {
            EXPECT_LE(cloud.position(neigh[j - 1]).distSq(anchor),
                      cloud.position(neigh[j]).distSq(anchor));
        }
    }
}

TEST(BruteKnn, NoCloserPointOmitted)
{
    const PointCloud cloud = randomCloud(250, 5);
    BruteKnn knn(cloud);
    const auto centrals = someCentrals(250, 3, 6);
    const std::size_t k = 10;
    const auto result = knn.gather(centrals, k);
    for (std::size_t c = 0; c < 3; ++c) {
        const Vec3 anchor = cloud.position(centrals[c]);
        const auto neigh = result.of(c);
        const std::set<PointIndex> in_set(neigh.begin(), neigh.end());
        float kth = 0.0f;
        for (PointIndex i : neigh)
            kth = std::max(kth, cloud.position(i).distSq(anchor));
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            if (in_set.count(static_cast<PointIndex>(i)))
                continue;
            EXPECT_GE(cloud.position(static_cast<PointIndex>(i))
                          .distSq(anchor),
                      kth);
        }
    }
}

TEST(BruteKnn, WorkloadIsNPerCentroid)
{
    const PointCloud cloud = randomCloud(400, 7);
    BruteKnn knn(cloud);
    const auto result = knn.gather(someCentrals(400, 6, 8), 4);
    EXPECT_EQ(result.stats.get("gather.distance_computations"),
              6u * 400u);
    EXPECT_EQ(result.stats.get("gather.sort_candidates"), 6u * 400u);
}

// -------------------------------------------------- brute BallQuery

TEST(BruteBallQuery, AllNeighborsWithinRadius)
{
    const PointCloud cloud = randomCloud(500, 9);
    const float radius = 0.2f;
    BruteBallQuery bq(cloud, radius);
    const auto centrals = someCentrals(500, 6, 10);
    const auto result = bq.gather(centrals, 16);
    for (std::size_t c = 0; c < 6; ++c) {
        const Vec3 anchor = cloud.position(centrals[c]);
        for (PointIndex i : result.of(c)) {
            EXPECT_LE(cloud.position(i).dist(anchor),
                      radius + 1e-5f);
        }
    }
}

TEST(BruteBallQuery, PadsWhenBallIsSparse)
{
    PointCloud cloud;
    cloud.add({0, 0, 0});
    cloud.add({0.01f, 0, 0});
    cloud.add({10, 10, 10});
    BruteBallQuery bq(cloud, 0.5f);
    const PointIndex centrals[] = {0};
    const auto result = bq.gather(centrals, 4);
    const auto neigh = result.of(0);
    EXPECT_EQ(neigh.size(), 4u);
    // Only points 0 and 1 are in range; the rest is padding.
    for (PointIndex i : neigh)
        EXPECT_LT(i, 2u);
}

TEST(BruteBallQuery, EmptyBallPadsWithCentroid)
{
    PointCloud cloud;
    cloud.add({0, 0, 0});
    cloud.add({5, 5, 5});
    BruteBallQuery bq(cloud, 0.1f);
    const PointIndex centrals[] = {1};
    const auto result = bq.gather(centrals, 3);
    for (PointIndex i : result.of(0))
        EXPECT_EQ(i, 1u);
}

// ------------------------------------------------------ VEG (paper)

TEST(VegKnn, ReturnsExactlyKNeighbors)
{
    const PointCloud cloud = randomCloud(1000, 11);
    const Octree tree = makeTree(cloud);
    VegKnn veg(tree);
    const auto centrals = someCentrals(1000, 10, 12);
    const auto result = veg.gather(centrals, 32);
    EXPECT_EQ(result.centroids(), 10u);
    for (std::size_t c = 0; c < 10; ++c) {
        const auto neigh = result.of(c);
        std::set<PointIndex> unique(neigh.begin(), neigh.end());
        EXPECT_EQ(unique.size(), 32u) << "duplicate neighbors";
    }
}

TEST(VegKnn, TracesAreConsistent)
{
    const PointCloud cloud = randomCloud(800, 13);
    const Octree tree = makeTree(cloud);
    VegKnn veg(tree);
    const auto centrals = someCentrals(800, 8, 14);
    const std::size_t k = 16;
    const auto result = veg.gather(centrals, k);
    ASSERT_EQ(result.traces.size(), 8u);
    for (const VegTrace &trace : result.traces) {
        // Expansion covered at least K points.
        EXPECT_GE(trace.innerPoints + trace.lastRingPoints, k);
        // Inner rings alone were not yet enough (that's why the
        // last ring was expanded).
        EXPECT_LT(trace.innerPoints, k);
        EXPECT_GT(trace.tableLookups, 0u);
    }
}

TEST(VegKnn, HighRecallAgainstBruteKnn)
{
    // Paper claims VEG is accurate; geometrically the paper-mode
    // shortcut can miss corner cases, so require >= 90% recall
    // (the ablation_veg_exactness bench characterizes the gap).
    const PointCloud cloud = randomCloud(2000, 15);
    const Octree tree = makeTree(cloud);
    VegKnn veg(tree);
    BruteKnn brute(tree.reorderedCloud());
    const auto centrals = someCentrals(2000, 20, 16);
    const std::size_t k = 32;

    const auto veg_result = veg.gather(centrals, k);
    const auto brute_result = brute.gather(centrals, k);

    std::size_t hits = 0;
    for (std::size_t c = 0; c < centrals.size(); ++c) {
        const auto v = veg_result.of(c);
        const auto b = brute_result.of(c);
        const std::set<PointIndex> truth(b.begin(), b.end());
        for (PointIndex i : v)
            hits += truth.count(i);
    }
    const double recall = static_cast<double>(hits) /
                          static_cast<double>(centrals.size() * k);
    EXPECT_GE(recall, 0.90);
}

TEST(VegKnn, SortWorkloadFractionOfBrute)
{
    // The Fig. 15 property: VEG's sorter only sees the last ring.
    const PointCloud cloud = randomCloud(4096, 17);
    const Octree tree = makeTree(cloud);
    VegKnn veg(tree);
    BruteKnn brute(tree.reorderedCloud());
    const auto centrals = someCentrals(4096, 64, 18);
    const std::size_t k = 32;

    const auto veg_result = veg.gather(centrals, k);
    const auto brute_result = brute.gather(centrals, k);
    EXPECT_LT(veg_result.stats.get("gather.sort_candidates") * 5,
              brute_result.stats.get("gather.sort_candidates"));
}

TEST(VegKnn, InnerPointsAreCloserThanLastRingSurvivors)
{
    // Points gathered blind from inner rings must all be genuinely
    // within the expanded neighborhood (distance sanity check).
    const PointCloud cloud = randomCloud(1500, 19);
    const Octree tree = makeTree(cloud);
    VegKnn::Config cfg;
    VegKnn veg(tree, cfg);
    const auto centrals = someCentrals(1500, 6, 20);
    const std::size_t k = 24;
    const auto result = veg.gather(centrals, k);
    for (std::size_t c = 0; c < centrals.size(); ++c) {
        const Vec3 anchor =
            tree.reorderedCloud().position(centrals[c]);
        const float cell = morton::voxelSize(veg.levelFor(anchor),
                                             tree.rootBounds());
        const float max_reach =
            static_cast<float>(result.traces[c].rings + 1) * cell *
            1.7321f; // ring diagonal
        for (PointIndex i : result.of(c)) {
            EXPECT_LE(tree.reorderedCloud().position(i).dist(anchor),
                      max_reach);
        }
    }
}

TEST(VegKnn, GatherAtArbitraryQueryPoints)
{
    const PointCloud cloud = randomCloud(600, 21);
    const Octree tree = makeTree(cloud);
    VegKnn veg(tree);
    const std::vector<Vec3> queries = {
        {0.5f, 0.5f, 0.5f}, {0.05f, 0.9f, 0.3f}, {0.99f, 0.01f, 0.5f}};
    const auto result = veg.gatherAt(queries, 8);
    EXPECT_EQ(result.centroids(), 3u);
    for (std::size_t q = 0; q < 3; ++q)
        EXPECT_EQ(result.of(q).size(), 8u);
}

// ------------------------------------------------------ VEG strict

TEST(VegStrict, ExactlyMatchesBruteKnn)
{
    const PointCloud cloud = randomCloud(1200, 23);
    const Octree tree = makeTree(cloud);
    VegKnn::Config cfg;
    cfg.mode = VegMode::Strict;
    VegKnn veg(tree, cfg);
    BruteKnn brute(tree.reorderedCloud());
    const auto centrals = someCentrals(1200, 15, 24);
    const std::size_t k = 16;

    const auto veg_result = veg.gather(centrals, k);
    const auto brute_result = brute.gather(centrals, k);
    for (std::size_t c = 0; c < centrals.size(); ++c) {
        const Vec3 anchor =
            tree.reorderedCloud().position(centrals[c]);
        // Compare distance multisets (ties may order differently).
        const auto dv = distancesTo(tree.reorderedCloud(), anchor,
                                    veg_result.of(c));
        const auto db = distancesTo(tree.reorderedCloud(), anchor,
                                    brute_result.of(c));
        ASSERT_EQ(dv.size(), db.size());
        for (std::size_t j = 0; j < dv.size(); ++j)
            EXPECT_FLOAT_EQ(dv[j], db[j]);
    }
}

TEST(VegStrict, StillLocalWorkload)
{
    const PointCloud cloud = randomCloud(4096, 25);
    const Octree tree = makeTree(cloud);
    VegKnn::Config cfg;
    cfg.mode = VegMode::Strict;
    VegKnn veg(tree, cfg);
    const auto centrals = someCentrals(4096, 32, 26);
    const auto result = veg.gather(centrals, 32);
    // Strict mode scans more than paper mode but still far less
    // than the whole cloud per centroid.
    EXPECT_LT(result.stats.get("gather.distance_computations"),
              32u * 4096u / 4u);
}

// -------------------------------------------------- VEG semi-approx

TEST(VegSemiApprox, ReturnsKNeighborsWithoutSorting)
{
    const PointCloud cloud = randomCloud(1000, 27);
    const Octree tree = makeTree(cloud);
    VegKnn::Config cfg;
    cfg.mode = VegMode::SemiApprox;
    VegKnn veg(tree, cfg);
    const auto centrals = someCentrals(1000, 10, 28);
    const auto result = veg.gather(centrals, 32);
    for (std::size_t c = 0; c < 10; ++c) {
        std::set<PointIndex> unique(result.of(c).begin(),
                                    result.of(c).end());
        EXPECT_EQ(unique.size(), 32u);
    }
    EXPECT_EQ(result.stats.get("gather.distance_computations"), 0u);
    EXPECT_EQ(result.stats.get("gather.sort_candidates"), 0u);
}

TEST(VegSemiApprox, InnerPointsStillExact)
{
    // The inner rings are identical to paper-mode VEG; only the
    // last-ring remainder is randomized.
    const PointCloud cloud = randomCloud(900, 29);
    const Octree tree = makeTree(cloud);
    VegKnn::Config paper_cfg;
    VegKnn paper(tree, paper_cfg);
    VegKnn::Config semi_cfg;
    semi_cfg.mode = VegMode::SemiApprox;
    VegKnn semi(tree, semi_cfg);
    const auto centrals = someCentrals(900, 5, 30);
    const std::size_t k = 20;
    const auto rp = paper.gather(centrals, k);
    const auto rs = semi.gather(centrals, k);
    for (std::size_t c = 0; c < 5; ++c) {
        const std::size_t inner = rp.traces[c].innerPoints;
        ASSERT_EQ(inner, rs.traces[c].innerPoints);
        for (std::size_t j = 0; j < inner; ++j)
            EXPECT_EQ(rp.of(c)[j], rs.of(c)[j]);
    }
}

// ---------------------------------------------------------- VEG BQ

TEST(VegBallQuery, AllNeighborsWithinRadius)
{
    const PointCloud cloud = randomCloud(1500, 31);
    const Octree tree = makeTree(cloud);
    VegBallQuery::Config cfg;
    cfg.radius = 0.15f;
    VegBallQuery bq(tree, cfg);
    const auto centrals = someCentrals(1500, 10, 32);
    const auto result = bq.gather(centrals, 16);
    for (std::size_t c = 0; c < 10; ++c) {
        const Vec3 anchor =
            tree.reorderedCloud().position(centrals[c]);
        std::set<PointIndex> in_ball;
        for (PointIndex i : result.of(c)) {
            EXPECT_LE(tree.reorderedCloud().position(i).dist(anchor),
                      cfg.radius + 1e-4f);
        }
    }
}

TEST(VegBallQuery, MatchesBruteBallQueryCounts)
{
    const PointCloud cloud = randomCloud(800, 33);
    const Octree tree = makeTree(cloud);
    const float radius = 0.2f;
    VegBallQuery::Config cfg;
    cfg.radius = radius;
    VegBallQuery veg_bq(tree, cfg);
    BruteBallQuery brute_bq(tree.reorderedCloud(), radius);
    const auto centrals = someCentrals(800, 8, 34);
    const std::size_t k = 64;
    const auto rv = veg_bq.gather(centrals, k);
    const auto rb = brute_bq.gather(centrals, k);
    for (std::size_t c = 0; c < 8; ++c) {
        // Same number of genuine (non-pad) in-radius points.
        auto count_unique = [&](std::span<const PointIndex> neigh) {
            std::set<PointIndex> s(neigh.begin(), neigh.end());
            return s.size();
        };
        EXPECT_EQ(count_unique(rv.of(c)), count_unique(rb.of(c)));
    }
}

TEST(VegBallQuery, FarFewerDistanceComputationsThanBrute)
{
    const PointCloud cloud = randomCloud(4000, 35);
    const Octree tree = makeTree(cloud);
    VegBallQuery::Config cfg;
    cfg.radius = 0.1f;
    VegBallQuery veg_bq(tree, cfg);
    BruteBallQuery brute_bq(tree.reorderedCloud(), cfg.radius);
    const auto centrals = someCentrals(4000, 32, 36);
    const auto rv = veg_bq.gather(centrals, 32);
    const auto rb = brute_bq.gather(centrals, 32);
    EXPECT_LT(rv.stats.get("gather.distance_computations") * 4,
              rb.stats.get("gather.distance_computations"));
}

} // namespace
} // namespace hgpcn
