/**
 * @file
 * Observability-layer tests: Tracer span/ordering invariants and
 * thread-safety, MetricsRegistry arithmetic against hand-computed
 * values, snapshot merging, Chrome trace export determinism (a
 * ShardedRunner serve's virtual-time trace must be byte-identical
 * across runs), per-frame stall-span conservation against reported
 * latencies, report-from-metrics equality, tracing-on/off modeled
 * invariance, the pluggable LogSink, and BoundedQueue depth
 * sampling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/logging.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "datasets/sensor_stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

std::vector<Frame>
smallKittiStream(std::size_t n)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 250; // small frames for test speed
    const KittiLike lidar(cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n; ++f)
        frames.push_back(lidar.generate(f));
    return frames;
}

SensorStream
tinyLidarStream(std::size_t sensors, std::size_t frames_per_sensor)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 250;
    return makeLidarSensorStream(cfg);
}

/** RAII: leave the global tracer off and empty no matter how the
 * test exits. */
struct GlobalTracerGuard
{
    ~GlobalTracerGuard()
    {
        Tracer::global().setEnabled(false);
        Tracer::global().clear();
    }
};

// ---------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());
    tracer.instant(TraceClock::Wall, 0.0, "x", "cat", "track");
    tracer.span(TraceClock::Virtual, 0.0, 1.0, "y", "cat", "track");
    tracer.counter(TraceClock::Wall, 0.0, "z", "track", 3.0);
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, SnapshotOrderIsCanonicalAcrossThreads)
{
    // Four threads record the same deterministic virtual payloads
    // in different orders; the snapshot must come back in one
    // canonical order regardless of interleaving.
    Tracer tracer;
    tracer.setEnabled(true);
    const int per_thread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&tracer, t] {
            for (int i = 0; i < per_thread; ++i) {
                // Reverse emission order on odd threads.
                const int k = (t % 2 == 0) ? i : per_thread - 1 - i;
                TraceIds ids;
                ids.frame = k;
                tracer.span(TraceClock::Virtual,
                            static_cast<double>(k), 0.5,
                            "exec:stage" + std::to_string(t % 2),
                            "fpga", "track", ids);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    ASSERT_EQ(tracer.eventCount(), 200u);

    const std::vector<TraceEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 200u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        const TraceEvent &a = events[i - 1];
        const TraceEvent &b = events[i];
        EXPECT_LE(a.tsSec, b.tsSec);
        if (a.tsSec == b.tsSec) {
            EXPECT_LE(a.name, b.name);
            if (a.name == b.name) {
                EXPECT_LE(a.ids.frame, b.ids.frame);
            }
        }
    }
    // Byte-level determinism of the export built on that order.
    const std::string once = chromeTraceJson(events);
    const std::string twice = chromeTraceJson(tracer.snapshot());
    EXPECT_EQ(once, twice);
}

TEST(Tracer, WallSpansNestProperly)
{
    Tracer tracer;
    tracer.setEnabled(true);
    {
        TraceSpan outer(tracer, "outer", "cat", "track");
        {
            TraceSpan inner(tracer, "inner", "cat", "track");
        }
    }
    const std::vector<TraceEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 2u);
    const TraceEvent *outer = nullptr;
    const TraceEvent *inner = nullptr;
    for (const TraceEvent &ev : events) {
        (ev.name == "outer" ? outer : inner) = &ev;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->phase, TracePhase::Complete);
    // Containment: the inner span opened after and closed before.
    EXPECT_GE(inner->tsSec, outer->tsSec);
    EXPECT_LE(inner->tsSec + inner->durSec,
              outer->tsSec + outer->durSec);
}

TEST(Tracer, SpanArmedWhileDisabledRecordsNothing)
{
    Tracer tracer;
    {
        TraceSpan span(tracer, "quiet", "cat", "track");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    tracer.setEnabled(true);
    {
        TraceSpan span(tracer, "loud", "cat", "track");
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
}

TEST(Tracer, ClearDropsEventsAndRestartsEpoch)
{
    Tracer tracer;
    tracer.setEnabled(true);
    tracer.instant(TraceClock::Wall, tracer.wallNowSec(), "a", "c",
                   "t");
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    // The epoch restarted: now-readings start near zero again.
    EXPECT_LT(tracer.wallNowSec(), 60.0);
}

// ---------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------

TEST(Metrics, CounterAndGaugeArithmetic)
{
    MetricsRegistry reg;
    Counter &frames = reg.counter("frames");
    frames.add();
    frames.add(4);
    EXPECT_EQ(frames.value(), 5u);

    Gauge &busy = reg.gauge("busy");
    busy.set(1.5);
    busy.add(0.25);
    EXPECT_DOUBLE_EQ(busy.value(), 1.75);

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.countOf("frames"), 5u);
    ASSERT_NE(snap.find("busy"), nullptr);
    EXPECT_DOUBLE_EQ(snap.find("busy")->value, 1.75);
    EXPECT_EQ(snap.find("nope"), nullptr);
    EXPECT_EQ(snap.countOf("nope"), 0u);
}

TEST(Metrics, HistogramAgainstHandComputedValues)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("lat", {0.1, 0.2, 0.5});
    // Buckets (upper bounds): 0.1 -> {0.05, 0.1}; 0.2 -> {0.15};
    // 0.5 -> {0.3}; overflow -> {0.7, 0.9}.
    for (const double x : {0.05, 0.1, 0.15, 0.3, 0.7, 0.9})
        h.observe(x);

    EXPECT_EQ(h.count(), 6u);
    EXPECT_NEAR(h.sum(), 2.2, 1e-12);
    EXPECT_DOUBLE_EQ(h.min(), 0.05);
    EXPECT_DOUBLE_EQ(h.max(), 0.9);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u); // overflow

    // Nearest rank: rank = ceil(q * 6). q=0.5 -> rank 3 -> third
    // observation lives in bucket "0.2". q=0.95 -> rank 6 ->
    // overflow, reported as the observed max.
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 0.2);
    EXPECT_DOUBLE_EQ(h.percentile(0.17), 0.1); // rank 2 (ceil 1.02)
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 0.9);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.9);

    // The frozen MetricValue computes the same percentiles.
    const MetricsSnapshot snap = reg.snapshot();
    const MetricValue *v = snap.find("lat");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->kind, MetricValue::Kind::Histogram);
    EXPECT_DOUBLE_EQ(v->percentile(0.50), 0.2);
    EXPECT_DOUBLE_EQ(v->percentile(0.95), 0.9);
}

TEST(Metrics, EmptyHistogramReportsZeros)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("empty", {1.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(Metrics, RegistryIsThreadSafe)
{
    MetricsRegistry reg;
    const int threads = 8;
    const int per_thread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&reg, per_thread] {
            // Same names from every thread: registration races on
            // the registry mutex, updates race on the atomics.
            Counter &c = reg.counter("shared.counter");
            Gauge &g = reg.gauge("shared.gauge");
            Histogram &h =
                reg.histogram("shared.hist", {0.5, 1.0});
            for (int i = 0; i < per_thread; ++i) {
                c.add();
                g.add(0.5);
                h.observe(i % 2 == 0 ? 0.25 : 2.0);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    const std::uint64_t n =
        static_cast<std::uint64_t>(threads) *
        static_cast<std::uint64_t>(per_thread);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.countOf("shared.counter"), n);
    EXPECT_DOUBLE_EQ(snap.find("shared.gauge")->value,
                     0.5 * static_cast<double>(n));
    const MetricValue *h = snap.find("shared.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, n);
    EXPECT_EQ(h->buckets[0], n / 2); // 0.25s
    EXPECT_EQ(h->buckets[1], 0u);
    EXPECT_EQ(h->buckets[2], n / 2); // overflow 2.0s
    EXPECT_DOUBLE_EQ(h->min, 0.25);
    EXPECT_DOUBLE_EQ(h->max, 2.0);
}

TEST(Metrics, SnapshotsMergeBySummation)
{
    MetricsRegistry a;
    MetricsRegistry b;
    a.counter("frames").add(3);
    b.counter("frames").add(4);
    a.gauge("busy").set(1.0);
    b.gauge("busy").set(0.5);
    a.histogram("lat", {0.1, 0.2}).observe(0.05);
    b.histogram("lat", {0.1, 0.2}).observe(0.15);
    b.histogram("lat", {0.1, 0.2}).observe(9.0);
    b.counter("only.b").add(2);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.countOf("frames"), 7u);
    EXPECT_DOUBLE_EQ(merged.find("busy")->value, 1.5);
    EXPECT_EQ(merged.countOf("only.b"), 2u);
    const MetricValue *lat = merged.find("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 3u);
    EXPECT_EQ(lat->buckets[0], 1u);
    EXPECT_EQ(lat->buckets[1], 1u);
    EXPECT_EQ(lat->buckets[2], 1u);
    EXPECT_DOUBLE_EQ(lat->min, 0.05);
    EXPECT_DOUBLE_EQ(lat->max, 9.0);
    EXPECT_NEAR(lat->value, 9.2, 1e-12); // summed observations

    // toString is deterministic (sorted by name).
    EXPECT_EQ(merged.toString(), merged.toString());
}

// ---------------------------------------------------------------
// Runtime integration: report-from-metrics, invariance,
// conservation
// ---------------------------------------------------------------

TEST(ObsRuntime, ReportCountsComeFromMetrics)
{
    const std::vector<Frame> frames = smallKittiStream(4);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const RuntimeResult rt =
        system.runStream(frames, StreamRunner::compat(4, 0));

    EXPECT_EQ(rt.metrics.countOf("frames.in"), rt.report.framesIn);
    EXPECT_EQ(rt.metrics.countOf("frames.processed"),
              rt.report.framesProcessed);
    EXPECT_EQ(rt.metrics.countOf("frames.dropped"),
              rt.report.framesDropped);
    EXPECT_EQ(rt.metrics.countOf("frame.latency_sec"),
              rt.report.framesProcessed);
    ASSERT_NE(rt.metrics.find("timeline.makespan_sec"), nullptr);
    EXPECT_DOUBLE_EQ(rt.metrics.find("timeline.makespan_sec")->value,
                     rt.report.makespanSec);
    // Temporal-cache attribution flows registry -> report.
    EXPECT_EQ(rt.metrics.countOf("temporal.frames"),
              rt.report.framesProcessed);
}

TEST(ObsRuntime, TracingDoesNotMoveTheModeledSchedule)
{
#ifdef HGPCN_TRACING_DISABLED
    GTEST_SKIP() << "instrumentation macros compiled out "
                    "(HGPCN_DISABLE_TRACING)";
#endif
    GlobalTracerGuard guard;
    const std::vector<Frame> frames = smallKittiStream(4);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.buildWorkers = 2;
    rc.queueCapacity = 2;

    Tracer::global().setEnabled(false);
    const RuntimeResult off = system.runStream(frames, rc);
    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    const RuntimeResult on = system.runStream(frames, rc);
    Tracer::global().setEnabled(false);

    EXPECT_GT(Tracer::global().eventCount(), 0u);
    EXPECT_EQ(off.report.toString(), on.report.toString());
    EXPECT_EQ(off.metrics.toString(), on.metrics.toString());
}

TEST(ObsRuntime, StallSpansConserveFrameLatency)
{
#ifdef HGPCN_TRACING_DISABLED
    GTEST_SKIP() << "instrumentation macros compiled out "
                    "(HGPCN_DISABLE_TRACING)";
#endif
    GlobalTracerGuard guard;
    // Batch admission + 1 build worker + shared FPGA: frames 1..n
    // really queue, so wait/blocked spans exist and must tile each
    // frame's [arrival, done] exactly.
    const std::vector<Frame> frames = smallKittiStream(5);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.paceBySensor = false;
    rc.buildWorkers = 1;
    rc.queueCapacity = 8;

    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    const RuntimeResult rt = system.runStream(frames, rc);
    Tracer::global().setEnabled(false);
    const std::vector<TraceEvent> events =
        Tracer::global().snapshot();

    const auto is_stall_name = [](const std::string &name) {
        for (const char *prefix :
             {"pend:", "wait:", "batchwait:", "exec:", "blocked:"}) {
            if (name.rfind(prefix, 0) == 0)
                return true;
        }
        return false;
    };
    std::map<std::int64_t, std::vector<const TraceEvent *>> by_frame;
    std::size_t stall_spans = 0;
    for (const TraceEvent &ev : events) {
        if (ev.clock == TraceClock::Virtual &&
            ev.phase == TracePhase::Complete &&
            is_stall_name(ev.name)) {
            by_frame[ev.ids.frame].push_back(&ev);
            ++stall_spans;
        }
    }
    ASSERT_EQ(by_frame.size(), rt.frames.size());
    // Contention must have produced more than bare exec spans.
    EXPECT_GT(stall_spans, 3 * rt.frames.size());

    for (const ProcessedFrame &pf : rt.frames) {
        auto it = by_frame.find(static_cast<std::int64_t>(pf.index));
        ASSERT_NE(it, by_frame.end());
        std::vector<const TraceEvent *> spans = it->second;
        std::sort(spans.begin(), spans.end(),
                  [](const TraceEvent *a, const TraceEvent *b) {
                      return a->tsSec < b->tsSec;
                  });
        double total = 0.0;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            total += spans[i]->durSec;
            if (i > 0) {
                // Contiguous tiling: suppressed sub-1e-12 spans are
                // the only permitted gaps.
                const double gap =
                    spans[i]->tsSec - (spans[i - 1]->tsSec +
                                       spans[i - 1]->durSec);
                EXPECT_NEAR(gap, 0.0, 1e-9)
                    << "frame " << pf.index << " between "
                    << spans[i - 1]->name << " and "
                    << spans[i]->name;
            }
        }
        EXPECT_NEAR(total, pf.latencySec, 1e-9)
            << "frame " << pf.index;
        const double end = spans.back()->tsSec +
                           spans.back()->durSec;
        EXPECT_NEAR(end, pf.doneSec, 1e-9);
    }
}

TEST(ObsRuntime, BatchMetricsMatchReport)
{
#ifdef HGPCN_TRACING_DISABLED
    GTEST_SKIP() << "instrumentation macros compiled out "
                    "(HGPCN_DISABLE_TRACING)";
#endif
    GlobalTracerGuard guard;
    const std::vector<Frame> frames = smallKittiStream(6);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.paceBySensor = false;
    rc.maxBatch = 3;
    rc.queueCapacity = 8;

    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    const RuntimeResult rt = system.runStream(frames, rc);
    Tracer::global().setEnabled(false);

    EXPECT_EQ(rt.metrics.countOf("batch.dispatches"),
              rt.report.batchCount);
    EXPECT_EQ(rt.metrics.countOf("batch.batched_frames"),
              rt.report.batchedFrames);
    EXPECT_EQ(rt.metrics.countOf("batch.solo_frames"),
              rt.report.soloFrames);

    // The device view: one batch span per coalesced dispatch.
    std::size_t batch_spans = 0;
    for (const TraceEvent &ev : Tracer::global().snapshot()) {
        if (ev.clock == TraceClock::Virtual &&
            ev.phase == TracePhase::Complete &&
            ev.name.rfind("batch:", 0) == 0)
            ++batch_spans;
    }
    EXPECT_EQ(batch_spans, rt.report.batchCount);
}

// ---------------------------------------------------------------
// Serving integration: byte-identity, merged metrics
// ---------------------------------------------------------------

TEST(ObsServing, VirtualTraceIsByteIdenticalAcrossRuns)
{
#ifdef HGPCN_TRACING_DISABLED
    GTEST_SKIP() << "instrumentation macros compiled out "
                    "(HGPCN_DISABLE_TRACING)";
#endif
    GlobalTracerGuard guard;
    const SensorStream stream = tinyLidarStream(2, 3);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    // Round-robin: both shards are guaranteed traffic, so both
    // appear as trace tracks.
    sc.placement = PlacementPolicy::RoundRobin;

    TraceExportOptions virtual_only;
    virtual_only.includeWall = false;

    const auto traced_serve = [&] {
        ShardedRunner runner(cfg, tinyClassifier(), sc);
        Tracer::global().clear();
        Tracer::global().setEnabled(true);
        const ServingResult r = runner.serve(stream);
        Tracer::global().setEnabled(false);
        return std::make_pair(
            chromeTraceJson(Tracer::global().snapshot(),
                            virtual_only),
            r.report.framesProcessed);
    };

    const auto [first, processed_a] = traced_serve();
    const auto [second, processed_b] = traced_serve();
    EXPECT_EQ(processed_a, stream.size());
    EXPECT_EQ(processed_b, processed_a);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // The export carries shard attribution and placement instants.
    EXPECT_NE(first.find("shard0/"), std::string::npos);
    EXPECT_NE(first.find("shard1/"), std::string::npos);
    EXPECT_NE(first.find("place:shard"), std::string::npos);
    EXPECT_NE(first.find("\"frame\":"), std::string::npos);
    // Wall events were recorded but excluded from the export.
    EXPECT_NE(Tracer::global().eventCount(), 0u);
    EXPECT_EQ(first.find("wall/"), std::string::npos);
}

TEST(ObsServing, ShardMetricsMergeIntoServingResult)
{
    const SensorStream stream = tinyLidarStream(2, 3);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    const ServingResult r = runner.serve(stream);

    EXPECT_EQ(r.metrics.countOf("frames.processed"),
              r.report.framesProcessed);
    EXPECT_EQ(r.metrics.countOf("frames.in"), stream.size());
    EXPECT_EQ(r.metrics.countOf("frame.latency_sec"),
              r.report.framesProcessed);
    // Fleet totals really sum the shards.
    std::uint64_t per_shard = 0;
    for (const RuntimeReport &sr : r.report.shardReports)
        per_shard += sr.framesProcessed;
    EXPECT_EQ(r.metrics.countOf("frames.processed"), per_shard);
}

// ---------------------------------------------------------------
// Logging sink
// ---------------------------------------------------------------

TEST(LogSink, CapturesWarningsAndInforms)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink prev = setLogSink(
        [&captured](LogLevel level, const std::string &msg) {
            captured.emplace_back(level, msg);
        });

    warn("watch out: ", 42);
    inform("situation normal");

    setLogSink(std::move(prev)); // restore the default
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "watch out: 42");
    EXPECT_EQ(captured[1].first, LogLevel::Inform);
    EXPECT_EQ(captured[1].second, "situation normal");

    // After restore the capture list no longer grows.
    setLogQuiet(true); // keep test output clean
    warn("uncaptured");
    setLogQuiet(false);
    EXPECT_EQ(captured.size(), 2u);
}

TEST(LogSink, QuietSuppressesBeforeTheSink)
{
    std::vector<std::string> captured;
    LogSink prev = setLogSink(
        [&captured](LogLevel, const std::string &msg) {
            captured.push_back(msg);
        });
    setLogQuiet(true);
    warn("dropped");
    inform("also dropped");
    setLogQuiet(false);
    warn("kept");
    setLogSink(std::move(prev));
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "kept");
}

TEST(LogSink, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Inform), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Fatal), "fatal");
    EXPECT_STREQ(logLevelName(LogLevel::Panic), "panic");
}

// ---------------------------------------------------------------
// BoundedQueue depth sampling
// ---------------------------------------------------------------

TEST(ObsQueue, DepthCounterTracksOccupancy)
{
#ifdef HGPCN_TRACING_DISABLED
    GTEST_SKIP() << "instrumentation macros compiled out "
                    "(HGPCN_DISABLE_TRACING)";
#endif
    Tracer tracer;
    tracer.setEnabled(true);
    BoundedQueue<int> q(4);
    q.instrument(&tracer, "stage-in");
    ASSERT_EQ(q.push(1), PushOutcome::Pushed);
    ASSERT_EQ(q.push(2), PushOutcome::Pushed);
    ASSERT_EQ(q.push(3), PushOutcome::Pushed);
    (void)q.pop();
    (void)q.pop();

    std::vector<double> depths;
    for (const TraceEvent &ev : tracer.snapshot()) {
        ASSERT_EQ(ev.phase, TracePhase::Counter);
        ASSERT_EQ(ev.track, "queue:stage-in");
        ASSERT_EQ(ev.name, "depth");
        depths.push_back(ev.value);
    }
    // Wall timestamps are monotone within one thread, so the
    // canonical order preserves the operation order.
    EXPECT_EQ(depths,
              (std::vector<double>{1.0, 2.0, 3.0, 2.0, 1.0}));

    // Detached: no further samples.
    q.instrument(nullptr, "");
    (void)q.pop();
    EXPECT_EQ(tracer.eventCount(), 5u);
}

// ---------------------------------------------------------------
// Export format
// ---------------------------------------------------------------

TEST(TraceExport, ChromeJsonShape)
{
    Tracer tracer;
    tracer.setEnabled(true);
    TraceIds ids;
    ids.frame = 7;
    ids.sensor = 1;
    ids.shard = 0;
    tracer.span(TraceClock::Virtual, 0.5, 0.25, "exec:inference",
                "fpga", "shard0/inference", ids);
    tracer.instant(TraceClock::Virtual, 0.5, "place:shard0",
                   "placement", "serving/placement", ids);
    tracer.counter(TraceClock::Wall, 0.001, "depth",
                   "queue:inference", 3.0);

    const std::string json = chromeTraceJson(tracer.snapshot());
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // Virtual events on pid 1, wall on pid 2, with process names.
    EXPECT_NE(json.find("\"name\":\"virtual-time\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"wall-clock\""),
              std::string::npos);
    // The span: X phase, us units (0.5 s -> 500000), ids in args.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
    EXPECT_NE(json.find("\"frame\":7"), std::string::npos);
    // Instant and counter phases.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":3"), std::string::npos);

    // Clock filters drop whole processes.
    TraceExportOptions virtual_only;
    virtual_only.includeWall = false;
    const std::string no_wall =
        chromeTraceJson(tracer.snapshot(), virtual_only);
    EXPECT_EQ(no_wall.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(no_wall.find("\"ph\":\"X\""), std::string::npos);
}

} // namespace
} // namespace hgpcn
