/**
 * @file
 * Integration tests for the HgPCN engines and the end-to-end system.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/hgpcn_system.h"
#include "core/inference_engine.h"
#include "core/preprocessing_engine.h"
#include "datasets/kitti_like.h"
#include "datasets/modelnet_like.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

// ------------------------------------------------ PreprocessingEngine

TEST(PreprocessingEngine, ProducesKSampledPoints)
{
    const PreprocessingEngine engine;
    const PointCloud raw = randomCloud(20000, 1);
    const auto result = engine.process(raw, 512);
    EXPECT_EQ(result.sampled.size(), 512u);
    EXPECT_EQ(result.spt.size(), 512u);
    ASSERT_NE(result.tree, nullptr);
    EXPECT_EQ(result.tree->reorderedCloud().size(), raw.size());
}

TEST(PreprocessingEngine, SampledPointsComeFromRawCloud)
{
    const PreprocessingEngine engine;
    const PointCloud raw = randomCloud(5000, 2);
    const auto result = engine.process(raw, 128);
    // Every sampled coordinate must exist in the raw cloud.
    std::set<std::tuple<float, float, float>> raw_set;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const Vec3 &p = raw.position(static_cast<PointIndex>(i));
        raw_set.insert({p.x, p.y, p.z});
    }
    for (std::size_t i = 0; i < result.sampled.size(); ++i) {
        const Vec3 &p =
            result.sampled.position(static_cast<PointIndex>(i));
        EXPECT_TRUE(raw_set.count({p.x, p.y, p.z}));
    }
}

TEST(PreprocessingEngine, LatencyBreakdownPositive)
{
    const PreprocessingEngine engine;
    const auto result = engine.process(randomCloud(30000, 3), 1024);
    EXPECT_GT(result.octreeBuildSec, 0.0);
    EXPECT_GT(result.dsu.totalSec(), 0.0);
    EXPECT_NEAR(result.totalSec(),
                result.octreeBuildSec + result.dsu.totalSec(), 1e-12);
}

TEST(PreprocessingEngine, OctreeTableWithinOnChipBudget)
{
    // The Fig. 13 design point: a ~1e6-point frame's table must stay
    // around 10 Mb. Use 1e5 here for test speed: ~1 Mb.
    const PreprocessingEngine engine;
    const auto result = engine.process(randomCloud(100000, 4), 4096);
    EXPECT_LT(static_cast<double>(result.octreeTableBytes) * 8.0,
              13e6 / 10.0);
}

TEST(PreprocessingEngine, Deterministic)
{
    const PreprocessingEngine engine;
    const PointCloud raw = randomCloud(4000, 5);
    const auto a = engine.process(raw, 256);
    const auto b = engine.process(raw, 256);
    EXPECT_EQ(a.spt, b.spt);
}

// --------------------------------------------------- InferenceEngine

TEST(InferenceEngine, RunsVegInferenceEndToEnd)
{
    const PointNet2 net(tinyClassifier(), 42);
    const InferenceEngine engine;
    const PointCloud input = randomCloud(256, 6);
    const auto result = engine.run(net, input);
    EXPECT_EQ(result.output.logits.cols(), 5u);
    EXPECT_GT(result.dsu.pipelinedSec, 0.0);
    EXPECT_GT(result.fcu.totalSec(), 0.0);
    EXPECT_DOUBLE_EQ(result.totalSec(),
                     std::max(result.dsu.pipelinedSec,
                              result.fcu.totalSec()));
}

TEST(InferenceEngine, StageBreakdownPopulated)
{
    const PointNet2 net(tinyClassifier(), 42);
    const InferenceEngine engine;
    const auto result = engine.run(net, randomCloud(256, 7));
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kStageCount; ++s)
        total += result.dsu.stageCycles[s];
    EXPECT_GT(total, 0u);
}

TEST(InferenceEngine, BruteDsFallbackStillTimed)
{
    InferenceEngine::Config cfg;
    cfg.ds = DsMethod::BruteKnn;
    const InferenceEngine engine(cfg);
    const PointNet2 net(tinyClassifier(), 42);
    const auto result = engine.run(net, randomCloud(256, 8));
    EXPECT_GT(result.dsu.pipelinedSec, 0.0);
}

TEST(InferenceEngine, ReusesPreprocessingOctree)
{
    const PointNet2 net(tinyClassifier(), 42);
    const InferenceEngine engine;
    const PointCloud raw = randomCloud(256, 9);
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 8;
    Octree tree = Octree::build(raw, tree_cfg);
    const auto result =
        engine.run(net, tree.reorderedCloud(), &tree);
    EXPECT_EQ(result.output.logits.cols(), 5u);
    ASSERT_FALSE(result.output.trace.gathers.empty());
    EXPECT_EQ(
        result.output.trace.gathers[0].stats.get("octree.host_reads"),
        0u);
}

// ------------------------------------------------------ HgPcnSystem

TEST(HgPcnSystem, ProcessFrameEndToEnd)
{
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const auto result = system.processFrame(randomCloud(10000, 10));
    EXPECT_EQ(result.preprocess.sampled.size(), 256u);
    EXPECT_GT(result.totalSec(), 0.0);
    EXPECT_GT(result.fps(), 0.0);
    EXPECT_NEAR(result.totalSec(),
                result.preprocess.totalSec() +
                    result.inference.totalSec(),
                1e-12);
}

TEST(HgPcnSystem, PreprocessingDominatedByBuildNotSampling)
{
    // The OIS promise: after the build pass, sampling itself touches
    // host memory only K times, so build >> sampling on big frames.
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const auto result = system.processFrame(randomCloud(50000, 11));
    EXPECT_GT(result.preprocess.octreeBuildSec,
              result.preprocess.dsu.descentSec);
}

TEST(HgPcnSystem, StreamReportRealTimeCheck)
{
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 250; // small frames for test speed
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < 3; ++f)
        frames.push_back(lidar.generate(f));

    PointNet2Spec spec = tinyClassifier();
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, spec);
    const StreamReport report = system.processStream(frames);
    EXPECT_EQ(report.frames, 3u);
    EXPECT_GT(report.meanLatencySec, 0.0);
    EXPECT_GE(report.maxLatencySec, report.meanLatencySec);
    EXPECT_NEAR(report.generationFps, 10.0, 0.5);
    EXPECT_EQ(report.realTime,
              report.meanFps >= report.generationFps
                  ? RealTimeVerdict::Yes
                  : RealTimeVerdict::No);
}

TEST(HgPcnSystem, UnstampedStreamHasNoGenerationRate)
{
    // Non-LiDAR generators leave timestamps at 0.0: no sensor rate
    // is derivable, so the real-time verdicts are NotApplicable —
    // not the seed's vacuous YES, and not a fatal "non-monotonic
    // stream" error.
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 250;
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < 2; ++f) {
        frames.push_back(lidar.generate(f));
        frames.back().timestamp = 0.0;
    }
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const StreamReport report = system.processStream(frames);
    EXPECT_DOUBLE_EQ(report.generationFps, 0.0);
    EXPECT_EQ(report.realTime, RealTimeVerdict::NotApplicable);
    EXPECT_EQ(report.pipelinedRealTime,
              RealTimeVerdict::NotApplicable);
}

TEST(HgPcnSystem, PipelinedFpsMatchesSingleWorkerRunner)
{
    // The legacy analytical two-stage recurrence (CPU builds frame
    // i+1 while the FPGA down-samples + infers frame i) must be
    // reproduced by a single-worker StreamRunner schedule. 5% is
    // the acceptance tolerance; the schedules should in fact agree
    // to rounding.
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 250;
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < 4; ++f)
        frames.push_back(lidar.generate(f));

    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());

    double cpu_free = 0.0, fpga_done = 0.0;
    for (const Frame &frame : frames) {
        const E2eResult r = system.processFrame(frame.cloud);
        cpu_free += r.preprocess.octreeBuildSec;
        fpga_done = std::max(fpga_done, cpu_free) +
                    r.preprocess.dsu.totalSec() +
                    r.inference.totalSec();
    }
    const double analytic =
        static_cast<double>(frames.size()) / fpga_done;

    const StreamReport report = system.processStream(frames);
    EXPECT_NEAR(report.pipelinedFps, analytic, analytic * 0.05);
    EXPECT_NEAR(report.pipelinedFps, analytic, analytic * 1e-9);

    // Same number through the runner API directly.
    StreamRunner runner(
        system.preprocessor(), system.inferencer(), system.model(),
        StreamRunner::compat(frames.size(),
                             system.config().inputPoints));
    const RuntimeResult rt = runner.run(frames);
    EXPECT_NEAR(rt.report.sustainedFps, analytic, analytic * 1e-9);
}

TEST(HgPcnSystem, LargerFramesCostMorePreprocessing)
{
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const auto small = system.processFrame(randomCloud(5000, 12));
    const auto large = system.processFrame(randomCloud(50000, 13));
    EXPECT_GT(large.preprocess.totalSec(),
              small.preprocess.totalSec());
}

} // namespace
} // namespace hgpcn
