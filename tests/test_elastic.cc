/**
 * @file
 * Tests for the elastic serving layer: the autoscaler state
 * machine (hand-computed hysteresis/cooldown transitions),
 * admission-control shed sets, the epoch report-merge arithmetic,
 * the seeded traffic generator, deterministic replay of a full
 * elastic serve, per-sensor ordering across scale events and the
 * ShardedRunner resize/stop regression paths. The concurrency
 * cases run under ThreadSanitizer and AddressSanitizer in CI
 * (.github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "datasets/traffic_gen.h"
#include "serving/admission.h"
#include "serving/autoscaler.h"
#include "serving/serving_report.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

/** Random cloud with enough points for the tiny classifier. */
Frame
tinyFrame(double stamp, std::uint64_t seed)
{
    Frame frame;
    frame.timestamp = stamp;
    Rng rng(seed);
    frame.cloud.reserve(300);
    for (std::size_t p = 0; p < 300; ++p) {
        frame.cloud.add({rng.uniform(0.0f, 10.0f),
                         rng.uniform(0.0f, 10.0f),
                         rng.uniform(0.0f, 3.0f)});
    }
    return frame;
}

/**
 * Stream with a per-epoch frame count per sensor: epoch e emits
 * framesPerEpoch[e] frames for *each* sensor, evenly spaced, with
 * per-sensor phase offsets keeping stamps distinct.
 */
SensorStream
phasedStream(std::size_t sensors, double epoch_sec,
             const std::vector<std::size_t> &frames_per_epoch)
{
    std::vector<std::pair<double, std::size_t>> order;
    for (std::size_t e = 0; e < frames_per_epoch.size(); ++e) {
        for (std::size_t s = 0; s < sensors; ++s) {
            const std::size_t k = frames_per_epoch[e];
            for (std::size_t i = 0; i < k; ++i) {
                const double phase =
                    static_cast<double>(s + 1) /
                    static_cast<double>(sensors + 1);
                const double t =
                    epoch_sec *
                    (static_cast<double>(e) +
                     (static_cast<double>(i) + phase) /
                         static_cast<double>(k));
                order.push_back({t, s});
            }
        }
    }
    std::sort(order.begin(), order.end());
    SensorStream stream;
    stream.sensorCount = sensors;
    for (std::size_t i = 0; i < order.size(); ++i) {
        stream.frames.push_back(
            tinyFrame(order[i].first, 77 + i));
        stream.sensors.push_back(order[i].second);
    }
    return stream;
}

EpochSignals
signals(std::size_t shards, double util, double offered = 0.0,
        double sustained = 0.0, std::size_t backlog = 0)
{
    EpochSignals sig;
    sig.activeShards = shards;
    sig.utilization = util;
    sig.offeredFps = offered;
    sig.sustainedFps = sustained;
    sig.backlogFrames = backlog;
    return sig;
}

// -------------------------------------------------------- Autoscaler

TEST(Autoscaler, ScalesUpOnUtilizationAfterHold)
{
    AutoscalerConfig cfg;
    cfg.minShards = 1;
    cfg.maxShards = 4;
    cfg.upHoldEpochs = 2;
    cfg.cooldownEpochs = 0;
    Autoscaler scaler(cfg);

    // First overloaded epoch: 1/2 — hold.
    ScaleDecision d = scaler.step(signals(2, 0.90));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.shards, 2u);
    // Second consecutive: fire.
    d = scaler.step(signals(2, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Up);
    EXPECT_EQ(d.shards, 3u);
    // Counters reset by the action: next overloaded epoch is 1/2.
    d = scaler.step(signals(3, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Hold);
}

TEST(Autoscaler, CooldownBlocksButAccumulates)
{
    AutoscalerConfig cfg;
    cfg.maxShards = 8;
    cfg.upHoldEpochs = 1;
    cfg.cooldownEpochs = 2;
    Autoscaler scaler(cfg);

    ScaleDecision d = scaler.step(signals(1, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Up);
    EXPECT_EQ(d.shards, 2u);
    // Two cooldown boundaries pass with no action...
    d = scaler.step(signals(2, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.reason, "cooldown");
    d = scaler.step(signals(2, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.reason, "cooldown");
    // ...but the overload counter accumulated through them, so the
    // next boundary acts immediately.
    d = scaler.step(signals(2, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Up);
    EXPECT_EQ(d.shards, 3u);
}

TEST(Autoscaler, ScaleDownNeedsConsecutiveUnderload)
{
    AutoscalerConfig cfg;
    cfg.minShards = 1;
    cfg.downHoldEpochs = 2;
    cfg.cooldownEpochs = 0;
    Autoscaler scaler(cfg);

    ScaleDecision d = scaler.step(signals(3, 0.10));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    // A steady epoch (between the thresholds) resets the counter.
    d = scaler.step(signals(3, 0.50));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.reason, "steady");
    d = scaler.step(signals(3, 0.10));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    d = scaler.step(signals(3, 0.10));
    EXPECT_EQ(d.action, ScaleAction::Down);
    EXPECT_EQ(d.shards, 2u);
}

TEST(Autoscaler, BacklogAndFallingBehindCountAsOverload)
{
    AutoscalerConfig cfg;
    cfg.upHoldEpochs = 1;
    cfg.cooldownEpochs = 0;
    cfg.behindTolerance = 0.05;

    // Backlog alone, at low occupancy: 9 > 4 per-shard tolerance.
    // (3 in-flight frames would be normal pipeline depth — Hold.)
    Autoscaler a(cfg);
    ScaleDecision d = a.step(signals(1, 0.50, 10.0, 10.0, 9));
    EXPECT_EQ(d.action, ScaleAction::Up);
    Autoscaler a2(cfg);
    d = a2.step(signals(1, 0.50, 10.0, 10.0, 3));
    EXPECT_EQ(d.action, ScaleAction::Hold);

    // Falling behind alone: sustained 9 < offered 10 * 0.95.
    Autoscaler b(cfg);
    d = b.step(signals(1, 0.20, 10.0, 9.0));
    EXPECT_EQ(d.action, ScaleAction::Up);

    // Within tolerance: sustained 9.6 >= 9.5 — not overloaded, and
    // util 0.20 < 0.35 makes it underloaded instead.
    Autoscaler c(cfg);
    d = c.step(signals(1, 0.20, 10.0, 9.6));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.reason, "underloaded 1/2");
}

TEST(Autoscaler, ClampsAtFleetBounds)
{
    AutoscalerConfig cfg;
    cfg.minShards = 2;
    cfg.maxShards = 3;
    cfg.upHoldEpochs = 1;
    cfg.downHoldEpochs = 1;
    cfg.cooldownEpochs = 0;
    Autoscaler scaler(cfg);

    ScaleDecision d = scaler.step(signals(3, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.reason, "overloaded at maxShards");
    d = scaler.step(signals(2, 0.05));
    EXPECT_EQ(d.action, ScaleAction::Hold);
    EXPECT_EQ(d.reason, "underloaded at minShards");
    // upStep larger than the remaining room clamps to maxShards.
    AutoscalerConfig wide = cfg;
    wide.upStep = 5;
    Autoscaler w(wide);
    d = w.step(signals(2, 0.95));
    EXPECT_EQ(d.action, ScaleAction::Up);
    EXPECT_EQ(d.shards, 3u);
}

// --------------------------------------------------------- Admission

TEST(Admission, AdmitsEverythingUnderCapacity)
{
    AdmissionConfig cfg;
    cfg.headroom = 0.9;
    const ShedDecision d = decideAdmission(
        {2.0, 3.0, 1.0}, {}, 10.0, cfg);
    EXPECT_TRUE(d.shedSensors.empty());
    EXPECT_EQ(d.admitted, std::vector<bool>({true, true, true}));
    EXPECT_DOUBLE_EQ(d.admittedFps, 6.0);
    EXPECT_DOUBLE_EQ(d.shedFps, 0.0);
}

TEST(Admission, ShedsLowestPriorityFirstThenHighestId)
{
    AdmissionConfig cfg;
    cfg.headroom = 1.0;
    // Four 1-fps sensors, priorities 1,0,0,2; capacity 2 fps.
    // Shed order: tier 0 highest id first (2), then (1); load now
    // fits (2 <= 2), so the tier-1 sensor survives.
    const ShedDecision d = decideAdmission(
        {1.0, 1.0, 1.0, 1.0}, {1, 0, 0, 2}, 2.0, cfg);
    EXPECT_EQ(d.shedSensors,
              std::vector<std::size_t>({1, 2}));
    EXPECT_EQ(d.admitted,
              std::vector<bool>({true, false, false, true}));
    EXPECT_DOUBLE_EQ(d.admittedFps, 2.0);
    EXPECT_DOUBLE_EQ(d.shedFps, 2.0);
}

TEST(Admission, KeepsAtLeastOneLoadedSensor)
{
    AdmissionConfig cfg;
    // Zero capacity: everything would shed — the survivor is the
    // last in shed order: highest priority, lowest id within it.
    const ShedDecision d = decideAdmission(
        {1.0, 1.0, 1.0}, {0, 2, 2}, 0.0, cfg);
    EXPECT_EQ(d.shedSensors, std::vector<std::size_t>({0, 2}));
    EXPECT_EQ(d.admitted,
              std::vector<bool>({false, true, false}));
}

TEST(Admission, IdleSensorsNeverShed)
{
    AdmissionConfig cfg;
    // Sensors 0 and 2 are idle: shedding them frees nothing, so
    // they stay admitted even at zero capacity.
    const ShedDecision d = decideAdmission(
        {0.0, 5.0, 0.0, 5.0}, {}, 0.0, cfg);
    EXPECT_EQ(d.shedSensors, std::vector<std::size_t>({3}));
    EXPECT_EQ(d.admitted,
              std::vector<bool>({true, true, true, false}));
}

TEST(Admission, DisabledAdmitsEverything)
{
    AdmissionConfig cfg;
    cfg.enabled = false;
    const ShedDecision d = decideAdmission(
        {9.0, 9.0}, {}, 1.0, cfg);
    EXPECT_TRUE(d.shedSensors.empty());
    EXPECT_DOUBLE_EQ(d.admittedFps, 18.0);
}

// --------------------------------------------- mergeEpochResults

/** Hand-built two-epoch merge: 5 frames, 2 sensors, a completion
 * straddling the epoch boundary (backlog), one cross-epoch
 * out-of-order completion (exercises the in-order clamp) and one
 * shed frame. */
TEST(EpochMerge, HandComputedArithmetic)
{
    SensorStream stream;
    stream.sensorCount = 2;
    const double stamps[] = {0.1, 0.2, 1.1, 1.15, 1.3};
    const std::size_t tags[] = {0, 1, 0, 1, 0};
    for (std::size_t i = 0; i < 5; ++i) {
        Frame frame;
        frame.name = "f" + std::to_string(i);
        frame.timestamp = stamps[i];
        stream.frames.push_back(std::move(frame));
        stream.sensors.push_back(tags[i]);
    }

    auto served = [](std::size_t local, std::size_t shard,
                     double done, double lat) {
        ServedFrame sf;
        sf.globalIndex = local;
        sf.shard = shard;
        sf.doneSec = done;
        sf.latencySec = lat;
        return sf;
    };

    std::vector<EpochOutcome> epochs(2);
    // Epoch 0 [0,1): frames 0,1 on shard 0; frame 1 completes at
    // 1.5 — past the boundary.
    epochs[0].startSec = 0.0;
    epochs[0].endSec = 1.0;
    epochs[0].activeShards = 1;
    epochs[0].globalIndex = {0, 1};
    epochs[0].result.frames = {served(0, 0, 0.5, 0.4),
                               served(1, 0, 1.5, 1.3)};
    {
        ServingReport &r = epochs[0].result.report;
        r.framesIn = 2;
        r.framesProcessed = 2;
        r.paced = true;
        r.shardReports.resize(1);
        r.shardReports[0].framesIn = 2;
        r.shardReports[0].framesProcessed = 2;
        r.shardReports[0].makespanSec = 1.4;
    }
    // Epoch 1 [1,2): frames 2 (s0, shard 0) and 3 (s1, shard 1)
    // admitted, frame 4 (s0) shed. Frame 3 completes at 1.2 —
    // *before* sensor 1's epoch-0 frame finished at 1.5.
    epochs[1].startSec = 1.0;
    epochs[1].endSec = 2.0;
    epochs[1].activeShards = 2;
    epochs[1].globalIndex = {2, 3};
    epochs[1].shedGlobalIndex = {4};
    epochs[1].result.frames = {served(0, 0, 1.4, 0.3),
                               served(1, 1, 1.2, 0.1)};
    {
        ServingReport &r = epochs[1].result.report;
        r.framesIn = 2;
        r.framesProcessed = 2;
        r.paced = true;
        r.shardReports.resize(2);
        r.shardReports[0].framesIn = 1;
        r.shardReports[0].framesProcessed = 1;
        r.shardReports[0].makespanSec = 0.3;
        r.shardReports[1].framesIn = 1;
        r.shardReports[1].framesProcessed = 1;
        r.shardReports[1].makespanSec = 0.1;
    }

    const ServingResult out = mergeEpochResults(
        stream, std::move(epochs), PlacementPolicy::HashBySensor,
        {"hgpcn", "hgpcn"});
    const ServingReport &rep = out.report;

    // Conservation: 5 = 4 processed + 1 shed.
    EXPECT_EQ(rep.framesIn, 5u);
    EXPECT_EQ(rep.framesProcessed, 4u);
    EXPECT_EQ(rep.framesDropped, 0u);
    EXPECT_EQ(rep.framesAbandoned, 0u);
    EXPECT_EQ(rep.framesShed, 1u);
    EXPECT_EQ(rep.shardCount, 2u);
    EXPECT_TRUE(rep.paced);

    // The in-order clamp: sensor 1's epoch-1 frame cannot deliver
    // before its epoch-0 predecessor (1.5); the wait joins its
    // latency (0.1 + 0.3).
    ASSERT_EQ(out.frames.size(), 4u);
    const ServedFrame *g3 = nullptr;
    for (const ServedFrame &sf : out.frames) {
        if (sf.globalIndex == 3)
            g3 = &sf;
    }
    ASSERT_NE(g3, nullptr);
    EXPECT_DOUBLE_EQ(g3->doneSec, 1.5);
    EXPECT_DOUBLE_EQ(g3->latencySec, 0.4);
    EXPECT_EQ(g3->sensor, 1u);
    EXPECT_EQ(g3->sensorIndex, 1u);

    // Global completion order: ties on doneSec break by stream
    // position (frame 1 at 1.5 precedes frame 3 at 1.5).
    EXPECT_EQ(out.frames[0].globalIndex, 0u);
    EXPECT_EQ(out.frames[1].globalIndex, 2u);
    EXPECT_EQ(out.frames[2].globalIndex, 1u);
    EXPECT_EQ(out.frames[3].globalIndex, 3u);

    // Aggregate: makespan = first stamp 0.1 -> last delivery 1.5;
    // latencies {0.4, 1.3, 0.3, 0.4} -> p50 0.4, max 1.3.
    EXPECT_NEAR(rep.makespanSec, 1.4, 1e-12);
    EXPECT_NEAR(rep.sustainedFps, 4.0 / 1.4, 1e-12);
    EXPECT_DOUBLE_EQ(rep.p50LatencySec, 0.4);
    EXPECT_DOUBLE_EQ(rep.maxLatencySec, 1.3);

    // Per-shard aggregation across epochs: shard 0 served both
    // epochs (counts sum, spans sum), shard 1 only epoch 1.
    ASSERT_EQ(rep.shardReports.size(), 2u);
    EXPECT_EQ(rep.shardReports[0].framesProcessed, 3u);
    EXPECT_NEAR(rep.shardReports[0].makespanSec, 1.7, 1e-12);
    EXPECT_EQ(rep.shardReports[1].framesProcessed, 1u);

    // Per-sensor slices: shed is attributed to sensor 0.
    ASSERT_EQ(rep.sensors.size(), 2u);
    EXPECT_EQ(rep.sensors[0].framesIn, 3u);
    EXPECT_EQ(rep.sensors[0].framesDone, 2u);
    EXPECT_EQ(rep.sensors[0].framesMissed, 1u);
    EXPECT_EQ(rep.sensors[0].framesShed, 1u);
    EXPECT_EQ(rep.sensors[1].framesIn, 2u);
    EXPECT_EQ(rep.sensors[1].framesDone, 2u);
    EXPECT_EQ(rep.sensors[1].framesShed, 0u);

    // Per-backend view: one backend spanning both shards.
    ASSERT_EQ(rep.backends.size(), 1u);
    EXPECT_EQ(rep.backends[0].backend, "hgpcn");
    EXPECT_EQ(rep.backends[0].shards, 2u);
    EXPECT_EQ(rep.backends[0].framesDone, 4u);
}

// -------------------------------------------------------- TrafficGen

TEST(TrafficGen, DeterministicAndStrictlyIncreasing)
{
    TrafficGen::Config cfg;
    cfg.sensors = 8;
    cfg.durationSec = 3.0;
    cfg.baseRateHz = 5.0;
    cfg.rateJitter = 0.3;
    cfg.burstFactor = 3.0;
    cfg.diurnalAmplitude = 0.4;
    cfg.hotPlugFraction = 0.4;
    cfg.dropFraction = 0.3;
    cfg.priorityTiers = 3;
    cfg.cloudPoints = 32;
    cfg.seed = 42;
    const TrafficGen gen(cfg);

    const TrafficTrace a = gen.generate();
    const TrafficTrace b = gen.generate();
    ASSERT_GT(a.stream.size(), 0u);
    ASSERT_EQ(a.stream.size(), b.stream.size());
    for (std::size_t i = 0; i < a.stream.size(); ++i) {
        EXPECT_EQ(a.stream.frames[i].timestamp,
                  b.stream.frames[i].timestamp);
        EXPECT_EQ(a.stream.sensors[i], b.stream.sensors[i]);
        EXPECT_EQ(a.stream.frames[i].name,
                  b.stream.frames[i].name);
    }
    // Strict global monotonicity (hence per-sensor too).
    for (std::size_t i = 1; i < a.stream.size(); ++i) {
        EXPECT_LT(a.stream.frames[i - 1].timestamp,
                  a.stream.frames[i].timestamp);
    }
    // Churn windows honored (nudges move stamps forward <= 0.1 us
    // each; give them a millisecond of slack).
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        const std::vector<Frame> frames =
            a.stream.framesOfSensor(s);
        for (const Frame &frame : frames) {
            EXPECT_GE(frame.timestamp, gen.joinSecOf(s));
            EXPECT_LT(frame.timestamp,
                      gen.leaveSecOf(s) + 1e-3);
        }
    }
    // Priorities land in the configured tiers.
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        EXPECT_GE(a.priority[s], 0);
        EXPECT_LT(a.priority[s],
                  static_cast<int>(cfg.priorityTiers));
    }
}

TEST(TrafficGen, RateEnvelopeBoundsArrivalGaps)
{
    TrafficGen::Config cfg;
    cfg.sensors = 4;
    cfg.durationSec = 4.0;
    cfg.baseRateHz = 10.0;
    cfg.rateJitter = 0.2;
    cfg.burstFactor = 2.5;
    cfg.diurnalAmplitude = 0.3;
    cfg.cloudPoints = 16;
    cfg.seed = 7;
    const TrafficGen gen(cfg);
    const TrafficTrace trace = gen.generate();

    // rateAt stays inside the closed-form envelope when active.
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        for (double t = 0.05; t < cfg.durationSec; t += 0.31) {
            const double r = gen.rateAt(s, t);
            if (r > 0.0) {
                EXPECT_GE(r, gen.minRateHz() - 1e-12);
                EXPECT_LE(r, gen.maxRateHz() + 1e-12);
            }
        }
    }
    // Arrival gaps stay inside the jittered envelope.
    const double min_gap =
        (1.0 / gen.maxRateHz()) * (1.0 - cfg.rateJitter) - 1e-3;
    const double max_gap =
        (1.0 / gen.minRateHz()) * (1.0 + cfg.rateJitter) + 1e-3;
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        const std::vector<Frame> frames =
            trace.stream.framesOfSensor(s);
        for (std::size_t f = 1; f < frames.size(); ++f) {
            const double gap = frames[f].timestamp -
                               frames[f - 1].timestamp;
            EXPECT_GE(gap, min_gap);
            EXPECT_LE(gap, max_gap);
        }
    }
}

// ------------------------------------------- ShardedRunner elasticity

TEST(ShardedElastic, ResizeAndStopUseActiveCountNotConfig)
{
    HgPcnSystem::Config system;
    ShardedRunner::Config cfg;
    cfg.shards = 2;
    ShardedRunner runner(system, tinyClassifier(), cfg);
    EXPECT_EQ(runner.shardCount(), 2u);

    // Shrink below the construction-time count: the stop paths
    // must range over the *active* prefix (1 shard), not
    // Config::shards (2) — this was the regression.
    runner.setShardCount(1);
    EXPECT_EQ(runner.shardCount(), 1u);
    runner.requestStop();

    // Grow past the construction-time count and serve: new shards
    // are built on demand, and a pre-serve fleet stop belongs to
    // the serve it aborted, not this one.
    runner.setShardCount(4);
    EXPECT_EQ(runner.shardCount(), 4u);
    SensorStream stream = phasedStream(4, 1.0, {3});
    ServingResult out = runner.serve(stream);
    EXPECT_EQ(out.report.shardCount, 4u);
    EXPECT_EQ(out.report.framesProcessed, stream.size());
    EXPECT_EQ(out.report.framesAbandoned, 0u);

    // Per-shard stop on a grown shard index is valid...
    runner.requestStopShard(3);
    // ...and parking + reactivating it clears the latch: the next
    // serve processes everything.
    runner.setShardCount(2);
    runner.setShardCount(4);
    out = runner.serve(stream);
    EXPECT_EQ(out.report.framesProcessed, stream.size());
    EXPECT_EQ(out.report.framesAbandoned, 0u);

    // Out-of-range stop is fatal at the *active* bound.
    runner.setShardCount(2);
    EXPECT_DEATH(runner.requestStopShard(2), "out of range");
}

// ------------------------------------------------------ ElasticRunner

ElasticRunner::Config
tinyElasticConfig(double epoch_sec, std::size_t initial_shards)
{
    ElasticRunner::Config cfg;
    cfg.epochSec = epoch_sec;
    cfg.fleet.shards = initial_shards;
    cfg.autoscaler.minShards = 1;
    cfg.autoscaler.maxShards = 4;
    cfg.autoscaler.upHoldEpochs = 1;
    cfg.autoscaler.downHoldEpochs = 2;
    cfg.autoscaler.cooldownEpochs = 1;
    cfg.admission.enabled = false;
    return cfg;
}

TEST(ElasticRunner, ScaleEventsPreservePerSensorOrdering)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    // Calibrate the traffic to the modeled service time so the
    // load pattern (2 heavy epochs, then 4 light) is
    // machine-independent: heavy epochs offer ~2x one shard's
    // modeled capacity, light epochs ~0.2x.
    ElasticRunner probe(system, spec,
                        tinyElasticConfig(1.0, 1));
    const double svc =
        probe.fleet().shardBackend(0).estimateServiceSec();
    ASSERT_GT(svc, 0.0);
    // 24 service-times per epoch; heavy epochs offer 24 frames per
    // sensor x 3 sensors = 3x one shard's modeled capacity (the
    // backlog signal fires no matter how the stages pipeline),
    // light epochs 3 frames total (~0.1x — underloaded).
    const double epoch_sec = 24.0 * svc;
    const std::size_t sensors = 3;
    const SensorStream stream = phasedStream(
        sensors, epoch_sec, {24, 24, 1, 1, 1, 1});

    ElasticRunner elastic(system, spec,
                          tinyElasticConfig(epoch_sec, 1));
    const ElasticResult result = elastic.serve(stream);

    // The overloaded prefix forces a scale-up, the idle tail a
    // scale-down.
    bool saw_up = false;
    bool saw_down = false;
    for (const ScaleEvent &event : result.events) {
        if (event.action == ScaleAction::Up)
            saw_up = true;
        if (event.action == ScaleAction::Down)
            saw_down = true;
        EXPECT_NE(event.fromShards, event.toShards);
    }
    EXPECT_TRUE(saw_up) << result.decisionLog();
    EXPECT_TRUE(saw_down) << result.decisionLog();

    // Per-sensor delivery stays in capture order across every
    // reconfiguration, with non-decreasing completion times.
    std::map<std::size_t, std::size_t> next_index;
    std::map<std::size_t, double> last_done;
    for (const ServedFrame &sf : result.serving.frames) {
        auto it = next_index.find(sf.sensor);
        if (it != next_index.end()) {
            EXPECT_GT(sf.sensorIndex, it->second)
                << "sensor " << sf.sensor;
            EXPECT_GE(sf.doneSec, last_done[sf.sensor]);
        }
        next_index[sf.sensor] = sf.sensorIndex;
        last_done[sf.sensor] = sf.doneSec;
    }

    // Conservation across the elastic serve.
    const ServingReport &rep = result.serving.report;
    EXPECT_EQ(rep.framesIn,
              rep.framesProcessed + rep.framesDropped +
                  rep.framesAbandoned + rep.framesShed);

    // Shard-seconds track the width trajectory exactly.
    double expected = 0.0;
    for (const EpochLog &ep : result.epochs)
        expected += static_cast<double>(ep.activeShards) *
                    epoch_sec;
    EXPECT_DOUBLE_EQ(result.shardSeconds, expected);
}

TEST(ElasticRunner, ReplayIsDeterministicAndReusable)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    TrafficGen::Config traffic;
    traffic.sensors = 5;
    traffic.durationSec = 3.0;
    traffic.baseRateHz = 4.0;
    traffic.burstFactor = 2.0;
    traffic.diurnalAmplitude = 0.3;
    traffic.hotPlugFraction = 0.4;
    traffic.dropFraction = 0.4;
    traffic.priorityTiers = 2;
    traffic.cloudPoints = 300;
    traffic.seed = 11;
    const TrafficTrace trace = TrafficGen(traffic).generate();
    ASSERT_GT(trace.stream.size(), 0u);

    ElasticRunner::Config cfg = tinyElasticConfig(1.0, 2);
    cfg.admission.enabled = true;

    // Same trace through two independent runners AND through the
    // same runner twice: identical decisions, events and report.
    ElasticRunner a(system, spec, cfg);
    ElasticRunner b(system, spec, cfg);
    const ElasticResult r1 = a.serve(trace.stream,
                                     trace.priority);
    const ElasticResult r2 = b.serve(trace.stream,
                                     trace.priority);
    const ElasticResult r3 = a.serve(trace.stream,
                                     trace.priority);

    EXPECT_EQ(r1.decisionLog(), r2.decisionLog());
    EXPECT_EQ(r1.decisionLog(), r3.decisionLog());
    EXPECT_EQ(r1.events.size(), r2.events.size());
    EXPECT_EQ(r1.serving.report.toString(),
              r2.serving.report.toString());
    EXPECT_EQ(r1.serving.report.toString(),
              r3.serving.report.toString());
    ASSERT_EQ(r1.serving.frames.size(),
              r2.serving.frames.size());
    for (std::size_t i = 0; i < r1.serving.frames.size(); ++i) {
        EXPECT_EQ(r1.serving.frames[i].globalIndex,
                  r2.serving.frames[i].globalIndex);
        EXPECT_EQ(r1.serving.frames[i].doneSec,
                  r2.serving.frames[i].doneSec);
        EXPECT_EQ(r1.serving.frames[i].latencySec,
                  r2.serving.frames[i].latencySec);
    }

    // A churned-out sensor that offered nothing gets
    // NotApplicable, never a vacuous YES.
    for (const SensorServingReport &sr :
         r1.serving.report.sensors) {
        if (sr.framesIn == 0) {
            EXPECT_EQ(sr.realTime,
                      RealTimeVerdict::NotApplicable);
        }
    }
}

TEST(ElasticRunner, AdmissionShedsExactLowestPrioritySet)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    // Freeze the fleet at 1 shard and pin the capacity model:
    // 1 / 0.5 s = 2 fps, 0.9 headroom -> 1.8 fps budget. Three
    // sensors offer 2 fps each (4 frames / 2 s epoch): admission
    // must shed down to one sensor, lowest priority first — sensor
    // 1 (priority 0), then sensor 2 (priority 1, higher id than
    // nothing else in its tier), keeping sensor 0 (priority 2).
    ElasticRunner::Config cfg;
    cfg.epochSec = 2.0;
    cfg.fleet.shards = 1;
    cfg.fleet.assumedServiceSec = 0.5;
    cfg.autoscaler.minShards = 1;
    cfg.autoscaler.maxShards = 1;
    cfg.admission.enabled = true;
    cfg.admission.headroom = 0.9;

    const SensorStream stream = phasedStream(3, 2.0, {4});
    ElasticRunner elastic(system, spec, cfg);
    const ElasticResult result =
        elastic.serve(stream, {2, 0, 1});

    ASSERT_EQ(result.epochs.size(), 1u);
    EXPECT_EQ(result.epochs[0].shedSensors,
              (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(result.epochs[0].framesShed, 8u);
    EXPECT_EQ(result.epochs[0].framesAdmitted, 4u);

    const ServingReport &rep = result.serving.report;
    EXPECT_EQ(rep.framesShed, 8u);
    EXPECT_EQ(rep.sensors[0].framesShed, 0u);
    EXPECT_EQ(rep.sensors[1].framesShed, 4u);
    EXPECT_EQ(rep.sensors[2].framesShed, 4u);
    EXPECT_EQ(rep.sensors[1].framesDone, 0u);
    EXPECT_EQ(rep.framesIn,
              rep.framesProcessed + rep.framesDropped +
                  rep.framesAbandoned + rep.framesShed);
}

} // namespace
} // namespace hgpcn
