/**
 * @file
 * Unit and property tests for the Octree spatial index: build
 * invariants, SFC organization, table lookups, farthest-voxel
 * descent and live-point bookkeeping.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "octree/octree.h"
#include "octree/octree_table.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed, float lo = 0.0f,
            float hi = 1.0f)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(lo, hi), rng.uniform(lo, hi),
                   rng.uniform(lo, hi)});
    }
    return cloud;
}

Octree::Config
config(int depth, std::uint32_t leaf_capacity)
{
    Octree::Config cfg;
    cfg.maxDepth = depth;
    cfg.leafCapacity = leaf_capacity;
    return cfg;
}

// ----------------------------------------------------- build invariants

TEST(OctreeBuild, RootCoversAllPoints)
{
    const PointCloud cloud = randomCloud(500, 1);
    const Octree tree = Octree::build(cloud, config(6, 8));
    EXPECT_EQ(tree.node(0).pointBegin, 0u);
    EXPECT_EQ(tree.node(0).pointEnd, 500u);
    EXPECT_EQ(tree.node(0).level, 0);
}

TEST(OctreeBuild, ReorderedCloudIsPermutationOfInput)
{
    const PointCloud cloud = randomCloud(300, 2);
    const Octree tree = Octree::build(cloud, config(6, 8));
    const auto &perm = tree.permutation();
    std::set<PointIndex> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), cloud.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        EXPECT_EQ(tree.reorderedCloud()
                      .position(static_cast<PointIndex>(i))
                      .x,
                  cloud.position(perm[i]).x);
    }
}

TEST(OctreeBuild, PointCodesAreSorted)
{
    const PointCloud cloud = randomCloud(1000, 3);
    const Octree tree = Octree::build(cloud, config(8, 4));
    const auto &codes = tree.pointCodes();
    for (std::size_t i = 1; i < codes.size(); ++i)
        EXPECT_LE(codes[i - 1], codes[i]);
}

TEST(OctreeBuild, EveryPointInExactlyOneLeaf)
{
    const PointCloud cloud = randomCloud(800, 4);
    const Octree tree = Octree::build(cloud, config(7, 8));
    std::vector<int> covered(cloud.size(), 0);
    for (const OctreeNode &node : tree.nodes()) {
        if (!node.isLeaf())
            continue;
        for (PointIndex i = node.pointBegin; i < node.pointEnd; ++i)
            ++covered[i];
    }
    for (int c : covered)
        EXPECT_EQ(c, 1);
}

TEST(OctreeBuild, ChildrenPartitionParentRange)
{
    const PointCloud cloud = randomCloud(600, 5);
    const Octree tree = Octree::build(cloud, config(6, 4));
    for (NodeIndex n = 0;
         n < static_cast<NodeIndex>(tree.nodes().size()); ++n) {
        const OctreeNode &node = tree.node(n);
        if (node.isLeaf())
            continue;
        PointIndex cursor = node.pointBegin;
        for (unsigned oct = 0; oct < 8; ++oct) {
            const NodeIndex child = tree.childAt(n, oct);
            if (child == kNoNode)
                continue;
            EXPECT_EQ(tree.node(child).pointBegin, cursor);
            cursor = tree.node(child).pointEnd;
        }
        EXPECT_EQ(cursor, node.pointEnd);
    }
}

TEST(OctreeBuild, ChildCodesExtendParentCode)
{
    const PointCloud cloud = randomCloud(400, 6);
    const Octree tree = Octree::build(cloud, config(6, 4));
    for (NodeIndex n = 0;
         n < static_cast<NodeIndex>(tree.nodes().size()); ++n) {
        const OctreeNode &node = tree.node(n);
        for (unsigned oct = 0; oct < 8; ++oct) {
            const NodeIndex child = tree.childAt(n, oct);
            if (child == kNoNode)
                continue;
            EXPECT_EQ(tree.node(child).code,
                      morton::child3(node.code, oct));
            EXPECT_EQ(tree.node(child).level, node.level + 1);
            EXPECT_EQ(tree.node(child).parent, n);
        }
    }
}

TEST(OctreeBuild, LeafCapacityRespectedAboveMaxDepth)
{
    const PointCloud cloud = randomCloud(2000, 7);
    const auto cfg = config(10, 16);
    const Octree tree = Octree::build(cloud, cfg);
    for (const OctreeNode &node : tree.nodes()) {
        if (node.isLeaf() && node.level < cfg.maxDepth) {
            EXPECT_LE(node.count(), cfg.leafCapacity);
        }
    }
}

TEST(OctreeBuild, DepthLimitedByMaxDepth)
{
    const PointCloud cloud = randomCloud(5000, 8);
    const Octree tree = Octree::build(cloud, config(4, 1));
    EXPECT_LE(tree.depth(), 4);
}

TEST(OctreeBuild, NonUniformCloudGrowsDeeperTree)
{
    // Paper Fig. 11: non-uniform clouds (MN.piano) build deeper
    // octrees than uniform ones (MN.plant).
    PointCloud uniform = randomCloud(4000, 9);
    PointCloud clustered = randomCloud(2000, 10);
    Rng rng(11);
    for (int i = 0; i < 2000; ++i) {
        clustered.add({0.5f + 0.001f * static_cast<float>(rng.normal()),
                       0.5f + 0.001f * static_cast<float>(rng.normal()),
                       0.5f +
                           0.001f * static_cast<float>(rng.normal())});
    }
    const auto cfg = config(12, 8);
    const Octree t_uniform = Octree::build(uniform, cfg);
    const Octree t_clustered = Octree::build(clustered, cfg);
    EXPECT_GT(t_clustered.depth(), t_uniform.depth());
}

TEST(OctreeBuild, BuildStatsRecordSinglePass)
{
    const PointCloud cloud = randomCloud(1234, 12);
    const Octree tree = Octree::build(cloud, config(8, 8));
    EXPECT_EQ(tree.buildStats().get("octree.host_reads"), 1234u);
    EXPECT_EQ(tree.buildStats().get("octree.host_writes"), 1234u);
    EXPECT_EQ(tree.buildStats().get("octree.leaves"),
              tree.leafCount());
}

TEST(OctreeBuild, DuplicatePointsHandled)
{
    PointCloud cloud;
    for (int i = 0; i < 100; ++i)
        cloud.add({0.5f, 0.5f, 0.5f});
    const Octree tree = Octree::build(cloud, config(5, 4));
    // All duplicates land in one max-depth leaf.
    EXPECT_EQ(tree.depth(), 5);
    std::size_t leaf_points = 0;
    for (const OctreeNode &node : tree.nodes())
        if (node.isLeaf())
            leaf_points += node.count();
    EXPECT_EQ(leaf_points, 100u);
}

class OctreeParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OctreeParamTest, FindLeafLocatesContainingVoxel)
{
    const auto [depth, leaf_cap] = GetParam();
    const PointCloud cloud = randomCloud(700, 13 + depth);
    const Octree tree = Octree::build(
        cloud, config(depth, static_cast<std::uint32_t>(leaf_cap)));
    for (std::size_t i = 0; i < 50; ++i) {
        const Vec3 &p = tree.reorderedCloud().position(
            static_cast<PointIndex>(i * 7 % cloud.size()));
        const NodeIndex leaf = tree.findLeaf(p);
        ASSERT_NE(leaf, kNoNode);
        const Aabb bounds = morton::voxelBounds(
            tree.node(leaf).code, tree.node(leaf).level,
            tree.rootBounds());
        EXPECT_TRUE(bounds.contains(p));
    }
}

TEST_P(OctreeParamTest, VoxelRangeMatchesLeafRanges)
{
    const auto [depth, leaf_cap] = GetParam();
    const PointCloud cloud = randomCloud(900, 17 + depth);
    const Octree tree = Octree::build(
        cloud, config(depth, static_cast<std::uint32_t>(leaf_cap)));
    for (const OctreeNode &node : tree.nodes()) {
        const auto [first, last] =
            tree.voxelRange(node.code, node.level);
        EXPECT_EQ(first, node.pointBegin);
        EXPECT_EQ(last, node.pointEnd);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OctreeParamTest,
    ::testing::Values(std::make_tuple(4, 1), std::make_tuple(6, 8),
                      std::make_tuple(8, 16), std::make_tuple(10, 64)));

// -------------------------------------------------------- voxelRange

TEST(OctreeQuery, VoxelRangeOfRootIsWholeCloud)
{
    const PointCloud cloud = randomCloud(200, 21);
    const Octree tree = Octree::build(cloud, config(6, 8));
    const auto [first, last] = tree.voxelRange(0, 0);
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(last, 200u);
}

TEST(OctreeQuery, VoxelRangeMatchesBruteForceCellCounts)
{
    const PointCloud cloud = randomCloud(400, 22);
    const Octree tree = Octree::build(cloud, config(6, 8));
    const int level = 2;
    // Count per cell by direct classification, then compare against
    // the binary-search ranges (empty cells included).
    std::map<morton::Code, std::uint32_t> expected;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        ++expected[morton::ancestorAt(
            tree.pointCode(static_cast<PointIndex>(i)),
            tree.config().maxDepth, level)];
    }
    for (morton::Code code = 0; code < (1u << (3 * level)); ++code) {
        const auto [first, last] = tree.voxelRange(code, level);
        const auto it = expected.find(code);
        const std::uint32_t want =
            it == expected.end() ? 0 : it->second;
        EXPECT_EQ(last - first, want) << "cell " << code;
    }
}

TEST(OctreeQuery, VoxelRangeAtIntermediateLevelsIsConsistent)
{
    const PointCloud cloud = randomCloud(1000, 23);
    const Octree tree = Octree::build(cloud, config(8, 4));
    // The 8 children of the root partition the root range.
    std::size_t total = 0;
    for (unsigned oct = 0; oct < 8; ++oct) {
        const auto [first, last] = tree.voxelRange(oct, 1);
        total += last - first;
    }
    EXPECT_EQ(total, cloud.size());
}

// ----------------------------------------------------- live counters

TEST(OctreeLive, InitiallyAllLive)
{
    const PointCloud cloud = randomCloud(100, 31);
    Octree tree = Octree::build(cloud, config(6, 8));
    EXPECT_EQ(tree.liveCount(0), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_TRUE(tree.isLive(static_cast<PointIndex>(i)));
}

TEST(OctreeLive, ConsumeDecrementsPath)
{
    const PointCloud cloud = randomCloud(100, 32);
    Octree tree = Octree::build(cloud, config(6, 8));
    const NodeIndex leaf = tree.leafOf(0);
    const std::uint32_t leaf_before = tree.liveCount(leaf);
    const int levels = tree.consumePoint(0);
    EXPECT_EQ(tree.liveCount(0), 99u);
    EXPECT_EQ(tree.liveCount(leaf), leaf_before - 1);
    EXPECT_EQ(levels, tree.node(leaf).level + 1);
    EXPECT_FALSE(tree.isLive(0));
}

TEST(OctreeLive, ResetRestoresCounts)
{
    const PointCloud cloud = randomCloud(50, 33);
    Octree tree = Octree::build(cloud, config(6, 8));
    tree.consumePoint(0);
    tree.consumePoint(1);
    tree.resetLive();
    EXPECT_EQ(tree.liveCount(0), 50u);
    EXPECT_TRUE(tree.isLive(0));
}

TEST(OctreeLive, ConsumeAllThenDescendReturnsNoNode)
{
    const PointCloud cloud = randomCloud(20, 34);
    Octree tree = Octree::build(cloud, config(5, 2));
    for (PointIndex i = 0; i < 20; ++i)
        tree.consumePoint(i);
    EXPECT_EQ(tree.liveCount(0), 0u);
    EXPECT_EQ(tree.descendFarthest(0), kNoNode);
}

// ------------------------------------------------- farthest descent

TEST(OctreeDescent, ReachesALeafWithLivePoints)
{
    const PointCloud cloud = randomCloud(500, 41);
    Octree tree = Octree::build(cloud, config(7, 8));
    int levels = 0;
    const NodeIndex leaf = tree.descendFarthest(
        0, DescentMetric::Balanced, 0, &levels);
    ASSERT_NE(leaf, kNoNode);
    EXPECT_TRUE(tree.node(leaf).isLeaf());
    EXPECT_GT(tree.liveCount(leaf), 0u);
    EXPECT_EQ(levels, tree.node(leaf).level);
}

TEST(OctreeDescent, PrefersOppositeOctant)
{
    // Two tight clusters at opposite corners: descending from the
    // low-corner seed must land in the high-corner cluster.
    PointCloud cloud;
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
        cloud.add({rng.uniform(0.0f, 0.1f), rng.uniform(0.0f, 0.1f),
                   rng.uniform(0.0f, 0.1f)});
        cloud.add({rng.uniform(0.9f, 1.0f), rng.uniform(0.9f, 1.0f),
                   rng.uniform(0.9f, 1.0f)});
    }
    Octree tree = Octree::build(cloud, config(6, 8));
    const morton::Code seed = morton::pointCode3(
        {0.05f, 0.05f, 0.05f}, tree.rootBounds(), 6);
    const NodeIndex leaf = tree.descendFarthest(seed);
    ASSERT_NE(leaf, kNoNode);
    const Vec3 center = morton::voxelCenter(
        tree.node(leaf).code, tree.node(leaf).level, tree.rootBounds());
    EXPECT_GT(center.x, 0.5f);
    EXPECT_GT(center.y, 0.5f);
    EXPECT_GT(center.z, 0.5f);
}

TEST(OctreeDescent, SkipsExhaustedSubtrees)
{
    PointCloud cloud;
    Rng rng(43);
    // Cluster A (far corner) has 4 points; cluster B mid-way.
    for (int i = 0; i < 4; ++i)
        cloud.add({0.95f + 0.01f * i, 0.95f, 0.95f});
    for (int i = 0; i < 50; ++i) {
        cloud.add({rng.uniform(0.4f, 0.6f), rng.uniform(0.4f, 0.6f),
                   rng.uniform(0.4f, 0.6f)});
    }
    Octree tree = Octree::build(cloud, config(6, 2));
    const morton::Code seed =
        morton::pointCode3({0.0f, 0.0f, 0.0f}, tree.rootBounds(), 6);

    // Exhaust the far cluster.
    std::set<NodeIndex> first_leaves;
    for (int pick = 0; pick < 4; ++pick) {
        const NodeIndex leaf = tree.descendFarthest(seed);
        ASSERT_NE(leaf, kNoNode);
        first_leaves.insert(leaf);
        tree.consumePoint(tree.farthestLivePointInLeaf(leaf, seed));
    }
    // Subsequent picks must come from elsewhere and still succeed.
    const NodeIndex next = tree.descendFarthest(seed);
    ASSERT_NE(next, kNoNode);
    EXPECT_GT(tree.liveCount(next), 0u);
}

TEST(OctreeDescent, FarthestLivePointSkipsConsumed)
{
    PointCloud cloud;
    for (int i = 0; i < 8; ++i)
        cloud.add({0.9f + 0.01f * static_cast<float>(i), 0.9f, 0.9f});
    Octree tree = Octree::build(cloud, config(3, 16));
    const NodeIndex leaf = tree.descendFarthest(0);
    const PointIndex first = tree.farthestLivePointInLeaf(leaf, 0);
    tree.consumePoint(first);
    const PointIndex second = tree.farthestLivePointInLeaf(leaf, 0);
    EXPECT_NE(first, second);
}

// ----------------------------------------------------- OctreeTable

TEST(OctreeTable, MirrorsNodes)
{
    const PointCloud cloud = randomCloud(400, 51);
    const Octree tree = Octree::build(cloud, config(6, 8));
    const OctreeTable table = OctreeTable::fromOctree(tree);
    ASSERT_EQ(table.entryCount(), tree.nodes().size());
    for (std::size_t i = 0; i < table.entryCount(); ++i) {
        const OctreeTableEntry &row = table.entry(i);
        const OctreeNode &node = tree.nodes()[i];
        EXPECT_EQ(row.code, node.code);
        EXPECT_EQ(row.level, node.level);
        EXPECT_EQ(row.childMask, node.childMask);
        EXPECT_EQ(row.pointBegin, node.pointBegin);
        EXPECT_EQ(row.pointEnd, node.pointEnd);
    }
}

TEST(OctreeTable, SizeBytesScalesWithEntries)
{
    const PointCloud cloud = randomCloud(400, 52);
    const Octree tree = Octree::build(cloud, config(6, 8));
    const OctreeTable table = OctreeTable::fromOctree(tree);
    EXPECT_EQ(table.sizeBytes(),
              table.entryCount() * OctreeTable::kEntryBytes);
}

TEST(OctreeValidate, PassesOnFreshTree)
{
    const PointCloud cloud = randomCloud(700, 61);
    const Octree tree = Octree::build(cloud, config(8, 8));
    EXPECT_EQ(tree.validate(), tree.nodes().size());
}

TEST(OctreeValidate, PassesMidSampling)
{
    const PointCloud cloud = randomCloud(500, 62);
    Octree tree = Octree::build(cloud, config(8, 8));
    for (PointIndex i = 0; i < 100; ++i)
        tree.consumePoint(i * 3);
    EXPECT_EQ(tree.validate(), tree.nodes().size());
}

TEST(OctreeTable, LargerLeafCapacityShrinksTable)
{
    const PointCloud cloud = randomCloud(5000, 53);
    const OctreeTable small_leaves = OctreeTable::fromOctree(
        Octree::build(cloud, config(10, 4)));
    const OctreeTable big_leaves = OctreeTable::fromOctree(
        Octree::build(cloud, config(10, 64)));
    EXPECT_LT(big_leaves.sizeBytes(), small_leaves.sizeBytes());
}

} // namespace
} // namespace hgpcn
