/**
 * @file
 * Cross-module property sweeps (parameterized gtest suites).
 *
 * Each suite states one invariant and drives it across a grid of
 * configurations: sampler kinds x K, cloud distributions x octree
 * configs, VEG modes x gathering sizes, traffic traces x elastic
 * serving. These are the regression nets behind the paper's
 * claims.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>

#include "common/rng.h"
#include "core/hgpcn_system.h"
#include "datasets/coherent_drive.h"
#include "datasets/traffic_gen.h"
#include "gather/brute_gatherers.h"
#include "serving/autoscaler.h"
#include "gather/veg_gatherer.h"
#include "sampling/approx_ois_sampler.h"
#include "sampling/fps_sampler.h"
#include "sampling/ois_fps_sampler.h"
#include "sampling/random_sampler.h"
#include "serving/sharded_runner.h"
#include "sim/bitonic_sorter.h"
#include "sim/fault_plan.h"
#include "sim/systolic_array.h"

namespace hgpcn
{
namespace
{

// ------------------------------------------------ cloud generators

/** Synthetic distribution families exercising different octrees. */
enum class CloudKind
{
    Uniform,
    Clustered,
    Planar,
    Diagonal,
    WithDuplicates,
};

const char *
toString(CloudKind kind)
{
    switch (kind) {
      case CloudKind::Uniform:
        return "Uniform";
      case CloudKind::Clustered:
        return "Clustered";
      case CloudKind::Planar:
        return "Planar";
      case CloudKind::Diagonal:
        return "Diagonal";
      case CloudKind::WithDuplicates:
        return "WithDuplicates";
    }
    return "?";
}

PointCloud
makeCloud(CloudKind kind, std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    switch (kind) {
      case CloudKind::Uniform:
        for (std::size_t i = 0; i < n; ++i) {
            cloud.add({rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f)});
        }
        break;
      case CloudKind::Clustered:
        for (std::size_t i = 0; i < n; ++i) {
            const float cx = (i % 4) * 0.25f + 0.1f;
            const float cy = ((i / 4) % 4) * 0.25f + 0.1f;
            cloud.add(
                {cx + 0.01f * static_cast<float>(rng.normal()),
                 cy + 0.01f * static_cast<float>(rng.normal()),
                 0.5f + 0.01f * static_cast<float>(rng.normal())});
        }
        break;
      case CloudKind::Planar:
        for (std::size_t i = 0; i < n; ++i) {
            cloud.add({rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f),
                       0.3f + rng.uniform(0.0f, 0.002f)});
        }
        break;
      case CloudKind::Diagonal:
        for (std::size_t i = 0; i < n; ++i) {
            const float t = rng.uniform(0.0f, 1.0f);
            cloud.add({t + rng.uniform(0.0f, 0.01f),
                       t + rng.uniform(0.0f, 0.01f),
                       t + rng.uniform(0.0f, 0.01f)});
        }
        break;
      case CloudKind::WithDuplicates:
        for (std::size_t i = 0; i < n; ++i) {
            if (i % 3 == 0) {
                cloud.add({0.5f, 0.5f, 0.5f});
            } else {
                cloud.add({rng.uniform(0.0f, 1.0f),
                           rng.uniform(0.0f, 1.0f),
                           rng.uniform(0.0f, 1.0f)});
            }
        }
        break;
    }
    return cloud;
}

// -------------------------------------------- sampler x K invariants

/** Factory of every sampler implementation. */
std::unique_ptr<Sampler>
makeSampler(const std::string &kind)
{
    if (kind == "FPS")
        return std::make_unique<FpsSampler>(3);
    if (kind == "FPS-naive")
        return std::make_unique<NaiveFpsSampler>(3);
    if (kind == "RS")
        return std::make_unique<RandomSampler>(3);
    if (kind == "RS+reinforce")
        return std::make_unique<ReinforcedRandomSampler>(3);
    if (kind == "OIS")
        return std::make_unique<OisFpsSampler>();
    if (kind == "OIS-approx")
        return std::make_unique<ApproxOisSampler>();
    return nullptr;
}

class SamplerSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::size_t>>
{
};

TEST_P(SamplerSweep, ReturnsKDistinctValidIndices)
{
    const auto [kind, k] = GetParam();
    const PointCloud cloud = makeCloud(CloudKind::Uniform, 600, 11);
    auto sampler = makeSampler(kind);
    ASSERT_NE(sampler, nullptr);
    const SampleResult result = sampler->sample(cloud, k);
    ASSERT_EQ(result.indices.size(), k);
    std::set<PointIndex> unique(result.indices.begin(),
                                result.indices.end());
    EXPECT_EQ(unique.size(), k);
    for (PointIndex i : result.indices)
        EXPECT_LT(i, cloud.size());
}

TEST_P(SamplerSweep, DeterministicAcrossRuns)
{
    const auto [kind, k] = GetParam();
    const PointCloud cloud = makeCloud(CloudKind::Clustered, 600, 13);
    auto a = makeSampler(kind);
    auto b = makeSampler(kind);
    EXPECT_EQ(a->sample(cloud, k).indices,
              b->sample(cloud, k).indices);
}

TEST_P(SamplerSweep, HandlesClusteredAndDuplicateClouds)
{
    const auto [kind, k] = GetParam();
    for (const CloudKind cloud_kind :
         {CloudKind::Clustered, CloudKind::WithDuplicates,
          CloudKind::Planar}) {
        const PointCloud cloud = makeCloud(cloud_kind, 500, 17);
        auto sampler = makeSampler(kind);
        const SampleResult result = sampler->sample(cloud, k);
        std::set<PointIndex> unique(result.indices.begin(),
                                    result.indices.end());
        EXPECT_EQ(unique.size(), k) << toString(cloud_kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerSweep,
    ::testing::Combine(::testing::Values("FPS", "FPS-naive", "RS",
                                         "RS+reinforce", "OIS",
                                         "OIS-approx"),
                       ::testing::Values(std::size_t{1},
                                         std::size_t{16},
                                         std::size_t{128})),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '+' || c == '-')
                c = '_';
        return name + "_k" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------- octree x distribution sweep

class OctreeDistributionSweep
    : public ::testing::TestWithParam<CloudKind>
{
};

TEST_P(OctreeDistributionSweep, BuildInvariantsHold)
{
    const PointCloud cloud = makeCloud(GetParam(), 1500, 19);
    Octree::Config cfg;
    cfg.maxDepth = 10;
    cfg.leafCapacity = 8;
    const Octree tree = Octree::build(cloud, cfg);
    EXPECT_GT(tree.validate(), 0u);

    // Codes sorted, permutation valid, leaves partition the range.
    const auto &codes = tree.pointCodes();
    for (std::size_t i = 1; i < codes.size(); ++i)
        EXPECT_LE(codes[i - 1], codes[i]);
    std::set<PointIndex> perm(tree.permutation().begin(),
                              tree.permutation().end());
    EXPECT_EQ(perm.size(), cloud.size());

    std::size_t leaf_points = 0;
    for (const OctreeNode &node : tree.nodes())
        if (node.isLeaf())
            leaf_points += node.count();
    EXPECT_EQ(leaf_points, cloud.size());
}

TEST_P(OctreeDistributionSweep, OisSamplesAllDistributions)
{
    const PointCloud cloud = makeCloud(GetParam(), 1200, 23);
    OisFpsSampler sampler;
    const SampleResult result = sampler.sample(cloud, 200);
    std::set<PointIndex> unique(result.indices.begin(),
                                result.indices.end());
    EXPECT_EQ(unique.size(), 200u);
}

TEST_P(OctreeDistributionSweep, FindLeafConsistentWithVoxelRange)
{
    const PointCloud cloud = makeCloud(GetParam(), 800, 29);
    Octree::Config cfg;
    cfg.maxDepth = 9;
    const Octree tree = Octree::build(cloud, cfg);
    for (PointIndex i = 0; i < 50; ++i) {
        const Vec3 &p = tree.reorderedCloud().position(
            (i * 13) % static_cast<PointIndex>(cloud.size()));
        const NodeIndex leaf = tree.findLeaf(p);
        const auto [first, last] = tree.voxelRange(
            tree.node(leaf).code, tree.node(leaf).level);
        EXPECT_EQ(first, tree.node(leaf).pointBegin);
        EXPECT_EQ(last, tree.node(leaf).pointEnd);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, OctreeDistributionSweep,
    ::testing::Values(CloudKind::Uniform, CloudKind::Clustered,
                      CloudKind::Planar, CloudKind::Diagonal,
                      CloudKind::WithDuplicates),
    [](const auto &info) { return toString(info.param); });

// ----------------------------------------- VEG mode x K sweep

class VegSweep : public ::testing::TestWithParam<
                     std::tuple<VegMode, std::size_t>>
{
};

TEST_P(VegSweep, KUniqueNeighborsOnEveryDistribution)
{
    const auto [mode, k] = GetParam();
    for (const CloudKind kind :
         {CloudKind::Uniform, CloudKind::Clustered,
          CloudKind::Planar}) {
        const PointCloud cloud = makeCloud(kind, 1200, 31);
        Octree::Config cfg;
        cfg.maxDepth = 10;
        const Octree tree = Octree::build(cloud, cfg);
        VegKnn::Config veg_cfg;
        veg_cfg.mode = mode;
        VegKnn veg(tree, veg_cfg);
        std::vector<PointIndex> centrals;
        for (PointIndex c = 0; c < 16; ++c)
            centrals.push_back(c * 70);
        const GatherResult result = veg.gather(centrals, k);
        for (std::size_t c = 0; c < centrals.size(); ++c) {
            const auto neigh = result.of(c);
            std::set<PointIndex> unique(neigh.begin(), neigh.end());
            EXPECT_EQ(unique.size(), k)
                << toString(kind) << " centroid " << c;
        }
    }
}

TEST_P(VegSweep, TracesAccountForK)
{
    const auto [mode, k] = GetParam();
    const PointCloud cloud = makeCloud(CloudKind::Uniform, 1500, 37);
    Octree::Config cfg;
    cfg.maxDepth = 10;
    const Octree tree = Octree::build(cloud, cfg);
    VegKnn::Config veg_cfg;
    veg_cfg.mode = mode;
    VegKnn veg(tree, veg_cfg);
    std::vector<PointIndex> centrals = {10, 500, 999};
    const GatherResult result = veg.gather(centrals, k);
    for (const VegTrace &trace : result.traces) {
        EXPECT_GE(trace.innerPoints + trace.lastRingPoints, k);
        EXPECT_GT(trace.tableLookups, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VegSweep,
    ::testing::Combine(::testing::Values(VegMode::Paper,
                                         VegMode::Strict,
                                         VegMode::SemiApprox),
                       ::testing::Values(std::size_t{4},
                                         std::size_t{16},
                                         std::size_t{64})),
    [](const auto &info) {
        std::string mode = toString(std::get<0>(info.param));
        for (auto &c : mode)
            if (c == '-')
                c = '_';
        return mode + "_k" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------- strict == brute (sweep)

class StrictExactSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(StrictExactSweep, StrictVegMatchesBruteDistances)
{
    const std::size_t k = GetParam();
    const PointCloud cloud = makeCloud(CloudKind::Clustered, 900, 41);
    Octree::Config cfg;
    cfg.maxDepth = 10;
    const Octree tree = Octree::build(cloud, cfg);
    VegKnn::Config veg_cfg;
    veg_cfg.mode = VegMode::Strict;
    VegKnn veg(tree, veg_cfg);
    BruteKnn brute(tree.reorderedCloud());
    std::vector<PointIndex> centrals = {5, 250, 777};
    const auto rv = veg.gather(centrals, k);
    const auto rb = brute.gather(centrals, k);
    for (std::size_t c = 0; c < centrals.size(); ++c) {
        const Vec3 anchor =
            tree.reorderedCloud().position(centrals[c]);
        float worst_v = 0.0f, worst_b = 0.0f;
        for (PointIndex i : rv.of(c)) {
            worst_v = std::max(
                worst_v,
                tree.reorderedCloud().position(i).distSq(anchor));
        }
        for (PointIndex i : rb.of(c)) {
            worst_b = std::max(
                worst_b,
                tree.reorderedCloud().position(i).distSq(anchor));
        }
        EXPECT_FLOAT_EQ(worst_v, worst_b);
    }
}

INSTANTIATE_TEST_SUITE_P(Ks, StrictExactSweep,
                         ::testing::Values(std::size_t{2},
                                           std::size_t{8},
                                           std::size_t{32},
                                           std::size_t{96}));

// ------------------------------------------- hardware-model sweeps

class BitonicSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BitonicSweep, TopKNeverExceedsTwiceFullSortPlusMerges)
{
    const std::size_t lanes = GetParam();
    const BitonicSorterSim sorter(lanes);
    for (std::uint64_t n = 4; n <= (1u << 14); n *= 4) {
        EXPECT_GT(sorter.topKCycles(n, 16), 0u);
        EXPECT_GE(sorter.sortCycles(2 * n), sorter.sortCycles(n));
    }
}

INSTANTIATE_TEST_SUITE_P(Lanes, BitonicSweep,
                         ::testing::Values(std::size_t{8},
                                           std::size_t{64},
                                           std::size_t{256}));

class SystolicSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 std::size_t>>
{
};

TEST_P(SystolicSweep, SplittingMNeverPaysLessThanFused)
{
    const auto [rows, cols] = GetParam();
    const SystolicArraySim array(rows, cols);
    // Fill/drain amortizes over M: one big GEMM is never slower
    // than two half-size ones.
    const std::uint64_t fused = array.gemmCycles(1000, 64, 64);
    const std::uint64_t split = array.gemmCycles(500, 64, 64) +
                                array.gemmCycles(500, 64, 64);
    EXPECT_LE(fused, split);
}

TEST_P(SystolicSweep, CyclesScaleWithTiles)
{
    const auto [rows, cols] = GetParam();
    const SystolicArraySim array(rows, cols);
    const std::uint64_t base = array.gemmCycles(128, rows, cols);
    EXPECT_EQ(array.gemmCycles(128, rows * 2, cols), 2 * base);
    EXPECT_EQ(array.gemmCycles(128, rows, cols * 2), 2 * base);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SystolicSweep,
    ::testing::Combine(::testing::Values(std::size_t{8},
                                         std::size_t{16},
                                         std::size_t{32}),
                       ::testing::Values(std::size_t{8},
                                         std::size_t{16})));

// ------------------------------------------- traffic / elastic serving

/** (seed, burstFactor, diurnalAmplitude, churn on/off) grid. */
class TrafficSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, double, double, bool>>
{
  protected:
    TrafficGen::Config config() const
    {
        const auto [seed, burst, diurnal, churn] = GetParam();
        TrafficGen::Config cfg;
        cfg.sensors = 6;
        cfg.durationSec = 3.0;
        cfg.baseRateHz = 6.0;
        cfg.rateJitter = 0.25;
        cfg.burstFactor = burst;
        cfg.burstPeriodSec = 1.0;
        cfg.diurnalAmplitude = diurnal;
        cfg.diurnalPeriodSec = 3.0;
        cfg.hotPlugFraction = churn ? 0.5 : 0.0;
        cfg.dropFraction = churn ? 0.5 : 0.0;
        cfg.priorityTiers = 3;
        cfg.cloudPoints = 16;
        cfg.seed = seed;
        return cfg;
    }
};

TEST_P(TrafficSweep, StampsStrictlyIncreaseWithinChurnWindows)
{
    const TrafficGen gen(config());
    const TrafficTrace trace = gen.generate();
    ASSERT_GT(trace.stream.size(), 0u);
    // Strict global monotonicity implies strict per-sensor
    // monotonicity under any placement split.
    for (std::size_t i = 1; i < trace.stream.size(); ++i) {
        EXPECT_LT(trace.stream.frames[i - 1].timestamp,
                  trace.stream.frames[i].timestamp);
    }
    // Every arrival falls inside its sensor's churn window
    // (distinct-stamp nudges move stamps forward <= 0.1 us each).
    for (std::size_t s = 0; s < config().sensors; ++s) {
        for (const Frame &frame :
             trace.stream.framesOfSensor(s)) {
            EXPECT_GE(frame.timestamp, trace.joinSec[s]);
            EXPECT_LT(frame.timestamp, trace.leaveSec[s] + 1e-3);
        }
    }
}

TEST_P(TrafficSweep, ArrivalGapsWithinClosedFormEnvelope)
{
    const TrafficGen::Config cfg = config();
    const TrafficGen gen(cfg);
    const TrafficTrace trace = gen.generate();
    // The burst/diurnal envelope bounds every consecutive gap:
    // rate in [minRateHz, maxRateHz] while active, jitter scales a
    // gap by at most (1 +- rateJitter).
    const double min_gap =
        (1.0 / gen.maxRateHz()) * (1.0 - cfg.rateJitter) - 1e-3;
    const double max_gap =
        (1.0 / gen.minRateHz()) * (1.0 + cfg.rateJitter) + 1e-3;
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        const std::vector<Frame> frames =
            trace.stream.framesOfSensor(s);
        for (std::size_t f = 1; f < frames.size(); ++f) {
            const double gap = frames[f].timestamp -
                               frames[f - 1].timestamp;
            EXPECT_GE(gap, min_gap) << "sensor " << s;
            EXPECT_LE(gap, max_gap) << "sensor " << s;
        }
        // And the instantaneous rate honors the same envelope.
        for (double t = 0.1; t < cfg.durationSec; t += 0.37) {
            const double r = gen.rateAt(s, t);
            if (r > 0.0) {
                EXPECT_GE(r, gen.minRateHz() - 1e-12);
                EXPECT_LE(r, gen.maxRateHz() + 1e-12);
            }
        }
    }
}

TEST_P(TrafficSweep, ElasticServeConservesEveryFrame)
{
    TrafficGen::Config traffic = config();
    traffic.cloudPoints = 300; // enough for the K=256 classifier
    traffic.baseRateHz = 3.0;  // keep the functional work small
    const TrafficTrace trace = TrafficGen(traffic).generate();

    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;

    ElasticRunner::Config cfg;
    cfg.epochSec = 0.5;
    cfg.fleet.shards = 1;
    // Pinned capacity model far below the offered load, so
    // admission sheds on every parameter point.
    cfg.fleet.assumedServiceSec = 0.15;
    cfg.autoscaler.minShards = 1;
    cfg.autoscaler.maxShards = 2;
    cfg.admission.enabled = true;

    HgPcnSystem::Config system;
    ElasticRunner elastic(system, spec, cfg);
    const ElasticResult result =
        elastic.serve(trace.stream, trace.priority);

    // Conservation: every offered frame is exactly one of
    // processed / dropped / abandoned / shed, in the aggregate and
    // per sensor.
    const ServingReport &rep = result.serving.report;
    EXPECT_EQ(rep.framesIn, trace.stream.size());
    EXPECT_EQ(rep.framesIn,
              rep.framesProcessed + rep.framesDropped +
                  rep.framesAbandoned + rep.framesShed);
    EXPECT_GT(rep.framesShed, 0u);
    std::size_t sensor_in = 0;
    std::size_t sensor_shed = 0;
    for (const SensorServingReport &sr : rep.sensors) {
        EXPECT_EQ(sr.framesIn, sr.framesDone + sr.framesMissed);
        EXPECT_LE(sr.framesShed, sr.framesMissed);
        sensor_in += sr.framesIn;
        sensor_shed += sr.framesShed;
    }
    EXPECT_EQ(sensor_in, rep.framesIn);
    EXPECT_EQ(sensor_shed, rep.framesShed);
    // Epoch logs tell the same story as the merged report.
    std::size_t log_shed = 0;
    std::size_t log_offered = 0;
    for (const EpochLog &ep : result.epochs) {
        log_shed += ep.framesShed;
        log_offered += ep.framesOffered;
    }
    EXPECT_EQ(log_shed, rep.framesShed);
    EXPECT_EQ(log_offered, rep.framesIn);
}

INSTANTIATE_TEST_SUITE_P(
    Traces, TrafficSweep,
    ::testing::Combine(::testing::Values(std::uint64_t{1},
                                         std::uint64_t{77}),
                       ::testing::Values(1.0, 4.0),
                       ::testing::Values(0.0, 0.45),
                       ::testing::Bool()));

// --------------------------------------- temporally-coherent drives

/** (churnFraction, seed) grid over the coherent drive generator. */
class DriveSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>>
{
  protected:
    CoherentDrive::Config config() const
    {
        const auto [churn, seed] = GetParam();
        CoherentDrive::Config cfg;
        cfg.points = 600;
        cfg.churnFraction = churn;
        cfg.seed = seed;
        return cfg;
    }
};

TEST_P(DriveSweep, OverlapMatchesClosedFormEnvelope)
{
    const CoherentDrive drive(config());
    const std::size_t P = config().points;
    const Frame base = drive.generate(2);
    for (std::size_t delta : {1u, 2u, 5u}) {
        const Frame later = drive.generate(2 + delta);
        // Retained slots are bitwise identical at equal index —
        // count them and compare against the closed form exactly.
        std::size_t shared = 0;
        for (PointIndex i = 0; i < P; ++i) {
            const Vec3 &a = base.cloud.position(i);
            const Vec3 &b = later.cloud.position(i);
            if (std::memcmp(&a.x, &b.x, sizeof(float)) == 0 &&
                std::memcmp(&a.y, &b.y, sizeof(float)) == 0 &&
                std::memcmp(&a.z, &b.z, sizeof(float)) == 0)
                ++shared;
        }
        EXPECT_EQ(static_cast<double>(shared) /
                      static_cast<double>(P),
                  drive.overlapFraction(delta))
            << "delta " << delta;
    }
}

TEST_P(DriveSweep, BoundsArePinnedAndStampsMonotone)
{
    const CoherentDrive drive(config());
    const Frame f0 = drive.generate(0);
    const Aabb b0 = f0.cloud.bounds();
    std::vector<Frame> frames;
    for (std::size_t t = 0; t < 6; ++t)
        frames.push_back(drive.generate(t));
    for (const Frame &frame : frames) {
        const Aabb b = frame.cloud.bounds();
        EXPECT_EQ(std::memcmp(&b.lo.x, &b0.lo.x, sizeof(float)), 0);
        EXPECT_EQ(std::memcmp(&b.hi.x, &b0.hi.x, sizeof(float)), 0);
        EXPECT_EQ(frame.cloud.size(), config().points);
    }
    EXPECT_DOUBLE_EQ(streamGenerationFps(frames),
                     config().frameRateHz);
    // Determinism: regenerating a frame reproduces it bitwise.
    const Frame again = drive.generate(3);
    for (PointIndex i = 0; i < config().points; ++i) {
        const Vec3 &a = frames[3].cloud.position(i);
        const Vec3 &b = again.cloud.position(i);
        EXPECT_EQ(std::memcmp(&a.x, &b.x, sizeof(Vec3)), 0);
    }
}

TEST_P(DriveSweep, TemporalCacheEndToEndMatchesOracle)
{
    // The acceptance pin: streaming with the cross-frame cache on
    // must be bit-identical to the from-scratch oracle — sampled
    // tables, inference outputs and every modeled number.
    const CoherentDrive drive(config());
    std::vector<Frame> frames;
    for (std::size_t t = 0; t < 4; ++t)
        frames.push_back(drive.generate(t));

    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    HgPcnSystem::Config sys_cfg;
    sys_cfg.inputPoints = spec.inputPoints;
    const HgPcnSystem system(sys_cfg, spec);

    StreamRunner::Config rc =
        StreamRunner::compat(frames.size(), spec.inputPoints);
    rc.temporalCache = true;
    const RuntimeResult cached = system.runStream(frames, rc);
    rc.temporalCache = false;
    const RuntimeResult oracle = system.runStream(frames, rc);

    ASSERT_EQ(cached.frames.size(), oracle.frames.size());
    for (std::size_t i = 0; i < cached.frames.size(); ++i) {
        const E2eResult &a = cached.frames[i].result;
        const E2eResult &b = oracle.frames[i].result;
        EXPECT_EQ(a.preprocess.spt, b.preprocess.spt) << "frame " << i;
        EXPECT_EQ(a.preprocess.octreeTableBytes,
                  b.preprocess.octreeTableBytes);
        EXPECT_EQ(a.preprocess.octreeBuildSec,
                  b.preprocess.octreeBuildSec);
        EXPECT_EQ(a.preprocess.dsu.totalSec(),
                  b.preprocess.dsu.totalSec());
        EXPECT_EQ(a.inference.output.labels, b.inference.output.labels);
        ASSERT_EQ(a.inference.output.logits.rows(),
                  b.inference.output.logits.rows());
        for (std::size_t r = 0; r < a.inference.output.logits.rows();
             ++r) {
            for (std::size_t c = 0;
                 c < a.inference.output.logits.cols(); ++c) {
                EXPECT_EQ(a.inference.output.logits.at(r, c),
                          b.inference.output.logits.at(r, c));
            }
        }
        EXPECT_EQ(cached.frames[i].latencySec,
                  oracle.frames[i].latencySec);
    }
    EXPECT_EQ(cached.report.sustainedFps, oracle.report.sustainedFps);
}

INSTANTIATE_TEST_SUITE_P(
    Drives, DriveSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.5, 1.0),
                       ::testing::Values(std::uint64_t{3},
                                         std::uint64_t{29})));

// ------------------------------------------- fault-tolerant serving

/** (transient error rate, shards, maxBatch) grid: conservation and
 * byte-identical replay must hold at every point — including the
 * rate-0 corner, where the fault layer must also stay inert. */
class FaultSweep
    : public ::testing::TestWithParam<
          std::tuple<double, std::size_t, std::size_t>>
{
  protected:
    /** 4-sensor phase-offset stream over [0, 1). */
    static SensorStream
    stream()
    {
        SensorStream s;
        s.sensorCount = 4;
        Rng rng(11);
        for (std::size_t i = 0; i < 24; ++i) {
            Frame frame;
            frame.timestamp =
                static_cast<double>(i) / 24.0;
            frame.name = "p" + std::to_string(i);
            frame.cloud.reserve(300);
            for (std::size_t p = 0; p < 300; ++p) {
                frame.cloud.add({rng.uniform(0.0f, 10.0f),
                                 rng.uniform(0.0f, 10.0f),
                                 rng.uniform(0.0f, 3.0f)});
            }
            s.frames.push_back(std::move(frame));
            s.sensors.push_back(i % 4);
        }
        return s;
    }

    static PointNet2Spec
    spec()
    {
        PointNet2Spec spec = PointNet2Spec::classification(5);
        spec.inputPoints = 256;
        spec.sa[0].npoint = 64;
        spec.sa[0].k = 8;
        spec.sa[1].npoint = 16;
        spec.sa[1].k = 8;
        return spec;
    }

    FaultPlan::Config
    planConfig() const
    {
        const auto [rate, shards, batch] = GetParam();
        FaultPlan::Config plan;
        plan.seed = 23;
        plan.errors.push_back({"", rate, 0.0, 0.7});
        // Cover failover in the multi-shard points; with one shard
        // the crash window exercises the all-down terminal path.
        plan.slowdowns.push_back({0, 0.2, 0.5, 1.5});
        plan.crashes.push_back({shards - 1, 0.3, 0.45});
        return plan;
    }

    ShardedRunner::Config
    fleetConfig(const FaultPlan *plan) const
    {
        const auto [rate, shards, batch] = GetParam();
        ShardedRunner::Config cfg;
        cfg.shards = shards;
        cfg.runner.maxBatch = batch;
        cfg.runner.batchTimeoutVirtualSec =
            batch > 1 ? 0.005 : 0.0;
        cfg.faultPlan = plan;
        cfg.faultTolerance.maxAttempts = 2;
        cfg.faultTolerance.backoffBaseSec = 0.001;
        cfg.faultTolerance.breaker.failureThreshold = 5;
        cfg.faultTolerance.breaker.openSec = 0.1;
        return cfg;
    }
};

TEST_P(FaultSweep, ConservationHoldsAtEveryGridPoint)
{
    const auto [rate, shards, batch] = GetParam();
    const FaultPlan plan(planConfig());
    HgPcnSystem::Config system;
    ShardedRunner runner(system, spec(), fleetConfig(&plan));
    const ServingResult result = runner.serve(stream());
    const ServingReport &rep = result.report;

    EXPECT_EQ(rep.framesIn, 24u);
    EXPECT_EQ(rep.framesIn,
              rep.framesProcessed + rep.framesDropped +
                  rep.framesAbandoned + rep.framesShed +
                  rep.framesFailed);
    EXPECT_EQ(result.frames.size(), rep.framesProcessed);
    EXPECT_LE(rep.framesRetried, rep.framesProcessed);
    EXPECT_LE(rep.framesDegraded, rep.framesProcessed);

    std::size_t sensor_in = 0;
    std::size_t sensor_failed = 0;
    for (const SensorServingReport &sr : rep.sensors) {
        EXPECT_EQ(sr.framesIn, sr.framesDone + sr.framesMissed);
        EXPECT_LE(sr.framesFailed, sr.framesMissed);
        sensor_in += sr.framesIn;
        sensor_failed += sr.framesFailed;
    }
    EXPECT_EQ(sensor_in, rep.framesIn);
    EXPECT_EQ(sensor_failed, rep.framesFailed);
    std::size_t backend_failed = 0;
    for (const BackendServingReport &br : rep.backends)
        backend_failed += br.framesFailed;
    EXPECT_EQ(backend_failed, rep.framesFailed);

    if (rate == 0.0) {
        // The only fault source left is the crash window; no
        // transient error can fire, so nothing retries.
        EXPECT_EQ(rep.framesRetried, 0u);
    }
}

TEST_P(FaultSweep, FaultedServeReplaysByteIdentically)
{
    const FaultPlan plan(planConfig());
    HgPcnSystem::Config system;
    ShardedRunner first(system, spec(), fleetConfig(&plan));
    ShardedRunner second(system, spec(), fleetConfig(&plan));
    const ServingResult r1 = first.serve(stream());
    const ServingResult r2 = second.serve(stream());

    EXPECT_EQ(r1.report.toString(), r2.report.toString());
    ASSERT_EQ(r1.frames.size(), r2.frames.size());
    for (std::size_t i = 0; i < r1.frames.size(); ++i) {
        EXPECT_EQ(r1.frames[i].globalIndex,
                  r2.frames[i].globalIndex);
        EXPECT_EQ(r1.frames[i].shard, r2.frames[i].shard);
        EXPECT_EQ(r1.frames[i].doneSec, r2.frames[i].doneSec);
        EXPECT_EQ(r1.frames[i].latencySec,
                  r2.frames[i].latencySec);
    }
    EXPECT_EQ(r1.metrics.countOf("fault.failovers"),
              r2.metrics.countOf("fault.failovers"));
    EXPECT_EQ(r1.metrics.countOf("fault.breaker_trips"),
              r2.metrics.countOf("fault.breaker_trips"));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultSweep,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.9),
                       ::testing::Values(std::size_t{1},
                                         std::size_t{3}),
                       ::testing::Values(std::size_t{1},
                                         std::size_t{3})));

} // namespace
} // namespace hgpcn
