/**
 * @file
 * Tests for the sharded serving layer: SensorStream merging,
 * placement policies, the ShardedRunner fleet, report-merge
 * arithmetic, per-sensor ordering under hash affinity and
 * mid-stream shard stops. The concurrency cases here run under
 * ThreadSanitizer and AddressSanitizer in CI
 * (.github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "serving/placement.h"
#include "serving/serving_report.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{
namespace
{

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

/** Small multi-LiDAR stream (tiny frames for test speed). */
SensorStream
tinyLidarStream(std::size_t sensors, std::size_t frames_per_sensor,
                double rate_hz = 10.0)
{
    MultiSensorConfig cfg;
    cfg.sensors = sensors;
    cfg.framesPerSensor = frames_per_sensor;
    cfg.lidar.azimuthSteps = 250;
    cfg.lidar.frameRateHz = rate_hz;
    return makeLidarSensorStream(cfg);
}

/** Stream of empty frames with given stamps/tags (placement only). */
SensorStream
stampedStream(const std::vector<double> &stamps,
              const std::vector<std::size_t> &tags,
              std::size_t sensor_count)
{
    SensorStream stream;
    stream.sensorCount = sensor_count;
    for (std::size_t i = 0; i < stamps.size(); ++i) {
        Frame frame;
        frame.name = "f" + std::to_string(i);
        frame.timestamp = stamps[i];
        stream.frames.push_back(std::move(frame));
        stream.sensors.push_back(tags[i]);
    }
    return stream;
}

/** RAII warn() capture: malformed-frame rejects are asserted on,
 * not printed into the test log. */
class WarningCapture
{
  public:
    WarningCapture()
    {
        previous = setLogSink(
            [this](LogLevel level, const std::string &msg) {
                if (level == LogLevel::Warn)
                    lines.push_back(msg);
            });
    }
    ~WarningCapture() { setLogSink(previous); }

    std::vector<std::string> lines;

  private:
    LogSink previous;
};

// ------------------------------------------------------ SensorStream

TEST(SensorStream, MergeInterleavesByTimestamp)
{
    const SensorStream stream = tinyLidarStream(2, 3);
    ASSERT_EQ(stream.size(), 6u);
    EXPECT_EQ(stream.sensorCount, 2u);
    for (std::size_t i = 1; i < stream.size(); ++i) {
        EXPECT_LT(stream.frames[i - 1].timestamp,
                  stream.frames[i].timestamp);
    }
    // Phase offsets interleave the two 10 Hz sensors s0,s1,s0,s1,...
    for (std::size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(stream.sensors[i], i % 2);
    // Per-sensor extraction returns capture order.
    const std::vector<Frame> s1 = stream.framesOfSensor(1);
    ASSERT_EQ(s1.size(), 3u);
    for (std::size_t f = 1; f < s1.size(); ++f)
        EXPECT_LT(s1[f - 1].timestamp, s1[f].timestamp);
    EXPECT_NEAR(sensorGenerationFps(stream, 0), 10.0, 1e-9);
    EXPECT_NEAR(sensorGenerationFps(stream, 1), 10.0, 1e-9);
}

TEST(SensorStream, MergeRejectsSharedTimestamps)
{
    // Two same-rate sensors with no phase offset collide on every
    // stamp. Malformed capture data is recoverable: the colliding
    // frames are rejected per frame (warned + counted, with
    // actionable guidance) and the rest of the merge proceeds.
    std::vector<std::vector<Frame>> per_sensor(2);
    for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t f = 0; f < 2; ++f) {
            Frame frame;
            frame.name = "s" + std::to_string(s) + ".f" +
                         std::to_string(f);
            frame.timestamp = 0.1 * static_cast<double>(f);
            per_sensor[s].push_back(std::move(frame));
        }
    }
    WarningCapture capture;
    const SensorStream stream =
        mergeSensorStreams(std::move(per_sensor));
    // Sensor 0 wins every tie (first in selection order); sensor
    // 1's colliding frames are the ones rejected.
    ASSERT_EQ(stream.size(), 2u);
    EXPECT_EQ(stream.rejectedFrames, 2u);
    for (std::size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(stream.sensors[i], 0u);
    ASSERT_EQ(capture.lines.size(), 2u);
    for (const std::string &line : capture.lines)
        EXPECT_NE(line.find("phase offsets"), std::string::npos)
            << line;
}

TEST(SensorStream, MergeOfNothingYieldsEmptyStream)
{
    // Degenerate inputs are valid, not fatal: no sensors at all,
    // and sensors that offered no frames.
    const SensorStream none = mergeSensorStreams({});
    EXPECT_EQ(none.size(), 0u);
    EXPECT_EQ(none.sensorCount, 0u);

    const SensorStream idle =
        mergeSensorStreams(std::vector<std::vector<Frame>>(3));
    EXPECT_EQ(idle.size(), 0u);
    EXPECT_EQ(idle.sensorCount, 3u);
    EXPECT_TRUE(idle.framesOfSensor(1).empty());
    // Placement over an empty stream is an empty assignment.
    EXPECT_TRUE(assignShards(idle, 2, PlacementPolicy::LeastLoaded)
                    .empty());
}

TEST(SensorStream, SingleSensorMergeIsIdentity)
{
    std::vector<std::vector<Frame>> per_sensor(1);
    for (std::size_t f = 0; f < 3; ++f) {
        Frame frame;
        frame.name = "f" + std::to_string(f);
        frame.timestamp = 0.1 * static_cast<double>(f);
        per_sensor[0].push_back(std::move(frame));
    }
    const SensorStream stream =
        mergeSensorStreams(std::move(per_sensor));
    ASSERT_EQ(stream.size(), 3u);
    EXPECT_EQ(stream.sensorCount, 1u);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        EXPECT_EQ(stream.sensors[i], 0u);
        EXPECT_EQ(stream.frames[i].name,
                  "f" + std::to_string(i));
    }
    EXPECT_NEAR(sensorGenerationFps(stream, 0), 10.0, 1e-9);
}

TEST(SensorStream, DuplicateTimestampWithinSensorIsRejected)
{
    // A sensor that repeats a stamp mid-sequence is a corrupt
    // capture log: the offending frame is rejected (warned +
    // counted), the well-formed frames around it survive.
    std::vector<std::vector<Frame>> per_sensor(1);
    for (const double t : {0.0, 0.1, 0.1, 0.2}) {
        Frame frame;
        frame.name = "f" + std::to_string(per_sensor[0].size());
        frame.timestamp = t;
        per_sensor[0].push_back(std::move(frame));
    }
    WarningCapture capture;
    const SensorStream stream =
        mergeSensorStreams(std::move(per_sensor));
    ASSERT_EQ(stream.size(), 3u);
    EXPECT_EQ(stream.rejectedFrames, 1u);
    EXPECT_EQ(stream.frames[0].name, "f0");
    EXPECT_EQ(stream.frames[1].name, "f1");
    EXPECT_EQ(stream.frames[2].name, "f3");
    // The surviving interleave is strictly increasing again.
    for (std::size_t i = 1; i < stream.size(); ++i)
        EXPECT_LT(stream.frames[i - 1].timestamp,
                  stream.frames[i].timestamp);
    ASSERT_EQ(capture.lines.size(), 1u);
    EXPECT_NE(capture.lines[0].find("f2"), std::string::npos)
        << capture.lines[0];
    EXPECT_NE(capture.lines[0].find("strictly increasing"),
              std::string::npos)
        << capture.lines[0];
}

TEST(SensorStream, UnstampedSensorKeepsOnlyItsFirstFrame)
{
    // All-identical stamps read as "unstamped" (the non-LiDAR
    // generators leave 0.0). An unstamped sequence cannot take
    // part in a paced interleave: every frame after the first
    // fails to advance the sensor's clock and is rejected, with a
    // message about stamping — not phase offsets, which would not
    // fix a sensor that carries no timing at all.
    std::vector<std::vector<Frame>> per_sensor(1);
    for (std::size_t f = 0; f < 3; ++f) {
        Frame frame;
        frame.name = "f" + std::to_string(f);
        frame.timestamp = 0.0;
        per_sensor[0].push_back(std::move(frame));
    }
    WarningCapture capture;
    const SensorStream stream =
        mergeSensorStreams(std::move(per_sensor));
    ASSERT_EQ(stream.size(), 1u);
    EXPECT_EQ(stream.frames[0].name, "f0");
    EXPECT_EQ(stream.rejectedFrames, 2u);
    ASSERT_EQ(capture.lines.size(), 2u);
    for (const std::string &line : capture.lines) {
        EXPECT_NE(line.find("does not advance its timestamp"),
                  std::string::npos)
            << line;
        EXPECT_EQ(line.find("phase offsets"), std::string::npos)
            << line;
    }
}

// --------------------------------------------------------- Placement

TEST(Placement, RoundRobinCyclesShards)
{
    const SensorStream stream = stampedStream(
        {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}, {0, 1, 0, 1, 0, 1}, 2);
    const auto assignment =
        assignShards(stream, 3, PlacementPolicy::RoundRobin);
    const std::vector<std::size_t> expect = {0, 1, 2, 0, 1, 2};
    EXPECT_EQ(assignment, expect);
}

TEST(Placement, HashBySensorPinsEachSensorToOneShard)
{
    const SensorStream stream = tinyLidarStream(4, 3);
    const auto assignment =
        assignShards(stream, 3, PlacementPolicy::HashBySensor);
    std::vector<std::size_t> shard_of(stream.sensorCount,
                                      std::size_t(-1));
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::size_t sensor = stream.sensors[i];
        if (shard_of[sensor] == std::size_t(-1))
            shard_of[sensor] = assignment[i];
        EXPECT_EQ(assignment[i], shard_of[sensor])
            << "sensor " << sensor << " split across shards";
    }
    // Deterministic: same stream, same placement.
    EXPECT_EQ(assignment,
              assignShards(stream, 3, PlacementPolicy::HashBySensor));
}

TEST(Placement, LeastLoadedJoinsShortestQueue)
{
    // One serial server per shard, 1 s assumed service: backlogs
    // alternate until t=2.5, by which time both shards drained.
    const SensorStream stream = stampedStream(
        {0.0, 0.1, 0.2, 0.3, 2.5}, {0, 0, 0, 0, 0}, 1);
    const auto assignment = assignShards(
        stream, 2, PlacementPolicy::LeastLoaded, /*service=*/1.0);
    const std::vector<std::size_t> expect = {0, 1, 0, 1, 0};
    EXPECT_EQ(assignment, expect);
}

// ----------------------------------------------------- ShardedRunner

TEST(ShardedRunner, ShardReplicasMatchSingleSystemResults)
{
    // Identically-seeded shard replicas: which shard serves a frame
    // never changes its functional output.
    const SensorStream stream = tinyLidarStream(2, 2);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());

    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::RoundRobin;
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    const ServingResult served = runner.serve(stream);
    ASSERT_EQ(served.frames.size(), stream.size());

    for (const ServedFrame &sf : served.frames) {
        const E2eResult serial =
            system.processFrame(stream.frames[sf.globalIndex].cloud);
        EXPECT_EQ(sf.result.inference.output.labels,
                  serial.inference.output.labels);
        EXPECT_DOUBLE_EQ(sf.result.totalSec(), serial.totalSec());
        EXPECT_EQ(sf.sensor, stream.sensors[sf.globalIndex]);
    }
}

TEST(ShardedRunner, PerSensorOrderPreservedUnderHashAffinity)
{
    const SensorStream stream = tinyLidarStream(3, 4);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::HashBySensor;
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    const ServingResult served = runner.serve(stream);
    ASSERT_EQ(served.frames.size(), stream.size());

    // Affinity pins each sensor to one shard...
    for (const SensorServingReport &sr : served.report.sensors)
        EXPECT_EQ(sr.shardSpread, 1u);
    // ...so each sensor's frames complete in capture order on the
    // global timeline (served.frames is completion-ordered).
    std::vector<std::size_t> next(stream.sensorCount, 0);
    for (const ServedFrame &sf : served.frames) {
        EXPECT_EQ(sf.sensorIndex, next[sf.sensor])
            << "sensor " << sf.sensor
            << " completed out of capture order";
        ++next[sf.sensor];
    }
}

TEST(ShardedRunner, AggregateThroughputScalesWithShards)
{
    // Batch admission measures machine capacity: two shards process
    // two halves of the stream on independent virtual clocks, so
    // aggregate sustained FPS must scale (acceptance: >= 1.5x).
    const SensorStream stream = tinyLidarStream(4, 4);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.placement = PlacementPolicy::RoundRobin;
    sc.runner.paceBySensor = false;

    sc.shards = 1;
    ShardedRunner one(cfg, tinyClassifier(), sc);
    sc.shards = 2;
    ShardedRunner two(cfg, tinyClassifier(), sc);

    const ServingResult r1 = one.serve(stream);
    const ServingResult r2 = two.serve(stream);
    ASSERT_EQ(r1.report.framesProcessed, stream.size());
    ASSERT_EQ(r2.report.framesProcessed, stream.size());
    EXPECT_GE(r2.report.sustainedFps,
              1.5 * r1.report.sustainedFps)
        << "2 shards: " << r2.report.sustainedFps << " FPS vs 1: "
        << r1.report.sustainedFps << " FPS";
    // Batch serves race no sensor: verdicts are n/a everywhere.
    EXPECT_FALSE(r2.report.paced);
    for (const SensorServingReport &sr : r2.report.sensors)
        EXPECT_EQ(sr.realTime, RealTimeVerdict::NotApplicable);
}

TEST(ShardedRunner, PacedServeYieldsPerSensorVerdicts)
{
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::HashBySensor;

    // 10 Hz sensors: the tiny model keeps up easily -> YES.
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    const ServingResult ok = runner.serve(tinyLidarStream(2, 3));
    ASSERT_EQ(ok.report.sensors.size(), 2u);
    for (const SensorServingReport &sr : ok.report.sensors) {
        EXPECT_NEAR(sr.generationFps, 10.0, 0.5);
        EXPECT_EQ(sr.realTime, RealTimeVerdict::Yes);
    }

    // 5 kHz sensors: far beyond the modeled hardware -> NO, not a
    // vacuous YES.
    const ServingResult behind =
        runner.serve(tinyLidarStream(2, 3, /*rate=*/5000.0));
    for (const SensorServingReport &sr : behind.report.sensors) {
        EXPECT_GT(sr.generationFps, 1000.0);
        EXPECT_EQ(sr.realTime, RealTimeVerdict::No);
    }
}

TEST(ShardedRunner, ReportMergeArithmetic)
{
    // Synthetic shard outcomes: the merge is pure arithmetic, so
    // every aggregate number is checkable by hand.
    const SensorStream stream = stampedStream(
        {0.0, 0.1, 0.2, 0.3}, {0, 1, 0, 1}, 2);

    std::vector<ShardOutcome> outcomes(2);
    auto fill = [](ShardOutcome &oc, double anchor,
                   std::vector<std::size_t> gidx,
                   std::vector<double> lat,
                   std::vector<double> done) {
        oc.anchorSec = anchor;
        oc.globalIndex = std::move(gidx);
        RuntimeReport &rep = oc.result.report;
        rep.framesIn = oc.globalIndex.size();
        rep.framesProcessed = oc.globalIndex.size();
        rep.paced = true;
        for (std::size_t i = 0; i < oc.globalIndex.size(); ++i) {
            ProcessedFrame pf;
            pf.index = i;
            pf.latencySec = lat[i];
            pf.doneSec = done[i];
            oc.result.frames.push_back(std::move(pf));
        }
    };
    // Shard 0 serves sensor 0 (globals 0,2), clock anchored at 0.0;
    // shard 1 serves sensor 1 (globals 1,3), anchored at 0.1.
    fill(outcomes[0], 0.0, {0, 2}, {0.05, 0.05}, {0.05, 0.25});
    fill(outcomes[1], 0.1, {1, 3}, {0.06, 0.04}, {0.06, 0.24});

    const ServingResult merged = mergeShardOutcomes(
        stream, std::move(outcomes), PlacementPolicy::HashBySensor);
    const ServingReport &rep = merged.report;

    EXPECT_EQ(rep.framesIn, 4u);
    EXPECT_EQ(rep.framesProcessed, 4u);
    EXPECT_TRUE(rep.paced);
    // Last completion: shard 1 frame 1 at 0.1 + 0.24 = 0.34.
    EXPECT_NEAR(rep.makespanSec, 0.34, 1e-12);
    EXPECT_NEAR(rep.sustainedFps, 4.0 / 0.34, 1e-9);
    // Merged latencies sorted: .04 .05 .05 .06.
    EXPECT_DOUBLE_EQ(rep.p50LatencySec, 0.05);
    EXPECT_DOUBLE_EQ(rep.p95LatencySec, 0.06);
    EXPECT_DOUBLE_EQ(rep.maxLatencySec, 0.06);
    EXPECT_NEAR(rep.meanLatencySec, 0.05, 1e-12);

    // Completion order across shard clocks: 0.05, 0.16, 0.25, 0.34.
    ASSERT_EQ(merged.frames.size(), 4u);
    const std::vector<std::size_t> order = {0, 1, 2, 3};
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(merged.frames[i].globalIndex, order[i]);

    // Per-sensor slices: both sensors at (n-1)/span = 5 FPS, served
    // faster than offered.
    ASSERT_EQ(rep.sensors.size(), 2u);
    EXPECT_DOUBLE_EQ(rep.sensors[0].generationFps, 5.0);
    EXPECT_DOUBLE_EQ(rep.sensors[0].sustainedFps, 2.0 / 0.25);
    EXPECT_EQ(rep.sensors[0].realTime, RealTimeVerdict::Yes);
    EXPECT_DOUBLE_EQ(rep.sensors[1].generationFps, 5.0);
    EXPECT_NEAR(rep.sensors[1].sustainedFps, 2.0 / 0.24, 1e-9);
    EXPECT_EQ(rep.sensors[1].realTime, RealTimeVerdict::Yes);
    EXPECT_EQ(rep.sensors[0].shardSpread, 1u);
    EXPECT_EQ(rep.sensors[1].shardSpread, 1u);
}

TEST(ShardedRunner, MidStreamShardStopTruncatesOnlyThatShard)
{
    const SensorStream stream = tinyLidarStream(2, 20);
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    sc.placement = PlacementPolicy::RoundRobin;
    sc.runner.queueCapacity = 2;
    ShardedRunner runner(cfg, tinyClassifier(), sc);

    std::atomic<bool> stop_sent{false};
    const ServingResult served = runner.serve(
        stream, [&](std::size_t shard, const FrameTask &) {
            if (shard == 1 && !stop_sent.exchange(true))
                runner.requestStopShard(1);
        });

    const RuntimeReport &healthy = served.report.shardReports[0];
    const RuntimeReport &stopped = served.report.shardReports[1];
    // The untouched shard drains its whole sub-stream.
    EXPECT_EQ(healthy.framesProcessed, healthy.framesIn);
    EXPECT_EQ(healthy.framesAbandoned, 0u);
    // The stopped shard truncates; nothing is double-counted.
    EXPECT_GT(stopped.framesAbandoned, 0u);
    EXPECT_EQ(stopped.framesProcessed + stopped.framesDropped +
                  stopped.framesAbandoned,
              stopped.framesIn);
    EXPECT_EQ(served.report.framesProcessed +
                  served.report.framesDropped +
                  served.report.framesAbandoned,
              served.report.framesIn);

    // Restart contract: the same fleet serves fully afterwards.
    const ServingResult again = runner.serve(stream);
    EXPECT_EQ(again.report.framesProcessed, stream.size());
    EXPECT_EQ(again.report.framesAbandoned, 0u);
}

TEST(ShardedRunner, EmptyStreamYieldsEmptyReport)
{
    HgPcnSystem::Config cfg;
    ShardedRunner::Config sc;
    sc.shards = 2;
    ShardedRunner runner(cfg, tinyClassifier(), sc);
    const ServingResult served = runner.serve(SensorStream{});
    EXPECT_EQ(served.report.framesIn, 0u);
    EXPECT_TRUE(served.frames.empty());
    EXPECT_EQ(served.report.shardReports.size(), 2u);
}

} // namespace
} // namespace hgpcn
