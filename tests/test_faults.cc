/**
 * @file
 * Tests for the fault-tolerance stack: FaultPlan window arithmetic
 * and keyed transient-error draws, circuit-breaker pinned
 * transitions, the dispatch-time failover/retry/deadline resolution
 * (serving/failover.h), fault accounting and conservation through
 * ShardedRunner, degraded-fidelity serving, byte-identical faulted
 * replay, and the zero-fault inertness oracle: an empty plan (or
 * clean directives) must reproduce the no-fault schedule event for
 * event. The concurrency cases run under ThreadSanitizer and
 * AddressSanitizer in CI (.github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "obs/trace.h"
#include "runtime/stream_runner.h"
#include "serving/admission.h"
#include "serving/autoscaler.h"
#include "serving/failover.h"
#include "serving/health.h"
#include "serving/sharded_runner.h"
#include "sim/fault_plan.h"

namespace hgpcn
{
namespace
{

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

/** Random cloud with enough points for the tiny classifier. */
Frame
tinyFrame(double stamp, std::uint64_t seed)
{
    Frame frame;
    frame.timestamp = stamp;
    frame.name = "f" + std::to_string(seed);
    Rng rng(seed);
    frame.cloud.reserve(300);
    for (std::size_t p = 0; p < 300; ++p) {
        frame.cloud.add({rng.uniform(0.0f, 10.0f),
                         rng.uniform(0.0f, 10.0f),
                         rng.uniform(0.0f, 3.0f)});
    }
    return frame;
}

/** Tagged stream from explicit (stamp, sensor) pairs. */
SensorStream
taggedStream(const std::vector<std::pair<double, std::size_t>> &seq,
             std::size_t sensor_count)
{
    SensorStream stream;
    stream.sensorCount = sensor_count;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        stream.frames.push_back(tinyFrame(seq[i].first, 31 + i));
        stream.sensors.push_back(seq[i].second);
    }
    return stream;
}

/** Evenly spaced multi-sensor stream over [0, duration). */
SensorStream
evenStream(std::size_t sensors, std::size_t frames_per_sensor,
           double duration)
{
    std::vector<std::pair<double, std::size_t>> seq;
    const std::size_t total = sensors * frames_per_sensor;
    for (std::size_t i = 0; i < total; ++i) {
        seq.push_back({duration * static_cast<double>(i) /
                           static_cast<double>(total),
                       i % sensors});
    }
    return taggedStream(seq, sensors);
}

/** Empty-stream placeholder directives are never consulted; a
 * 1-shard resolution over @p stream with @p plan and @p cfg. */
FaultResolution
resolveOneShard(const SensorStream &stream, const FaultPlan &plan,
                const FaultToleranceConfig &cfg,
                const std::vector<double> &service_sec = {})
{
    std::vector<std::size_t> assignment(stream.size(), 0);
    std::vector<CircuitBreaker> health;
    return resolveFaultSchedule(stream, assignment, {"hgpcn"},
                                service_sec, plan, cfg, health);
}

bool
identicalServes(const ServingResult &a, const ServingResult &b)
{
    if (a.report.toString() != b.report.toString())
        return false;
    if (a.frames.size() != b.frames.size())
        return false;
    for (std::size_t i = 0; i < a.frames.size(); ++i) {
        if (a.frames[i].globalIndex != b.frames[i].globalIndex ||
            a.frames[i].shard != b.frames[i].shard ||
            a.frames[i].doneSec != b.frames[i].doneSec ||
            a.frames[i].latencySec != b.frames[i].latencySec)
            return false;
    }
    return true;
}

// --------------------------------------------------------- FaultPlan

TEST(FaultPlan, EmptyAndIneffectiveWindowsAreInert)
{
    EXPECT_TRUE(FaultPlan().empty());
    EXPECT_TRUE(FaultPlan(FaultPlan::Config{}).empty());

    // Windows that cannot fire do not arm the plan: a rate-0
    // storm and a 1x slowdown inject nothing, so the serving layer
    // skips resolution entirely.
    FaultPlan::Config cfg;
    cfg.errors.push_back({"", 0.0, 0.0, 100.0});
    cfg.slowdowns.push_back({0, 0.0, 100.0, 1.0});
    EXPECT_TRUE(FaultPlan(cfg).empty());

    // Any crash window arms the plan, conservatively.
    FaultPlan::Config armed = cfg;
    armed.crashes.push_back({1, 1.0, 2.0});
    EXPECT_FALSE(FaultPlan(armed).empty());
}

TEST(FaultPlan, WindowArithmeticIsHalfOpen)
{
    FaultPlan::Config cfg;
    cfg.crashes.push_back({1, 1.0, 2.0});
    cfg.slowdowns.push_back({2, 0.0, 10.0, 1.5});
    cfg.slowdowns.push_back({2, 5.0, 10.0, 2.0});
    cfg.errors.push_back({"hgpcn", 0.25, 0.0, 4.0});
    cfg.errors.push_back({"", 0.4, 3.0, 5.0});
    const FaultPlan plan(cfg);

    EXPECT_FALSE(plan.shardCrashed(1, 0.999));
    EXPECT_TRUE(plan.shardCrashed(1, 1.0)); // start inclusive
    EXPECT_TRUE(plan.shardCrashed(1, 1.999));
    EXPECT_FALSE(plan.shardCrashed(1, 2.0)); // end exclusive
    EXPECT_FALSE(plan.shardCrashed(0, 1.5)); // other shard

    // Overlapping slowdowns multiply; other shards are untouched.
    EXPECT_DOUBLE_EQ(plan.slowdown(2, 1.0), 1.5);
    EXPECT_DOUBLE_EQ(plan.slowdown(2, 7.0), 3.0);
    EXPECT_DOUBLE_EQ(plan.slowdown(0, 7.0), 1.0);

    // Error rate: max over matching windows; empty backend name in
    // a window matches every backend.
    EXPECT_DOUBLE_EQ(plan.errorRate("hgpcn", 1.0), 0.25);
    EXPECT_DOUBLE_EQ(plan.errorRate("hgpcn", 3.5), 0.4);
    EXPECT_DOUBLE_EQ(plan.errorRate("mesorasi", 1.0), 0.0);
    EXPECT_DOUBLE_EQ(plan.errorRate("mesorasi", 4.5), 0.4);
    EXPECT_DOUBLE_EQ(plan.errorRate("hgpcn", 5.0), 0.0);
}

TEST(FaultPlan, TransientErrorDrawsAreKeyedAndDeterministic)
{
    FaultPlan::Config cfg;
    cfg.seed = 7;
    cfg.errors.push_back({"", 0.5, 0.0, 10.0});
    const FaultPlan plan(cfg);
    const FaultPlan replay(cfg);

    // Rate 1 always errors, rate 0 never does.
    FaultPlan::Config sure = cfg;
    sure.errors[0].rate = 1.0;
    EXPECT_TRUE(FaultPlan(sure).transientError("hgpcn", 0, 0, 1,
                                               1.0));
    EXPECT_FALSE(plan.transientError("hgpcn", 0, 0, 1, 99.0));

    // Same key => same outcome, across plan instances; the draw
    // depends on every key component.
    bool attempt_matters = false;
    bool frame_matters = false;
    for (std::size_t f = 0; f < 64; ++f) {
        for (std::uint32_t a = 1; a <= 3; ++a) {
            const bool err =
                plan.transientError("hgpcn", 0, f, a, 1.0);
            EXPECT_EQ(err, replay.transientError("hgpcn", 0, f, a,
                                                 1.0));
            if (err != plan.transientError("hgpcn", 0, f, a + 1,
                                           1.0))
                attempt_matters = true;
            if (err != plan.transientError("hgpcn", 0, f + 64, a,
                                           1.0))
                frame_matters = true;
        }
    }
    EXPECT_TRUE(attempt_matters);
    EXPECT_TRUE(frame_matters);

    // A different seed reshuffles the draws somewhere.
    FaultPlan::Config other = cfg;
    other.seed = 8;
    const FaultPlan reseeded(other);
    bool differs = false;
    for (std::size_t f = 0; f < 64 && !differs; ++f) {
        differs = plan.transientError("hgpcn", 0, f, 1, 1.0) !=
                  reseeded.transientError("hgpcn", 0, f, 1, 1.0);
    }
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, PinnedTransitionSequence)
{
    CircuitBreakerConfig cfg;
    cfg.failureThreshold = 3;
    cfg.openSec = 1.0;
    cfg.halfOpenSuccesses = 2;
    CircuitBreaker breaker(cfg);

    // Closed absorbs threshold-1 failures; the threshold-th trips.
    EXPECT_EQ(breaker.state(0.0), BreakerState::Closed);
    breaker.onFailure(0.1);
    breaker.onFailure(0.2);
    EXPECT_EQ(breaker.state(0.2), BreakerState::Closed);
    EXPECT_EQ(breaker.consecutiveFailures(), 2u);
    breaker.onFailure(0.3);
    EXPECT_EQ(breaker.state(0.3), BreakerState::Open);

    // Open until openSec elapses, then observably Half-Open —
    // state() is const; observation never mutates.
    EXPECT_EQ(breaker.state(1.2), BreakerState::Open);
    EXPECT_EQ(breaker.state(1.3), BreakerState::HalfOpen);
    EXPECT_EQ(breaker.state(1.2999), BreakerState::Open);

    // halfOpenSuccesses probes close it and clear the history.
    breaker.onSuccess(1.4);
    EXPECT_EQ(breaker.state(1.4), BreakerState::HalfOpen);
    breaker.onSuccess(1.5);
    EXPECT_EQ(breaker.state(1.5), BreakerState::Closed);
    EXPECT_EQ(breaker.consecutiveFailures(), 0u);

    // A failed probe re-opens immediately, restarting the window.
    breaker.onFailure(2.0);
    breaker.onFailure(2.1);
    breaker.onFailure(2.2);
    EXPECT_EQ(breaker.state(2.2), BreakerState::Open);
    breaker.onFailure(3.5); // Half-Open probe fails at 3.5
    EXPECT_EQ(breaker.state(3.6), BreakerState::Open);
    EXPECT_EQ(breaker.state(4.6), BreakerState::HalfOpen);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailures)
{
    CircuitBreakerConfig cfg;
    cfg.failureThreshold = 3;
    CircuitBreaker breaker(cfg);
    breaker.onFailure(0.1);
    breaker.onFailure(0.2);
    breaker.onSuccess(0.3);
    breaker.onFailure(0.4);
    breaker.onFailure(0.5);
    EXPECT_EQ(breaker.state(0.5), BreakerState::Closed);
    breaker.onFailure(0.6);
    EXPECT_EQ(breaker.state(0.6), BreakerState::Open);
}

TEST(CircuitBreaker, NamesAndGaugesArePinned)
{
    EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen),
                 "half-open");
    EXPECT_DOUBLE_EQ(breakerStateGauge(BreakerState::Closed), 0.0);
    EXPECT_DOUBLE_EQ(breakerStateGauge(BreakerState::HalfOpen),
                     1.0);
    EXPECT_DOUBLE_EQ(breakerStateGauge(BreakerState::Open), 2.0);
}

// ---------------------------------------------------------- Failover

TEST(Failover, BackoffArithmeticIsPinned)
{
    // Rate-1 storm: every attempt errors, so every frame burns
    // maxAttempts and the full exponential backoff ladder.
    FaultPlan::Config plan_cfg;
    plan_cfg.errors.push_back({"", 1.0, 0.0, 100.0});
    const FaultPlan plan(plan_cfg);

    FaultToleranceConfig ft;
    ft.maxAttempts = 3;
    ft.backoffBaseSec = 0.002;
    ft.backoffMultiplier = 2.0;
    ft.breaker.failureThreshold = 1000; // keep the breaker out

    const SensorStream stream = taggedStream({{0.5, 0}}, 1);
    const FaultResolution res =
        resolveOneShard(stream, plan, ft, {0.01});
    ASSERT_EQ(res.directives.size(), 1u);
    const FrameFaultDirective &d = res.directives[0];
    EXPECT_TRUE(d.failed);
    EXPECT_EQ(d.attempts, 3u);
    // base + base*mult: the refused attempt after maxAttempts
    // charges nothing.
    EXPECT_DOUBLE_EQ(d.backoffSec, 0.002 + 0.004);

    // A deadline cuts the ladder early: after attempt 1, the next
    // try would cost 3*svc + backoff = 0.036 > 0.025, so the frame
    // fails at attempt 2 with only the first backoff charged.
    FaultToleranceConfig tight = ft;
    tight.deadlineSec = 0.025;
    const FaultResolution cut =
        resolveOneShard(stream, plan, tight, {0.01});
    EXPECT_TRUE(cut.directives[0].failed);
    EXPECT_EQ(cut.directives[0].attempts, 2u);
    EXPECT_DOUBLE_EQ(cut.directives[0].backoffSec, 0.002);
}

TEST(Failover, ExactFailoverSensorSets)
{
    // 6 sensors homed sensor%3 on a 3-shard fleet; shard 1 is down
    // for [1, 2). Its sensors (1 and 4) must fail over to the
    // ascending survivor list {0, 2} by sensor % 2 — sensor 1 to
    // shard 2, sensor 4 to shard 0 — and return home afterwards.
    FaultPlan::Config plan_cfg;
    plan_cfg.crashes.push_back({1, 1.0, 2.0});
    const FaultPlan plan(plan_cfg);

    std::vector<std::pair<double, std::size_t>> seq;
    for (std::size_t round = 0; round < 3; ++round) {
        for (std::size_t sensor = 0; sensor < 6; ++sensor) {
            seq.push_back({0.5 + static_cast<double>(round) +
                               0.01 * static_cast<double>(sensor),
                           sensor});
        }
    }
    const SensorStream stream = taggedStream(seq, 6);
    std::vector<std::size_t> assignment;
    for (const std::size_t sensor : stream.sensors)
        assignment.push_back(sensor % 3);

    FaultToleranceConfig ft;
    std::vector<CircuitBreaker> health;
    const FaultResolution res = resolveFaultSchedule(
        stream, assignment, {"hgpcn", "hgpcn", "hgpcn"}, {}, plan,
        ft, health);

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::size_t sensor = stream.sensors[i];
        const double t = stream.frames[i].timestamp;
        std::size_t expect = sensor % 3;
        if (expect == 1 && t >= 1.0 && t < 2.0)
            expect = sensor == 1 ? 2 : 0;
        EXPECT_EQ(res.assignment[i], expect)
            << "frame " << i << " sensor " << sensor << " t " << t;
        EXPECT_FALSE(res.directives[i].failed);
    }
    EXPECT_EQ(res.framesRedirected, 2u);

    // Redirect events in arrival order, then the return-home pair.
    ASSERT_EQ(res.failovers.size(), 4u);
    EXPECT_EQ(res.failovers[0].sensor, 1u);
    EXPECT_EQ(res.failovers[0].fromShard, 1u);
    EXPECT_EQ(res.failovers[0].toShard, 2u);
    EXPECT_EQ(res.failovers[1].sensor, 4u);
    EXPECT_EQ(res.failovers[1].fromShard, 1u);
    EXPECT_EQ(res.failovers[1].toShard, 0u);
    EXPECT_EQ(res.failovers[2].sensor, 1u);
    EXPECT_EQ(res.failovers[2].fromShard, 2u);
    EXPECT_EQ(res.failovers[2].toShard, 1u);
    EXPECT_EQ(res.failovers[3].sensor, 4u);
    EXPECT_EQ(res.failovers[3].fromShard, 0u);
    EXPECT_EQ(res.failovers[3].toShard, 1u);
}

TEST(Failover, WholeFleetDownFailsFramesOutright)
{
    FaultPlan::Config plan_cfg;
    plan_cfg.crashes.push_back({0, 0.0, 10.0});
    const FaultPlan plan(plan_cfg);

    const SensorStream stream =
        taggedStream({{1.0, 0}, {2.0, 0}}, 1);
    const FaultResolution res =
        resolveOneShard(stream, plan, FaultToleranceConfig{});
    for (const FrameFaultDirective &d : res.directives) {
        EXPECT_TRUE(d.failed);
        EXPECT_EQ(d.attempts, 1u);
    }
    EXPECT_EQ(res.framesRedirected, 0u);
    EXPECT_TRUE(res.failovers.empty());
}

TEST(Failover, HalfOpenProbesAreDegraded)
{
    // Rate-1 storm until t=2 trips the breaker; after openSec the
    // first frames to arrive see Half-Open and run degraded.
    FaultPlan::Config plan_cfg;
    plan_cfg.errors.push_back({"", 1.0, 0.0, 2.0});
    const FaultPlan plan(plan_cfg);

    FaultToleranceConfig ft;
    ft.maxAttempts = 2;
    ft.breaker.failureThreshold = 2;
    ft.breaker.openSec = 1.0;
    ft.breaker.halfOpenSuccesses = 2;
    ft.degradeOnHalfOpen = true;

    // Frame at 0.5 trips the breaker (2 failed attempts); 1.0 and
    // 1.4 arrive Open (all shards down -> failed); 1.6 and 1.7
    // arrive Half-Open (probes, degraded, storm over... the storm
    // still covers t<2, so use stamps past it).
    const SensorStream stream = taggedStream(
        {{0.5, 0}, {1.0, 0}, {2.1, 0}, {2.2, 0}, {2.3, 0}}, 1);
    const FaultResolution res =
        resolveOneShard(stream, plan, ft);

    EXPECT_TRUE(res.directives[0].failed); // tripped the breaker
    EXPECT_TRUE(res.directives[1].failed); // breaker Open: no shard
    // t=2.1 > openedAt(0.5)+1.0: Half-Open probes run degraded.
    EXPECT_FALSE(res.directives[2].failed);
    EXPECT_TRUE(res.directives[2].degraded);
    EXPECT_FALSE(res.directives[3].failed);
    EXPECT_TRUE(res.directives[3].degraded);
    // Two probe successes close the breaker: full fidelity again.
    EXPECT_FALSE(res.directives[4].degraded);

    // The transition record captures the whole arc.
    ASSERT_EQ(res.transitions.size(), 3u);
    EXPECT_EQ(res.transitions[0].to, BreakerState::Open);
    EXPECT_EQ(res.transitions[1].to, BreakerState::HalfOpen);
    EXPECT_EQ(res.transitions[2].to, BreakerState::Closed);
}

// ------------------------------------------- ShardedRunner accounting

TEST(FaultServing, ConservationAndAttributionWithFailures)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    // A hot storm with few attempts: a healthy fraction of frames
    // terminally fails, exercising the failed-frame accounting.
    FaultPlan::Config plan_cfg;
    plan_cfg.seed = 5;
    plan_cfg.errors.push_back({"", 0.45, 0.0, 1e9});
    const FaultPlan plan(plan_cfg);

    ShardedRunner::Config cfg;
    cfg.shards = 2;
    cfg.placement = PlacementPolicy::HashBySensor;
    cfg.faultPlan = &plan;
    cfg.faultTolerance.maxAttempts = 2;
    cfg.faultTolerance.breaker.failureThreshold = 1000;

    const SensorStream stream = evenStream(4, 12, 1.0);
    ShardedRunner runner(system, spec, cfg);
    const ServingResult result = runner.serve(stream);
    const ServingReport &rep = result.report;

    EXPECT_GT(rep.framesFailed, 0u);
    EXPECT_GT(rep.framesRetried, 0u);
    EXPECT_EQ(rep.framesIn,
              rep.framesProcessed + rep.framesDropped +
                  rep.framesAbandoned + rep.framesShed +
                  rep.framesFailed);

    // Failed frames never appear among the completions.
    EXPECT_EQ(result.frames.size(), rep.framesProcessed);

    // Per-sensor and per-backend slices sum to the aggregate.
    std::size_t sensor_failed = 0;
    std::size_t sensor_retried = 0;
    for (const SensorServingReport &sr : rep.sensors) {
        sensor_failed += sr.framesFailed;
        sensor_retried += sr.framesRetried;
        EXPECT_LE(sr.framesFailed, sr.framesMissed);
        EXPECT_LE(sr.framesRetried, sr.framesDone);
    }
    EXPECT_EQ(sensor_failed, rep.framesFailed);
    EXPECT_EQ(sensor_retried, rep.framesRetried);
    std::size_t backend_failed = 0;
    for (const BackendServingReport &br : rep.backends)
        backend_failed += br.framesFailed;
    EXPECT_EQ(backend_failed, rep.framesFailed);

    // Shard runtime reports carry the same tallies.
    std::size_t shard_failed = 0;
    for (const RuntimeReport &sr : rep.shardReports)
        shard_failed += sr.framesFailed;
    EXPECT_EQ(shard_failed, rep.framesFailed);

    // The report renders the fault line only when faults fired.
    EXPECT_NE(rep.toString().find("failed"), std::string::npos);
}

TEST(FaultServing, ZeroFaultPlanMatchesNoPlanServe)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();
    const SensorStream stream = evenStream(3, 8, 1.0);

    ShardedRunner::Config bare_cfg;
    bare_cfg.shards = 2;
    ShardedRunner bare(system, spec, bare_cfg);
    const ServingResult clean = bare.serve(stream);

    const FaultPlan zero;
    ShardedRunner::Config zero_cfg = bare_cfg;
    zero_cfg.faultPlan = &zero;
    ShardedRunner zeroed(system, spec, zero_cfg);
    const ServingResult inert = zeroed.serve(stream);

    EXPECT_TRUE(identicalServes(clean, inert));
    EXPECT_EQ(inert.report.framesFailed, 0u);
    EXPECT_EQ(inert.report.framesRetried, 0u);
    EXPECT_EQ(inert.report.framesDegraded, 0u);
    // The inert serve registers no fault counters at all.
    EXPECT_EQ(inert.metrics.countOf("fault.failovers"), 0u);
    EXPECT_EQ(
        inert.report.toString().find("fault-tolerance"),
        std::string::npos);
}

TEST(FaultServing, CleanDirectivesMatchNoDirectives)
{
    // The runtime layer's own inertness: a StreamRunner fed
    // explicitly clean directives schedules byte-identically to
    // one fed none (the pre-fault schedule, pinned).
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const std::vector<Frame> frames =
        evenStream(1, 8, 0.5).framesOfSensor(0);

    StreamRunner::Config rcfg;
    rcfg.inputPoints = 256;
    StreamRunner runner(system.preprocessor(), system.backend(),
                        rcfg);

    const RuntimeResult plain = runner.run(frames);
    const std::vector<FrameFaultDirective> clean(frames.size());
    const RuntimeResult directed =
        runner.run(frames, {}, nullptr, &clean);

    EXPECT_EQ(plain.report.toString(),
              directed.report.toString());
    ASSERT_EQ(plain.frames.size(), directed.frames.size());
    for (std::size_t i = 0; i < plain.frames.size(); ++i) {
        EXPECT_EQ(plain.frames[i].doneSec,
                  directed.frames[i].doneSec);
        EXPECT_EQ(plain.frames[i].latencySec,
                  directed.frames[i].latencySec);
    }
}

TEST(FaultServing, FaultedReplayIsByteIdentical)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    FaultPlan::Config plan_cfg;
    plan_cfg.seed = 17;
    plan_cfg.crashes.push_back({1, 0.3, 0.6});
    plan_cfg.slowdowns.push_back({0, 0.4, 0.8, 1.5});
    plan_cfg.errors.push_back({"", 0.3, 0.5, 0.9});
    const FaultPlan plan(plan_cfg);

    ShardedRunner::Config cfg;
    cfg.shards = 3;
    cfg.placement = PlacementPolicy::HashBySensor;
    cfg.faultPlan = &plan;
    cfg.faultTolerance.breaker.openSec = 0.2;

    const SensorStream stream = evenStream(6, 8, 1.0);
    ShardedRunner runner(system, spec, cfg);
    ShardedRunner fresh(system, spec, cfg);
    const ServingResult r1 = runner.serve(stream);
    const ServingResult r2 = runner.serve(stream); // same fleet
    const ServingResult r3 = fresh.serve(stream);  // fresh fleet

    EXPECT_TRUE(identicalServes(r1, r2));
    EXPECT_TRUE(identicalServes(r1, r3));
    EXPECT_EQ(r1.metrics.countOf("fault.failovers"),
              r2.metrics.countOf("fault.failovers"));
    EXPECT_EQ(r1.metrics.countOf("fault.frames_redirected"),
              r2.metrics.countOf("fault.frames_redirected"));
    EXPECT_GT(r1.metrics.countOf("fault.frames_redirected"), 0u);
}

TEST(FaultServing, DegradedFramesSampleFewerPoints)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();
    const SensorStream stream = evenStream(2, 4, 0.5);

    ShardedRunner::Config cfg;
    cfg.shards = 1;
    cfg.faultTolerance.degradedSampleFraction = 0.5;
    ShardedRunner runner(system, spec, cfg);

    // Degrade sensor 1 only; sensor 0 keeps the full K = 256.
    const std::vector<bool> degrade = {false, true};
    const ServingResult result =
        runner.serve(stream, {}, &degrade);
    const ServingReport &rep = result.report;

    EXPECT_EQ(rep.framesDegraded, 4u);
    EXPECT_EQ(rep.sensors[0].framesDegraded, 0u);
    EXPECT_EQ(rep.sensors[1].framesDegraded, 4u);
    for (const ServedFrame &sf : result.frames) {
        const std::size_t expect = sf.sensor == 1 ? 128u : 256u;
        EXPECT_EQ(sf.result.preprocess.sampled.size(), expect)
            << "sensor " << sf.sensor;
    }
    // Degradation alone must not fail or retry anything.
    EXPECT_EQ(rep.framesFailed, 0u);
    EXPECT_EQ(rep.framesRetried, 0u);
    EXPECT_EQ(rep.framesIn, rep.framesProcessed);
}

// ----------------------------------------------------- Elastic layer

TEST(FaultServing, ElasticDegradeInsteadOfShedKeepsSensorsLive)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    // The exact shed scenario of
    // ElasticRunner.AdmissionShedsExactLowestPrioritySet, with
    // degrade-instead-of-shed: the same decision (sensors 1 and 2
    // lose their full-fidelity budget) now keeps every sensor
    // live at half fidelity instead of refusing frames.
    ElasticRunner::Config cfg;
    cfg.epochSec = 2.0;
    cfg.fleet.shards = 1;
    cfg.fleet.assumedServiceSec = 0.5;
    cfg.autoscaler.minShards = 1;
    cfg.autoscaler.maxShards = 1;
    cfg.admission.enabled = true;
    cfg.admission.headroom = 0.9;
    cfg.admission.degradeInsteadOfShed = true;

    std::vector<std::pair<double, std::size_t>> seq;
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t s = 0; s < 3; ++s) {
            seq.push_back({2.0 * (static_cast<double>(i) +
                                  0.2 * static_cast<double>(s) +
                                  0.1) /
                               4.0,
                           s});
        }
    }
    const SensorStream stream = taggedStream(seq, 3);
    ElasticRunner elastic(system, spec, cfg);
    const ElasticResult result =
        elastic.serve(stream, {2, 0, 1});

    ASSERT_EQ(result.epochs.size(), 1u);
    const EpochLog &ep = result.epochs[0];
    EXPECT_TRUE(ep.shedSensors.empty());
    EXPECT_EQ(ep.degradedSensors,
              (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(ep.framesShed, 0u);
    EXPECT_EQ(ep.framesAdmitted, 12u);

    const ServingReport &rep = result.serving.report;
    EXPECT_EQ(rep.framesShed, 0u);
    EXPECT_EQ(rep.framesDegraded,
              rep.sensors[1].framesDone +
                  rep.sensors[2].framesDone);
    EXPECT_GT(rep.framesDegraded, 0u);
    EXPECT_EQ(rep.sensors[0].framesDegraded, 0u);
    // Every sensor still delivered frames.
    for (const SensorServingReport &sr : rep.sensors)
        EXPECT_GT(sr.framesDone, 0u) << "sensor " << sr.sensor;
    EXPECT_EQ(rep.framesIn,
              rep.framesProcessed + rep.framesDropped +
                  rep.framesAbandoned + rep.framesShed);

    // The decision log narrates the degradation — and only when
    // it happens, so zero-fault logs stay byte-compatible.
    EXPECT_NE(result.decisionLog().find("degradedSensors=1,2"),
              std::string::npos)
        << result.decisionLog();
}

// ------------------------------------------------------------ Traces

TEST(FaultServing, FaultEventsAppearInTheVirtualTrace)
{
    HgPcnSystem::Config system;
    const PointNet2Spec spec = tinyClassifier();

    FaultPlan::Config plan_cfg;
    plan_cfg.seed = 3;
    plan_cfg.crashes.push_back({1, 0.2, 0.6});
    plan_cfg.errors.push_back({"", 0.5, 0.0, 1e9});
    const FaultPlan plan(plan_cfg);

    ShardedRunner::Config cfg;
    cfg.shards = 2;
    cfg.faultPlan = &plan;
    cfg.faultTolerance.maxAttempts = 2;
    cfg.faultTolerance.breaker.failureThreshold = 3;
    cfg.faultTolerance.breaker.openSec = 0.2;

    const SensorStream stream = evenStream(4, 8, 1.0);
    ShardedRunner runner(system, spec, cfg);

    Tracer::global().setEnabled(false);
    Tracer::global().clear();
    Tracer::global().setEnabled(true);
    const ServingResult result = runner.serve(stream);
    Tracer::global().setEnabled(false);

    bool saw_retry = false;
    bool saw_fail = false;
    bool saw_failover = false;
    bool saw_breaker = false;
    for (const TraceEvent &ev : Tracer::global().snapshot()) {
        if (ev.clock != TraceClock::Virtual)
            continue;
        if (ev.name.rfind("retry:", 0) == 0)
            saw_retry = true;
        if (ev.name.rfind("fail:", 0) == 0)
            saw_fail = true;
        if (ev.name.rfind("failover:", 0) == 0)
            saw_failover = true;
        if (ev.name.rfind("breaker:", 0) == 0)
            saw_breaker = true;
    }
    Tracer::global().clear();

    EXPECT_GT(result.report.framesRetried, 0u);
    EXPECT_TRUE(saw_retry);
    EXPECT_TRUE(saw_fail);
    EXPECT_TRUE(saw_failover);
    EXPECT_TRUE(saw_breaker);
}

} // namespace
} // namespace hgpcn
