/**
 * @file
 * Tests for the library extensions beyond the paper's core: the
 * paper-literal naive FPS, the radix-sort octree build, PLY I/O,
 * trace reports, pipelined stream processing and the adaptive VEG
 * expansion level.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "datasets/ply_io.h"
#include "gather/veg_gatherer.h"
#include "nn/trace_report.h"
#include "sampling/fps_sampler.h"
#include "sim/down_sampling_unit.h"
#include "sim/fcu_dla.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

// ------------------------------------------------------- naive FPS

TEST(NaiveFps, PicksIdenticalToCachedFps)
{
    // The literal Algorithm 1 and the cached-distance formulation
    // compute the same min-distance-to-S objective, so with equal
    // seeds the picks must be identical.
    const PointCloud cloud = randomCloud(400, 1);
    FpsSampler cached(9);
    NaiveFpsSampler naive(9);
    EXPECT_EQ(cached.sample(cloud, 48).indices,
              naive.sample(cloud, 48).indices);
}

TEST(NaiveFps, QuadraticAccessCounters)
{
    const PointCloud cloud = randomCloud(200, 2);
    const auto result = NaiveFpsSampler(1).sample(cloud, 20);
    // Sum over iterations of n*|S| = n * (1 + 2 + ... + 19).
    const std::uint64_t expected = 200ull * (19 * 20 / 2);
    EXPECT_EQ(result.stats.get("sample.distance_computations"),
              expected);
    // Whole distance array rewritten and re-read per iteration.
    EXPECT_EQ(result.stats.get("sample.intermediate_writes"),
              200ull * 19);
    EXPECT_EQ(result.stats.get("sample.intermediate_reads"),
              200ull * 19);
}

TEST(NaiveFps, FarMoreTrafficThanCached)
{
    const PointCloud cloud = randomCloud(500, 3);
    const auto naive = NaiveFpsSampler(1).sample(cloud, 64);
    const auto cached = FpsSampler(1).sample(cloud, 64);
    EXPECT_GT(naive.stats.get("sample.host_reads"),
              4 * cached.stats.get("sample.host_reads"));
}

// ------------------------------------------------------ radix sort

TEST(RadixBuild, IdenticalToComparisonSort)
{
    const PointCloud cloud = randomCloud(3000, 4);
    Octree::Config radix_cfg;
    radix_cfg.maxDepth = 9;
    radix_cfg.useRadixSort = true;
    Octree::Config std_cfg = radix_cfg;
    std_cfg.useRadixSort = false;

    const Octree a = Octree::build(cloud, radix_cfg);
    const Octree b = Octree::build(cloud, std_cfg);
    ASSERT_EQ(a.pointCodes().size(), b.pointCodes().size());
    EXPECT_EQ(a.pointCodes(), b.pointCodes());
    EXPECT_EQ(a.permutation(), b.permutation());
    EXPECT_EQ(a.nodes().size(), b.nodes().size());
}

TEST(RadixBuild, StableForDuplicateCodes)
{
    // Duplicate coordinates produce equal codes; the radix sort is
    // stable, so original order (ascending index) must be kept.
    PointCloud cloud;
    for (int i = 0; i < 64; ++i)
        cloud.add({0.25f, 0.25f, 0.25f});
    Octree::Config cfg;
    cfg.maxDepth = 6;
    const Octree tree = Octree::build(cloud, cfg);
    const auto &perm = tree.permutation();
    for (std::size_t i = 0; i < perm.size(); ++i)
        EXPECT_EQ(perm[i], i);
}

TEST(RadixBuild, SortOpsCounterLinear)
{
    const PointCloud cloud = randomCloud(1000, 5);
    Octree::Config cfg;
    cfg.maxDepth = 8; // 24 key bits -> 3 byte passes
    const Octree tree = Octree::build(cloud, cfg);
    EXPECT_EQ(tree.buildStats().get("octree.sort_ops"),
              1000ull * 3 * 3);
}

// ------------------------------------------------------------- PLY

TEST(PlyIo, RoundTripsPointsAndLabels)
{
    Frame frame;
    frame.name = "t";
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        frame.cloud.add({rng.uniform(-2.0f, 2.0f),
                         rng.uniform(-2.0f, 2.0f),
                         rng.uniform(-2.0f, 2.0f)});
        frame.labels.push_back(static_cast<int>(rng.below(5)));
    }
    const std::string path = "/tmp/hgpcn_test_roundtrip.ply";
    ASSERT_TRUE(ply::write(path, frame));
    const Frame loaded = ply::read(path);
    ASSERT_EQ(loaded.cloud.size(), frame.cloud.size());
    ASSERT_EQ(loaded.labels.size(), frame.labels.size());
    for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
        const Vec3 &a =
            frame.cloud.position(static_cast<PointIndex>(i));
        const Vec3 &b =
            loaded.cloud.position(static_cast<PointIndex>(i));
        EXPECT_NEAR(a.x, b.x, 1e-4f);
        EXPECT_NEAR(a.y, b.y, 1e-4f);
        EXPECT_NEAR(a.z, b.z, 1e-4f);
        EXPECT_EQ(frame.labels[i], loaded.labels[i]);
    }
    std::remove(path.c_str());
}

TEST(PlyIo, UnlabelledCloudOmitsLabelProperty)
{
    Frame frame;
    frame.cloud.add({1, 2, 3});
    const std::string path = "/tmp/hgpcn_test_nolabel.ply";
    ASSERT_TRUE(ply::write(path, frame));
    const Frame loaded = ply::read(path);
    EXPECT_EQ(loaded.cloud.size(), 1u);
    EXPECT_TRUE(loaded.labels.empty());
    std::remove(path.c_str());
}

TEST(PlyIo, WriteFailsOnBadPath)
{
    Frame frame;
    frame.cloud.add({0, 0, 0});
    EXPECT_FALSE(ply::write("/nonexistent-dir/x.ply", frame));
}

// ----------------------------------------------------- trace report

TEST(TraceReport, GemmTableListsLayers)
{
    ExecutionTrace trace;
    trace.gemms.push_back({"sa0.fc0", 128, 3, 64});
    trace.gemms.push_back({"head.fc1", 1, 512, 40});
    const std::string table = renderGemmTable(trace);
    EXPECT_NE(table.find("sa0.fc0"), std::string::npos);
    EXPECT_NE(table.find("head.fc1"), std::string::npos);
    EXPECT_NE(table.find("24,576"), std::string::npos); // 128*3*64
}

TEST(TraceReport, GatherTableListsWorkload)
{
    ExecutionTrace trace;
    GatherOp op;
    op.layer = "sa1";
    op.method = "VEG";
    op.centroids = 128;
    op.k = 32;
    op.inputPoints = 512;
    op.stats.set("gather.distance_computations", 4242);
    trace.gathers.push_back(op);
    const std::string table = renderGatherTable(trace);
    EXPECT_NE(table.find("sa1"), std::string::npos);
    EXPECT_NE(table.find("VEG"), std::string::npos);
    EXPECT_NE(table.find("4,242"), std::string::npos);
}

TEST(TraceReport, TotalsLine)
{
    ExecutionTrace trace;
    trace.gemms.push_back({"a", 10, 10, 10});
    const std::string totals = renderTraceTotals(trace);
    EXPECT_NE(totals.find("1,000 MACs"), std::string::npos);
}

// --------------------------------------------- pipelined streaming

TEST(PipelinedStream, ThroughputAtLeastSerial)
{
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 250;
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < 3; ++f)
        frames.push_back(lidar.generate(f));

    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, spec);
    const StreamReport report = system.processStream(frames);
    EXPECT_GE(report.pipelinedFps, report.meanFps * 0.999);
    EXPECT_GT(report.pipelinedFps, 0.0);
    EXPECT_EQ(report.pipelinedRealTime,
              report.pipelinedFps >= report.generationFps
                  ? RealTimeVerdict::Yes
                  : RealTimeVerdict::No);
}

TEST(PipelinedStream, OverlapHidesTheShorterStage)
{
    // With build time b and FPGA time f per frame, pipelined
    // throughput approaches 1/max(b, f) while serial is 1/(b+f).
    KittiLike::Config lidar_cfg;
    lidar_cfg.azimuthSteps = 250;
    const KittiLike lidar(lidar_cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < 4; ++f)
        frames.push_back(lidar.generate(f));

    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, spec);
    const StreamReport report = system.processStream(frames);
    // Strictly better than serial unless one stage is ~zero.
    EXPECT_GT(report.pipelinedFps, report.meanFps);
}

// ----------------------------------------- adaptive VEG expansion

TEST(AdaptiveVeg, LevelFollowsLocalDensity)
{
    // Dense cluster + sparse halo: the leaf containing a dense
    // anchor is deeper than the leaf of a sparse anchor.
    PointCloud cloud;
    Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
        cloud.add(
            {0.5f + 0.01f * static_cast<float>(rng.normal()),
             0.5f + 0.01f * static_cast<float>(rng.normal()),
             0.5f + 0.01f * static_cast<float>(rng.normal())});
    }
    for (int i = 0; i < 300; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    Octree::Config cfg;
    cfg.maxDepth = 12;
    const Octree tree = Octree::build(cloud, cfg);
    VegKnn veg(tree);
    const int dense_level = veg.levelFor({0.5f, 0.5f, 0.5f});
    const int sparse_level = veg.levelFor({0.05f, 0.95f, 0.05f});
    EXPECT_GT(dense_level, sparse_level);
}

TEST(AdaptiveVeg, BoundsLastRingOnNonUniformClouds)
{
    // The global-level fallback explodes on dense clusters; the
    // adaptive default keeps the sorted set small.
    PointCloud cloud;
    Rng rng(8);
    for (int i = 0; i < 4000; ++i) {
        cloud.add(
            {0.3f + 0.005f * static_cast<float>(rng.normal()),
             0.3f + 0.005f * static_cast<float>(rng.normal()),
             0.3f + 0.005f * static_cast<float>(rng.normal())});
    }
    for (int i = 0; i < 1000; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    Octree::Config cfg;
    cfg.maxDepth = 12;
    const Octree tree = Octree::build(cloud, cfg);

    std::vector<PointIndex> centrals;
    for (PointIndex c = 0; c < 64; ++c)
        centrals.push_back(c * 70);

    VegKnn adaptive(tree);
    const auto adaptive_result = adaptive.gather(centrals, 32);

    VegKnn::Config coarse_cfg;
    coarse_cfg.gridLevel = 3;
    VegKnn coarse(tree, coarse_cfg);
    const auto coarse_result = coarse.gather(centrals, 32);

    EXPECT_LT(
        adaptive_result.stats.get("gather.sort_candidates") * 4,
        coarse_result.stats.get("gather.sort_candidates"));
}

// ---------------------------------------------- accelerator clock

TEST(AcceleratorClock, FcuScalesWithComparisonClock)
{
    ExecutionTrace trace;
    trace.gemms.push_back({"a", 4096, 64, 64});
    SimConfig slow = SimConfig::defaults();
    slow.fpga.acceleratorClockHz = 250e6;
    // Avoid the memory bound so the clock is visible.
    slow.memory.bandwidthBytesPerSec = 1e12;
    SimConfig fast = slow;
    fast.fpga.acceleratorClockHz = 1e9;
    const double slow_sec = FcuSim(slow).run(trace).totalSec();
    const double fast_sec = FcuSim(fast).run(trace).totalSec();
    EXPECT_NEAR(slow_sec / fast_sec, 4.0, 1e-6);
}

TEST(AcceleratorClock, PreprocessingClockIndependent)
{
    // The Down-sampling Unit stays on the prototype clock; changing
    // the accelerator comparison clock must not affect it.
    StatSet stats;
    stats.set("sample.levels_visited", 10000);
    SimConfig a = SimConfig::defaults();
    SimConfig b = SimConfig::defaults();
    b.fpga.acceleratorClockHz = 2e9;
    const DownsamplingUnitSim sim_a(a), sim_b(b);
    EXPECT_DOUBLE_EQ(sim_a.run(stats, 64, 1000).descentSec,
                     sim_b.run(stats, 64, 1000).descentSec);
}

} // namespace
} // namespace hgpcn
