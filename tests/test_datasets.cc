/**
 * @file
 * Tests for the synthetic dataset generators: sizes, determinism,
 * labels, non-uniformity control and the Table I suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "datasets/dataset_suite.h"
#include "datasets/kitti_like.h"
#include "datasets/modelnet_like.h"
#include "datasets/s3dis_like.h"
#include "datasets/shape_sampler.h"
#include "datasets/shapenet_like.h"
#include "octree/octree.h"

namespace hgpcn
{
namespace
{

// -------------------------------------------------------- primitives

TEST(ShapeSampler, SpherePointsOnSurface)
{
    PointCloud cloud;
    Rng rng(1);
    shapes::sphere(cloud, 200, {1, 2, 3}, 0.5f, rng);
    ASSERT_EQ(cloud.size(), 200u);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const float r = cloud.position(static_cast<PointIndex>(i))
                            .dist({1, 2, 3});
        EXPECT_NEAR(r, 0.5f, 1e-4f);
    }
}

TEST(ShapeSampler, BoxPointsOnSurface)
{
    PointCloud cloud;
    Rng rng(2);
    const Vec3 half{1.0f, 0.5f, 0.25f};
    shapes::box(cloud, 300, {0, 0, 0}, half, rng);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3 &p = cloud.position(static_cast<PointIndex>(i));
        const bool on_face = std::abs(std::abs(p.x) - half.x) < 1e-5f ||
                             std::abs(std::abs(p.y) - half.y) < 1e-5f ||
                             std::abs(std::abs(p.z) - half.z) < 1e-5f;
        EXPECT_TRUE(on_face);
        EXPECT_LE(std::abs(p.x), half.x + 1e-5f);
        EXPECT_LE(std::abs(p.y), half.y + 1e-5f);
        EXPECT_LE(std::abs(p.z), half.z + 1e-5f);
    }
}

TEST(ShapeSampler, CylinderRadiusAndHeight)
{
    PointCloud cloud;
    Rng rng(3);
    shapes::cylinder(cloud, 200, {0, 0, 1}, 0.3f, 2.0f, rng);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const Vec3 &p = cloud.position(static_cast<PointIndex>(i));
        EXPECT_NEAR(std::sqrt(p.x * p.x + p.y * p.y), 0.3f, 1e-4f);
        EXPECT_GE(p.z, 1.0f);
        EXPECT_LE(p.z, 3.0f + 1e-5f);
    }
}

TEST(ShapeSampler, LabelsAppendedWhenRequested)
{
    PointCloud cloud;
    std::vector<int> labels;
    Rng rng(4);
    shapes::plane(cloud, 50, {0, 0, 0}, 1, 1, rng, &labels, 7);
    ASSERT_EQ(labels.size(), 50u);
    for (int l : labels)
        EXPECT_EQ(l, 7);
}

// ------------------------------------------------------ ModelNetLike

TEST(ModelNetLike, FrameSizeMatchesConfig)
{
    ModelNetLike::Config cfg;
    cfg.points = 5000;
    const Frame frame = ModelNetLike::generate("MN.chair", cfg);
    EXPECT_EQ(frame.cloud.size(), 5000u);
    EXPECT_EQ(frame.labels.size(), 5000u);
    EXPECT_EQ(frame.name, "MN.chair");
}

TEST(ModelNetLike, DeterministicPerNameAndSeed)
{
    ModelNetLike::Config cfg;
    cfg.points = 1000;
    const Frame a = ModelNetLike::generate("MN.piano", cfg);
    const Frame b = ModelNetLike::generate("MN.piano", cfg);
    ASSERT_EQ(a.cloud.size(), b.cloud.size());
    for (std::size_t i = 0; i < a.cloud.size(); ++i) {
        EXPECT_EQ(a.cloud.position(static_cast<PointIndex>(i)),
                  b.cloud.position(static_cast<PointIndex>(i)));
    }
}

TEST(ModelNetLike, DifferentObjectsDiffer)
{
    ModelNetLike::Config cfg;
    cfg.points = 1000;
    const Frame a = ModelNetLike::generate("MN.piano", cfg);
    const Frame b = ModelNetLike::generate("MN.plant", cfg);
    bool differs = false;
    for (std::size_t i = 0; i < a.cloud.size() && !differs; ++i) {
        differs = !(a.cloud.position(static_cast<PointIndex>(i)) ==
                    b.cloud.position(static_cast<PointIndex>(i)));
    }
    EXPECT_TRUE(differs);
}

TEST(ModelNetLike, PianoDeeperOctreeThanPlant)
{
    // The Fig. 11 effect: more non-uniform objects build deeper
    // octrees at the same point count.
    ModelNetLike::Config cfg;
    cfg.points = 20000;
    const Frame piano = ModelNetLike::generate("MN.piano", cfg);
    const Frame plant = ModelNetLike::generate("MN.plant", cfg);

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 16;
    tree_cfg.leafCapacity = 8;
    const Octree t_piano = Octree::build(piano.cloud, tree_cfg);
    const Octree t_plant = Octree::build(plant.cloud, tree_cfg);
    EXPECT_GT(t_piano.depth(), t_plant.depth());
}

TEST(ModelNetLike, NonUniformityKnobOverridesDefault)
{
    ModelNetLike::Config uniform_cfg;
    uniform_cfg.points = 10000;
    uniform_cfg.nonUniformity = 0.0f;
    ModelNetLike::Config cluster_cfg = uniform_cfg;
    cluster_cfg.nonUniformity = 0.6f;

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 16;
    tree_cfg.leafCapacity = 8;
    const Octree t_uniform = Octree::build(
        ModelNetLike::generate("MN.sofa", uniform_cfg).cloud, tree_cfg);
    const Octree t_cluster = Octree::build(
        ModelNetLike::generate("MN.sofa", cluster_cfg).cloud, tree_cfg);
    EXPECT_GT(t_cluster.depth(), t_uniform.depth());
}

TEST(ModelNetLike, ObjectNameListNonEmptyAndOrdered)
{
    const auto &names = ModelNetLike::objectNames();
    EXPECT_GE(names.size(), 4u);
    EXPECT_NE(std::find(names.begin(), names.end(), "MN.piano"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "MN.plant"),
              names.end());
}

// ------------------------------------------------------ ShapeNetLike

TEST(ShapeNetLike, SmallFramesWithPartLabels)
{
    ShapeNetLike::Config cfg;
    cfg.points = 2500;
    cfg.parts = 4;
    const Frame frame = ShapeNetLike::generate("SN.table", cfg);
    EXPECT_EQ(frame.cloud.size(), 2500u);
    EXPECT_LT(frame.cloud.size(), 4096u); // paper: raw < 4096
    ASSERT_EQ(frame.labels.size(), 2500u);
    std::set<int> parts(frame.labels.begin(), frame.labels.end());
    EXPECT_EQ(parts.size(), 4u);
    for (int l : frame.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, 4);
    }
}

TEST(ShapeNetLike, Deterministic)
{
    ShapeNetLike::Config cfg;
    const Frame a = ShapeNetLike::generate("SN.x", cfg);
    const Frame b = ShapeNetLike::generate("SN.x", cfg);
    ASSERT_EQ(a.cloud.size(), b.cloud.size());
    EXPECT_EQ(a.cloud.position(17), b.cloud.position(17));
}

// -------------------------------------------------------- S3disLike

TEST(S3disLike, RoomSizeAndLabels)
{
    S3disLike::Config cfg;
    cfg.points = 30000;
    const Frame frame = S3disLike::generate("room0", cfg);
    EXPECT_EQ(frame.cloud.size(), 30000u);
    ASSERT_EQ(frame.labels.size(), 30000u);
    for (int l : frame.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, S3disLike::kClasses);
    }
}

TEST(S3disLike, PointsWithinRoomBounds)
{
    S3disLike::Config cfg;
    cfg.points = 20000;
    const Frame frame = S3disLike::generate("room1", cfg);
    const Aabb box = frame.cloud.bounds();
    EXPECT_LE(box.extent().x, cfg.roomSize.x + 2.5f);
    EXPECT_LE(box.extent().y, cfg.roomSize.y + 2.5f);
    EXPECT_LE(box.extent().z, cfg.roomSize.z + 2.5f);
}

TEST(S3disLike, ContainsStructuralClasses)
{
    S3disLike::Config cfg;
    cfg.points = 20000;
    const Frame frame = S3disLike::generate("room2", cfg);
    std::set<int> classes(frame.labels.begin(), frame.labels.end());
    EXPECT_TRUE(classes.count(0)); // ceiling
    EXPECT_TRUE(classes.count(1)); // floor
    EXPECT_TRUE(classes.count(2)); // wall
}

// -------------------------------------------------------- KittiLike

TEST(KittiLike, FrameHasTimestampAndLabels)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 300;
    const KittiLike lidar(cfg);
    const Frame frame = lidar.generate(3);
    EXPECT_DOUBLE_EQ(frame.timestamp, 0.3);
    EXPECT_GT(frame.cloud.size(), 1000u);
    EXPECT_EQ(frame.labels.size(), frame.cloud.size());
}

TEST(KittiLike, PointCountVariesAcrossFrames)
{
    // Paper Section II-A: "the number of points varies widely
    // between frames" — moving objects change the return count.
    KittiLike::Config cfg;
    cfg.azimuthSteps = 400;
    const KittiLike lidar(cfg);
    std::set<std::size_t> counts;
    for (std::size_t f = 0; f < 6; ++f)
        counts.insert(lidar.generate(f).cloud.size());
    EXPECT_GT(counts.size(), 1u);
}

TEST(KittiLike, RangeBounded)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 300;
    const KittiLike lidar(cfg);
    const Frame frame = lidar.generate(0);
    for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
        const Vec3 &p = frame.cloud.position(static_cast<PointIndex>(i));
        const float range = (p - Vec3{0, 0, 1.73f}).norm();
        EXPECT_LE(range, cfg.maxRange * 1.05f);
    }
}

TEST(KittiLike, GroundPointsNearZeroHeight)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 300;
    cfg.rangeNoise = 0.0f;
    const KittiLike lidar(cfg);
    const Frame frame = lidar.generate(0);
    for (std::size_t i = 0; i < frame.cloud.size(); ++i) {
        if (frame.labels[i] == KittiLike::kGround) {
            EXPECT_NEAR(
                frame.cloud.position(static_cast<PointIndex>(i)).z,
                0.0f, 0.05f);
        }
    }
}

TEST(KittiLike, ContainsMultipleClasses)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 600;
    const KittiLike lidar(cfg);
    const Frame frame = lidar.generate(0);
    std::set<int> classes(frame.labels.begin(), frame.labels.end());
    EXPECT_GE(classes.size(), 3u);
    EXPECT_TRUE(classes.count(KittiLike::kGround));
}

TEST(KittiLike, GenerationRateMatchesConfig)
{
    KittiLike::Config cfg;
    cfg.frameRateHz = 10.0;
    const KittiLike lidar(cfg);
    EXPECT_DOUBLE_EQ(lidar.generationRateFps(), 10.0);
    EXPECT_NEAR(lidar.generate(10).timestamp - lidar.generate(9).timestamp,
                0.1, 1e-9);
}

TEST(KittiLike, Deterministic)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 300;
    const KittiLike a(cfg), b(cfg);
    const Frame fa = a.generate(2), fb = b.generate(2);
    ASSERT_EQ(fa.cloud.size(), fb.cloud.size());
    EXPECT_EQ(fa.cloud.position(11), fb.cloud.position(11));
}

// ----------------------------------------------------- DatasetSuite

TEST(DatasetSuite, TableOneHasFourTasks)
{
    const auto suite = DatasetSuite::tableOneSmall();
    ASSERT_EQ(suite.size(), 4u);
    EXPECT_EQ(suite[0].dataset, "ModelNet40");
    EXPECT_EQ(suite[0].inputSize, 1024u);
    EXPECT_EQ(suite[1].dataset, "ShapeNet");
    EXPECT_EQ(suite[1].inputSize, 2048u);
    EXPECT_EQ(suite[2].dataset, "S3DIS");
    EXPECT_EQ(suite[2].inputSize, 4096u);
    EXPECT_EQ(suite[3].dataset, "KITTI");
    EXPECT_EQ(suite[3].inputSize, 16384u);
}

TEST(DatasetSuite, SpecsMatchInputSizes)
{
    for (const auto &task : DatasetSuite::tableOneSmall())
        EXPECT_EQ(task.spec.inputPoints, task.inputSize);
}

TEST(DatasetSuite, RawFramesGenerateAndExceedInputSize)
{
    for (const auto &task : DatasetSuite::tableOneSmall()) {
        const Frame frame = task.rawFrame(0);
        EXPECT_GT(frame.cloud.size(), task.inputSize)
            << task.dataset << " raw frame must need down-sampling";
    }
}

TEST(DatasetSuite, VariantsProduceDifferentFrames)
{
    const auto suite = DatasetSuite::tableOneSmall();
    const Frame a = suite[0].rawFrame(0);
    const Frame b = suite[0].rawFrame(1);
    EXPECT_NE(a.name, b.name);
}

} // namespace
} // namespace hgpcn
