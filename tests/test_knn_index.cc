/**
 * @file
 * Tests for the spatial-hash KNN index (src/knn) and the frame
 * workspace arena (core/frame_workspace.h).
 *
 * The load-bearing pin: SpatialHashKnn returns *exactly* the
 * neighbor lists of the brute-force oracle — same indices, same
 * order, under the deterministic (distSq, index) tie-break — across
 * uniform, clustered (LiDAR-like), degenerate and KITTI-scale
 * clouds. Figure reproductions lean on this: the fast host path
 * must never change a functional result or a modeled workload.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/frame_workspace.h"
#include "gather/brute_gatherers.h"
#include "knn/spatial_hash_knn.h"
#include "knn/top_k.h"
#include "nn/pointnet2.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

/** LiDAR-ish pathology: dense clusters + sparse background (what
 * blows up naive ring expansion — docs/PERFORMANCE.md). */
PointCloud
clusteredCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 4 == 0) {
            cloud.add({rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f)});
        } else {
            // tight cluster near one of two anchors
            const bool a = i % 8 < 4;
            const float cx = a ? 0.1f : 0.9f;
            cloud.add({cx + rng.uniform(-0.005f, 0.005f),
                       cx + rng.uniform(-0.005f, 0.005f),
                       cx + rng.uniform(-0.005f, 0.005f)});
        }
    }
    return cloud;
}

std::vector<PointIndex>
someCentrals(std::size_t n, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<PointIndex> centrals(count);
    for (auto &c : centrals)
        c = static_cast<PointIndex>(rng.below(n));
    return centrals;
}

/** Oracle for arbitrary-position queries: full scan + selectTopK
 * (identical tie-break). */
std::vector<PointIndex>
bruteAt(const PointCloud &cloud, std::span<const Vec3> queries,
        std::size_t k)
{
    std::vector<PointIndex> out;
    std::vector<ScoredNeighbor> scored(cloud.size());
    for (const Vec3 &q : queries) {
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            scored[i] = {
                cloud.position(static_cast<PointIndex>(i)).distSq(q),
                static_cast<PointIndex>(i)};
        }
        selectTopK(scored, k);
        for (std::size_t j = 0; j < std::min(k, scored.size()); ++j)
            out.push_back(scored[j].second);
    }
    return out;
}

void
expectMatchesBrute(const PointCloud &cloud, std::size_t centrals_n,
                   std::size_t k, std::uint64_t seed)
{
    const auto centrals =
        someCentrals(cloud.size(), centrals_n, seed);
    BruteKnn oracle(cloud);
    const GatherResult expect = oracle.gather(centrals, k);
    SpatialHashKnn index(cloud.positions());
    const GatherResult got = index.gather(centrals, k);
    ASSERT_EQ(got.k, expect.k);
    ASSERT_EQ(got.neighbors, expect.neighbors)
        << "n=" << cloud.size() << " k=" << k << " seed=" << seed;
}

// ------------------------------------------------ equality pins

TEST(SpatialHashKnn, MatchesBruteOnRandomClouds)
{
    for (const std::size_t n : {200u, 1024u, 4096u}) {
        for (const std::size_t k : {1u, 3u, 32u}) {
            expectMatchesBrute(randomCloud(n, n + k), 64, k, n * k);
        }
    }
}

TEST(SpatialHashKnn, MatchesBruteOnClusteredClouds)
{
    for (const std::size_t k : {3u, 32u, 64u})
        expectMatchesBrute(clusteredCloud(2048, 11), 128, k, k);
}

TEST(SpatialHashKnn, MatchesBruteAtKittiScale)
{
    expectMatchesBrute(randomCloud(16384, 5), 256, 32, 7);
}

TEST(SpatialHashKnn, MatchesBruteOnCoincidentPoints)
{
    // All points identical: every distance ties, so the ordering is
    // purely the index tie-break.
    PointCloud cloud;
    for (int i = 0; i < 300; ++i)
        cloud.add({0.5f, 0.5f, 0.5f});
    expectMatchesBrute(cloud, 16, 7, 3);
}

TEST(SpatialHashKnn, SinglePointCloud)
{
    PointCloud cloud;
    cloud.add({0.25f, 0.5f, 0.75f});
    SpatialHashKnn index(cloud.positions());
    const std::vector<Vec3> q{{0.9f, 0.9f, 0.9f}};
    const GatherResult got = index.gatherAt(q, 1);
    ASSERT_EQ(got.k, 1u);
    EXPECT_EQ(got.neighbors, std::vector<PointIndex>{0});
}

TEST(SpatialHashKnn, KClampsToCloudSize)
{
    const PointCloud cloud = randomCloud(5, 2);
    SpatialHashKnn index(cloud.positions());
    const std::vector<Vec3> q{{0.1f, 0.2f, 0.3f}};
    // k == n and k > n both return all 5 points, closest first.
    for (const std::size_t k : {5u, 9u}) {
        const GatherResult got = index.gatherAt(q, k);
        EXPECT_EQ(got.k, 5u);
        EXPECT_EQ(got.neighbors.size(), 5u);
        EXPECT_EQ(got.neighbors, bruteAt(cloud, q, 5));
    }
}

TEST(SpatialHashKnn, ArbitraryQueriesMatchOracle)
{
    const PointCloud cloud = clusteredCloud(1500, 23);
    Rng rng(31);
    std::vector<Vec3> queries(200);
    for (auto &q : queries) {
        // include queries outside the indexed bounds
        q = {rng.uniform(-0.5f, 1.5f), rng.uniform(-0.5f, 1.5f),
             rng.uniform(-0.5f, 1.5f)};
    }
    SpatialHashKnn index(cloud.positions());
    const GatherResult got = index.gatherAt(queries, 3);
    EXPECT_EQ(got.neighbors, bruteAt(cloud, queries, 3));
}

TEST(SpatialHashKnn, WorkspaceBackedMatchesOwnedBuffers)
{
    const PointCloud cloud = randomCloud(3000, 17);
    const auto centrals = someCentrals(3000, 128, 19);
    FrameWorkspace ws;
    ws.beginFrame();
    SpatialHashKnn pooled(cloud.positions(), &ws);
    SpatialHashKnn owned(cloud.positions());
    EXPECT_EQ(pooled.gather(centrals, 16).neighbors,
              owned.gather(centrals, 16).neighbors);
}

// ------------------------------------------------ accounting

TEST(SpatialHashKnn, ModeledBruteAccountingEqualsBruteCounters)
{
    const PointCloud cloud = randomCloud(2048, 3);
    const auto centrals = someCentrals(2048, 100, 4);
    BruteKnn oracle(cloud);
    const GatherResult expect = oracle.gather(centrals, 8);
    SpatialHashKnn index(cloud.positions());
    const GatherResult got = index.gather(
        centrals, 8, SpatialHashKnn::Accounting::ModeledBrute);
    // The modeled device still runs its data-independent full scan:
    // identical workload counters, so every cycle model is blind to
    // the host-side shortcut.
    EXPECT_EQ(got.stats.get("gather.distance_computations"),
              expect.stats.get("gather.distance_computations"));
    EXPECT_EQ(got.stats.get("gather.sort_candidates"),
              expect.stats.get("gather.sort_candidates"));
}

TEST(SpatialHashKnn, NativeAccountingShowsTheReduction)
{
    const PointCloud cloud = randomCloud(8192, 13);
    const auto centrals = someCentrals(8192, 256, 14);
    SpatialHashKnn index(cloud.positions());
    ASSERT_TRUE(index.usesGrid());
    const GatherResult got = index.gather(
        centrals, 16, SpatialHashKnn::Accounting::Native);
    const std::uint64_t brute_dists =
        static_cast<std::uint64_t>(centrals.size()) * 8192;
    EXPECT_LT(got.stats.get("gather.distance_computations"),
              brute_dists / 4);
    EXPECT_GT(got.stats.get("gather.cells_visited"), 0u);
}

TEST(SpatialHashKnn, TinyCloudsFallBackToBruteScan)
{
    const PointCloud cloud = randomCloud(64, 9);
    SpatialHashKnn index(cloud.positions());
    EXPECT_FALSE(index.usesGrid());
    expectMatchesBrute(cloud, 16, 3, 21);
}

// ------------------------------------------------ E2E pin

TEST(SpatialHashKnn, PointNet2FastPathMatchesOracleBitForBit)
{
    // The whole reason the index may serve DsMethod::BruteKnn:
    // logits, labels and the recorded trace must be exactly those
    // of the oracle kernel.
    const PointNet2Spec spec = PointNet2Spec::classification(10);
    PointNet2 tiny(spec, 42);
    const PointCloud input = randomCloud(1024, 77);

    RunOptions fast;
    fast.ds = DsMethod::BruteKnn;
    fast.fastKnn = true;
    RunOptions oracle = fast;
    oracle.fastKnn = false;

    const RunOutput a = tiny.run(input, fast);
    const RunOutput b = tiny.run(input, oracle);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.logits.data(), b.logits.data());
    ASSERT_EQ(a.trace.gathers.size(), b.trace.gathers.size());
    EXPECT_EQ(a.trace.totalGatherDistances(),
              b.trace.totalGatherDistances());
    EXPECT_EQ(a.trace.totalSortCandidates(),
              b.trace.totalSortCandidates());
}

// ------------------------------------------------ workspace arena

TEST(FrameWorkspace, ArenaReusesBuffersAcrossFrames)
{
    FrameWorkspace ws;
    const std::uint64_t before = FrameWorkspace::backingGrowths();
    ws.beginFrame();
    ws.tensor(128, 16);
    ws.positions(64);
    ws.indices(32);
    const std::uint64_t after_first =
        FrameWorkspace::backingGrowths();
    EXPECT_GT(after_first, before);
    // Same shapes next frame: no new backing allocations.
    for (int frame = 0; frame < 5; ++frame) {
        ws.beginFrame();
        ws.tensor(128, 16);
        ws.positions(64);
        ws.indices(32);
    }
    EXPECT_EQ(FrameWorkspace::backingGrowths(), after_first);
}

TEST(FrameWorkspace, PoolLeasesAreExclusiveAndReturn)
{
    WorkspacePool pool;
    FrameWorkspace *first = nullptr;
    {
        WorkspacePool::Lease a = pool.acquire();
        WorkspacePool::Lease b = pool.acquire();
        EXPECT_NE(a.get(), b.get());
        first = a.get();
    }
    EXPECT_EQ(pool.size(), 2u);
    // Released workspaces are reused, not re-created.
    WorkspacePool::Lease c = pool.acquire();
    WorkspacePool::Lease d = pool.acquire();
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_TRUE(c.get() == first || d.get() == first);
}

} // namespace
} // namespace hgpcn
