/**
 * @file
 * Tests for the streaming runtime: BoundedQueue semantics, the
 * deterministic virtual timeline, the threaded stage pipeline and
 * the end-to-end StreamRunner. The concurrency cases here are the
 * ones CI runs under ThreadSanitizer (see .github/workflows/ci.yml).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/bounded_queue.h"
#include "common/logging.h"
#include "common/stats.h"
#include "core/hgpcn_system.h"
#include "datasets/kitti_like.h"
#include "runtime/stage_pipeline.h"
#include "runtime/stream_runner.h"
#include "runtime/virtual_timeline.h"

namespace hgpcn
{
namespace
{

// ----------------------------------------------------- BoundedQueue

TEST(BoundedQueue, FifoOrderAndCounters)
{
    BoundedQueue<int> q(4);
    EXPECT_EQ(q.push(1), PushOutcome::Pushed);
    EXPECT_EQ(q.push(2), PushOutcome::Pushed);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    const auto c = q.counters();
    EXPECT_EQ(c.pushed, 2u);
    EXPECT_EQ(c.popped, 2u);
    EXPECT_EQ(c.peakSize, 2u);
}

TEST(BoundedQueue, DropOldestEvictsFront)
{
    BoundedQueue<int> q(2, OverloadPolicy::DropOldest);
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.push(3), PushOutcome::DroppedOldest);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.counters().droppedOldest, 1u);
}

TEST(BoundedQueue, DropNewestRefusesNewcomer)
{
    BoundedQueue<int> q(2, OverloadPolicy::DropNewest);
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.push(3), PushOutcome::DroppedNewest);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.counters().droppedNewest, 1u);
}

TEST(BoundedQueue, BackPressureBlocksProducerUntilConsumed)
{
    // Whether any push actually blocks before the consumer drains
    // is a scheduling race: retry the scenario until the blocked
    // path is observed (attempt 1 in practice). FIFO order and
    // exactly-once delivery hold on every attempt.
    for (int attempt = 0; attempt < 50; ++attempt) {
        BoundedQueue<int> q(1, OverloadPolicy::Block);
        ASSERT_EQ(q.push(0), PushOutcome::Pushed);

        std::atomic<int> produced{0};
        std::atomic<bool> started{false};
        std::thread producer([&] {
            started.store(true);
            for (int i = 1; i <= 3; ++i) {
                if (q.push(i) == PushOutcome::Pushed)
                    produced.fetch_add(1);
            }
        });

        // The queue starts full, so the producer's first push must
        // wait for the first pop.
        while (!started.load())
            std::this_thread::yield();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

        // Every value must arrive exactly once, in order.
        for (int expect = 0; expect <= 3; ++expect) {
            const auto v = q.pop();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, expect);
        }
        producer.join();
        EXPECT_EQ(produced.load(), 3);
        if (q.counters().blockedPushes >= 1u)
            return; // back-pressure path observed
    }
    FAIL() << "producer never blocked in 50 attempts";
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer)
{
    BoundedQueue<int> q(1, OverloadPolicy::Block);
    q.push(7);

    std::atomic<bool> refused{false};
    std::thread producer([&] {
        refused.store(q.push(8) == PushOutcome::Closed);
    });
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        q.close();
    });
    closer.join();
    producer.join();
    EXPECT_TRUE(refused.load());

    // Remaining element still drains, then nullopt.
    EXPECT_EQ(q.pop().value(), 7);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_EQ(q.push(9), PushOutcome::Closed);
}

// --------------------------------------------------- VirtualTimeline

TimelineConfig
oneStageMachine(OverloadPolicy policy, std::size_t capacity)
{
    TimelineConfig cfg;
    cfg.stages = {{"work", "dev"}};
    cfg.queueCapacity = capacity;
    cfg.policy = policy;
    return cfg;
}

TEST(VirtualTimeline, SerialChainTimes)
{
    TimelineConfig cfg;
    cfg.stages = {{"a", "cpu"}, {"b", "fpga"}};
    cfg.queueCapacity = 8;
    const TimelineResult r = simulateTimeline(
        cfg, {0.0, 0.0}, {{1.0, 2.0}, {1.0, 2.0}});
    ASSERT_EQ(r.processed, 2u);
    // Frame 0: a in [0,1], b in [1,3]. Frame 1's a overlaps b:
    // a in [1,2], b waits for the unit until 3, done at 5.
    EXPECT_DOUBLE_EQ(r.frames[0].finishSec[0], 1.0);
    EXPECT_DOUBLE_EQ(r.frames[0].doneSec, 3.0);
    EXPECT_DOUBLE_EQ(r.frames[1].startSec[0], 1.0);
    EXPECT_DOUBLE_EQ(r.frames[1].startSec[1], 3.0);
    EXPECT_DOUBLE_EQ(r.frames[1].doneSec, 5.0);
    EXPECT_DOUBLE_EQ(r.makespanSec, 5.0);
}

TEST(VirtualTimeline, SharedResourceMatchesLegacyRecurrence)
{
    // Three stages, the last two on one FPGA: the schedule must
    // reproduce the historical two-stage pipeline recurrence
    // fpga_done = max(fpga_done, cpu_free) + (ds + inf).
    TimelineConfig cfg;
    cfg.stages = {{"build", "cpu"}, {"ds", "fpga"}, {"inf", "fpga"}};
    cfg.queueCapacity = 16;
    const std::size_t n = 4;
    const std::vector<double> build = {1.0, 1.5, 0.5, 1.0};
    const std::vector<double> ds = {2.0, 1.0, 2.0, 1.5};
    const std::vector<double> inf = {3.0, 3.5, 2.5, 3.0};
    std::vector<double> arrivals(n, 0.0);
    std::vector<std::vector<double>> costs;
    for (std::size_t i = 0; i < n; ++i)
        costs.push_back({build[i], ds[i], inf[i]});

    double cpu_free = 0.0, fpga_done = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        cpu_free += build[i];
        fpga_done = std::max(fpga_done, cpu_free) + ds[i] + inf[i];
    }

    const TimelineResult r = simulateTimeline(cfg, arrivals, costs);
    ASSERT_EQ(r.processed, n);
    EXPECT_DOUBLE_EQ(r.frames[n - 1].doneSec, fpga_done);
    EXPECT_DOUBLE_EQ(r.makespanSec, fpga_done);
    // Both FPGA stages report against the same single unit.
    EXPECT_DOUBLE_EQ(r.stages[1].busySec, 2.0 + 1.0 + 2.0 + 1.5);
    EXPECT_GT(r.stages[2].utilization, r.stages[1].utilization);
}

TEST(VirtualTimeline, ExtraUnitsIncreaseThroughput)
{
    TimelineConfig cfg = oneStageMachine(OverloadPolicy::Block, 8);
    const std::vector<double> arrivals(6, 0.0);
    const std::vector<std::vector<double>> costs(6, {3.0});
    const TimelineResult one = simulateTimeline(cfg, arrivals, costs);
    cfg.resourceUnits["dev"] = 2;
    const TimelineResult two = simulateTimeline(cfg, arrivals, costs);
    EXPECT_DOUBLE_EQ(one.makespanSec, 18.0);
    EXPECT_DOUBLE_EQ(two.makespanSec, 9.0);
}

TEST(VirtualTimeline, BlockPolicyDelaysAdmission)
{
    const TimelineConfig cfg =
        oneStageMachine(OverloadPolicy::Block, 1);
    const TimelineResult r = simulateTimeline(
        cfg, {0.0, 1.0, 2.0}, {{10.0}, {10.0}, {10.0}});
    ASSERT_EQ(r.processed, 3u);
    EXPECT_EQ(r.dropped, 0u);
    // Frame 0 starts at 0; frame 1 queues at 1; frame 2 cannot be
    // admitted until frame 1 leaves the queue at t=10.
    EXPECT_DOUBLE_EQ(r.frames[1].admitSec, 1.0);
    EXPECT_DOUBLE_EQ(r.frames[2].admitSec, 10.0);
    EXPECT_DOUBLE_EQ(r.frames[2].doneSec, 30.0);
    EXPECT_DOUBLE_EQ(r.frames[2].latencySec, 28.0);
}

TEST(VirtualTimeline, DropNewestDiscardsArrivingFrame)
{
    const TimelineConfig cfg =
        oneStageMachine(OverloadPolicy::DropNewest, 1);
    const TimelineResult r = simulateTimeline(
        cfg, {0.0, 1.0, 2.0}, {{10.0}, {10.0}, {10.0}});
    EXPECT_EQ(r.processed, 2u);
    EXPECT_EQ(r.dropped, 1u);
    EXPECT_FALSE(r.frames[0].dropped);
    EXPECT_FALSE(r.frames[1].dropped);
    EXPECT_TRUE(r.frames[2].dropped);
}

TEST(VirtualTimeline, DropOldestEvictsQueuedFrame)
{
    const TimelineConfig cfg =
        oneStageMachine(OverloadPolicy::DropOldest, 1);
    const TimelineResult r = simulateTimeline(
        cfg, {0.0, 1.0, 2.0}, {{10.0}, {10.0}, {10.0}});
    EXPECT_EQ(r.processed, 2u);
    EXPECT_EQ(r.dropped, 1u);
    // Frame 1 was waiting in the source queue when frame 2 arrived.
    EXPECT_TRUE(r.frames[1].dropped);
    EXPECT_FALSE(r.frames[2].dropped);
    EXPECT_DOUBLE_EQ(r.frames[2].startSec[0], 10.0);
}

TEST(VirtualTimeline, MaxInFlightOneSerializes)
{
    TimelineConfig cfg;
    cfg.stages = {{"a", "cpu"}, {"b", "fpga"}};
    cfg.queueCapacity = 8;
    cfg.maxInFlight = 1;
    const TimelineResult r = simulateTimeline(
        cfg, {0.0, 0.0}, {{1.0, 2.0}, {1.0, 2.0}});
    ASSERT_EQ(r.processed, 2u);
    // No overlap at all: frame 1 is admitted when frame 0 leaves.
    EXPECT_DOUBLE_EQ(r.frames[1].admitSec, 3.0);
    EXPECT_DOUBLE_EQ(r.frames[1].doneSec, 6.0);
}

TEST(VirtualTimeline, QueueOccupancyAccounted)
{
    const TimelineConfig cfg =
        oneStageMachine(OverloadPolicy::Block, 4);
    const TimelineResult r = simulateTimeline(
        cfg, {0.0, 0.0, 0.0}, {{2.0}, {2.0}, {2.0}});
    ASSERT_EQ(r.stages.size(), 1u);
    EXPECT_EQ(r.stages[0].peakQueueDepth, 2u);
    EXPECT_GT(r.stages[0].meanQueueDepth, 0.0);
    EXPECT_DOUBLE_EQ(r.stages[0].utilization, 1.0);
}

// ---------------------------------------------------- StagePipeline

/** Stage stub: fixed modeled cost, optional real dawdling. */
FunctionStage
stubStage(const std::string &name, double cost_sec,
          int sleep_ms_first_frame = 0)
{
    return FunctionStage(
        name, "dev", [cost_sec, sleep_ms_first_frame](FrameTask &t) {
            if (sleep_ms_first_frame > 0 && t.index == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleep_ms_first_frame));
            }
            return cost_sec;
        });
}

std::vector<std::unique_ptr<FrameTask>>
makeTasks(std::size_t n)
{
    std::vector<std::unique_ptr<FrameTask>> tasks;
    for (std::size_t i = 0; i < n; ++i) {
        auto t = std::make_unique<FrameTask>();
        t->index = i;
        tasks.push_back(std::move(t));
    }
    return tasks;
}

TEST(StagePipeline, EmitsInAdmissionOrderDespiteWorkerRaces)
{
    // Two workers; frame 0 dawdles, so later frames can physically
    // finish first — the reorder buffer must still emit 0,1,2,...
    FunctionStage slow = stubStage("work", 1e-3, /*sleep=*/20);
    StagePipeline::Config cfg;
    cfg.queueCapacity = 4;
    StagePipeline pipe({{&slow, 2}}, cfg);

    std::vector<std::size_t> emitted;
    const auto out = pipe.run(makeTasks(6), [&](const FrameTask &t) {
        emitted.push_back(t.index);
    });
    ASSERT_EQ(out.size(), 6u);
    ASSERT_EQ(emitted.size(), 6u);
    for (std::size_t i = 0; i < emitted.size(); ++i)
        EXPECT_EQ(emitted[i], i);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i]->index, i);
        EXPECT_DOUBLE_EQ(out[i]->stageCostSec[0], 1e-3);
    }
}

TEST(StagePipeline, MultiStageRecordsAllCosts)
{
    FunctionStage a = stubStage("a", 1.0);
    FunctionStage b = stubStage("b", 2.0);
    StagePipeline::Config cfg;
    StagePipeline pipe({{&a, 1}, {&b, 1}}, cfg);
    const auto out = pipe.run(makeTasks(3));
    ASSERT_EQ(out.size(), 3u);
    for (const auto &t : out) {
        EXPECT_DOUBLE_EQ(t->stageCostSec[0], 1.0);
        EXPECT_DOUBLE_EQ(t->stageCostSec[1], 2.0);
    }
}

TEST(StagePipeline, ShutdownWithFramesInFlight)
{
    // A slow stage and a long stream; stop after the first emitted
    // frame. run() must return promptly with a truncated, ordered
    // prefix and no deadlock.
    FunctionStage slow(
        "slow", "dev", [](FrameTask &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            return 1e-3;
        });
    StagePipeline::Config cfg;
    cfg.queueCapacity = 2;
    StagePipeline pipe({{&slow, 1}}, cfg);

    std::vector<std::size_t> emitted;
    const auto out = pipe.run(makeTasks(100), [&](const FrameTask &t) {
        emitted.push_back(t.index);
        pipe.requestStop();
    });
    EXPECT_TRUE(pipe.stopRequested());
    EXPECT_LT(out.size(), 100u);
    EXPECT_GE(out.size(), 1u);
    for (std::size_t i = 1; i < emitted.size(); ++i)
        EXPECT_LT(emitted[i - 1], emitted[i]);
}

TEST(StagePipeline, RunAfterStopProcessesFullStream)
{
    // Regression: `stopped` was never reset, so a pipeline was
    // permanently dead after requestStop() — a second run()
    // silently abandoned the whole stream. The restart contract:
    // each run() starts fresh.
    FunctionStage slow(
        "slow", "dev", [](FrameTask &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
            return 1e-3;
        });
    StagePipeline::Config cfg;
    cfg.queueCapacity = 2;
    StagePipeline pipe({{&slow, 1}}, cfg);

    const auto first = pipe.run(makeTasks(50), [&](const FrameTask &) {
        pipe.requestStop();
    });
    EXPECT_LT(first.size(), 50u);

    const auto second = pipe.run(makeTasks(6));
    EXPECT_FALSE(pipe.stopRequested());
    ASSERT_EQ(second.size(), 6u);
    for (std::size_t i = 0; i < second.size(); ++i)
        EXPECT_EQ(second[i]->index, i);
}

TEST(StagePipeline, StopWhileIdleIsNoOp)
{
    // A stop against an idle pipeline belongs to no run: the next
    // run() clears it and processes everything.
    FunctionStage s = stubStage("s", 1.0);
    StagePipeline::Config cfg;
    StagePipeline pipe({{&s, 1}}, cfg);
    pipe.requestStop();
    EXPECT_TRUE(pipe.stopRequested());
    const auto out = pipe.run(makeTasks(4));
    EXPECT_FALSE(pipe.stopRequested());
    EXPECT_EQ(out.size(), 4u);
}

// ----------------------------------------------------- StreamRunner

PointNet2Spec
tinyClassifier()
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    return spec;
}

std::vector<Frame>
smallKittiStream(std::size_t n)
{
    KittiLike::Config cfg;
    cfg.azimuthSteps = 250; // small frames for test speed
    const KittiLike lidar(cfg);
    std::vector<Frame> frames;
    for (std::size_t f = 0; f < n; ++f)
        frames.push_back(lidar.generate(f));
    return frames;
}

TEST(StreamRunner, MatchesSerialFunctionalResults)
{
    const std::vector<Frame> frames = smallKittiStream(3);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());

    StreamRunner::Config rc;
    rc.buildWorkers = 2;
    const RuntimeResult rt = system.runStream(frames, rc);
    ASSERT_EQ(rt.frames.size(), frames.size());

    for (std::size_t i = 0; i < frames.size(); ++i) {
        const E2eResult serial =
            system.processFrame(frames[i].cloud);
        const E2eResult &piped = rt.frames[i].result;
        EXPECT_EQ(rt.frames[i].index, i);
        // Same engines, same seeds: identical picks and labels no
        // matter how many workers carried the frame.
        EXPECT_EQ(piped.preprocess.spt, serial.preprocess.spt);
        EXPECT_EQ(piped.inference.output.labels,
                  serial.inference.output.labels);
        EXPECT_DOUBLE_EQ(piped.totalSec(), serial.totalSec());
    }
}

TEST(StreamRunner, ReportIsDeterministicAcrossRuns)
{
    const std::vector<Frame> frames = smallKittiStream(4);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.buildWorkers = 3;
    rc.queueCapacity = 2;
    const RuntimeResult a = system.runStream(frames, rc);
    const RuntimeResult b = system.runStream(frames, rc);
    EXPECT_DOUBLE_EQ(a.report.sustainedFps, b.report.sustainedFps);
    EXPECT_DOUBLE_EQ(a.report.p99LatencySec, b.report.p99LatencySec);
    EXPECT_DOUBLE_EQ(a.report.makespanSec, b.report.makespanSec);
}

TEST(StreamRunner, PacedReportChecksRealTimeCriterion)
{
    const std::vector<Frame> frames = smallKittiStream(3);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc; // paced by default
    const RuntimeResult rt = system.runStream(frames, rc);
    EXPECT_EQ(rt.report.framesProcessed, 3u);
    EXPECT_NEAR(rt.report.generationFps, 10.0, 0.5);
    EXPECT_EQ(rt.report.realTime,
              rt.report.sustainedFps >= rt.report.generationFps
                  ? RealTimeVerdict::Yes
                  : RealTimeVerdict::No);
    EXPECT_GT(rt.report.p50LatencySec, 0.0);
    EXPECT_LE(rt.report.p50LatencySec, rt.report.p99LatencySec);
    EXPECT_LE(rt.report.p99LatencySec, rt.report.maxLatencySec);
    ASSERT_EQ(rt.report.stages.size(), 3u);
    EXPECT_GT(rt.workload.size(), 0u);
}

TEST(StreamRunner, EmptyStreamYieldsEmptyReport)
{
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    const RuntimeResult rt =
        system.runStream({}, StreamRunner::Config{});
    EXPECT_EQ(rt.report.framesIn, 0u);
    EXPECT_TRUE(rt.frames.empty());
}

TEST(StreamRunner, NonMonotonicTimestampsAreFatal)
{
    std::vector<Frame> frames = smallKittiStream(3);
    // Genuinely corrupt ordering (stamped, but going backwards).
    frames[2].timestamp = frames[0].timestamp;
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc; // paced: timestamps are load-bearing
    EXPECT_EXIT(system.runStream(frames, rc),
                ::testing::ExitedWithCode(1), "strictly increasing");
}

TEST(StreamRunner, UnstampedStreamFallsBackToBatch)
{
    // Generators other than the LiDAR simulator leave timestamps at
    // 0.0; a paced runner must degrade to batch admission (with a
    // warning), not die.
    std::vector<Frame> frames = smallKittiStream(3);
    for (Frame &frame : frames)
        frame.timestamp = 0.0;
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    // Capture the degradation warning instead of silencing it: the
    // fallback must be announced, not just taken.
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink prev = setLogSink(
        [&captured](LogLevel level, const std::string &msg) {
            captured.emplace_back(level, msg);
        });
    const RuntimeResult rt =
        system.runStream(frames, StreamRunner::Config{});
    setLogSink(std::move(prev));
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_NE(captured[0].second.find("batch admission"),
              std::string::npos)
        << "warning text was: " << captured[0].second;
    EXPECT_FALSE(rt.report.paced);
    EXPECT_EQ(rt.report.framesProcessed, 3u);
    EXPECT_DOUBLE_EQ(rt.report.generationFps, 0.0);
    // No rate derivable: the verdict must be n/a, not a vacuous
    // YES (the seed bug).
    EXPECT_EQ(rt.report.realTime, RealTimeVerdict::NotApplicable);
}

TEST(StreamRunner, BatchModeVerdictIsNotApplicable)
{
    // Regression: an unpaced (batch) run has generationFps == 0, so
    // the seed's `sustained >= generation` verdict was trivially
    // YES for every batch bench. Batch races no sensor: the verdict
    // must be n/a, in the report and in its rendering.
    const std::vector<Frame> frames = smallKittiStream(3);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.paceBySensor = false; // batch admission of a stamped stream
    const RuntimeResult rt = system.runStream(frames, rc);
    EXPECT_FALSE(rt.report.paced);
    EXPECT_DOUBLE_EQ(rt.report.generationFps, 0.0);
    EXPECT_EQ(rt.report.realTime, RealTimeVerdict::NotApplicable);
    const std::string text = rt.report.toString();
    EXPECT_NE(text.find("real-time: n/a"), std::string::npos);
    EXPECT_EQ(text.find("real-time: YES"), std::string::npos);
}

TEST(StreamRunner, RunAfterStopProcessesFullStream)
{
    // Regression: the runner inherits the StagePipeline restart
    // contract — a run aborted by requestStop() must not poison
    // the next run().
    const std::vector<Frame> frames = smallKittiStream(4);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc;
    rc.inputPoints = system.config().inputPoints;
    StreamRunner runner(system.preprocessor(), system.inferencer(),
                        system.model(), rc);

    const RuntimeResult first =
        runner.run(frames, [&](const FrameTask &) {
            runner.requestStop();
        });
    EXPECT_LE(first.report.framesProcessed, frames.size());

    const RuntimeResult second = runner.run(frames);
    EXPECT_EQ(second.report.framesProcessed, frames.size());
    EXPECT_EQ(second.report.framesAbandoned, 0u);
    EXPECT_EQ(second.frames.size(), frames.size());
}

TEST(StreamRunner, SteadyStateIsArenaAllocationFree)
{
    // The zero-alloc regression pin (core/frame_workspace.h): after
    // a warm-up run grows the runner's workspace arenas once, a
    // steady-state run over the same stream must not grow them
    // again — the counting hook on the arena backing stores is the
    // witness. Single-worker config so exactly one workspace serves
    // every frame deterministically.
    const std::vector<Frame> frames = smallKittiStream(3);
    HgPcnSystem::Config cfg;
    const HgPcnSystem system(cfg, tinyClassifier());
    StreamRunner::Config rc = StreamRunner::compat(frames.size(), 0);
    rc.inputPoints = system.config().inputPoints;
    StreamRunner runner(system.preprocessor(), system.backend(), rc);

    runner.run(frames); // warm-up: arenas size themselves
    const std::uint64_t warm = FrameWorkspace::backingGrowths();
    const RuntimeResult steady = runner.run(frames);
    EXPECT_EQ(steady.frames.size(), frames.size());
    EXPECT_EQ(FrameWorkspace::backingGrowths(), warm)
        << "steady-state frames grew a workspace arena";
}

} // namespace
} // namespace hgpcn
