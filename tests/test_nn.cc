/**
 * @file
 * Tests for the neural substrate: tensor ops, MLP blocks and the
 * PointNet++ reference models (shapes, determinism, permutation
 * invariance, trace bookkeeping).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "nn/mlp.h"
#include "nn/pointnet2.h"
#include "core/frame_workspace.h"
#include "nn/tensor.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

// --------------------------------------------------------------- Tensor

TEST(Tensor, MatmulKnownValues)
{
    Tensor a(2, 2), b(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    const Tensor c = Tensor::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Tensor, MatmulIdentity)
{
    Rng rng(1);
    Tensor a(3, 3);
    a.randomize(rng, 1.0f);
    Tensor eye(3, 3);
    for (int i = 0; i < 3; ++i)
        eye.at(i, i) = 1.0f;
    const Tensor c = Tensor::matmul(a, eye);
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            EXPECT_FLOAT_EQ(c.at(i, j), a.at(i, j));
}

TEST(Tensor, ReluClampsNegatives)
{
    Tensor t(1, 3);
    t.at(0, 0) = -1.0f;
    t.at(0, 1) = 0.0f;
    t.at(0, 2) = 2.0f;
    t.reluInPlace();
    EXPECT_FLOAT_EQ(t.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(t.at(0, 2), 2.0f);
}

TEST(Tensor, AddRowBias)
{
    Tensor t(2, 2);
    t.addRowBias({1.0f, -2.0f});
    EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(t.at(1, 1), -2.0f);
}

TEST(Tensor, MaxPoolGroupsTakesColumnwiseMax)
{
    Tensor t(4, 2);
    t.at(0, 0) = 1;
    t.at(1, 0) = 5;
    t.at(2, 0) = 3;
    t.at(3, 0) = 2;
    t.at(0, 1) = -1;
    t.at(1, 1) = -5;
    t.at(2, 1) = -3;
    t.at(3, 1) = -2;
    const Tensor pooled = t.maxPoolGroups(2);
    ASSERT_EQ(pooled.rows(), 2u);
    EXPECT_FLOAT_EQ(pooled.at(0, 0), 5);
    EXPECT_FLOAT_EQ(pooled.at(0, 1), -1);
    EXPECT_FLOAT_EQ(pooled.at(1, 0), 3);
    EXPECT_FLOAT_EQ(pooled.at(1, 1), -2);
}

TEST(Tensor, ArgmaxRow)
{
    Tensor t(1, 4);
    t.at(0, 2) = 9.0f;
    EXPECT_EQ(t.argmaxRow(0), 2u);
}

// ------------------------------------------------------------------ Mlp

TEST(Mlp, OutputShapeFollowsWidths)
{
    Rng rng(2);
    const Mlp mlp(8, {16, 32}, rng);
    ExecutionTrace trace;
    Tensor x(5, 8);
    x.randomize(rng, 1.0f);
    const Tensor y = mlp.forward(x, "t", trace);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 32u);
    EXPECT_EQ(mlp.outWidth(), 32u);
}

TEST(Mlp, TraceRecordsEveryGemm)
{
    Rng rng(3);
    const Mlp mlp(4, {8, 8, 2}, rng);
    ExecutionTrace trace;
    Tensor x(10, 4);
    mlp.forward(x, "net", trace);
    ASSERT_EQ(trace.gemms.size(), 3u);
    EXPECT_EQ(trace.gemms[0].m, 10u);
    EXPECT_EQ(trace.gemms[0].k, 4u);
    EXPECT_EQ(trace.gemms[0].n, 8u);
    EXPECT_EQ(trace.gemms[2].n, 2u);
    EXPECT_EQ(trace.gemms[0].layer, "net.fc0");
}

TEST(Mlp, FinalReluOptional)
{
    Rng rng(4);
    // Without final ReLU some outputs should be negative.
    const Mlp mlp(4, {8, 8}, rng, /*final_relu=*/false);
    ExecutionTrace trace;
    Tensor x(20, 4);
    x.randomize(rng, 2.0f);
    const Tensor y = mlp.forward(x, "t", trace);
    bool has_negative = false;
    for (std::size_t r = 0; r < y.rows(); ++r)
        for (std::size_t c = 0; c < y.cols(); ++c)
            has_negative |= y.at(r, c) < 0.0f;
    EXPECT_TRUE(has_negative);
}

TEST(Mlp, DeterministicGivenSeed)
{
    Rng rng_a(5), rng_b(5);
    const Mlp a(4, {8}, rng_a), b(4, {8}, rng_b);
    ExecutionTrace ta, tb;
    Tensor x(3, 4);
    x.at(0, 0) = 1.0f;
    const Tensor ya = a.forward(x, "t", ta);
    const Tensor yb = b.forward(x, "t", tb);
    for (std::size_t c = 0; c < ya.cols(); ++c)
        EXPECT_FLOAT_EQ(ya.at(0, c), yb.at(0, c));
}

// ----------------------------------------------------------- GemmOp

TEST(GemmOp, MacsIsProduct)
{
    const GemmOp op{"x", 10, 20, 30};
    EXPECT_EQ(op.macs(), 6000u);
}

TEST(ExecutionTrace, TotalsAggregate)
{
    ExecutionTrace trace;
    trace.gemms.push_back({"a", 2, 3, 4});
    trace.gemms.push_back({"b", 1, 1, 1});
    EXPECT_EQ(trace.totalMacs(), 25u);

    GatherOp op;
    op.stats.set("gather.distance_computations", 7);
    op.stats.set("gather.sort_candidates", 9);
    trace.gathers.push_back(op);
    EXPECT_EQ(trace.totalGatherDistances(), 7u);
    EXPECT_EQ(trace.totalSortCandidates(), 9u);
}

// ------------------------------------------------------- model specs

TEST(PointNet2Spec, TableOneConfigurations)
{
    const auto cls = PointNet2Spec::classification();
    EXPECT_EQ(cls.inputPoints, 1024u);
    EXPECT_EQ(cls.numClasses, 40u);
    EXPECT_FALSE(cls.segmentation);
    EXPECT_EQ(cls.sa.size(), 3u);
    EXPECT_EQ(cls.sa.back().npoint, 0u); // group-all

    const auto ps = PointNet2Spec::partSegmentation();
    EXPECT_EQ(ps.inputPoints, 2048u);
    EXPECT_TRUE(ps.segmentation);
    EXPECT_EQ(ps.fp.size(), ps.sa.size());

    const auto seg = PointNet2Spec::semanticSegmentation();
    EXPECT_EQ(seg.inputPoints, 4096u);
    EXPECT_EQ(seg.sa.size(), 4u);

    const auto kitti = PointNet2Spec::outdoorSegmentation();
    EXPECT_EQ(kitti.inputPoints, 16384u);
    EXPECT_EQ(kitti.sa[0].npoint, 4096u);
}

// --------------------------------------------------- classification

TEST(PointNet2, ClassificationShapes)
{
    PointNet2Spec spec = PointNet2Spec::classification(10);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 16;
    spec.sa[1].k = 8;
    const PointNet2 net(spec, 42);
    const PointCloud cloud = randomCloud(256, 7);
    const RunOutput out = net.run(cloud);
    EXPECT_EQ(out.logits.rows(), 1u);
    EXPECT_EQ(out.logits.cols(), 10u);
    EXPECT_EQ(out.labels.size(), 1u);
    EXPECT_LT(out.labels[0], 10u);
}

TEST(PointNet2, DeterministicAcrossRuns)
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.sa[0].npoint = 32;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 8;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    const PointCloud cloud = randomCloud(128, 8);
    RunOptions opts;
    opts.seed = 3;
    const RunOutput a = net.run(cloud, opts);
    const RunOutput b = net.run(cloud, opts);
    for (std::size_t c = 0; c < a.logits.cols(); ++c)
        EXPECT_FLOAT_EQ(a.logits.at(0, c), b.logits.at(0, c));
}

TEST(PointNet2, GroupAllPermutationInvariant)
{
    // The PointNet symmetric-function property: with group-all only
    // (no sampling randomness), shuffling input points must not
    // change the logits.
    PointNet2Spec spec;
    spec.name = "tiny";
    spec.inputPoints = 64;
    spec.numClasses = 4;
    spec.sa = {{0, 0, 0.0f, {16, 32}}};
    spec.head = {16};
    const PointNet2 net(spec, 42);

    const PointCloud cloud = randomCloud(64, 9);
    std::vector<PointIndex> perm(64);
    std::iota(perm.begin(), perm.end(), 0u);
    Rng rng(10);
    for (std::size_t i = 0; i < perm.size(); ++i)
        std::swap(perm[i], perm[i + rng.below(perm.size() - i)]);
    const PointCloud shuffled = cloud.reordered(perm);

    const RunOutput a = net.run(cloud);
    const RunOutput b = net.run(shuffled);
    for (std::size_t c = 0; c < a.logits.cols(); ++c)
        EXPECT_NEAR(a.logits.at(0, c), b.logits.at(0, c), 1e-3f);
}

TEST(PointNet2, TraceCoversAllSaLayersAndHead)
{
    PointNet2Spec spec = PointNet2Spec::classification(10);
    spec.sa[0].npoint = 32;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 8;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    const RunOutput out = net.run(randomCloud(128, 11));
    // 3 SA layers x 3 MLP layers + head (2 hidden + logits).
    EXPECT_EQ(out.trace.gemms.size(), 9u + 3u);
    // Two gathering SA layers (group-all gathers nothing).
    EXPECT_EQ(out.trace.gathers.size(), 2u);
    EXPECT_GT(out.trace.totalMacs(), 0u);
}

TEST(PointNet2, FpsCentroidsSupported)
{
    PointNet2Spec spec = PointNet2Spec::classification(4);
    spec.sa[0].npoint = 16;
    spec.sa[0].k = 4;
    spec.sa[1].npoint = 4;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    RunOptions opts;
    opts.centroid = CentroidMethod::Fps;
    const RunOutput out = net.run(randomCloud(64, 12), opts);
    EXPECT_EQ(out.logits.cols(), 4u);
}

// ------------------------------------------------------ segmentation

TEST(PointNet2, SegmentationPerPointOutputs)
{
    PointNet2Spec spec = PointNet2Spec::semanticSegmentation(6);
    spec.inputPoints = 256;
    spec.sa[0].npoint = 64;
    spec.sa[1].npoint = 32;
    spec.sa[2].npoint = 16;
    spec.sa[3].npoint = 8;
    for (auto &sa : spec.sa)
        sa.k = 8;
    const PointNet2 net(spec, 42);
    const PointCloud cloud = randomCloud(256, 13);
    const RunOutput out = net.run(cloud);
    EXPECT_EQ(out.logits.rows(), 256u);
    EXPECT_EQ(out.logits.cols(), 6u);
    EXPECT_EQ(out.labels.size(), 256u);
    for (std::size_t label : out.labels)
        EXPECT_LT(label, 6u);
}

TEST(PointNet2, SegmentationTraceHasFpGathers)
{
    PointNet2Spec spec = PointNet2Spec::partSegmentation(8);
    spec.inputPoints = 128;
    spec.sa[0].npoint = 32;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 8;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    const RunOutput out = net.run(randomCloud(128, 14));
    // 2 SA gathers + 3 FP 3-NN gathers.
    EXPECT_EQ(out.trace.gathers.size(), 5u);
}

// -------------------------------------------------------- DS methods

class DsMethodTest : public ::testing::TestWithParam<DsMethod>
{
};

TEST_P(DsMethodTest, AllMethodsProduceValidLogits)
{
    PointNet2Spec spec = PointNet2Spec::classification(5);
    spec.sa[0].npoint = 32;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 8;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    RunOptions opts;
    opts.ds = GetParam();
    const RunOutput out = net.run(randomCloud(256, 15), opts);
    EXPECT_EQ(out.logits.cols(), 5u);
    for (std::size_t c = 0; c < 5; ++c)
        EXPECT_TRUE(std::isfinite(out.logits.at(0, c)));
}

INSTANTIATE_TEST_SUITE_P(Methods, DsMethodTest,
                         ::testing::Values(DsMethod::BruteKnn,
                                           DsMethod::BruteBq,
                                           DsMethod::Veg,
                                           DsMethod::VegBq,
                                           DsMethod::VegStrict));

TEST(PointNet2, VegAndBruteAgreeWithStrictGathering)
{
    // With identical centroids (same seed) and exact gathering,
    // VEG-strict and brute KNN must produce identical logits.
    PointNet2Spec spec = PointNet2Spec::classification(4);
    spec.sa[0].npoint = 16;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 4;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    const PointCloud cloud = randomCloud(128, 16);

    RunOptions brute_opts;
    brute_opts.ds = DsMethod::BruteKnn;
    brute_opts.seed = 5;
    RunOptions veg_opts;
    veg_opts.ds = DsMethod::VegStrict;
    veg_opts.seed = 5;

    const RunOutput a = net.run(cloud, brute_opts);
    const RunOutput b = net.run(cloud, veg_opts);
    for (std::size_t c = 0; c < a.logits.cols(); ++c)
        EXPECT_NEAR(a.logits.at(0, c), b.logits.at(0, c), 1e-3f);
}

TEST(PointNet2, VegWorkloadBelowBrute)
{
    PointNet2Spec spec = PointNet2Spec::semanticSegmentation(4);
    spec.inputPoints = 512;
    spec.sa[0].npoint = 128;
    spec.sa[1].npoint = 64;
    spec.sa[2].npoint = 32;
    spec.sa[3].npoint = 8;
    for (auto &sa : spec.sa)
        sa.k = 8;
    const PointNet2 net(spec, 42);
    const PointCloud cloud = randomCloud(512, 17);

    RunOptions brute_opts;
    brute_opts.ds = DsMethod::BruteKnn;
    RunOptions veg_opts;
    veg_opts.ds = DsMethod::Veg;

    const RunOutput brute = net.run(cloud, brute_opts);
    const RunOutput veg = net.run(cloud, veg_opts);
    EXPECT_LT(veg.trace.totalSortCandidates() * 2,
              brute.trace.totalSortCandidates());
}

TEST(PointNet2, InputOctreeReusedForFirstLayer)
{
    PointNet2Spec spec = PointNet2Spec::classification(4);
    spec.sa[0].npoint = 16;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 4;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    const PointCloud cloud = randomCloud(128, 18);

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 8;
    Octree tree = Octree::build(cloud, tree_cfg);

    RunOptions opts;
    opts.ds = DsMethod::Veg;
    opts.inputOctree = &tree;
    // Reuse requires the reordered cloud as input.
    const RunOutput out = net.run(tree.reorderedCloud(), opts);
    EXPECT_EQ(out.logits.cols(), 4u);
    // First SA gather must not have paid an octree build.
    ASSERT_FALSE(out.trace.gathers.empty());
    EXPECT_EQ(out.trace.gathers[0].stats.get("octree.host_reads"), 0u);
}

TEST(PointNet2, FeatureCloudSupported)
{
    PointNet2Spec spec = PointNet2Spec::classification(3);
    spec.inputFeatureDim = 2;
    spec.sa[0].npoint = 8;
    spec.sa[0].k = 4;
    spec.sa[1].npoint = 4;
    spec.sa[1].k = 2;
    const PointNet2 net(spec, 42);
    PointCloud cloud(2);
    Rng rng(19);
    for (int i = 0; i < 64; ++i) {
        const float f[] = {rng.uniform(0.0f, 1.0f),
                           rng.uniform(0.0f, 1.0f)};
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)},
                  f);
    }
    const RunOutput out = net.run(cloud);
    EXPECT_EQ(out.logits.cols(), 3u);
}

// ------------------------------------------- blocked kernels (perf PR)

TEST(Tensor, MatmulIntoMatchesMatmulBitForBit)
{
    // The blocked kernel reorders memory access, never the
    // floating-point sums: any (rows, k, n), including remainder
    // rows outside the 4-row blocks, must reproduce matmul exactly.
    Rng rng(3);
    for (const std::size_t m : {1u, 3u, 4u, 7u, 64u}) {
        for (const std::size_t k : {1u, 3u, 32u}) {
            for (const std::size_t n : {1u, 5u, 33u}) {
                Tensor a(m, k), b(k, n);
                a.randomize(rng, 1.0f);
                b.randomize(rng, 1.0f);
                const Tensor expect = Tensor::matmul(a, b);
                Tensor got;
                Tensor::matmulInto(a, b, got);
                ASSERT_EQ(got.data(), expect.data())
                    << m << "x" << k << "x" << n;
            }
        }
    }
}

TEST(Tensor, MatmulRowRangesComposeExactly)
{
    Rng rng(5);
    Tensor a(10, 8), b(8, 6);
    a.randomize(rng, 1.0f);
    b.randomize(rng, 1.0f);
    const Tensor whole = Tensor::matmul(a, b);
    Tensor split(10, 6);
    Tensor::matmulRowsInto(a, b, split, 0, 4);
    Tensor::matmulRowsInto(a, b, split, 4, 9);
    Tensor::matmulRowsInto(a, b, split, 9, 10);
    EXPECT_EQ(split.data(), whole.data());
}

TEST(Tensor, MaxPoolGroupsIntoReusesBuffer)
{
    Rng rng(7);
    Tensor x(12, 5);
    x.randomize(rng, 1.0f);
    const Tensor expect = x.maxPoolGroups(4);
    Tensor out(99, 2); // wrong shape on purpose: resized in place
    x.maxPoolGroupsInto(4, out);
    EXPECT_EQ(out.rows(), 3u);
    EXPECT_EQ(out.data(), expect.data());
}

TEST(Mlp, ForwardArenaMatchesForwardBitForBit)
{
    Rng wr(42);
    const Mlp mlp(6, {16, 16, 4}, wr, /*final_relu=*/false);
    Rng xr(1);
    Tensor x(37, 6);
    x.randomize(xr, 1.0f);

    ExecutionTrace ta, tb;
    const Tensor plain = mlp.forward(x, "t", ta);
    FrameWorkspace ws;
    ws.beginFrame();
    const Tensor &arena = mlp.forwardArena(x, "t", tb, ws, 1);
    EXPECT_EQ(arena.data(), plain.data());
    EXPECT_EQ(ta.gemms.size(), tb.gemms.size());

    // Intra-op row splitting is bit-identical too (rows are
    // independent; k-order accumulation per element is unchanged).
    ExecutionTrace tc;
    ws.beginFrame();
    const Tensor &threaded = mlp.forwardArena(x, "t", tc, ws, 3);
    EXPECT_EQ(threaded.data(), plain.data());
}

TEST(PointNet2, WorkspaceAndThreadsDoNotChangeOutputs)
{
    PointNet2Spec spec = PointNet2Spec::classification(4);
    spec.sa[0].npoint = 32;
    spec.sa[0].k = 8;
    spec.sa[1].npoint = 8;
    spec.sa[1].k = 4;
    const PointNet2 net(spec, 42);
    PointCloud cloud;
    Rng rng(23);
    for (int i = 0; i < 128; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }

    RunOptions base; // private per-call workspace
    const RunOutput a = net.run(cloud, base);

    FrameWorkspace ws;
    RunOptions pooled = base;
    pooled.workspace = &ws;
    pooled.intraOpThreads = 2;
    const RunOutput b = net.run(cloud, pooled);
    const RunOutput c = net.run(cloud, pooled); // arena now warm

    EXPECT_EQ(a.logits.data(), b.logits.data());
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(b.logits.data(), c.logits.data());
}

} // namespace
} // namespace hgpcn
