/**
 * @file
 * Tests for the down-sampling library: FPS (Alg. 1), RS, OIS-FPS
 * (Alg. 2), approximate OIS and the quality metrics. Includes the
 * paper's key claims as properties: OIS quality ~ FPS quality >> RS
 * quality, and OIS memory accesses << FPS memory accesses.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "sampling/approx_ois_sampler.h"
#include "sampling/fps_sampler.h"
#include "sampling/metrics.h"
#include "sampling/ois_fps_sampler.h"
#include "sampling/random_sampler.h"

namespace hgpcn
{
namespace
{

PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    PointCloud cloud;
    cloud.reserve(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.add({rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f),
                   rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

void
expectValidSample(const SampleResult &result, std::size_t n,
                  std::size_t k)
{
    ASSERT_EQ(result.indices.size(), k);
    std::set<PointIndex> unique(result.indices.begin(),
                                result.indices.end());
    EXPECT_EQ(unique.size(), k) << "duplicate picks";
    for (PointIndex i : result.indices)
        EXPECT_LT(i, n);
}

// ------------------------------------------------------------- FPS

TEST(Fps, ProducesKDistinctPoints)
{
    const PointCloud cloud = randomCloud(500, 1);
    FpsSampler fps(1);
    expectValidSample(fps.sample(cloud, 50), 500, 50);
}

TEST(Fps, Deterministic)
{
    const PointCloud cloud = randomCloud(300, 2);
    FpsSampler a(7), b(7);
    EXPECT_EQ(a.sample(cloud, 40).indices, b.sample(cloud, 40).indices);
}

TEST(Fps, SecondPickIsGlobalFarthest)
{
    PointCloud cloud;
    cloud.add({0, 0, 0});
    cloud.add({0.1f, 0, 0});
    cloud.add({1, 1, 1}); // farthest from everything else
    cloud.add({0.2f, 0.1f, 0});
    const auto result = FpsSampler(1).sample(cloud, 2);
    // Whatever the seed, the second pick must be the far corner
    // unless the seed itself was the corner.
    const bool corner_in = result.indices[0] == 2 ||
                           result.indices[1] == 2;
    EXPECT_TRUE(corner_in);
}

TEST(Fps, KEqualsNSelectsEverything)
{
    const PointCloud cloud = randomCloud(30, 3);
    const auto result = FpsSampler(1).sample(cloud, 30);
    expectValidSample(result, 30, 30);
}

TEST(Fps, MemoryAccessCountersScaleWithNK)
{
    const PointCloud cloud = randomCloud(400, 4);
    const auto result = FpsSampler(1).sample(cloud, 20);
    // (k-1) iterations re-read all n points.
    EXPECT_EQ(result.stats.get("sample.host_reads"),
              1u + 19u * 400u);
    EXPECT_EQ(result.stats.get("sample.intermediate_reads"),
              19u * 400u);
    EXPECT_GE(result.stats.get("sample.intermediate_writes"), 400u);
}

TEST(Fps, CoverageShrinksWithMoreSamples)
{
    const PointCloud cloud = randomCloud(600, 5);
    FpsSampler fps(1);
    const auto small = fps.sample(cloud, 8);
    const auto large = fps.sample(cloud, 64);
    EXPECT_LT(coverageRadius(cloud, large.indices),
              coverageRadius(cloud, small.indices));
}

// -------------------------------------------------------------- RS

TEST(RandomSampler, ProducesKDistinctPoints)
{
    const PointCloud cloud = randomCloud(500, 6);
    RandomSampler rs(3);
    expectValidSample(rs.sample(cloud, 100), 500, 100);
}

TEST(RandomSampler, Deterministic)
{
    const PointCloud cloud = randomCloud(200, 7);
    RandomSampler a(9), b(9);
    EXPECT_EQ(a.sample(cloud, 50).indices, b.sample(cloud, 50).indices);
}

TEST(RandomSampler, CheapCounters)
{
    const PointCloud cloud = randomCloud(1000, 8);
    const auto result = RandomSampler(1).sample(cloud, 64);
    EXPECT_EQ(result.stats.get("sample.host_reads"), 64u);
    EXPECT_EQ(result.stats.get("sample.distance_computations"), 0u);
}

TEST(ReinforcedRandomSampler, AddsEncoderCost)
{
    const PointCloud cloud = randomCloud(1000, 9);
    const auto result = ReinforcedRandomSampler(1).sample(cloud, 64);
    expectValidSample(result, 1000, 64);
    EXPECT_EQ(result.stats.get("sample.encoder_macs"),
              1000u * ReinforcedRandomSampler::kEncoderMacsPerPoint);
}

// ------------------------------------------------------------- OIS

TEST(Ois, ProducesKDistinctPoints)
{
    const PointCloud cloud = randomCloud(800, 10);
    OisFpsSampler ois;
    expectValidSample(ois.sample(cloud, 100), 800, 100);
}

TEST(Ois, Deterministic)
{
    const PointCloud cloud = randomCloud(400, 11);
    OisFpsSampler::Config cfg;
    cfg.seed = 5;
    OisFpsSampler a(cfg), b(cfg);
    EXPECT_EQ(a.sample(cloud, 64).indices, b.sample(cloud, 64).indices);
}

TEST(Ois, SptAddressesMatchIndices)
{
    const PointCloud cloud = randomCloud(300, 12);
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 8;
    Octree tree = Octree::build(cloud, tree_cfg);
    OisFpsSampler ois;
    const auto result = ois.sampleWithTree(tree, 50);
    ASSERT_EQ(result.spt.size(), 50u);
    for (std::size_t i = 0; i < result.spt.size(); ++i) {
        EXPECT_EQ(tree.permutation()[result.spt[i]],
                  result.indices[i]);
    }
}

TEST(Ois, HostAccessesAreOnePerPick)
{
    const PointCloud cloud = randomCloud(1000, 13);
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 10;
    Octree tree = Octree::build(cloud, tree_cfg);
    OisFpsSampler ois;
    const auto result = ois.sampleWithTree(tree, 128);
    EXPECT_EQ(result.stats.get("sample.host_reads"), 128u);
}

TEST(Ois, DescentBoundedByDepth)
{
    const PointCloud cloud = randomCloud(1000, 14);
    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 8;
    Octree tree = Octree::build(cloud, tree_cfg);
    OisFpsSampler ois;
    const auto result = ois.sampleWithTree(tree, 64);
    // Average levels per pick can never exceed the octree depth.
    const double avg_levels =
        static_cast<double>(
            result.stats.get("sample.levels_visited")) /
        63.0;
    EXPECT_LE(avg_levels, static_cast<double>(tree.depth()) + 1e-9);
}

TEST(Ois, MassivelyFewerMemoryAccessesThanFps)
{
    // The paper's Fig. 9 claim, scaled down: OIS total memory
    // traffic (build + sampling) is orders of magnitude below FPS.
    const PointCloud cloud = randomCloud(20000, 15);
    const std::size_t k = 512;

    const auto fps = FpsSampler(1).sample(cloud, k);
    const std::uint64_t fps_accesses =
        fps.stats.get("sample.host_reads") +
        fps.stats.get("sample.intermediate_reads") +
        fps.stats.get("sample.intermediate_writes");

    const auto ois = OisFpsSampler().sample(cloud, k);
    const std::uint64_t ois_accesses =
        ois.stats.get("sample.host_reads") +
        ois.stats.get("sample.host_writes") +
        ois.stats.get("octree.host_reads") +
        ois.stats.get("octree.host_writes");

    EXPECT_GT(fps_accesses / ois_accesses, 100u);
}

TEST(Ois, QualityComparableToFpsAndBetterThanRs)
{
    // Paper Section VII-C: OIS achieves the same accuracy as FPS;
    // RS has the highest information loss. Coverage radius is the
    // geometric proxy: OIS within 2x of FPS, RS clearly worse.
    const PointCloud cloud = randomCloud(3000, 16);
    const std::size_t k = 96;

    const auto fps = FpsSampler(1).sample(cloud, k);
    const auto ois = OisFpsSampler().sample(cloud, k);
    const auto rs = RandomSampler(1).sample(cloud, k);

    const double cov_fps = coverageRadius(cloud, fps.indices);
    const double cov_ois = coverageRadius(cloud, ois.indices);
    const double cov_rs = coverageRadius(cloud, rs.indices);

    EXPECT_LT(cov_ois, 2.0 * cov_fps);
    EXPECT_LT(cov_ois, cov_rs);
}

TEST(Ois, SpreadsSamplesLikeFps)
{
    const PointCloud cloud = randomCloud(2000, 17);
    const std::size_t k = 64;
    const auto ois = OisFpsSampler().sample(cloud, k);
    const auto rs = RandomSampler(1).sample(cloud, k);
    // FPS-like samplers keep picks apart; random picks collide.
    EXPECT_GT(minSampleSpacing(cloud, ois.indices),
              minSampleSpacing(cloud, rs.indices));
}

TEST(Ois, WorksOnClusteredClouds)
{
    PointCloud cloud;
    Rng rng(18);
    for (int c = 0; c < 5; ++c) {
        const Vec3 center{rng.uniform(0.0f, 1.0f),
                          rng.uniform(0.0f, 1.0f),
                          rng.uniform(0.0f, 1.0f)};
        for (int i = 0; i < 400; ++i) {
            cloud.add(
                {center.x + 0.01f * static_cast<float>(rng.normal()),
                 center.y + 0.01f * static_cast<float>(rng.normal()),
                 center.z + 0.01f * static_cast<float>(rng.normal())});
        }
    }
    const auto result = OisFpsSampler().sample(cloud, 50);
    expectValidSample(result, 2000, 50);
    // Every cluster must be represented (coverage property).
    EXPECT_LT(coverageRadius(cloud, result.indices), 0.5);
}

TEST(Ois, KEqualsNConsumesEverything)
{
    const PointCloud cloud = randomCloud(64, 19);
    const auto result = OisFpsSampler().sample(cloud, 64);
    expectValidSample(result, 64, 64);
}

class OisDepthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OisDepthTest, ValidAcrossOctreeDepths)
{
    const int depth = GetParam();
    const PointCloud cloud = randomCloud(1500, 20 + depth);
    OisFpsSampler::Config cfg;
    cfg.octree.maxDepth = depth;
    const auto result = OisFpsSampler(cfg).sample(cloud, 128);
    expectValidSample(result, 1500, 128);
}

INSTANTIATE_TEST_SUITE_P(Depths, OisDepthTest,
                         ::testing::Values(4, 6, 8, 10, 12));

// ------------------------------------------------------ approx OIS

TEST(ApproxOis, ProducesKDistinctPoints)
{
    const PointCloud cloud = randomCloud(800, 30);
    ApproxOisSampler approx;
    expectValidSample(approx.sample(cloud, 100), 800, 100);
}

TEST(ApproxOis, VisitsFewerLevelsThanExact)
{
    const PointCloud cloud = randomCloud(4000, 31);
    const std::size_t k = 256;

    Octree::Config tree_cfg;
    tree_cfg.maxDepth = 10;
    tree_cfg.leafCapacity = 4;

    Octree tree_a = Octree::build(cloud, tree_cfg);
    OisFpsSampler::Config exact_cfg;
    exact_cfg.octree = tree_cfg;
    const auto exact =
        OisFpsSampler(exact_cfg).sampleWithTree(tree_a, k);

    Octree tree_b = Octree::build(cloud, tree_cfg);
    ApproxOisSampler::Config approx_cfg;
    approx_cfg.octree = tree_cfg;
    approx_cfg.stopCount = 64;
    const auto approx =
        ApproxOisSampler(approx_cfg).sampleWithTree(tree_b, k);

    EXPECT_LT(approx.stats.get("sample.levels_visited"),
              exact.stats.get("sample.levels_visited"));
}

TEST(ApproxOis, QualityDegradesGracefully)
{
    const PointCloud cloud = randomCloud(3000, 32);
    const std::size_t k = 96;
    const auto exact = OisFpsSampler().sample(cloud, k);
    ApproxOisSampler::Config cfg;
    cfg.stopCount = 32;
    const auto approx = ApproxOisSampler(cfg).sample(cloud, k);
    // Bounded degradation: within 2.5x of the exact coverage.
    EXPECT_LT(coverageRadius(cloud, approx.indices),
              2.5 * coverageRadius(cloud, exact.indices));
}

// ---------------------------------------------------------- metrics

TEST(Metrics, CoverageZeroWhenSampleIsWholeCloud)
{
    const PointCloud cloud = randomCloud(50, 40);
    std::vector<PointIndex> all(50);
    for (PointIndex i = 0; i < 50; ++i)
        all[i] = i;
    EXPECT_DOUBLE_EQ(coverageRadius(cloud, all), 0.0);
}

TEST(Metrics, CoverageOfSinglePointIsMaxDistance)
{
    PointCloud cloud;
    cloud.add({0, 0, 0});
    cloud.add({3, 4, 0});
    const PointIndex one[] = {0};
    EXPECT_NEAR(coverageRadius(cloud, one), 5.0, 1e-5);
}

TEST(Metrics, MeanNearestBelowCoverage)
{
    const PointCloud cloud = randomCloud(400, 41);
    const auto sample = RandomSampler(2).sample(cloud, 20);
    EXPECT_LE(meanNearestSampleDistance(cloud, sample.indices),
              coverageRadius(cloud, sample.indices));
}

TEST(Metrics, MinSpacingOfCoincidentPointsIsZero)
{
    PointCloud cloud;
    cloud.add({1, 1, 1});
    cloud.add({1, 1, 1});
    const PointIndex idx[] = {0, 1};
    EXPECT_DOUBLE_EQ(minSampleSpacing(cloud, idx), 0.0);
}

} // namespace
} // namespace hgpcn
