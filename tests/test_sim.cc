/**
 * @file
 * Tests for the hardware simulators: bitonic sorter, systolic array,
 * DRAM model, Down-sampling Unit, DSU pipeline, FCU and the on-chip
 * memory / device models.
 */

#include <gtest/gtest.h>

#include "sim/bitonic_sorter.h"
#include "sim/device_model.h"
#include "sim/down_sampling_unit.h"
#include "sim/dram_model.h"
#include "sim/dsu_pipeline.h"
#include "sim/fcu_dla.h"
#include "sim/on_chip_memory.h"
#include "sim/systolic_array.h"

namespace hgpcn
{
namespace
{

// ------------------------------------------------------ bitonic sorter

TEST(BitonicSorter, TrivialSizes)
{
    const BitonicSorterSim sorter(64);
    EXPECT_EQ(sorter.sortCycles(0), 1u);
    EXPECT_EQ(sorter.sortCycles(1), 1u);
    EXPECT_GE(sorter.sortCycles(2), 1u);
}

TEST(BitonicSorter, CyclesMonotonicInN)
{
    const BitonicSorterSim sorter(64);
    std::uint64_t prev = 0;
    for (std::uint64_t n = 2; n <= 1u << 14; n *= 2) {
        const std::uint64_t c = sorter.sortCycles(n);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(BitonicSorter, StageFormulaAtExactPowers)
{
    // n = 1024, lanes = 512 pairs fit exactly in one pass of
    // 64 lanes -> pairs/lanes cycles per stage.
    const BitonicSorterSim sorter(64);
    const std::uint64_t log_p = 10;
    const std::uint64_t stages = log_p * (log_p + 1) / 2;
    EXPECT_EQ(sorter.sortCycles(1024), stages * (512 / 64));
}

TEST(BitonicSorter, MoreLanesFewerCycles)
{
    const BitonicSorterSim narrow(16), wide(256);
    EXPECT_GT(narrow.sortCycles(4096), wide.sortCycles(4096));
}

TEST(BitonicSorter, TopKCheaperThanFullSortForLargeN)
{
    const BitonicSorterSim sorter(64);
    EXPECT_LT(sorter.topKCycles(1 << 14, 32),
              sorter.sortCycles(1 << 14) * 4);
    EXPECT_EQ(sorter.topKCycles(16, 32), sorter.sortCycles(16));
}

TEST(BitonicSorter, TopKScalesWithBatches)
{
    const BitonicSorterSim sorter(64);
    const std::uint64_t one = sorter.topKCycles(1024, 32);
    const std::uint64_t two = sorter.topKCycles(2048, 32);
    EXPECT_NEAR(static_cast<double>(two) / static_cast<double>(one),
                2.0, 0.2);
}

// ------------------------------------------------------ systolic array

TEST(SystolicArray, PerfectTileGemm)
{
    const SystolicArraySim array(16, 16);
    // K=16, N=16: one tile; cycles = rows + M + cols.
    EXPECT_EQ(array.gemmCycles(100, 16, 16), 16u + 100u + 16u);
}

TEST(SystolicArray, TilesMultiply)
{
    const SystolicArraySim array(16, 16);
    const std::uint64_t one_tile = array.gemmCycles(64, 16, 16);
    EXPECT_EQ(array.gemmCycles(64, 32, 16), 2 * one_tile);
    EXPECT_EQ(array.gemmCycles(64, 32, 32), 4 * one_tile);
}

TEST(SystolicArray, ZeroDimsCostNothing)
{
    const SystolicArraySim array(16, 16);
    EXPECT_EQ(array.gemmCycles(0, 16, 16), 0u);
    EXPECT_EQ(array.gemmCycles(16, 0, 16), 0u);
}

TEST(SystolicArray, UtilizationApproachesPeakForLargeM)
{
    const SystolicArraySim array(16, 16);
    const std::uint64_t m = 100000;
    const std::uint64_t cycles = array.gemmCycles(m, 16, 16);
    const double macs_per_cycle =
        static_cast<double>(m * 16 * 16) / static_cast<double>(cycles);
    EXPECT_GT(macs_per_cycle, 0.99 * 256.0);
}

TEST(SystolicArray, TraceCyclesSumsOps)
{
    const SystolicArraySim array(16, 16);
    ExecutionTrace trace;
    trace.gemms.push_back({"a", 10, 16, 16});
    trace.gemms.push_back({"b", 20, 16, 16});
    EXPECT_EQ(array.traceCycles(trace),
              array.gemmCycles(10, 16, 16) +
                  array.gemmCycles(20, 16, 16));
}

// ----------------------------------------------------------- DRAM

TEST(Dram, SequentialScalesWithBytes)
{
    const DramModel dram(MemoryParams{});
    EXPECT_DOUBLE_EQ(dram.sequentialSec(0), 0.0);
    EXPECT_NEAR(dram.sequentialSec(16'000'000'000ull), 1.0, 1e-9);
}

TEST(Dram, RandomSlowerThanSequentialPerByte)
{
    const DramModel dram(MemoryParams{});
    const std::uint64_t n = 10000;
    EXPECT_GT(dram.randomSec(n, 12), dram.sequentialSec(n * 12));
}

TEST(Dram, PointStreamUsesPointBytes)
{
    MemoryParams prm;
    prm.pointBytes = 12;
    const DramModel dram(prm);
    EXPECT_DOUBLE_EQ(dram.pointStreamSec(100),
                     dram.sequentialSec(1200));
}

// ------------------------------------------------ DownsamplingUnitSim

TEST(DownsamplingUnit, BreakdownSumsToTotal)
{
    const DownsamplingUnitSim sim(SimConfig::defaults());
    StatSet stats;
    stats.set("sample.levels_visited", 4096 * 8);
    stats.set("sample.leaf_candidates", 4096 * 16);
    const auto result = sim.run(stats, 4096, 100000);
    EXPECT_NEAR(result.totalSec(),
                result.mmioSec + result.descentSec +
                    result.leafScanSec + result.hostReadSec +
                    result.sptWriteSec,
                1e-12);
    EXPECT_GT(result.totalSec(), 0.0);
}

TEST(DownsamplingUnit, FewerModulesSlowerDescent)
{
    SimConfig one = SimConfig::defaults();
    one.fpga.samplingModules = 1;
    SimConfig eight = SimConfig::defaults();
    eight.fpga.samplingModules = 8;
    StatSet stats;
    stats.set("sample.levels_visited", 100000);
    const auto slow = DownsamplingUnitSim(one).run(stats, 1024, 1000);
    const auto fast = DownsamplingUnitSim(eight).run(stats, 1024, 1000);
    EXPECT_GT(slow.descentSec, fast.descentSec);
}

TEST(DownsamplingUnit, MmioScalesWithTableSize)
{
    const DownsamplingUnitSim sim(SimConfig::defaults());
    StatSet stats;
    const auto small = sim.run(stats, 16, 1000);
    const auto large = sim.run(stats, 16, 1000000);
    EXPECT_GT(large.mmioSec, small.mmioSec);
}

TEST(DownsamplingUnit, HardwareFasterThanScalarCpuUnit)
{
    // The Fig. 12 inset: the FPGA unit beats a CPU running the same
    // descent serially (paper: 5.95x-6.24x).
    const DownsamplingUnitSim sim(SimConfig::defaults());
    StatSet stats;
    stats.set("sample.levels_visited", 4096 * 10);
    stats.set("sample.leaf_candidates", 4096 * 20);
    const auto hw = sim.run(stats, 4096, 50000);
    const double hw_unit_sec =
        hw.descentSec + hw.leafScanSec + hw.sptWriteSec;
    const double cpu_sec = sim.cpuUnitSec(stats, 4096);
    EXPECT_GT(cpu_sec / hw_unit_sec, 2.0);
    EXPECT_LT(cpu_sec / hw_unit_sec, 20.0);
}

// -------------------------------------------------------- DSU pipeline

std::vector<VegTrace>
uniformTraces(std::size_t n, std::uint32_t inner, std::uint32_t last,
              std::uint32_t lookups)
{
    std::vector<VegTrace> traces(n);
    for (auto &t : traces) {
        t.rings = 2;
        t.innerPoints = inner;
        t.lastRingPoints = last;
        t.tableLookups = lookups;
    }
    return traces;
}

TEST(DsuPipeline, StageCyclesAllPopulated)
{
    const DsuPipelineSim sim(SimConfig::defaults(), 8);
    const auto traces = uniformTraces(100, 16, 40, 33);
    const auto result = sim.run(traces, 32);
    for (std::size_t s = 0; s < kStageCount; ++s)
        EXPECT_GT(result.stageCycles[s], 0u)
            << "stage " << dsuStageName(s);
}

TEST(DsuPipeline, PipelinedFasterThanSerial)
{
    const DsuPipelineSim sim(SimConfig::defaults(), 8);
    const auto traces = uniformTraces(200, 16, 40, 33);
    const auto result = sim.run(traces, 32);
    EXPECT_LT(result.pipelinedCycles, result.serialCycles());
}

TEST(DsuPipeline, SortDominatesForHugeLastRing)
{
    const DsuPipelineSim sim(SimConfig::defaults(), 8);
    const auto traces = uniformTraces(50, 4, 4000, 33);
    const auto result = sim.run(traces, 32);
    std::uint64_t max_stage = 0;
    std::size_t argmax = 0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
        if (result.stageCycles[s] > max_stage) {
            max_stage = result.stageCycles[s];
            argmax = s;
        }
    }
    EXPECT_EQ(argmax, static_cast<std::size_t>(kStageSt));
}

TEST(DsuPipeline, EmptyTraceListCostsNothing)
{
    const DsuPipelineSim sim(SimConfig::defaults(), 8);
    const auto result = sim.run({}, 32);
    EXPECT_EQ(result.pipelinedCycles, 0u);
}

TEST(DsuPipeline, StageNamesStable)
{
    EXPECT_STREQ(dsuStageName(kStageFp), "FP");
    EXPECT_STREQ(dsuStageName(kStageLv), "LV");
    EXPECT_STREQ(dsuStageName(kStageVe), "VE");
    EXPECT_STREQ(dsuStageName(kStageGp), "GP");
    EXPECT_STREQ(dsuStageName(kStageSt), "ST");
    EXPECT_STREQ(dsuStageName(kStageBf), "BF");
}

// ------------------------------------------------------------- FCU

TEST(Fcu, ComputeMatchesSystolicModel)
{
    const SimConfig cfg = SimConfig::defaults();
    const FcuSim fcu(cfg);
    ExecutionTrace trace;
    trace.gemms.push_back({"a", 1000, 64, 64});
    const auto result = fcu.run(trace);
    const SystolicArraySim array(cfg.fpga.systolicRows,
                                 cfg.fpga.systolicCols);
    EXPECT_EQ(result.computeCycles, array.traceCycles(trace));
    EXPECT_EQ(result.macs, 1000u * 64u * 64u);
    EXPECT_GT(result.utilization, 0.0);
    EXPECT_LE(result.utilization, 1.0);
}

TEST(Fcu, TotalIsMaxOfComputeAndMemory)
{
    const FcuSim fcu(SimConfig::defaults());
    ExecutionTrace trace;
    trace.gemms.push_back({"a", 64, 64, 64});
    const auto result = fcu.run(trace);
    EXPECT_DOUBLE_EQ(result.totalSec(),
                     std::max(result.computeSec, result.memorySec));
}

// -------------------------------------------------- on-chip memory

TEST(OnChip, FpsExceedsDeviceAroundHalfMillionPoints)
{
    // Paper Section VII-C: frames above ~5e5 points no longer fit
    // the Arria 10's 65 Mb when FPS keeps them on chip.
    const OnChipMemoryModel model(SimConfig::defaults());
    EXPECT_TRUE(model.fits(model.fpsFootprintBits(100000, 4096)));
    EXPECT_FALSE(model.fits(model.fpsFootprintBits(600000, 4096)));
}

TEST(OnChip, OisFitsEvenMillionPointFrames)
{
    // Paper: at 1e6 points the OIS table consumes ~10 Mb.
    const OnChipMemoryModel model(SimConfig::defaults());
    // 1e6 points at leafCapacity 64 -> roughly 6e4 table rows.
    const std::uint64_t table_bytes = 60000 * 20;
    const double bits = model.oisFootprintBits(table_bytes, 16384);
    EXPECT_TRUE(model.fits(bits));
    EXPECT_LT(bits, 20e6);
}

TEST(OnChip, SavingRatioInPaperBand)
{
    const OnChipMemoryModel model(SimConfig::defaults());
    const double fps_bits = model.fpsFootprintBits(1000000, 4096);
    const double ois_bits =
        model.oisFootprintBits(60000 * 20, 4096);
    const double saving = fps_bits / ois_bits;
    EXPECT_GT(saving, 8.0);
    EXPECT_LT(saving, 40.0);
}

// ----------------------------------------------------- device model

TEST(DeviceModel, FpsTimeScalesWithWorkload)
{
    const DeviceModel cpu(DeviceModel::xeonW2255());
    StatSet small, large;
    small.set("sample.host_reads", 1000000);
    large.set("sample.host_reads", 100000000);
    EXPECT_GT(cpu.samplingSec(large, 4096),
              cpu.samplingSec(small, 4096));
}

TEST(DeviceModel, GpuPaysIterationSerialization)
{
    const DeviceModel gpu(DeviceModel::jetsonXavierNx());
    StatSet stats; // negligible traffic
    stats.set("sample.host_reads", 10);
    const double t = gpu.samplingSec(stats, 4096);
    EXPECT_GE(t, 4096 * gpu.spec().perIterationSec);
}

TEST(DeviceModel, InferenceSplitsDsAndFc)
{
    const DeviceModel dev(DeviceModel::jetsonXavierNx());
    ExecutionTrace trace;
    trace.gemms.push_back({"sa0.fc0", 1000, 64, 64});
    GatherOp op;
    op.layer = "sa0";
    op.stats.set("gather.distance_computations", 1000000);
    trace.gathers.push_back(op);
    EXPECT_GT(dev.dsSec(trace), 0.0);
    EXPECT_GT(dev.fcSec(trace), 0.0);
    EXPECT_DOUBLE_EQ(dev.inferenceSec(trace),
                     dev.dsSec(trace) + dev.fcSec(trace));
}

TEST(DeviceModel, DesktopGpuFasterThanJetson)
{
    const DeviceModel jetson(DeviceModel::jetsonXavierNx());
    const DeviceModel desktop(DeviceModel::rtx4060Ti());
    ExecutionTrace trace;
    trace.gemms.push_back({"sa0.fc0", 100000, 64, 128});
    GatherOp op;
    op.stats.set("gather.distance_computations", 10000000);
    trace.gathers.push_back(op);
    EXPECT_LT(desktop.inferenceSec(trace), jetson.inferenceSec(trace));
}

TEST(DeviceModel, OctreeBuildOnCpuOnly)
{
    const DeviceModel cpu(DeviceModel::xeonW2255());
    const DeviceModel gpu(DeviceModel::rtx4060Ti());
    StatSet build;
    build.set("octree.code_computations", 1000000);
    build.set("octree.sort_ops", 17000000);
    build.set("octree.host_writes", 1000000);
    EXPECT_GT(cpu.octreeBuildSec(build), 0.0);
    EXPECT_DOUBLE_EQ(gpu.octreeBuildSec(build), 0.0);
}

TEST(SimConfig, DescribeMentionsKeyParameters)
{
    const std::string desc = SimConfig::defaults().describe();
    EXPECT_NE(desc.find("MHz"), std::string::npos);
    EXPECT_NE(desc.find("systolic"), std::string::npos);
    EXPECT_NE(desc.find("GB/s"), std::string::npos);
}

} // namespace
} // namespace hgpcn
