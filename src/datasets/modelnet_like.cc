#include "datasets/modelnet_like.h"

#include <functional>

#include "common/logging.h"
#include "datasets/shape_sampler.h"

namespace hgpcn
{

const std::vector<std::string> &
ModelNetLike::objectNames()
{
    static const std::vector<std::string> names = {
        "MN.airplane", "MN.chair", "MN.desk",  "MN.guitar",
        "MN.lamp",     "MN.piano", "MN.plant", "MN.sofa",
    };
    return names;
}

float
ModelNetLike::defaultNonUniformity(const std::string &object)
{
    if (object == "MN.piano")
        return 0.45f;
    if (object == "MN.guitar")
        return 0.35f;
    if (object == "MN.lamp")
        return 0.30f;
    if (object == "MN.chair")
        return 0.25f;
    if (object == "MN.desk")
        return 0.20f;
    if (object == "MN.airplane")
        return 0.15f;
    if (object == "MN.sofa")
        return 0.10f;
    if (object == "MN.plant")
        return 0.05f;
    return 0.20f;
}

Frame
ModelNetLike::generate(const std::string &object, const Config &config)
{
    HGPCN_ASSERT(config.points >= 100, "frame too small");
    const float non_uniformity =
        config.nonUniformity < 0.0f ? defaultNonUniformity(object)
                                    : config.nonUniformity;
    HGPCN_ASSERT(non_uniformity < 1.0f,
                 "nonUniformity must be below 1");

    Frame frame;
    frame.name = object;

    const std::uint64_t object_seed =
        config.seed ^ std::hash<std::string>{}(object);
    Rng rng(object_seed);

    const auto cluster_points = static_cast<std::size_t>(
        static_cast<float>(config.points) * non_uniformity);
    const std::size_t body_points = config.points - cluster_points;

    PointCloud &cloud = frame.cloud;
    cloud.reserve(config.points);

    // Object body: a deterministic mix of 3-6 primitives arranged
    // around the origin, different per object name.
    const std::size_t parts = 3 + rng.below(4);
    const std::size_t per_part = body_points / parts;
    std::size_t emitted = 0;
    for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t n = p + 1 == parts
                                  ? body_points - emitted
                                  : per_part;
        emitted += n;
        const Vec3 center{rng.uniform(-0.5f, 0.5f),
                          rng.uniform(-0.5f, 0.5f),
                          rng.uniform(-0.5f, 0.5f)};
        switch (rng.below(4)) {
          case 0:
            shapes::sphere(cloud, n, center,
                           rng.uniform(0.15f, 0.45f), rng);
            break;
          case 1:
            shapes::box(cloud, n, center,
                        {rng.uniform(0.1f, 0.4f),
                         rng.uniform(0.1f, 0.4f),
                         rng.uniform(0.1f, 0.4f)},
                        rng);
            break;
          case 2:
            shapes::cylinder(cloud, n, center,
                             rng.uniform(0.05f, 0.25f),
                             rng.uniform(0.3f, 0.9f), rng);
            break;
          default:
            shapes::torus(cloud, n, center, rng.uniform(0.2f, 0.4f),
                          rng.uniform(0.05f, 0.15f), rng);
            break;
        }
    }

    // Non-uniform density: small, dense Gaussian clusters (piano
    // keys, plant leaves, ...). More clusters at tighter sigma =
    // deeper octree.
    if (cluster_points > 0) {
        const std::size_t clusters = 4 + rng.below(5);
        const std::size_t per_cluster = cluster_points / clusters;
        std::size_t cluster_emitted = 0;
        for (std::size_t c = 0; c < clusters; ++c) {
            const std::size_t n = c + 1 == clusters
                                      ? cluster_points - cluster_emitted
                                      : per_cluster;
            cluster_emitted += n;
            const Vec3 center{rng.uniform(-0.8f, 0.8f),
                              rng.uniform(-0.8f, 0.8f),
                              rng.uniform(-0.8f, 0.8f)};
            shapes::gaussianBlob(cloud, n, center,
                                 rng.uniform(0.002f, 0.01f), rng);
        }
    }

    frame.labels.assign(cloud.size(), 0);
    return frame;
}

} // namespace hgpcn
