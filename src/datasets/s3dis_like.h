/**
 * @file
 * S3DIS-like indoor-room frames.
 *
 * Indoor semantic-segmentation scenes: floor, ceiling, walls and
 * furniture with 13 semantic classes (matching the S3DIS label set
 * size), ~1e5 raw points per room like the paper reports
 * (Section III: "S3DIS contains N~1e5 points").
 */

#ifndef HGPCN_DATASETS_S3DIS_LIKE_H
#define HGPCN_DATASETS_S3DIS_LIKE_H

#include "datasets/frame.h"

namespace hgpcn
{

/** Generator for S3DIS-like indoor rooms. */
class S3disLike
{
  public:
    /** Semantic classes (S3DIS has 13). */
    static constexpr int kClasses = 13;

    /** Generation parameters. */
    struct Config
    {
        /** Raw points per room. */
        std::size_t points = 120000;
        /** Room extent in meters (x, y, height z). */
        Vec3 roomSize{8.0f, 6.0f, 3.0f};
        /** Furniture items to place. */
        std::size_t furniture = 10;
        /** RNG seed. */
        std::uint64_t seed = 17;
    };

    /** Generate one labelled room frame. */
    static Frame generate(const std::string &room,
                          const Config &config);
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_S3DIS_LIKE_H
