/**
 * @file
 * Minimal ASCII PLY import/export.
 *
 * Lets users dump synthetic frames for inspection in standard
 * point-cloud viewers (CloudCompare, MeshLab) and load small
 * external clouds into the pipeline. Supports the vertex elements
 * this library produces: x/y/z floats plus an optional integer
 * label property.
 */

#ifndef HGPCN_DATASETS_PLY_IO_H
#define HGPCN_DATASETS_PLY_IO_H

#include <string>

#include "datasets/frame.h"

namespace hgpcn
{
namespace ply
{

/**
 * Write @p frame as ASCII PLY. Labels are emitted as an int
 * "label" property when present.
 * @return true on success.
 */
bool write(const std::string &path, const Frame &frame);

/**
 * Read an ASCII PLY containing at least float x/y/z vertex
 * properties; an int/uchar "label" property is loaded when present.
 * Calls fatal() on malformed headers.
 * @return the loaded frame (name = file path).
 */
Frame read(const std::string &path);

} // namespace ply
} // namespace hgpcn

#endif // HGPCN_DATASETS_PLY_IO_H
