#include "datasets/kitti_like.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace hgpcn
{

namespace
{
constexpr float kPi = 3.14159265358979323846f;
constexpr float kDegToRad = kPi / 180.0f;
} // namespace

KittiLike::KittiLike(const Config &config) : cfg(config)
{
    HGPCN_ASSERT(cfg.beams >= 1 && cfg.azimuthSteps >= 8,
                 "degenerate scanner");
    Rng rng(cfg.seed);

    // Street canyon: buildings on both sides of a 12 m road along x.
    for (std::size_t b = 0; b < cfg.buildings; ++b) {
        const float side = (b % 2 == 0) ? 1.0f : -1.0f;
        const float x0 = -60.0f + rng.uniform(0.0f, 110.0f);
        const float depth = rng.uniform(8.0f, 20.0f);
        const float width = rng.uniform(10.0f, 25.0f);
        const float height = rng.uniform(6.0f, 20.0f);
        const float y0 = side * rng.uniform(8.0f, 14.0f);
        boxes.push_back({{x0, side > 0 ? y0 : y0 - depth, 0.0f},
                         {x0 + width, side > 0 ? y0 + depth : y0,
                          height},
                         kBuilding,
                         0.0f});
    }
    for (std::size_t v = 0; v < cfg.vehicles; ++v) {
        const float x0 = rng.uniform(-50.0f, 50.0f);
        const float y0 = rng.uniform(-6.0f, 6.0f);
        boxes.push_back({{x0, y0, 0.0f},
                         {x0 + rng.uniform(3.5f, 5.5f),
                          y0 + rng.uniform(1.6f, 2.2f),
                          rng.uniform(1.4f, 2.1f)},
                         kVehicle,
                         rng.uniform(-8.0f, 8.0f)});
    }
    for (std::size_t p = 0; p < cfg.poles; ++p) {
        const float x0 = rng.uniform(-60.0f, 60.0f);
        const float y0 =
            (p % 2 == 0 ? 1.0f : -1.0f) * rng.uniform(6.5f, 7.5f);
        boxes.push_back(
            {{x0, y0, 0.0f},
             {x0 + 0.3f, y0 + 0.3f, rng.uniform(4.0f, 8.0f)},
             kPole,
             0.0f});
    }
    for (std::size_t p = 0; p < cfg.pedestrians; ++p) {
        const float x0 = rng.uniform(-30.0f, 30.0f);
        const float y0 = rng.uniform(-7.0f, 7.0f);
        boxes.push_back({{x0, y0, 0.0f},
                         {x0 + 0.5f, y0 + 0.5f,
                          rng.uniform(1.5f, 1.9f)},
                         kPedestrian,
                         rng.uniform(-1.5f, 1.5f)});
    }
}

bool
KittiLike::rayBoxHit(const Vec3 &origin, const Vec3 &dir,
                     const SceneBox &box, float &t_hit)
{
    // Slab method.
    float t_near = 0.0f;
    float t_far = std::numeric_limits<float>::max();
    const float o[3] = {origin.x, origin.y, origin.z};
    const float d[3] = {dir.x, dir.y, dir.z};
    const float lo[3] = {box.lo.x, box.lo.y, box.lo.z};
    const float hi[3] = {box.hi.x, box.hi.y, box.hi.z};
    for (int axis = 0; axis < 3; ++axis) {
        if (std::fabs(d[axis]) < 1e-9f) {
            if (o[axis] < lo[axis] || o[axis] > hi[axis])
                return false;
            continue;
        }
        float t0 = (lo[axis] - o[axis]) / d[axis];
        float t1 = (hi[axis] - o[axis]) / d[axis];
        if (t0 > t1)
            std::swap(t0, t1);
        t_near = std::max(t_near, t0);
        t_far = std::min(t_far, t1);
        if (t_near > t_far)
            return false;
    }
    if (t_near <= 1e-4f)
        return false;
    t_hit = t_near;
    return true;
}

Frame
KittiLike::generate(std::size_t index) const
{
    Frame frame;
    frame.name = "kitti." + std::to_string(index);
    frame.timestamp = static_cast<double>(index) / cfg.frameRateHz;

    // Advance moving objects to this frame's time.
    std::vector<SceneBox> scene = boxes;
    const float t = static_cast<float>(frame.timestamp);
    for (auto &box : scene) {
        float shift = box.drift * t;
        // Wrap within the 120 m street so objects stay in view.
        shift = std::fmod(shift + 60.0f, 120.0f);
        if (shift < 0.0f)
            shift += 120.0f;
        shift -= 60.0f;
        const float width = box.hi.x - box.lo.x;
        box.lo.x = shift;
        box.hi.x = shift + width;
    }

    Rng rng(cfg.seed ^ (0x9e37u + index * 0x85ebca6bull));
    const Vec3 origin{0.0f, 0.0f, 1.73f}; // HDL-64E mount height

    // HDL-64E vertical field of view: +2 to -24.8 degrees.
    const float v_top = 2.0f * kDegToRad;
    const float v_bottom = -24.8f * kDegToRad;

    PointCloud &cloud = frame.cloud;
    cloud.reserve(cfg.beams * cfg.azimuthSteps / 2);

    for (std::size_t beam = 0; beam < cfg.beams; ++beam) {
        const float pitch =
            v_top + (v_bottom - v_top) * static_cast<float>(beam) /
                        static_cast<float>(cfg.beams - 1);
        const float cos_p = std::cos(pitch);
        const float sin_p = std::sin(pitch);
        for (std::size_t step = 0; step < cfg.azimuthSteps; ++step) {
            const float yaw = 2.0f * kPi * static_cast<float>(step) /
                              static_cast<float>(cfg.azimuthSteps);
            const Vec3 dir{cos_p * std::cos(yaw),
                           cos_p * std::sin(yaw), sin_p};

            // Nearest hit among scene boxes and the ground plane.
            float best_t = std::numeric_limits<float>::max();
            int label = -1;
            if (dir.z < -1e-6f) {
                const float t_ground = -origin.z / dir.z;
                if (t_ground < best_t) {
                    best_t = t_ground;
                    label = kGround;
                }
            }
            for (const auto &box : scene) {
                float t_hit = 0.0f;
                if (rayBoxHit(origin, dir, box, t_hit) &&
                    t_hit < best_t) {
                    best_t = t_hit;
                    label = box.label;
                }
            }
            if (label < 0 || best_t > cfg.maxRange)
                continue; // no return
            const float noisy_t =
                best_t +
                cfg.rangeNoise * static_cast<float>(rng.normal());
            cloud.add(origin + dir * noisy_t);
            frame.labels.push_back(label);
        }
    }
    return frame;
}

} // namespace hgpcn
