/**
 * @file
 * ShapeNet-like part-labelled object frames.
 *
 * ShapeNet part-segmentation samples are small: the paper notes the
 * raw data is already below 4096 points ("for Shapenet, the raw data
 * size is smaller than 4096 points", Section VII-B), so these frames
 * default to ~2500 points with per-part labels.
 */

#ifndef HGPCN_DATASETS_SHAPENET_LIKE_H
#define HGPCN_DATASETS_SHAPENET_LIKE_H

#include "datasets/frame.h"

namespace hgpcn
{

/** Generator for ShapeNet-like part-labelled objects. */
class ShapeNetLike
{
  public:
    /** Generation parameters. */
    struct Config
    {
        /** Raw points per frame (kept below 4096 like the paper). */
        std::size_t points = 2500;
        /** Number of labelled parts. */
        std::size_t parts = 4;
        /** RNG seed. */
        std::uint64_t seed = 13;
    };

    /** Generate one part-labelled object frame. */
    static Frame generate(const std::string &object,
                          const Config &config);
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_SHAPENET_LIKE_H
