#include "datasets/dataset_suite.h"

#include "datasets/kitti_like.h"
#include "datasets/modelnet_like.h"
#include "datasets/s3dis_like.h"
#include "datasets/shapenet_like.h"

namespace hgpcn
{

namespace
{

std::vector<BenchmarkTask>
makeSuite(std::size_t mn_points, std::size_t s3dis_points,
          std::size_t kitti_azimuth)
{
    std::vector<BenchmarkTask> suite;

    {
        BenchmarkTask task;
        task.application = "Object Classification";
        task.dataset = "ModelNet40";
        task.inputSize = 1024;
        task.modelName = "Pointnet++(c)";
        task.spec = PointNet2Spec::classification();
        task.rawFrame = [mn_points](std::uint64_t variant) {
            ModelNetLike::Config cfg;
            cfg.points = mn_points;
            cfg.seed = 11 + variant;
            const auto &names = ModelNetLike::objectNames();
            return ModelNetLike::generate(
                names[variant % names.size()], cfg);
        };
        suite.push_back(std::move(task));
    }
    {
        BenchmarkTask task;
        task.application = "Part Segmentation";
        task.dataset = "ShapeNet";
        task.inputSize = 2048;
        task.modelName = "Pointnet++(ps)";
        task.spec = PointNet2Spec::partSegmentation();
        task.rawFrame = [](std::uint64_t variant) {
            ShapeNetLike::Config cfg;
            cfg.seed = 13 + variant;
            return ShapeNetLike::generate(
                "SN.object" + std::to_string(variant), cfg);
        };
        suite.push_back(std::move(task));
    }
    {
        BenchmarkTask task;
        task.application = "Indoor Segmentation";
        task.dataset = "S3DIS";
        task.inputSize = 4096;
        task.modelName = "Pointnet++(s)";
        task.spec = PointNet2Spec::semanticSegmentation();
        task.rawFrame = [s3dis_points](std::uint64_t variant) {
            S3disLike::Config cfg;
            cfg.points = s3dis_points;
            cfg.seed = 17 + variant;
            return S3disLike::generate(
                "S3DIS.room" + std::to_string(variant), cfg);
        };
        suite.push_back(std::move(task));
    }
    {
        BenchmarkTask task;
        task.application = "Outdoor Segmentation";
        task.dataset = "KITTI";
        task.inputSize = 16384;
        task.modelName = "Pointnet++(s)";
        task.spec = PointNet2Spec::outdoorSegmentation();
        task.rawFrame = [kitti_azimuth](std::uint64_t variant) {
            KittiLike::Config cfg;
            cfg.azimuthSteps = kitti_azimuth;
            KittiLike lidar(cfg);
            return lidar.generate(variant);
        };
        suite.push_back(std::move(task));
    }
    return suite;
}

} // namespace

std::vector<BenchmarkTask>
DatasetSuite::tableOne()
{
    return makeSuite(/*mn_points=*/100000, /*s3dis_points=*/120000,
                     /*kitti_azimuth=*/2000);
}

std::vector<BenchmarkTask>
DatasetSuite::tableOneSmall()
{
    return makeSuite(/*mn_points=*/20000, /*s3dis_points=*/24000,
                     /*kitti_azimuth=*/500);
}

} // namespace hgpcn
