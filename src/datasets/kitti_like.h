/**
 * @file
 * KITTI-like spinning-LiDAR frame simulator.
 *
 * The paper's outdoor benchmark and its real-time yardstick
 * (Section VII-E): KITTI frames carry generation timestamps, and
 * HgPCN must process frames at least as fast as the sensor emits
 * them (<16 FPS for KITTI). This simulator casts rays from a
 * HDL-64-style spinning scanner into a synthetic street scene
 * (ground, buildings, cars, poles, pedestrians), producing frames
 * whose point count varies with the scene — the raw-size
 * irregularity the paper highlights — plus 10 Hz timestamps.
 */

#ifndef HGPCN_DATASETS_KITTI_LIKE_H
#define HGPCN_DATASETS_KITTI_LIKE_H

#include "datasets/frame.h"

namespace hgpcn
{

/** Spinning-LiDAR street-scene simulator. */
class KittiLike
{
  public:
    /** Semantic classes. */
    enum Labels : int
    {
        kGround = 0,
        kBuilding = 1,
        kVehicle = 2,
        kPole = 3,
        kPedestrian = 4,
    };

    /** Generation parameters. */
    struct Config
    {
        /** Laser beams (HDL-64E has 64). */
        std::size_t beams = 64;
        /** Azimuth steps per revolution (0.18 deg -> 2000). */
        std::size_t azimuthSteps = 2000;
        /** Max usable range, meters (no return beyond it). */
        float maxRange = 80.0f;
        /** Range noise sigma, meters. */
        float rangeNoise = 0.02f;
        /** Sensor frame rate, Hz (KITTI Velodyne spins at 10). */
        double frameRateHz = 10.0;
        /** Scene content counts. */
        std::size_t buildings = 8;
        std::size_t vehicles = 12;
        std::size_t poles = 16;
        std::size_t pedestrians = 6;
        /** RNG seed. */
        std::uint64_t seed = 23;
    };

    /** Create a generator with a fixed street scene. */
    explicit KittiLike(const Config &config);

    /**
     * Simulate frame number @p index (vehicles advance between
     * frames, so point counts vary frame to frame). The frame
     * timestamp is index / frameRateHz.
     */
    Frame generate(std::size_t index) const;

    /** @return configured parameters. */
    const Config &config() const { return cfg; }

    /**
     * @return sensor frame generation rate in frames per second;
     * the real-time requirement is to process at least this fast.
     */
    double generationRateFps() const { return cfg.frameRateHz; }

  private:
    /** One scene object as an axis-aligned box with a label. */
    struct SceneBox
    {
        Vec3 lo;
        Vec3 hi;
        int label;
        float drift; //!< x-velocity (m/s) for moving objects
    };

    Config cfg;
    std::vector<SceneBox> boxes;

    static bool rayBoxHit(const Vec3 &origin, const Vec3 &dir,
                          const SceneBox &box, float &t_hit);
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_KITTI_LIKE_H
