/**
 * @file
 * Temporally-coherent drive-trace generator.
 *
 * The workload the cross-frame preprocessing cache
 * (core/temporal_preprocess.h) is built for: consecutive LiDAR
 * frames of a drive share most of their points. This generator
 * makes that sharing *exact and analyzable* — every frame is P
 * point slots, each slot's position a pure function of
 * (slot, generation), and each frame replaces a fixed number of
 * dynamic slots ("churn"). Retained slots keep bit-identical
 * positions and never reorder, so the fraction of points two
 * frames share is closed-form:
 *
 *   overlapFraction(delta) = (P - min(D, delta * churnPerFrame)) / P
 *
 * where D = P - 8 dynamic slots. Eight anchor slots pin the world
 * box corners with bitwise-stable positions, so every frame's AABB
 * — and hence the octree's cubified root bounds — is identical,
 * keeping the incremental octree builder's alignment guard
 * satisfied along the whole trace.
 *
 * Replacement positions follow a drifting ego (egoSpeedMps along a
 * circle inside the box), so churn is spatially localized the way
 * a moving scanner's is. generate(index) is O(P) for any index —
 * slot generations are closed-form, not simulated — and frames are
 * bit-reproducible given (seed, index).
 */

#ifndef HGPCN_DATASETS_COHERENT_DRIVE_H
#define HGPCN_DATASETS_COHERENT_DRIVE_H

#include <cstdint>

#include "datasets/frame.h"
#include "geometry/aabb.h"

namespace hgpcn
{

/** Seeded drive trace with exact, closed-form frame overlap. */
class CoherentDrive
{
  public:
    /** Anchor slots pinning the world box (and frame bounds). */
    static constexpr std::size_t kAnchors = 8;

    /** Generation parameters. */
    struct Config
    {
        /** Points per frame, P (>= kAnchors + 1). */
        std::size_t points = 4096;
        /** Fraction of the D = P - 8 dynamic slots replaced each
         * frame, in [0, 1]. 0 = static scene (100% overlap);
         * any positive value replaces at least one slot. */
        double churnFraction = 0.05;
        /** World box; frames span exactly this AABB. */
        Aabb world{{0.0f, 0.0f, 0.0f}, {100.0f, 100.0f, 20.0f}};
        /** Ego speed (m/s) along a circular path inside the box;
         * replacement points appear near the ego. */
        float egoSpeedMps = 10.0f;
        /** Radius around the ego within which replacements land. */
        float spawnRadius = 25.0f;
        /** Frame timestamps are index / frameRateHz. */
        double frameRateHz = 10.0;
        /** RNG seed (per-slot streams derive from it). */
        std::uint64_t seed = 7;
    };

    explicit CoherentDrive(const Config &config);

    /** @return frame @p index (any index, O(P), reproducible). */
    Frame generate(std::size_t index) const;

    /** @return number of dynamic slots D. */
    std::size_t dynamicSlots() const;

    /** @return dynamic slots replaced per frame step. */
    std::size_t churnPerFrame() const;

    /**
     * @return exact fraction of point slots two frames @p delta
     * steps apart share (bit-identical positions at equal slot
     * index): (P - min(D, delta * churnPerFrame())) / P.
     */
    double overlapFraction(std::size_t delta) const;

    /** @return configured parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg;
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_COHERENT_DRIVE_H
