#include "datasets/s3dis_like.h"

#include <functional>

#include "common/logging.h"
#include "datasets/shape_sampler.h"

namespace hgpcn
{

namespace
{

// Label ids loosely following the S3DIS class list.
enum Labels : int
{
    kCeiling = 0,
    kFloor = 1,
    kWall = 2,
    kBeam = 3,
    kColumn = 4,
    kWindow = 5,
    kDoor = 6,
    kTable = 7,
    kChair = 8,
    kSofa = 9,
    kBookcase = 10,
    kBoard = 11,
    kClutter = 12,
};

} // namespace

Frame
S3disLike::generate(const std::string &room, const Config &config)
{
    HGPCN_ASSERT(config.points >= 1000, "room too small");

    Frame frame;
    frame.name = room;
    Rng rng(config.seed ^ std::hash<std::string>{}(room));

    PointCloud &cloud = frame.cloud;
    cloud.reserve(config.points);
    std::vector<int> &labels = frame.labels;

    const Vec3 &size = config.roomSize;
    const float hx = size.x * 0.5f;
    const float hy = size.y * 0.5f;

    // Structural surfaces take ~55% of the points; their share
    // mirrors scanned rooms (walls densest).
    const std::size_t total = config.points;
    const std::size_t floor_n = total * 15 / 100;
    const std::size_t ceiling_n = total * 10 / 100;
    const std::size_t wall_n = total * 30 / 100;

    shapes::plane(cloud, floor_n, {0.0f, 0.0f, 0.0f}, hx, hy, rng,
                  &labels, kFloor);
    shapes::plane(cloud, ceiling_n, {0.0f, 0.0f, size.z}, hx, hy, rng,
                  &labels, kCeiling);

    // Four walls as thin boxes.
    const std::size_t per_wall = wall_n / 4;
    shapes::box(cloud, per_wall, {0.0f, -hy, size.z * 0.5f},
                {hx, 0.02f, size.z * 0.5f}, rng, &labels, kWall);
    shapes::box(cloud, per_wall, {0.0f, hy, size.z * 0.5f},
                {hx, 0.02f, size.z * 0.5f}, rng, &labels, kWall);
    shapes::box(cloud, per_wall, {-hx, 0.0f, size.z * 0.5f},
                {0.02f, hy, size.z * 0.5f}, rng, &labels, kWall);
    shapes::box(cloud, wall_n - 3 * per_wall, {hx, 0.0f, size.z * 0.5f},
                {0.02f, hy, size.z * 0.5f}, rng, &labels, kWall);

    // Furniture and clutter share the remainder.
    const std::size_t remaining = total - cloud.size();
    const std::size_t items = config.furniture + 1; // + clutter
    const std::size_t per_item = remaining / items;
    std::size_t emitted = 0;
    for (std::size_t f = 0; f < config.furniture; ++f) {
        const std::size_t n = per_item;
        emitted += n;
        const Vec3 base{rng.uniform(-hx + 0.6f, hx - 0.6f),
                        rng.uniform(-hy + 0.6f, hy - 0.6f), 0.0f};
        switch (rng.below(5)) {
          case 0: // table: top + legs
            shapes::box(cloud, n, {base.x, base.y, 0.75f},
                        {0.6f, 0.4f, 0.02f}, rng, &labels, kTable);
            break;
          case 1: // chair
            shapes::box(cloud, n, {base.x, base.y, 0.45f},
                        {0.25f, 0.25f, 0.45f}, rng, &labels, kChair);
            break;
          case 2: // sofa
            shapes::box(cloud, n, {base.x, base.y, 0.4f},
                        {0.9f, 0.4f, 0.4f}, rng, &labels, kSofa);
            break;
          case 3: // bookcase
            shapes::box(cloud, n, {base.x, base.y, 1.0f},
                        {0.5f, 0.15f, 1.0f}, rng, &labels, kBookcase);
            break;
          default: // column
            shapes::cylinder(cloud, n, base, 0.15f, size.z, rng,
                             &labels, kColumn);
            break;
        }
    }
    shapes::gaussianBlob(cloud, remaining - emitted,
                         {rng.uniform(-hx, hx), rng.uniform(-hy, hy),
                          0.5f},
                         0.3f, rng, &labels, kClutter);

    return frame;
}

} // namespace hgpcn
