#include "datasets/traffic_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace hgpcn
{
namespace
{

/** SplitMix64 finalizer: decorrelates (seed, sensor, salt) keys so
 * every sensor draws from an independent deterministic stream,
 * regardless of generation order. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

Rng
keyedRng(std::uint64_t seed, std::uint64_t sensor, std::uint64_t salt)
{
    return Rng(mix(seed ^ mix(sensor * 0x632be59bd9b4e019ull ^
                              salt * 0x2545f4914f6cdd1dull)));
}

/** Salts naming the independent per-sensor decision streams. */
enum : std::uint64_t
{
    kSaltChurn = 1,
    kSaltPriority = 2,
    kSaltBurstPhase = 3,
    kSaltArrivals = 4,
    kSaltCloud = 5,
};

} // namespace

TrafficGen::TrafficGen(const Config &config) : cfg(config)
{
    HGPCN_ASSERT(cfg.sensors >= 1, "need at least one sensor");
    HGPCN_ASSERT(cfg.durationSec > 0.0, "duration must be positive");
    HGPCN_ASSERT(cfg.baseRateHz > 0.0, "base rate must be positive");
    HGPCN_ASSERT(cfg.rateJitter >= 0.0 && cfg.rateJitter < 1.0,
                 "rate jitter must be in [0, 1)");
    HGPCN_ASSERT(cfg.burstFactor >= 1.0,
                 "burst factor must be >= 1 (1 = no bursts)");
    HGPCN_ASSERT(cfg.burstDuty >= 0.0 && cfg.burstDuty < 1.0,
                 "burst duty must be in [0, 1)");
    HGPCN_ASSERT(cfg.burstPeriodSec > 0.0,
                 "burst period must be positive");
    HGPCN_ASSERT(cfg.diurnalAmplitude >= 0.0 &&
                     cfg.diurnalAmplitude < 1.0,
                 "diurnal amplitude must be in [0, 1)");
    HGPCN_ASSERT(cfg.diurnalPeriodSec > 0.0,
                 "diurnal period must be positive");
    HGPCN_ASSERT(cfg.hotPlugFraction >= 0.0 &&
                     cfg.hotPlugFraction <= 1.0,
                 "hot-plug fraction must be in [0, 1]");
    HGPCN_ASSERT(cfg.dropFraction >= 0.0 && cfg.dropFraction <= 1.0,
                 "drop fraction must be in [0, 1]");
    HGPCN_ASSERT(cfg.priorityTiers >= 1,
                 "need at least one priority tier");
    HGPCN_ASSERT(cfg.cloudPoints >= 1,
                 "frames need at least one point");
}

double
TrafficGen::burstPhaseOf(std::size_t sensor) const
{
    Rng rng = keyedRng(cfg.seed, sensor, kSaltBurstPhase);
    return rng.uniform() * cfg.burstPeriodSec;
}

double
TrafficGen::joinSecOf(std::size_t sensor) const
{
    Rng rng = keyedRng(cfg.seed, sensor, kSaltChurn);
    const bool plugs = rng.uniform() < cfg.hotPlugFraction;
    const double at =
        cfg.durationSec * (0.10 + 0.40 * rng.uniform());
    return plugs ? at : 0.0;
}

double
TrafficGen::leaveSecOf(std::size_t sensor) const
{
    Rng rng = keyedRng(cfg.seed, sensor, kSaltChurn);
    (void)rng.uniform(); // hot-plug decision draw
    (void)rng.uniform(); // hot-plug time draw
    const bool drops = rng.uniform() < cfg.dropFraction;
    const double at =
        cfg.durationSec * (0.50 + 0.40 * rng.uniform());
    return drops ? at : cfg.durationSec;
}

int
TrafficGen::priorityOf(std::size_t sensor) const
{
    Rng rng = keyedRng(cfg.seed, sensor, kSaltPriority);
    return static_cast<int>(rng.below(cfg.priorityTiers));
}

double
TrafficGen::rateAt(std::size_t sensor, double t) const
{
    HGPCN_ASSERT(sensor < cfg.sensors, "sensor ", sensor,
                 " out of range (", cfg.sensors, ")");
    if (t < joinSecOf(sensor) || t >= leaveSecOf(sensor))
        return 0.0;
    const double diurnal =
        1.0 + cfg.diurnalAmplitude *
                  std::sin(2.0 * 3.14159265358979323846 * t /
                           cfg.diurnalPeriodSec);
    const double x = std::fmod(t + burstPhaseOf(sensor),
                               cfg.burstPeriodSec) /
                     cfg.burstPeriodSec;
    const double burst = x < cfg.burstDuty ? cfg.burstFactor : 1.0;
    return cfg.baseRateHz * diurnal * burst;
}

double
TrafficGen::minRateHz() const
{
    return cfg.baseRateHz * (1.0 - cfg.diurnalAmplitude);
}

double
TrafficGen::maxRateHz() const
{
    return cfg.baseRateHz * (1.0 + cfg.diurnalAmplitude) *
           cfg.burstFactor;
}

TrafficTrace
TrafficGen::generate() const
{
    TrafficTrace trace;
    trace.priority.reserve(cfg.sensors);
    trace.joinSec.reserve(cfg.sensors);
    trace.leaveSec.reserve(cfg.sensors);

    std::vector<std::vector<Frame>> per_sensor(cfg.sensors);
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        trace.priority.push_back(priorityOf(s));
        trace.joinSec.push_back(joinSecOf(s));
        trace.leaveSec.push_back(leaveSecOf(s));

        const double join = trace.joinSec.back();
        const double leave = trace.leaveSec.back();
        Rng arrivals = keyedRng(cfg.seed, s, kSaltArrivals);
        // Start within the first nominal gap after joining so
        // same-rate sensors arrive phase-offset, not in lockstep.
        double t = join;
        {
            const double r0 = rateAt(s, join);
            if (r0 > 0.0)
                t += arrivals.uniform() / r0;
        }
        std::size_t index = 0;
        while (t < leave && t < cfg.durationSec) {
            Frame frame;
            frame.timestamp = t;
            frame.name = "t" + std::to_string(s) + "." +
                         std::to_string(index);
            Rng cloud_rng = keyedRng(
                cfg.seed, s * 0x100000001b3ull + index, kSaltCloud);
            frame.cloud.reserve(cfg.cloudPoints);
            // 3:1 mix of box-uniform and clustered points: enough
            // spatial structure for the octree/sampling path while
            // staying cheap at city-scale sensor counts.
            const float cx = cloud_rng.uniform(2.0f, 8.0f);
            const float cy = cloud_rng.uniform(2.0f, 8.0f);
            const float cz = cloud_rng.uniform(0.5f, 2.0f);
            for (std::size_t p = 0; p < cfg.cloudPoints; ++p) {
                if (p % 4 == 0) {
                    frame.cloud.add(
                        {cx + cloud_rng.uniform(-0.5f, 0.5f),
                         cy + cloud_rng.uniform(-0.5f, 0.5f),
                         cz + cloud_rng.uniform(-0.5f, 0.5f)});
                } else {
                    frame.cloud.add(
                        {cloud_rng.uniform(0.0f, 10.0f),
                         cloud_rng.uniform(0.0f, 10.0f),
                         cloud_rng.uniform(0.0f, 3.0f)});
                }
            }
            per_sensor[s].push_back(std::move(frame));
            ++index;

            const double rate = rateAt(s, t);
            HGPCN_ASSERT(rate > 0.0, "active sensor with zero rate");
            double gap = 1.0 / rate;
            if (cfg.rateJitter > 0.0) {
                gap *= 1.0 + cfg.rateJitter *
                                 (2.0 * arrivals.uniform() - 1.0);
            }
            t += gap;
        }
    }

    // Distinct-stamp pass: cross-sensor stamp collisions are
    // measure-zero but fatal in the merge, so nudge any tie forward
    // by 0.1 us in global stamp order. The walk visits frames in
    // (stamp, sensor) order and only ever moves stamps forward, so
    // per-sensor capture order is preserved and the interleave
    // becomes strictly increasing — deterministically.
    std::vector<std::pair<double, std::pair<std::size_t,
                                            std::size_t>>> order;
    for (std::size_t s = 0; s < per_sensor.size(); ++s) {
        for (std::size_t f = 0; f < per_sensor[s].size(); ++f)
            order.push_back({per_sensor[s][f].timestamp, {s, f}});
    }
    std::sort(order.begin(), order.end());
    double prev = -1.0;
    for (auto &entry : order) {
        Frame &frame =
            per_sensor[entry.second.first][entry.second.second];
        if (frame.timestamp <= prev)
            frame.timestamp = prev + 1e-7;
        prev = frame.timestamp;
    }

    trace.stream = mergeSensorStreams(std::move(per_sensor));
    return trace;
}

} // namespace hgpcn
