/**
 * @file
 * The paper's benchmark suite (Table I) as code.
 *
 * Four applications, each pairing a dataset generator with a PCN
 * input size and PointNet++ variant:
 *
 *   Object Classification  ModelNet40  1024   Pointnet++(c)
 *   Part Segmentation      ShapeNet    2048   Pointnet++(ps)
 *   Indoor Segmentation    S3DIS       4096   Pointnet++(s)
 *   Outdoor Segmentation   KITTI       16384  Pointnet++(s)
 */

#ifndef HGPCN_DATASETS_DATASET_SUITE_H
#define HGPCN_DATASETS_DATASET_SUITE_H

#include <functional>

#include "datasets/frame.h"
#include "nn/pointnet2.h"

namespace hgpcn
{

/** One row of Table I. */
struct BenchmarkTask
{
    std::string application; //!< e.g. "Object Classification"
    std::string dataset;     //!< e.g. "ModelNet40"
    std::size_t inputSize;   //!< PCN input points (post-sampling K)
    std::string modelName;   //!< e.g. "Pointnet++(c)"
    PointNet2Spec spec;      //!< network architecture
    /** Generate a representative raw frame (variant for variety). */
    std::function<Frame(std::uint64_t variant)> rawFrame;
};

/** Factory for the Table I suite. */
class DatasetSuite
{
  public:
    /** @return the four benchmark tasks of Table I. */
    static std::vector<BenchmarkTask> tableOne();

    /** @return a scaled-down suite for fast tests (same structure,
     * smaller raw frames and networks' input sizes preserved). */
    static std::vector<BenchmarkTask> tableOneSmall();
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_DATASET_SUITE_H
