#include "datasets/coherent_drive.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace hgpcn
{
namespace
{

/** SplitMix64-style mix of a (slot, generation) pair into one
 * per-stream seed word. */
std::uint64_t
mixSlotGen(std::uint64_t slot, std::uint64_t gen)
{
    std::uint64_t z = slot * 0x9e3779b97f4a7c15ull + gen + 1;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

CoherentDrive::CoherentDrive(const Config &config) : cfg(config)
{
    HGPCN_ASSERT(cfg.points > kAnchors,
                 "CoherentDrive needs more than ", kAnchors,
                 " points, got ", cfg.points);
    HGPCN_ASSERT(cfg.churnFraction >= 0.0 && cfg.churnFraction <= 1.0,
                 "churnFraction must be in [0, 1], got ",
                 cfg.churnFraction);
    HGPCN_ASSERT(cfg.frameRateHz > 0.0, "frameRateHz must be > 0");
    HGPCN_ASSERT(cfg.world.lo.x < cfg.world.hi.x &&
                     cfg.world.lo.y < cfg.world.hi.y &&
                     cfg.world.lo.z < cfg.world.hi.z,
                 "world box must have positive extent");
}

std::size_t
CoherentDrive::dynamicSlots() const
{
    return cfg.points - kAnchors;
}

std::size_t
CoherentDrive::churnPerFrame() const
{
    if (cfg.churnFraction <= 0.0)
        return 0;
    const double d = static_cast<double>(dynamicSlots());
    const auto churn = static_cast<std::size_t>(
        std::llround(d * cfg.churnFraction));
    return std::max<std::size_t>(churn, 1);
}

double
CoherentDrive::overlapFraction(std::size_t delta) const
{
    const std::size_t replaced =
        std::min(dynamicSlots(), delta * churnPerFrame());
    return static_cast<double>(cfg.points - replaced) /
           static_cast<double>(cfg.points);
}

Frame
CoherentDrive::generate(std::size_t index) const
{
    const std::size_t d_slots = dynamicSlots();
    const std::size_t churn = churnPerFrame();
    const Vec3 lo = cfg.world.lo;
    const Vec3 hi = cfg.world.hi;
    const Vec3 center{(lo.x + hi.x) * 0.5f, (lo.y + hi.y) * 0.5f,
                      (lo.z + hi.z) * 0.5f};
    // Ego: a circle of half the smaller ground half-extent, so the
    // whole path (and most spawn disks) stays inside the box.
    const float ego_radius =
        0.5f * std::min(hi.x - lo.x, hi.y - lo.y) * 0.5f;

    Frame frame;
    frame.name = "drive." + std::to_string(index);
    frame.timestamp = static_cast<double>(index) / cfg.frameRateHz;
    frame.cloud.reserve(cfg.points);
    frame.labels.assign(cfg.points, 0);

    // Anchor slots: the 8 world-box corners, bitwise identical in
    // every frame — they pin the AABB (hence the octree root).
    for (std::size_t c = 0; c < kAnchors; ++c) {
        frame.cloud.add(Vec3{(c & 1) != 0 ? hi.x : lo.x,
                             (c & 2) != 0 ? hi.y : lo.y,
                             (c & 4) != 0 ? hi.z : lo.z});
    }

    // Dynamic slots. Replacement k (k = 0, 1, ...) hits slot
    // k mod D at frame floor(k / churn) + 1, so by frame T slot d
    // has seen every k < T*churn with k === d (mod D):
    //   gen(d, T) = T*churn > d ? (T*churn - d - 1) / D + 1 : 0
    // The position is a pure function of (slot, gen) — retained
    // slots are bit-identical across frames by construction.
    const std::size_t replaced_total = index * churn;
    for (std::size_t d = 0; d < d_slots; ++d) {
        const std::size_t gen =
            replaced_total > d
                ? (replaced_total - d - 1) / d_slots + 1
                : 0;
        Rng rng(cfg.seed ^ mixSlotGen(d, gen));
        Vec3 p;
        if (gen == 0) {
            // Initial scene: uniform over the world box.
            p = Vec3{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y),
                     rng.uniform(lo.z, hi.z)};
        } else {
            // Replacement: near the ego at the frame this
            // generation appeared (closed-form from k).
            const std::size_t k = (gen - 1) * d_slots + d;
            const std::size_t born = k / churn + 1;
            const double t =
                static_cast<double>(born) / cfg.frameRateHz;
            const double angle = cfg.egoSpeedMps * t /
                                 static_cast<double>(ego_radius);
            const Vec3 ego{
                center.x + ego_radius *
                               static_cast<float>(std::cos(angle)),
                center.y + ego_radius *
                               static_cast<float>(std::sin(angle)),
                center.z};
            p = Vec3{ego.x + rng.uniform(-cfg.spawnRadius,
                                         cfg.spawnRadius),
                     ego.y + rng.uniform(-cfg.spawnRadius,
                                         cfg.spawnRadius),
                     rng.uniform(lo.z, hi.z)};
            p.x = std::clamp(p.x, lo.x, hi.x);
            p.y = std::clamp(p.y, lo.y, hi.y);
        }
        frame.cloud.add(p);
        frame.labels[kAnchors + d] = gen == 0 ? 0 : 1;
    }
    return frame;
}

} // namespace hgpcn
