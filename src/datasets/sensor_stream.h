/**
 * @file
 * Multi-sensor frame streams for the serving layer.
 *
 * A deployment rarely serves one LiDAR: a vehicle carries several
 * scanners, a roadside unit aggregates many. A SensorStream is the
 * wire format of that workload — one sequence of frames interleaved
 * by timestamp, each tagged with the sensor that produced it — which
 * serving/ShardedRunner demultiplexes across shards. Per-sensor
 * order inside the interleaved sequence is the per-sensor capture
 * order, so a dispatcher that keeps a sensor on one shard preserves
 * it end to end.
 */

#ifndef HGPCN_DATASETS_SENSOR_STREAM_H
#define HGPCN_DATASETS_SENSOR_STREAM_H

#include <cstdint>
#include <vector>

#include "datasets/frame.h"
#include "datasets/kitti_like.h"

namespace hgpcn
{

/**
 * A tagged multi-sensor frame sequence, interleaved by timestamp.
 *
 * `frames` and `sensors` are parallel: sensors[i] is the 0-based id
 * of the sensor that captured frames[i]. Timestamps are strictly
 * increasing across the whole interleaved sequence (the merge
 * helper enforces this by rejecting non-advancing frames — give
 * same-rate sensors distinct phase offsets), hence also within
 * every sensor.
 */
struct SensorStream
{
    std::vector<Frame> frames;
    std::vector<std::size_t> sensors; //!< parallel to frames
    std::size_t sensorCount = 0;

    /** Frames mergeSensorStreams refused (non-advancing stamps).
     * Malformed capture data is per-frame recoverable — warned and
     * counted here, never fatal. */
    std::size_t rejectedFrames = 0;

    std::size_t size() const { return frames.size(); }

    /** Copy of one sensor's frames, in capture order. */
    std::vector<Frame> framesOfSensor(std::size_t sensor) const;
};

/**
 * Interleave per-sensor sequences into one tagged stream.
 *
 * Well-formed inner sequences have strictly increasing timestamps,
 * distinct also *across* sensors (give same-rate sensors phase
 * offsets, as makeLidarSensorStream does), so the merged order is
 * total and per-shard sub-streams stay strictly monotonic under any
 * placement. Frames that violate this — duplicate stamps within a
 * sensor, shared stamps across sensors, out-of-order captures — are
 * *rejected per frame*, not fatal: each rejection warns through the
 * log sink and counts in SensorStream::rejectedFrames, and the
 * merge carries the well-formed rest. Malformed frames are sensor
 * data, not programmer error; a serving layer survives them.
 *
 * @param per_sensor One frame sequence per sensor; moved in.
 */
SensorStream
mergeSensorStreams(std::vector<std::vector<Frame>> per_sensor);

/** Sensor rate of one sensor, from its offered timestamps. */
double sensorGenerationFps(const SensorStream &stream,
                           std::size_t sensor);

/** Parameters of the synthetic multi-LiDAR rig. */
struct MultiSensorConfig
{
    std::size_t sensors = 2;
    std::size_t framesPerSensor = 4;
    /** Per-sensor scanner parameters; seed is varied per sensor so
     * rigs see different scenes. */
    KittiLike::Config lidar;
};

/**
 * Simulate a rig of @p cfg.sensors KittiLike scanners, phase-offset
 * by sensorId / (sensors * frameRate) so interleaved timestamps are
 * strictly increasing, and merge them into one tagged stream.
 * Frame names are prefixed "s<sensor>." for reports.
 */
SensorStream makeLidarSensorStream(const MultiSensorConfig &cfg);

} // namespace hgpcn

#endif // HGPCN_DATASETS_SENSOR_STREAM_H
