/**
 * @file
 * Primitive-surface point samplers.
 *
 * Building blocks for the synthetic datasets: uniform point sampling
 * on spheres, boxes, cylinders, planes and tori, plus Gaussian
 * clusters for non-uniform density injection.
 */

#ifndef HGPCN_DATASETS_SHAPE_SAMPLER_H
#define HGPCN_DATASETS_SHAPE_SAMPLER_H

#include <cstddef>

#include "common/rng.h"
#include "geometry/point_cloud.h"

namespace hgpcn
{

/** Uniform samplers over primitive surfaces. */
namespace shapes
{

/** Append @p n points on a sphere surface. */
void sphere(PointCloud &out, std::size_t n, const Vec3 &center,
            float radius, Rng &rng, std::vector<int> *labels = nullptr,
            int label = 0);

/** Append @p n points on an axis-aligned box surface. */
void box(PointCloud &out, std::size_t n, const Vec3 &center,
         const Vec3 &half_extent, Rng &rng,
         std::vector<int> *labels = nullptr, int label = 0);

/** Append @p n points on a horizontal rectangle (z = height). */
void plane(PointCloud &out, std::size_t n, const Vec3 &center,
           float half_x, float half_y, Rng &rng,
           std::vector<int> *labels = nullptr, int label = 0);

/** Append @p n points on a vertical (z-axis) cylinder surface. */
void cylinder(PointCloud &out, std::size_t n, const Vec3 &base,
              float radius, float height, Rng &rng,
              std::vector<int> *labels = nullptr, int label = 0);

/** Append @p n points on a torus (axis z). */
void torus(PointCloud &out, std::size_t n, const Vec3 &center,
           float major_r, float minor_r, Rng &rng,
           std::vector<int> *labels = nullptr, int label = 0);

/** Append @p n points from an isotropic Gaussian blob. */
void gaussianBlob(PointCloud &out, std::size_t n, const Vec3 &center,
                  float sigma, Rng &rng,
                  std::vector<int> *labels = nullptr, int label = 0);

} // namespace shapes

} // namespace hgpcn

#endif // HGPCN_DATASETS_SHAPE_SAMPLER_H
