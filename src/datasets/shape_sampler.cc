#include "datasets/shape_sampler.h"

#include <cmath>

namespace hgpcn
{
namespace shapes
{

namespace
{

constexpr float kTwoPi = 6.28318530717958647692f;

void
push(PointCloud &out, const Vec3 &p, std::vector<int> *labels,
     int label)
{
    out.add(p);
    if (labels)
        labels->push_back(label);
}

} // namespace

void
sphere(PointCloud &out, std::size_t n, const Vec3 &center, float radius,
       Rng &rng, std::vector<int> *labels, int label)
{
    for (std::size_t i = 0; i < n; ++i) {
        // Uniform direction via normalized Gaussian triple.
        Vec3 d{static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal()),
               static_cast<float>(rng.normal())};
        const float len = d.norm();
        if (len < 1e-6f) {
            d = {1.0f, 0.0f, 0.0f};
        } else {
            d = d / len;
        }
        push(out, center + d * radius, labels, label);
    }
}

void
box(PointCloud &out, std::size_t n, const Vec3 &center,
    const Vec3 &half_extent, Rng &rng, std::vector<int> *labels,
    int label)
{
    // Choose a face proportional to its area, then a uniform point
    // on it.
    const float ax = half_extent.y * half_extent.z;
    const float ay = half_extent.x * half_extent.z;
    const float az = half_extent.x * half_extent.y;
    const float total = 2.0f * (ax + ay + az);
    for (std::size_t i = 0; i < n; ++i) {
        float pick = rng.uniform(0.0f, total);
        const float sign = rng.uniform() < 0.5 ? -1.0f : 1.0f;
        Vec3 p;
        if (pick < 2.0f * ax) {
            p = {sign * half_extent.x,
                 rng.uniform(-half_extent.y, half_extent.y),
                 rng.uniform(-half_extent.z, half_extent.z)};
        } else if (pick < 2.0f * (ax + ay)) {
            p = {rng.uniform(-half_extent.x, half_extent.x),
                 sign * half_extent.y,
                 rng.uniform(-half_extent.z, half_extent.z)};
        } else {
            p = {rng.uniform(-half_extent.x, half_extent.x),
                 rng.uniform(-half_extent.y, half_extent.y),
                 sign * half_extent.z};
        }
        push(out, center + p, labels, label);
    }
}

void
plane(PointCloud &out, std::size_t n, const Vec3 &center, float half_x,
      float half_y, Rng &rng, std::vector<int> *labels, int label)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 p{center.x + rng.uniform(-half_x, half_x),
                     center.y + rng.uniform(-half_y, half_y), center.z};
        push(out, p, labels, label);
    }
}

void
cylinder(PointCloud &out, std::size_t n, const Vec3 &base, float radius,
         float height, Rng &rng, std::vector<int> *labels, int label)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float theta = rng.uniform(0.0f, kTwoPi);
        const float z = rng.uniform(0.0f, height);
        const Vec3 p{base.x + radius * std::cos(theta),
                     base.y + radius * std::sin(theta), base.z + z};
        push(out, p, labels, label);
    }
}

void
torus(PointCloud &out, std::size_t n, const Vec3 &center, float major_r,
      float minor_r, Rng &rng, std::vector<int> *labels, int label)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float u = rng.uniform(0.0f, kTwoPi);
        const float v = rng.uniform(0.0f, kTwoPi);
        const float ring = major_r + minor_r * std::cos(v);
        const Vec3 p{center.x + ring * std::cos(u),
                     center.y + ring * std::sin(u),
                     center.z + minor_r * std::sin(v)};
        push(out, p, labels, label);
    }
}

void
gaussianBlob(PointCloud &out, std::size_t n, const Vec3 &center,
             float sigma, Rng &rng, std::vector<int> *labels, int label)
{
    for (std::size_t i = 0; i < n; ++i) {
        const Vec3 p{
            center.x + sigma * static_cast<float>(rng.normal()),
            center.y + sigma * static_cast<float>(rng.normal()),
            center.z + sigma * static_cast<float>(rng.normal())};
        push(out, p, labels, label);
    }
}

} // namespace shapes
} // namespace hgpcn
