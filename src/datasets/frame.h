/**
 * @file
 * A sensor frame: one raw point cloud plus capture metadata.
 *
 * Substitution note (see docs/DESIGN.md §2): the paper evaluates on
 * ModelNet40, ShapeNet, S3DIS and KITTI. Those datasets are not
 * available offline, so the generators in this directory synthesize
 * frames with matched scale, per-point labels and — critically for
 * the paper's experiments — controllable spatial non-uniformity
 * (octree depth driver, Fig. 11) and frame-generation timestamps
 * (real-time criterion, Section VII-E).
 */

#ifndef HGPCN_DATASETS_FRAME_H
#define HGPCN_DATASETS_FRAME_H

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point_cloud.h"

namespace hgpcn
{

/** One captured frame. */
struct Frame
{
    std::string name;        //!< e.g. "MN.piano", "kitti.avg"
    PointCloud cloud;        //!< raw points
    std::vector<int> labels; //!< per-point class (empty if unlabeled)
    double timestamp = 0.0;  //!< generation time, seconds
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_FRAME_H
