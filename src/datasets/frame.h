/**
 * @file
 * A sensor frame: one raw point cloud plus capture metadata.
 *
 * Substitution note (see docs/DESIGN.md §2): the paper evaluates on
 * ModelNet40, ShapeNet, S3DIS and KITTI. Those datasets are not
 * available offline, so the generators in this directory synthesize
 * frames with matched scale, per-point labels and — critically for
 * the paper's experiments — controllable spatial non-uniformity
 * (octree depth driver, Fig. 11) and frame-generation timestamps
 * (real-time criterion, Section VII-E).
 */

#ifndef HGPCN_DATASETS_FRAME_H
#define HGPCN_DATASETS_FRAME_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "geometry/point_cloud.h"

namespace hgpcn
{

/** One captured frame. */
struct Frame
{
    std::string name;        //!< e.g. "MN.piano", "kitti.avg"
    PointCloud cloud;        //!< raw points
    std::vector<int> labels; //!< per-point class (empty if unlabeled)
    double timestamp = 0.0;  //!< generation time, seconds
};

/**
 * Sensor generation rate implied by a stream's timestamps — the
 * yardstick of the Section VII-E real-time criterion. The single
 * authoritative derivation, shared by HgPcnSystem::processStream,
 * the streaming runtime's RuntimeReport and the sec7e bench.
 *
 * Stamped streams must be strictly increasing; a non-monotonic
 * ordering is a user error (fatal), not a silent negative-FPS
 * sensor. A stream whose stamps are all identical carries no timing
 * information (the non-LiDAR generators leave 0.0) and yields 0.0,
 * as does a stream of fewer than two frames.
 */
inline double
streamGenerationFps(const std::vector<Frame> &frames)
{
    if (frames.size() < 2)
        return 0.0;
    bool unstamped = true;
    for (const Frame &frame : frames) {
        if (frame.timestamp != frames.front().timestamp) {
            unstamped = false;
            break;
        }
    }
    if (unstamped)
        return 0.0;
    for (std::size_t i = 1; i < frames.size(); ++i) {
        if (frames[i].timestamp <= frames[i - 1].timestamp) {
            fatal("stream timestamps must be strictly increasing: "
                  "frame ", i - 1, " at ", frames[i - 1].timestamp,
                  "s, frame ", i, " at ", frames[i].timestamp, "s");
        }
    }
    const double span =
        frames.back().timestamp - frames.front().timestamp;
    return static_cast<double>(frames.size() - 1) / span;
}

} // namespace hgpcn

#endif // HGPCN_DATASETS_FRAME_H
