/**
 * @file
 * Deterministic city-scale traffic generation for the elastic
 * serving layer (docs/RUNTIME.md §elastic-serving).
 *
 * The multi-LiDAR rig (sensor_stream.h) simulates a handful of
 * steady 10 Hz scanners. A city-scale deployment looks nothing like
 * that: thousands of tagged streams whose offered load breathes —
 * bursty arrivals (a platoon passes a roadside unit), diurnal rate
 * patterns (rush hour vs 3 am), and sensor churn (units hot-plug
 * into and drop out of the fleet mid-stream). TrafficGen synthesizes
 * exactly that workload on the virtual timeline, fully seeded so the
 * same config replays bit-identically — the property the elastic
 * test harness (tests/test_elastic.cc) is built on.
 *
 * Every stochastic choice draws from common/rng.h keyed on
 * (seed, sensor), so traces are independent of generation order and
 * stable across platforms. Frames carry small seeded synthetic
 * clouds (uniform box + one cluster) — the serving layer's cost is
 * dominated by the modeled schedule, not raytracing, so city-scale
 * sensor counts stay cheap to generate.
 */

#ifndef HGPCN_DATASETS_TRAFFIC_GEN_H
#define HGPCN_DATASETS_TRAFFIC_GEN_H

#include <cstdint>
#include <vector>

#include "datasets/sensor_stream.h"

namespace hgpcn
{

/** One generated trace: the tagged stream plus per-sensor serving
 * metadata the elastic layer consumes. */
struct TrafficTrace
{
    /** Interleaved tagged stream, strictly increasing stamps. */
    SensorStream stream;
    /** Per-sensor admission priority (higher = shed later). */
    std::vector<int> priority;
    /** Per-sensor activity window [joinSec, leaveSec): hot-plugged
     * sensors join late, dropped sensors leave early. */
    std::vector<double> joinSec;
    std::vector<double> leaveSec;
};

/** Seeded deterministic traffic generator. */
class TrafficGen
{
  public:
    struct Config
    {
        /** Tagged streams in the trace (thousands are fine). */
        std::size_t sensors = 64;
        /** Trace length, seconds of virtual time. */
        double durationSec = 10.0;
        /** Per-sensor baseline frame rate, Hz. */
        double baseRateHz = 2.0;
        /** Inter-arrival jitter as a fraction of the nominal gap
         * (each gap is scaled by a seeded draw in [1-j, 1+j]). */
        double rateJitter = 0.0;

        /** Burst rate multiplier (1 = no bursts). During a burst
         * window a sensor emits at baseRate * burstFactor. */
        double burstFactor = 1.0;
        /** Fraction of each burst period spent bursting, [0, 1). */
        double burstDuty = 0.25;
        /** Burst period, seconds; each sensor gets a seeded phase
         * so the fleet's bursts overlap but do not align. */
        double burstPeriodSec = 4.0;

        /** Diurnal modulation amplitude, [0, 1): the whole city's
         * rate swings by 1 +- amplitude over diurnalPeriodSec. */
        double diurnalAmplitude = 0.0;
        double diurnalPeriodSec = 10.0;

        /** Fraction of sensors that hot-plug (join mid-trace, at a
         * seeded time in the first half). */
        double hotPlugFraction = 0.0;
        /** Fraction of sensors that drop (leave mid-trace, at a
         * seeded time in the second half). */
        double dropFraction = 0.0;

        /** Priority tiers; each sensor's priority is a seeded tier
         * in [0, priorityTiers). 1 = everyone equal. */
        std::size_t priorityTiers = 1;

        /** Points per synthetic frame cloud (must cover the model's
         * input K). */
        std::size_t cloudPoints = 320;

        /** Master seed; same seed => bit-identical trace. */
        std::uint64_t seed = 1;
    };

    explicit TrafficGen(const Config &config);

    /** Generate the trace (pure function of the config). */
    TrafficTrace generate() const;

    /**
     * Closed-form instantaneous offered rate of @p sensor at trace
     * time @p t (Hz), ignoring jitter: baseRate * diurnal(t) *
     * burst(sensor, t), and 0 outside the sensor's activity window.
     * The property harness checks generated inter-arrival gaps
     * against the [minRateHz, maxRateHz] envelope this implies.
     */
    double rateAt(std::size_t sensor, double t) const;

    /** Closed-form envelope of rateAt over all sensors and times
     * (jitter widens the per-gap bound by the jitter fraction). */
    double minRateHz() const;
    double maxRateHz() const;

    /** Activity window of @p sensor (join time; leave time). */
    double joinSecOf(std::size_t sensor) const;
    double leaveSecOf(std::size_t sensor) const;

    /** Seeded priority tier of @p sensor. */
    int priorityOf(std::size_t sensor) const;

    const Config &config() const { return cfg; }

  private:
    /** Seeded per-sensor burst phase offset in [0, burstPeriod). */
    double burstPhaseOf(std::size_t sensor) const;

    Config cfg;
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_TRAFFIC_GEN_H
