#include "datasets/shapenet_like.h"

#include <functional>

#include "common/logging.h"
#include "datasets/shape_sampler.h"

namespace hgpcn
{

Frame
ShapeNetLike::generate(const std::string &object, const Config &config)
{
    HGPCN_ASSERT(config.points >= 64, "frame too small");
    HGPCN_ASSERT(config.parts >= 1, "need at least one part");

    Frame frame;
    frame.name = object;

    Rng rng(config.seed ^ std::hash<std::string>{}(object));
    PointCloud &cloud = frame.cloud;
    cloud.reserve(config.points);

    // Each part is one primitive stacked along z, labelled by its
    // part id (wing/fuselage/tail style decomposition).
    const std::size_t per_part = config.points / config.parts;
    std::size_t emitted = 0;
    for (std::size_t part = 0; part < config.parts; ++part) {
        const std::size_t n = part + 1 == config.parts
                                  ? config.points - emitted
                                  : per_part;
        emitted += n;
        const float z =
            -0.5f + static_cast<float>(part) /
                        static_cast<float>(config.parts);
        const Vec3 center{rng.uniform(-0.2f, 0.2f),
                          rng.uniform(-0.2f, 0.2f), z};
        const int label = static_cast<int>(part);
        switch (rng.below(3)) {
          case 0:
            shapes::sphere(cloud, n, center,
                           rng.uniform(0.1f, 0.3f), rng, &frame.labels,
                           label);
            break;
          case 1:
            shapes::box(cloud, n, center,
                        {rng.uniform(0.1f, 0.35f),
                         rng.uniform(0.1f, 0.35f),
                         rng.uniform(0.05f, 0.2f)},
                        rng, &frame.labels, label);
            break;
          default:
            shapes::cylinder(cloud, n, center,
                             rng.uniform(0.05f, 0.2f),
                             rng.uniform(0.2f, 0.4f), rng,
                             &frame.labels, label);
            break;
        }
    }
    return frame;
}

} // namespace hgpcn
