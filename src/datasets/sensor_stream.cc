#include "datasets/sensor_stream.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace hgpcn
{

std::vector<Frame>
SensorStream::framesOfSensor(std::size_t sensor) const
{
    HGPCN_ASSERT(frames.size() == sensors.size(),
                 "frames/sensors tags out of sync");
    std::vector<Frame> out;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (sensors[i] == sensor)
            out.push_back(frames[i]);
    }
    return out;
}

SensorStream
mergeSensorStreams(std::vector<std::vector<Frame>> per_sensor)
{
    SensorStream stream;
    stream.sensorCount = per_sensor.size();

    // K-way merge by timestamp. Equal stamps across sensors — or
    // non-increasing stamps within one — would make the interleave
    // (and any per-shard sub-stream) non-strict, which the paced
    // runtime rejects. Malformed stamps are sensor *data*, not
    // programmer error: reject the offending frame (warn + count),
    // keep merging the well-formed rest, and reserve fatal for
    // genuinely unusable configuration.
    std::vector<std::size_t> cursor(per_sensor.size(), 0);
    while (true) {
        std::size_t best = per_sensor.size();
        for (std::size_t s = 0; s < per_sensor.size(); ++s) {
            if (cursor[s] >= per_sensor[s].size())
                continue;
            if (best == per_sensor.size() ||
                per_sensor[s][cursor[s]].timestamp <
                    per_sensor[best][cursor[best]].timestamp) {
                best = s;
            }
        }
        if (best == per_sensor.size())
            break;
        const Frame &head = per_sensor[best][cursor[best]];
        if (!stream.frames.empty() &&
            head.timestamp <= stream.frames.back().timestamp) {
            // Distinguish a sensor that does not advance its own
            // clock (unstamped or duplicated captures) from a
            // cross-sensor collision, where the actionable fix is
            // phase offsets.
            if (stream.sensors.back() == best) {
                warn("rejecting frame '", head.name, "': sensor ",
                     best, " does not advance its timestamp (",
                     head.timestamp, "s after ",
                     stream.frames.back().timestamp,
                     "s) — stamp frames with strictly increasing "
                     "capture times");
            } else {
                warn("rejecting frame '", head.name, "': sensor ",
                     best, " at ", head.timestamp,
                     "s does not advance the interleave past "
                     "sensor ", stream.sensors.back(), " at ",
                     stream.frames.back().timestamp,
                     "s — give same-rate sensors distinct phase "
                     "offsets");
            }
            ++stream.rejectedFrames;
            ++cursor[best];
            continue;
        }
        stream.frames.push_back(
            std::move(per_sensor[best][cursor[best]]));
        stream.sensors.push_back(best);
        ++cursor[best];
    }
    return stream;
}

double
sensorGenerationFps(const SensorStream &stream, std::size_t sensor)
{
    return streamGenerationFps(stream.framesOfSensor(sensor));
}

SensorStream
makeLidarSensorStream(const MultiSensorConfig &cfg)
{
    HGPCN_ASSERT(cfg.sensors >= 1, "need at least one sensor");
    HGPCN_ASSERT(cfg.lidar.frameRateHz > 0.0,
                 "sensor frame rate must be positive");
    const double period = 1.0 / cfg.lidar.frameRateHz;
    std::vector<std::vector<Frame>> per_sensor;
    per_sensor.reserve(cfg.sensors);
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        KittiLike::Config lidar_cfg = cfg.lidar;
        lidar_cfg.seed = cfg.lidar.seed + s; // distinct scenes
        const KittiLike lidar(lidar_cfg);
        const double phase =
            period * static_cast<double>(s) /
            static_cast<double>(cfg.sensors);
        std::vector<Frame> frames;
        frames.reserve(cfg.framesPerSensor);
        for (std::size_t f = 0; f < cfg.framesPerSensor; ++f) {
            Frame frame = lidar.generate(f);
            frame.timestamp += phase;
            frame.name = "s" + std::to_string(s) + "." + frame.name;
            frames.push_back(std::move(frame));
        }
        per_sensor.push_back(std::move(frames));
    }
    return mergeSensorStreams(std::move(per_sensor));
}

} // namespace hgpcn
