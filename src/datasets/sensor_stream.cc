#include "datasets/sensor_stream.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace hgpcn
{

std::vector<Frame>
SensorStream::framesOfSensor(std::size_t sensor) const
{
    HGPCN_ASSERT(frames.size() == sensors.size(),
                 "frames/sensors tags out of sync");
    std::vector<Frame> out;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (sensors[i] == sensor)
            out.push_back(frames[i]);
    }
    return out;
}

SensorStream
mergeSensorStreams(std::vector<std::vector<Frame>> per_sensor)
{
    SensorStream stream;
    stream.sensorCount = per_sensor.size();

    // Per-sensor capture order must be strictly increasing; the
    // shared derivation already fails fast on violations.
    for (const std::vector<Frame> &frames : per_sensor)
        (void)streamGenerationFps(frames);

    // K-way merge by timestamp. Equal stamps across sensors would
    // make the interleaved order (and any per-shard sub-stream)
    // non-strict, which the paced runtime rejects — surface that
    // here, where the fix (phase offsets) is actionable.
    std::vector<std::size_t> cursor(per_sensor.size(), 0);
    while (true) {
        std::size_t best = per_sensor.size();
        for (std::size_t s = 0; s < per_sensor.size(); ++s) {
            if (cursor[s] >= per_sensor[s].size())
                continue;
            if (best == per_sensor.size() ||
                per_sensor[s][cursor[s]].timestamp <
                    per_sensor[best][cursor[best]].timestamp) {
                best = s;
            }
        }
        if (best == per_sensor.size())
            break;
        if (!stream.frames.empty() &&
            per_sensor[best][cursor[best]].timestamp <=
                stream.frames.back().timestamp) {
            // Same-sensor ties only get here when every stamp of
            // that sensor is identical (an unstamped sequence —
            // partial duplicates already died in the strictly-
            // increasing pre-check above): distinguish them, since
            // "add phase offsets" is not the fix for a sensor that
            // carries no timing at all.
            if (stream.sensors.back() == best) {
                fatal("sensor ", best, " repeats timestamp ",
                      per_sensor[best][cursor[best]].timestamp,
                      "s; an unstamped sequence cannot be merged "
                      "into a paced interleave — stamp its frames "
                      "with the capture times");
            }
            fatal("sensor streams share a timestamp (",
                  per_sensor[best][cursor[best]].timestamp,
                  "s, sensors ", stream.sensors.back(), " and ",
                  best,
                  "); give same-rate sensors distinct phase offsets");
        }
        stream.frames.push_back(
            std::move(per_sensor[best][cursor[best]]));
        stream.sensors.push_back(best);
        ++cursor[best];
    }
    return stream;
}

double
sensorGenerationFps(const SensorStream &stream, std::size_t sensor)
{
    return streamGenerationFps(stream.framesOfSensor(sensor));
}

SensorStream
makeLidarSensorStream(const MultiSensorConfig &cfg)
{
    HGPCN_ASSERT(cfg.sensors >= 1, "need at least one sensor");
    HGPCN_ASSERT(cfg.lidar.frameRateHz > 0.0,
                 "sensor frame rate must be positive");
    const double period = 1.0 / cfg.lidar.frameRateHz;
    std::vector<std::vector<Frame>> per_sensor;
    per_sensor.reserve(cfg.sensors);
    for (std::size_t s = 0; s < cfg.sensors; ++s) {
        KittiLike::Config lidar_cfg = cfg.lidar;
        lidar_cfg.seed = cfg.lidar.seed + s; // distinct scenes
        const KittiLike lidar(lidar_cfg);
        const double phase =
            period * static_cast<double>(s) /
            static_cast<double>(cfg.sensors);
        std::vector<Frame> frames;
        frames.reserve(cfg.framesPerSensor);
        for (std::size_t f = 0; f < cfg.framesPerSensor; ++f) {
            Frame frame = lidar.generate(f);
            frame.timestamp += phase;
            frame.name = "s" + std::to_string(s) + "." + frame.name;
            frames.push_back(std::move(frame));
        }
        per_sensor.push_back(std::move(frames));
    }
    return mergeSensorStreams(std::move(per_sensor));
}

} // namespace hgpcn
