/**
 * @file
 * ModelNet40-like synthetic CAD object frames.
 *
 * Reproduces the properties the paper's pre-processing experiments
 * depend on: frames of ~1e5 raw surface points per object and a
 * tunable spatial non-uniformity. Fig. 11 contrasts "MN.piano"
 * (non-uniform, deeper octree) with "MN.plant" (uniform, shallower):
 * the nonUniformity knob concentrates a fraction of points into
 * small dense clusters to recreate exactly that effect.
 */

#ifndef HGPCN_DATASETS_MODELNET_LIKE_H
#define HGPCN_DATASETS_MODELNET_LIKE_H

#include "datasets/frame.h"

namespace hgpcn
{

/** Generator for ModelNet40-like object frames. */
class ModelNetLike
{
  public:
    /** Generation parameters. */
    struct Config
    {
        /** Raw points per frame. */
        std::size_t points = 100000;
        /** Fraction of points pushed into dense clusters [0, 1);
         * negative selects the per-object default (piano dense,
         * plant uniform, ...). */
        float nonUniformity = -1.0f;
        /** RNG seed. */
        std::uint64_t seed = 11;
    };

    /**
     * Generate one object frame.
     *
     * @param object One of the named objects below (or any string —
     *               unknown names hash onto a shape mix).
     * @param config Generation parameters.
     */
    static Frame generate(const std::string &object,
                          const Config &config);

    /** Canonical object names used across benches (paper Fig. 9-11). */
    static const std::vector<std::string> &objectNames();

    /**
     * Per-object default non-uniformity. MN.piano is the most
     * non-uniform, MN.plant the most uniform (Fig. 11's example
     * pair); unknown names get a mid value.
     */
    static float defaultNonUniformity(const std::string &object);
};

} // namespace hgpcn

#endif // HGPCN_DATASETS_MODELNET_LIKE_H
