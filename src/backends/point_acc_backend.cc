#include "backends/point_acc_backend.h"

#include "core/frame_workspace.h"

#include <utility>

namespace hgpcn
{

BackendInference
PointAccBackend::infer(const PointCloud &input,
                       FrameWorkspace *workspace) const
{
    RunOptions opts;
    opts.ds = DsMethod::BruteKnn; // the Mapping Unit's workload
    opts.centroid = centroid;
    opts.seed = seed;
    opts.workspace = workspace;
    if (workspace != nullptr)
        opts.intraOpThreads = workspace->intraOpThreads;
    RunOutput out = net_.run(input, opts);

    const PointAccResult timed = sim.run(out.trace);
    BackendInference result;
    result.backend = nm;
    result.dsSec = timed.mappingSec;
    result.fcSec = timed.fcSec;
    result.dsFcOverlap = true; // DS/FC overlapped
    result.output = std::move(out);
    return result;
}

} // namespace hgpcn
