/**
 * @file
 * MesorasiBackend: the Mesorasi [6] baseline lifted from a batch
 * timing model (src/baselines/mesorasi.h) into a stream-servable
 * ExecutionBackend.
 *
 * The functional path is the real PointNet++ execution with
 * brute-force KNN — the workload Mesorasi's mobile GPU actually
 * runs — so labels and traces stay comparable to every other
 * backend; the latency comes from MesorasiSim applied to that
 * frame's trace (GPU data structuring overlapped with
 * delayed-aggregation feature computation). Per-frame numbers match
 * the batch model exactly (tests/test_backends.cc).
 */

#ifndef HGPCN_BACKENDS_MESORASI_BACKEND_H
#define HGPCN_BACKENDS_MESORASI_BACKEND_H

#include "backends/execution_backend.h"
#include "baselines/mesorasi.h"
#include "core/inference_engine.h"

namespace hgpcn
{

/** Mesorasi-style GPU delayed aggregation behind the interface. */
class MesorasiBackend : public ExecutionBackend
{
  public:
    /**
     * @param engine_cfg Platform parameters: sim drives the FC-side
     *        fabric model, centroid/seed the functional execution
     *        (the ds method is forced to brute KNN — that is what
     *        the GPU executes).
     * @param net Deployed network replica (borrowed).
     * @param gpu Device running the DS step (paper pairing: a
     *        TX2-class mobile Pascal GPU).
     */
    MesorasiBackend(const InferenceEngine::Config &engine_cfg,
                    const PointNet2 &net,
                    const DeviceSpec &gpu = DeviceModel::tx2MobileGpu())
        : sim(engine_cfg.sim, gpu), net_(net),
          centroid(engine_cfg.centroid), seed(engine_cfg.seed)
    {
    }

    const std::string &name() const override { return nm; }
    /** Its own GPU — never contends with the HgPCN fabric. */
    const std::string &resource() const override { return res; }
    BackendInference infer(const PointCloud &input,
                           FrameWorkspace *workspace =
                               nullptr) const override;
    const PointNet2 &model() const override { return net_; }

  private:
    MesorasiSim sim;
    const PointNet2 &net_;
    CentroidMethod centroid;
    std::uint64_t seed;
    std::string nm = "mesorasi";
    std::string res = "gpu";
};

} // namespace hgpcn

#endif // HGPCN_BACKENDS_MESORASI_BACKEND_H
