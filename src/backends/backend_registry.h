/**
 * @file
 * Name -> factory registry for execution backends.
 *
 * ShardedRunner::Config names a backend per shard; the registry
 * resolves those names when the fleet is built, so adding an
 * accelerator model to a serving comparison is one registration,
 * not a runtime patch. The four built-ins ("hgpcn", "mesorasi",
 * "pointacc", "cpu-brute") are registered at construction; custom
 * backends (a calibrated variant, a stub for tests) register under
 * a fresh name via registerFactory — duplicate names are fatal, as
 * is creating an unknown one (the error lists what is registered).
 */

#ifndef HGPCN_BACKENDS_BACKEND_REGISTRY_H
#define HGPCN_BACKENDS_BACKEND_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backends/execution_backend.h"
#include "core/inference_engine.h"

namespace hgpcn
{

/** Builds one backend instance bound to a model replica. The
 * engine config carries the platform (sim), functional (centroid,
 * seed) and HgPCN-specific (ds) parameters backends draw from. */
using BackendFactory = std::function<std::unique_ptr<ExecutionBackend>(
    const InferenceEngine::Config &, const PointNet2 &)>;

/** Process-wide backend catalogue (thread-safe). */
class BackendRegistry
{
  public:
    /** @return the process-wide instance, built-ins registered. */
    static BackendRegistry &instance();

    /** Register @p factory under @p name; a duplicate name is a
     * user error (fatal) — shadowing a model silently would corrupt
     * every comparison that names it. */
    void registerFactory(const std::string &name,
                         BackendFactory factory);

    /** @return true when @p name is registered. */
    bool contains(const std::string &name) const;

    /** @return registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Instantiate backend @p name (fatal when unknown, listing the
     * registered names).
     *
     * @param engine_cfg Platform/functional parameters.
     * @param net Model replica the backend binds to (borrowed; must
     *        outlive the backend).
     */
    std::unique_ptr<ExecutionBackend>
    create(const std::string &name,
           const InferenceEngine::Config &engine_cfg,
           const PointNet2 &net) const;

  private:
    BackendRegistry(); // registers the built-ins

    mutable std::mutex mu;
    std::map<std::string, BackendFactory> factories;
};

/** Convenience: BackendRegistry::instance().create(...). */
std::unique_ptr<ExecutionBackend>
makeBackend(const std::string &name,
            const InferenceEngine::Config &engine_cfg,
            const PointNet2 &net);

} // namespace hgpcn

#endif // HGPCN_BACKENDS_BACKEND_REGISTRY_H
