/**
 * @file
 * HgpcnBackend: the paper's Inference Engine as an ExecutionBackend.
 *
 * Wraps the DSU + FCU engine (core/inference_engine.h) without
 * changing its numbers: dsSec is the DSU's pipelined latency, fcSec
 * the FCU's, and the two overlap through the BF-stage buffer —
 * exactly InferenceResult::totalSec(). A StreamRunner handed this
 * backend reproduces the engine-owning runner bit for bit
 * (tests/test_backends.cc pins it).
 */

#ifndef HGPCN_BACKENDS_HGPCN_BACKEND_H
#define HGPCN_BACKENDS_HGPCN_BACKEND_H

#include "backends/execution_backend.h"
#include "core/inference_engine.h"

namespace hgpcn
{

/** The FPGA DSU/FCU engine behind the backend interface. */
class HgpcnBackend : public ExecutionBackend
{
  public:
    /**
     * @param engine Engine to wrap (copied; an InferenceEngine is
     *        its configuration).
     * @param net Deployed network replica (borrowed).
     */
    HgpcnBackend(const InferenceEngine &engine, const PointNet2 &net)
        : eng(engine), net_(net)
    {
    }

    const std::string &name() const override { return nm; }
    /** Shares the HgPCN fabric with the Down-sampling Unit. */
    const std::string &resource() const override { return res; }
    BackendInference infer(const PointCloud &input,
                           FrameWorkspace *workspace =
                               nullptr) const override;

    /** One PointNet2::runBatch pass: shared per-layer weight pass,
     * one arena reservation, per-frame outputs and traces
     * bit-identical to solo infer(). */
    BatchInference inferBatch(std::span<const PointCloud *const> inputs,
                              FrameWorkspace *workspace =
                                  nullptr) const override;

    /** DSU passes run back-to-back (summed); the FCU runs the
     * layer-merged batched pass (FcuSim::runStacked); the two
     * overlap through the BF buffer, so the batch holds the device
     * for the slower side. */
    double batchServiceSec(std::span<const BackendInference *const>
                               frames) const override;

    const PointNet2 &model() const override { return net_; }

    /** @return the wrapped engine (e.g. for serial comparisons). */
    const InferenceEngine &engine() const { return eng; }

  private:
    InferenceEngine eng;
    const PointNet2 &net_;
    std::string nm = "hgpcn";
    std::string res = "fpga";
};

} // namespace hgpcn

#endif // HGPCN_BACKENDS_HGPCN_BACKEND_H
