/**
 * @file
 * CpuBruteBackend: host-CPU brute-force reference backend.
 *
 * The no-accelerator floor of every comparison: the real PointNet++
 * functional path with brute-force KNN, timed by the host-CPU device
 * model (effective rates over the recorded workload counters). DS
 * and FC do not overlap on a general-purpose core, so the total is
 * their serial sum — DeviceModel::inferenceSec exactly.
 */

#ifndef HGPCN_BACKENDS_CPU_BRUTE_BACKEND_H
#define HGPCN_BACKENDS_CPU_BRUTE_BACKEND_H

#include "backends/execution_backend.h"
#include "core/inference_engine.h"
#include "sim/device_model.h"

namespace hgpcn
{

/** Brute-force PointNet++ on the host CPU behind the interface. */
class CpuBruteBackend : public ExecutionBackend
{
  public:
    /**
     * @param engine_cfg Functional parameters (centroid/seed; the
     *        ds method is forced to brute KNN).
     * @param net Deployed network replica (borrowed).
     * @param cpu Host device model (default: the paper's Xeon
     *        W-2255 baseline).
     */
    CpuBruteBackend(const InferenceEngine::Config &engine_cfg,
                    const PointNet2 &net,
                    const DeviceSpec &cpu = DeviceModel::xeonW2255())
        : dev(cpu), net_(net), centroid(engine_cfg.centroid),
          seed(engine_cfg.seed)
    {
    }

    const std::string &name() const override { return nm; }
    /** A dedicated host core pool, separate from the octree-build
     * workers' "cpu" resource. */
    const std::string &resource() const override { return res; }
    BackendInference infer(const PointCloud &input,
                           FrameWorkspace *workspace =
                               nullptr) const override;

    /** One PointNet2::runBatch pass (brute KNN); per-frame outputs
     * bit-identical to solo infer(). */
    BatchInference inferBatch(std::span<const PointCloud *const> inputs,
                              FrameWorkspace *workspace =
                                  nullptr) const override;

    /** Serial DS sum + one batched GEMM pass: MAC time is rate-
     * linear, so batching only merges the per-op dispatch overhead
     * (DeviceModel::fcSecStacked). */
    double batchServiceSec(std::span<const BackendInference *const>
                               frames) const override;

    const PointNet2 &model() const override { return net_; }

  private:
    DeviceModel dev;
    const PointNet2 &net_;
    CentroidMethod centroid;
    std::uint64_t seed;
    std::string nm = "cpu-brute";
    std::string res = "cpu.brute";
};

} // namespace hgpcn

#endif // HGPCN_BACKENDS_CPU_BRUTE_BACKEND_H
