#include "backends/hgpcn_backend.h"

#include "core/frame_workspace.h"

#include <utility>

namespace hgpcn
{

BackendInference
HgpcnBackend::infer(const PointCloud &input,
                    FrameWorkspace *workspace) const
{
    // Same conditioning as the pre-backend InferenceStage: the input
    // is already normalized, so the model builds its own level-0
    // octree (still costed in the trace) rather than reusing the
    // pre-processing tree.
    InferenceResult r =
        eng.run(net_, input, nullptr, workspace,
                workspace != nullptr ? workspace->intraOpThreads : 1);
    BackendInference out;
    out.backend = nm;
    out.dsSec = r.dsu.pipelinedSec;
    out.fcSec = r.fcu.totalSec();
    out.dsFcOverlap = true; // DSU/FCU overlap through the BF buffer
    out.output = std::move(r.output);
    return out;
}

} // namespace hgpcn
