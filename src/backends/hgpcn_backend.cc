#include "backends/hgpcn_backend.h"

#include "core/frame_workspace.h"

#include <utility>

namespace hgpcn
{

BackendInference
HgpcnBackend::infer(const PointCloud &input,
                    FrameWorkspace *workspace) const
{
    // Same conditioning as the pre-backend InferenceStage: the input
    // is already normalized, so the model builds its own level-0
    // octree (still costed in the trace) rather than reusing the
    // pre-processing tree.
    InferenceResult r =
        eng.run(net_, input, nullptr, workspace,
                workspace != nullptr ? workspace->intraOpThreads : 1);
    BackendInference out;
    out.backend = nm;
    out.dsSec = r.dsu.pipelinedSec;
    out.fcSec = r.fcu.totalSec();
    out.dsFcOverlap = true; // DSU/FCU overlap through the BF buffer
    out.output = std::move(r.output);
    return out;
}

BatchInference
HgpcnBackend::inferBatch(std::span<const PointCloud *const> inputs,
                         FrameWorkspace *workspace) const
{
    RunOptions opts;
    opts.centroid = eng.config().centroid;
    opts.ds = eng.config().ds;
    opts.seed = eng.config().seed;
    opts.workspace = workspace;
    opts.intraOpThreads =
        workspace != nullptr ? workspace->intraOpThreads : 1;
    std::vector<RunOutput> outs = net_.runBatch(inputs, opts);

    BatchInference batch;
    batch.frames.reserve(outs.size());
    for (RunOutput &out : outs) {
        InferenceResult r = eng.timeOutput(std::move(out));
        BackendInference bi;
        bi.backend = nm;
        bi.dsSec = r.dsu.pipelinedSec;
        bi.fcSec = r.fcu.totalSec();
        bi.dsFcOverlap = true;
        bi.output = std::move(r.output);
        batch.frames.push_back(std::move(bi));
    }
    std::vector<const BackendInference *> ptrs;
    ptrs.reserve(batch.frames.size());
    for (const BackendInference &f : batch.frames)
        ptrs.push_back(&f);
    batch.batchSec = batchServiceSec(ptrs);
    return batch;
}

double
HgpcnBackend::batchServiceSec(
    std::span<const BackendInference *const> frames) const
{
    double ds = 0.0;
    std::vector<const ExecutionTrace *> traces;
    traces.reserve(frames.size());
    for (const BackendInference *f : frames) {
        ds += f->dsSec;
        traces.push_back(&f->output.trace);
    }
    const FcuSim fcu(eng.config().sim);
    const double fc = fcu.runStacked(traces).totalSec();
    return ds > fc ? ds : fc;
}

} // namespace hgpcn
