/**
 * @file
 * ExecutionBackend: a stream-servable inference accelerator.
 *
 * The paper's headline claims (Fig. 14, Section VII-D) are
 * comparative — the FPGA DSU/FCU engine against Mesorasi-style GPU
 * delayed aggregation and PointACC — and a backend's latency
 * *shape*, not just its mean, decides real-time viability. A backend
 * is therefore a first-class citizen of the streaming runtime: it
 * executes the deployed PCN over one down-sampled frame (the real
 * functional path, so outputs are comparable bit for bit) and
 * returns the modeled latency its cycle model charges, split into
 * the data-structuring and feature-computation sides every modeled
 * accelerator has. InferenceStage/StreamRunner schedule whatever
 * backend they are handed; ShardedRunner composes heterogeneous
 * fleets of them (docs/RUNTIME.md §backends).
 *
 * Concrete backends: HgpcnBackend (DSU/FCU engine), MesorasiBackend
 * (mobile-GPU delayed aggregation), PointAccBackend (full-range
 * bitonic Mapping Unit) and CpuBruteBackend (host-CPU reference).
 * backend_registry.h maps names to factories.
 */

#ifndef HGPCN_BACKENDS_EXECUTION_BACKEND_H
#define HGPCN_BACKENDS_EXECUTION_BACKEND_H

#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "geometry/point_cloud.h"
#include "nn/pointnet2.h"

namespace hgpcn
{

class FrameWorkspace;

/**
 * Outcome of one inference: backends report failure through this
 * status, never through exceptions, so the streaming pipeline can
 * charge the failed attempt as virtual time and retry or fail over
 * (serving/failover.h). Today only the fault-injection layer sets
 * TransientError — real backends are deterministic — but the
 * channel is part of the interface so a hardware backend with real
 * error paths slots in unchanged.
 */
enum class InferenceStatus
{
    Ok,
    /** The attempt produced no usable output but the device is
     * believed healthy; retrying may succeed. */
    TransientError,
};

/** Stable display name ("ok", "transient-error"). */
const char *inferenceStatusName(InferenceStatus status);

/**
 * Result of one frame through an execution backend.
 *
 * Every modeled accelerator has a data-structuring side (neighbor
 * search) and a feature-computation side (the PCN's GEMMs); whether
 * the two overlap is an architectural property the backend reports,
 * so totalSec() reproduces each batch model's arithmetic exactly.
 */
struct BackendInference
{
    /** Name of the producing backend ("hgpcn", "mesorasi", ...). */
    std::string backend;

    /** Network outputs (logits, labels) and the execution trace —
     * the real functional result, identical across backends that
     * execute the same data-structuring workload. */
    RunOutput output;

    /** Modeled data-structuring seconds (DSU / GPU DS / Mapping
     * Unit / CPU KNN, per backend). */
    double dsSec = 0.0;

    /** Modeled feature-computation seconds. */
    double fcSec = 0.0;

    /** true: DS and FC overlap (total is the slower side), as on
     * HgPCN, Mesorasi and PointACC; false: serial sum, as on the
     * general-purpose CPU/GPU baselines. */
    bool dsFcOverlap = true;

    /** Attempt outcome; on TransientError the output is not to be
     * trusted (the modeled latencies still are — a failed attempt
     * occupies the device for a full service). */
    InferenceStatus status = InferenceStatus::Ok;

    /** @return modeled end-to-end seconds of the inference phase. */
    double
    totalSec() const
    {
        if (dsFcOverlap)
            return dsSec > fcSec ? dsSec : fcSec;
        return dsSec + fcSec;
    }
};

/**
 * Result of one micro-batch through an execution backend.
 *
 * frames[i] is bit-identical to a solo infer() of input i — the
 * per-frame modeled numbers are unchanged by construction — while
 * batchSec is the ONE device occupancy interval the whole batch
 * holds (shared weight passes amortize fill/drain and dispatch, so
 * batchSec <= sum of per-frame totals). The virtual timeline
 * charges batchSec and derives every member's completion stamp
 * from it.
 */
struct BatchInference
{
    std::vector<BackendInference> frames;
    double batchSec = 0.0;
};

/**
 * One inference accelerator, bound to a deployed network replica.
 *
 * Backends must be thread-safe: the streaming runtime calls infer()
 * from a pool of workers, potentially on several frames at once
 * (the PointNet2 functional path is const and thread-safe; cycle
 * models are pure).
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    /** @return registry name of this backend ("hgpcn", ...). */
    virtual const std::string &name() const = 0;

    /**
     * @return the device this backend occupies on the virtual
     * timeline. "fpga" means the HgPCN fabric shared with the
     * Down-sampling Unit (StreamRunner then applies its shareFpga
     * semantics); any other name is the backend's own device and
     * never contends with the pre-processing front end.
     */
    virtual const std::string &resource() const = 0;

    /**
     * Execute the deployed network over one frame.
     *
     * @param input The down-sampled, unit-cube-normalized cloud
     *        (~K points) the pre-processing front end produced.
     * @param workspace Optional reusable scratch arena leased by
     *        the calling pipeline worker (core/frame_workspace.h):
     *        zero-alloc steady state and the worker's intra-op
     *        thread budget. Null runs with per-call scratch — same
     *        results.
     * @return functional output + modeled stage latencies.
     */
    virtual BackendInference
    infer(const PointCloud &input,
          FrameWorkspace *workspace = nullptr) const = 0;

    /**
     * Execute the deployed network over a micro-batch of frames
     * coalesced from different sensors.
     *
     * The base implementation loops infer() and charges the serial
     * sum — correct for any backend. Accelerated backends override
     * it to share one weight pass and one workspace arena
     * reservation across the batch; they must keep every frame's
     * functional output and recorded trace bit-identical to a solo
     * infer() of that frame.
     */
    virtual BatchInference
    inferBatch(std::span<const PointCloud *const> inputs,
               FrameWorkspace *workspace = nullptr) const;

    /**
     * Modeled device-occupancy seconds for serving the given
     * already-executed frames as one batch. Pure arithmetic over
     * the frames' recorded traces (no functional re-execution), so
     * the virtual timeline can re-derive batch charges
     * deterministically for any batch composition. Base: serial
     * sum of per-frame totals. A single-frame span must equal that
     * frame's totalSec().
     */
    virtual double batchServiceSec(
        std::span<const BackendInference *const> frames) const;

    /** @return the deployed network replica. */
    virtual const PointNet2 &model() const = 0;

    /**
     * Deterministic cost-model estimate of this backend's per-frame
     * inference service seconds — the number join-shortest-queue
     * placement retires backlog with (serving/placement.h).
     *
     * Computed once, lazily, by running the backend's own cycle
     * model over a seeded synthetic probe frame of the deployed
     * network's input size; identical configurations therefore
     * estimate identical service times.
     */
    double estimateServiceSec() const;

  private:
    mutable std::once_flag probe_once;
    mutable double probe_sec = 0.0;
};

/** Seeded synthetic probe cloud: @p points uniform in the unit
 * cube — the representative input estimateServiceSec() times. */
PointCloud backendProbeCloud(std::size_t points);

} // namespace hgpcn

#endif // HGPCN_BACKENDS_EXECUTION_BACKEND_H
