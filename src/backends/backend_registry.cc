#include "backends/backend_registry.h"

#include <sstream>
#include <utility>

#include "backends/cpu_brute_backend.h"
#include "backends/hgpcn_backend.h"
#include "backends/mesorasi_backend.h"
#include "backends/point_acc_backend.h"
#include "common/logging.h"

namespace hgpcn
{

BackendRegistry::BackendRegistry()
{
    factories["hgpcn"] = [](const InferenceEngine::Config &cfg,
                            const PointNet2 &net) {
        return std::make_unique<HgpcnBackend>(InferenceEngine(cfg),
                                              net);
    };
    factories["mesorasi"] = [](const InferenceEngine::Config &cfg,
                               const PointNet2 &net) {
        return std::make_unique<MesorasiBackend>(cfg, net);
    };
    factories["pointacc"] = [](const InferenceEngine::Config &cfg,
                               const PointNet2 &net) {
        return std::make_unique<PointAccBackend>(cfg, net);
    };
    factories["cpu-brute"] = [](const InferenceEngine::Config &cfg,
                                const PointNet2 &net) {
        return std::make_unique<CpuBruteBackend>(cfg, net);
    };
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

void
BackendRegistry::registerFactory(const std::string &name,
                                 BackendFactory factory)
{
    HGPCN_ASSERT(factory != nullptr, "null backend factory for '",
                 name, "'");
    std::lock_guard<std::mutex> lock(mu);
    if (factories.count(name) != 0) {
        fatal("backend '", name,
              "' is already registered; pick a fresh name instead "
              "of shadowing an existing model");
    }
    factories[name] = std::move(factory);
}

bool
BackendRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    return factories.count(name) != 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> out;
    out.reserve(factories.size());
    for (const auto &entry : factories)
        out.push_back(entry.first); // std::map iterates sorted
    return out;
}

std::unique_ptr<ExecutionBackend>
BackendRegistry::create(const std::string &name,
                        const InferenceEngine::Config &engine_cfg,
                        const PointNet2 &net) const
{
    BackendFactory factory;
    {
        std::lock_guard<std::mutex> lock(mu);
        const auto it = factories.find(name);
        if (it != factories.end())
            factory = it->second;
    }
    if (!factory) {
        std::ostringstream known;
        for (const std::string &n : names())
            known << (known.tellp() > 0 ? ", " : "") << n;
        fatal("unknown execution backend '", name,
              "'; registered backends: ", known.str());
    }
    std::unique_ptr<ExecutionBackend> backend =
        factory(engine_cfg, net);
    HGPCN_ASSERT(backend != nullptr, "backend factory '", name,
                 "' returned null");
    return backend;
}

std::unique_ptr<ExecutionBackend>
makeBackend(const std::string &name,
            const InferenceEngine::Config &engine_cfg,
            const PointNet2 &net)
{
    return BackendRegistry::instance().create(name, engine_cfg, net);
}

} // namespace hgpcn
