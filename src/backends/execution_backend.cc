#include "backends/execution_backend.h"

#include "common/logging.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace hgpcn
{

const char *
inferenceStatusName(InferenceStatus status)
{
    switch (status) {
    case InferenceStatus::Ok:
        return "ok";
    case InferenceStatus::TransientError:
        return "transient-error";
    }
    return "?";
}

PointCloud
backendProbeCloud(std::size_t points)
{
    HGPCN_ASSERT(points >= 1, "probe cloud needs >= 1 point");
    Rng rng(0x9bacULL); // fixed: estimates must be reproducible
    PointCloud cloud;
    cloud.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        cloud.add(Vec3{rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f),
                       rng.uniform(0.0f, 1.0f)});
    }
    return cloud;
}

BatchInference
ExecutionBackend::inferBatch(std::span<const PointCloud *const> inputs,
                             FrameWorkspace *workspace) const
{
    HGPCN_ASSERT(!inputs.empty(), "inferBatch: empty batch");
    HGPCN_TRACE_WALL_SPAN(
        span, "infer:" + name() + ":batch" +
                  std::to_string(inputs.size()),
        "backend", "wall/backend:" + name());
    BatchInference out;
    out.frames.reserve(inputs.size());
    for (const PointCloud *input : inputs)
        out.frames.push_back(infer(*input, workspace));
    std::vector<const BackendInference *> ptrs;
    ptrs.reserve(out.frames.size());
    for (const BackendInference &f : out.frames)
        ptrs.push_back(&f);
    out.batchSec = batchServiceSec(ptrs);
    return out;
}

double
ExecutionBackend::batchServiceSec(
    std::span<const BackendInference *const> frames) const
{
    double total = 0.0;
    for (const BackendInference *f : frames)
        total += f->totalSec();
    return total;
}

double
ExecutionBackend::estimateServiceSec() const
{
    std::call_once(probe_once, [this] {
        HGPCN_TRACE_WALL_SPAN(span, "probe:" + name(), "backend",
                              "wall/backend:" + name());
        std::size_t k = model().spec().inputPoints;
        if (k == 0)
            k = 1024;
        probe_sec = infer(backendProbeCloud(k)).totalSec();
    });
    return probe_sec;
}

} // namespace hgpcn
