/**
 * @file
 * PointAccBackend: the PointACC [16] baseline lifted from a batch
 * timing model (src/baselines/point_acc.h) into a stream-servable
 * ExecutionBackend.
 *
 * Functional path: real PointNet++ with brute-force KNN — the exact
 * DS workload PointACC's Mapping Unit executes (full-range distance
 * + bitonic top-K per centroid). Latency: PointAccSim over that
 * frame's trace, Mapping Unit overlapped with the shared 16x16
 * systolic feature computation. Per-frame numbers match the batch
 * model exactly (tests/test_backends.cc).
 */

#ifndef HGPCN_BACKENDS_POINT_ACC_BACKEND_H
#define HGPCN_BACKENDS_POINT_ACC_BACKEND_H

#include "backends/execution_backend.h"
#include "baselines/point_acc.h"
#include "core/inference_engine.h"

namespace hgpcn
{

/** PointACC's Mapping Unit + systolic array behind the interface. */
class PointAccBackend : public ExecutionBackend
{
  public:
    /**
     * @param engine_cfg Platform parameters (sim: fabric clock and
     *        systolic geometry, shared with HgPCN so FC cancels out
     *        of the comparison; centroid/seed: functional picks).
     * @param net Deployed network replica (borrowed).
     */
    PointAccBackend(const InferenceEngine::Config &engine_cfg,
                    const PointNet2 &net)
        : sim(engine_cfg.sim), net_(net),
          centroid(engine_cfg.centroid), seed(engine_cfg.seed)
    {
    }

    const std::string &name() const override { return nm; }
    /** Its own accelerator die — no contention with the front end. */
    const std::string &resource() const override { return res; }
    BackendInference infer(const PointCloud &input,
                           FrameWorkspace *workspace =
                               nullptr) const override;
    const PointNet2 &model() const override { return net_; }

  private:
    PointAccSim sim;
    const PointNet2 &net_;
    CentroidMethod centroid;
    std::uint64_t seed;
    std::string nm = "pointacc";
    std::string res = "pointacc";
};

} // namespace hgpcn

#endif // HGPCN_BACKENDS_POINT_ACC_BACKEND_H
