#include "backends/cpu_brute_backend.h"

#include "core/frame_workspace.h"

#include <utility>

namespace hgpcn
{

BackendInference
CpuBruteBackend::infer(const PointCloud &input,
                       FrameWorkspace *workspace) const
{
    RunOptions opts;
    opts.ds = DsMethod::BruteKnn;
    opts.centroid = centroid;
    opts.seed = seed;
    opts.workspace = workspace;
    if (workspace != nullptr)
        opts.intraOpThreads = workspace->intraOpThreads;
    RunOutput out = net_.run(input, opts);

    BackendInference result;
    result.backend = nm;
    result.dsSec = dev.dsSec(out.trace);
    result.fcSec = dev.fcSec(out.trace);
    result.dsFcOverlap = false; // serial on a general-purpose core
    result.output = std::move(out);
    return result;
}

BatchInference
CpuBruteBackend::inferBatch(std::span<const PointCloud *const> inputs,
                            FrameWorkspace *workspace) const
{
    RunOptions opts;
    opts.ds = DsMethod::BruteKnn;
    opts.centroid = centroid;
    opts.seed = seed;
    opts.workspace = workspace;
    if (workspace != nullptr)
        opts.intraOpThreads = workspace->intraOpThreads;
    std::vector<RunOutput> outs = net_.runBatch(inputs, opts);

    BatchInference batch;
    batch.frames.reserve(outs.size());
    for (RunOutput &out : outs) {
        BackendInference bi;
        bi.backend = nm;
        bi.dsSec = dev.dsSec(out.trace);
        bi.fcSec = dev.fcSec(out.trace);
        bi.dsFcOverlap = false;
        bi.output = std::move(out);
        batch.frames.push_back(std::move(bi));
    }
    std::vector<const BackendInference *> ptrs;
    ptrs.reserve(batch.frames.size());
    for (const BackendInference &f : batch.frames)
        ptrs.push_back(&f);
    batch.batchSec = batchServiceSec(ptrs);
    return batch;
}

double
CpuBruteBackend::batchServiceSec(
    std::span<const BackendInference *const> frames) const
{
    double ds = 0.0;
    std::vector<const ExecutionTrace *> traces;
    traces.reserve(frames.size());
    for (const BackendInference *f : frames) {
        ds += f->dsSec;
        traces.push_back(&f->output.trace);
    }
    return ds + dev.fcSecStacked(traces);
}

} // namespace hgpcn
