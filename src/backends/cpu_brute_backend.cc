#include "backends/cpu_brute_backend.h"

#include "core/frame_workspace.h"

#include <utility>

namespace hgpcn
{

BackendInference
CpuBruteBackend::infer(const PointCloud &input,
                       FrameWorkspace *workspace) const
{
    RunOptions opts;
    opts.ds = DsMethod::BruteKnn;
    opts.centroid = centroid;
    opts.seed = seed;
    opts.workspace = workspace;
    if (workspace != nullptr)
        opts.intraOpThreads = workspace->intraOpThreads;
    RunOutput out = net_.run(input, opts);

    BackendInference result;
    result.backend = nm;
    result.dsSec = dev.dsSec(out.trace);
    result.fcSec = dev.fcSec(out.trace);
    result.dsFcOverlap = false; // serial on a general-purpose core
    result.output = std::move(out);
    return result;
}

} // namespace hgpcn
