#include "backends/mesorasi_backend.h"

#include "core/frame_workspace.h"

#include <utility>

namespace hgpcn
{

BackendInference
MesorasiBackend::infer(const PointCloud &input,
                       FrameWorkspace *workspace) const
{
    RunOptions opts;
    opts.ds = DsMethod::BruteKnn; // the GPU's DS workload
    opts.centroid = centroid;
    opts.seed = seed;
    opts.workspace = workspace;
    if (workspace != nullptr)
        opts.intraOpThreads = workspace->intraOpThreads;
    RunOutput out = net_.run(input, opts);

    const MesorasiResult timed = sim.run(out.trace);
    BackendInference result;
    result.backend = nm;
    result.dsSec = timed.dsSec;
    result.fcSec = timed.fcSec;
    result.dsFcOverlap = true; // DS/FC overlapped (Section VII-D)
    result.output = std::move(out);
    return result;
}

} // namespace hgpcn
