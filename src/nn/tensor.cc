#include "nn/tensor.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{

void
Tensor::randomize(Rng &rng, float scale)
{
    for (auto &v : store)
        v = rng.uniform(-scale, scale);
}

void
Tensor::reluInPlace()
{
    for (auto &v : store)
        v = v > 0.0f ? v : 0.0f;
}

Tensor
Tensor::matmul(const Tensor &a, const Tensor &b)
{
    HGPCN_ASSERT(a.cols() == b.rows(), "matmul shape mismatch: [",
                 a.rows(), ",", a.cols(), "] x [", b.rows(), ",",
                 b.cols(), "]");
    Tensor out(a.rows(), b.cols());
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    const std::size_t n = b.cols();
    for (std::size_t i = 0; i < m; ++i) {
        float *out_row = out.row(i);
        const float *a_row = a.row(i);
        for (std::size_t k = 0; k < kk; ++k) {
            const float a_ik = a_row[k];
            if (a_ik == 0.0f)
                continue;
            const float *b_row = b.row(k);
            for (std::size_t j = 0; j < n; ++j)
                out_row[j] += a_ik * b_row[j];
        }
    }
    return out;
}

void
Tensor::addRowBias(const std::vector<float> &bias)
{
    HGPCN_ASSERT(bias.size() == n_cols, "bias width mismatch");
    for (std::size_t r = 0; r < n_rows; ++r) {
        float *row_ptr = row(r);
        for (std::size_t c = 0; c < n_cols; ++c)
            row_ptr[c] += bias[c];
    }
}

Tensor
Tensor::maxPoolGroups(std::size_t group) const
{
    HGPCN_ASSERT(group >= 1 && n_rows % group == 0,
                 "rows ", n_rows, " not a multiple of group ", group);
    const std::size_t out_rows = n_rows / group;
    Tensor out(out_rows, n_cols);
    for (std::size_t g = 0; g < out_rows; ++g) {
        float *dst = out.row(g);
        const float *first = row(g * group);
        std::copy(first, first + n_cols, dst);
        for (std::size_t i = 1; i < group; ++i) {
            const float *src = row(g * group + i);
            for (std::size_t c = 0; c < n_cols; ++c)
                dst[c] = std::max(dst[c], src[c]);
        }
    }
    return out;
}

std::size_t
Tensor::argmaxRow(std::size_t r) const
{
    HGPCN_ASSERT(n_cols > 0, "empty tensor");
    const float *row_ptr = row(r);
    return static_cast<std::size_t>(
        std::max_element(row_ptr, row_ptr + n_cols) - row_ptr);
}

} // namespace hgpcn
