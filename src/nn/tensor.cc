#include "nn/tensor.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{

void
Tensor::randomize(Rng &rng, float scale)
{
    for (auto &v : store)
        v = rng.uniform(-scale, scale);
}

void
Tensor::reluInPlace()
{
    for (auto &v : store)
        v = v > 0.0f ? v : 0.0f;
}

void
Tensor::reluRows(std::size_t row_begin, std::size_t row_end)
{
    float *p = store.data() + row_begin * n_cols;
    float *const end = store.data() + row_end * n_cols;
    for (; p != end; ++p)
        *p = *p > 0.0f ? *p : 0.0f;
}

/*
 * The GEMM micro-kernel. Register-blocked over 4 rows of `a` so each
 * loaded row of `b` feeds 4 accumulator rows from L1; `restrict`
 * pointers let the compiler keep the j-loop vectorized. Accumulation
 * stays in ascending-k order per output element (one `+=` per k, no
 * split accumulators), so the result is bit-identical to the naive
 * triple loop — blocking reorders memory access, never the floating-
 * point sums.
 */
namespace
{

constexpr std::size_t kRowBlock = 4;

inline void
gemmRowBlock(const float *__restrict a0, const float *__restrict a1,
             const float *__restrict a2, const float *__restrict a3,
             const float *__restrict b, float *__restrict o0,
             float *__restrict o1, float *__restrict o2,
             float *__restrict o3, std::size_t kk, std::size_t n)
{
    std::fill(o0, o0 + n, 0.0f);
    std::fill(o1, o1 + n, 0.0f);
    std::fill(o2, o2 + n, 0.0f);
    std::fill(o3, o3 + n, 0.0f);
    for (std::size_t k = 0; k < kk; ++k) {
        const float *__restrict b_row = b + k * n;
        const float s0 = a0[k];
        const float s1 = a1[k];
        const float s2 = a2[k];
        const float s3 = a3[k];
        for (std::size_t j = 0; j < n; ++j) {
            o0[j] += s0 * b_row[j];
            o1[j] += s1 * b_row[j];
            o2[j] += s2 * b_row[j];
            o3[j] += s3 * b_row[j];
        }
    }
}

inline void
gemmOneRow(const float *__restrict a_row, const float *__restrict b,
           float *__restrict out_row, std::size_t kk, std::size_t n)
{
    std::fill(out_row, out_row + n, 0.0f);
    for (std::size_t k = 0; k < kk; ++k) {
        const float s = a_row[k];
        const float *__restrict b_row = b + k * n;
        for (std::size_t j = 0; j < n; ++j)
            out_row[j] += s * b_row[j];
    }
}

} // namespace

void
Tensor::matmulRowsInto(const Tensor &a, const Tensor &b, Tensor &out,
                       std::size_t row_begin, std::size_t row_end)
{
    HGPCN_ASSERT(a.cols() == b.rows(), "matmul shape mismatch: [",
                 a.rows(), ",", a.cols(), "] x [", b.rows(), ",",
                 b.cols(), "]");
    HGPCN_ASSERT(out.rows() == a.rows() && out.cols() == b.cols(),
                 "matmul output shape mismatch");
    HGPCN_ASSERT(row_begin <= row_end && row_end <= a.rows(),
                 "matmul row range out of bounds");
    const std::size_t kk = a.cols();
    const std::size_t n = b.cols();
    const float *b_data = b.store.data();

    std::size_t i = row_begin;
    for (; i + kRowBlock <= row_end; i += kRowBlock) {
        gemmRowBlock(a.row(i), a.row(i + 1), a.row(i + 2),
                     a.row(i + 3), b_data, out.row(i), out.row(i + 1),
                     out.row(i + 2), out.row(i + 3), kk, n);
    }
    for (; i < row_end; ++i)
        gemmOneRow(a.row(i), b_data, out.row(i), kk, n);
}

void
Tensor::matmulInto(const Tensor &a, const Tensor &b, Tensor &out)
{
    out.resizeUninit(a.rows(), b.cols());
    matmulRowsInto(a, b, out, 0, a.rows());
}

Tensor
Tensor::matmul(const Tensor &a, const Tensor &b)
{
    Tensor out(a.rows(), b.cols());
    matmulRowsInto(a, b, out, 0, a.rows());
    return out;
}

void
Tensor::addRowBias(const std::vector<float> &bias)
{
    addRowBias(bias, 0, n_rows);
}

void
Tensor::addRowBias(const std::vector<float> &bias,
                   std::size_t row_begin, std::size_t row_end)
{
    HGPCN_ASSERT(bias.size() == n_cols, "bias width mismatch");
    const float *__restrict b = bias.data();
    for (std::size_t r = row_begin; r < row_end; ++r) {
        float *__restrict row_ptr = row(r);
        for (std::size_t c = 0; c < n_cols; ++c)
            row_ptr[c] += b[c];
    }
}

Tensor
Tensor::maxPoolGroups(std::size_t group) const
{
    Tensor out;
    maxPoolGroupsInto(group, out);
    return out;
}

void
Tensor::maxPoolGroupsInto(std::size_t group, Tensor &out) const
{
    HGPCN_ASSERT(group >= 1 && n_rows % group == 0,
                 "rows ", n_rows, " not a multiple of group ", group);
    const std::size_t out_rows = n_rows / group;
    out.resizeUninit(out_rows, n_cols);
    for (std::size_t g = 0; g < out_rows; ++g) {
        float *__restrict dst = out.row(g);
        const float *__restrict first = row(g * group);
        std::copy(first, first + n_cols, dst);
        for (std::size_t i = 1; i < group; ++i) {
            const float *__restrict src = row(g * group + i);
            for (std::size_t c = 0; c < n_cols; ++c)
                dst[c] = std::max(dst[c], src[c]);
        }
    }
}

void
Tensor::maxPoolGroupsRowsInto(std::size_t group, std::size_t src_begin,
                              std::size_t src_end, Tensor &out) const
{
    HGPCN_ASSERT(src_begin <= src_end && src_end <= n_rows,
                 "pool row range out of bounds");
    const std::size_t span = src_end - src_begin;
    HGPCN_ASSERT(group >= 1 && span % group == 0,
                 "rows ", span, " not a multiple of group ", group);
    const std::size_t out_rows = span / group;
    out.resizeUninit(out_rows, n_cols);
    for (std::size_t g = 0; g < out_rows; ++g) {
        float *__restrict dst = out.row(g);
        const float *__restrict first = row(src_begin + g * group);
        std::copy(first, first + n_cols, dst);
        for (std::size_t i = 1; i < group; ++i) {
            const float *__restrict src =
                row(src_begin + g * group + i);
            for (std::size_t c = 0; c < n_cols; ++c)
                dst[c] = std::max(dst[c], src[c]);
        }
    }
}

void
Tensor::copyRowsInto(std::size_t src_begin, std::size_t src_end,
                     Tensor &out) const
{
    HGPCN_ASSERT(src_begin <= src_end && src_end <= n_rows,
                 "copy row range out of bounds");
    out.resizeUninit(src_end - src_begin, n_cols);
    if (src_end > src_begin)
        std::copy(row(src_begin), row(src_begin) + (src_end - src_begin) * n_cols,
                  out.row(0));
}

std::size_t
Tensor::argmaxRow(std::size_t r) const
{
    HGPCN_ASSERT(n_cols > 0, "empty tensor");
    const float *row_ptr = row(r);
    return static_cast<std::size_t>(
        std::max_element(row_ptr, row_ptr + n_cols) - row_ptr);
}

} // namespace hgpcn
