/**
 * @file
 * Human-readable rendering of an ExecutionTrace.
 *
 * Turns the per-GEMM / per-gather record of a network run into
 * aligned tables: layer shapes, MAC counts, data-structuring
 * workload and the totals the hardware models consume. Used by the
 * examples and handy when porting a new network onto the engine.
 */

#ifndef HGPCN_NN_TRACE_REPORT_H
#define HGPCN_NN_TRACE_REPORT_H

#include <string>

#include "nn/layer_trace.h"

namespace hgpcn
{

/** Render the GEMM schedule of @p trace as a table. */
std::string renderGemmTable(const ExecutionTrace &trace);

/** Render the data-structuring workload of @p trace as a table. */
std::string renderGatherTable(const ExecutionTrace &trace);

/** Render one-line totals (MACs, distances, sort candidates). */
std::string renderTraceTotals(const ExecutionTrace &trace);

} // namespace hgpcn

#endif // HGPCN_NN_TRACE_REPORT_H
