/**
 * @file
 * Shared MLP blocks (per-point 1x1 convolutions).
 *
 * PointNet++ applies the same small MLP to every point of every
 * gathered neighborhood; on hardware this is one batched GEMM per
 * layer, which is what the trace records.
 *
 * The host execution path is the blocked GEMM kernel of
 * nn/tensor.cc. forwardArena() is the hot-path entry: activations
 * ping-pong between FrameWorkspace arena tensors (no per-frame heap
 * traffic once warm) and rows may be split across intra-op threads —
 * both bit-identical to the plain forward(), since rows are
 * independent and each element keeps its ascending-k accumulation
 * order.
 */

#ifndef HGPCN_NN_MLP_H
#define HGPCN_NN_MLP_H

#include <span>
#include <string>
#include <vector>

#include "nn/layer_trace.h"
#include "nn/tensor.h"

namespace hgpcn
{

class FrameWorkspace;

/** One fully-connected layer with bias. */
struct Linear
{
    Tensor weight; //!< [in, out]
    std::vector<float> bias;

    /** Create with He-scaled random weights. */
    Linear(std::size_t in, std::size_t out, Rng &rng);

    /** @return x * W + b, recording the GEMM into @p trace. */
    Tensor forward(const Tensor &x, const std::string &layer_name,
                   ExecutionTrace &trace) const;

    /**
     * out = x * W + b (+ ReLU when @p relu) into a preallocated
     * tensor, rows split over @p threads. Records the GEMM.
     */
    void forwardInto(const Tensor &x, Tensor &out, bool relu,
                     int threads, const std::string &layer_name,
                     ExecutionTrace &trace) const;

    /**
     * forwardInto() without the trace record — the compute core.
     * The batch-stacked path runs this once over a tall tensor and
     * records per-frame GemmOps itself.
     */
    void forwardIntoUntraced(const Tensor &x, Tensor &out, bool relu,
                             int threads) const;
};

/**
 * A stack of Linear+ReLU layers (ReLU omitted after the final layer
 * when @p final_relu is false).
 */
class Mlp
{
  public:
    /**
     * @param in Input feature width.
     * @param widths Output width of each layer.
     * @param rng Weight initialisation source.
     * @param final_relu Apply ReLU after the last layer too.
     */
    Mlp(std::size_t in, const std::vector<std::size_t> &widths, Rng &rng,
        bool final_relu = true);

    /** @return network output; GEMMs recorded into @p trace. */
    Tensor forward(const Tensor &x, const std::string &name_prefix,
                   ExecutionTrace &trace) const;

    /**
     * Hot-path forward: activations come from @p ws's bump arena
     * and rows are split across @p threads. The returned tensor
     * lives in the arena — valid until the workspace's next
     * beginFrame(). Output values are bit-identical to forward().
     */
    const Tensor &forwardArena(const Tensor &x,
                               const std::string &name_prefix,
                               ExecutionTrace &trace,
                               FrameWorkspace &ws, int threads) const;

    /**
     * Batched forwardArena(): @p stacked holds several frames'
     * rows concatenated (frame f owns frame_rows[f] rows, in batch
     * order). Each layer runs ONCE over the tall tensor — one
     * weight pass serves the whole batch — and the layer's GEMM is
     * recorded into every frame's trace with that frame's own row
     * count, so modeled per-frame numbers are unchanged by
     * construction. Row independence + ascending-k accumulation
     * keep each frame's rows bit-identical to a solo
     * forwardArena() call on that frame alone.
     */
    const Tensor &forwardBatchArena(
        const Tensor &stacked, std::span<const std::size_t> frame_rows,
        std::span<ExecutionTrace *const> traces,
        const std::string &name_prefix, FrameWorkspace &ws,
        int threads) const;

    /** @return output feature width. */
    std::size_t outWidth() const { return out_width; }

  private:
    std::vector<Linear> layers;
    std::size_t out_width;
    bool relu_last;
};

} // namespace hgpcn

#endif // HGPCN_NN_MLP_H
