/**
 * @file
 * Minimal dense 2D tensor for PCN feature computation.
 *
 * The feature computation step of a PCN decomposes into matrix-vector
 * and matrix-matrix products (Section II-A), which is exactly what
 * the FCU/DLA accelerates. This reference implementation runs the
 * same GEMMs on the CPU so outputs are real numbers and layer shapes
 * are extracted from actual execution rather than hand-derived.
 */

#ifndef HGPCN_NN_TENSOR_H
#define HGPCN_NN_TENSOR_H

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hgpcn
{

/** A row-major 2D float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Create a zeroed tensor of @p rows x @p cols. */
    Tensor(std::size_t rows, std::size_t cols)
        : n_rows(rows), n_cols(cols), store(rows * cols, 0.0f)
    {}

    /** @return number of rows. */
    std::size_t rows() const { return n_rows; }

    /** @return number of columns. */
    std::size_t cols() const { return n_cols; }

    /** @return element (r, c). */
    float
    at(std::size_t r, std::size_t c) const
    {
        return store[r * n_cols + c];
    }

    /** @return mutable element (r, c). */
    float &
    at(std::size_t r, std::size_t c)
    {
        return store[r * n_cols + c];
    }

    /** @return pointer to row @p r. */
    const float *row(std::size_t r) const { return &store[r * n_cols]; }

    /** @return mutable pointer to row @p r. */
    float *row(std::size_t r) { return &store[r * n_cols]; }

    /** @return underlying storage. */
    const std::vector<float> &data() const { return store; }

    /**
     * Reshape to [rows, cols] without initializing the contents
     * (unspecified stale values). Backing capacity is reused — the
     * FrameWorkspace arena's steady-state path. Callers must write
     * every element before reading.
     */
    void
    resizeUninit(std::size_t rows, std::size_t cols)
    {
        n_rows = rows;
        n_cols = cols;
        store.resize(rows * cols);
    }

    /** @return float capacity of the backing store. */
    std::size_t capacityFloats() const { return store.capacity(); }

    /** Fill with He-style scaled uniform random weights. */
    void randomize(Rng &rng, float scale);

    /** Element-wise max(0, x) in place. */
    void reluInPlace();

    /**
     * this = a * b (a: [M,K], b: [K,N], this becomes [M,N]).
     */
    static Tensor matmul(const Tensor &a, const Tensor &b);

    /**
     * out = a * b into a preallocated tensor (resized in place, no
     * heap traffic once warm). Row range [row_begin, row_end) of a
     * only — rows are independent, so disjoint ranges may run on
     * different threads. Bit-identical to matmul(): every output
     * element accumulates its K products in the same ascending-k
     * order.
     */
    static void matmulRowsInto(const Tensor &a, const Tensor &b,
                               Tensor &out, std::size_t row_begin,
                               std::size_t row_end);

    /** out = a * b over all rows (out resized in place). */
    static void matmulInto(const Tensor &a, const Tensor &b,
                           Tensor &out);

    /** Add a length-cols() bias vector to every row. */
    void addRowBias(const std::vector<float> &bias);

    /** addRowBias() over rows [row_begin, row_end) only. */
    void addRowBias(const std::vector<float> &bias,
                    std::size_t row_begin, std::size_t row_end);

    /** reluInPlace() over rows [row_begin, row_end) only. */
    void reluRows(std::size_t row_begin, std::size_t row_end);

    /**
     * Column-wise max over groups of @p group rows: input [G*group,
     * C] reduces to [G, C]. This is the PointNet max-pool over each
     * gathered neighborhood.
     */
    Tensor maxPoolGroups(std::size_t group) const;

    /** maxPoolGroups() into a preallocated tensor. */
    void maxPoolGroupsInto(std::size_t group, Tensor &out) const;

    /**
     * maxPoolGroups() over source rows [src_begin, src_end) only;
     * @p out is resized to [(src_end - src_begin) / group, cols].
     * The batched inference path pools each frame's row range of a
     * stacked activation tensor into that frame's own pooled
     * tensor; every pooled element reduces the same rows in the
     * same order as the solo path, so values are bit-identical.
     */
    void maxPoolGroupsRowsInto(std::size_t group, std::size_t src_begin,
                               std::size_t src_end, Tensor &out) const;

    /**
     * Copy source rows [src_begin, src_end) into @p out, resized to
     * [src_end - src_begin, cols]. Peels one frame's activations
     * out of a batch-stacked tensor.
     */
    void copyRowsInto(std::size_t src_begin, std::size_t src_end,
                      Tensor &out) const;

    /** @return index of the maximum element of row @p r. */
    std::size_t argmaxRow(std::size_t r) const;

  private:
    std::size_t n_rows = 0;
    std::size_t n_cols = 0;
    std::vector<float> store;
};

} // namespace hgpcn

#endif // HGPCN_NN_TENSOR_H
