/**
 * @file
 * Minimal dense 2D tensor for PCN feature computation.
 *
 * The feature computation step of a PCN decomposes into matrix-vector
 * and matrix-matrix products (Section II-A), which is exactly what
 * the FCU/DLA accelerates. This reference implementation runs the
 * same GEMMs on the CPU so outputs are real numbers and layer shapes
 * are extracted from actual execution rather than hand-derived.
 */

#ifndef HGPCN_NN_TENSOR_H
#define HGPCN_NN_TENSOR_H

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hgpcn
{

/** A row-major 2D float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Create a zeroed tensor of @p rows x @p cols. */
    Tensor(std::size_t rows, std::size_t cols)
        : n_rows(rows), n_cols(cols), store(rows * cols, 0.0f)
    {}

    /** @return number of rows. */
    std::size_t rows() const { return n_rows; }

    /** @return number of columns. */
    std::size_t cols() const { return n_cols; }

    /** @return element (r, c). */
    float
    at(std::size_t r, std::size_t c) const
    {
        return store[r * n_cols + c];
    }

    /** @return mutable element (r, c). */
    float &
    at(std::size_t r, std::size_t c)
    {
        return store[r * n_cols + c];
    }

    /** @return pointer to row @p r. */
    const float *row(std::size_t r) const { return &store[r * n_cols]; }

    /** @return mutable pointer to row @p r. */
    float *row(std::size_t r) { return &store[r * n_cols]; }

    /** @return underlying storage. */
    const std::vector<float> &data() const { return store; }

    /** Fill with He-style scaled uniform random weights. */
    void randomize(Rng &rng, float scale);

    /** Element-wise max(0, x) in place. */
    void reluInPlace();

    /**
     * this = a * b (a: [M,K], b: [K,N], this becomes [M,N]).
     */
    static Tensor matmul(const Tensor &a, const Tensor &b);

    /** Add a length-cols() bias vector to every row. */
    void addRowBias(const std::vector<float> &bias);

    /**
     * Column-wise max over groups of @p group rows: input [G*group,
     * C] reduces to [G, C]. This is the PointNet max-pool over each
     * gathered neighborhood.
     */
    Tensor maxPoolGroups(std::size_t group) const;

    /** @return index of the maximum element of row @p r. */
    std::size_t argmaxRow(std::size_t r) const;

  private:
    std::size_t n_rows = 0;
    std::size_t n_cols = 0;
    std::vector<float> store;
};

} // namespace hgpcn

#endif // HGPCN_NN_TENSOR_H
