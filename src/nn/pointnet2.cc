#include "nn/pointnet2.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "core/frame_workspace.h"
#include "gather/brute_gatherers.h"
#include "gather/veg_gatherer.h"
#include "knn/spatial_hash_knn.h"
#include "knn/top_k.h"
#include "sampling/fps_sampler.h"

namespace hgpcn
{

const char *
toString(DsMethod method)
{
    switch (method) {
      case DsMethod::BruteKnn:
        return "KNN-brute";
      case DsMethod::BruteBq:
        return "BQ-brute";
      case DsMethod::Veg:
        return "VEG";
      case DsMethod::VegBq:
        return "VEG-BQ";
      case DsMethod::VegStrict:
        return "VEG-strict";
    }
    return "?";
}

PointNet2Spec
PointNet2Spec::classification(std::size_t num_classes)
{
    PointNet2Spec spec;
    spec.name = "Pointnet++(c)";
    spec.inputPoints = 1024;
    spec.numClasses = num_classes;
    spec.segmentation = false;
    spec.sa = {
        {512, 32, 0.2f, {64, 64, 128}},
        {128, 64, 0.4f, {128, 128, 256}},
        {0, 0, 0.0f, {256, 512, 1024}},
    };
    spec.head = {512, 256};
    return spec;
}

PointNet2Spec
PointNet2Spec::partSegmentation(std::size_t num_parts)
{
    PointNet2Spec spec;
    spec.name = "Pointnet++(ps)";
    spec.inputPoints = 2048;
    spec.numClasses = num_parts;
    spec.segmentation = true;
    spec.sa = {
        {512, 32, 0.2f, {64, 64, 128}},
        {128, 64, 0.4f, {128, 128, 256}},
        {0, 0, 0.0f, {256, 512, 1024}},
    };
    spec.fp = {
        {{128, 128, 128}}, // level 1 -> 0
        {{256, 128}},      // level 2 -> 1
        {{256, 256}},      // level 3 -> 2
    };
    spec.head = {128};
    return spec;
}

PointNet2Spec
PointNet2Spec::semanticSegmentation(std::size_t num_classes)
{
    PointNet2Spec spec;
    spec.name = "Pointnet++(s)";
    spec.inputPoints = 4096;
    spec.numClasses = num_classes;
    spec.segmentation = true;
    spec.sa = {
        {1024, 32, 0.1f, {32, 32, 64}},
        {256, 32, 0.2f, {64, 64, 128}},
        {64, 32, 0.4f, {128, 128, 256}},
        {16, 32, 0.8f, {256, 256, 512}},
    };
    spec.fp = {
        {{128, 128, 128}}, // level 1 -> 0
        {{256, 128}},      // level 2 -> 1
        {{256, 256}},      // level 3 -> 2
        {{256, 256}},      // level 4 -> 3
    };
    spec.head = {128};
    return spec;
}

PointNet2Spec
PointNet2Spec::outdoorSegmentation(std::size_t num_classes)
{
    PointNet2Spec spec = semanticSegmentation(num_classes);
    spec.name = "Pointnet++(s)-kitti";
    spec.inputPoints = 16384;
    spec.sa[0].npoint = 4096;
    spec.sa[1].npoint = 1024;
    spec.sa[2].npoint = 256;
    spec.sa[3].npoint = 64;
    return spec;
}

PointNet2Spec
PointNet2Spec::edgeClassification(std::size_t num_classes)
{
    PointNet2Spec spec;
    spec.name = "Pointnet++(e)";
    spec.inputPoints = 256;
    spec.numClasses = num_classes;
    spec.segmentation = false;
    // Narrow fan-out (npoint * k <= 64 rows per GEMM) with wide
    // MLPs: solo FCU cost is dominated by per-tile fill/drain and
    // the per-layer weight fetch, both of which amortize across a
    // micro-batch.
    spec.sa = {
        {16, 4, 0.3f, {64, 128, 128}},
        {8, 4, 0.6f, {128, 256}},
        {0, 0, 0.0f, {256, 512}},
    };
    spec.head = {256, 128};
    return spec;
}

PointNet2::PointNet2(const PointNet2Spec &spec, std::uint64_t weight_seed)
    : arch(spec)
{
    HGPCN_ASSERT(!arch.sa.empty(), "network needs at least one SA layer");
    if (arch.segmentation) {
        HGPCN_ASSERT(arch.fp.size() == arch.sa.size(),
                     "segmentation nets need one FP per SA level");
    }

    Rng rng(weight_seed);
    const std::size_t levels = arch.sa.size();

    // Feature width entering each level: level 0 is the input cloud.
    std::vector<std::size_t> width(levels + 1);
    width[0] = arch.inputFeatureDim;
    for (std::size_t i = 0; i < levels; ++i) {
        const std::size_t in = 3 + width[i];
        sa_mlps.emplace_back(in, arch.sa[i].mlp, rng);
        width[i + 1] = arch.sa[i].mlp.back();
    }

    std::size_t head_in = width[levels];
    if (arch.segmentation) {
        // FP t fuses the features propagated down from level t+1
        // (the output of fp[t+1], or of the top SA for t = L-1) with
        // the skip features of level t. All widths are known from
        // the spec, so weights are created in forward order.
        fp_mlps.reserve(levels);
        for (std::size_t t = 0; t < levels; ++t) {
            const std::size_t from_above =
                t + 1 == levels ? width[levels]
                                : arch.fp[t + 1].mlp.back();
            fp_mlps.emplace_back(from_above + width[t],
                                 arch.fp[t].mlp, rng);
        }
        head_in = arch.fp[0].mlp.back();
    }

    std::vector<std::size_t> head_widths = arch.head;
    head_widths.push_back(arch.numClasses);
    head_mlp = std::make_unique<Mlp>(head_in, head_widths, rng,
                                     /*final_relu=*/false);
}

namespace
{

/** Pick @p m distinct indices out of @p n uniformly, into a
 * workspace buffer. */
std::vector<PointIndex> &
randomCentroids(std::size_t n, std::size_t m, Rng &rng,
                FrameWorkspace &ws)
{
    std::vector<PointIndex> &all = ws.indices(n);
    std::iota(all.begin(), all.end(), 0u);
    for (std::size_t i = 0; i < m; ++i) {
        const std::size_t j = i + rng.below(n - i);
        std::swap(all[i], all[j]);
    }
    all.resize(m);
    return all;
}

/** Build a coordinates-only PointCloud from positions. */
PointCloud
cloudFromPositions(std::span<const Vec3> positions)
{
    PointCloud cloud;
    cloud.reserve(positions.size());
    for (const Vec3 &p : positions)
        cloud.add(p);
    return cloud;
}

/** Inverse of an index permutation, into a workspace buffer. */
std::vector<PointIndex> &
invertPermutation(const std::vector<PointIndex> &perm,
                  FrameWorkspace &ws)
{
    std::vector<PointIndex> &inv = ws.indices(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        inv[perm[i]] = static_cast<PointIndex>(i);
    return inv;
}

/**
 * Brute-force k-NN of arbitrary query coordinates against a cloud
 * (queries need not be cloud members). The oracle path behind
 * opts.fastKnn == false; the spatial-hash index reproduces it
 * bit for bit. Distance workload is recorded into @p stats.
 */
GatherResult
bruteNnAt(std::span<const Vec3> points, std::span<const Vec3> queries,
          std::size_t k, StatSet &stats)
{
    const std::size_t n = points.size();
    GatherResult result;
    result.k = k;
    result.neighbors.reserve(queries.size() * k);
    std::vector<ScoredNeighbor> scored(n);
    for (const Vec3 &q : queries) {
        for (std::size_t i = 0; i < n; ++i) {
            scored[i] = {points[i].distSq(q),
                         static_cast<PointIndex>(i)};
        }
        selectTopK(scored, k);
        for (std::size_t j = 0; j < k; ++j)
            result.neighbors.push_back(scored[j].second);
    }
    stats.add("gather.distance_computations", queries.size() * n);
    stats.add("gather.sort_candidates", queries.size() * n);
    return result;
}

} // namespace

PointNet2::SaDsResult
PointNet2::runSaDataStructuring(std::size_t layer, const Level &in,
                                const RunOptions &opts, Rng &rng,
                                const Octree *reusable_tree,
                                ExecutionTrace &trace,
                                FrameWorkspace &ws, Tensor &grouped,
                                std::size_t base_row) const
{
    const SaLayerSpec &spec = arch.sa[layer];
    const std::size_t n = in.positions.size();
    const std::size_t c_in = in.features->cols();
    const std::string name = "sa" + std::to_string(layer);

    SaDsResult ds;
    if (spec.npoint == 0) {
        // Group-all: one neighborhood holding every point, centered
        // at the centroid of the level.
        Vec3 mean{0, 0, 0};
        for (const Vec3 &p : in.positions)
            mean += p;
        mean = mean / static_cast<float>(n);
        for (std::size_t i = 0; i < n; ++i) {
            float *row = grouped.row(base_row + i);
            const Vec3 rel = in.positions[i] - mean;
            row[0] = rel.x;
            row[1] = rel.y;
            row[2] = rel.z;
            for (std::size_t c = 0; c < c_in; ++c)
                row[3 + c] = in.features->at(i, c);
        }
        std::vector<Vec3> &center = ws.positions(1);
        center[0] = mean;
        ds.rows = n;
        ds.group = n;
        ds.nextPositions = center;
        return ds;
    }

    HGPCN_ASSERT(spec.npoint <= n, "SA", layer, ": npoint ",
                 spec.npoint, " exceeds level size ", n);
    HGPCN_ASSERT(spec.k >= 1 && spec.k <= n, "SA", layer, ": k ",
                 spec.k, " vs level size ", n);

    // --- Central point selection (Fig. 2, step 1). -------------------
    std::vector<PointIndex> *centroid_buf = nullptr;
    if (opts.centroid == CentroidMethod::Random) {
        centroid_buf = &randomCentroids(n, spec.npoint, rng, ws);
    } else {
        PointCloud level_cloud = cloudFromPositions(in.positions);
        FpsSampler fps(opts.seed + layer);
        std::vector<PointIndex> &buf = ws.indices(spec.npoint);
        SampleResult fps_result =
            fps.sample(level_cloud, spec.npoint, &ws);
        std::copy(fps_result.indices.begin(), fps_result.indices.end(),
                  buf.begin());
        centroid_buf = &buf;
    }
    const std::vector<PointIndex> &centroids = *centroid_buf;

    // --- Data structuring (Fig. 2, step 2). --------------------------
    GatherOp op;
    op.layer = name;
    op.method = toString(opts.ds);
    op.centroids = spec.npoint;
    op.k = spec.k;
    op.inputPoints = n;

    GatherResult gathered;
    const bool veg = opts.ds == DsMethod::Veg ||
                     opts.ds == DsMethod::VegBq ||
                     opts.ds == DsMethod::VegStrict;
    // Neighbor/centroid indices below are all in the *level* index
    // space; VEG works in the octree's reordered space, so map on the
    // way in and out.
    if (veg) {
        const Octree *tree = nullptr;
        Octree local_tree;
        if (layer == 0 && reusable_tree) {
            tree = reusable_tree;
        } else {
            PointCloud level_cloud = cloudFromPositions(in.positions);
            Octree::Config tree_cfg;
            tree_cfg.maxDepth = 12;
            local_tree = Octree::build(level_cloud, tree_cfg);
            op.stats.merge(local_tree.buildStats());
            tree = &local_tree;
        }
        const std::vector<PointIndex> &perm = tree->permutation();
        const std::vector<PointIndex> &inv = invertPermutation(perm, ws);
        std::vector<PointIndex> &centrals_reordered =
            ws.indices(centroids.size());
        for (std::size_t i = 0; i < centroids.size(); ++i)
            centrals_reordered[i] = inv[centroids[i]];

        if (opts.ds == DsMethod::VegBq) {
            VegBallQuery::Config bq_cfg;
            bq_cfg.radius = spec.radius;
            VegBallQuery bq(*tree, bq_cfg);
            gathered = bq.gather(centrals_reordered, spec.k);
        } else {
            VegKnn::Config knn_cfg;
            knn_cfg.mode = opts.ds == DsMethod::VegStrict
                               ? VegMode::Strict
                               : VegMode::Paper;
            knn_cfg.seed = opts.seed;
            VegKnn knn(*tree, knn_cfg, &ws);
            gathered = knn.gather(centrals_reordered, spec.k);
        }
        // Map neighbors back to level index space.
        for (auto &idx : gathered.neighbors)
            idx = perm[idx];
    } else if (opts.ds == DsMethod::BruteBq) {
        PointCloud level_cloud = cloudFromPositions(in.positions);
        BruteBallQuery bq(level_cloud, spec.radius);
        gathered = bq.gather(centroids, spec.k);
    } else if (opts.fastKnn) {
        // Exact spatial-hash KNN on the host; the modeled device
        // still runs the full scan, so the trace carries the brute
        // workload (knn/spatial_hash_knn.h).
        SpatialHashKnn index(in.positions, &ws);
        gathered = index.gather(
            centroids, spec.k, SpatialHashKnn::Accounting::ModeledBrute);
    } else {
        PointCloud level_cloud = cloudFromPositions(in.positions);
        BruteKnn knn(level_cloud);
        gathered = knn.gather(centroids, spec.k);
    }
    op.stats.merge(gathered.stats);
    op.traces = std::move(gathered.traces);
    trace.gathers.push_back(std::move(op));

    // --- Grouped-row assembly (feeds Fig. 2, step 3). ----------------
    for (std::size_t m = 0; m < spec.npoint; ++m) {
        const Vec3 center = in.positions[centroids[m]];
        const auto neigh = gathered.of(m);
        for (std::size_t j = 0; j < spec.k; ++j) {
            float *row = grouped.row(base_row + m * spec.k + j);
            const PointIndex pi = neigh[j];
            const Vec3 rel = in.positions[pi] - center;
            row[0] = rel.x;
            row[1] = rel.y;
            row[2] = rel.z;
            for (std::size_t c = 0; c < c_in; ++c)
                row[3 + c] = in.features->at(pi, c);
        }
    }

    std::vector<Vec3> &next_pos = ws.positions(spec.npoint);
    for (std::size_t i = 0; i < spec.npoint; ++i)
        next_pos[i] = in.positions[centroids[i]];
    ds.rows = spec.npoint * spec.k;
    ds.group = spec.k;
    ds.nextPositions = next_pos;
    return ds;
}

PointNet2::Level
PointNet2::runSaLayer(std::size_t layer, const Level &in,
                      const RunOptions &opts, Rng &rng,
                      const Octree *reusable_tree,
                      ExecutionTrace &trace, FrameWorkspace &ws) const
{
    const SaLayerSpec &spec = arch.sa[layer];
    const std::size_t rows = spec.npoint == 0
                                 ? in.positions.size()
                                 : spec.npoint * spec.k;
    const std::string name = "sa" + std::to_string(layer);
    Tensor &grouped = ws.tensor(rows, 3 + in.features->cols());
    const SaDsResult ds = runSaDataStructuring(
        layer, in, opts, rng, reusable_tree, trace, ws, grouped, 0);
    const Tensor &out = sa_mlps[layer].forwardArena(
        grouped, name, trace, ws, opts.intraOpThreads);

    Level next;
    next.positions = ds.nextPositions;
    Tensor &pooled = ws.tensor(ds.rows / ds.group, out.cols());
    out.maxPoolGroupsInto(ds.group, pooled);
    next.features = &pooled;
    return next;
}

void
PointNet2::runFpDataStructuring(std::size_t layer, const Level &fine,
                                const Level &coarse,
                                const RunOptions &opts,
                                ExecutionTrace &trace,
                                FrameWorkspace &ws, Tensor &fused,
                                std::size_t base_row) const
{
    const std::size_t n_f = fine.positions.size();
    const std::size_t n_c = coarse.positions.size();
    const std::size_t c_coarse = coarse.features->cols();
    const std::size_t c_skip = fine.features->cols();
    const std::string name = "fp" + std::to_string(layer);
    const std::size_t k = std::min<std::size_t>(3, n_c);

    // Three-nearest-neighbor interpolation: another data-structuring
    // workload (accounted like SA gathers; PointACC's Mapping Unit
    // also serves these lookups).
    GatherOp op;
    op.layer = name;
    op.method = toString(opts.ds);
    op.centroids = n_f;
    op.k = k;
    op.inputPoints = n_c;

    GatherResult nn;

    const bool veg = (opts.ds == DsMethod::Veg ||
                      opts.ds == DsMethod::VegBq ||
                      opts.ds == DsMethod::VegStrict) &&
                     n_c > 4 * k;
    if (veg) {
        // VEG-strict keeps interpolation exact while the octree
        // bounds the search locally (the DSU serves FP lookups too).
        PointCloud coarse_cloud = cloudFromPositions(coarse.positions);
        Octree::Config tree_cfg;
        tree_cfg.maxDepth = 12;
        Octree tree = Octree::build(coarse_cloud, tree_cfg);
        op.stats.merge(tree.buildStats());
        VegKnn::Config knn_cfg;
        knn_cfg.mode = VegMode::Strict;
        VegKnn knn(tree, knn_cfg, &ws);
        nn = knn.gatherAt(fine.positions, k);
        // Back to coarse-level index space.
        for (auto &idx : nn.neighbors)
            idx = tree.permutation()[idx];
        op.stats.merge(nn.stats);
    } else if (opts.fastKnn) {
        SpatialHashKnn index(coarse.positions, &ws);
        nn = index.gatherAt(fine.positions, k,
                            SpatialHashKnn::Accounting::ModeledBrute);
        op.stats.merge(nn.stats);
    } else {
        nn = bruteNnAt(coarse.positions, fine.positions, k, op.stats);
    }
    op.traces = std::move(nn.traces);
    trace.gathers.push_back(std::move(op));

    // Inverse-distance-weighted feature interpolation.
    for (std::size_t i = 0; i < n_f; ++i) {
        const auto neigh = nn.of(i);
        float weights[3] = {0, 0, 0};
        float total = 0.0f;
        for (std::size_t j = 0; j < k; ++j) {
            const float d =
                coarse.positions[neigh[j]].distSq(fine.positions[i]);
            weights[j] = 1.0f / (d + 1e-8f);
            total += weights[j];
        }
        float *row = fused.row(base_row + i);
        for (std::size_t c = 0; c < c_coarse; ++c) {
            float v = 0.0f;
            for (std::size_t j = 0; j < k; ++j)
                v += weights[j] / total *
                     coarse.features->at(neigh[j], c);
            row[c] = v;
        }
        for (std::size_t c = 0; c < c_skip; ++c)
            row[c_coarse + c] = fine.features->at(i, c);
    }
}

const Tensor &
PointNet2::runFpLayer(std::size_t layer, const Level &fine,
                      const Level &coarse, const RunOptions &opts,
                      ExecutionTrace &trace, FrameWorkspace &ws) const
{
    const std::string name = "fp" + std::to_string(layer);
    Tensor &fused = ws.tensor(fine.positions.size(),
                              coarse.features->cols() +
                                  fine.features->cols());
    runFpDataStructuring(layer, fine, coarse, opts, trace, ws, fused,
                         0);
    return fp_mlps[layer].forwardArena(fused, name, trace, ws,
                                       opts.intraOpThreads);
}

RunOutput
PointNet2::run(const PointCloud &input, const RunOptions &opts) const
{
    HGPCN_ASSERT(!input.empty(), "empty input cloud");
    HGPCN_ASSERT(input.featureDim() == arch.inputFeatureDim,
                 "input feature width ", input.featureDim(),
                 " != spec width ", arch.inputFeatureDim);
    HGPCN_ASSERT(opts.intraOpThreads >= 1, "intraOpThreads must be >= 1");
    if (opts.inputOctree) {
        HGPCN_ASSERT(opts.inputOctree->reorderedCloud().size() ==
                         input.size(),
                     "input octree does not match the input cloud");
    }

    // Private fallback arena: same path, per-call allocation.
    FrameWorkspace local_ws;
    FrameWorkspace &ws =
        opts.workspace != nullptr ? *opts.workspace : local_ws;
    ws.beginFrame();

    RunOutput out;
    Rng rng(opts.seed);

    std::vector<Level> levels;
    levels.reserve(arch.sa.size() + 1);
    {
        Level l0;
        l0.positions = input.positions();
        Tensor &f0 = ws.tensor(input.size(), arch.inputFeatureDim);
        for (std::size_t i = 0; i < input.size(); ++i) {
            const auto f = input.feature(static_cast<PointIndex>(i));
            for (std::size_t c = 0; c < f.size(); ++c)
                f0.at(i, c) = f[c];
        }
        l0.features = &f0;
        levels.push_back(l0);
    }

    for (std::size_t i = 0; i < arch.sa.size(); ++i) {
        levels.push_back(runSaLayer(i, levels.back(), opts, rng,
                                    opts.inputOctree, out.trace, ws));
    }

    if (!arch.segmentation) {
        out.logits = head_mlp->forwardArena(*levels.back().features,
                                            "head", out.trace, ws,
                                            opts.intraOpThreads);
    } else {
        const Tensor *carried = levels.back().features;
        for (std::size_t t = arch.sa.size(); t-- > 0;) {
            Level coarse;
            coarse.positions = levels[t + 1].positions;
            coarse.features = carried;
            carried = &runFpLayer(t, levels[t], coarse, opts,
                                  out.trace, ws);
        }
        out.logits = head_mlp->forwardArena(*carried, "head",
                                            out.trace, ws,
                                            opts.intraOpThreads);
    }

    out.labels.resize(out.logits.rows());
    for (std::size_t r = 0; r < out.logits.rows(); ++r)
        out.labels[r] = out.logits.argmaxRow(r);
    return out;
}

namespace
{

/** Copy all of @p src into @p dst starting at row @p dst_begin. */
void
stackRows(const Tensor &src, Tensor &dst, std::size_t dst_begin)
{
    HGPCN_ASSERT(src.cols() == dst.cols() &&
                     dst_begin + src.rows() <= dst.rows(),
                 "stacked-row copy shape mismatch");
    if (src.rows() > 0)
        std::copy(src.row(0), src.row(0) + src.rows() * src.cols(),
                  dst.row(dst_begin));
}

} // namespace

std::vector<RunOutput>
PointNet2::runBatch(std::span<const PointCloud *const> inputs,
                    const RunOptions &opts) const
{
    HGPCN_ASSERT(!inputs.empty(), "empty batch");
    HGPCN_ASSERT(opts.inputOctree == nullptr,
                 "batched inference takes no shared input octree "
                 "(frames come from different sensors)");
    HGPCN_ASSERT(opts.intraOpThreads >= 1,
                 "intraOpThreads must be >= 1");
    for (const PointCloud *input : inputs) {
        HGPCN_ASSERT(input != nullptr && !input->empty(),
                     "empty input cloud in batch");
        HGPCN_ASSERT(input->featureDim() == arch.inputFeatureDim,
                     "input feature width ", input->featureDim(),
                     " != spec width ", arch.inputFeatureDim);
    }

    FrameWorkspace local_ws;
    FrameWorkspace &ws =
        opts.workspace != nullptr ? *opts.workspace : local_ws;
    ws.beginFrame();

    const std::size_t batch = inputs.size();
    std::vector<RunOutput> outs(batch);
    std::vector<ExecutionTrace *> traces(batch);
    // One Rng per frame, each seeded like a solo run, so central-
    // point selection is independent of batch composition.
    std::vector<Rng> rngs;
    rngs.reserve(batch);
    for (std::size_t f = 0; f < batch; ++f) {
        traces[f] = &outs[f].trace;
        rngs.emplace_back(opts.seed);
    }
    const std::span<ExecutionTrace *const> trace_span(traces);

    std::vector<std::vector<Level>> levels(batch);
    for (std::size_t f = 0; f < batch; ++f) {
        const PointCloud &input = *inputs[f];
        Level l0;
        l0.positions = input.positions();
        Tensor &f0 = ws.tensor(input.size(), arch.inputFeatureDim);
        for (std::size_t i = 0; i < input.size(); ++i) {
            const auto feat = input.feature(static_cast<PointIndex>(i));
            for (std::size_t c = 0; c < feat.size(); ++c)
                f0.at(i, c) = feat[c];
        }
        l0.features = &f0;
        levels[f].reserve(arch.sa.size() + 1);
        levels[f].push_back(l0);
    }

    std::vector<std::size_t> frame_rows(batch), offsets(batch);
    std::vector<SaDsResult> ds(batch);

    for (std::size_t i = 0; i < arch.sa.size(); ++i) {
        const SaLayerSpec &spec = arch.sa[i];
        const std::string name = "sa" + std::to_string(i);
        const std::size_t c_in = levels[0].back().features->cols();
        std::size_t total = 0;
        for (std::size_t f = 0; f < batch; ++f) {
            HGPCN_ASSERT(levels[f].back().features->cols() == c_in,
                         "batch mixes feature widths at SA", i);
            frame_rows[f] =
                spec.npoint == 0 ? levels[f].back().positions.size()
                                 : spec.npoint * spec.k;
            offsets[f] = total;
            total += frame_rows[f];
        }
        Tensor &stacked = ws.tensor(total, 3 + c_in);
        for (std::size_t f = 0; f < batch; ++f)
            ds[f] = runSaDataStructuring(
                i, levels[f].back(), opts, rngs[f],
                /*reusable_tree=*/nullptr, outs[f].trace, ws, stacked,
                offsets[f]);
        const Tensor &mlp_out = sa_mlps[i].forwardBatchArena(
            stacked, frame_rows, trace_span, name, ws,
            opts.intraOpThreads);
        for (std::size_t f = 0; f < batch; ++f) {
            Level next;
            next.positions = ds[f].nextPositions;
            Tensor &pooled = ws.tensor(frame_rows[f] / ds[f].group,
                                       mlp_out.cols());
            mlp_out.maxPoolGroupsRowsInto(ds[f].group, offsets[f],
                                          offsets[f] + frame_rows[f],
                                          pooled);
            next.features = &pooled;
            levels[f].push_back(next);
        }
    }

    std::vector<const Tensor *> head_in(batch);
    for (std::size_t f = 0; f < batch; ++f)
        head_in[f] = levels[f].back().features;

    if (arch.segmentation) {
        for (std::size_t t = arch.sa.size(); t-- > 0;) {
            const std::string name = "fp" + std::to_string(t);
            const std::size_t c =
                head_in[0]->cols() + levels[0][t].features->cols();
            std::size_t total = 0;
            for (std::size_t f = 0; f < batch; ++f) {
                HGPCN_ASSERT(head_in[f]->cols() +
                                     levels[f][t].features->cols() ==
                                 c,
                             "batch mixes feature widths at FP", t);
                frame_rows[f] = levels[f][t].positions.size();
                offsets[f] = total;
                total += frame_rows[f];
            }
            Tensor &fused = ws.tensor(total, c);
            for (std::size_t f = 0; f < batch; ++f) {
                Level coarse;
                coarse.positions = levels[f][t + 1].positions;
                coarse.features = head_in[f];
                runFpDataStructuring(t, levels[f][t], coarse, opts,
                                     outs[f].trace, ws, fused,
                                     offsets[f]);
            }
            const Tensor &mlp_out = fp_mlps[t].forwardBatchArena(
                fused, frame_rows, trace_span, name, ws,
                opts.intraOpThreads);
            for (std::size_t f = 0; f < batch; ++f) {
                Tensor &carried =
                    ws.tensor(frame_rows[f], mlp_out.cols());
                mlp_out.copyRowsInto(offsets[f],
                                     offsets[f] + frame_rows[f],
                                     carried);
                head_in[f] = &carried;
            }
        }
    }

    {
        const std::size_t width = head_in[0]->cols();
        std::size_t total = 0;
        for (std::size_t f = 0; f < batch; ++f) {
            HGPCN_ASSERT(head_in[f]->cols() == width,
                         "batch mixes head input widths");
            frame_rows[f] = head_in[f]->rows();
            offsets[f] = total;
            total += frame_rows[f];
        }
        Tensor &stacked = ws.tensor(total, width);
        for (std::size_t f = 0; f < batch; ++f)
            stackRows(*head_in[f], stacked, offsets[f]);
        const Tensor &logits = head_mlp->forwardBatchArena(
            stacked, frame_rows, trace_span, "head", ws,
            opts.intraOpThreads);
        for (std::size_t f = 0; f < batch; ++f) {
            logits.copyRowsInto(offsets[f], offsets[f] + frame_rows[f],
                                outs[f].logits);
            outs[f].labels.resize(outs[f].logits.rows());
            for (std::size_t r = 0; r < outs[f].logits.rows(); ++r)
                outs[f].labels[r] = outs[f].logits.argmaxRow(r);
        }
    }
    return outs;
}

} // namespace hgpcn
