/**
 * @file
 * Execution trace of a PCN inference pass.
 *
 * The reference (CPU) model execution records every GEMM it performs
 * plus the data-structuring workload of every layer. The hardware
 * simulators replay this trace: the FCU/DLA maps GemmOps onto the
 * systolic array, the DSU maps the gather traces onto its pipeline,
 * and the GPU/CPU device models convert the same numbers into
 * baseline latencies. One trace, many timing models — which is what
 * makes the paper's cross-architecture comparison consistent.
 */

#ifndef HGPCN_NN_LAYER_TRACE_H
#define HGPCN_NN_LAYER_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "gather/gatherer.h"

namespace hgpcn
{

/** One dense product: [M,K] x [K,N]. */
struct GemmOp
{
    std::string layer; //!< human-readable layer name
    std::uint64_t m = 0;
    std::uint64_t k = 0;
    std::uint64_t n = 0;

    /** @return multiply-accumulate count. */
    std::uint64_t macs() const { return m * k * n; }
};

/** Data-structuring workload of one layer. */
struct GatherOp
{
    std::string layer;      //!< layer name
    std::string method;     //!< gatherer name ("KNN-brute", "VEG", ..)
    std::uint64_t centroids = 0;
    std::uint64_t k = 0;
    std::uint64_t inputPoints = 0; //!< size of the searched cloud
    StatSet stats;                 //!< gatherer counters
    std::vector<VegTrace> traces;  //!< per-centroid VEG traces
};

/** Full inference trace. */
struct ExecutionTrace
{
    std::vector<GemmOp> gemms;
    std::vector<GatherOp> gathers;

    /** @return total MACs over all GEMMs. */
    std::uint64_t
    totalMacs() const
    {
        std::uint64_t total = 0;
        for (const auto &g : gemms)
            total += g.macs();
        return total;
    }

    /** @return total distance computations over all gathers. */
    std::uint64_t
    totalGatherDistances() const
    {
        std::uint64_t total = 0;
        for (const auto &g : gathers)
            total += g.stats.get("gather.distance_computations");
        return total;
    }

    /** @return total candidates entering top-K sorters. */
    std::uint64_t
    totalSortCandidates() const
    {
        std::uint64_t total = 0;
        for (const auto &g : gathers)
            total += g.stats.get("gather.sort_candidates");
        return total;
    }

    /** Append another trace (e.g. a sub-module's). */
    void
    append(const ExecutionTrace &other)
    {
        gemms.insert(gemms.end(), other.gemms.begin(),
                     other.gemms.end());
        gathers.insert(gathers.end(), other.gathers.begin(),
                       other.gathers.end());
    }
};

} // namespace hgpcn

#endif // HGPCN_NN_LAYER_TRACE_H
