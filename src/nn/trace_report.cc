#include "nn/trace_report.h"

#include <sstream>

#include "common/table_printer.h"

namespace hgpcn
{

std::string
renderGemmTable(const ExecutionTrace &trace)
{
    TablePrinter table({"layer", "M", "K", "N", "MACs"});
    for (const GemmOp &op : trace.gemms) {
        table.addRow({op.layer, std::to_string(op.m),
                      std::to_string(op.k), std::to_string(op.n),
                      TablePrinter::fmtCount(op.macs())});
    }
    return table.render();
}

std::string
renderGatherTable(const ExecutionTrace &trace)
{
    TablePrinter table({"layer", "method", "centroids", "k",
                        "searched", "distances", "sort cand."});
    for (const GatherOp &op : trace.gathers) {
        table.addRow(
            {op.layer, op.method, std::to_string(op.centroids),
             std::to_string(op.k), std::to_string(op.inputPoints),
             TablePrinter::fmtCount(
                 op.stats.get("gather.distance_computations")),
             TablePrinter::fmtCount(
                 op.stats.get("gather.sort_candidates"))});
    }
    return table.render();
}

std::string
renderTraceTotals(const ExecutionTrace &trace)
{
    std::ostringstream oss;
    oss << "totals: " << TablePrinter::fmtCount(trace.totalMacs())
        << " MACs, "
        << TablePrinter::fmtCount(trace.totalGatherDistances())
        << " DS distances, "
        << TablePrinter::fmtCount(trace.totalSortCandidates())
        << " sort candidates";
    return oss.str();
}

} // namespace hgpcn
