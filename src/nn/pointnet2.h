/**
 * @file
 * PointNet++ [22] reference models.
 *
 * The paper's backend PCN for all four tasks (Table I):
 * Pointnet++(c) for ModelNet40 classification, Pointnet++(ps) for
 * ShapeNet part segmentation, Pointnet++(s) for S3DIS / KITTI
 * semantic segmentation. Each Set-Abstraction (SA) layer performs the
 * three-step loop of Fig. 2 — central point selection, data
 * structuring (KNN or Ball Query), feature computation (shared MLP +
 * max pool) — and Feature-Propagation (FP) layers interpolate
 * features back for segmentation heads.
 *
 * Weights are seeded-random: every evaluated quantity in the paper is
 * latency, and the layer shapes (which drive the FCU) are identical
 * to a trained network's. Execution is real — outputs are computed,
 * permutation-invariance holds, and the ExecutionTrace records every
 * GEMM and gather for the hardware simulators.
 */

#ifndef HGPCN_NN_POINTNET2_H
#define HGPCN_NN_POINTNET2_H

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nn/layer_trace.h"
#include "nn/mlp.h"
#include "octree/octree.h"

namespace hgpcn
{

/** How SA layers pick their central points. */
enum class CentroidMethod
{
    Random, //!< random picking (the Mesorasi-compatible mode the
            //!< paper uses for the Fig. 14 comparison)
    Fps,    //!< farthest point sampling (standard PointNet++)
};

/** Which data-structuring method SA/FP layers use. */
enum class DsMethod
{
    BruteKnn,  //!< full-scan KNN (CPU/GPU/PointACC/Mesorasi path)
    BruteBq,   //!< full-scan Ball Query
    Veg,       //!< Voxel-Expanded Gathering (HgPCN DSU path)
    VegBq,     //!< VEG-backed Ball Query
    VegStrict, //!< provably exact VEG (ablation)
};

/** @return printable name of a DsMethod. */
const char *toString(DsMethod method);

/** One Set-Abstraction level. */
struct SaLayerSpec
{
    std::size_t npoint; //!< central points; 0 means group-all
    std::size_t k;      //!< neighbors per centroid
    float radius;       //!< ball-query radius (cloud units)
    std::vector<std::size_t> mlp; //!< shared-MLP widths
};

/** One Feature-Propagation level. */
struct FpLayerSpec
{
    std::vector<std::size_t> mlp; //!< unit-MLP widths
};

/** Complete network description. */
struct PointNet2Spec
{
    std::string name;
    std::size_t inputPoints = 0;
    std::size_t inputFeatureDim = 0; //!< extra channels beside xyz
    std::size_t numClasses = 0;
    bool segmentation = false;
    std::vector<SaLayerSpec> sa;
    std::vector<FpLayerSpec> fp; //!< one per non-group-all SA level
    std::vector<std::size_t> head; //!< hidden widths of the head

    /** Pointnet++(c), ModelNet40-class config (1024 points). */
    static PointNet2Spec classification(std::size_t num_classes = 40);

    /** Pointnet++(ps), ShapeNet part segmentation (2048 points). */
    static PointNet2Spec partSegmentation(std::size_t num_parts = 50);

    /** Pointnet++(s), S3DIS semantic segmentation (4096 points). */
    static PointNet2Spec semanticSegmentation(
        std::size_t num_classes = 13);

    /** Pointnet++(s) scaled for KITTI outdoor frames (16384). */
    static PointNet2Spec outdoorSegmentation(
        std::size_t num_classes = 4);

    /**
     * Compact edge-node classifier (256 points, narrow SA fan-out,
     * wide MLPs). Its GEMMs have small row counts (m <= 64), so
     * per-tile systolic fill/drain and the per-layer weight pass
     * dominate solo cost — the regime where cross-sensor
     * micro-batching pays (bench/batching_throughput.cc).
     */
    static PointNet2Spec edgeClassification(
        std::size_t num_classes = 16);
};

class FrameWorkspace;

/** Inference options. */
struct RunOptions
{
    CentroidMethod centroid = CentroidMethod::Random;
    DsMethod ds = DsMethod::BruteKnn;
    std::uint64_t seed = 7;
    /**
     * Pre-built octree over the input cloud (the Pre-processing
     * Engine's tree, reused by the DSU per Section VIII "the VEG
     * method can reuse the built Octree to amortize the overhead").
     * Only consulted for VEG methods at the first SA level; its
     * reordered cloud must be the cloud passed to run().
     */
    const Octree *inputOctree = nullptr;

    /**
     * Reusable scratch arena (core/frame_workspace.h). When null,
     * run() uses a private per-call workspace — same results, plus
     * per-frame allocation. Must not be shared by concurrent runs.
     */
    FrameWorkspace *workspace = nullptr;

    /**
     * Host threads splitting MLP rows within this frame (>= 1).
     * Bit-identical output at any value: rows are independent.
     */
    int intraOpThreads = 1;

    /**
     * Serve DsMethod::BruteKnn through the exact spatial-hash index
     * (src/knn) instead of the full-scan kernel. Identical neighbor
     * sets and identical modeled workload (the index reports the
     * brute counters it stands in for); false keeps the oracle
     * kernel on the host — tests and A/B checks.
     */
    bool fastKnn = true;
};

/** Inference output. */
struct RunOutput
{
    Tensor logits; //!< [1, classes] or [points, classes]
    std::vector<std::size_t> labels; //!< argmax per row
    ExecutionTrace trace;
};

/**
 * A PointNet++ network with materialised (seeded-random) weights.
 */
class PointNet2
{
  public:
    /**
     * Build a network for @p spec.
     * @param weight_seed Seed for the deterministic weights.
     */
    explicit PointNet2(const PointNet2Spec &spec,
                       std::uint64_t weight_seed = 42);

    /** @return the architecture description. */
    const PointNet2Spec &spec() const { return arch; }

    /**
     * Run inference over @p input (already down-sampled to
     * spec().inputPoints; a differing size is allowed and simply
     * shifts the workload).
     */
    RunOutput run(const PointCloud &input,
                  const RunOptions &opts = {}) const;

    /**
     * Batched inference over several frames sharing one workspace
     * arena reservation and one weight pass per MLP layer: each
     * frame's data structuring runs independently (its own Rng
     * seeded opts.seed, its own trace), the per-layer GEMMs run
     * once over batch-stacked rows, and every per-frame output —
     * logits, labels, recorded trace — is bit-identical to a solo
     * run() of that frame. opts.inputOctree must be null (batches
     * mix sensors; per-frame trees are built where needed).
     */
    std::vector<RunOutput> runBatch(
        std::span<const PointCloud *const> inputs,
        const RunOptions &opts = {}) const;

  private:
    PointNet2Spec arch;
    std::vector<Mlp> sa_mlps;
    std::vector<Mlp> fp_mlps;
    std::unique_ptr<Mlp> head_mlp;

    /** One resolution level; storage lives in the frame workspace
     * (or the caller) and stays valid for the whole frame. */
    struct Level
    {
        std::span<const Vec3> positions;
        const Tensor *features = nullptr; //!< [points, C]; C may be 0
    };

    /** What an SA layer's data-structuring pass produced: grouped
     * rows written into the caller's tensor plus the next level's
     * geometry. Shared by the solo and batch-stacked paths. */
    struct SaDsResult
    {
        std::size_t rows = 0;  //!< grouped rows written
        std::size_t group = 0; //!< max-pool group size
        std::span<const Vec3> nextPositions;
    };

    /** Central-point selection + gather + grouped-row assembly of
     * one SA layer, writing rows [base_row, base_row + rows) of
     * @p grouped. The batch path stacks several frames into one
     * tall tensor by calling this once per frame. */
    SaDsResult runSaDataStructuring(std::size_t layer, const Level &in,
                                    const RunOptions &opts, Rng &rng,
                                    const Octree *reusable_tree,
                                    ExecutionTrace &trace,
                                    FrameWorkspace &ws, Tensor &grouped,
                                    std::size_t base_row) const;

    /** FP-layer gather + inverse-distance fusion, writing rows
     * [base_row, base_row + fine points) of @p fused. */
    void runFpDataStructuring(std::size_t layer, const Level &fine,
                              const Level &coarse,
                              const RunOptions &opts,
                              ExecutionTrace &trace, FrameWorkspace &ws,
                              Tensor &fused, std::size_t base_row) const;

    Level runSaLayer(std::size_t layer, const Level &in,
                     const RunOptions &opts, Rng &rng,
                     const Octree *reusable_tree, ExecutionTrace &trace,
                     FrameWorkspace &ws) const;

    const Tensor &runFpLayer(std::size_t layer, const Level &fine,
                             const Level &coarse,
                             const RunOptions &opts,
                             ExecutionTrace &trace,
                             FrameWorkspace &ws) const;
};

} // namespace hgpcn

#endif // HGPCN_NN_POINTNET2_H
