#include "nn/mlp.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "core/frame_workspace.h"

namespace hgpcn
{

namespace
{

/** Only fan work out when a layer is chunky enough to amortize the
 * per-call thread spawn (~50 us each). */
constexpr std::uint64_t kMinMacsPerThread = 2'000'000;

int
effectiveThreads(std::uint64_t macs, int threads)
{
    if (threads <= 1)
        return 1;
    const std::uint64_t cap = macs / kMinMacsPerThread;
    if (cap <= 1)
        return 1;
    return cap < static_cast<std::uint64_t>(threads)
               ? static_cast<int>(cap)
               : threads;
}

} // namespace

Linear::Linear(std::size_t in, std::size_t out, Rng &rng)
    : weight(in, out), bias(out, 0.0f)
{
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in > 0 ? in : 1));
    weight.randomize(rng, scale);
    for (auto &b : bias)
        b = rng.uniform(-0.01f, 0.01f);
}

Tensor
Linear::forward(const Tensor &x, const std::string &layer_name,
                ExecutionTrace &trace) const
{
    Tensor out;
    forwardInto(x, out, /*relu=*/false, /*threads=*/1, layer_name,
                trace);
    return out;
}

void
Linear::forwardInto(const Tensor &x, Tensor &out, bool relu,
                    int threads, const std::string &layer_name,
                    ExecutionTrace &trace) const
{
    forwardIntoUntraced(x, out, relu, threads);
    trace.gemms.push_back(
        GemmOp{layer_name, x.rows(), x.cols(), weight.cols()});
}

void
Linear::forwardIntoUntraced(const Tensor &x, Tensor &out, bool relu,
                            int threads) const
{
    out.resizeUninit(x.rows(), weight.cols());
    const std::uint64_t macs =
        static_cast<std::uint64_t>(x.rows()) * x.cols() *
        weight.cols();
    const int t = effectiveThreads(macs, threads);
    parallelFor(x.rows(), t,
                [&](std::size_t begin, std::size_t end) {
                    Tensor::matmulRowsInto(x, weight, out, begin, end);
                    out.addRowBias(bias, begin, end);
                    if (relu)
                        out.reluRows(begin, end);
                });
}

Mlp::Mlp(std::size_t in, const std::vector<std::size_t> &widths, Rng &rng,
         bool final_relu)
    : out_width(widths.empty() ? in : widths.back()),
      relu_last(final_relu)
{
    HGPCN_ASSERT(!widths.empty(), "MLP needs at least one layer");
    std::size_t cur = in;
    for (std::size_t w : widths) {
        layers.emplace_back(cur, w, rng);
        cur = w;
    }
}

Tensor
Mlp::forward(const Tensor &x, const std::string &name_prefix,
             ExecutionTrace &trace) const
{
    Tensor bufs[2];
    const Tensor *cur = &x;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        Tensor &dst = bufs[i % 2];
        const bool relu = i + 1 < layers.size() || relu_last;
        layers[i].forwardInto(*cur, dst, relu, /*threads=*/1,
                              name_prefix + ".fc" + std::to_string(i),
                              trace);
        cur = &dst;
    }
    return std::move(bufs[(layers.size() - 1) % 2]);
}

const Tensor &
Mlp::forwardArena(const Tensor &x, const std::string &name_prefix,
                  ExecutionTrace &trace, FrameWorkspace &ws,
                  int threads) const
{
    const Tensor *cur = &x;
    Tensor *dst = nullptr;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        dst = &ws.tensor(cur->rows(), layers[i].weight.cols());
        const bool relu = i + 1 < layers.size() || relu_last;
        layers[i].forwardInto(*cur, *dst, relu, threads,
                              name_prefix + ".fc" + std::to_string(i),
                              trace);
        cur = dst;
    }
    return *dst;
}

const Tensor &
Mlp::forwardBatchArena(const Tensor &stacked,
                       std::span<const std::size_t> frame_rows,
                       std::span<ExecutionTrace *const> traces,
                       const std::string &name_prefix,
                       FrameWorkspace &ws, int threads) const
{
    HGPCN_ASSERT(frame_rows.size() == traces.size(),
                 "batched MLP: rows/traces size mismatch");
    std::size_t total = 0;
    for (std::size_t r : frame_rows)
        total += r;
    HGPCN_ASSERT(total == stacked.rows(),
                 "batched MLP: frame rows ", total,
                 " do not cover stacked tensor of ", stacked.rows());
    const Tensor *cur = &stacked;
    Tensor *dst = nullptr;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        dst = &ws.tensor(cur->rows(), layers[i].weight.cols());
        const bool relu = i + 1 < layers.size() || relu_last;
        layers[i].forwardIntoUntraced(*cur, *dst, relu, threads);
        const std::string name =
            name_prefix + ".fc" + std::to_string(i);
        for (std::size_t f = 0; f < traces.size(); ++f)
            traces[f]->gemms.push_back(GemmOp{
                name, frame_rows[f], cur->cols(),
                layers[i].weight.cols()});
        cur = dst;
    }
    return *dst;
}

} // namespace hgpcn
