#include "nn/mlp.h"

#include <cmath>

#include "common/logging.h"

namespace hgpcn
{

Linear::Linear(std::size_t in, std::size_t out, Rng &rng)
    : weight(in, out), bias(out, 0.0f)
{
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in > 0 ? in : 1));
    weight.randomize(rng, scale);
    for (auto &b : bias)
        b = rng.uniform(-0.01f, 0.01f);
}

Tensor
Linear::forward(const Tensor &x, const std::string &layer_name,
                ExecutionTrace &trace) const
{
    Tensor out = Tensor::matmul(x, weight);
    out.addRowBias(bias);
    trace.gemms.push_back(
        GemmOp{layer_name, x.rows(), x.cols(), weight.cols()});
    return out;
}

Mlp::Mlp(std::size_t in, const std::vector<std::size_t> &widths, Rng &rng,
         bool final_relu)
    : out_width(widths.empty() ? in : widths.back()),
      relu_last(final_relu)
{
    HGPCN_ASSERT(!widths.empty(), "MLP needs at least one layer");
    std::size_t cur = in;
    for (std::size_t w : widths) {
        layers.emplace_back(cur, w, rng);
        cur = w;
    }
}

Tensor
Mlp::forward(const Tensor &x, const std::string &name_prefix,
             ExecutionTrace &trace) const
{
    Tensor cur = x;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        cur = layers[i].forward(
            cur, name_prefix + ".fc" + std::to_string(i), trace);
        if (i + 1 < layers.size() || relu_last)
            cur.reluInPlace();
    }
    return cur;
}

} // namespace hgpcn
