/**
 * @file
 * Flattened Octree-Table image.
 *
 * The Octree-build Unit (CPU) serialises the octree into this compact
 * table and transfers it to the FPGA Down-sampling Unit over MMIO
 * (Section V). Only this table — never the raw points — has to live
 * in FPGA on-chip memory, which is the source of the 12x-22x on-chip
 * memory saving of Fig. 13.
 */

#ifndef HGPCN_OCTREE_OCTREE_TABLE_H
#define HGPCN_OCTREE_OCTREE_TABLE_H

#include <cstdint>
#include <vector>

#include "octree/octree.h"

namespace hgpcn
{

/**
 * One table row. Mirrors the information an FPGA BRAM word needs to
 * drive table-lookup sampling: the voxel m-code, the tree linkage and
 * the host-memory address range of the voxel's points.
 */
struct OctreeTableEntry
{
    std::uint64_t code;      //!< m-code (3*level significant bits)
    std::uint32_t pointBegin; //!< host-memory address range (in points)
    std::uint32_t pointEnd;
    std::int32_t firstChild; //!< row index of first child; -1 for leaf
    std::uint16_t level;
    std::uint8_t childMask;
};

/**
 * The serialized octree transferred to the Down-sampling Unit.
 */
class OctreeTable
{
  public:
    /** Bytes per table row in the hardware layout (packed fields). */
    static constexpr std::size_t kEntryBytes = 20;

    /** Serialize @p tree into a table (row i == node i). */
    static OctreeTable fromOctree(const Octree &tree);

    /** @return number of rows. */
    std::size_t entryCount() const { return rows.size(); }

    /** @return table footprint in bytes (the MMIO transfer size). */
    std::size_t sizeBytes() const { return rows.size() * kEntryBytes; }

    /**
     * @return the footprint a table over @p nodes rows would have,
     * without materializing it (row i == node i, so callers that
     * only need the MMIO transfer size skip the serialization).
     */
    static std::size_t
    sizeBytesFor(std::size_t nodes)
    {
        return nodes * kEntryBytes;
    }

    /** @return row @p i. */
    const OctreeTableEntry &entry(std::size_t i) const { return rows[i]; }

    /** @return all rows. */
    const std::vector<OctreeTableEntry> &entries() const { return rows; }

  private:
    std::vector<OctreeTableEntry> rows;
};

} // namespace hgpcn

#endif // HGPCN_OCTREE_OCTREE_TABLE_H
