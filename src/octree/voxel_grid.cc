#include "octree/voxel_grid.h"

#include <cmath>

#include "common/logging.h"

namespace hgpcn
{

VoxelGrid::VoxelGrid(const Octree &tree, int level)
    : octree(tree), lvl(level),
      axis_cells(static_cast<std::int32_t>(1) << level)
{
    HGPCN_ASSERT(level >= 0 && level <= tree.config().maxDepth,
                 "grid level ", level, " outside octree depth ",
                 tree.config().maxDepth);
}

GridCell
VoxelGrid::cellOf(const Vec3 &p) const
{
    morton::CellCoord x = 0, y = 0, z = 0;
    morton::cellOf(p, octree.rootBounds(), lvl, x, y, z);
    return {static_cast<std::int32_t>(x), static_cast<std::int32_t>(y),
            static_cast<std::int32_t>(z)};
}

bool
VoxelGrid::inGrid(const GridCell &c) const
{
    return c.x >= 0 && c.x < axis_cells && c.y >= 0 && c.y < axis_cells &&
           c.z >= 0 && c.z < axis_cells;
}

morton::Code
VoxelGrid::cellCode(const GridCell &c) const
{
    HGPCN_ASSERT(inGrid(c), "cell outside grid");
    if (lvl == 0)
        return 0; // the single root cell
    return morton::encode3(static_cast<morton::CellCoord>(c.x),
                           static_cast<morton::CellCoord>(c.y),
                           static_cast<morton::CellCoord>(c.z), lvl);
}

std::pair<PointIndex, PointIndex>
VoxelGrid::cellRange(const GridCell &c) const
{
    if (!inGrid(c))
        return {0, 0};
    if (lvl == 0) {
        return {0,
                static_cast<PointIndex>(octree.pointCodes().size())};
    }
    return octree.voxelRange(cellCode(c), lvl);
}

std::uint32_t
VoxelGrid::cellCount(const GridCell &c) const
{
    const auto [first, last] = cellRange(c);
    return last - first;
}

std::size_t
VoxelGrid::forEachRingCell(
    const GridCell &center, int ring,
    const std::function<void(const GridCell &)> &fn) const
{
    HGPCN_ASSERT(ring >= 0, "negative ring");
    std::size_t visited = 0;
    if (ring == 0) {
        if (inGrid(center)) {
            fn(center);
            ++visited;
        }
        return visited;
    }
    // The shell is the set of cells whose Chebyshev distance to the
    // center is exactly `ring`: at least one axis offset is +/-ring.
    for (std::int32_t dx = -ring; dx <= ring; ++dx) {
        for (std::int32_t dy = -ring; dy <= ring; ++dy) {
            for (std::int32_t dz = -ring; dz <= ring; ++dz) {
                const bool on_shell = dx == ring || dx == -ring ||
                                      dy == ring || dy == -ring ||
                                      dz == ring || dz == -ring;
                if (!on_shell)
                    continue;
                const GridCell c{center.x + dx, center.y + dy,
                                 center.z + dz};
                if (!inGrid(c))
                    continue;
                fn(c);
                ++visited;
            }
        }
    }
    return visited;
}

std::uint32_t
VoxelGrid::ringPointCount(const GridCell &center, int ring) const
{
    std::uint32_t total = 0;
    forEachRingCell(center, ring, [&](const GridCell &c) {
        total += cellCount(c);
    });
    return total;
}

std::size_t
VoxelGrid::gatherRingPoints(const GridCell &center, int ring,
                            std::vector<PointIndex> &out) const
{
    return forEachRingCell(center, ring, [&](const GridCell &c) {
        const auto [first, last] = cellRange(c);
        for (PointIndex i = first; i < last; ++i)
            out.push_back(i);
    });
}

int
VoxelGrid::autoLevel(std::size_t n_points, int max_level)
{
    // Aim for ~1.5 points per occupied voxel so that the 27-cell
    // ring-0/ring-1 neighborhood covers a typical K of 16-64.
    int level = 1;
    double cells = 8.0;
    while (level < max_level &&
           static_cast<double>(n_points) / cells > 1.5) {
        ++level;
        cells *= 8.0;
    }
    return level;
}

} // namespace hgpcn
