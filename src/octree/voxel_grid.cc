#include "octree/voxel_grid.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace hgpcn
{

VoxelGrid::VoxelGrid(const Octree &tree, int level)
    : octree(tree), lvl(level),
      axis_cells(static_cast<std::int32_t>(1) << level)
{
    HGPCN_ASSERT(level >= 0 && level <= tree.config().maxDepth,
                 "grid level ", level, " outside octree depth ",
                 tree.config().maxDepth);
}

VoxelGrid::VoxelGrid(const Octree &tree, int level,
                     const std::vector<OccupiedCell> *external)
    : VoxelGrid(tree, level)
{
    ext_occ = external;
}

GridCell
VoxelGrid::cellOf(const Vec3 &p) const
{
    morton::CellCoord x = 0, y = 0, z = 0;
    morton::cellOf(p, octree.rootBounds(), lvl, x, y, z);
    return {static_cast<std::int32_t>(x), static_cast<std::int32_t>(y),
            static_cast<std::int32_t>(z)};
}

bool
VoxelGrid::inGrid(const GridCell &c) const
{
    return c.x >= 0 && c.x < axis_cells && c.y >= 0 && c.y < axis_cells &&
           c.z >= 0 && c.z < axis_cells;
}

morton::Code
VoxelGrid::cellCode(const GridCell &c) const
{
    HGPCN_ASSERT(inGrid(c), "cell outside grid");
    if (lvl == 0)
        return 0; // the single root cell
    return morton::encode3(static_cast<morton::CellCoord>(c.x),
                           static_cast<morton::CellCoord>(c.y),
                           static_cast<morton::CellCoord>(c.z), lvl);
}

std::pair<PointIndex, PointIndex>
VoxelGrid::cellRange(const GridCell &c) const
{
    if (!inGrid(c))
        return {0, 0};
    if (lvl == 0) {
        return {0,
                static_cast<PointIndex>(octree.pointCodes().size())};
    }
    return octree.voxelRange(cellCode(c), lvl);
}

std::uint32_t
VoxelGrid::cellCount(const GridCell &c) const
{
    const auto [first, last] = cellRange(c);
    return last - first;
}

std::size_t
VoxelGrid::forEachRingCell(
    const GridCell &center, int ring,
    const std::function<void(const GridCell &)> &fn) const
{
    HGPCN_ASSERT(ring >= 0, "negative ring");
    std::size_t visited = 0;
    if (ring == 0) {
        if (inGrid(center)) {
            fn(center);
            ++visited;
        }
        return visited;
    }
    // The shell is the set of cells whose Chebyshev distance to the
    // center is exactly `ring`: at least one axis offset is +/-ring.
    for (std::int32_t dx = -ring; dx <= ring; ++dx) {
        for (std::int32_t dy = -ring; dy <= ring; ++dy) {
            for (std::int32_t dz = -ring; dz <= ring; ++dz) {
                const bool on_shell = dx == ring || dx == -ring ||
                                      dy == ring || dy == -ring ||
                                      dz == ring || dz == -ring;
                if (!on_shell)
                    continue;
                const GridCell c{center.x + dx, center.y + dy,
                                 center.z + dz};
                if (!inGrid(c))
                    continue;
                fn(c);
                ++visited;
            }
        }
    }
    return visited;
}

std::size_t
VoxelGrid::boxCellCount(const GridCell &center,
                        std::int32_t radius) const
{
    if (radius < 0)
        return 0;
    const auto span = [radius](std::int32_t c, std::int32_t n) {
        const std::int32_t lo = std::max(c - radius, std::int32_t{0});
        const std::int32_t hi = std::min(c + radius, n - 1);
        return hi >= lo ? static_cast<std::size_t>(hi - lo + 1)
                        : std::size_t{0};
    };
    return span(center.x, axis_cells) * span(center.y, axis_cells) *
           span(center.z, axis_cells);
}

std::size_t
VoxelGrid::shellCellCount(const GridCell &center, int ring) const
{
    HGPCN_ASSERT(ring >= 0, "negative ring");
    if (ring == 0)
        return inGrid(center) ? 1 : 0;
    return boxCellCount(center, ring) -
           boxCellCount(center, ring - 1);
}

namespace
{

/** The (x, y, z) order ring scans and per-cell walks agree on. */
inline bool
cellLess(const GridCell &a, const GridCell &b)
{
    if (a.x != b.x)
        return a.x < b.x;
    if (a.y != b.y)
        return a.y < b.y;
    return a.z < b.z;
}

} // namespace

void
buildOccupiedCells(const Octree &tree, int level,
                   std::vector<OccupiedCell> &out)
{
    out.clear();
    const std::vector<morton::Code> &codes = tree.pointCodes();
    const std::size_t n = codes.size();
    if (level == 0) {
        if (n > 0) {
            out.push_back({GridCell{0, 0, 0}, 0,
                           static_cast<PointIndex>(n)});
        }
        return;
    }
    // Points are sorted by full-depth m-code, so every level-level
    // cell is one contiguous run of equal code prefixes.
    const int shift = 3 * (tree.config().maxDepth - level);
    std::size_t i = 0;
    while (i < n) {
        const morton::Code prefix = codes[i] >> shift;
        std::size_t j = i + 1;
        while (j < n && (codes[j] >> shift) == prefix)
            ++j;
        morton::CellCoord x = 0, y = 0, z = 0;
        morton::decode3(prefix, level, x, y, z);
        out.push_back({GridCell{static_cast<std::int32_t>(x),
                                static_cast<std::int32_t>(y),
                                static_cast<std::int32_t>(z)},
                       static_cast<PointIndex>(i),
                       static_cast<PointIndex>(j)});
        i = j;
    }
    // Ring scans must emit cells in the same (x, y, z) order the
    // per-cell walk visits them in.
    std::sort(out.begin(), out.end(),
              [](const OccupiedCell &a, const OccupiedCell &b) {
                  return cellLess(a.cell, b.cell);
              });
}

bool
patchOccupiedCells(const Octree &new_tree, int level,
                   const Octree &prev_tree,
                   const std::vector<OccupiedCell> &prev_occ,
                   const PointDelta &delta,
                   std::vector<OccupiedCell> &out)
{
    if (level < 1 ||
        new_tree.config().maxDepth != prev_tree.config().maxDepth ||
        level > new_tree.config().maxDepth)
        return false;

    const int shift = 3 * (new_tree.config().maxDepth - level);

    // Dirty cells: level prefixes of every inserted (new codes) and
    // evicted (old codes) point, sorted unique. Everything else kept
    // its point set, so its entry survives with remapped ranges.
    std::vector<morton::Code> dirty;
    dirty.reserve(delta.insertedNew.size() + delta.evictedOld.size());
    for (const PointIndex i : delta.insertedNew)
        dirty.push_back(new_tree.pointCode(i) >> shift);
    for (const PointIndex e : delta.evictedOld)
        dirty.push_back(prev_tree.pointCode(e) >> shift);
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    const auto is_dirty = [&dirty](morton::Code prefix) {
        return std::binary_search(dirty.begin(), dirty.end(), prefix);
    };

    // Dirty cells re-read from the new tree: two binary searches
    // each; empty cells (all points evicted) drop out.
    std::vector<OccupiedCell> patched;
    patched.reserve(dirty.size());
    for (const morton::Code prefix : dirty) {
        const auto [first, last] = new_tree.voxelRange(prefix, level);
        if (first == last)
            continue;
        morton::CellCoord x = 0, y = 0, z = 0;
        morton::decode3(prefix, level, x, y, z);
        patched.push_back({GridCell{static_cast<std::int32_t>(x),
                                    static_cast<std::int32_t>(y),
                                    static_cast<std::int32_t>(z)},
                           first, last});
    }
    std::sort(patched.begin(), patched.end(),
              [](const OccupiedCell &a, const OccupiedCell &b) {
                  return cellLess(a.cell, b.cell);
              });

    // Merge clean entries (prev list order, already (x, y, z)
    // sorted) with the patched ones. A clean cell saw no insert or
    // evict, so its points map to one consecutive run of new slots:
    // newFromOld of its first point starts the run.
    out.clear();
    out.reserve(prev_occ.size() + patched.size());
    std::size_t p = 0;
    for (const OccupiedCell &c : prev_occ) {
        const morton::Code prefix = morton::encode3(
            static_cast<morton::CellCoord>(c.cell.x),
            static_cast<morton::CellCoord>(c.cell.y),
            static_cast<morton::CellCoord>(c.cell.z), level);
        if (is_dirty(prefix))
            continue;
        while (p < patched.size() &&
               cellLess(patched[p].cell, c.cell))
            out.push_back(patched[p++]);
        const PointIndex first = delta.newFromOld[c.first];
        HGPCN_ASSERT(first != kNoPoint,
                     "clean cell lost its first point");
        out.push_back(
            {c.cell, first,
             static_cast<PointIndex>(first + (c.last - c.first))});
    }
    while (p < patched.size())
        out.push_back(patched[p++]);
    return true;
}

const std::vector<OccupiedCell> &
VoxelGrid::occupiedCells() const
{
    if (ext_occ != nullptr)
        return *ext_occ;
    if (occ_built)
        return occ;
    occ_built = true;
    buildOccupiedCells(octree, lvl, occ);
    return occ;
}

namespace
{

/** Chebyshev distance between two cells. */
inline std::int32_t
chebDist(const GridCell &a, const GridCell &b)
{
    const std::int32_t dx = std::abs(a.x - b.x);
    const std::int32_t dy = std::abs(a.y - b.y);
    const std::int32_t dz = std::abs(a.z - b.z);
    return std::max(dx, std::max(dy, dz));
}

} // namespace

/*
 * Ring serving is hybrid: small shells walk their cells (one
 * Octree-Table range lookup per cell, cheap when r is small); large
 * shells — deep levels over sparse or clustered clouds, where
 * almost every shell cell is empty — scan the occupied-cell list
 * instead, touching only cells that can contribute points. Both
 * paths produce identical points in identical (x, y, z) order, and
 * both report the full in-grid shell cell count: that is what the
 * modeled hardware's table walk costs, regardless of the host
 * shortcut (see docs/PERFORMANCE.md).
 */

std::uint32_t
VoxelGrid::ringPointCount(const GridCell &center, int ring) const
{
    const std::size_t shell = shellCellCount(center, ring);
    const std::vector<OccupiedCell> &cells = occupiedCells();
    if (shell <= cells.size() / 2) {
        std::uint32_t total = 0;
        forEachRingCell(center, ring, [&](const GridCell &c) {
            total += cellCount(c);
        });
        return total;
    }
    std::uint32_t total = 0;
    for (const OccupiedCell &c : cells) {
        if (chebDist(c.cell, center) == ring)
            total += c.last - c.first;
    }
    return total;
}

std::size_t
VoxelGrid::gatherRingPoints(const GridCell &center, int ring,
                            std::vector<PointIndex> &out) const
{
    const std::size_t shell = shellCellCount(center, ring);
    const std::vector<OccupiedCell> &cells = occupiedCells();
    if (shell <= cells.size() / 2) {
        return forEachRingCell(center, ring, [&](const GridCell &c) {
            const auto [first, last] = cellRange(c);
            for (PointIndex i = first; i < last; ++i)
                out.push_back(i);
        });
    }
    for (const OccupiedCell &c : cells) {
        if (chebDist(c.cell, center) == ring) {
            for (PointIndex i = c.first; i < c.last; ++i)
                out.push_back(i);
        }
    }
    return shell;
}

int
VoxelGrid::autoLevel(std::size_t n_points, int max_level)
{
    // Aim for ~1.5 points per occupied voxel so that the 27-cell
    // ring-0/ring-1 neighborhood covers a typical K of 16-64.
    int level = 1;
    double cells = 8.0;
    while (level < max_level &&
           static_cast<double>(n_points) / cells > 1.5) {
        ++level;
        cells *= 8.0;
    }
    return level;
}

} // namespace hgpcn
