#include "octree/incremental_octree.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.h"
#include "core/frame_workspace.h"

namespace hgpcn
{

namespace
{

/** Mix the coordinate bit patterns of @p p into a hash. */
std::uint64_t
hashPosition(const Vec3 &p)
{
    std::uint32_t b[3];
    std::memcpy(&b[0], &p.x, sizeof(float));
    std::memcpy(&b[1], &p.y, sizeof(float));
    std::memcpy(&b[2], &p.z, sizeof(float));
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::uint32_t v : b) {
        h ^= v;
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
    }
    return h;
}

/**
 * Bit-pattern equality. Float == would also match -0.0 against +0.0,
 * whose m-codes agree but whose stored coordinates differ — the
 * incremental output must be byte-identical to the scratch build, so
 * matching is on representation, not value.
 */
bool
samePosition(const Vec3 &a, const Vec3 &b)
{
    return std::memcmp(&a.x, &b.x, sizeof(float)) == 0 &&
           std::memcmp(&a.y, &b.y, sizeof(float)) == 0 &&
           std::memcmp(&a.z, &b.z, sizeof(float)) == 0;
}

/** Bit-pattern equality of two AABBs (root-voxel stability guard). */
bool
sameBounds(const Aabb &a, const Aabb &b)
{
    return samePosition(a.lo, b.lo) && samePosition(a.hi, b.hi);
}

} // namespace

std::size_t
IncrementalOctreeBuilder::scratchCapacity() const
{
    return table.capacity() + chain.capacity() +
           matched_old.capacity() + new_of_old.capacity() +
           inserts.capacity() + delta_.newFromOld.capacity() +
           delta_.insertedNew.capacity() + delta_.evictedOld.capacity();
}

void
IncrementalOctreeBuilder::matchPoints(const PointCloud &cloud)
{
    const std::size_t n_old = old_tree->codes.size();
    const std::size_t n_new = cloud.size();
    const PointCloud &old_points = old_tree->reordered;

    std::size_t buckets = 16;
    while (buckets < 2 * n_old)
        buckets <<= 1;
    const std::uint64_t mask = buckets - 1;

    table.assign(buckets, kNoPoint);
    chain.resize(n_old);
    // Push-front while walking slots backwards leaves every bucket
    // chain in ascending slot order, so duplicate coordinates match
    // old slots and new inputs in the same relative order the scratch
    // build's stable sort would produce.
    for (std::size_t s = n_old; s-- > 0;) {
        const std::uint64_t h =
            hashPosition(old_points.position(
                static_cast<PointIndex>(s))) &
            mask;
        chain[s] = table[h];
        table[h] = static_cast<PointIndex>(s);
    }

    matched_old.assign(n_old, 0);
    new_of_old.assign(n_old, kNoPoint);
    inserts.clear();

    for (std::size_t i = 0; i < n_new; ++i) {
        const Vec3 &p = cloud.position(static_cast<PointIndex>(i));
        const std::uint64_t h = hashPosition(p) & mask;
        PointIndex s = table[h];
        while (s != kNoPoint) {
            if (!matched_old[s] &&
                samePosition(old_points.position(s), p))
                break;
            s = chain[s];
        }
        if (s != kNoPoint) {
            matched_old[s] = 1;
            new_of_old[s] = static_cast<PointIndex>(i);
        } else {
            inserts.emplace_back(
                morton::pointCode3(p, old_tree->root_bounds,
                                   old_tree->cfg.maxDepth),
                static_cast<PointIndex>(i));
        }
    }

    std::sort(inserts.begin(), inserts.end());
}

bool
IncrementalOctreeBuilder::mergeOrder(const PointCloud &cloud)
{
    const std::size_t n_old = old_tree->codes.size();
    const std::size_t n_new = cloud.size();

    delta_.newFromOld.assign(n_old, kNoPoint);
    delta_.insertedNew.clear();
    delta_.evictedOld.clear();
    for (std::size_t s = 0; s < n_old; ++s) {
        if (!matched_old[s])
            delta_.evictedOld.push_back(static_cast<PointIndex>(s));
    }

    new_tree->codes.resize(n_new);
    new_tree->perm.resize(n_new);

    // Merge the retained run (old SFC order, remapped to new input
    // indices) with the sorted insertions. The scratch build sorts
    // (code, input index) pairs stably, i.e. by (code, index); the
    // merge reproduces that order exactly — provided the retained run
    // itself is (code, index)-sorted, which churn can violate when
    // equal-code points arrive permuted. Verify while merging and let
    // the caller fall back to the scratch build on violation.
    std::size_t a = 0; // old slot cursor
    std::size_t b = 0; // insert cursor
    while (a < n_old && !matched_old[a])
        ++a;
    bool have_last = false;
    morton::Code last_code = 0;
    PointIndex last_idx = 0;
    for (std::size_t w = 0; w < n_new; ++w) {
        bool take_a;
        if (a >= n_old) {
            take_a = false;
        } else if (b >= inserts.size()) {
            take_a = true;
        } else {
            const morton::Code ac = old_tree->codes[a];
            take_a = ac < inserts[b].first ||
                     (ac == inserts[b].first &&
                      new_of_old[a] < inserts[b].second);
        }
        if (take_a) {
            const morton::Code code = old_tree->codes[a];
            const PointIndex idx = new_of_old[a];
            if (have_last && (code < last_code ||
                              (code == last_code && idx <= last_idx)))
                return false;
            have_last = true;
            last_code = code;
            last_idx = idx;
            new_tree->codes[w] = code;
            new_tree->perm[w] = idx;
            delta_.newFromOld[a] = static_cast<PointIndex>(w);
            ++a;
            while (a < n_old && !matched_old[a])
                ++a;
        } else {
            HGPCN_ASSERT(b < inserts.size(),
                         "merge ran out of points at slot ", w);
            new_tree->codes[w] = inserts[b].first;
            new_tree->perm[w] = inserts[b].second;
            delta_.insertedNew.push_back(static_cast<PointIndex>(w));
            ++b;
        }
    }
    HGPCN_ASSERT(a >= n_old && b == inserts.size(),
                 "merge left points behind");
    (void)cloud;
    return true;
}

void
IncrementalOctreeBuilder::erectNode(NodeIndex self, NodeIndex old_idx)
{
    auto &ns = new_tree->node_store;
    const morton::Code code = ns[self].code;
    const int level = ns[self].level;
    const PointIndex begin = ns[self].pointBegin;
    const PointIndex end = ns[self].pointEnd;
    const std::uint32_t count = end - begin;

    // Clean subtree: the aligned old node covers the same number of
    // points and no new slot in the range was inserted this frame.
    // Equal counts then rule out evictions too, so the code multiset
    // under both nodes is identical and the whole old subtree can be
    // copied with a point-range offset.
    if (old_idx != kNoNode &&
        old_tree->node_store[old_idx].count() == count &&
        !delta_.rangeDirty(begin, end)) {
        copySubtree(self, old_idx);
        return;
    }

    if (level > new_tree->max_level)
        new_tree->max_level = level;

    const bool subdivide = level < new_tree->cfg.maxDepth &&
                           count > new_tree->cfg.leafCapacity;
    if (!subdivide) {
        ++new_tree->leaf_total;
        for (PointIndex i = begin; i < end; ++i)
            new_tree->point_leaf[i] = self;
        return;
    }

    const int shift = 3 * (new_tree->cfg.maxDepth - level - 1);
    struct ChildRange
    {
        unsigned octant;
        PointIndex begin;
        PointIndex end;
    };
    ChildRange ranges[8];
    int n_children = 0;
    std::uint8_t mask = 0;
    PointIndex cursor = begin;
    const auto &codes = new_tree->codes;
    for (unsigned oct = 0; oct < 8 && cursor < end; ++oct) {
        const morton::Code upper = (morton::child3(code, oct) + 1)
                                   << shift;
        const auto it = std::lower_bound(codes.begin() + cursor,
                                         codes.begin() + end, upper);
        const auto stop = static_cast<PointIndex>(it - codes.begin());
        if (stop > cursor) {
            mask |= static_cast<std::uint8_t>(1u << oct);
            ranges[n_children++] = {oct, cursor, stop};
            cursor = stop;
        }
    }
    HGPCN_ASSERT(cursor == end, "octant partition lost points");

    ns[self].childMask = mask;
    const NodeIndex first_child = static_cast<NodeIndex>(ns.size());
    ns[self].firstChild = first_child;

    for (int c = 0; c < n_children; ++c) {
        OctreeNode child;
        child.code = morton::child3(code, ranges[c].octant);
        child.level = static_cast<std::uint16_t>(level + 1);
        child.parent = self;
        child.pointBegin = ranges[c].begin;
        child.pointEnd = ranges[c].end;
        ns.push_back(child);
        ++nodes_erected;
    }
    for (int c = 0; c < n_children; ++c) {
        const NodeIndex old_child =
            old_idx != kNoNode
                ? old_tree->childAt(old_idx, ranges[c].octant)
                : kNoNode;
        erectNode(first_child + c, old_child);
    }
}

void
IncrementalOctreeBuilder::copySubtree(NodeIndex self, NodeIndex old_idx)
{
    auto &ns = new_tree->node_store;
    const OctreeNode on = old_tree->node_store[old_idx];
    const int level = ns[self].level;
    const PointIndex nb = ns[self].pointBegin;
    const PointIndex ne = ns[self].pointEnd;

    if (level > new_tree->max_level)
        new_tree->max_level = level;

    if (on.isLeaf()) {
        ++new_tree->leaf_total;
        for (PointIndex i = nb; i < ne; ++i)
            new_tree->point_leaf[i] = self;
        return;
    }

    const std::int64_t off = static_cast<std::int64_t>(nb) -
                             static_cast<std::int64_t>(on.pointBegin);
    ns[self].childMask = on.childMask;
    const NodeIndex first_child = static_cast<NodeIndex>(ns.size());
    ns[self].firstChild = first_child;

    const int n_children = std::popcount(on.childMask);
    for (int c = 0; c < n_children; ++c) {
        const OctreeNode &oc = old_tree->node_store[on.firstChild + c];
        OctreeNode child;
        child.code = oc.code;
        child.level = oc.level;
        child.parent = self;
        child.pointBegin =
            static_cast<PointIndex>(oc.pointBegin + off);
        child.pointEnd = static_cast<PointIndex>(oc.pointEnd + off);
        ns.push_back(child);
        ++nodes_reused;
    }
    for (int c = 0; c < n_children; ++c)
        copySubtree(first_child + c, on.firstChild + c);
}

bool
IncrementalOctreeBuilder::update(const PointCloud &cloud,
                                 const Octree *prev,
                                 const Octree::Config &config,
                                 Octree &out)
{
    HGPCN_ASSERT(prev != &out,
                 "incremental update cannot rebuild in place");
    nodes_reused = 0;
    nodes_erected = 0;

    const bool aligned =
        prev != nullptr && !cloud.empty() &&
        !prev->codes.empty() &&
        prev->cfg.maxDepth == config.maxDepth &&
        prev->cfg.leafCapacity == config.leafCapacity &&
        sameBounds(cloud.bounds().cubified(), prev->root_bounds);
    if (!aligned) {
        out.rebuild(cloud, config);
        return false;
    }

    const std::size_t cap_before =
        out.backingCapacity() + scratchCapacity();
    const std::size_t n = cloud.size();

    old_tree = prev;
    new_tree = &out;

    matchPoints(cloud);
    if (!mergeOrder(cloud)) {
        old_tree = nullptr;
        new_tree = nullptr;
        out.rebuild(cloud, config);
        return false;
    }

    out.cfg = config;
    out.root_bounds = prev->root_bounds;
    out.build_stats.clear();
    out.max_level = 0;
    out.leaf_total = 0;

    // Modeled build cost is charged by the scratch-build formulas:
    // the accelerator model still reads, codes and sorts every point,
    // so paper-model numbers (octreeBuildSec) are unchanged by
    // construction — only host wall-clock moves.
    out.build_stats.add("octree.host_reads", n);
    out.build_stats.add("octree.code_computations", n);
    if (config.useRadixSort) {
        out.build_stats.add(
            "octree.sort_ops",
            n * static_cast<std::uint64_t>(
                    (3 * config.maxDepth + 7) / 8) *
                3);
    } else {
        out.build_stats.add("octree.sort_ops",
                            n > 1 ? static_cast<std::uint64_t>(
                                        n * std::bit_width(n - 1))
                                  : 0);
    }

    out.reordered.assignGathered(cloud, out.perm);
    out.build_stats.add("octree.host_writes", n);

    out.point_leaf.resize(n); // resize+fill: see Octree::resetLive()
    std::fill(out.point_leaf.begin(), out.point_leaf.end(), kNoNode);
    out.node_store.clear();
    out.node_store.reserve(n / 2 + 16);

    OctreeNode root;
    root.code = 0;
    root.level = 0;
    root.parent = kNoNode;
    root.pointBegin = 0;
    root.pointEnd = static_cast<PointIndex>(n);
    out.node_store.push_back(root);
    nodes_erected = 1;
    erectNode(0, 0);

    out.build_stats.set("octree.nodes", out.node_store.size());
    out.build_stats.set("octree.leaves", out.leaf_total);
    out.build_stats.set("octree.depth",
                        static_cast<std::uint64_t>(out.max_level));

    out.resetLive();
    old_tree = nullptr;
    new_tree = nullptr;

    if (cap_before > 0 &&
        out.backingCapacity() + scratchCapacity() > cap_before)
        FrameWorkspace::noteGrowth();
    return true;
}

} // namespace hgpcn
