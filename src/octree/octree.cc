#include "octree/octree.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "core/frame_workspace.h"

namespace hgpcn
{

namespace
{

/**
 * LSD radix sort of (code, index) pairs by code, 8 bits per pass.
 * Only the passes covering @p key_bits run, and passes where every
 * key shares the byte are skipped. @p scratch is the ping-pong
 * buffer; both vectors keep their storage for reuse.
 */
void
radixSortPairs(std::vector<std::pair<morton::Code, PointIndex>> &keyed,
               int key_bits,
               std::vector<std::pair<morton::Code, PointIndex>> &scratch)
{
    const std::size_t n = keyed.size();
    scratch.resize(n);
    auto *src = &keyed;
    auto *dst = &scratch;
    const int passes = (key_bits + 7) / 8;
    for (int pass = 0; pass < passes; ++pass) {
        const int shift = pass * 8;
        std::size_t counts[256] = {};
        for (const auto &kv : *src)
            ++counts[(kv.first >> shift) & 0xff];
        if (counts[(*src)[0].first >> shift & 0xff] == n)
            continue; // all keys share this byte
        std::size_t offsets[256];
        std::size_t running = 0;
        for (int b = 0; b < 256; ++b) {
            offsets[b] = running;
            running += counts[b];
        }
        for (const auto &kv : *src)
            (*dst)[offsets[(kv.first >> shift) & 0xff]++] = kv;
        std::swap(src, dst);
    }
    if (src != &keyed)
        keyed.swap(scratch);
}

} // namespace

Octree
Octree::build(const PointCloud &cloud, const Config &config)
{
    Octree tree;
    tree.rebuild(cloud, config);
    return tree;
}

std::size_t
Octree::backingCapacity() const
{
    std::size_t total = scratch.keyed.capacity() +
                        scratch.radix.capacity() +
                        scratch.levels.capacity() + codes.capacity() +
                        perm.capacity() + point_leaf.capacity() +
                        node_store.capacity() + reordered.capacity() +
                        live.capacity() + sampled.capacity() +
                        consumed.capacity();
    for (const auto &lvl : scratch.levels)
        total += lvl.capacity();
    return total;
}

void
Octree::rebuild(const PointCloud &cloud, const Config &config)
{
    HGPCN_ASSERT(config.maxDepth >= 1 &&
                     config.maxDepth <= morton::kMaxDepth3d,
                 "maxDepth=", config.maxDepth);
    HGPCN_ASSERT(!cloud.empty(), "cannot build an octree over no points");

    const std::size_t cap_before = backingCapacity();

    cfg = config;
    root_bounds = cloud.bounds().cubified();
    build_stats.clear();
    max_level = 0;
    leaf_total = 0;

    const std::size_t n = cloud.size();

    // Pass over the raw points: compute the full-depth m-code of each
    // point. This is the single host-memory read pass of the
    // Octree-build Unit.
    auto &keyed = scratch.keyed;
    keyed.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        keyed[i].first = morton::pointCode3(
            cloud.position(static_cast<PointIndex>(i)), root_bounds,
            config.maxDepth);
        keyed[i].second = static_cast<PointIndex>(i);
    }
    build_stats.add("octree.host_reads", n);
    build_stats.add("octree.code_computations", n);

    // SFC ordering: sorting by m-code realises the Space-Filling-Curve
    // traversal order of Fig. 5(b).
    if (config.useRadixSort) {
        radixSortPairs(keyed, 3 * config.maxDepth, scratch.radix);
        // Three touches per element per byte pass (count, read,
        // scatter).
        build_stats.add("octree.sort_ops",
                        n * static_cast<std::uint64_t>(
                                (3 * config.maxDepth + 7) / 8) *
                            3);
    } else {
        std::sort(keyed.begin(), keyed.end());
        build_stats.add("octree.sort_ops",
                        n > 1 ? static_cast<std::uint64_t>(
                                    n * std::bit_width(n - 1))
                              : 0);
    }

    codes.resize(n);
    perm.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        codes[i] = keyed[i].first;
        perm[i] = keyed[i].second;
    }

    // Host-memory pre-configuration: write the reorganized copy so
    // voxel reads become sequential bursts.
    reordered.assignGathered(cloud, perm);
    build_stats.add("octree.host_writes", n);

    point_leaf.resize(n); // resize+fill: see resetLive()
    std::fill(point_leaf.begin(), point_leaf.end(), kNoNode);
    node_store.clear();
    node_store.reserve(n / 2 + 16);

    OctreeNode root;
    root.code = 0;
    root.level = 0;
    root.parent = kNoNode;
    root.pointBegin = 0;
    root.pointEnd = static_cast<PointIndex>(n);
    node_store.push_back(root);
    if (config.bottomUpBuild)
        erectBottomUp();
    else
        processNode(0);

    build_stats.set("octree.nodes", node_store.size());
    build_stats.set("octree.leaves", leaf_total);
    build_stats.set("octree.depth",
                    static_cast<std::uint64_t>(max_level));

    resetLive();

    // Count re-growth of warmed storage only: a fresh tree's first
    // backing is creation, accounted where the tree is pooled
    // (TemporalPreprocessState::leaseBundle), not here — transient
    // per-frame trees (backends, tests) stay invisible to the
    // steady-state zero-alloc pin.
    if (cap_before > 0 && backingCapacity() > cap_before)
        FrameWorkspace::noteGrowth();
}

void
Octree::erectBottomUp()
{
    const std::size_t n = codes.size();
    const int depth = cfg.maxDepth;
    auto &levels = scratch.levels;
    if (levels.size() < static_cast<std::size_t>(depth) + 1)
        levels.resize(depth + 1);

    // Deepest level: one run per distinct full-depth code.
    auto &deep = levels[depth];
    deep.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (deep.empty() || deep.back().code != codes[i]) {
            deep.push_back({codes[i], static_cast<PointIndex>(i),
                            static_cast<PointIndex>(i + 1), kNoNode, 0});
        } else {
            deep.back().end = static_cast<PointIndex>(i + 1);
        }
    }

    // Agglomerate upwards: each level's runs are the distinct
    // (code >> 3) prefixes of the level below, carrying the merged
    // point range, the occupied-octant mask and the index of their
    // first child run (the pointerless NavVolume layout).
    for (int lvl = depth - 1; lvl >= 0; --lvl) {
        const auto &child = levels[lvl + 1];
        auto &cur = levels[lvl];
        cur.clear();
        for (std::size_t j = 0; j < child.size(); ++j) {
            const morton::Code pc = child[j].code >> 3;
            if (cur.empty() || cur.back().code != pc) {
                cur.push_back({pc, child[j].begin, child[j].end,
                               static_cast<std::int32_t>(j), 0});
            } else {
                cur.back().end = child[j].end;
            }
            cur.back().mask |=
                static_cast<std::uint8_t>(1u << (child[j].code & 7u));
        }
    }
    HGPCN_ASSERT(levels[0].size() == 1, "agglomeration lost the root");

    // DFS emission reproduces processNode()'s exact node order:
    // siblings contiguous in ascending octant, then recurse in order.
    emitRun(0, 0, levels[0][0]);
}

void
Octree::emitRun(NodeIndex self, int level,
                const BuildScratch::LevelRun &run)
{
    if (level > max_level)
        max_level = level;

    const std::uint32_t count = run.end - run.begin;
    const bool subdivide =
        level < cfg.maxDepth && count > cfg.leafCapacity;
    if (!subdivide) {
        ++leaf_total;
        for (PointIndex i = run.begin; i < run.end; ++i)
            point_leaf[i] = self;
        return;
    }

    node_store[self].childMask = run.mask;
    const NodeIndex first_child =
        static_cast<NodeIndex>(node_store.size());
    node_store[self].firstChild = first_child;

    const int n_children = std::popcount(run.mask);
    const auto &child_level = scratch.levels[level + 1];
    for (int c = 0; c < n_children; ++c) {
        const auto &cr = child_level[run.firstChild + c];
        OctreeNode child;
        child.code = cr.code;
        child.level = static_cast<std::uint16_t>(level + 1);
        child.parent = self;
        child.pointBegin = cr.begin;
        child.pointEnd = cr.end;
        node_store.push_back(child);
    }
    for (int c = 0; c < n_children; ++c)
        emitRun(first_child + c, level + 1,
                child_level[run.firstChild + c]);
}

void
Octree::processNode(NodeIndex self)
{
    const morton::Code code = node_store[self].code;
    const int level = node_store[self].level;
    const PointIndex begin = node_store[self].pointBegin;
    const PointIndex end = node_store[self].pointEnd;
    const std::uint32_t count = end - begin;

    if (level > max_level)
        max_level = level;

    const bool subdivide =
        level < cfg.maxDepth && count > cfg.leafCapacity;
    if (!subdivide) {
        ++leaf_total;
        for (PointIndex i = begin; i < end; ++i)
            point_leaf[i] = self;
        return;
    }

    // Partition the sorted range into the eight octants by the next
    // 3-bit group. Because codes are sorted, each octant is a
    // contiguous sub-range found by binary search.
    const int shift = 3 * (cfg.maxDepth - level - 1);
    struct ChildRange
    {
        unsigned octant;
        PointIndex begin;
        PointIndex end;
    };
    ChildRange ranges[8];
    int n_children = 0;
    std::uint8_t mask = 0;
    PointIndex cursor = begin;
    for (unsigned oct = 0; oct < 8 && cursor < end; ++oct) {
        const morton::Code upper = (morton::child3(code, oct) + 1)
                                   << shift;
        const auto it = std::lower_bound(codes.begin() + cursor,
                                         codes.begin() + end, upper);
        const auto stop = static_cast<PointIndex>(it - codes.begin());
        if (stop > cursor) {
            mask |= static_cast<std::uint8_t>(1u << oct);
            ranges[n_children++] = {oct, cursor, stop};
            cursor = stop;
        }
    }
    HGPCN_ASSERT(cursor == end, "octant partition lost points");

    // Siblings are stored contiguously (childAt() relies on it); the
    // recursion below appends grandchildren after all siblings.
    node_store[self].childMask = mask;
    const NodeIndex first_child =
        static_cast<NodeIndex>(node_store.size());
    node_store[self].firstChild = first_child;

    for (int c = 0; c < n_children; ++c) {
        OctreeNode child;
        child.code = morton::child3(code, ranges[c].octant);
        child.level = static_cast<std::uint16_t>(level + 1);
        child.parent = self;
        child.pointBegin = ranges[c].begin;
        child.pointEnd = ranges[c].end;
        node_store.push_back(child);
    }
    for (int c = 0; c < n_children; ++c)
        processNode(first_child + c);
}

NodeIndex
Octree::childAt(NodeIndex n, unsigned octant) const
{
    const OctreeNode &node = node_store[n];
    if (!(node.childMask & (1u << octant)))
        return kNoNode;
    const unsigned below = node.childMask & ((1u << octant) - 1u);
    return node.firstChild + std::popcount(below);
}

NodeIndex
Octree::findLeaf(const Vec3 &p) const
{
    const morton::Code full =
        morton::pointCode3(p, root_bounds, cfg.maxDepth);
    NodeIndex cur = 0;
    while (!node_store[cur].isLeaf()) {
        const int child_level = node_store[cur].level + 1;
        const unsigned oct = static_cast<unsigned>(
            morton::ancestorAt(full, cfg.maxDepth, child_level) & 7u);
        const NodeIndex next = childAt(cur, oct);
        if (next == kNoNode)
            return cur; // empty octant: position is in this voxel
        cur = next;
    }
    return cur;
}

std::pair<PointIndex, PointIndex>
Octree::voxelRange(morton::Code code, int level) const
{
    HGPCN_ASSERT(level >= 0 && level <= cfg.maxDepth, "level=", level);
    const int shift = 3 * (cfg.maxDepth - level);
    const morton::Code lo = code << shift;
    const morton::Code hi = (code + 1) << shift;
    const auto first = std::lower_bound(codes.begin(), codes.end(), lo);
    const auto last = std::lower_bound(first, codes.end(), hi);
    return {static_cast<PointIndex>(first - codes.begin()),
            static_cast<PointIndex>(last - codes.begin())};
}

void
Octree::resetLive()
{
    // resize + fill, not assign: assign() reallocates to the exact
    // new size, so fluctuating node counts would grow the backing a
    // little on every new high-water frame; resize() grows
    // geometrically and converges (the pooled zero-alloc path).
    live.resize(node_store.size());
    for (std::size_t i = 0; i < node_store.size(); ++i)
        live[i] = node_store[i].count();
    sampled.resize(node_store.size());
    std::fill(sampled.begin(), sampled.end(), 0u);
    consumed.resize(codes.size());
    std::fill(consumed.begin(), consumed.end(), 0);
}

int
Octree::consumePoint(PointIndex i)
{
    HGPCN_ASSERT(i < codes.size(), "point index out of range: ", i);
    HGPCN_ASSERT(!consumed[i], "point consumed twice: ", i);
    consumed[i] = 1;
    int levels = 0;
    for (NodeIndex n = point_leaf[i]; n != kNoNode;
         n = node_store[n].parent) {
        HGPCN_ASSERT(live[n] > 0, "live underflow at node ", n);
        --live[n];
        ++sampled[n];
        ++levels;
    }
    return levels;
}

NodeIndex
Octree::descendFarthest(morton::Code seed_code, DescentMetric metric,
                        std::uint32_t stop_count,
                        int *levels_visited) const
{
    if (live[0] == 0)
        return kNoNode;

    // Seed cell coordinates at max depth; shifted down per level for
    // geometric scoring.
    morton::CellCoord sx = 0, sy = 0, sz = 0;
    morton::decode3(seed_code, cfg.maxDepth, sx, sy, sz);

    NodeIndex cur = 0;
    int levels = 0;
    // Decoded coordinates of the current node's cell.
    std::uint32_t cx = 0, cy = 0, cz = 0;

    while (!node_store[cur].isLeaf() && live[cur] > stop_count) {
        const int child_level = node_store[cur].level + 1;
        const int shift = cfg.maxDepth - child_level;
        const unsigned seed_bits = static_cast<unsigned>(
            morton::ancestorAt(seed_code, cfg.maxDepth, child_level) &
            7u);
        const std::uint32_t seed_cx = sx >> shift;
        const std::uint32_t seed_cy = sy >> shift;
        const std::uint32_t seed_cz = sz >> shift;

        NodeIndex best = kNoNode;
        std::uint64_t best_primary = 0;
        std::uint64_t best_secondary = 0;
        unsigned best_oct = 0;

        for (unsigned oct = 0; oct < 8; ++oct) {
            const NodeIndex child = childAt(cur, oct);
            if (child == kNoNode || live[child] == 0)
                continue;
            // Child cell coordinates extend the parent's.
            const std::uint32_t kx = (cx << 1) | ((oct >> 2) & 1u);
            const std::uint32_t ky = (cy << 1) | ((oct >> 1) & 1u);
            const std::uint32_t kz = (cz << 1) | (oct & 1u);
            const std::int64_t dx =
                static_cast<std::int64_t>(kx) - seed_cx;
            const std::int64_t dy =
                static_cast<std::int64_t>(ky) - seed_cy;
            const std::int64_t dz =
                static_cast<std::int64_t>(kz) - seed_cz;
            const std::uint64_t dist_sq =
                static_cast<std::uint64_t>(dx * dx + dy * dy + dz * dz);

            std::uint64_t primary = 0;
            std::uint64_t secondary = 0;
            switch (metric) {
              case DescentMetric::Balanced:
                // Fewest samples first (stored inverted so that
                // "bigger is better" holds for every metric), then
                // farthest from the seed.
                primary = ~static_cast<std::uint64_t>(sampled[child]);
                secondary = dist_sq;
                break;
              case DescentMetric::Euclid:
                primary = dist_sq;
                secondary = oct ^ seed_bits;
                break;
              case DescentMetric::Hamming:
                primary = static_cast<std::uint64_t>(
                    std::popcount(oct ^ seed_bits));
                secondary = oct ^ seed_bits;
                break;
            }
            if (best == kNoNode || primary > best_primary ||
                (primary == best_primary &&
                 secondary > best_secondary)) {
                best = child;
                best_primary = primary;
                best_secondary = secondary;
                best_oct = oct;
            }
        }
        HGPCN_ASSERT(best != kNoNode,
                     "live counters inconsistent at node ", cur);
        cx = (cx << 1) | ((best_oct >> 2) & 1u);
        cy = (cy << 1) | ((best_oct >> 1) & 1u);
        cz = (cz << 1) | (best_oct & 1u);
        cur = best;
        ++levels;
    }
    if (levels_visited)
        *levels_visited = levels;
    return cur;
}

std::size_t
Octree::validate() const
{
    const std::size_t n = codes.size();
    // Codes ascend (SFC order).
    for (std::size_t i = 1; i < n; ++i) {
        HGPCN_ASSERT(codes[i - 1] <= codes[i],
                     "codes not sorted at ", i);
    }
    // Permutation is a bijection.
    std::vector<std::uint8_t> seen(n, 0);
    for (PointIndex p : perm) {
        HGPCN_ASSERT(p < n, "permutation out of range");
        HGPCN_ASSERT(!seen[p], "permutation repeats ", p);
        seen[p] = 1;
    }
    // Node structure.
    std::size_t leaf_points = 0;
    for (std::size_t idx = 0; idx < node_store.size(); ++idx) {
        const OctreeNode &node = node_store[idx];
        HGPCN_ASSERT(node.pointBegin <= node.pointEnd,
                     "negative range at node ", idx);
        if (node.isLeaf()) {
            leaf_points += node.count();
            for (PointIndex i = node.pointBegin; i < node.pointEnd;
                 ++i) {
                HGPCN_ASSERT(point_leaf[i] ==
                                 static_cast<NodeIndex>(idx),
                             "leaf map mismatch at point ", i);
            }
            continue;
        }
        PointIndex cursor = node.pointBegin;
        std::uint32_t live_sum = 0;
        for (unsigned oct = 0; oct < 8; ++oct) {
            const NodeIndex child =
                childAt(static_cast<NodeIndex>(idx), oct);
            if (child == kNoNode)
                continue;
            const OctreeNode &c = node_store[child];
            HGPCN_ASSERT(c.parent == static_cast<NodeIndex>(idx),
                         "bad parent link at node ", child);
            HGPCN_ASSERT(c.level == node.level + 1,
                         "bad level at node ", child);
            HGPCN_ASSERT(c.code == morton::child3(node.code, oct),
                         "bad code prefix at node ", child);
            HGPCN_ASSERT(c.pointBegin == cursor,
                         "range gap before node ", child);
            cursor = c.pointEnd;
            live_sum += live[child];
        }
        HGPCN_ASSERT(cursor == node.pointEnd,
                     "children do not cover node ", idx);
        HGPCN_ASSERT(live_sum == live[idx],
                     "live counter mismatch at node ", idx);
    }
    HGPCN_ASSERT(leaf_points == n, "leaves cover ", leaf_points,
                 " of ", n, " points");
    return node_store.size();
}

PointIndex
Octree::farthestLivePointInLeaf(NodeIndex leaf,
                                morton::Code seed_code) const
{
    const OctreeNode &node = node_store[leaf];
    PointIndex best = node.pointEnd;
    morton::Code best_xor = 0;
    for (PointIndex i = node.pointBegin; i < node.pointEnd; ++i) {
        if (consumed[i])
            continue;
        const morton::Code x = codes[i] ^ seed_code;
        if (best == node.pointEnd || x > best_xor) {
            best = i;
            best_xor = x;
        }
    }
    HGPCN_ASSERT(best != node.pointEnd, "leaf ", leaf,
                 " has no live point");
    return best;
}

} // namespace hgpcn
