/**
 * @file
 * Incremental octree updates across temporally coherent frames.
 *
 * Consecutive LiDAR sweeps of a drive share most of their points:
 * the ego vehicle moves a little and a fraction of the returns churn.
 * Rebuilding the Morton index from scratch re-sorts and re-erects
 * everything; this builder instead diffs the new frame against the
 * previous frame's tree and
 *
 *  1. matches new points to previous reordered slots by coordinate
 *     bit pattern (hash join), classifying every point as retained,
 *     inserted or evicted (geometry/point_delta.h);
 *  2. produces the new sorted code array by merging the retained
 *     run (already SFC-sorted in the old tree) with the freshly
 *     sorted insertions — O(n + k log k) instead of a full sort;
 *  3. re-erects only subtrees whose point ranges contain an
 *     insertion or eviction, block-copying every clean old subtree
 *     with an index offset.
 *
 * The output is bit-identical to Octree::rebuild() on the same
 * frame: whenever a precondition cannot be proven (bounds moved,
 * config changed, retained points re-ordered within an equal-code
 * run), the builder falls back to the from-scratch path, so callers
 * never observe a difference beyond wall-clock. Modeled build stats
 * (host reads/writes, sort ops) are charged by the same closed-form
 * formulas as the scratch build — the paper-model numbers do not
 * move, only host time does.
 */

#ifndef HGPCN_OCTREE_INCREMENTAL_OCTREE_H
#define HGPCN_OCTREE_INCREMENTAL_OCTREE_H

#include <cstdint>
#include <vector>

#include "geometry/point_delta.h"
#include "octree/octree.h"

namespace hgpcn
{

/**
 * Stateless-between-frames incremental builder; owns only reusable
 * scratch (hash table, chains, insert buffer), so one instance per
 * stream gives zero-alloc steady-state updates.
 */
class IncrementalOctreeBuilder
{
  public:
    /**
     * Build @p out over @p cloud, reusing structure from @p prev
     * when possible.
     *
     * @param cloud New frame (raw input order).
     * @param prev Previous frame's tree, or nullptr for the first
     *   frame. Must not alias @p out.
     * @param config Build parameters; must equal prev->config() for
     *   the incremental path to engage.
     * @param out Rebuilt in place (capacity reused).
     * @return true when the incremental path ran; false when the
     *   builder fell back to Octree::rebuild(). delta() is only
     *   meaningful after a true return.
     */
    bool update(const PointCloud &cloud, const Octree *prev,
                const Octree::Config &config, Octree &out);

    /** @return the cross-frame delta of the last incremental update. */
    const PointDelta &delta() const { return delta_; }

    /** @return nodes block-copied from the previous tree. */
    std::size_t nodesReused() const { return nodes_reused; }

    /** @return nodes re-erected around dirty ranges. */
    std::size_t nodesErected() const { return nodes_erected; }

  private:
    // Scratch reused across frames.
    std::vector<PointIndex> table;   //!< hash buckets (head slot)
    std::vector<PointIndex> chain;   //!< next old slot in bucket
    std::vector<std::uint8_t> matched_old;
    std::vector<PointIndex> new_of_old; //!< new input idx per old slot
    std::vector<std::pair<morton::Code, PointIndex>> inserts;

    PointDelta delta_;
    std::size_t nodes_reused = 0;
    std::size_t nodes_erected = 0;

    const Octree *old_tree = nullptr;
    Octree *new_tree = nullptr;

    /** @return sum of scratch capacities (growth accounting). */
    std::size_t scratchCapacity() const;

    /** Hash-join @p cloud against the previous reordered points. */
    void matchPoints(const PointCloud &cloud);

    /**
     * Merge retained and inserted points into the new sorted
     * (code, perm) arrays, filling delta_.
     * @return false when the retained run is not key-sorted (the
     *   incremental order precondition failed).
     */
    bool mergeOrder(const PointCloud &cloud);

    /** Erect node @p self, aligned with old node @p old_idx. */
    void erectNode(NodeIndex self, NodeIndex old_idx);

    /** Copy the clean old subtree @p old_idx as new node @p self. */
    void copySubtree(NodeIndex self, NodeIndex old_idx);
};

} // namespace hgpcn

#endif // HGPCN_OCTREE_INCREMENTAL_OCTREE_H
