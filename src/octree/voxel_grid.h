/**
 * @file
 * Uniform voxel-grid view of an octree level.
 *
 * The Voxel-Expanded Gathering method (Section VI) expands voxel
 * shells around a central point's voxel: ring 1 is the 26 voxels
 * touching the seed voxel, ring 2 the next shell, and so on (Fig. 8).
 * Because the reordered point array is sorted by full-depth m-code,
 * the points of *any* voxel at *any* level form a contiguous range,
 * so each ring cell costs one Octree-Table range lookup.
 */

#ifndef HGPCN_OCTREE_VOXEL_GRID_H
#define HGPCN_OCTREE_VOXEL_GRID_H

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/point_delta.h"
#include "octree/octree.h"

namespace hgpcn
{

/** Integer cell address at a fixed octree level. */
struct GridCell
{
    std::int32_t x = 0;
    std::int32_t y = 0;
    std::int32_t z = 0;

    bool
    operator==(const GridCell &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }
};

/** One occupied cell of a level: coordinates + reordered range. */
struct OccupiedCell
{
    GridCell cell;
    PointIndex first = 0; //!< reordered range start
    PointIndex last = 0;  //!< reordered range end (exclusive)
};

/**
 * A read-only uniform-grid view over one level of an octree.
 */
class VoxelGrid
{
  public:
    /**
     * Create a view at @p level (0..tree.config().maxDepth).
     * The Octree must outlive the view.
     */
    VoxelGrid(const Octree &tree, int level);

    /**
     * Create a view whose occupied-cell list is borrowed from
     * @p external (must equal what buildOccupiedCells() would
     * produce for this tree/level, and must outlive the view).
     * The temporal-coherence cache path: the list is maintained
     * incrementally across frames instead of rebuilt per view.
     */
    VoxelGrid(const Octree &tree, int level,
              const std::vector<OccupiedCell> *external);

    /** @return level viewed. */
    int level() const { return lvl; }

    /** @return cells per axis (2^level). */
    std::int32_t cellsPerAxis() const { return axis_cells; }

    /** @return cell containing position @p p. */
    GridCell cellOf(const Vec3 &p) const;

    /** @return true when @p c lies inside the grid. */
    bool inGrid(const GridCell &c) const;

    /** @return m-code of cell @p c at this level. */
    morton::Code cellCode(const GridCell &c) const;

    /**
     * @return [first, last) of reordered point indices inside cell
     * @p c (empty for out-of-grid cells).
     */
    std::pair<PointIndex, PointIndex> cellRange(const GridCell &c) const;

    /** @return number of points in cell @p c. */
    std::uint32_t cellCount(const GridCell &c) const;

    /**
     * Visit every in-grid cell of the Chebyshev shell at distance
     * @p ring from @p center (ring 0 = the center cell itself).
     *
     * @return number of cells visited.
     */
    std::size_t forEachRingCell(
        const GridCell &center, int ring,
        const std::function<void(const GridCell &)> &fn) const;

    /** @return total points in the Chebyshev shell at @p ring. */
    std::uint32_t ringPointCount(const GridCell &center, int ring) const;

    /**
     * Append the reordered point indices of the shell at @p ring to
     * @p out.
     * @return number of table lookups performed (hardware cost).
     */
    std::size_t gatherRingPoints(const GridCell &center, int ring,
                                 std::vector<PointIndex> &out) const;

    /**
     * @return in-grid cell count of the shell at @p ring — the
     * number forEachRingCell() would visit — in O(1) (clipped-box
     * difference). This is the table-lookup cost the DSU model
     * charges for the ring, independent of how the host computed
     * the ring's points.
     */
    std::size_t shellCellCount(const GridCell &center, int ring) const;

    /**
     * @return the level's occupied cells with their reordered
     * ranges, sorted by (x, y, z); built lazily in one O(n) pass
     * over the point codes. The host-side shortcut behind
     * ringPointCount()/gatherRingPoints(): sparse or deep levels
     * serve rings by scanning this list instead of visiting every
     * (mostly empty) shell cell — same points, same order, same
     * modeled lookup counts (docs/PERFORMANCE.md).
     */
    const std::vector<OccupiedCell> &occupiedCells() const;

    /**
     * Pick a gathering level such that the expected voxel occupancy
     * suits K-neighbor gathering: roughly one to two points per
     * voxel, clamped to the octree's built depth.
     */
    static int autoLevel(std::size_t n_points, int max_level);

  private:
    /** @return in-grid cells within Chebyshev distance @p radius of
     * @p center (clipped box volume); 0 when radius < 0. */
    std::size_t boxCellCount(const GridCell &center,
                             std::int32_t radius) const;

    const Octree &octree;
    int lvl;
    std::int32_t axis_cells;
    /** Borrowed occupied-cell list (nullptr = build occ lazily). */
    const std::vector<OccupiedCell> *ext_occ = nullptr;
    /** Lazy occupied-cell list (single-threaded use, like the
     * gatherers that own grid views). */
    mutable std::vector<OccupiedCell> occ;
    mutable bool occ_built = false;
};

/**
 * Compute the occupied cells of @p level over @p tree into @p out —
 * the list occupiedCells() builds lazily, as a free function so
 * cross-frame caches can own the storage. @p out keeps capacity.
 */
void buildOccupiedCells(const Octree &tree, int level,
                        std::vector<OccupiedCell> &out);

/**
 * Incrementally produce the occupied-cell list of @p new_tree at
 * @p level by patching @p prev_occ (the previous frame's list at the
 * same level over @p prev_tree) with the cross-frame @p delta:
 * clean cells keep their entry with point ranges remapped through
 * the delta; cells touched by an insertion or eviction are re-read
 * from the new tree (two binary searches each). Output is
 * bit-identical to buildOccupiedCells() on @p new_tree.
 *
 * @return false when patching cannot engage (level 0, or the trees'
 * depths differ); @p out is then untouched.
 */
bool patchOccupiedCells(const Octree &new_tree, int level,
                        const Octree &prev_tree,
                        const std::vector<OccupiedCell> &prev_occ,
                        const PointDelta &delta,
                        std::vector<OccupiedCell> &out);

} // namespace hgpcn

#endif // HGPCN_OCTREE_VOXEL_GRID_H
