#include "octree/octree_table.h"

namespace hgpcn
{

OctreeTable
OctreeTable::fromOctree(const Octree &tree)
{
    OctreeTable table;
    table.rows.reserve(tree.nodes().size());
    for (const OctreeNode &node : tree.nodes()) {
        OctreeTableEntry row;
        row.code = node.code;
        row.pointBegin = node.pointBegin;
        row.pointEnd = node.pointEnd;
        row.firstChild = node.firstChild;
        row.level = node.level;
        row.childMask = node.childMask;
        table.rows.push_back(row);
    }
    return table;
}

} // namespace hgpcn
