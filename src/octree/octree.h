/**
 * @file
 * Octree spatial index over a point cloud.
 *
 * Implements the paper's Octree-build Unit (Section V-A): a single
 * pass over the raw points computes full-depth m-codes, sorts them
 * into Space-Filling-Curve order (this *is* the "Octree-based
 * organization in Host Memory" — the reordered copy lives in
 * reorderedCloud()), and erects the node hierarchy over the sorted
 * ranges. Every leaf maps to a contiguous range of the reordered
 * array, so "reading the points of a voxel" is a sequential host
 * memory burst.
 *
 * Subdivision stops at Config::maxDepth ("pre-defined depth") or when
 * a voxel holds at most Config::leafCapacity points; the second rule
 * reproduces the paper's observation (Fig. 11) that more non-uniform
 * clouds grow deeper octrees.
 */

#ifndef HGPCN_OCTREE_OCTREE_H
#define HGPCN_OCTREE_OCTREE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "geometry/morton.h"
#include "geometry/point_cloud.h"

namespace hgpcn
{

/** Index of a node inside an Octree. */
using NodeIndex = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeIndex kNoNode = -1;

/**
 * One voxel of the octree.
 *
 * Children are stored contiguously; childMask records which octants
 * exist so the child for octant o sits at
 * firstChild + popcount(childMask & ((1 << o) - 1)).
 */
struct OctreeNode
{
    morton::Code code = 0;     //!< m-code, 3*level significant bits
    std::uint16_t level = 0;   //!< 0 = root
    std::uint8_t childMask = 0;
    NodeIndex firstChild = kNoNode;
    NodeIndex parent = kNoNode;
    PointIndex pointBegin = 0; //!< range into the reordered cloud
    PointIndex pointEnd = 0;

    /** @return true when this node has no children. */
    bool isLeaf() const { return childMask == 0; }

    /** @return number of points under this node. */
    std::uint32_t count() const { return pointEnd - pointBegin; }
};

/**
 * Scoring rule of the farthest-voxel descent (see docs/DESIGN.md §5).
 *
 * The paper's Sampling Modules compare m-codes by Hamming distance
 * (XOR + popcount). That metric degenerates for interior seed
 * points: cells adjacent across a mid-plane differ in every bit, so
 * a centroid seed drags every pick to the cube center. We therefore
 * default to a balanced descent that keeps the same table-lookup
 * structure and O(depth) cost while actually reproducing the
 * paper's FPS-equivalent sampling quality; the other metrics remain
 * selectable for the ablation bench.
 */
enum class DescentMetric
{
    /** Prefer the child with the fewest samples so far, breaking
     * ties by geometric distance from the seed (default). */
    Balanced,
    /** Maximize squared distance between voxel-center cells. */
    Euclid,
    /** Maximize per-level Hamming distance (paper-literal). */
    Hamming,
};

/**
 * Spatial index over a point cloud frame.
 */
class Octree
{
  public:
    /** Build parameters. */
    struct Config
    {
        /** Pre-defined maximum subdivision depth (paper Section V). */
        int maxDepth = 10;
        /** Stop subdividing voxels holding at most this many points. */
        std::uint32_t leafCapacity = 8;
        /** Sort the m-codes with an LSD radix sort (O(n) passes)
         * instead of comparison sorting; identical output, faster
         * builds on large frames. */
        bool useRadixSort = true;

        /** Erect the nodes bottom-up from the sorted codes
         * (NavVolume-style pointerless agglomeration: one linear
         * pass per level) instead of top-down recursion with
         * per-octant binary searches. Identical output — pinned by
         * tests/test_temporal.cc; the recursive builder remains the
         * oracle. */
        bool bottomUpBuild = true;
    };

    /**
     * Build the octree and the SFC-reordered point copy in a single
     * conceptual pass of @p cloud.
     *
     * Build-cost accounting (host reads/writes, code computations and
     * sort operations) is recorded in buildStats().
     */
    static Octree build(const PointCloud &cloud, const Config &config);

    /**
     * Rebuild this octree in place over @p cloud — identical output
     * to build(), but every backing store (codes, permutation, node
     * array, reordered copy, build scratch) reuses its capacity.
     * This is the pooled-octree path: once a tree has seen a frame
     * of the stream's size, later rebuilds allocate nothing
     * (growth is counted via FrameWorkspace::noteGrowth, so the
     * zero-alloc steady-state test covers it).
     */
    void rebuild(const PointCloud &cloud, const Config &config);

    /** @return build parameters used. */
    const Config &config() const { return cfg; }

    /** @return root voxel bounds (cubified frame AABB). */
    const Aabb &rootBounds() const { return root_bounds; }

    /** @return depth actually reached (max leaf level). */
    int depth() const { return max_level; }

    /** @return all nodes; index 0 is the root. */
    const std::vector<OctreeNode> &nodes() const { return node_store; }

    /** @return node @p i. */
    const OctreeNode &node(NodeIndex i) const { return node_store[i]; }

    /** @return number of leaves. */
    std::size_t leafCount() const { return leaf_total; }

    /**
     * @return the SFC-ordered copy of the input points (the paper's
     * pre-configured Host Memory image).
     */
    const PointCloud &reorderedCloud() const { return reordered; }

    /**
     * @return mapping from reordered position to original point
     * index: reorderedCloud() point i == input point permutation()[i].
     */
    const std::vector<PointIndex> &permutation() const { return perm; }

    /** @return full-depth m-code of reordered point @p i. */
    morton::Code pointCode(PointIndex i) const { return codes[i]; }

    /** @return all full-depth point codes, ascending (SFC order). */
    const std::vector<morton::Code> &pointCodes() const { return codes; }

    /** @return leaf node holding reordered point @p i. */
    NodeIndex leafOf(PointIndex i) const { return point_leaf[i]; }

    /** @return index of the child of @p n in octant @p o, or kNoNode. */
    NodeIndex childAt(NodeIndex n, unsigned octant) const;

    /** @return leaf node whose voxel contains position @p p. */
    NodeIndex findLeaf(const Vec3 &p) const;

    /**
     * @return range [first, last) of reordered point indices lying in
     * the voxel (@p code, @p level), whether or not a node exists at
     * exactly that level. Resolved by binary search over the sorted
     * point codes (two Octree-Table lookups in hardware).
     */
    std::pair<PointIndex, PointIndex> voxelRange(morton::Code code,
                                                 int level) const;

    /** @return statistics recorded while building. */
    const StatSet &buildStats() const { return build_stats; }

    /**
     * Check every structural invariant (sorted codes, permutation
     * bijectivity, child ranges partitioning parents, code prefixes,
     * leaf coverage, live-counter consistency). Intended for tests
     * and debugging; panics with a description on the first
     * violation.
     * @return number of nodes checked.
     */
    std::size_t validate() const;

    // ------------------------------------------------------------------
    // Live-point bookkeeping for sampling (Section V-B). Picking a
    // point during OIS marks it consumed so the farthest-voxel descent
    // skips exhausted subtrees.
    // ------------------------------------------------------------------

    /** Reset all points to live. */
    void resetLive();

    /** @return live (not yet consumed) points under node @p n. */
    std::uint32_t liveCount(NodeIndex n) const { return live[n]; }

    /** @return points already sampled from under node @p n. */
    std::uint32_t sampledCount(NodeIndex n) const { return sampled[n]; }

    /** @return true when reordered point @p i is still live. */
    bool isLive(PointIndex i) const { return !consumed[i]; }

    /**
     * Mark reordered point @p i consumed, decrementing the live
     * counters along its leaf-to-root path.
     * @return number of levels updated (hardware cost proxy).
     */
    int consumePoint(PointIndex i);

    /**
     * Farthest-voxel descent of Algorithm 2 (Fig. 6): starting at
     * the root, repeatedly move to the live child scoring best under
     * @p metric against the seed voxel's m-code, until a leaf is
     * reached (or, for the approximate-OIS variant, until the node's
     * live population drops to @p stop_count or fewer).
     *
     * @param seed_code Full-depth m-code of the (virtual) seed point.
     * @param metric Child scoring rule.
     * @param stop_count Early-stop population (0 = descend to leaf).
     * @param[out] levels_visited Number of levels descended.
     * @return node index, or kNoNode when no live point remains.
     */
    NodeIndex descendFarthest(morton::Code seed_code,
                              DescentMetric metric =
                                  DescentMetric::Balanced,
                              std::uint32_t stop_count = 0,
                              int *levels_visited = nullptr) const;

    /**
     * Among the live points of leaf @p leaf, pick the farthest from
     * @p seed_code in SFC terms (max XOR magnitude of full-depth
     * codes).
     * @return reordered point index, or an assertion if none is live.
     */
    PointIndex farthestLivePointInLeaf(NodeIndex leaf,
                                       morton::Code seed_code) const;

  private:
    friend class IncrementalOctreeBuilder;

    /**
     * Build-time scratch retained across rebuild() calls so pooled
     * trees sort and agglomerate with zero steady-state allocation.
     * Copying a tree deliberately does not copy its scratch.
     */
    struct BuildScratch
    {
        /** One maximal run of equal level-prefix codes. */
        struct LevelRun
        {
            morton::Code code;      //!< code >> 3*(maxDepth-level)
            PointIndex begin;       //!< reordered point range
            PointIndex end;
            std::int32_t firstChild; //!< index into the child level
            std::uint8_t mask;      //!< occupied child octants
        };

        std::vector<std::pair<morton::Code, PointIndex>> keyed;
        std::vector<std::pair<morton::Code, PointIndex>> radix;
        std::vector<std::vector<LevelRun>> levels;

        BuildScratch() = default;
        BuildScratch(const BuildScratch &) {}
        BuildScratch &operator=(const BuildScratch &) { return *this; }
        BuildScratch(BuildScratch &&) = default;
        BuildScratch &operator=(BuildScratch &&) = default;
    };

    Config cfg;
    Aabb root_bounds;
    int max_level = 0;
    std::size_t leaf_total = 0;
    std::vector<OctreeNode> node_store;
    std::vector<morton::Code> codes;
    std::vector<PointIndex> perm;
    std::vector<NodeIndex> point_leaf;
    PointCloud reordered;
    StatSet build_stats;
    BuildScratch scratch;

    // Sampling state.
    std::vector<std::uint32_t> live;
    std::vector<std::uint32_t> sampled;
    std::vector<std::uint8_t> consumed;

    /** Recursively subdivide node @p self or finalize it as a leaf. */
    void processNode(NodeIndex self);

    /** Pointerless bottom-up erection over the sorted codes. */
    void erectBottomUp();

    /** Emit node @p self for @p run, recursing into its children. */
    void emitRun(NodeIndex self, int level,
                 const BuildScratch::LevelRun &run);

    /** Sum of backing capacities — growth detection for rebuild(). */
    std::size_t backingCapacity() const;
};

} // namespace hgpcn

#endif // HGPCN_OCTREE_OCTREE_H
