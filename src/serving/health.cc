#include "serving/health.h"

namespace hgpcn
{

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

double
breakerStateGauge(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return 0.0;
    case BreakerState::HalfOpen:
        return 1.0;
    case BreakerState::Open:
        return 2.0;
    }
    return 0.0;
}

} // namespace hgpcn
