#include "serving/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace hgpcn
{
namespace
{

/** Fixed-precision double for deterministic log lines. */
std::string
fixed3(double v)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(3);
    oss << v;
    return oss.str();
}

/** ElasticRunner's control epochs are per-epoch fleet serves over
 * one shared fleet history: circuit-breaker state must carry
 * across them (and is reset at every elastic serve() start). */
ShardedRunner::Config
persistentFleet(ShardedRunner::Config fleet)
{
    fleet.persistHealth = true;
    return fleet;
}

} // namespace

const char *
scaleActionName(ScaleAction action)
{
    switch (action) {
    case ScaleAction::Hold:
        return "hold";
    case ScaleAction::Up:
        return "up";
    case ScaleAction::Down:
        return "down";
    }
    return "?";
}

Autoscaler::Autoscaler(const AutoscalerConfig &config) : cfg(config)
{
    HGPCN_ASSERT(cfg.minShards >= 1, "minShards must be >= 1");
    HGPCN_ASSERT(cfg.maxShards >= cfg.minShards,
                 "maxShards (", cfg.maxShards,
                 ") must be >= minShards (", cfg.minShards, ")");
    HGPCN_ASSERT(cfg.upStep >= 1 && cfg.downStep >= 1,
                 "scale steps must be >= 1");
    HGPCN_ASSERT(cfg.upHoldEpochs >= 1 && cfg.downHoldEpochs >= 1,
                 "hold thresholds must be >= 1");
    HGPCN_ASSERT(cfg.upUtilization > cfg.downUtilization,
                 "upUtilization (", cfg.upUtilization,
                 ") must exceed downUtilization (",
                 cfg.downUtilization, ")");
    HGPCN_ASSERT(cfg.behindTolerance >= 0.0 &&
                     cfg.behindTolerance < 1.0,
                 "behindTolerance must be in [0, 1)");
    HGPCN_ASSERT(cfg.backlogPerShard >= 0.0,
                 "backlogPerShard must be >= 0");
}

ScaleDecision
Autoscaler::step(const EpochSignals &signals)
{
    const bool behind =
        signals.sustainedFps <
        signals.offeredFps * (1.0 - cfg.behindTolerance);
    const bool backlogged =
        static_cast<double>(signals.backlogFrames) >
        cfg.backlogPerShard *
            static_cast<double>(signals.activeShards);
    const bool overloaded = backlogged ||
                            signals.utilization > cfg.upUtilization ||
                            behind;
    const bool underloaded =
        !overloaded && signals.utilization < cfg.downUtilization;

    if (overloaded) {
        ++overEpochs;
        underEpochs = 0;
    } else if (underloaded) {
        ++underEpochs;
        overEpochs = 0;
    } else {
        overEpochs = 0;
        underEpochs = 0;
    }

    ScaleDecision out;
    out.shards = signals.activeShards;

    if (cooldown > 0) {
        --cooldown;
        out.reason = "cooldown";
        return out;
    }

    if (overEpochs >= cfg.upHoldEpochs) {
        if (signals.activeShards >= cfg.maxShards) {
            out.reason = "overloaded at maxShards";
            return out;
        }
        out.action = ScaleAction::Up;
        out.shards = std::min(cfg.maxShards,
                              signals.activeShards + cfg.upStep);
        out.reason =
            "overloaded " + std::to_string(overEpochs) +
            " epoch(s): util " + fixed3(signals.utilization) +
            ", backlog " + std::to_string(signals.backlogFrames) +
            ", sustained " + fixed3(signals.sustainedFps) +
            " vs offered " + fixed3(signals.offeredFps);
        overEpochs = 0;
        underEpochs = 0;
        cooldown = cfg.cooldownEpochs;
        return out;
    }

    if (underEpochs >= cfg.downHoldEpochs) {
        if (signals.activeShards <= cfg.minShards) {
            out.reason = "underloaded at minShards";
            return out;
        }
        out.action = ScaleAction::Down;
        out.shards =
            signals.activeShards >= cfg.minShards + cfg.downStep
                ? signals.activeShards - cfg.downStep
                : cfg.minShards;
        out.reason = "underloaded " + std::to_string(underEpochs) +
                     " epoch(s): util " +
                     fixed3(signals.utilization);
        overEpochs = 0;
        underEpochs = 0;
        cooldown = cfg.cooldownEpochs;
        return out;
    }

    out.reason = overloaded     ? "overloaded " +
                                      std::to_string(overEpochs) +
                                      "/" +
                                      std::to_string(cfg.upHoldEpochs)
                 : underloaded ? "underloaded " +
                                     std::to_string(underEpochs) +
                                     "/" +
                                     std::to_string(
                                         cfg.downHoldEpochs)
                               : "steady";
    return out;
}

std::string
ElasticResult::decisionLog() const
{
    std::ostringstream oss;
    for (const EpochLog &ep : epochs) {
        oss << "epoch " << ep.epoch << " [" << fixed3(ep.startSec)
            << "," << fixed3(ep.endSec) << ") shards="
            << ep.activeShards << " offered=" << ep.framesOffered
            << " admitted=" << ep.framesAdmitted
            << " shed=" << ep.framesShed;
        if (!ep.shedSensors.empty()) {
            oss << " shedSensors=";
            for (std::size_t i = 0; i < ep.shedSensors.size(); ++i)
                oss << (i ? "," : "") << ep.shedSensors[i];
        }
        // Fault-tolerance fields print only when live, so the
        // zero-fault decision log stays byte-identical to a
        // pre-fault build.
        if (ep.framesDegraded > 0 || !ep.degradedSensors.empty()) {
            oss << " degraded=" << ep.framesDegraded;
            if (!ep.degradedSensors.empty()) {
                oss << " degradedSensors=";
                for (std::size_t i = 0;
                     i < ep.degradedSensors.size(); ++i)
                    oss << (i ? "," : "") << ep.degradedSensors[i];
            }
        }
        oss << " capacity=" << fixed3(ep.capacityFps)
            << " util=" << fixed3(ep.signals.utilization)
            << " sustained=" << fixed3(ep.signals.sustainedFps)
            << " backlog=" << ep.signals.backlogFrames << " -> "
            << scaleActionName(ep.decision.action);
        if (ep.decision.action != ScaleAction::Hold)
            oss << " to " << ep.decision.shards;
        oss << " (" << ep.decision.reason << ")\n";
    }
    return oss.str();
}

ElasticRunner::ElasticRunner(const HgPcnSystem::Config &system,
                             const PointNet2Spec &spec,
                             const Config &config)
    : cfg(config),
      runner(system, spec, persistentFleet(config.fleet))
{
    cfg.fleet.persistHealth = true; // mirror the fleet's reality
    HGPCN_ASSERT(cfg.epochSec > 0.0, "epoch length must be positive");
    HGPCN_ASSERT(cfg.fleet.runner.paceBySensor,
                 "elastic serving requires a sensor-paced runner "
                 "(the control loop lives on the virtual timeline)");
    HGPCN_ASSERT(cfg.fleet.shards >= cfg.autoscaler.minShards &&
                     cfg.fleet.shards <= cfg.autoscaler.maxShards,
                 "initial width (", cfg.fleet.shards,
                 ") must lie in [minShards, maxShards] = [",
                 cfg.autoscaler.minShards, ", ",
                 cfg.autoscaler.maxShards, "]");
}

std::string
ElasticRunner::backendNameFor(std::size_t s) const
{
    if (cfg.fleet.backends.empty())
        return "hgpcn";
    return cfg.fleet.backends[s % cfg.fleet.backends.size()];
}

double
ElasticRunner::capacityFps() const
{
    const std::size_t active = runner.shardCount();
    if (cfg.fleet.assumedServiceSec > 0.0)
        return static_cast<double>(active) /
               cfg.fleet.assumedServiceSec;
    // Same-named backends estimate identically (identical engine
    // config + spec): probe once per distinct name.
    std::map<std::string, double> estimate_of;
    double fps = 0.0;
    for (std::size_t s = 0; s < active; ++s) {
        const ExecutionBackend &backend = runner.shardBackend(s);
        auto it = estimate_of.find(backend.name());
        if (it == estimate_of.end()) {
            it = estimate_of
                     .emplace(backend.name(),
                              backend.estimateServiceSec())
                     .first;
        }
        HGPCN_ASSERT(it->second > 0.0,
                     "backend ", backend.name(),
                     " service-time estimate must be positive");
        fps += 1.0 / it->second;
    }
    return fps;
}

ElasticResult
ElasticRunner::serve(const SensorStream &stream,
                     const std::vector<int> &priority)
{
    HGPCN_ASSERT(stream.frames.size() == stream.sensors.size(),
                 "frames/sensors tags out of sync");
    HGPCN_ASSERT(priority.empty() ||
                     priority.size() == stream.sensorCount,
                 "priority list (", priority.size(),
                 ") must be empty or one per sensor (",
                 stream.sensorCount, ")");

    ElasticResult out;
    // Reusable + deterministic: every serve starts from the
    // configured width and a fresh autoscaler.
    runner.setShardCount(cfg.fleet.shards);
    // Breakers persist across the epochs *within* a serve
    // (persistHealth) but never across serves.
    runner.resetHealth();
    Autoscaler scaler(cfg.autoscaler);

    std::vector<EpochOutcome> outcomes;
    std::size_t peak = runner.shardCount();

    if (stream.size() > 0) {
        // Epoch 0 is the epochSec-aligned window containing the
        // first stamp, so epoch boundaries are hand-computable
        // from the config alone.
        const double anchor =
            std::floor(stream.frames.front().timestamp /
                       cfg.epochSec) *
            cfg.epochSec;
        std::size_t cursor = 0;
        for (std::size_t e = 0; cursor < stream.size(); ++e) {
            const double start = anchor + cfg.epochSec *
                                              static_cast<double>(e);
            const double end = start + cfg.epochSec;

            EpochLog log;
            log.epoch = e;
            log.startSec = start;
            log.endSec = end;
            log.activeShards = runner.shardCount();
            peak = std::max(peak, log.activeShards);

            // The epoch's slice of the stream (stamps strictly
            // increase, so it is contiguous).
            const std::size_t first = cursor;
            while (cursor < stream.size() &&
                   stream.frames[cursor].timestamp < end)
                ++cursor;
            log.framesOffered = cursor - first;

            // Admission: offered rate per sensor this epoch.
            std::vector<double> offered_fps(stream.sensorCount,
                                            0.0);
            for (std::size_t i = first; i < cursor; ++i)
                offered_fps[stream.sensors[i]] +=
                    1.0 / cfg.epochSec;
            log.capacityFps = capacityFps();
            const ShedDecision admission = decideAdmission(
                offered_fps, priority, log.capacityFps,
                cfg.admission);
            // Degrade-instead-of-shed: the shed *decision* stands,
            // its enforcement becomes down-sampling — every sensor
            // keeps a live stream.
            const bool degrade_mode =
                cfg.admission.degradeInsteadOfShed &&
                !admission.shedSensors.empty();
            if (degrade_mode)
                log.degradedSensors = admission.shedSensors;
            else
                log.shedSensors = admission.shedSensors;
            std::vector<bool> degrade_flags;
            if (degrade_mode) {
                degrade_flags.assign(stream.sensorCount, false);
                for (const std::size_t sensor : log.degradedSensors)
                    degrade_flags[sensor] = true;
            }

            EpochOutcome outcome;
            outcome.startSec = start;
            outcome.endSec = end;
            outcome.activeShards = log.activeShards;
            SensorStream sub;
            sub.sensorCount = stream.sensorCount;
            for (std::size_t i = first; i < cursor; ++i) {
                if (degrade_mode ||
                    admission.admitted[stream.sensors[i]]) {
                    sub.frames.push_back(stream.frames[i]);
                    sub.sensors.push_back(stream.sensors[i]);
                    outcome.globalIndex.push_back(i);
                } else {
                    outcome.shedGlobalIndex.push_back(i);
                }
            }
            log.framesAdmitted = outcome.globalIndex.size();
            log.framesShed = outcome.shedGlobalIndex.size();

            // Epoch telemetry (virtual clock; timestamps are epoch
            // boundaries, so the events join the deterministic
            // virtual trace).
            if (HGPCN_TRACE_ENABLED()) {
                Tracer &tr = Tracer::global();
                tr.span(TraceClock::Virtual, start, cfg.epochSec,
                        "epoch:" + std::to_string(e), "elastic",
                        "serving/epochs");
                tr.counter(TraceClock::Virtual, start,
                           "activeShards", "serving/shards",
                           static_cast<double>(log.activeShards));
                for (const std::size_t sensor : log.shedSensors) {
                    TraceIds ids;
                    ids.sensor = static_cast<std::int64_t>(sensor);
                    tr.instant(TraceClock::Virtual, start,
                               "shed:sensor" +
                                   std::to_string(sensor),
                               "admission", "serving/admission",
                               ids);
                }
                for (const std::size_t sensor :
                     log.degradedSensors) {
                    TraceIds ids;
                    ids.sensor = static_cast<std::int64_t>(sensor);
                    tr.instant(TraceClock::Virtual, start,
                               "degrade:sensor" +
                                   std::to_string(sensor),
                               "admission", "serving/admission",
                               ids);
                }
            }

            // The epoch serve: an ordinary fleet serve over the
            // admitted sub-stream at the current width.
            outcome.result = runner.serve(
                sub, {}, degrade_mode ? &degrade_flags : nullptr);
            log.framesDegraded =
                outcome.result.report.framesDegraded;

            // Signals — all modeled arithmetic from the epoch's
            // report, normalized by the epoch length.
            EpochSignals &sig = log.signals;
            sig.activeShards = log.activeShards;
            sig.offeredFps =
                static_cast<double>(log.framesAdmitted) /
                cfg.epochSec;
            sig.sustainedFps =
                static_cast<double>(
                    outcome.result.report.framesProcessed) /
                cfg.epochSec;
            double busy = 0.0;
            for (const RuntimeReport &sr :
                 outcome.result.report.shardReports) {
                double bottleneck = 0.0;
                for (const TimelineStageStats &st : sr.stages)
                    bottleneck = std::max(
                        bottleneck,
                        st.busySec /
                            static_cast<double>(st.units));
                busy += bottleneck;
            }
            sig.utilization =
                busy / (static_cast<double>(log.activeShards) *
                        cfg.epochSec);
            for (const ServedFrame &sf : outcome.result.frames) {
                if (sf.doneSec > end)
                    ++sig.backlogFrames;
            }

            log.decision = scaler.step(sig);
            out.shardSeconds +=
                static_cast<double>(log.activeShards) *
                cfg.epochSec;
            outcomes.push_back(std::move(outcome));

            if (log.decision.action != ScaleAction::Hold &&
                log.decision.shards != runner.shardCount()) {
                ScaleEvent event;
                event.epoch = e;
                event.action = log.decision.action;
                event.fromShards = runner.shardCount();
                event.toShards = log.decision.shards;
                event.reason = log.decision.reason;
                HGPCN_TRACE_EVENT(Tracer::global().instant(
                    TraceClock::Virtual, end,
                    (event.action == ScaleAction::Up
                         ? std::string("scale:up:")
                         : std::string("scale:down:")) +
                        std::to_string(event.fromShards) + "->" +
                        std::to_string(event.toShards),
                    "elastic", "serving/epochs"));
                out.events.push_back(std::move(event));
                runner.setShardCount(log.decision.shards);
            }
            out.epochs.push_back(std::move(log));
        }
    }

    std::vector<std::string> shard_backends(peak);
    for (std::size_t s = 0; s < peak; ++s)
        shard_backends[s] = backendNameFor(s);
    out.serving =
        mergeEpochResults(stream, std::move(outcomes),
                          cfg.fleet.placement, shard_backends);
    return out;
}

} // namespace hgpcn
