/**
 * @file
 * Aggregate reporting for the sharded serving layer.
 *
 * Every shard produces an ordinary RuntimeResult on its own virtual
 * clock (anchored at its first admitted frame). The merge re-anchors
 * all shard clocks onto one global timeline and derives:
 *
 *  - the aggregate view: global sustained FPS over the union
 *    makespan, merged latency percentiles, total drops/abandons;
 *  - the per-shard view: each shard's RuntimeReport, unchanged;
 *  - the per-sensor view: offered/processed counts, the sensor's
 *    own generation rate and a Section VII-E verdict computed with
 *    the tri-state semantics (common/real_time.h) — NotApplicable
 *    for unpaced serves, never a vacuous YES;
 *  - the per-backend view (heterogeneous fleets): each distinct
 *    execution backend's dispatched/completed counts, sustained
 *    FPS, latency percentiles and its own Section VII-E verdict
 *    against the rate of the traffic routed to it.
 *
 * mergeShardOutcomes is a pure function of the shard outcomes so
 * the arithmetic is unit-testable without running a fleet.
 *
 * The elastic layer (serving/autoscaler.h) serves a stream as a
 * sequence of control epochs, each an ordinary fleet serve at that
 * epoch's shard count, with admission control shedding frames
 * before dispatch. mergeEpochResults re-anchors those per-epoch
 * results across fleet reconfigurations into one ServingResult:
 * per-shard views aggregate each shard index across every epoch it
 * was active in, per-sensor/per-backend views are recomputed over
 * the union of completions, shed frames are accounted
 * (framesIn == processed + dropped + abandoned + shed), and
 * completions are clamped to in-order delivery per sensor — a
 * frame handed off across an epoch boundary cannot be delivered
 * before its predecessor finishes. It is equally a pure function,
 * unit-tested against hand-built epochs in tests/test_elastic.cc.
 */

#ifndef HGPCN_SERVING_SERVING_REPORT_H
#define HGPCN_SERVING_SERVING_REPORT_H

#include <string>
#include <vector>

#include "common/real_time.h"
#include "datasets/sensor_stream.h"
#include "runtime/stream_runner.h"
#include "serving/placement.h"

namespace hgpcn
{

/** One sensor's slice of a serve. */
struct SensorServingReport
{
    std::size_t sensor = 0;
    /** Distinct shards that completed frames of this sensor (1
     * under HashBySensor affinity). */
    std::size_t shardSpread = 0;
    std::size_t framesIn = 0;    //!< offered by this sensor
    std::size_t framesDone = 0;  //!< completed the pipeline
    /** Offered - completed: dropped by overload, abandoned by a
     * shard stop (the split is only known shard-wide) or shed by
     * admission control (counted separately below). */
    std::size_t framesMissed = 0;
    /** Of framesMissed: refused by admission control before
     * dispatch (elastic serving only; 0 for a plain fleet serve). */
    std::size_t framesShed = 0;
    /** Of framesMissed: terminally failed (retries/deadline
     * exhausted) after dispatch. */
    std::size_t framesFailed = 0;
    /** Of framesDone: completed only after >= 1 retry. */
    std::size_t framesRetried = 0;
    /** Of framesDone: served at reduced fidelity. */
    std::size_t framesDegraded = 0;

    double generationFps = 0; //!< this sensor's capture rate
    /** Completed / (first offer -> last completion), global clock. */
    double sustainedFps = 0;

    double p50LatencySec = 0;
    double p95LatencySec = 0;
    double p99LatencySec = 0;
    double maxLatencySec = 0;

    /** Section VII-E, per sensor; NotApplicable when unpaced. */
    RealTimeVerdict realTime = RealTimeVerdict::NotApplicable;
};

/** One execution backend's slice of a serve (union of the shards
 * that run it). */
struct BackendServingReport
{
    std::string backend;        //!< registry name ("hgpcn", ...)
    std::size_t shards = 0;     //!< fleet replicas of this backend
    std::size_t framesIn = 0;   //!< dispatched to those shards
    std::size_t framesDone = 0; //!< completed the pipeline
    std::size_t framesMissed = 0; //!< dropped, abandoned or failed
    std::size_t framesFailed = 0;   //!< of missed: fault-terminal
    std::size_t framesRetried = 0;  //!< of done: needed retries
    std::size_t framesDegraded = 0; //!< of done: reduced fidelity

    /** Generation rate of the traffic routed to this backend
     * ((n-1)/span of its dispatched stamps; 0 when underivable). */
    double offeredFps = 0;
    /** Completed / (first dispatch -> last completion), global
     * clock. */
    double sustainedFps = 0;

    double p50LatencySec = 0;
    double p95LatencySec = 0;
    double p99LatencySec = 0;
    double maxLatencySec = 0;

    /** Section VII-E against the routed traffic's rate;
     * NotApplicable when unpaced. */
    RealTimeVerdict realTime = RealTimeVerdict::NotApplicable;
};

/** Aggregate + per-shard + per-sensor + per-backend serving report. */
struct ServingReport
{
    PlacementPolicy placement = PlacementPolicy::HashBySensor;
    std::size_t shardCount = 0;
    std::size_t sensorCount = 0;

    std::size_t framesIn = 0;
    std::size_t framesProcessed = 0;
    std::size_t framesDropped = 0;
    std::size_t framesAbandoned = 0;
    /** Refused by admission control before dispatch (elastic
     * serving; conservation: framesIn == framesProcessed +
     * framesDropped + framesAbandoned + framesShed +
     * framesFailed). */
    std::size_t framesShed = 0;

    /** Fault-tolerance attribution (zero without a fault plan).
     * Failed frames join the conservation identity above; retried
     * and degraded frames are subsets of framesProcessed. */
    std::size_t framesFailed = 0;
    std::size_t framesRetried = 0;
    std::size_t framesDegraded = 0;

    bool paced = true; //!< every shard ran sensor-paced

    /** First global offer -> last global completion. */
    double makespanSec = 0;
    /** Global sustained throughput: processed / makespan. */
    double sustainedFps = 0;

    /** Latency distribution merged across all shards. */
    double meanLatencySec = 0;
    double p50LatencySec = 0;
    double p95LatencySec = 0;
    double p99LatencySec = 0;
    double maxLatencySec = 0;

    /** Per-shard reports, indexed by shard, on shard-local clocks. */
    std::vector<RuntimeReport> shardReports;
    /** Backend name of each shard, parallel to shardReports (empty
     * strings when the outcomes carried no attribution). */
    std::vector<std::string> shardBackends;
    /** Per-sensor slices, indexed by sensor. */
    std::vector<SensorServingReport> sensors;
    /** Per-backend slices, one per distinct named backend, in
     * first-shard order; empty when no outcome was attributed. */
    std::vector<BackendServingReport> backends;

    /** Render a multi-line human-readable summary. */
    std::string toString() const;
};

/** One completed frame of a serve, on the global clock. */
struct ServedFrame
{
    std::size_t globalIndex = 0; //!< position in the tagged stream
    std::size_t sensor = 0;
    std::size_t sensorIndex = 0; //!< position within its sensor
    std::size_t shard = 0;
    double latencySec = 0;
    double doneSec = 0; //!< completion, global virtual clock
    E2eResult result;
};

/** Everything one serve() produced. */
struct ServingResult
{
    /** Completed frames in global completion order (doneSec, ties
     * by stream position); dropped/abandoned frames absent. */
    std::vector<ServedFrame> frames;
    ServingReport report;
    /** Fleet-wide metrics: every shard's (or epoch's) registry
     * snapshot merged — counters summed, additive gauges summed,
     * histograms folded bucket-wise (obs/metrics.h). */
    MetricsSnapshot metrics;
};

/** What one shard contributed to a serve. */
struct ShardOutcome
{
    RuntimeResult result;
    /** Global time of the shard clock's origin (its first admitted
     * frame's timestamp when paced, 0 in batch mode). */
    double anchorSec = 0;
    /** Sub-stream index -> global stream index. */
    std::vector<std::size_t> globalIndex;
    /** Execution backend the shard ran (registry name); empty
     * outcomes are excluded from the per-backend view. */
    std::string backend;
};

/**
 * Merge per-shard outcomes into the global serving view.
 *
 * @param stream The tagged stream that was served.
 * @param outcomes One entry per shard; results are moved out.
 * @param policy Placement policy used (for the report).
 */
ServingResult
mergeShardOutcomes(const SensorStream &stream,
                   std::vector<ShardOutcome> outcomes,
                   PlacementPolicy policy);

/** What one control epoch of an elastic serve contributed. */
struct EpochOutcome
{
    /** Epoch window on the global clock. */
    double startSec = 0;
    double endSec = 0;
    /** Active shard count during this epoch. */
    std::size_t activeShards = 0;
    /** The epoch's fleet serve over its admitted sub-stream; frame
     * globalIndex values are *epoch-local* (positions in the
     * admitted sub-stream) and completion times are already on the
     * global clock (paced serves anchor at absolute stamps). */
    ServingResult result;
    /** Epoch-local sub-stream index -> full-stream index. */
    std::vector<std::size_t> globalIndex;
    /** Full-stream indices of frames shed by admission control
     * this epoch (never dispatched). */
    std::vector<std::size_t> shedGlobalIndex;
};

/**
 * Merge per-epoch elastic-serve outcomes into one global view.
 *
 * Pure arithmetic, like mergeShardOutcomes. Shard views aggregate
 * per shard *index* across the epochs it was active in (counts
 * summed, busy time re-normalized over the summed epoch makespans);
 * sensor and backend views are recomputed from the union of
 * completions; shed frames join the conservation identity. Before
 * any distribution is derived, completions are clamped to in-order
 * delivery per sensor: a frame's delivery time is at least its
 * predecessor's, with the wait charged to its latency — the
 * cross-epoch handoff cost a reconfiguring fleet really pays.
 *
 * @param stream The full tagged stream the elastic serve covered.
 * @param outcomes One entry per epoch, in epoch order; moved out.
 * @param policy Placement policy used within epochs (for the
 *        report).
 * @param shard_backends Backend name per shard index (stable across
 *        epochs by the ShardedRunner cycling rule); sized to the
 *        peak shard count, may be empty when unattributed.
 */
ServingResult
mergeEpochResults(const SensorStream &stream,
                  std::vector<EpochOutcome> outcomes,
                  PlacementPolicy policy,
                  const std::vector<std::string> &shard_backends);

} // namespace hgpcn

#endif // HGPCN_SERVING_SERVING_REPORT_H
