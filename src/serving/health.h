/**
 * @file
 * Per-shard health tracking: a circuit breaker on the virtual
 * clock, plus the fleet's fault-tolerance parameters.
 *
 * The breaker is the classic three-state machine, driven entirely
 * by virtual-time observations so its trajectory is deterministic
 * and hand-computable:
 *
 *   Closed    — healthy; consecutive failures are counted, and
 *               reaching failureThreshold trips the breaker Open.
 *   Open      — the shard takes no traffic (frames fail over);
 *               after openSec of virtual time it is eligible for a
 *               Half-Open probe.
 *   Half-Open — traffic flows again, at reduced fidelity when the
 *               degradation policy says so; halfOpenSuccesses
 *               consecutive successes close the breaker, any
 *               failure re-opens it.
 *
 * The serving layer resolves all breaker transitions at dispatch
 * time (serving/failover.h): "now" is always a frame's arrival
 * stamp, never wall clock, so a faulted serve replays bit for bit.
 */

#ifndef HGPCN_SERVING_HEALTH_H
#define HGPCN_SERVING_HEALTH_H

#include <cstddef>

namespace hgpcn
{

/** Circuit-breaker parameters. */
struct CircuitBreakerConfig
{
    /** Consecutive failures that trip Closed -> Open. */
    std::size_t failureThreshold = 3;

    /** Virtual seconds the breaker stays Open before the next
     * arrival probes it Half-Open. */
    double openSec = 0.5;

    /** Consecutive Half-Open successes that close the breaker. */
    std::size_t halfOpenSuccesses = 2;
};

/** Breaker state (see file header). */
enum class BreakerState
{
    Closed,
    Open,
    HalfOpen,
};

/** Stable display name ("closed", "open", "half-open"). */
const char *breakerStateName(BreakerState state);

/** Numeric gauge value for trace counters (closed 0, half-open 1,
 * open 2 — higher is sicker). */
double breakerStateGauge(BreakerState state);

/** One shard's breaker (see file header). Pure arithmetic over
 * (config, event sequence); unit-tested against pinned transition
 * sequences in tests/test_faults.cc. */
class CircuitBreaker
{
  public:
    CircuitBreaker() = default;

    explicit CircuitBreaker(const CircuitBreakerConfig &config)
        : cfg(config)
    {
    }

    /** Effective state at virtual time @p now — an Open breaker
     * whose openSec has elapsed reads Half-Open (the next arrival
     * is the probe). Const and pure: observation never mutates. */
    BreakerState
    state(double now) const
    {
        if (stored == BreakerState::Open &&
            now >= openedAt + cfg.openSec)
            return BreakerState::HalfOpen;
        return stored;
    }

    /** Record a successful service at @p now. */
    void
    onSuccess(double now)
    {
        switch (state(now)) {
        case BreakerState::Closed:
            failures = 0;
            break;
        case BreakerState::HalfOpen:
            stored = BreakerState::HalfOpen;
            if (++probes >= cfg.halfOpenSuccesses) {
                stored = BreakerState::Closed;
                failures = 0;
                probes = 0;
            }
            break;
        case BreakerState::Open:
            // No dispatch happens while Open; tolerate the no-op.
            break;
        }
    }

    /** Record a failed service attempt at @p now. */
    void
    onFailure(double now)
    {
        switch (state(now)) {
        case BreakerState::Closed:
            if (++failures >= cfg.failureThreshold) {
                stored = BreakerState::Open;
                openedAt = now;
                probes = 0;
            }
            break;
        case BreakerState::HalfOpen:
            // A failed probe re-opens for a fresh openSec.
            stored = BreakerState::Open;
            openedAt = now;
            probes = 0;
            failures = cfg.failureThreshold;
            break;
        case BreakerState::Open:
            break;
        }
    }

    /** Back to pristine Closed (fleet health reset between
     * independent serves). */
    void
    reset()
    {
        stored = BreakerState::Closed;
        failures = 0;
        probes = 0;
        openedAt = 0.0;
    }

    std::size_t consecutiveFailures() const { return failures; }
    const CircuitBreakerConfig &config() const { return cfg; }

  private:
    CircuitBreakerConfig cfg;
    /** Stored state; Open is promoted to Half-Open by state(now). */
    BreakerState stored = BreakerState::Closed;
    std::size_t failures = 0; //!< consecutive failures while Closed
    std::size_t probes = 0;   //!< consecutive Half-Open successes
    double openedAt = 0.0;    //!< virtual time the breaker opened
};

/**
 * Fleet fault-tolerance parameters: bounded retry with
 * deterministic exponential backoff, per-frame deadlines, breaker
 * behavior and the graceful-degradation policy. Consumed by the
 * dispatch-time resolution (serving/failover.h).
 */
struct FaultToleranceConfig
{
    /** Max inference attempts per frame (>= 1); a frame that still
     * errors on its last attempt is counted framesFailed. */
    std::size_t maxAttempts = 3;

    /** Backoff before retry r (1-based) is
     * backoffBaseSec * backoffMultiplier^(r-1), charged as virtual
     * time on the frame's inference stage. */
    double backoffBaseSec = 0.002;
    double backoffMultiplier = 2.0;

    /** Per-frame virtual-time budget for inference service +
     * backoff; a retry that would exceed it is not started and the
     * frame fails. 0 disables deadlines. */
    double deadlineSec = 0.0;

    /** Per-shard breaker parameters. */
    CircuitBreakerConfig breaker;

    /** Serve Half-Open probe frames at reduced fidelity instead of
     * full budget (graceful degradation). */
    bool degradeOnHalfOpen = true;

    /** Fraction of the configured sample budget K a degraded frame
     * keeps, in (0, 1]. */
    double degradedSampleFraction = 0.5;
};

} // namespace hgpcn

#endif // HGPCN_SERVING_HEALTH_H
