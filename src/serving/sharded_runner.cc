#include "serving/sharded_runner.h"

#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace hgpcn
{
namespace
{

StreamRunner::Config
resolveRunnerConfig(const HgPcnSystem::Config &system,
                    const PointNet2Spec &spec,
                    StreamRunner::Config runner_cfg)
{
    // Same K resolution as HgPcnSystem: an explicit runner K wins,
    // then the spec's, then the system default.
    if (runner_cfg.inputPoints == 0) {
        runner_cfg.inputPoints = spec.inputPoints != 0
                                     ? spec.inputPoints
                                     : system.inputPoints;
    }
    return runner_cfg;
}

/** The fleet config with the shard's identity stamped on for trace
 * attribution (observability-only; see StreamRunner::Config). */
StreamRunner::Config
shardRunnerConfig(StreamRunner::Config runner_cfg, std::size_t s)
{
    runner_cfg.traceShard = static_cast<std::int64_t>(s);
    return runner_cfg;
}

} // namespace

ShardedRunner::Shard::Shard(const HgPcnSystem::Config &system,
                            const PointNet2Spec &spec,
                            const std::string &backend_name,
                            const StreamRunner::Config &runner_cfg)
    : preprocess(system.preprocess), model(spec),
      backend(makeBackend(backend_name, system.inference, model)),
      runner(preprocess, *backend, runner_cfg)
{
}

std::string
ShardedRunner::backendNameFor(std::size_t s) const
{
    if (cfg.backends.empty())
        return "hgpcn";
    return cfg.backends[s % cfg.backends.size()];
}

ShardedRunner::ShardedRunner(const HgPcnSystem::Config &system_cfg,
                             const PointNet2Spec &spec_arg,
                             const Config &config)
    : cfg(config), system(system_cfg), spec(spec_arg),
      runnerCfg(resolveRunnerConfig(system_cfg, spec_arg,
                                    config.runner))
{
    HGPCN_ASSERT(cfg.shards >= 1, "need at least one shard");
    HGPCN_ASSERT(cfg.backends.size() <= 1 ||
                     cfg.backends.size() == cfg.shards,
                 "backend list (", cfg.backends.size(),
                 ") must be empty, one name, or one per initial "
                 "shard (", cfg.shards, ")");
    fleet.reserve(cfg.shards);
    for (std::size_t s = 0; s < cfg.shards; ++s)
        fleet.push_back(std::make_unique<Shard>(
            system, spec, backendNameFor(s),
            shardRunnerConfig(runnerCfg, s)));
    active = cfg.shards;
}

void
ShardedRunner::setShardCount(std::size_t shards)
{
    HGPCN_ASSERT(shards >= 1, "need at least one shard");
    HGPCN_ASSERT(!serving.load(),
                 "setShardCount must not race a serve in progress");
    // Reactivated replicas must not inherit a stop latched while
    // they were parked (or before they were parked): clear the
    // latches of every shard entering the active prefix.
    for (std::size_t s = active; s < shards && s < fleet.size(); ++s)
        fleet[s]->stopRequested.store(false);
    while (fleet.size() < shards)
        fleet.push_back(std::make_unique<Shard>(
            system, spec, backendNameFor(fleet.size()),
            shardRunnerConfig(runnerCfg, fleet.size())));
    active = shards;
}

const ExecutionBackend &
ShardedRunner::shardBackend(std::size_t shard) const
{
    HGPCN_ASSERT(shard < active, "shard ", shard,
                 " out of range (", active, " active shards)");
    return *fleet[shard]->backend;
}

ServingResult
ShardedRunner::serve(const SensorStream &stream,
                     const ServingFrameCallback &on_frame)
{
    HGPCN_ASSERT(!serving.exchange(true),
                 "serve() reentered while a serve is in progress");
    // Restart contract: a stop belongs to the serve it aborted.
    stopped.store(false);
    for (std::size_t s = 0; s < active; ++s)
        fleet[s]->stopRequested.store(false);

    const std::size_t n_shards = active;
    std::vector<ShardOutcome> outcomes(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s)
        outcomes[s].backend = fleet[s]->backend->name();
    if (stream.size() == 0) {
        ServingResult out = mergeShardOutcomes(
            stream, std::move(outcomes), cfg.placement);
        serving.store(false);
        return out;
    }

    // Dispatch: deterministic placement over the tagged stream.
    // LeastLoaded retires each shard's modeled backlog at that
    // shard's service time: the explicit override when set, else
    // each backend's own cost-model estimate — so join-shortest-
    // queue stops assuming homogeneous shards. Every shard is built
    // from the same engine config and spec, so same-named backends
    // estimate identically: probe once per distinct backend name.
    std::vector<double> service_sec;
    if (cfg.placement == PlacementPolicy::LeastLoaded) {
        service_sec.reserve(n_shards);
        std::map<std::string, double> estimate_of;
        for (std::size_t s = 0; s < n_shards; ++s) {
            if (cfg.assumedServiceSec > 0.0) {
                service_sec.push_back(cfg.assumedServiceSec);
                continue;
            }
            const std::string &name = fleet[s]->backend->name();
            auto it = estimate_of.find(name);
            if (it == estimate_of.end()) {
                it = estimate_of
                         .emplace(name, fleet[s]->backend
                                            ->estimateServiceSec())
                         .first;
            }
            service_sec.push_back(it->second);
        }
    }
    const std::vector<std::size_t> assignment = assignShards(
        stream, n_shards, cfg.placement, service_sec);
    std::vector<std::vector<Frame>> sub(n_shards);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::size_t s = assignment[i];
        sub[s].push_back(stream.frames[i]);
        outcomes[s].globalIndex.push_back(i);
    }

    // Trace the placement decisions (virtual clock, at the frame's
    // capture time — deterministic payload) and give every shard its
    // sub-stream's fleet-level frame/sensor ids so shard spans are
    // attributable without the globalIndex mapping.
    std::vector<StreamTraceIds> trace_ids(n_shards);
    if (HGPCN_TRACE_ENABLED()) {
        for (std::size_t i = 0; i < stream.size(); ++i) {
            TraceIds ids;
            ids.frame = static_cast<std::int64_t>(i);
            ids.sensor =
                static_cast<std::int64_t>(stream.sensors[i]);
            ids.shard = static_cast<std::int64_t>(assignment[i]);
            HGPCN_TRACE_EVENT(Tracer::global().instant(
                TraceClock::Virtual, stream.frames[i].timestamp,
                "place:shard" + std::to_string(assignment[i]),
                "placement", "serving/placement", ids));
        }
        for (std::size_t s = 0; s < n_shards; ++s) {
            trace_ids[s].frame.reserve(outcomes[s].globalIndex.size());
            trace_ids[s].sensor.reserve(
                outcomes[s].globalIndex.size());
            for (const std::size_t g : outcomes[s].globalIndex) {
                trace_ids[s].frame.push_back(
                    static_cast<std::int64_t>(g));
                trace_ids[s].sensor.push_back(
                    static_cast<std::int64_t>(stream.sensors[g]));
            }
        }
    }

    // Execute: every shard drains its sub-stream on its own
    // pipeline, concurrently with the others. Stops (fleet-wide or
    // per-shard) are re-asserted through the per-frame hook so a
    // shard that enters run() after the stop — run() resets the
    // pipeline's own flag — still truncates at its first emission
    // instead of resurrecting a stopped serve.
    std::vector<std::thread> threads;
    threads.reserve(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
        threads.emplace_back([this, s, &sub, &outcomes, &on_frame,
                              &trace_ids] {
            Shard &shard = *fleet[s];
            if (stopped.load() || shard.stopRequested.load()) {
                outcomes[s].result.report.framesIn = sub[s].size();
                outcomes[s].result.report.framesAbandoned =
                    sub[s].size();
                outcomes[s].result.report.paced =
                    shard.runner.config().paceBySensor;
                return;
            }
            const FrameTaskCallback hook =
                [this, s, &shard, &on_frame](const FrameTask &task) {
                    if (on_frame)
                        on_frame(s, task);
                    if (stopped.load() ||
                        shard.stopRequested.load())
                        shard.runner.requestStop();
                };
            outcomes[s].result = shard.runner.run(
                sub[s], hook,
                trace_ids[s].frame.empty() ? nullptr
                                           : &trace_ids[s]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Re-anchor each shard clock for the merge: a paced shard's
    // virtual time starts at its first admitted frame.
    for (std::size_t s = 0; s < n_shards; ++s) {
        outcomes[s].anchorSec =
            outcomes[s].result.report.paced && !sub[s].empty()
                ? sub[s].front().timestamp
                : 0.0;
    }
    ServingResult out = mergeShardOutcomes(
        stream, std::move(outcomes), cfg.placement);
    serving.store(false);
    return out;
}

void
ShardedRunner::requestStop()
{
    stopped.store(true);
    // Over the active prefix only: parked shards are idle by
    // construction, and their latches are cleared on reactivation.
    for (std::size_t s = 0; s < active; ++s)
        fleet[s]->runner.requestStop();
}

void
ShardedRunner::requestStopShard(std::size_t shard)
{
    HGPCN_ASSERT(shard < active, "shard ", shard,
                 " out of range (", active, " active shards)");
    fleet[shard]->stopRequested.store(true);
    fleet[shard]->runner.requestStop();
}

} // namespace hgpcn
