#include "serving/sharded_runner.h"

#include <thread>
#include <utility>

#include "common/logging.h"

namespace hgpcn
{
namespace
{

StreamRunner::Config
resolveRunnerConfig(const HgPcnSystem::Config &system,
                    const PointNet2Spec &spec,
                    StreamRunner::Config runner_cfg)
{
    // Same K resolution as HgPcnSystem: an explicit runner K wins,
    // then the spec's, then the system default.
    if (runner_cfg.inputPoints == 0) {
        runner_cfg.inputPoints = spec.inputPoints != 0
                                     ? spec.inputPoints
                                     : system.inputPoints;
    }
    return runner_cfg;
}

} // namespace

ShardedRunner::Shard::Shard(const HgPcnSystem::Config &system,
                            const PointNet2Spec &spec,
                            const StreamRunner::Config &runner_cfg)
    : preprocess(system.preprocess), inference(system.inference),
      model(spec), runner(preprocess, inference, model, runner_cfg)
{
}

ShardedRunner::ShardedRunner(const HgPcnSystem::Config &system,
                             const PointNet2Spec &spec,
                             const Config &config)
    : cfg(config)
{
    HGPCN_ASSERT(cfg.shards >= 1, "need at least one shard");
    const StreamRunner::Config runner_cfg =
        resolveRunnerConfig(system, spec, cfg.runner);
    fleet.reserve(cfg.shards);
    for (std::size_t s = 0; s < cfg.shards; ++s)
        fleet.push_back(
            std::make_unique<Shard>(system, spec, runner_cfg));
}

ServingResult
ShardedRunner::serve(const SensorStream &stream,
                     const ServingFrameCallback &on_frame)
{
    // Restart contract: a stop belongs to the serve it aborted.
    stopped.store(false);
    for (const std::unique_ptr<Shard> &shard : fleet)
        shard->stopRequested.store(false);

    const std::size_t n_shards = fleet.size();
    std::vector<ShardOutcome> outcomes(n_shards);
    if (stream.size() == 0) {
        ServingResult out = mergeShardOutcomes(
            stream, std::move(outcomes), cfg.placement);
        return out;
    }

    // Dispatch: deterministic placement over the tagged stream.
    const std::vector<std::size_t> assignment = assignShards(
        stream, n_shards, cfg.placement, cfg.assumedServiceSec);
    std::vector<std::vector<Frame>> sub(n_shards);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::size_t s = assignment[i];
        sub[s].push_back(stream.frames[i]);
        outcomes[s].globalIndex.push_back(i);
    }

    // Execute: every shard drains its sub-stream on its own
    // pipeline, concurrently with the others. Stops (fleet-wide or
    // per-shard) are re-asserted through the per-frame hook so a
    // shard that enters run() after the stop — run() resets the
    // pipeline's own flag — still truncates at its first emission
    // instead of resurrecting a stopped serve.
    std::vector<std::thread> threads;
    threads.reserve(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
        threads.emplace_back([this, s, &sub, &outcomes, &on_frame] {
            Shard &shard = *fleet[s];
            if (stopped.load() || shard.stopRequested.load()) {
                outcomes[s].result.report.framesIn = sub[s].size();
                outcomes[s].result.report.framesAbandoned =
                    sub[s].size();
                outcomes[s].result.report.paced =
                    shard.runner.config().paceBySensor;
                return;
            }
            const FrameTaskCallback hook =
                [this, s, &shard, &on_frame](const FrameTask &task) {
                    if (on_frame)
                        on_frame(s, task);
                    if (stopped.load() ||
                        shard.stopRequested.load())
                        shard.runner.requestStop();
                };
            outcomes[s].result = shard.runner.run(sub[s], hook);
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Re-anchor each shard clock for the merge: a paced shard's
    // virtual time starts at its first admitted frame.
    for (std::size_t s = 0; s < n_shards; ++s) {
        outcomes[s].anchorSec =
            outcomes[s].result.report.paced && !sub[s].empty()
                ? sub[s].front().timestamp
                : 0.0;
    }
    return mergeShardOutcomes(stream, std::move(outcomes),
                              cfg.placement);
}

void
ShardedRunner::requestStop()
{
    stopped.store(true);
    for (const std::unique_ptr<Shard> &shard : fleet)
        shard->runner.requestStop();
}

void
ShardedRunner::requestStopShard(std::size_t shard)
{
    HGPCN_ASSERT(shard < fleet.size(), "shard ", shard,
                 " out of range (", fleet.size(), " shards)");
    fleet[shard]->stopRequested.store(true);
    fleet[shard]->runner.requestStop();
}

} // namespace hgpcn
