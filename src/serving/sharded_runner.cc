#include "serving/sharded_runner.h"

#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "obs/trace.h"

namespace hgpcn
{
namespace
{

StreamRunner::Config
resolveRunnerConfig(const HgPcnSystem::Config &system,
                    const PointNet2Spec &spec,
                    StreamRunner::Config runner_cfg)
{
    // Same K resolution as HgPcnSystem: an explicit runner K wins,
    // then the spec's, then the system default.
    if (runner_cfg.inputPoints == 0) {
        runner_cfg.inputPoints = spec.inputPoints != 0
                                     ? spec.inputPoints
                                     : system.inputPoints;
    }
    return runner_cfg;
}

/** The fleet config with the shard's identity stamped on for trace
 * attribution (observability-only; see StreamRunner::Config). */
StreamRunner::Config
shardRunnerConfig(StreamRunner::Config runner_cfg, std::size_t s)
{
    runner_cfg.traceShard = static_cast<std::int64_t>(s);
    return runner_cfg;
}

} // namespace

ShardedRunner::Shard::Shard(const HgPcnSystem::Config &system,
                            const PointNet2Spec &spec,
                            const std::string &backend_name,
                            const StreamRunner::Config &runner_cfg)
    : preprocess(system.preprocess), model(spec),
      backend(makeBackend(backend_name, system.inference, model)),
      runner(preprocess, *backend, runner_cfg)
{
}

std::string
ShardedRunner::backendNameFor(std::size_t s) const
{
    if (cfg.backends.empty())
        return "hgpcn";
    return cfg.backends[s % cfg.backends.size()];
}

ShardedRunner::ShardedRunner(const HgPcnSystem::Config &system_cfg,
                             const PointNet2Spec &spec_arg,
                             const Config &config)
    : cfg(config), system(system_cfg), spec(spec_arg),
      runnerCfg(resolveRunnerConfig(system_cfg, spec_arg,
                                    config.runner))
{
    HGPCN_ASSERT(cfg.shards >= 1, "need at least one shard");
    HGPCN_ASSERT(cfg.backends.size() <= 1 ||
                     cfg.backends.size() == cfg.shards,
                 "backend list (", cfg.backends.size(),
                 ") must be empty, one name, or one per initial "
                 "shard (", cfg.shards, ")");
    fleet.reserve(cfg.shards);
    for (std::size_t s = 0; s < cfg.shards; ++s)
        fleet.push_back(std::make_unique<Shard>(
            system, spec, backendNameFor(s),
            shardRunnerConfig(runnerCfg, s)));
    active = cfg.shards;
}

void
ShardedRunner::setShardCount(std::size_t shards)
{
    HGPCN_ASSERT(shards >= 1, "need at least one shard");
    HGPCN_ASSERT(!serving.load(),
                 "setShardCount must not race a serve in progress");
    // Reactivated replicas must not inherit a stop latched while
    // they were parked (or before they were parked): clear the
    // latches of every shard entering the active prefix.
    for (std::size_t s = active; s < shards && s < fleet.size(); ++s)
        fleet[s]->stopRequested.store(false);
    while (fleet.size() < shards)
        fleet.push_back(std::make_unique<Shard>(
            system, spec, backendNameFor(fleet.size()),
            shardRunnerConfig(runnerCfg, fleet.size())));
    active = shards;
}

const ExecutionBackend &
ShardedRunner::shardBackend(std::size_t shard) const
{
    HGPCN_ASSERT(shard < active, "shard ", shard,
                 " out of range (", active, " active shards)");
    return *fleet[shard]->backend;
}

ServingResult
ShardedRunner::serve(const SensorStream &stream,
                     const ServingFrameCallback &on_frame,
                     const std::vector<bool> *degrade_sensors)
{
    HGPCN_ASSERT(!serving.exchange(true),
                 "serve() reentered while a serve is in progress");
    // Restart contract: a stop belongs to the serve it aborted.
    stopped.store(false);
    for (std::size_t s = 0; s < active; ++s)
        fleet[s]->stopRequested.store(false);
    // Breaker history belongs to one serve unless the caller opted
    // into cross-serve persistence (ElasticRunner's epochs).
    if (!cfg.persistHealth)
        healthState.clear();

    const std::size_t n_shards = active;
    std::vector<ShardOutcome> outcomes(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s)
        outcomes[s].backend = fleet[s]->backend->name();
    if (stream.size() == 0) {
        ServingResult out = mergeShardOutcomes(
            stream, std::move(outcomes), cfg.placement);
        serving.store(false);
        return out;
    }

    // Dispatch: deterministic placement over the tagged stream.
    // LeastLoaded retires each shard's modeled backlog at that
    // shard's service time: the explicit override when set, else
    // each backend's own cost-model estimate — so join-shortest-
    // queue stops assuming homogeneous shards. Every shard is built
    // from the same engine config and spec, so same-named backends
    // estimate identically: probe once per distinct backend name.
    std::vector<double> service_sec;
    if (cfg.placement == PlacementPolicy::LeastLoaded) {
        service_sec.reserve(n_shards);
        std::map<std::string, double> estimate_of;
        for (std::size_t s = 0; s < n_shards; ++s) {
            if (cfg.assumedServiceSec > 0.0) {
                service_sec.push_back(cfg.assumedServiceSec);
                continue;
            }
            const std::string &name = fleet[s]->backend->name();
            auto it = estimate_of.find(name);
            if (it == estimate_of.end()) {
                it = estimate_of
                         .emplace(name, fleet[s]->backend
                                            ->estimateServiceSec())
                         .first;
            }
            service_sec.push_back(it->second);
        }
    }
    std::vector<std::size_t> assignment = assignShards(
        stream, n_shards, cfg.placement, service_sec);

    // Fault resolution (dispatch time, virtual clock): route around
    // crashed/tripped shards and fix every frame's retry/backoff/
    // degradation outcome before any functional work runs — the
    // wall-clock pipeline then merely executes a schedule that is
    // already deterministic. Skipped entirely for an empty plan, so
    // the zero-fault serve is byte-identical to a pre-fault build.
    const bool faulted =
        cfg.faultPlan != nullptr && !cfg.faultPlan->empty();
    std::vector<FrameFaultDirective> directives;
    bool have_directives = false;
    MetricsRegistry fault_metrics;
    if (faulted) {
        std::vector<std::string> backend_names;
        backend_names.reserve(n_shards);
        for (std::size_t s = 0; s < n_shards; ++s)
            backend_names.push_back(fleet[s]->backend->name());
        // Deadline arithmetic needs per-shard service estimates;
        // reuse the placement probes when LeastLoaded already paid
        // for them, probing once per distinct backend otherwise.
        std::vector<double> fault_svc = service_sec;
        if (fault_svc.empty()) {
            fault_svc.reserve(n_shards);
            std::map<std::string, double> estimate_of;
            for (std::size_t s = 0; s < n_shards; ++s) {
                if (cfg.assumedServiceSec > 0.0) {
                    fault_svc.push_back(cfg.assumedServiceSec);
                    continue;
                }
                auto it = estimate_of.find(backend_names[s]);
                if (it == estimate_of.end()) {
                    it = estimate_of
                             .emplace(backend_names[s],
                                      fleet[s]->backend
                                          ->estimateServiceSec())
                             .first;
                }
                fault_svc.push_back(it->second);
            }
        }
        FaultResolution res = resolveFaultSchedule(
            stream, assignment, backend_names, fault_svc,
            *cfg.faultPlan, cfg.faultTolerance, healthState);
        assignment = std::move(res.assignment);
        directives = std::move(res.directives);
        have_directives = true;
        fault_metrics.counter("fault.failovers")
            .add(res.failovers.size());
        fault_metrics.counter("fault.frames_redirected")
            .add(res.framesRedirected);
        std::size_t trips = 0;
        for (const BreakerTransition &tr : res.transitions) {
            if (tr.to == BreakerState::Open)
                ++trips;
        }
        fault_metrics.counter("fault.breaker_trips").add(trips);
        if (HGPCN_TRACE_ENABLED()) {
            for (const FailoverEvent &ev : res.failovers) {
                TraceIds ids;
                ids.sensor = static_cast<std::int64_t>(ev.sensor);
                ids.shard = static_cast<std::int64_t>(ev.toShard);
                HGPCN_TRACE_EVENT(Tracer::global().instant(
                    TraceClock::Virtual, ev.timeSec,
                    "failover:shard" + std::to_string(ev.toShard),
                    "fault", "serving/failover", ids));
            }
            for (const BreakerTransition &tr : res.transitions) {
                HGPCN_TRACE_EVENT(Tracer::global().counter(
                    TraceClock::Virtual, tr.timeSec,
                    "breaker:shard" + std::to_string(tr.shard),
                    "serving/health", breakerStateGauge(tr.to)));
            }
        }
    }
    // Admission-driven degradation (degrade-instead-of-shed):
    // flagged sensors keep serving, at reduced fidelity.
    if (degrade_sensors != nullptr) {
        HGPCN_ASSERT(degrade_sensors->size() == stream.sensorCount,
                     "degrade_sensors must have one flag per "
                     "sensor: ",
                     degrade_sensors->size(), " vs ",
                     stream.sensorCount);
        if (!have_directives)
            directives.assign(stream.size(), FrameFaultDirective{});
        have_directives = true;
        for (std::size_t i = 0; i < stream.size(); ++i) {
            if ((*degrade_sensors)[stream.sensors[i]] &&
                !directives[i].failed)
                directives[i].degraded = true;
        }
    }
    if (have_directives) {
        const double frac =
            cfg.faultTolerance.degradedSampleFraction;
        const auto degraded_k = static_cast<std::size_t>(std::max(
            1.0,
            std::floor(static_cast<double>(runnerCfg.inputPoints) *
                           frac +
                       0.5)));
        for (FrameFaultDirective &d : directives) {
            if (d.degraded && d.samplePoints == 0)
                d.samplePoints = degraded_k;
        }
    }

    std::vector<std::vector<Frame>> sub(n_shards);
    std::vector<std::vector<FrameFaultDirective>> shard_faults(
        n_shards);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const std::size_t s = assignment[i];
        sub[s].push_back(stream.frames[i]);
        outcomes[s].globalIndex.push_back(i);
        if (have_directives)
            shard_faults[s].push_back(directives[i]);
    }

    // Trace the placement decisions (virtual clock, at the frame's
    // capture time — deterministic payload) and give every shard its
    // sub-stream's fleet-level frame/sensor ids so shard spans are
    // attributable without the globalIndex mapping.
    std::vector<StreamTraceIds> trace_ids(n_shards);
    if (HGPCN_TRACE_ENABLED()) {
        for (std::size_t i = 0; i < stream.size(); ++i) {
            TraceIds ids;
            ids.frame = static_cast<std::int64_t>(i);
            ids.sensor =
                static_cast<std::int64_t>(stream.sensors[i]);
            ids.shard = static_cast<std::int64_t>(assignment[i]);
            HGPCN_TRACE_EVENT(Tracer::global().instant(
                TraceClock::Virtual, stream.frames[i].timestamp,
                "place:shard" + std::to_string(assignment[i]),
                "placement", "serving/placement", ids));
        }
        for (std::size_t s = 0; s < n_shards; ++s) {
            trace_ids[s].frame.reserve(outcomes[s].globalIndex.size());
            trace_ids[s].sensor.reserve(
                outcomes[s].globalIndex.size());
            for (const std::size_t g : outcomes[s].globalIndex) {
                trace_ids[s].frame.push_back(
                    static_cast<std::int64_t>(g));
                trace_ids[s].sensor.push_back(
                    static_cast<std::int64_t>(stream.sensors[g]));
            }
        }
    }

    // Execute: every shard drains its sub-stream on its own
    // pipeline, concurrently with the others. Stops (fleet-wide or
    // per-shard) are re-asserted through the per-frame hook so a
    // shard that enters run() after the stop — run() resets the
    // pipeline's own flag — still truncates at its first emission
    // instead of resurrecting a stopped serve.
    std::vector<std::thread> threads;
    threads.reserve(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
        threads.emplace_back([this, s, &sub, &outcomes, &on_frame,
                              &trace_ids, &shard_faults,
                              have_directives] {
            Shard &shard = *fleet[s];
            if (stopped.load() || shard.stopRequested.load()) {
                outcomes[s].result.report.framesIn = sub[s].size();
                outcomes[s].result.report.framesAbandoned =
                    sub[s].size();
                outcomes[s].result.report.paced =
                    shard.runner.config().paceBySensor;
                return;
            }
            const FrameTaskCallback hook =
                [this, s, &shard, &on_frame](const FrameTask &task) {
                    if (on_frame)
                        on_frame(s, task);
                    if (stopped.load() ||
                        shard.stopRequested.load())
                        shard.runner.requestStop();
                };
            outcomes[s].result = shard.runner.run(
                sub[s], hook,
                trace_ids[s].frame.empty() ? nullptr
                                           : &trace_ids[s],
                have_directives ? &shard_faults[s] : nullptr);
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Re-anchor each shard clock for the merge: a paced shard's
    // virtual time starts at its first admitted frame.
    for (std::size_t s = 0; s < n_shards; ++s) {
        outcomes[s].anchorSec =
            outcomes[s].result.report.paced && !sub[s].empty()
                ? sub[s].front().timestamp
                : 0.0;
    }
    ServingResult out = mergeShardOutcomes(
        stream, std::move(outcomes), cfg.placement);
    if (faulted)
        out.metrics.merge(fault_metrics.snapshot());
    serving.store(false);
    return out;
}

void
ShardedRunner::resetHealth()
{
    HGPCN_ASSERT(!serving.load(),
                 "resetHealth must not race a serve in progress");
    healthState.clear();
}

void
ShardedRunner::requestStop()
{
    stopped.store(true);
    // Over the active prefix only: parked shards are idle by
    // construction, and their latches are cleared on reactivation.
    for (std::size_t s = 0; s < active; ++s)
        fleet[s]->runner.requestStop();
}

void
ShardedRunner::requestStopShard(std::size_t shard)
{
    HGPCN_ASSERT(shard < active, "shard ", shard,
                 " out of range (", active, " active shards)");
    fleet[shard]->stopRequested.store(true);
    fleet[shard]->runner.requestStop();
}

} // namespace hgpcn
