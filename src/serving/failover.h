/**
 * @file
 * Dispatch-time fault resolution: turn a FaultPlan plus an initial
 * placement into (a) a final per-frame shard assignment with
 * crashed/tripped shards routed around and (b) one
 * FrameFaultDirective per frame (retries, backoff, slowdown,
 * degradation, terminal failure) for the runtime to charge as
 * virtual time.
 *
 * Everything here is pure arithmetic over the frame arrival stamps
 * (which ARE virtual times in a paced stream), the plan's keyed
 * draws and the breaker state machines — no wall clock, no
 * threads. Resolving before the functional run is what keeps a
 * faulted serve byte-identical on replay: the wall-clock pipeline
 * merely executes a schedule the resolution already fixed.
 *
 * Failover policy, in arrival order per frame:
 *   - A shard is *available* at t when it is not inside a crash
 *     window and its breaker does not read Open.
 *   - If the frame's home shard is available it serves at home
 *     (and the sensor's redirect, if any, is lifted — epoch
 *     re-placement in ElasticRunner restores locality wholesale).
 *   - Otherwise the sensor is redirected to
 *     survivors[sensor % |survivors|] over the ascending list of
 *     available shards; the redirect is re-evaluated per frame, and
 *     every change is recorded as a FailoverEvent.
 *   - With no available shard the frame is failed outright.
 *
 * On the serving shard the frame then runs the retry loop: each
 * attempt draws FaultPlan::transientError; a failure feeds the
 * breaker and schedules deterministic exponential backoff; the
 * frame fails when attempts or the deadline budget are exhausted.
 * A Half-Open serving shard degrades the frame's fidelity when the
 * policy says so — probes are cheap on purpose.
 */

#ifndef HGPCN_SERVING_FAILOVER_H
#define HGPCN_SERVING_FAILOVER_H

#include <cstddef>
#include <string>
#include <vector>

#include "datasets/sensor_stream.h"
#include "serving/health.h"
#include "sim/fault_plan.h"

namespace hgpcn
{

/** A sensor's redirect target changed at virtual time timeSec
 * (initial failover, target re-pick, or return home). */
struct FailoverEvent
{
    double timeSec = 0.0;
    std::size_t sensor = 0;
    std::size_t fromShard = 0;
    std::size_t toShard = 0;
};

/** A shard's breaker changed observable state at timeSec. */
struct BreakerTransition
{
    double timeSec = 0.0;
    std::size_t shard = 0;
    BreakerState from = BreakerState::Closed;
    BreakerState to = BreakerState::Closed;
};

/** Everything the serving layer needs to execute a faulted serve. */
struct FaultResolution
{
    /** Final shard per frame (parallel to stream.frames), after
     * routing around crashed/tripped shards. */
    std::vector<std::size_t> assignment;

    /** Per-frame fault outcome (parallel to stream.frames);
     * samplePoints is left 0 here — the caller fills the concrete
     * degraded budget since only it knows the configured K. */
    std::vector<FrameFaultDirective> directives;

    std::vector<FailoverEvent> failovers;
    std::vector<BreakerTransition> transitions;

    /** Frames served away from their home shard. */
    std::size_t framesRedirected = 0;
};

/**
 * Resolve the fault schedule for one serve (see file header).
 *
 * @param stream merged, timestamp-sorted sensor stream.
 * @param assignment initial (healthy-fleet) shard per frame, from
 *        assignShards().
 * @param backend_names registry name per shard (keys the
 *        transient-error draws).
 * @param service_sec estimated solo inference service seconds per
 *        shard (deadline arithmetic); may be zeros when unknown —
 *        deadlines then only account backoff.
 * @param plan the scripted fault schedule (must be non-empty; the
 *        caller skips resolution entirely for an empty plan).
 * @param cfg retry/backoff/deadline/degradation parameters.
 * @param health per-shard breakers, resized to the fleet here;
 *        carried across calls when the caller persists them
 *        (ElasticRunner's epochs share one fleet history).
 */
FaultResolution
resolveFaultSchedule(const SensorStream &stream,
                     const std::vector<std::size_t> &assignment,
                     const std::vector<std::string> &backend_names,
                     const std::vector<double> &service_sec,
                     const FaultPlan &plan,
                     const FaultToleranceConfig &cfg,
                     std::vector<CircuitBreaker> &health);

} // namespace hgpcn

#endif // HGPCN_SERVING_FAILOVER_H
