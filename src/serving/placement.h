/**
 * @file
 * Placement policies of the sharded serving layer: which shard a
 * tagged frame is dispatched to.
 *
 * All three policies are deterministic functions of the stream, so
 * serving reports stay exactly reproducible:
 *
 *  - RoundRobin spreads frames evenly, ignoring sensors: best raw
 *    balance, but a sensor's frames land on many shards, so its
 *    completion order is not preserved.
 *  - HashBySensor pins each sensor to one shard (affinity): a
 *    sensor's frames flow through a single FIFO pipeline, so its
 *    per-frame order is preserved end to end.
 *  - LeastLoaded joins the shortest queue: shard load is modeled at
 *    dispatch time as the outstanding assigned frames, each retiring
 *    after that shard's service time on its virtual clock (true
 *    queue depths live on the runtime's virtual timeline, which is
 *    only known after execution — the dispatch-time model is the
 *    deterministic stand-in a front-end would track). Service times
 *    are per shard, so a heterogeneous fleet (serving/sharded_runner.h)
 *    is modeled faithfully: a shard running a slower backend drains
 *    its backlog slower and is joined less often. ShardedRunner
 *    derives each shard's service time from its backend's
 *    cost-model estimate (ExecutionBackend::estimateServiceSec)
 *    unless explicitly overridden.
 */

#ifndef HGPCN_SERVING_PLACEMENT_H
#define HGPCN_SERVING_PLACEMENT_H

#include <cstdint>
#include <vector>

#include "datasets/sensor_stream.h"

namespace hgpcn
{

/** How the dispatcher demultiplexes frames across shards. */
enum class PlacementPolicy
{
    RoundRobin,   //!< frame i -> shard i mod N
    HashBySensor, //!< sensor affinity; preserves per-sensor order
    LeastLoaded,  //!< join-shortest-queue on modeled backlog
};

/** @return human-readable policy name. */
const char *placementPolicyName(PlacementPolicy policy);

/** Stable sensor-id mix (splitmix64) behind HashBySensor. */
std::uint64_t placementHash(std::size_t sensor);

/**
 * Compute the shard of every frame in @p stream.
 *
 * @param stream Tagged multi-sensor stream (interleaved order).
 * @param shard_count Number of shards (>= 1).
 * @param policy Dispatch policy.
 * @param service_sec_per_shard LeastLoaded only: modeled per-frame
 *        service time of each shard, after which an assigned frame
 *        retires from that shard's backlog — heterogeneous fleets
 *        pass each backend's cost-model estimate here. Empty, or
 *        any entry <= 0, selects the automatic estimate for that
 *        shard (the stream's mean inter-arrival scaled by
 *        shard_count); with no derivable estimate either, frames
 *        never retire and the policy degrades to pure
 *        join-shortest-queue by count. When non-empty, the size
 *        must equal @p shard_count.
 * @return shard index per frame, parallel to stream.frames.
 */
std::vector<std::size_t>
assignShards(const SensorStream &stream, std::size_t shard_count,
             PlacementPolicy policy,
             const std::vector<double> &service_sec_per_shard = {});

/** Convenience overload: one @p assumed_service_sec for every
 * shard (the homogeneous-fleet model). */
std::vector<std::size_t>
assignShards(const SensorStream &stream, std::size_t shard_count,
             PlacementPolicy policy, double assumed_service_sec);

} // namespace hgpcn

#endif // HGPCN_SERVING_PLACEMENT_H
