#include "serving/placement.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace hgpcn
{

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::RoundRobin:
        return "round-robin";
      case PlacementPolicy::HashBySensor:
        return "hash-by-sensor";
      case PlacementPolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

std::uint64_t
placementHash(std::size_t sensor)
{
    std::uint64_t x =
        static_cast<std::uint64_t>(sensor) + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

namespace
{

std::vector<std::size_t>
assignLeastLoaded(const SensorStream &stream,
                  std::size_t shard_count,
                  const std::vector<double> &service_sec)
{
    // Each shard is modeled as one serial server: an assigned frame
    // starts when the shard's previous frame retires (or at its own
    // arrival) and occupies the shard for that shard's service
    // time. Backlog at time t = assigned frames not yet retired;
    // join the shortest.
    std::vector<std::deque<double>> retire_at(shard_count);
    std::vector<std::size_t> assignment(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const double t = stream.frames[i].timestamp;
        std::size_t best = 0;
        for (std::size_t s = 0; s < shard_count; ++s) {
            if (service_sec[s] > 0.0) {
                while (!retire_at[s].empty() &&
                       retire_at[s].front() <= t)
                    retire_at[s].pop_front();
            }
            if (retire_at[s].size() < retire_at[best].size())
                best = s;
        }
        const double start =
            retire_at[best].empty()
                ? t
                : std::max(t, retire_at[best].back());
        retire_at[best].push_back(start + service_sec[best]);
        assignment[i] = best;
    }
    return assignment;
}

/** Auto service estimate: shard-level inter-arrival time. */
double
autoServiceSec(const SensorStream &stream, std::size_t shard_count)
{
    if (stream.size() < 2)
        return 0.0;
    const double span = stream.frames.back().timestamp -
                        stream.frames.front().timestamp;
    if (span <= 0.0)
        return 0.0;
    return span / static_cast<double>(stream.size() - 1) *
           static_cast<double>(shard_count);
}

} // namespace

std::vector<std::size_t>
assignShards(const SensorStream &stream, std::size_t shard_count,
             PlacementPolicy policy,
             const std::vector<double> &service_sec_per_shard)
{
    HGPCN_ASSERT(shard_count >= 1, "need at least one shard");
    HGPCN_ASSERT(stream.frames.size() == stream.sensors.size(),
                 "frames/sensors tags out of sync: ",
                 stream.frames.size(), " vs ",
                 stream.sensors.size());
    HGPCN_ASSERT(service_sec_per_shard.empty() ||
                     service_sec_per_shard.size() == shard_count,
                 "per-shard service times (",
                 service_sec_per_shard.size(),
                 ") must match the shard count (", shard_count, ")");
    for (const std::size_t sensor : stream.sensors) {
        HGPCN_ASSERT(sensor < stream.sensorCount,
                     "sensor tag ", sensor, " out of range (",
                     stream.sensorCount, " sensors)");
    }

    std::vector<std::size_t> assignment(stream.size());
    switch (policy) {
      case PlacementPolicy::RoundRobin:
        for (std::size_t i = 0; i < stream.size(); ++i)
            assignment[i] = i % shard_count;
        break;
      case PlacementPolicy::HashBySensor:
        for (std::size_t i = 0; i < stream.size(); ++i)
            assignment[i] = static_cast<std::size_t>(
                placementHash(stream.sensors[i]) % shard_count);
        break;
      case PlacementPolicy::LeastLoaded: {
        std::vector<double> service(shard_count, 0.0);
        for (std::size_t s = 0; s < shard_count; ++s) {
            if (s < service_sec_per_shard.size())
                service[s] = service_sec_per_shard[s];
            if (service[s] <= 0.0)
                service[s] = autoServiceSec(stream, shard_count);
        }
        assignment = assignLeastLoaded(stream, shard_count, service);
        break;
      }
    }
    return assignment;
}

std::vector<std::size_t>
assignShards(const SensorStream &stream, std::size_t shard_count,
             PlacementPolicy policy, double assumed_service_sec)
{
    return assignShards(
        stream, shard_count, policy,
        std::vector<double>(shard_count, assumed_service_sec));
}

} // namespace hgpcn
