/**
 * @file
 * ShardedRunner: the multi-sensor serving layer.
 *
 * N independent shards — each with its own PreprocessingEngine,
 * execution backend (src/backends), model replica and StreamRunner
 * pipeline — behind a front-end dispatcher that demultiplexes a
 * tagged SensorStream across them under a pluggable placement
 * policy (serving/placement.h). Shard results merge into one
 * ServingReport: global sustained FPS, per-shard / per-sensor /
 * per-backend latency percentiles, drops, utilization and Section
 * VII-E verdicts with the tri-state semantics.
 *
 * Fleets may be heterogeneous: Config::backends names each shard's
 * execution backend (registry names — "hgpcn", "mesorasi",
 * "pointacc", "cpu-brute", or anything registered), so 2 HgPCN
 * shards + 2 Mesorasi shards is one config line. LeastLoaded
 * placement then retires each shard's modeled backlog at that
 * shard's backend cost-model estimate, not a global constant.
 *
 * Every shard replica is seeded identically, so within one backend
 * which shard serves a frame never changes its functional output —
 * placement is purely a performance decision, exactly as in a
 * replicated model-serving fleet. (Across backends the functional
 * outputs still agree whenever the backends execute the same
 * data-structuring workload.)
 *
 * Restart contract (same as StagePipeline/StreamRunner):
 * requestStop()/requestStopShard() abort the serve in progress; a
 * later serve() starts fresh.
 *
 * Elastic fleets: setShardCount() grows or shrinks the fleet
 * between serves (never during one). Shrinking parks the trailing
 * replicas rather than destroying them; growing reactivates parked
 * replicas before constructing new ones, so shard s is always the
 * same identically-seeded replica no matter how often the fleet
 * resizes — scale events are placement decisions, not functional
 * ones. Config::shards is only the *initial* size; every serve/stop
 * path ranges over the currently active prefix, so no code may
 * assume the construction-time count.
 */

#ifndef HGPCN_SERVING_SHARDED_RUNNER_H
#define HGPCN_SERVING_SHARDED_RUNNER_H

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backends/backend_registry.h"
#include "core/hgpcn_system.h"
#include "datasets/sensor_stream.h"
#include "serving/failover.h"
#include "serving/placement.h"
#include "serving/serving_report.h"

namespace hgpcn
{

/** Per-frame serving hook: (shard, completed task), called on that
 * shard's collecting thread in the shard's admission order. */
using ServingFrameCallback =
    std::function<void(std::size_t shard, const FrameTask &task)>;

/** A fleet of StreamRunner shards behind one dispatcher. */
class ShardedRunner
{
  public:
    struct Config
    {
        /** Number of shards (>= 1). */
        std::size_t shards = 2;

        /** How the dispatcher places frames (serving/placement.h). */
        PlacementPolicy placement = PlacementPolicy::HashBySensor;

        /** Per-shard runner parameters. inputPoints 0 inherits the
         * system/spec K, as HgPcnSystem::runStream does. */
        StreamRunner::Config runner;

        /** Execution backend per shard (registry names). Empty:
         * every shard runs "hgpcn". One entry: a homogeneous fleet
         * of that backend. Otherwise the size must equal the
         * initial shard count — backends[s] is shard s's backend,
         * and shards added later by setShardCount() cycle through
         * the list (backends[s % size]), keeping the fleet's
         * backend mix stable as it scales. */
        std::vector<std::string> backends;

        /** LeastLoaded backlog-retirement estimate override; <= 0 =
         * derive per shard from each backend's cost-model estimate
         * (ExecutionBackend::estimateServiceSec). */
        double assumedServiceSec = 0.0;

        /** Scripted fault schedule (borrowed; must outlive the
         * runner). Null or empty: the fault layer is inert and
         * every serve is byte-identical to a pre-fault build. */
        const FaultPlan *faultPlan = nullptr;

        /** Retry/backoff/deadline/degradation parameters, used only
         * when a non-empty faultPlan is set (or degraded sensors
         * are passed to serve()). */
        FaultToleranceConfig faultTolerance;

        /** true: circuit-breaker state carries across serve()
         * calls (ElasticRunner's epochs share one fleet history);
         * false: every serve starts with pristine breakers. Either
         * way resetHealth() clears them on demand. */
        bool persistHealth = false;
    };

    /**
     * Build the fleet: @p config.shards replicas of the system's
     * engines and network.
     *
     * @param system Engine parameters (as HgPcnSystem::Config).
     * @param spec Network deployed on every shard; its inputPoints
     *        overrides system.inputPoints when nonzero.
     * @param config Serving parameters.
     */
    ShardedRunner(const HgPcnSystem::Config &system,
                  const PointNet2Spec &spec, const Config &config);

    /**
     * Serve @p stream end to end (blocking): dispatch every tagged
     * frame to a shard, run all shard pipelines concurrently, merge
     * the shard reports.
     *
     * Reusable: serve() starts fresh even after a previous serve
     * was aborted by requestStop().
     *
     * @param stream Tagged multi-sensor stream, interleaved order.
     * @param on_frame Optional per-frame hook.
     * @param degrade_sensors Optional per-sensor degradation flags
     *        (size stream.sensorCount): flagged sensors' frames run
     *        at the reduced fidelity budget instead of full K —
     *        ElasticRunner's degrade-instead-of-shed admission.
     *        Composes with a fault plan; null changes nothing.
     */
    ServingResult serve(const SensorStream &stream,
                        const ServingFrameCallback &on_frame = {},
                        const std::vector<bool> *degrade_sensors =
                            nullptr);

    /** Abort the serve in progress on every shard (safe from any
     * thread, including the on_frame hook). */
    void requestStop();

    /** Abort the serve in progress on one shard only; the other
     * shards keep draining their sub-streams. Sticky for the serve
     * in progress (a stop that races the shard's pipeline startup
     * still truncates it at its first emission); cleared, like
     * requestStop(), on the next serve(). */
    void requestStopShard(std::size_t shard);

    /**
     * Resize the fleet to @p shards active replicas (>= 1). Must
     * not race a serve in progress (fatal if it does). Shrinking
     * parks replicas [shards, current); growing reactivates parked
     * replicas (their stop latches cleared) and constructs new ones
     * beyond the high-water mark, with backend names cycling
     * through Config::backends.
     */
    void setShardCount(std::size_t shards);

    /** @return number of active shards (dynamic; Config::shards is
     * only the initial size). */
    std::size_t shardCount() const { return active; }

    /** @return shard @p shard's execution backend. */
    const ExecutionBackend &shardBackend(std::size_t shard) const;

    /** Forget all circuit-breaker history: the next serve starts
     * with pristine Closed breakers. Must not race a serve. */
    void resetHealth();

    /** @return the per-shard breakers after the last faulted serve
     * (empty when no faulted serve ran since the last reset). */
    const std::vector<CircuitBreaker> &health() const
    {
        return healthState;
    }

    /** @return serving parameters. */
    const Config &config() const { return cfg; }

  private:
    /** One shard: a full replica of the single-runner stack, on
     * its named execution backend. */
    struct Shard
    {
        PreprocessingEngine preprocess;
        PointNet2 model;
        std::unique_ptr<ExecutionBackend> backend;
        StreamRunner runner;
        /** Per-shard stop latch for the serve in progress — the
         * runner's own stop flag resets on run() entry, so a stop
         * racing that entry must be re-asserted from the per-frame
         * hook. */
        std::atomic<bool> stopRequested{false};

        Shard(const HgPcnSystem::Config &system,
              const PointNet2Spec &spec,
              const std::string &backend_name,
              const StreamRunner::Config &runner_cfg);
    };

    /** Backend registry name of shard @p s (cycling rule). */
    std::string backendNameFor(std::size_t s) const;

    Config cfg;
    HgPcnSystem::Config system;     //!< for deferred shard builds
    PointNet2Spec spec;             //!< for deferred shard builds
    StreamRunner::Config runnerCfg; //!< resolved (nonzero K)
    std::atomic<bool> stopped{false};
    std::atomic<bool> serving{false};
    /** Every replica ever built; fleet[0, active) is the live
     * fleet, the rest are parked by setShardCount(). */
    std::vector<std::unique_ptr<Shard>> fleet;
    std::size_t active = 0;
    /** Per-shard circuit breakers, populated by faulted serves;
     * cleared at serve() entry unless Config::persistHealth. */
    std::vector<CircuitBreaker> healthState;
};

} // namespace hgpcn

#endif // HGPCN_SERVING_SHARDED_RUNNER_H
