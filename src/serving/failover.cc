#include "serving/failover.h"

#include <cmath>

#include "common/logging.h"

namespace hgpcn
{
namespace
{

/** Shard availability at virtual time @p t: outside every crash
 * window and breaker not reading Open. */
bool
shardAvailable(std::size_t shard, double t, const FaultPlan &plan,
               const std::vector<CircuitBreaker> &health)
{
    return !plan.shardCrashed(shard, t) &&
           health[shard].state(t) != BreakerState::Open;
}

} // namespace

FaultResolution
resolveFaultSchedule(const SensorStream &stream,
                     const std::vector<std::size_t> &assignment,
                     const std::vector<std::string> &backend_names,
                     const std::vector<double> &service_sec,
                     const FaultPlan &plan,
                     const FaultToleranceConfig &cfg,
                     std::vector<CircuitBreaker> &health)
{
    const std::size_t n_shards = backend_names.size();
    HGPCN_ASSERT(n_shards >= 1, "need at least one shard");
    HGPCN_ASSERT(assignment.size() == stream.size(),
                 "assignment/stream out of sync: ", assignment.size(),
                 " vs ", stream.size());
    HGPCN_ASSERT(service_sec.empty() ||
                     service_sec.size() == n_shards,
                 "service_sec must be empty or one entry per shard");
    HGPCN_ASSERT(cfg.maxAttempts >= 1, "need at least one attempt");
    HGPCN_ASSERT(cfg.degradedSampleFraction > 0.0 &&
                     cfg.degradedSampleFraction <= 1.0,
                 "degradedSampleFraction (",
                 cfg.degradedSampleFraction, ") must be in (0, 1]");

    health.resize(n_shards, CircuitBreaker(cfg.breaker));

    FaultResolution res;
    res.assignment = assignment;
    res.directives.assign(stream.size(), FrameFaultDirective{});

    // Observable breaker state per shard, for transition records.
    std::vector<BreakerState> last(n_shards, BreakerState::Closed);
    for (std::size_t s = 0; s < n_shards; ++s)
        last[s] = health[s].state(0.0);

    const auto note = [&](std::size_t s, double t) {
        const BreakerState now = health[s].state(t);
        if (now != last[s]) {
            res.transitions.push_back({t, s, last[s], now});
            last[s] = now;
        }
    };

    // Current redirect target per sensor (-1 = serving at home).
    std::vector<std::ptrdiff_t> redirect(stream.sensorCount, -1);

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const double t = stream.frames[i].timestamp;
        const std::size_t sensor = stream.sensors[i];
        const std::size_t home = assignment[i];
        HGPCN_ASSERT(home < n_shards, "frame ", i,
                     " assigned to shard ", home, " of ", n_shards);
        FrameFaultDirective &d = res.directives[i];

        note(home, t);

        // --- Placement: home when available, else fail over. ---
        std::size_t serving = home;
        if (shardAvailable(home, t, plan, health)) {
            if (redirect[sensor] >= 0) {
                res.failovers.push_back(
                    {t, sensor,
                     static_cast<std::size_t>(redirect[sensor]),
                     home});
                redirect[sensor] = -1;
            }
        } else {
            std::vector<std::size_t> survivors;
            for (std::size_t s = 0; s < n_shards; ++s) {
                if (shardAvailable(s, t, plan, health))
                    survivors.push_back(s);
            }
            if (survivors.empty()) {
                // Whole fleet down: the frame still flows through
                // its home pipeline (charged one service) but
                // delivers nothing.
                d.failed = true;
                d.slowdownMult = plan.slowdown(home, t);
                continue;
            }
            serving = survivors[sensor % survivors.size()];
            const std::size_t prev =
                redirect[sensor] >= 0
                    ? static_cast<std::size_t>(redirect[sensor])
                    : home;
            if (prev != serving) {
                res.failovers.push_back({t, sensor, prev, serving});
                redirect[sensor] =
                    static_cast<std::ptrdiff_t>(serving);
            }
            note(serving, t);
        }
        res.assignment[i] = serving;
        if (serving != home)
            ++res.framesRedirected;

        // --- Degradation: Half-Open probes run at reduced
        // fidelity (the caller fills the concrete budget). ---
        if (cfg.degradeOnHalfOpen &&
            health[serving].state(t) == BreakerState::HalfOpen)
            d.degraded = true;

        d.slowdownMult = plan.slowdown(serving, t);

        // --- Retry loop with deterministic backoff/deadline. ---
        const std::string &backend = backend_names[serving];
        const double svc =
            (service_sec.empty() ? 0.0 : service_sec[serving]) *
            d.slowdownMult;
        double backoff_next = cfg.backoffBaseSec;
        for (std::uint32_t a = 1;; ++a) {
            d.attempts = a;
            if (!plan.transientError(backend, serving, i, a, t)) {
                health[serving].onSuccess(t);
                break;
            }
            health[serving].onFailure(t);
            if (a >= cfg.maxAttempts) {
                d.failed = true;
                break;
            }
            if (cfg.deadlineSec > 0.0 &&
                static_cast<double>(a + 1) * svc + d.backoffSec +
                        backoff_next >
                    cfg.deadlineSec) {
                // The retry would blow the budget; fail now
                // without charging it.
                d.failed = true;
                break;
            }
            d.backoffSec += backoff_next;
            backoff_next *= cfg.backoffMultiplier;
        }
        note(serving, t);
    }
    return res;
}

} // namespace hgpcn
