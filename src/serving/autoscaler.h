/**
 * @file
 * Elastic serving: a deterministic autoscaler + control loop over
 * the ShardedRunner fleet.
 *
 * The serve is partitioned into fixed-length *control epochs* on
 * the virtual timeline. Each epoch:
 *
 *   1. applies the fleet resize decided at the end of the previous
 *      epoch (ShardedRunner::setShardCount — never during a serve);
 *   2. runs admission control (serving/admission.h) against the
 *      epoch's offered load and the active fleet's modeled
 *      capacity, shedding whole sensors lowest-priority first —
 *      or, under AdmissionConfig::degradeInsteadOfShed, serving
 *      the would-be-shed sensors at reduced fidelity instead;
 *   3. serves the admitted sub-stream as an ordinary fleet serve;
 *   4. derives EpochSignals from the epoch's ServingReport —
 *      offered vs sustained FPS, bottleneck-stage occupancy and
 *      modeled backlog — and feeds them to Autoscaler::step, whose
 *      decision takes effect at the next epoch boundary.
 *
 * Everything the loop consumes is modeled virtual-timeline
 * arithmetic, never wall-clock measurement, so the whole elastic
 * serve — scale events, shed sets, merged report — is bit-for-bit
 * reproducible from (trace seed, config) on any machine. Autoscaler
 * is a pure hand-computable state machine (hysteresis counters +
 * cooldown) and is unit-tested against pinned transition sequences
 * in tests/test_elastic.cc.
 *
 * The per-epoch results are merged by mergeEpochResults
 * (serving/serving_report.h): shard identities persist across
 * resizes (the ShardedRunner active-prefix pool), per-sensor
 * completions are clamped to in-order delivery across epoch
 * boundaries, and shed frames join the conservation identity
 * framesIn == processed + dropped + abandoned + shed.
 */

#ifndef HGPCN_SERVING_AUTOSCALER_H
#define HGPCN_SERVING_AUTOSCALER_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/hgpcn_system.h"
#include "serving/admission.h"
#include "serving/serving_report.h"
#include "serving/sharded_runner.h"

namespace hgpcn
{

/** Autoscaler parameters: thresholds, hysteresis, cooldown. */
struct AutoscalerConfig
{
    std::size_t minShards = 1; //!< never scale below
    std::size_t maxShards = 8; //!< never scale above

    std::size_t upStep = 1;   //!< shards added per scale-up
    std::size_t downStep = 1; //!< shards removed per scale-down

    /** Consecutive overloaded epochs required before scaling up.
     * 1 = react on the first overloaded epoch. */
    std::size_t upHoldEpochs = 1;
    /** Consecutive underloaded epochs required before scaling
     * down; > upHoldEpochs makes shrinking deliberately lazier
     * than growing. */
    std::size_t downHoldEpochs = 2;
    /** Epochs after any scale action during which no further
     * action fires (hysteresis counters keep accumulating). */
    std::size_t cooldownEpochs = 1;

    /** Bottleneck occupancy above which an epoch is overloaded. */
    double upUtilization = 0.85;
    /** Bottleneck occupancy below which an epoch is underloaded
     * (only when not overloaded by any other signal). */
    double downUtilization = 0.35;
    /** Falling-behind tolerance: sustained < offered * (1 - tol)
     * marks the epoch overloaded even at modest occupancy. */
    double behindTolerance = 0.05;
    /** Modeled-backlog tolerance, per shard: an epoch is
     * overloaded when backlogFrames > backlogPerShard *
     * activeShards. A keeping-up pipeline always carries about a
     * pipeline depth's worth of in-flight frames across the epoch
     * boundary; only growth beyond that signals overload. */
    double backlogPerShard = 4.0;
};

/** What one control epoch measured (all modeled arithmetic). */
struct EpochSignals
{
    /** Admitted frames / epoch length. */
    double offeredFps = 0;
    /** Completed frames / epoch length. */
    double sustainedFps = 0;
    /** Fleet bottleneck occupancy: mean over active shards of the
     * busiest stage's busySec/units, normalized by epoch length. */
    double utilization = 0;
    /** Completions the virtual timeline placed beyond the epoch
     * end — modeled work the fleet did not retire in time (a
     * pipeline depth's worth is normal; see
     * AutoscalerConfig::backlogPerShard). */
    std::size_t backlogFrames = 0;
    /** Fleet width during the epoch. */
    std::size_t activeShards = 0;
};

/** What the autoscaler decided at an epoch boundary. */
enum class ScaleAction
{
    Hold,
    Up,
    Down,
};

/** Stable display name ("hold", "up", "down"). */
const char *scaleActionName(ScaleAction action);

/** A step's outcome: the target width for the next epoch. */
struct ScaleDecision
{
    ScaleAction action = ScaleAction::Hold;
    /** Fleet width for the next epoch (== current on Hold). */
    std::size_t shards = 0;
    /** Deterministic human-readable rationale. */
    std::string reason;
};

/**
 * The scaling state machine. Pure arithmetic over EpochSignals:
 * an epoch is *overloaded* when its modeled backlog exceeds
 * backlogPerShard per active shard, bottleneck occupancy is above
 * upUtilization, or sustained throughput is more than
 * behindTolerance below offered; it is *underloaded* when none of
 * that holds and occupancy is below downUtilization. Consecutive
 * overloaded (underloaded) epochs are counted; reaching
 * upHoldEpochs (downHoldEpochs) fires a scale action, clamped to
 * [minShards, maxShards], after which cooldownEpochs boundaries
 * pass before another action may fire (counters keep accumulating
 * through the cooldown, so a persistent overload acts the moment
 * the cooldown expires).
 */
class Autoscaler
{
  public:
    explicit Autoscaler(const AutoscalerConfig &config);

    /** Consume one epoch's signals, decide the next epoch's width. */
    ScaleDecision step(const EpochSignals &signals);

    const AutoscalerConfig &config() const { return cfg; }

  private:
    AutoscalerConfig cfg;
    std::size_t overEpochs = 0;  //!< consecutive overloaded epochs
    std::size_t underEpochs = 0; //!< consecutive underloaded epochs
    std::size_t cooldown = 0;    //!< boundaries left before acting
};

/** One scale event in an elastic serve. */
struct ScaleEvent
{
    std::size_t epoch = 0; //!< decided at this epoch's end
    ScaleAction action = ScaleAction::Hold;
    std::size_t fromShards = 0;
    std::size_t toShards = 0;
    std::string reason;
};

/** One control epoch's log line worth of state. */
struct EpochLog
{
    std::size_t epoch = 0;
    double startSec = 0;
    double endSec = 0;
    std::size_t activeShards = 0;
    std::size_t framesOffered = 0;  //!< stamps in the window
    std::size_t framesAdmitted = 0; //!< dispatched to the fleet
    std::size_t framesShed = 0;     //!< refused by admission
    std::vector<std::size_t> shedSensors; //!< ascending ids
    /** Sensors served at reduced fidelity instead of refused
     * (AdmissionConfig::degradeInsteadOfShed), ascending ids;
     * disjoint from shedSensors (degrade mode empties it). */
    std::vector<std::size_t> degradedSensors;
    /** Frames this epoch completed at reduced fidelity (degraded
     * sensors + any half-open-breaker degradation). */
    std::size_t framesDegraded = 0;
    double capacityFps = 0; //!< modeled fleet capacity used
    EpochSignals signals;
    ScaleDecision decision;
};

/** Everything one elastic serve produced. */
struct ElasticResult
{
    /** The merged global view (mergeEpochResults). */
    ServingResult serving;
    /** Per-epoch logs, in epoch order. */
    std::vector<EpochLog> epochs;
    /** Scale events only (epochs whose decision changed the
     * width), in epoch order. */
    std::vector<ScaleEvent> events;
    /** Σ activeShards × epoch length — the provisioning cost an
     * elastic fleet pays, comparable against a static fleet's
     * shards × total duration. */
    double shardSeconds = 0;

    /** Canonical fixed-precision decision trace: one line per
     * epoch. Byte-identical across runs of the same (trace,
     * config) — the determinism oracle for tests and benches. */
    std::string decisionLog() const;
};

/** The elastic serving layer: autoscaler + admission control
 * driving a ShardedRunner fleet across control epochs. */
class ElasticRunner
{
  public:
    struct Config
    {
        /** Control epoch length on the virtual timeline (> 0). */
        double epochSec = 1.0;

        /** Fleet parameters; fleet.shards is the initial width and
         * fleet.assumedServiceSec (> 0) overrides the per-backend
         * cost-model service-time estimate in the capacity model.
         * The runner must be sensor-paced (elastic control needs a
         * timeline; fatal otherwise). */
        ShardedRunner::Config fleet;

        AutoscalerConfig autoscaler;
        AdmissionConfig admission;
    };

    /**
     * Build the elastic layer and its fleet.
     *
     * @param system Engine parameters (as ShardedRunner).
     * @param spec Network deployed on every shard.
     * @param config Elastic serving parameters.
     */
    ElasticRunner(const HgPcnSystem::Config &system,
                  const PointNet2Spec &spec, const Config &config);

    /**
     * Serve @p stream elastically (blocking). Reusable: every
     * serve resets the fleet to the initial width, the autoscaler
     * to its initial state and the fleet's circuit breakers to
     * pristine Closed, so identical inputs produce identical
     * results no matter what ran before. Within one serve, breaker
     * health persists across the control epochs (the epochs share
     * one fleet history).
     *
     * @param stream Tagged multi-sensor stream, strictly
     *        increasing stamps (the pacing contract).
     * @param priority Per-sensor priorities for admission control
     *        (higher = more important); empty = all equal.
     */
    ElasticResult serve(const SensorStream &stream,
                        const std::vector<int> &priority = {});

    /** @return the underlying fleet (e.g. to inspect backends). */
    ShardedRunner &fleet() { return runner; }

    const Config &config() const { return cfg; }

  private:
    /** Modeled fleet throughput at the current width: Σ over
     * active shards of 1 / service-time estimate. */
    double capacityFps() const;
    /** Backend registry name of shard @p s (the ShardedRunner
     * cycling rule, replicated for the merge attribution). */
    std::string backendNameFor(std::size_t s) const;

    Config cfg;
    ShardedRunner runner;
};

} // namespace hgpcn

#endif // HGPCN_SERVING_AUTOSCALER_H
