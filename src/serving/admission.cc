#include "serving/admission.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{

ShedDecision
decideAdmission(const std::vector<double> &offered_fps,
                const std::vector<int> &priority, double capacity_fps,
                const AdmissionConfig &config)
{
    HGPCN_ASSERT(priority.empty() ||
                     priority.size() == offered_fps.size(),
                 "priority list (", priority.size(),
                 ") must be empty or parallel to the offered rates (",
                 offered_fps.size(), ")");
    HGPCN_ASSERT(config.headroom > 0.0 && config.headroom <= 1.0,
                 "admission headroom must be in (0, 1]");

    const std::size_t n = offered_fps.size();
    ShedDecision out;
    out.admitted.assign(n, true);
    for (const double fps : offered_fps) {
        HGPCN_ASSERT(fps >= 0.0, "offered rates must be >= 0");
        out.admittedFps += fps;
    }
    if (!config.enabled)
        return out;

    const double budget = capacity_fps * config.headroom;

    // Shed order: lowest priority first; within a tier, highest
    // sensor id first. Idle sensors never shed (freeing 0 load).
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        if (offered_fps[k] > 0.0)
            order.push_back(k);
    }
    std::sort(order.begin(), order.end(),
              [&priority](std::size_t a, std::size_t b) {
                  const int pa = priority.empty() ? 0 : priority[a];
                  const int pb = priority.empty() ? 0 : priority[b];
                  if (pa != pb)
                      return pa < pb;
                  return a > b;
              });

    std::size_t loaded = order.size();
    for (const std::size_t k : order) {
        if (out.admittedFps <= budget)
            break;
        if (loaded == 1)
            break; // always serve at least one loaded sensor
        out.admitted[k] = false;
        out.admittedFps -= offered_fps[k];
        out.shedFps += offered_fps[k];
        out.shedSensors.push_back(k);
        --loaded;
    }
    std::sort(out.shedSensors.begin(), out.shedSensors.end());
    return out;
}

} // namespace hgpcn
