#include "serving/serving_report.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace hgpcn
{
namespace
{

/** (n-1)/span generation rate over a timestamp subsequence. */
double
generationFpsOf(const std::vector<double> &stamps)
{
    if (stamps.size() < 2)
        return 0.0;
    const double span = stamps.back() - stamps.front();
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(stamps.size() - 1) / span;
}

} // namespace

std::string
ServingReport::toString() const
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(1);
    oss << "serving: " << shardCount << " shard"
        << (shardCount == 1 ? "" : "s") << " ("
        << placementPolicyName(placement) << "), " << sensorCount
        << " sensor" << (sensorCount == 1 ? "" : "s")
        << (paced ? ", sensor-paced" : ", batch") << "\n";
    oss << "frames: " << framesProcessed << "/" << framesIn
        << " processed";
    if (framesDropped > 0)
        oss << ", " << framesDropped << " dropped";
    if (framesAbandoned > 0)
        oss << ", " << framesAbandoned << " abandoned";
    if (framesShed > 0)
        oss << ", " << framesShed << " shed";
    if (framesFailed > 0)
        oss << ", " << framesFailed << " failed";
    oss << "\n";
    // Absent on fault-free serves, keeping legacy output exact.
    if (framesRetried > 0 || framesDegraded > 0)
        oss << "fault-tolerance: " << framesRetried << " retried | "
            << framesDegraded << " degraded\n";
    oss << "aggregate: " << sustainedFps << " FPS over "
        << makespanSec * 1e3 << " ms";
    oss.precision(2);
    oss << " | latency ms: mean " << meanLatencySec * 1e3 << " | p50 "
        << p50LatencySec * 1e3 << " | p95 " << p95LatencySec * 1e3
        << " | p99 " << p99LatencySec * 1e3 << " | max "
        << maxLatencySec * 1e3 << "\n";
    oss.precision(1);
    for (std::size_t s = 0; s < shardReports.size(); ++s) {
        const RuntimeReport &r = shardReports[s];
        oss << "shard " << s;
        if (s < shardBackends.size() && !shardBackends[s].empty())
            oss << " [" << shardBackends[s] << "]";
        oss << ": " << r.framesProcessed << "/"
            << r.framesIn << " processed | sustained "
            << r.sustainedFps << " FPS";
        for (const TimelineStageStats &st : r.stages) {
            oss << " | " << st.name << " util "
                << static_cast<int>(st.utilization * 100.0 + 0.5)
                << "%";
        }
        // Batch-occupancy attribution; absent at maxBatch == 1 so
        // non-batched serves render byte-identically to before.
        if (r.configuredMaxBatch > 1) {
            oss.precision(2);
            oss << " | batch mean " << r.meanBatchSize << " peak "
                << r.maxBatchSize << " (" << r.batchedFrames
                << " batched, " << r.soloFrames << " solo)";
            oss.precision(1);
        }
        oss << "\n";
    }
    for (const SensorServingReport &sr : sensors) {
        oss << "sensor " << sr.sensor << " [" << sr.shardSpread
            << " shard" << (sr.shardSpread == 1 ? "" : "s")
            << "]: " << sr.framesDone << "/" << sr.framesIn;
        if (sr.framesShed > 0)
            oss << " (" << sr.framesShed << " shed)";
        if (sr.framesFailed > 0)
            oss << " (" << sr.framesFailed << " failed)";
        if (sr.framesDegraded > 0)
            oss << " (" << sr.framesDegraded << " degraded)";
        if (sr.generationFps > 0.0)
            oss << " | sensor " << sr.generationFps << " FPS";
        oss << " | sustained " << sr.sustainedFps << " FPS";
        oss.precision(2);
        oss << " | p99 " << sr.p99LatencySec * 1e3 << " ms";
        oss.precision(1);
        oss << " | real-time: " << realTimeVerdictName(sr.realTime)
            << "\n";
    }
    for (const BackendServingReport &br : backends) {
        oss << "backend " << br.backend << " [" << br.shards
            << " shard" << (br.shards == 1 ? "" : "s")
            << "]: " << br.framesDone << "/" << br.framesIn;
        if (br.framesFailed > 0)
            oss << " (" << br.framesFailed << " failed)";
        if (br.framesRetried > 0)
            oss << " (" << br.framesRetried << " retried)";
        if (br.framesDegraded > 0)
            oss << " (" << br.framesDegraded << " degraded)";
        if (br.offeredFps > 0.0)
            oss << " | offered " << br.offeredFps << " FPS";
        oss << " | sustained " << br.sustainedFps << " FPS";
        oss.precision(2);
        oss << " | p99 " << br.p99LatencySec * 1e3 << " ms";
        oss.precision(1);
        oss << " | real-time: " << realTimeVerdictName(br.realTime)
            << "\n";
    }
    return oss.str();
}

ServingResult
mergeShardOutcomes(const SensorStream &stream,
                   std::vector<ShardOutcome> outcomes,
                   PlacementPolicy policy)
{
    HGPCN_ASSERT(stream.frames.size() == stream.sensors.size(),
                 "frames/sensors tags out of sync");

    ServingResult out;
    ServingReport &rep = out.report;
    rep.placement = policy;
    rep.shardCount = outcomes.size();
    rep.sensorCount = stream.sensorCount;
    rep.framesIn = stream.size();

    // Position of every frame within its own sensor's sequence.
    std::vector<std::size_t> sensor_index(stream.size(), 0);
    std::vector<std::size_t> seen(stream.sensorCount, 0);
    for (std::size_t i = 0; i < stream.size(); ++i)
        sensor_index[i] = seen[stream.sensors[i]]++;

    rep.paced = true;
    for (const ShardOutcome &oc : outcomes) {
        const RuntimeReport &r = oc.result.report;
        rep.framesProcessed += r.framesProcessed;
        rep.framesDropped += r.framesDropped;
        rep.framesAbandoned += r.framesAbandoned;
        rep.framesFailed += r.framesFailed;
        rep.framesRetried += r.framesRetried;
        rep.framesDegraded += r.framesDegraded;
        if (r.framesIn > 0)
            rep.paced = rep.paced && r.paced;
        rep.shardReports.push_back(r);
        rep.shardBackends.push_back(oc.backend);
        out.metrics.merge(oc.result.metrics);
    }

    // Re-anchor every shard clock onto the global timeline and
    // collect the completed frames.
    for (std::size_t s = 0; s < outcomes.size(); ++s) {
        ShardOutcome &oc = outcomes[s];
        for (ProcessedFrame &pf : oc.result.frames) {
            HGPCN_ASSERT(pf.index < oc.globalIndex.size(),
                         "shard ", s, " frame index ", pf.index,
                         " has no global mapping");
            const std::size_t g = oc.globalIndex[pf.index];
            ServedFrame sf;
            sf.globalIndex = g;
            sf.sensor = stream.sensors[g];
            sf.sensorIndex = sensor_index[g];
            sf.shard = s;
            sf.latencySec = pf.latencySec;
            sf.doneSec = oc.anchorSec + pf.doneSec;
            sf.result = std::move(pf.result);
            out.frames.push_back(std::move(sf));
        }
    }
    std::sort(out.frames.begin(), out.frames.end(),
              [](const ServedFrame &a, const ServedFrame &b) {
                  if (a.doneSec != b.doneSec)
                      return a.doneSec < b.doneSec;
                  return a.globalIndex < b.globalIndex;
              });

    // Aggregate makespan + latency distribution.
    const double global_start =
        rep.paced && !stream.frames.empty()
            ? stream.frames.front().timestamp
            : 0.0;
    std::vector<double> latencies;
    latencies.reserve(out.frames.size());
    double max_done = global_start;
    for (const ServedFrame &sf : out.frames) {
        latencies.push_back(sf.latencySec);
        max_done = std::max(max_done, sf.doneSec);
        rep.maxLatencySec = std::max(rep.maxLatencySec,
                                     sf.latencySec);
        rep.meanLatencySec += sf.latencySec;
    }
    if (!latencies.empty()) {
        rep.meanLatencySec /= static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        rep.p50LatencySec = percentileNearestRank(latencies, 0.50);
        rep.p95LatencySec = percentileNearestRank(latencies, 0.95);
        rep.p99LatencySec = percentileNearestRank(latencies, 0.99);
        rep.makespanSec = max_done - global_start;
        rep.sustainedFps =
            rep.makespanSec > 0.0
                ? static_cast<double>(rep.framesProcessed) /
                      rep.makespanSec
                : 0.0;
    }

    // Per-sensor slices.
    rep.sensors.resize(stream.sensorCount);
    std::vector<std::vector<double>> sensor_lat(stream.sensorCount);
    std::vector<std::set<std::size_t>> sensor_shards(
        stream.sensorCount);
    std::vector<std::vector<double>> sensor_stamps(
        stream.sensorCount);
    std::vector<double> sensor_done(
        stream.sensorCount, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        rep.sensors[stream.sensors[i]].framesIn++;
        sensor_stamps[stream.sensors[i]].push_back(
            stream.frames[i].timestamp);
    }
    for (const ServedFrame &sf : out.frames) {
        SensorServingReport &sr = rep.sensors[sf.sensor];
        sr.framesDone++;
        sr.maxLatencySec = std::max(sr.maxLatencySec, sf.latencySec);
        sensor_lat[sf.sensor].push_back(sf.latencySec);
        sensor_shards[sf.sensor].insert(sf.shard);
        sensor_done[sf.sensor] =
            std::max(sensor_done[sf.sensor], sf.doneSec);
    }
    for (std::size_t k = 0; k < stream.sensorCount; ++k) {
        SensorServingReport &sr = rep.sensors[k];
        sr.sensor = k;
        sr.framesMissed = sr.framesIn - sr.framesDone;
        sr.shardSpread = sensor_shards[k].size();
        sr.generationFps = generationFpsOf(sensor_stamps[k]);
        if (sr.framesDone > 0) {
            const double first_offer =
                rep.paced ? sensor_stamps[k].front() : 0.0;
            const double span = sensor_done[k] - first_offer;
            sr.sustainedFps =
                span > 0.0
                    ? static_cast<double>(sr.framesDone) / span
                    : 0.0;
            std::sort(sensor_lat[k].begin(), sensor_lat[k].end());
            sr.p50LatencySec =
                percentileNearestRank(sensor_lat[k], 0.50);
            sr.p95LatencySec =
                percentileNearestRank(sensor_lat[k], 0.95);
            sr.p99LatencySec =
                percentileNearestRank(sensor_lat[k], 0.99);
        }
        // The fixed Section VII-E semantics: a batch serve races no
        // sensor, so the verdict is n/a, never a vacuous YES.
        sr.realTime = evaluateRealTime(
            sr.sustainedFps, rep.paced ? sr.generationFps : 0.0);
    }

    // Per-backend slices: group shards by attributed backend name
    // (first-shard order) and aggregate each group the same way a
    // sensor slice is — dispatched stamps give the offered rate,
    // completions the sustained rate and the latency distribution.
    std::vector<std::size_t> backend_of(outcomes.size(), 0);
    for (std::size_t s = 0; s < outcomes.size(); ++s) {
        const std::string &name = outcomes[s].backend;
        if (name.empty()) {
            backend_of[s] = rep.backends.size(); // sentinel: none
            continue;
        }
        std::size_t b = 0;
        while (b < rep.backends.size() &&
               rep.backends[b].backend != name)
            ++b;
        if (b == rep.backends.size()) {
            BackendServingReport br;
            br.backend = name;
            rep.backends.push_back(std::move(br));
        }
        backend_of[s] = b;
        rep.backends[b].shards++;
    }

    // Fault attribution: every shard reports its failed/retried/
    // degraded frames as shard-local indices; the globalIndex
    // mapping pins each to its sensor (and the shard's backend).
    for (std::size_t s = 0; s < outcomes.size(); ++s) {
        const ShardOutcome &oc = outcomes[s];
        const bool attributed = !oc.backend.empty();
        const auto attribute =
            [&](const std::vector<std::size_t> &indices,
                std::size_t SensorServingReport::*sensor_field,
                std::size_t BackendServingReport::*backend_field) {
                for (const std::size_t idx : indices) {
                    HGPCN_ASSERT(idx < oc.globalIndex.size(),
                                 "shard ", s, " fault index ", idx,
                                 " has no global mapping");
                    const std::size_t g = oc.globalIndex[idx];
                    rep.sensors[stream.sensors[g]].*sensor_field +=
                        1;
                    if (attributed)
                        rep.backends[backend_of[s]].*backend_field +=
                            1;
                }
            };
        attribute(oc.result.failedFrames,
                  &SensorServingReport::framesFailed,
                  &BackendServingReport::framesFailed);
        attribute(oc.result.retriedFrames,
                  &SensorServingReport::framesRetried,
                  &BackendServingReport::framesRetried);
        attribute(oc.result.degradedFrames,
                  &SensorServingReport::framesDegraded,
                  &BackendServingReport::framesDegraded);
    }

    if (!rep.backends.empty()) {
        const std::size_t n_backends = rep.backends.size();
        std::vector<std::vector<double>> offered(n_backends);
        std::vector<std::vector<double>> lat(n_backends);
        std::vector<double> last_done(
            n_backends, -std::numeric_limits<double>::infinity());
        for (std::size_t s = 0; s < outcomes.size(); ++s) {
            if (outcomes[s].backend.empty())
                continue;
            BackendServingReport &br =
                rep.backends[backend_of[s]];
            br.framesIn += outcomes[s].globalIndex.size();
            for (const std::size_t g : outcomes[s].globalIndex)
                offered[backend_of[s]].push_back(
                    stream.frames[g].timestamp);
        }
        for (const ServedFrame &sf : out.frames) {
            if (outcomes[sf.shard].backend.empty())
                continue;
            const std::size_t b = backend_of[sf.shard];
            BackendServingReport &br = rep.backends[b];
            br.framesDone++;
            br.maxLatencySec =
                std::max(br.maxLatencySec, sf.latencySec);
            lat[b].push_back(sf.latencySec);
            last_done[b] = std::max(last_done[b], sf.doneSec);
        }
        for (std::size_t b = 0; b < n_backends; ++b) {
            BackendServingReport &br = rep.backends[b];
            br.framesMissed = br.framesIn - br.framesDone;
            std::sort(offered[b].begin(), offered[b].end());
            br.offeredFps = generationFpsOf(offered[b]);
            if (br.framesDone > 0) {
                const double first_offer =
                    rep.paced && !offered[b].empty()
                        ? offered[b].front()
                        : 0.0;
                const double span = last_done[b] - first_offer;
                br.sustainedFps =
                    span > 0.0
                        ? static_cast<double>(br.framesDone) / span
                        : 0.0;
                std::sort(lat[b].begin(), lat[b].end());
                br.p50LatencySec =
                    percentileNearestRank(lat[b], 0.50);
                br.p95LatencySec =
                    percentileNearestRank(lat[b], 0.95);
                br.p99LatencySec =
                    percentileNearestRank(lat[b], 0.99);
            }
            br.realTime = evaluateRealTime(
                br.sustainedFps, rep.paced ? br.offeredFps : 0.0);
        }
    }
    return out;
}

ServingResult
mergeEpochResults(const SensorStream &stream,
                  std::vector<EpochOutcome> outcomes,
                  PlacementPolicy policy,
                  const std::vector<std::string> &shard_backends)
{
    HGPCN_ASSERT(stream.frames.size() == stream.sensors.size(),
                 "frames/sensors tags out of sync");

    ServingResult out;
    ServingReport &rep = out.report;
    rep.placement = policy;
    rep.sensorCount = stream.sensorCount;
    rep.framesIn = stream.size();

    // Peak fleet width: every per-shard view is indexed by shard,
    // sized to the widest the fleet ever was (shard s keeps its
    // identity across reconfigurations).
    std::size_t peak = 0;
    for (const EpochOutcome &ep : outcomes) {
        peak = std::max(peak, ep.activeShards);
        peak = std::max(peak, ep.result.report.shardReports.size());
    }
    rep.shardCount = peak;

    // Position of every frame within its own sensor's sequence.
    std::vector<std::size_t> sensor_index(stream.size(), 0);
    std::vector<std::size_t> seen(stream.sensorCount, 0);
    for (std::size_t i = 0; i < stream.size(); ++i)
        sensor_index[i] = seen[stream.sensors[i]]++;

    // Counts, pacing, shed accounting.
    rep.paced = true;
    std::vector<std::size_t> sensor_shed(stream.sensorCount, 0);
    std::vector<SensorServingReport> sensor_faults(
        stream.sensorCount);
    for (const EpochOutcome &ep : outcomes) {
        const ServingReport &er = ep.result.report;
        rep.framesProcessed += er.framesProcessed;
        rep.framesDropped += er.framesDropped;
        rep.framesAbandoned += er.framesAbandoned;
        rep.framesFailed += er.framesFailed;
        rep.framesRetried += er.framesRetried;
        rep.framesDegraded += er.framesDegraded;
        // Epoch sub-streams keep the full stream's sensor space, so
        // per-sensor fault attributions sum index-wise.
        for (std::size_t k = 0;
             k < std::min(er.sensors.size(), stream.sensorCount);
             ++k) {
            sensor_faults[k].framesFailed +=
                er.sensors[k].framesFailed;
            sensor_faults[k].framesRetried +=
                er.sensors[k].framesRetried;
            sensor_faults[k].framesDegraded +=
                er.sensors[k].framesDegraded;
        }
        if (er.framesIn > 0)
            rep.paced = rep.paced && er.paced;
        rep.framesShed += ep.shedGlobalIndex.size();
        for (const std::size_t g : ep.shedGlobalIndex) {
            HGPCN_ASSERT(g < stream.size(), "shed index ", g,
                         " outside the stream");
            sensor_shed[stream.sensors[g]]++;
        }
        out.metrics.merge(ep.result.metrics);
    }

    // Collect completions onto global indices. Epoch serves stamp
    // completions on the global clock already (paced shard clocks
    // anchor at absolute timestamps), so no re-anchoring beyond the
    // index mapping is needed.
    for (EpochOutcome &ep : outcomes) {
        for (ServedFrame &sf : ep.result.frames) {
            HGPCN_ASSERT(sf.globalIndex < ep.globalIndex.size(),
                         "epoch frame index ", sf.globalIndex,
                         " has no global mapping");
            const std::size_t g = ep.globalIndex[sf.globalIndex];
            sf.globalIndex = g;
            sf.sensor = stream.sensors[g];
            sf.sensorIndex = sensor_index[g];
            out.frames.push_back(std::move(sf));
        }
    }

    // In-order delivery per sensor: a reconfigured fleet may finish
    // a sensor's later frame (new epoch, fresh shard) before an
    // earlier one still draining from the previous epoch. Delivery
    // order is the serving contract, so clamp each frame's
    // completion to its predecessor's and charge the wait to its
    // latency. Within an epoch the clamp is a no-op under sensor
    // affinity (FIFO pipelines); across epochs it is the handoff
    // serialization cost.
    std::sort(out.frames.begin(), out.frames.end(),
              [](const ServedFrame &a, const ServedFrame &b) {
                  return a.globalIndex < b.globalIndex;
              });
    std::vector<double> last_done(
        stream.sensorCount, -std::numeric_limits<double>::infinity());
    for (ServedFrame &sf : out.frames) {
        if (sf.doneSec < last_done[sf.sensor]) {
            sf.latencySec += last_done[sf.sensor] - sf.doneSec;
            sf.doneSec = last_done[sf.sensor];
        }
        last_done[sf.sensor] = sf.doneSec;
    }
    std::sort(out.frames.begin(), out.frames.end(),
              [](const ServedFrame &a, const ServedFrame &b) {
                  if (a.doneSec != b.doneSec)
                      return a.doneSec < b.doneSec;
                  return a.globalIndex < b.globalIndex;
              });

    // Aggregate makespan + latency distribution.
    const double global_start =
        rep.paced && !stream.frames.empty()
            ? stream.frames.front().timestamp
            : 0.0;
    std::vector<double> latencies;
    latencies.reserve(out.frames.size());
    double max_done = global_start;
    for (const ServedFrame &sf : out.frames) {
        latencies.push_back(sf.latencySec);
        max_done = std::max(max_done, sf.doneSec);
        rep.maxLatencySec = std::max(rep.maxLatencySec,
                                     sf.latencySec);
        rep.meanLatencySec += sf.latencySec;
    }
    if (!latencies.empty()) {
        rep.meanLatencySec /= static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        rep.p50LatencySec = percentileNearestRank(latencies, 0.50);
        rep.p95LatencySec = percentileNearestRank(latencies, 0.95);
        rep.p99LatencySec = percentileNearestRank(latencies, 0.99);
        rep.makespanSec = max_done - global_start;
        rep.sustainedFps =
            rep.makespanSec > 0.0
                ? static_cast<double>(rep.framesProcessed) /
                      rep.makespanSec
                : 0.0;
    }

    // Per-shard views: shard s aggregated across every epoch it was
    // active in. Counts sum; busy time re-normalizes over the
    // summed per-epoch makespans; the latency distribution comes
    // from the shard's own completions (post-clamp).
    rep.shardReports.assign(peak, RuntimeReport{});
    rep.shardBackends.assign(peak, std::string());
    for (std::size_t s = 0;
         s < std::min(peak, shard_backends.size()); ++s)
        rep.shardBackends[s] = shard_backends[s];
    std::vector<double> shard_span(peak, 0.0);
    for (const EpochOutcome &ep : outcomes) {
        const std::vector<RuntimeReport> &ers =
            ep.result.report.shardReports;
        for (std::size_t s = 0; s < ers.size(); ++s) {
            RuntimeReport &agg = rep.shardReports[s];
            const RuntimeReport &er = ers[s];
            agg.framesIn += er.framesIn;
            agg.framesProcessed += er.framesProcessed;
            agg.framesDropped += er.framesDropped;
            agg.framesAbandoned += er.framesAbandoned;
            agg.framesFailed += er.framesFailed;
            agg.framesRetried += er.framesRetried;
            agg.framesDegraded += er.framesDegraded;
            agg.paced = rep.paced;
            agg.policy = er.policy;
            // Batch-occupancy attribution: counts sum across the
            // epochs, the configured cap and the observed peak take
            // the max, and the mean is re-derived from the summed
            // counts once every epoch is in.
            agg.configuredMaxBatch = std::max(
                agg.configuredMaxBatch, er.configuredMaxBatch);
            agg.batchCount += er.batchCount;
            agg.batchedFrames += er.batchedFrames;
            agg.soloFrames += er.soloFrames;
            agg.maxBatchSize =
                std::max(agg.maxBatchSize, er.maxBatchSize);
            shard_span[s] += er.makespanSec;
            // An epoch in which this shard served nothing reports
            // no stages; it contributes span but no busy time.
            if (er.stages.empty()) {
                continue;
            }
            if (agg.stages.empty()) {
                agg.stages = er.stages;
                for (TimelineStageStats &st : agg.stages) {
                    st.meanQueueDepth *= er.makespanSec;
                }
            } else {
                HGPCN_ASSERT(agg.stages.size() == er.stages.size(),
                             "shard ", s,
                             " stage sets differ across epochs");
                for (std::size_t st = 0; st < er.stages.size();
                     ++st) {
                    agg.stages[st].busySec +=
                        er.stages[st].busySec;
                    agg.stages[st].meanQueueDepth +=
                        er.stages[st].meanQueueDepth *
                        er.makespanSec;
                    agg.stages[st].peakQueueDepth = std::max(
                        agg.stages[st].peakQueueDepth,
                        er.stages[st].peakQueueDepth);
                }
            }
        }
    }
    std::vector<std::vector<double>> shard_lat(peak);
    for (const ServedFrame &sf : out.frames) {
        HGPCN_ASSERT(sf.shard < peak, "completed frame on shard ",
                     sf.shard, " beyond the peak fleet width ",
                     peak);
        shard_lat[sf.shard].push_back(sf.latencySec);
    }
    for (std::size_t s = 0; s < peak; ++s) {
        RuntimeReport &agg = rep.shardReports[s];
        agg.makespanSec = shard_span[s];
        agg.sustainedFps =
            shard_span[s] > 0.0
                ? static_cast<double>(agg.framesProcessed) /
                      shard_span[s]
                : 0.0;
        if (agg.batchCount > 0) {
            agg.meanBatchSize =
                static_cast<double>(agg.batchedFrames +
                                    agg.soloFrames) /
                static_cast<double>(agg.batchCount);
        }
        for (TimelineStageStats &st : agg.stages) {
            const double capacity =
                static_cast<double>(st.units) * shard_span[s];
            st.utilization =
                capacity > 0.0 ? st.busySec / capacity : 0.0;
            st.meanQueueDepth = shard_span[s] > 0.0
                                    ? st.meanQueueDepth /
                                          shard_span[s]
                                    : 0.0;
        }
        if (!shard_lat[s].empty()) {
            std::sort(shard_lat[s].begin(), shard_lat[s].end());
            agg.p50LatencySec =
                percentileNearestRank(shard_lat[s], 0.50);
            agg.p95LatencySec =
                percentileNearestRank(shard_lat[s], 0.95);
            agg.p99LatencySec =
                percentileNearestRank(shard_lat[s], 0.99);
            agg.maxLatencySec = shard_lat[s].back();
            for (const double l : shard_lat[s])
                agg.meanLatencySec += l;
            agg.meanLatencySec /=
                static_cast<double>(shard_lat[s].size());
        }
        agg.realTime = RealTimeVerdict::NotApplicable;
    }

    // Per-sensor slices, from the full stream (offered, stamps,
    // shed) and the clamped completions.
    rep.sensors.resize(stream.sensorCount);
    std::vector<std::vector<double>> sensor_lat(stream.sensorCount);
    std::vector<std::set<std::size_t>> sensor_shards(
        stream.sensorCount);
    std::vector<std::vector<double>> sensor_stamps(
        stream.sensorCount);
    std::vector<double> sensor_done(
        stream.sensorCount, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        rep.sensors[stream.sensors[i]].framesIn++;
        sensor_stamps[stream.sensors[i]].push_back(
            stream.frames[i].timestamp);
    }
    for (const ServedFrame &sf : out.frames) {
        SensorServingReport &sr = rep.sensors[sf.sensor];
        sr.framesDone++;
        sr.maxLatencySec = std::max(sr.maxLatencySec, sf.latencySec);
        sensor_lat[sf.sensor].push_back(sf.latencySec);
        sensor_shards[sf.sensor].insert(sf.shard);
        sensor_done[sf.sensor] =
            std::max(sensor_done[sf.sensor], sf.doneSec);
    }
    for (std::size_t k = 0; k < stream.sensorCount; ++k) {
        SensorServingReport &sr = rep.sensors[k];
        sr.sensor = k;
        sr.framesMissed = sr.framesIn - sr.framesDone;
        sr.framesShed = sensor_shed[k];
        sr.framesFailed = sensor_faults[k].framesFailed;
        sr.framesRetried = sensor_faults[k].framesRetried;
        sr.framesDegraded = sensor_faults[k].framesDegraded;
        sr.shardSpread = sensor_shards[k].size();
        sr.generationFps = generationFpsOf(sensor_stamps[k]);
        if (sr.framesDone > 0) {
            const double first_offer =
                rep.paced ? sensor_stamps[k].front() : 0.0;
            const double span = sensor_done[k] - first_offer;
            sr.sustainedFps =
                span > 0.0
                    ? static_cast<double>(sr.framesDone) / span
                    : 0.0;
            std::sort(sensor_lat[k].begin(), sensor_lat[k].end());
            sr.p50LatencySec =
                percentileNearestRank(sensor_lat[k], 0.50);
            sr.p95LatencySec =
                percentileNearestRank(sensor_lat[k], 0.95);
            sr.p99LatencySec =
                percentileNearestRank(sensor_lat[k], 0.99);
        }
        sr.realTime = evaluateRealTime(
            sr.sustainedFps, rep.paced ? sr.generationFps : 0.0);
    }

    // Per-backend slices. Shard index -> backend is stable across
    // reconfigurations (ShardedRunner's cycling rule), so a
    // backend's fleet is a fixed set of shard indices; it is
    // *active* in an epoch when at least one of its shards is.
    // Dispatch identities of dropped frames are epoch-local, so the
    // elastic per-backend offered rate is dispatched / active
    // window rather than a stamp-span rate — closed-form from the
    // epoch logs either way.
    std::vector<std::size_t> backend_of(peak, peak);
    for (std::size_t s = 0; s < peak; ++s) {
        const std::string &name = rep.shardBackends[s];
        if (name.empty())
            continue;
        std::size_t b = 0;
        while (b < rep.backends.size() &&
               rep.backends[b].backend != name)
            ++b;
        if (b == rep.backends.size()) {
            BackendServingReport br;
            br.backend = name;
            rep.backends.push_back(std::move(br));
        }
        backend_of[s] = b;
        rep.backends[b].shards++;
    }
    if (!rep.backends.empty()) {
        const std::size_t n_backends = rep.backends.size();
        std::vector<std::vector<double>> lat(n_backends);
        std::vector<double> active_sec(n_backends, 0.0);
        std::vector<double> first_active(
            n_backends, std::numeric_limits<double>::infinity());
        std::vector<double> last_done(
            n_backends, -std::numeric_limits<double>::infinity());
        for (const EpochOutcome &ep : outcomes) {
            const std::vector<RuntimeReport> &ers =
                ep.result.report.shardReports;
            std::vector<bool> seen_backend(n_backends, false);
            for (std::size_t s = 0; s < ers.size(); ++s) {
                if (backend_of[s] >= n_backends)
                    continue;
                const std::size_t b = backend_of[s];
                rep.backends[b].framesIn += ers[s].framesIn;
                rep.backends[b].framesFailed += ers[s].framesFailed;
                rep.backends[b].framesRetried +=
                    ers[s].framesRetried;
                rep.backends[b].framesDegraded +=
                    ers[s].framesDegraded;
                if (!seen_backend[b]) {
                    seen_backend[b] = true;
                    active_sec[b] += ep.endSec - ep.startSec;
                    first_active[b] =
                        std::min(first_active[b], ep.startSec);
                }
            }
        }
        for (const ServedFrame &sf : out.frames) {
            if (backend_of[sf.shard] >= n_backends)
                continue;
            const std::size_t b = backend_of[sf.shard];
            BackendServingReport &br = rep.backends[b];
            br.framesDone++;
            br.maxLatencySec =
                std::max(br.maxLatencySec, sf.latencySec);
            lat[b].push_back(sf.latencySec);
            last_done[b] = std::max(last_done[b], sf.doneSec);
        }
        for (std::size_t b = 0; b < n_backends; ++b) {
            BackendServingReport &br = rep.backends[b];
            br.framesMissed = br.framesIn - br.framesDone;
            br.offeredFps =
                active_sec[b] > 0.0
                    ? static_cast<double>(br.framesIn) /
                          active_sec[b]
                    : 0.0;
            if (br.framesDone > 0) {
                const double span = last_done[b] - first_active[b];
                br.sustainedFps =
                    span > 0.0
                        ? static_cast<double>(br.framesDone) / span
                        : 0.0;
                std::sort(lat[b].begin(), lat[b].end());
                br.p50LatencySec =
                    percentileNearestRank(lat[b], 0.50);
                br.p95LatencySec =
                    percentileNearestRank(lat[b], 0.95);
                br.p99LatencySec =
                    percentileNearestRank(lat[b], 0.99);
            }
            br.realTime = evaluateRealTime(
                br.sustainedFps, rep.paced ? br.offeredFps : 0.0);
        }
    }
    return out;
}

} // namespace hgpcn
