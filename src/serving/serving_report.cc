#include "serving/serving_report.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace hgpcn
{
namespace
{

/** (n-1)/span generation rate over a timestamp subsequence. */
double
generationFpsOf(const std::vector<double> &stamps)
{
    if (stamps.size() < 2)
        return 0.0;
    const double span = stamps.back() - stamps.front();
    if (span <= 0.0)
        return 0.0;
    return static_cast<double>(stamps.size() - 1) / span;
}

} // namespace

std::string
ServingReport::toString() const
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(1);
    oss << "serving: " << shardCount << " shard"
        << (shardCount == 1 ? "" : "s") << " ("
        << placementPolicyName(placement) << "), " << sensorCount
        << " sensor" << (sensorCount == 1 ? "" : "s")
        << (paced ? ", sensor-paced" : ", batch") << "\n";
    oss << "frames: " << framesProcessed << "/" << framesIn
        << " processed";
    if (framesDropped > 0)
        oss << ", " << framesDropped << " dropped";
    if (framesAbandoned > 0)
        oss << ", " << framesAbandoned << " abandoned";
    oss << "\n";
    oss << "aggregate: " << sustainedFps << " FPS over "
        << makespanSec * 1e3 << " ms";
    oss.precision(2);
    oss << " | latency ms: mean " << meanLatencySec * 1e3 << " | p50 "
        << p50LatencySec * 1e3 << " | p95 " << p95LatencySec * 1e3
        << " | p99 " << p99LatencySec * 1e3 << " | max "
        << maxLatencySec * 1e3 << "\n";
    oss.precision(1);
    for (std::size_t s = 0; s < shardReports.size(); ++s) {
        const RuntimeReport &r = shardReports[s];
        oss << "shard " << s << ": " << r.framesProcessed << "/"
            << r.framesIn << " processed | sustained "
            << r.sustainedFps << " FPS";
        for (const TimelineStageStats &st : r.stages) {
            oss << " | " << st.name << " util "
                << static_cast<int>(st.utilization * 100.0 + 0.5)
                << "%";
        }
        oss << "\n";
    }
    for (const SensorServingReport &sr : sensors) {
        oss << "sensor " << sr.sensor << " [" << sr.shardSpread
            << " shard" << (sr.shardSpread == 1 ? "" : "s")
            << "]: " << sr.framesDone << "/" << sr.framesIn;
        if (sr.generationFps > 0.0)
            oss << " | sensor " << sr.generationFps << " FPS";
        oss << " | sustained " << sr.sustainedFps << " FPS";
        oss.precision(2);
        oss << " | p99 " << sr.p99LatencySec * 1e3 << " ms";
        oss.precision(1);
        oss << " | real-time: " << realTimeVerdictName(sr.realTime)
            << "\n";
    }
    return oss.str();
}

ServingResult
mergeShardOutcomes(const SensorStream &stream,
                   std::vector<ShardOutcome> outcomes,
                   PlacementPolicy policy)
{
    HGPCN_ASSERT(stream.frames.size() == stream.sensors.size(),
                 "frames/sensors tags out of sync");

    ServingResult out;
    ServingReport &rep = out.report;
    rep.placement = policy;
    rep.shardCount = outcomes.size();
    rep.sensorCount = stream.sensorCount;
    rep.framesIn = stream.size();

    // Position of every frame within its own sensor's sequence.
    std::vector<std::size_t> sensor_index(stream.size(), 0);
    std::vector<std::size_t> seen(stream.sensorCount, 0);
    for (std::size_t i = 0; i < stream.size(); ++i)
        sensor_index[i] = seen[stream.sensors[i]]++;

    rep.paced = true;
    for (const ShardOutcome &oc : outcomes) {
        const RuntimeReport &r = oc.result.report;
        rep.framesProcessed += r.framesProcessed;
        rep.framesDropped += r.framesDropped;
        rep.framesAbandoned += r.framesAbandoned;
        if (r.framesIn > 0)
            rep.paced = rep.paced && r.paced;
        rep.shardReports.push_back(r);
    }

    // Re-anchor every shard clock onto the global timeline and
    // collect the completed frames.
    for (std::size_t s = 0; s < outcomes.size(); ++s) {
        ShardOutcome &oc = outcomes[s];
        for (ProcessedFrame &pf : oc.result.frames) {
            HGPCN_ASSERT(pf.index < oc.globalIndex.size(),
                         "shard ", s, " frame index ", pf.index,
                         " has no global mapping");
            const std::size_t g = oc.globalIndex[pf.index];
            ServedFrame sf;
            sf.globalIndex = g;
            sf.sensor = stream.sensors[g];
            sf.sensorIndex = sensor_index[g];
            sf.shard = s;
            sf.latencySec = pf.latencySec;
            sf.doneSec = oc.anchorSec + pf.doneSec;
            sf.result = std::move(pf.result);
            out.frames.push_back(std::move(sf));
        }
    }
    std::sort(out.frames.begin(), out.frames.end(),
              [](const ServedFrame &a, const ServedFrame &b) {
                  if (a.doneSec != b.doneSec)
                      return a.doneSec < b.doneSec;
                  return a.globalIndex < b.globalIndex;
              });

    // Aggregate makespan + latency distribution.
    const double global_start =
        rep.paced && !stream.frames.empty()
            ? stream.frames.front().timestamp
            : 0.0;
    std::vector<double> latencies;
    latencies.reserve(out.frames.size());
    double max_done = global_start;
    for (const ServedFrame &sf : out.frames) {
        latencies.push_back(sf.latencySec);
        max_done = std::max(max_done, sf.doneSec);
        rep.maxLatencySec = std::max(rep.maxLatencySec,
                                     sf.latencySec);
        rep.meanLatencySec += sf.latencySec;
    }
    if (!latencies.empty()) {
        rep.meanLatencySec /= static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        rep.p50LatencySec = percentileNearestRank(latencies, 0.50);
        rep.p95LatencySec = percentileNearestRank(latencies, 0.95);
        rep.p99LatencySec = percentileNearestRank(latencies, 0.99);
        rep.makespanSec = max_done - global_start;
        rep.sustainedFps =
            rep.makespanSec > 0.0
                ? static_cast<double>(rep.framesProcessed) /
                      rep.makespanSec
                : 0.0;
    }

    // Per-sensor slices.
    rep.sensors.resize(stream.sensorCount);
    std::vector<std::vector<double>> sensor_lat(stream.sensorCount);
    std::vector<std::set<std::size_t>> sensor_shards(
        stream.sensorCount);
    std::vector<std::vector<double>> sensor_stamps(
        stream.sensorCount);
    std::vector<double> sensor_done(
        stream.sensorCount, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        rep.sensors[stream.sensors[i]].framesIn++;
        sensor_stamps[stream.sensors[i]].push_back(
            stream.frames[i].timestamp);
    }
    for (const ServedFrame &sf : out.frames) {
        SensorServingReport &sr = rep.sensors[sf.sensor];
        sr.framesDone++;
        sr.maxLatencySec = std::max(sr.maxLatencySec, sf.latencySec);
        sensor_lat[sf.sensor].push_back(sf.latencySec);
        sensor_shards[sf.sensor].insert(sf.shard);
        sensor_done[sf.sensor] =
            std::max(sensor_done[sf.sensor], sf.doneSec);
    }
    for (std::size_t k = 0; k < stream.sensorCount; ++k) {
        SensorServingReport &sr = rep.sensors[k];
        sr.sensor = k;
        sr.framesMissed = sr.framesIn - sr.framesDone;
        sr.shardSpread = sensor_shards[k].size();
        sr.generationFps = generationFpsOf(sensor_stamps[k]);
        if (sr.framesDone > 0) {
            const double first_offer =
                rep.paced ? sensor_stamps[k].front() : 0.0;
            const double span = sensor_done[k] - first_offer;
            sr.sustainedFps =
                span > 0.0
                    ? static_cast<double>(sr.framesDone) / span
                    : 0.0;
            std::sort(sensor_lat[k].begin(), sensor_lat[k].end());
            sr.p50LatencySec =
                percentileNearestRank(sensor_lat[k], 0.50);
            sr.p95LatencySec =
                percentileNearestRank(sensor_lat[k], 0.95);
            sr.p99LatencySec =
                percentileNearestRank(sensor_lat[k], 0.99);
        }
        // The fixed Section VII-E semantics: a batch serve races no
        // sensor, so the verdict is n/a, never a vacuous YES.
        sr.realTime = evaluateRealTime(
            sr.sustainedFps, rep.paced ? sr.generationFps : 0.0);
    }
    return out;
}

} // namespace hgpcn
