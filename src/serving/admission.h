/**
 * @file
 * Admission control for the elastic serving layer.
 *
 * When a control epoch's offered load exceeds what the active fleet
 * can sustain, the serving layer degrades *gracefully* instead of
 * letting every sensor's latency collapse together: whole sensors
 * are shed for the epoch, lowest priority first, until the admitted
 * load fits the fleet's modeled capacity (with configurable
 * headroom). Shedding whole sensors — not individual frames — keeps
 * every admitted sensor's stream intact, so its Section VII-E
 * verdict stays meaningful; shed sensors are reported per sensor
 * (SensorServingReport::framesShed) and join the conservation
 * identity framesIn == processed + dropped + abandoned + shed.
 *
 * decideAdmission is a pure function of the per-sensor offered
 * rates, priorities and the fleet's capacity estimate, so every
 * shed set is hand-computable in tests (tests/test_elastic.cc).
 * Determinism of the full elastic serve follows: same trace + same
 * capacity model => same shed sets, bit for bit.
 */

#ifndef HGPCN_SERVING_ADMISSION_H
#define HGPCN_SERVING_ADMISSION_H

#include <cstddef>
#include <vector>

namespace hgpcn
{

/** Admission-control parameters. */
struct AdmissionConfig
{
    /** Master switch; disabled admits everything (shed sets always
     * empty), which reduces elastic serving to autoscaling only. */
    bool enabled = true;

    /** Fraction of modeled fleet capacity the admitted load may
     * occupy, in (0, 1]. 0.9 keeps 10% slack for burst absorption
     * inside the epoch. */
    double headroom = 0.9;

    /** Graceful degradation: sensors the shed pass would refuse
     * are admitted anyway, served at the fleet's reduced fidelity
     * budget (FaultToleranceConfig::degradedSampleFraction), so
     * every sensor keeps a live — if coarser — stream under
     * overload. The shed *decision* is unchanged (same pure
     * arithmetic, same sensor sets); only its enforcement flips
     * from refusal to down-sampling. */
    bool degradeInsteadOfShed = false;
};

/** One epoch's admission decision. */
struct ShedDecision
{
    /** Sensors refused this epoch, ascending id order. */
    std::vector<std::size_t> shedSensors;
    /** Parallel to the input: admitted[k] == false iff sensor k is
     * in shedSensors. */
    std::vector<bool> admitted;
    /** Offered rate summed over admitted sensors (frames/sec). */
    double admittedFps = 0;
    /** Offered rate summed over shed sensors (frames/sec). */
    double shedFps = 0;
};

/**
 * Decide which sensors to admit for one control epoch.
 *
 * Pure arithmetic. Sensors are shed lowest priority first (priority
 * is ascending importance: 0 is the first to go); within a priority
 * tier, higher sensor id sheds first, so the survivor set is always
 * the lexicographically smallest among equals. Shedding stops as
 * soon as the remaining offered load fits capacityFps * headroom.
 * Idle sensors (offered rate 0) are always admitted — shedding them
 * frees nothing. At least one loaded sensor is always admitted, no
 * matter how small the capacity: serving *something* beats serving
 * nothing, and the per-sensor verdicts will say NO honestly.
 *
 * @param offered_fps Per-sensor offered rate this epoch (frames /
 *        epoch length), indexed by sensor id.
 * @param priority Per-sensor priority, parallel to @p offered_fps
 *        (higher = more important). May be empty: all tier 0.
 * @param capacity_fps Modeled fleet throughput (active shards /
 *        per-frame service-time estimate).
 * @param config Admission parameters.
 */
ShedDecision
decideAdmission(const std::vector<double> &offered_fps,
                const std::vector<int> &priority, double capacity_fps,
                const AdmissionConfig &config);

} // namespace hgpcn

#endif // HGPCN_SERVING_ADMISSION_H
