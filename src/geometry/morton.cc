#include "geometry/morton.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{
namespace morton
{

Code
expandBits3(std::uint32_t v)
{
    // Classic 21-bit interleave-by-3 bit smear.
    Code x = v & 0x1fffffull;
    x = (x | x << 32) & 0x1f00000000ffffull;
    x = (x | x << 16) & 0x1f0000ff0000ffull;
    x = (x | x << 8) & 0x100f00f00f00f00full;
    x = (x | x << 4) & 0x10c30c30c30c30c3ull;
    x = (x | x << 2) & 0x1249249249249249ull;
    return x;
}

std::uint32_t
compactBits3(Code v)
{
    Code x = v & 0x1249249249249249ull;
    x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ull;
    x = (x ^ (x >> 4)) & 0x100f00f00f00f00full;
    x = (x ^ (x >> 8)) & 0x1f0000ff0000ffull;
    x = (x ^ (x >> 16)) & 0x1f00000000ffffull;
    x = (x ^ (x >> 32)) & 0x1fffffull;
    return static_cast<std::uint32_t>(x);
}

Code
expandBits2(std::uint32_t v)
{
    Code x = v & 0x7fffffffull;
    x = (x | x << 16) & 0x0000ffff0000ffffull;
    x = (x | x << 8) & 0x00ff00ff00ff00ffull;
    x = (x | x << 4) & 0x0f0f0f0f0f0f0f0full;
    x = (x | x << 2) & 0x3333333333333333ull;
    x = (x | x << 1) & 0x5555555555555555ull;
    return x;
}

std::uint32_t
compactBits2(Code v)
{
    Code x = v & 0x5555555555555555ull;
    x = (x ^ (x >> 1)) & 0x3333333333333333ull;
    x = (x ^ (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
    x = (x ^ (x >> 4)) & 0x00ff00ff00ff00ffull;
    x = (x ^ (x >> 8)) & 0x0000ffff0000ffffull;
    x = (x ^ (x >> 16)) & 0x00000000ffffffffull;
    return static_cast<std::uint32_t>(x);
}

Code
encode3(CellCoord x, CellCoord y, CellCoord z, int depth)
{
    HGPCN_ASSERT(depth >= 1 && depth <= kMaxDepth3d, "depth=", depth);
    // X occupies the most significant bit of each 3-bit group.
    return (expandBits3(x) << 2) | (expandBits3(y) << 1) | expandBits3(z);
}

void
decode3(Code code, int depth, CellCoord &x, CellCoord &y, CellCoord &z)
{
    HGPCN_ASSERT(depth >= 1 && depth <= kMaxDepth3d, "depth=", depth);
    x = compactBits3(code >> 2);
    y = compactBits3(code >> 1);
    z = compactBits3(code);
}

Code
encode2(CellCoord x, CellCoord y, int depth)
{
    HGPCN_ASSERT(depth >= 1 && depth <= kMaxDepth2d, "depth=", depth);
    return (expandBits2(x) << 1) | expandBits2(y);
}

void
decode2(Code code, int depth, CellCoord &x, CellCoord &y)
{
    HGPCN_ASSERT(depth >= 1 && depth <= kMaxDepth2d, "depth=", depth);
    x = compactBits2(code >> 1);
    y = compactBits2(code);
}

void
cellOf(const Vec3 &p, const Aabb &root, int depth, CellCoord &x,
       CellCoord &y, CellCoord &z)
{
    const std::uint32_t cells = 1u << depth;
    const Vec3 e = root.extent();
    auto axis = [cells](float v, float lo, float len) -> CellCoord {
        float t = len > 0.0f ? (v - lo) / len : 0.0f;
        if (t < 0.0f)
            t = 0.0f;
        auto c = static_cast<std::int64_t>(t * static_cast<float>(cells));
        if (c >= static_cast<std::int64_t>(cells))
            c = cells - 1;
        if (c < 0)
            c = 0;
        return static_cast<CellCoord>(c);
    };
    x = axis(p.x, root.lo.x, e.x);
    y = axis(p.y, root.lo.y, e.y);
    z = axis(p.z, root.lo.z, e.z);
}

Code
pointCode3(const Vec3 &p, const Aabb &root, int depth)
{
    CellCoord x = 0, y = 0, z = 0;
    cellOf(p, root, depth, x, y, z);
    return encode3(x, y, z, depth);
}

float
voxelSize(int level, const Aabb &root)
{
    const Vec3 e = root.extent();
    const float side = std::max(e.x, std::max(e.y, e.z));
    return side / static_cast<float>(1u << level);
}

Vec3
voxelCenter(Code code, int level, const Aabb &root)
{
    CellCoord x = 0, y = 0, z = 0;
    decode3(code, level, x, y, z);
    const float s = voxelSize(level, root);
    return {root.lo.x + (static_cast<float>(x) + 0.5f) * s,
            root.lo.y + (static_cast<float>(y) + 0.5f) * s,
            root.lo.z + (static_cast<float>(z) + 0.5f) * s};
}

Aabb
voxelBounds(Code code, int level, const Aabb &root)
{
    CellCoord x = 0, y = 0, z = 0;
    decode3(code, level, x, y, z);
    const float s = voxelSize(level, root);
    const Vec3 lo{root.lo.x + static_cast<float>(x) * s,
                  root.lo.y + static_cast<float>(y) * s,
                  root.lo.z + static_cast<float>(z) * s};
    return {lo, {lo.x + s, lo.y + s, lo.z + s}};
}

std::uint64_t
codeBits(Code code, int level, int dims)
{
    // Re-emit the code as a decimal number whose digits are the bits,
    // e.g. quadtree code 0b1101 at level 2 renders as 1101.
    std::uint64_t out = 0;
    const int bits = level * dims;
    for (int i = bits - 1; i >= 0; --i) {
        out = out * 10 + ((code >> i) & 1u);
    }
    return out;
}

} // namespace morton
} // namespace hgpcn
