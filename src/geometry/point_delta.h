/**
 * @file
 * Cross-frame point-set delta in SFC (reordered) index space.
 *
 * Consecutive LiDAR sweeps overlap heavily; the temporal-coherence
 * path (octree/incremental_octree.h) diffs the new frame's sorted
 * m-code array against the previous one and describes the outcome as
 * a PointDelta: which old reordered slots survived (and where they
 * landed), which were evicted, and which new slots are fresh
 * insertions. Downstream caches — the spatial-hash KNN buckets
 * (src/knn) and the VoxelGrid occupancy list (src/octree) — consume
 * the same delta to rebuild only their dirty cells.
 *
 * Invariants (established by the producer, relied on by consumers):
 *  - newFromOld is monotone over retained slots: old SFC order is a
 *    suborder of new SFC order, so remapping a sorted run of
 *    retained entries preserves its sort.
 *  - insertedNew and evictedOld are strictly ascending.
 *  - retained + inserted == new size; retained + evicted == old size.
 */

#ifndef HGPCN_GEOMETRY_POINT_DELTA_H
#define HGPCN_GEOMETRY_POINT_DELTA_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/point_cloud.h"

namespace hgpcn
{

/** Sentinel for "this old slot has no new counterpart". */
constexpr PointIndex kNoPoint = static_cast<PointIndex>(-1);

/** Insert/evict/remap description between two stamped frames. */
struct PointDelta
{
    /** For each old reordered slot: its new reordered slot, or
     * kNoPoint when the point was evicted. Size = old point count. */
    std::vector<PointIndex> newFromOld;

    /** New reordered slots holding inserted points, ascending. */
    std::vector<PointIndex> insertedNew;

    /** Old reordered slots of evicted points, ascending. */
    std::vector<PointIndex> evictedOld;

    /** @return points carried over from the previous frame. */
    std::size_t
    retained() const
    {
        return newFromOld.size() - evictedOld.size();
    }

    /** Drop all entries (capacity retained for reuse). */
    void
    clear()
    {
        newFromOld.clear();
        insertedNew.clear();
        evictedOld.clear();
    }

    /** @return true when any new slot in [first, last) was inserted
     * this frame — the "dirty range" test of the incremental
     * builders. O(log inserted). */
    bool
    rangeDirty(PointIndex first, PointIndex last) const
    {
        const auto it = std::lower_bound(insertedNew.begin(),
                                         insertedNew.end(), first);
        return it != insertedNew.end() && *it < last;
    }
};

} // namespace hgpcn

#endif // HGPCN_GEOMETRY_POINT_DELTA_H
