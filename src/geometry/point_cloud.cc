#include "geometry/point_cloud.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{

void
PointCloud::reserve(std::size_t n)
{
    pos.reserve(n);
    feat.reserve(n * featDim);
}

void
PointCloud::add(const Vec3 &p)
{
    pos.push_back(p);
    feat.resize(feat.size() + featDim, 0.0f);
}

void
PointCloud::add(const Vec3 &p, std::span<const float> features)
{
    HGPCN_ASSERT(features.size() == featDim, "feature width mismatch: ",
                 features.size(), " != ", featDim);
    pos.push_back(p);
    feat.insert(feat.end(), features.begin(), features.end());
}

std::span<const float>
PointCloud::feature(PointIndex i) const
{
    return {feat.data() + static_cast<std::size_t>(i) * featDim, featDim};
}

std::span<float>
PointCloud::feature(PointIndex i)
{
    return {feat.data() + static_cast<std::size_t>(i) * featDim, featDim};
}

Aabb
PointCloud::bounds() const
{
    Aabb box;
    for (const auto &p : pos)
        box.expand(p);
    return box;
}

void
PointCloud::normalizeToUnitCube()
{
    if (empty())
        return;
    const Aabb box = bounds().cubified();
    const float side = box.extent().x;
    const float inv = side > 0.0f ? 1.0f / side : 1.0f;
    for (auto &p : pos)
        p = (p - box.lo) * inv;
}

PointCloud
PointCloud::gather(std::span<const PointIndex> indices) const
{
    PointCloud out(featDim);
    out.reserve(indices.size());
    for (PointIndex i : indices) {
        HGPCN_ASSERT(i < size(), "gather index out of range: ", i);
        out.add(pos[i], feature(i));
    }
    return out;
}

void
PointCloud::assignGathered(const PointCloud &src,
                           std::span<const PointIndex> indices)
{
    HGPCN_ASSERT(this != &src, "assignGathered cannot self-gather");
    const std::size_t n = indices.size();
    featDim = src.featDim;
    pos.resize(n);
    feat.resize(n * featDim);
    for (std::size_t i = 0; i < n; ++i) {
        const PointIndex j = indices[i];
        HGPCN_ASSERT(j < src.size(), "gather index out of range: ", j);
        pos[i] = src.pos[j];
        if (featDim > 0) {
            std::copy_n(src.feat.data() +
                            static_cast<std::size_t>(j) * featDim,
                        featDim, feat.data() + i * featDim);
        }
    }
}

void
PointCloud::clear()
{
    pos.clear();
    feat.clear();
}

PointCloud
PointCloud::reordered(std::span<const PointIndex> perm) const
{
    HGPCN_ASSERT(perm.size() == size(), "permutation size mismatch");
    return gather(perm);
}

} // namespace hgpcn
