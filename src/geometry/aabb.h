/**
 * @file
 * Axis-aligned bounding box.
 *
 * The octree's root voxel is the cubified AABB of the input frame
 * (paper Fig. 5(a): "we put the point cloud into a root-level voxel").
 */

#ifndef HGPCN_GEOMETRY_AABB_H
#define HGPCN_GEOMETRY_AABB_H

#include <limits>

#include "geometry/vec3.h"

namespace hgpcn
{

/** An axis-aligned box described by its min/max corners. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    constexpr Aabb() = default;
    constexpr Aabb(const Vec3 &lo_, const Vec3 &hi_) : lo(lo_), hi(hi_) {}

    /** @return true when no point has been added yet. */
    constexpr bool
    empty() const
    {
        return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z;
    }

    /** Grow to contain @p p. */
    void
    expand(const Vec3 &p)
    {
        lo = Vec3::min(lo, p);
        hi = Vec3::max(hi, p);
    }

    /** Grow to contain @p other. */
    void
    expand(const Aabb &other)
    {
        lo = Vec3::min(lo, other.lo);
        hi = Vec3::max(hi, other.hi);
    }

    /** @return box edge lengths. */
    constexpr Vec3 extent() const { return hi - lo; }

    /** @return box center. */
    constexpr Vec3 center() const { return (lo + hi) * 0.5f; }

    /** @return true when @p p lies inside (inclusive). */
    constexpr bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /**
     * @return the smallest cube centered like this box that contains
     * it, slightly inflated so boundary points map strictly inside.
     * This is the octree root voxel.
     */
    Aabb
    cubified() const
    {
        const Vec3 e = extent();
        float side = e.x;
        if (e.y > side)
            side = e.y;
        if (e.z > side)
            side = e.z;
        if (side <= 0.0f)
            side = 1.0f;
        side *= 1.0f + 1e-5f;
        const Vec3 c = center();
        const Vec3 half{side * 0.5f, side * 0.5f, side * 0.5f};
        return {c - half, c + half};
    }
};

} // namespace hgpcn

#endif // HGPCN_GEOMETRY_AABB_H
